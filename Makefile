GO ?= go

.PHONY: build vet test test-full bench benchdiff

## build: compile every package
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## test: the fast race-hardened tier (a few seconds)
test: build vet
	$(GO) test -race -short ./...

## test-full: the complete suite, including the experiment replays
test-full:
	$(GO) test -race ./...

## bench: run the core micro-benchmarks (with -benchmem) and snapshot
## them to BENCH_2.json (the perf trajectory; bump the number per PR)
bench:
	./scripts/bench.sh BENCH_2.json

## benchdiff: fail if BENCH_2.json regresses >10% vs BENCH_1.json in
## ns/op or allocs/op (see scripts/benchdiff for arbitrary snapshots)
benchdiff:
	./scripts/benchdiff BENCH_1.json BENCH_2.json
