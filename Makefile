GO ?= go

.PHONY: build vet test test-full bench benchdiff lint cover serve e2e e2e-cluster linkcheck

## build: compile every package
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## test: the fast race-hardened tier (a few seconds)
test: build vet
	$(GO) test -race -short ./...

## test-full: the complete suite, including the experiment replays
test-full:
	$(GO) test -race ./...

## bench: run the micro-benchmarks plus the HTTP serving benchmark
## (with -benchmem) and snapshot them to the untracked
## bench_local.json. Recording a new committed trajectory point is an
## explicit `./scripts/bench.sh BENCH_N.json` so a routine `make
## bench` can never overwrite a baseline in place.
bench:
	./scripts/bench.sh bench_local.json

## benchdiff: fail if BENCH_5.json regresses >10% vs BENCH_4.json in
## allocs/op, printing the ns/op drift alongside (see scripts/benchdiff
## for arbitrary snapshots). Allocation counts are deterministic;
## wall-clock on a shared dev box is not, so only allocs gate here —
## the same policy the CI bench job applies.
benchdiff:
	./scripts/benchdiff BENCH_4.json BENCH_5.json 10 allocs

## lint: formatting + static analysis, the fast-fail CI gate
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

## cover: streaming-engine + online-learner + resilience + query-layer
## + observability coverage with the ratcheted >=80% gates CI
## enforces; leaves the merged cover.out for `go tool cover -html=cover.out`
cover:
	./scripts/covergate cover.out ./internal/stream/ 80 ./internal/online/ 80 ./internal/resilience/ 80 ./internal/query/ 80 ./internal/obs/ 80

## serve: run the streaming engine as an HTTP service on :8080 with a
## durable checkpoint — restarting the target resumes where it left off
serve:
	$(GO) run ./cmd/slimfast stream -listen :8080 \
		-checkpoint slimfast.ckpt -restore slimfast.ckpt

## e2e: the full restart-determinism proof over the network (build,
## serve, ingest over HTTP, checkpoint, kill -9, restore, byte-compare)
## plus the corruption scenario (damaged newest generation falls back)
e2e:
	./scripts/e2e_restart.sh

## e2e-cluster: the cluster-mode proof (3 nodes behind `slimfast
## router`, kill -9 one member mid-stream, restore, byte-compare the
## merged /estimates and /sources against a single-node reference)
e2e-cluster:
	./scripts/e2e_cluster.sh

## linkcheck: offline markdown link + anchor check over README.md and
## docs/ (the CI docs gate; no network)
linkcheck:
	./scripts/linkcheck.sh
