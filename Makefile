GO ?= go

.PHONY: build vet test test-full bench benchdiff lint

## build: compile every package
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## test: the fast race-hardened tier (a few seconds)
test: build vet
	$(GO) test -race -short ./...

## test-full: the complete suite, including the experiment replays
test-full:
	$(GO) test -race ./...

## bench: run the core micro-benchmarks (with -benchmem) and snapshot
## them to BENCH_3.json (the perf trajectory; bump the number per PR)
bench:
	./scripts/bench.sh BENCH_3.json

## benchdiff: fail if BENCH_3.json regresses >10% vs BENCH_2.json in
## ns/op or allocs/op (see scripts/benchdiff for arbitrary snapshots)
benchdiff:
	./scripts/benchdiff BENCH_2.json BENCH_3.json

## lint: formatting + static analysis, the fast-fail CI gate
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
