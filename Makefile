GO ?= go

.PHONY: build vet test test-full bench

## build: compile every package
build:
	$(GO) build ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## test: the fast race-hardened tier (a few seconds)
test: build vet
	$(GO) test -race -short ./...

## test-full: the complete suite, including the experiment replays
test-full:
	$(GO) test -race ./...

## bench: run the core micro-benchmarks and snapshot them to
## BENCH_1.json (the perf trajectory seed; bump the number per PR)
bench:
	./scripts/bench.sh BENCH_1.json
