#!/bin/sh
# bench.sh [output.json] — run the core micro-benchmarks plus the
# end-to-end HTTP serving benchmark with -benchmem and write a JSON
# snapshot (name, iterations, ns/op, B/op, allocs/op and any custom
# b.ReportMetric columns such as req/s and p99) used to track the
# performance trajectory across PRs. Compare two snapshots with
# scripts/benchdiff.
#
# The output defaults to an untracked scratch file so a plain
# `make bench` can never silently overwrite a committed baseline;
# recording a new BENCH_N.json trajectory point is an explicit
# `./scripts/bench.sh BENCH_N.json`.
set -eu

OUT="${1:-bench_local.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' \
	-bench '^(BenchmarkCoreEMFit|BenchmarkCoreERMFit|BenchmarkCoreExactInference|BenchmarkOptimizerDecide|BenchmarkLassoPath|BenchmarkFacadeSolve|BenchmarkStreamIngest|BenchmarkOnlineIngest|BenchmarkServeHTTP|BenchmarkMetricsScrape)$' \
	-benchmem \
	. ./cmd/slimfast ./internal/obs | tee "$TMP"

{
	printf '{\n'
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(getconf _NPROCESSORS_ONLN)"
	printf '  "benchmarks": [\n'
	# Benchmark lines are `Name iterations {value unit}...`; the units
	# vary per benchmark (b.ReportMetric inserts extra columns such as
	# req/s and p99-ns before B/op), so columns are matched by unit
	# label, never by position. The trailing -GOMAXPROCS suffix is
	# stripped so snapshots from hosts with different CPU counts gate
	# against each other instead of degrading into "only in" notes.
	awk '/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = ""; bytes = ""; allocs = ""; extra = ""
		for (i = 3; i < NF; i += 2) {
			v = $i; u = $(i + 1)
			if (u == "ns/op") ns = v
			else if (u == "B/op") bytes = v
			else if (u == "allocs/op") allocs = v
			else {
				key = u
				gsub(/[^A-Za-z0-9]+/, "_", key)
				extra = extra sprintf(", \"%s\": %s", key, v)
			}
		}
		printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}", sep, name, $2, ns, bytes, allocs, extra
		sep = ",\n"
	} END { print "" }' "$TMP"
	printf '  ]\n'
	printf '}\n'
} > "$OUT"
echo "wrote $OUT"
