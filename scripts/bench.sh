#!/bin/sh
# bench.sh [output.json] — run the core micro-benchmarks with -benchmem
# and write a JSON snapshot (name, iterations, ns/op, B/op, allocs/op
# per benchmark plus the host shape) used to track the performance
# trajectory across PRs. Compare two snapshots with scripts/benchdiff.
set -eu

OUT="${1:-BENCH_4.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' \
	-bench '^(BenchmarkCoreEMFit|BenchmarkCoreERMFit|BenchmarkCoreExactInference|BenchmarkOptimizerDecide|BenchmarkFacadeSolve|BenchmarkStreamIngest|BenchmarkOnlineIngest)$' \
	-benchmem \
	. | tee "$TMP"

{
	printf '{\n'
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(getconf _NPROCESSORS_ONLN)"
	printf '  "benchmarks": [\n'
	awk '/^Benchmark/ {
		printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, $1, $2, $3, $5, $7
		sep = ",\n"
	} END { print "" }' "$TMP"
	printf '  ]\n'
	printf '}\n'
} > "$OUT"
echo "wrote $OUT"
