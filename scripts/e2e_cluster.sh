#!/bin/sh
# e2e_cluster.sh — the cluster-mode proof, end to end over real
# processes: build the binary, run a single-node reference over the
# whole fixture, then run a 3-node cluster behind `slimfast router`,
# kill -9 one node mid-stream, restore it from its checkpoint
# generation, finish the ingest through the resilient replay client,
# and require the cluster's merged /estimates and /sources bytes to be
# identical to the reference. This is the property that makes cluster
# mode operable: a rolling restart of any member is invisible to
# clients, bit for bit.
set -eu

WORK="$(mktemp -d)"
PIDS=""
cleanup() {
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
	# Give surviving nodes a beat to write their shutdown checkpoints
	# before the workdir disappears under them.
	for p in $PIDS; do wait "$p" 2>/dev/null || true; done
	rm -rf "$WORK" 2>/dev/null || { sleep 1; rm -rf "$WORK"; }
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/slimfast" ./cmd/slimfast

echo "== fixture"
# The restart-e2e claim stream: 8 sources of varying reliability over
# 120 objects, source s7 a contrarian, split mid-stream. 960 claims =
# 30 chunks of 32 = 15 epochs of 64, so barriers land on request
# boundaries for both the reference and the cluster.
awk 'BEGIN {
	print "source,object,value" > "'"$WORK"'/all.csv"
	print "source,object,value" > "'"$WORK"'/part1.csv"
	print "source,object,value" > "'"$WORK"'/part2.csv"
	for (o = 0; o < 120; o++) {
		for (s = 0; s < 8; s++) {
			v = "t" o % 7
			if (s == 7 || (o + s) % 11 == 0) v = "w" (o + s) % 5
			printf "s%d,o%03d,%s\n", s, o, v >> "'"$WORK"'/all.csv"
			out = (o < 60) ? "'"$WORK"'/part1.csv" : "'"$WORK"'/part2.csv"
			printf "s%d,o%03d,%s\n", s, o, v >> out
		}
	}
}'

echo "== reference: one 3-shard engine over the whole stream"
"$WORK/slimfast" stream -obs "$WORK/all.csv" -shards 3 -epoch 64 -batch 32 -refine 2 \
	-values "$WORK/ref.estimates.csv" -accuracies "$WORK/ref.sources.csv" > "$WORK/ref.log"

# start_proc LOGFILE VAR_PREFIX cmd... — boots a server on an
# ephemeral port, appends its pid to PIDS, and leaves the bound
# address in ADDR (runs in the parent shell so both survive).
start_proc() {
	log="$1"; shift
	"$@" > "$log" 2>&1 &
	LAST_PID=$!
	PIDS="$PIDS $LAST_PID"
	ADDR=""
	for _ in $(seq 1 100); do
		ADDR="$(sed -n 's/^# listening on //p' "$log" | head -n1)"
		[ -n "$ADDR" ] && break
		sleep 0.1
	done
	if [ -z "$ADDR" ]; then
		echo "process never came up:" >&2
		cat "$log" >&2
		exit 1
	fi
}

start_node() { # index [extra flags...]
	i="$1"; shift
	start_proc "$WORK/node$i.log" "$WORK/slimfast" stream -listen "${NODE_ADDR:-127.0.0.1:0}" \
		-shards 1 -external-epochs -batch 32 -checkpoint "$WORK/node$i.ckpt" "$@"
}

echo "== cluster: three single-shard members"
NODE_PIDS=""
NODE_ADDRS=""
for i in 0 1 2; do
	NODE_ADDR="127.0.0.1:0" start_node "$i"
	NODE_PIDS="$NODE_PIDS $LAST_PID"
	NODE_ADDRS="$NODE_ADDRS $ADDR"
done
set -- $NODE_ADDRS
N0="$1"; N1="$2"; N2="$3"
set -- $NODE_PIDS
P0="$1"; P1="$2"; P2="$3"

echo "== router over $N0 $N1 $N2"
start_proc "$WORK/router.log" "$WORK/slimfast" router -listen 127.0.0.1:0 \
	-nodes "http://$N0,http://$N1,http://$N2" \
	-batch 32 -epoch 64 -checkpoint-epochs 1 -manifest "$WORK/cluster.json"
ROUTER="$ADDR"
ROUTER_PID="$LAST_PID"

curl -fsS "http://$ROUTER/v1/healthz" | grep -q '"status":"ok"' || {
	echo "cluster not healthy at boot" >&2
	exit 1
}

echo "== ingest part 1 through the resilient replay client"
"$WORK/slimfast" replay -obs "$WORK/part1.csv" -to "http://$ROUTER" -batch 32 -seq-prefix p1 > "$WORK/replay1.log"
[ -s "$WORK/cluster.json" ] || { echo "no cluster manifest after part 1" >&2; exit 1; }

echo "== kill -9 partition 1 mid-stream"
kill -9 "$P1" && wait "$P1" 2>/dev/null || true
[ -s "$WORK/node1.ckpt" ] || { echo "partition 1 left no checkpoint" >&2; exit 1; }

echo "== router degrades per partition while the node is down"
READY="$(curl -sS "http://$ROUTER/v1/readyz")"
echo "$READY" | grep -q '"status":"degraded"' || {
	echo "readyz did not degrade: $READY" >&2
	exit 1
}
echo "$READY" | grep -q '"down_partitions":\[1\]' || {
	echo "readyz did not name partition 1: $READY" >&2
	exit 1
}

echo "== restore partition 1 from its checkpoint generation, same address"
NODE_ADDR="$N1" start_node 1 -restore "$WORK/node1.ckpt"
grep -q '^# restored ' "$WORK/node1.log" || {
	echo "partition 1 did not restore:" >&2
	cat "$WORK/node1.log" >&2
	exit 1
}
curl -fsS "http://$ROUTER/v1/readyz" | grep -q '"status":"ready"' || {
	echo "cluster not ready after the restore" >&2
	exit 1
}

echo "== re-replay part 1 under the same keys: claims lost in the crash re-ingest, the rest dedup"
"$WORK/slimfast" replay -obs "$WORK/part1.csv" -to "http://$ROUTER" -batch 32 -seq-prefix p1 > "$WORK/replay1b.log"

echo "== ingest part 2, cluster-wide refine"
"$WORK/slimfast" replay -obs "$WORK/part2.csv" -to "http://$ROUTER" -batch 32 -seq-prefix p2 > "$WORK/replay2.log"
curl -fsS -X POST "http://$ROUTER/v1/refine?sweeps=2" > /dev/null

echo "== compare the cluster to the single-node reference"
curl -fsS "http://$ROUTER/v1/estimates" > "$WORK/cluster.estimates.csv"
curl -fsS "http://$ROUTER/v1/sources" > "$WORK/cluster.sources.csv"
diff "$WORK/ref.estimates.csv" "$WORK/cluster.estimates.csv" || {
	echo "FAIL: cluster /estimates diverged from the single-node reference" >&2
	exit 1
}
diff "$WORK/ref.sources.csv" "$WORK/cluster.sources.csv" || {
	echo "FAIL: cluster /sources diverged from the single-node reference" >&2
	exit 1
}
lines="$(wc -l < "$WORK/cluster.estimates.csv")"
[ "$lines" -gt 100 ] || { echo "FAIL: suspiciously small estimate set ($lines lines)" >&2; exit 1; }

echo "== router metrics: fan-out, deduplicated claims, barriers"
METRICS="$WORK/router.metrics.txt"
curl -fsS "http://$ROUTER/v1/metrics" > "$METRICS"
grep -q '^# TYPE slimfast_router_fanout_requests_total counter$' "$METRICS" || {
	echo "FAIL: router metrics missing the fan-out TYPE header:" >&2
	cat "$METRICS" >&2
	exit 1
}
if grep '^# TYPE ' "$METRICS" | grep -Evq ' (counter|gauge|histogram)$'; then
	echo "FAIL: router metrics have a TYPE header with an unknown kind:" >&2
	grep '^# TYPE ' "$METRICS" >&2
	exit 1
fi
FANOUT="$(awk -F' ' '/^slimfast_router_fanout_requests_total\{/ { sum += $2 } END { print sum + 0 }' "$METRICS")"
[ "$FANOUT" -gt 0 ] || { echo "FAIL: slimfast_router_fanout_requests_total = $FANOUT, want > 0" >&2; exit 1; }
# The stream is 960 claims and the replay of part 1 dedups at the
# router, so the cluster-wide counters are exact, not just nonzero.
CLAIMS="$(awk '$1 == "slimfast_router_claims_total" { print $2 }' "$METRICS")"
[ "$CLAIMS" = "960" ] || { echo "FAIL: slimfast_router_claims_total = '$CLAIMS', want 960" >&2; exit 1; }
BARRIERS="$(awk '$1 == "slimfast_router_barriers_total" { print $2 }' "$METRICS")"
[ "$BARRIERS" = "15" ] || { echo "FAIL: slimfast_router_barriers_total = '$BARRIERS', want 15" >&2; exit 1; }
echo "PASS metrics: $FANOUT fan-out requests, $CLAIMS claims, $BARRIERS barriers"

echo "== request tracing: a router-injected X-Request-ID reaches a member log"
# A tiny tail of claims (4 << 64) keeps the epoch counter short of the
# next barrier, so the 15-barrier manifest assert below still holds.
printf 'source,object,value\ns0,o000,t0\ns1,o001,t1\ns2,o002,t2\ns3,o003,t3\n' > "$WORK/trace.csv"
curl -fsS -X POST -H 'Content-Type: text/csv' -H 'X-Request-ID: e2e-trace-0001' \
	--data-binary @"$WORK/trace.csv" "http://$ROUTER/v1/observe" > /dev/null
grep -q 'e2e-trace-0001' "$WORK/router.log" || {
	echo "FAIL: injected request ID absent from the router log:" >&2
	cat "$WORK/router.log" >&2
	exit 1
}
grep -q 'e2e-trace-0001' "$WORK"/node[0-2].log || {
	echo "FAIL: injected request ID did not propagate to any member log:" >&2
	tail -n 20 "$WORK"/node[0-2].log >&2
	exit 1
}
echo "PASS tracing: e2e-trace-0001 propagated router -> member"

echo "== query surface: slimfast query against the live router"
"$WORK/slimfast" query -to "http://$ROUTER" 'order=-contested,object&limit=5' > "$WORK/query.top.csv"
qlines="$(wc -l < "$WORK/query.top.csv")"
[ "$qlines" = "6" ] || { echo "FAIL: top-5 query returned $qlines lines, want 6" >&2; cat "$WORK/query.top.csv" >&2; exit 1; }
head -n1 "$WORK/query.top.csv" | grep -q '^object,value,confidence$' || {
	echo "FAIL: query header wrong:" >&2
	cat "$WORK/query.top.csv" >&2
	exit 1
}
"$WORK/slimfast" query -to "http://$ROUTER" -format json 'group=value&agg=count' > "$WORK/query.group.ndjson"
head -n1 "$WORK/query.group.ndjson" | grep -q '"value":' || {
	echo "FAIL: NDJSON group query malformed:" >&2
	cat "$WORK/query.group.ndjson" >&2
	exit 1
}

echo "== members refuse a direct refine (the router owns the epochs)"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$N0/v1/refine")"
[ "$code" = "409" ] || { echo "FAIL: member answered refine with $code, want 409" >&2; exit 1; }

echo "== SIGTERM: router persists the manifest on shutdown"
kill -TERM "$ROUTER_PID"
for _ in $(seq 1 100); do
	grep -q '^# shutdown: ' "$WORK/router.log" && break
	sleep 0.1
done
wait "$ROUTER_PID" 2>/dev/null || true
grep -q '^# shutdown: ' "$WORK/router.log" || {
	echo "router did not report a clean shutdown:" >&2
	cat "$WORK/router.log" >&2
	exit 1
}
grep -q '"barriers": 15' "$WORK/cluster.json" || {
	echo "manifest does not carry the expected 15 barriers:" >&2
	cat "$WORK/cluster.json" >&2
	exit 1
}

echo "PASS: node hard-kill + restore is byte-invisible behind the router ($lines estimate lines identical)"
