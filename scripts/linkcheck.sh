#!/bin/sh
# linkcheck.sh — offline markdown link checker for README.md and the
# docs/ tree. Pure shell + standard tools, no network: relative links
# must resolve on disk, and anchor links (same-file or cross-file)
# must match a heading slug in the target document. External http(s)
# and mailto links are skipped — CI must not depend on the internet.
set -eu

cd "$(dirname "$0")/.."
fail=0

# slug STREAM — GitHub-style heading slugs: lowercase, drop anything
# but alphanumerics/spaces/hyphens, spaces become hyphens.
slugs() { # file
	grep '^#' "$1" |
		sed 's/^#*[[:space:]]*//' |
		tr 'A-Z' 'a-z' |
		sed 's/[^a-z0-9 -]//g; s/ /-/g'
}

check_file() { # file
	f="$1"
	dir="$(dirname "$f")"
	# Inline links: [text](target). Reference-style links are not used
	# in this repo.
	grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/^.*](//; s/)$//' | while IFS= read -r link; do
		case "$link" in
		http://* | https://* | mailto:*) continue ;;
		esac
		target="${link%%#*}"
		anchor=""
		case "$link" in
		*'#'*) anchor="${link#*#}" ;;
		esac
		if [ -n "$target" ]; then
			path="$dir/$target"
			if [ ! -e "$path" ]; then
				echo "$f: broken link: ($link) -> $path does not exist"
				echo bad >> "$FAILFLAG"
				continue
			fi
		else
			path="$f"
		fi
		if [ -n "$anchor" ]; then
			case "$path" in
			*.md)
				if ! slugs "$path" | grep -qx "$anchor"; then
					echo "$f: broken anchor: ($link) -> no heading slug '$anchor' in $path"
					echo bad >> "$FAILFLAG"
				fi
				;;
			esac
		fi
	done
}

FAILFLAG="$(mktemp)"
trap 'rm -f "$FAILFLAG"' EXIT

files="README.md"
for f in docs/*.md; do
	[ -e "$f" ] && files="$files $f"
done

for f in $files; do
	check_file "$f"
done

if [ -s "$FAILFLAG" ]; then
	echo "FAIL: $(wc -l < "$FAILFLAG") broken links"
	exit 1
fi
echo "PASS: all relative links and anchors in $files resolve"
