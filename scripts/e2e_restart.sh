#!/bin/sh
# e2e_restart.sh — the restart-determinism proof, end to end over the
# network: build the real binary, serve, ingest a fixture over HTTP,
# checkpoint, kill the process, restart from the checkpoint, finish
# the ingest, and require the final /estimates and /sources bytes to
# be identical to a single uninterrupted run. This is the property
# that makes the serving mode operable: a crash-restart cycle is
# invisible to clients.
#
# The suite runs twice: once agreement-only, once in -features mode,
# so the v2 checkpoint (learner weights, window ring, step counters)
# is covered by the same hard-kill proof as the shard state. A third
# pass damages the newest checkpoint generation on disk and requires
# the restart to fall back to the previous generation bit-exactly.
set -eu

WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/slimfast" ./cmd/slimfast

echo "== fixture"
# A deterministic claim stream: 8 sources of varying reliability
# reporting on 120 objects; source s7 is a contrarian. Split into two
# halves so the restart lands mid-stream. Each source carries a
# pipeline feature (sources 0-3 vs 4-7) for the -features pass.
awk 'BEGIN {
	print "source,object,value" > "'"$WORK"'/part1.csv"
	print "source,object,value" > "'"$WORK"'/part2.csv"
	for (o = 0; o < 120; o++) {
		for (s = 0; s < 8; s++) {
			v = "t" o % 7
			if (s == 7 || (o + s) % 11 == 0) v = "w" (o + s) % 5
			out = (o < 60) ? "'"$WORK"'/part1.csv" : "'"$WORK"'/part2.csv"
			printf "s%d,o%03d,%s\n", s, o, v >> out
		}
	}
	print "source,feature" > "'"$WORK"'/features.csv"
	for (s = 0; s < 8; s++)
		printf "s%d,pipe=%s\n", s, (s < 4 ? "a" : "b") >> "'"$WORK"'/features.csv"
}'

# start_server LOGFILE [extra flags...] — boots the server on an
# ephemeral port, sets SRV_PID, and leaves the bound address in ADDR.
# (Runs in the parent shell, not a subshell, so both survive.)
start_server() {
	log="$1"; shift
	"$WORK/slimfast" stream -listen 127.0.0.1:0 -shards 4 -epoch 64 -batch 32 "$@" > "$log" 2>&1 &
	SRV_PID=$!
	ADDR=""
	for _ in $(seq 1 100); do
		ADDR="$(sed -n 's/^# listening on //p' "$log" | head -n1)"
		[ -n "$ADDR" ] && break
		sleep 0.1
	done
	if [ -z "$ADDR" ]; then
		echo "server never came up:" >&2
		cat "$log" >&2
		exit 1
	fi
}

post_csv() { # addr file
	curl -fsS -X POST -H 'Content-Type: text/csv' --data-binary @"$2" "http://$1/v1/observe" > /dev/null
}

# restart_suite LABEL [extra server flags...] — the full proof for one
# server configuration.
restart_suite() {
	MODE="$1"; shift

	echo "== [$MODE] uninterrupted run"
	start_server "$WORK/$MODE.uninterrupted.log" "$@"
	curl -fsS "http://$ADDR/v1/healthz" > /dev/null
	post_csv "$ADDR" "$WORK/part1.csv"
	post_csv "$ADDR" "$WORK/part2.csv"
	curl -fsS -X POST "http://$ADDR/v1/refine?sweeps=2" > /dev/null
	curl -fsS "http://$ADDR/v1/estimates" > "$WORK/$MODE.estimates.uninterrupted.csv"
	curl -fsS "http://$ADDR/v1/sources" > "$WORK/$MODE.sources.uninterrupted.csv"
	kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null || true
	SRV_PID=""

	echo "== [$MODE] interrupted run: ingest half, checkpoint, kill"
	CKPT="$WORK/$MODE.engine.ckpt"
	start_server "$WORK/$MODE.run1.log" -checkpoint "$CKPT" "$@"
	post_csv "$ADDR" "$WORK/part1.csv"
	curl -fsS -X POST "http://$ADDR/v1/checkpoint" > /dev/null

	echo "== [$MODE] metrics scrape covers ingest + checkpoint"
	METRICS="$WORK/$MODE.metrics.txt"
	curl -fsS "http://$ADDR/v1/metrics" > "$METRICS"
	# Well-formed exposition: every TYPE header names a known kind, and
	# the families the suite just exercised are typed.
	grep -q '^# TYPE slimfast_engine_observations_total counter$' "$METRICS" || {
		echo "[$MODE] metrics output missing the engine observations TYPE header:" >&2
		cat "$METRICS" >&2
		exit 1
	}
	if grep '^# TYPE ' "$METRICS" | grep -Evq ' (counter|gauge|histogram)$'; then
		echo "[$MODE] metrics output has a TYPE header with an unknown kind:" >&2
		grep '^# TYPE ' "$METRICS" >&2
		exit 1
	fi
	OBSERVED="$(awk '$1 == "slimfast_engine_observations_total" { print $2 }' "$METRICS")"
	[ -n "$OBSERVED" ] && [ "$OBSERVED" -gt 0 ] 2>/dev/null || {
		echo "[$MODE] slimfast_engine_observations_total = '$OBSERVED', want > 0" >&2
		exit 1
	}
	CKPT_WRITES="$(awk '$1 == "slimfast_checkpoint_writes_total" { print $2 }' "$METRICS")"
	[ -n "$CKPT_WRITES" ] && [ "$CKPT_WRITES" -gt 0 ] 2>/dev/null || {
		echo "[$MODE] slimfast_checkpoint_writes_total = '$CKPT_WRITES', want > 0" >&2
		exit 1
	}
	grep -q '^slimfast_http_requests_total{' "$METRICS" || {
		echo "[$MODE] metrics output missing the HTTP request counters" >&2
		exit 1
	}
	echo "PASS [$MODE] metrics: $OBSERVED observations, $CKPT_WRITES checkpoint writes"

	kill -9 "$SRV_PID" && wait "$SRV_PID" 2>/dev/null || true # hard kill: the checkpoint must carry everything
	SRV_PID=""
	[ -s "$CKPT" ] || { echo "[$MODE] checkpoint file missing" >&2; exit 1; }

	echo "== [$MODE] restart from checkpoint, finish ingest"
	start_server "$WORK/$MODE.run2.log" -restore "$CKPT" -checkpoint "$CKPT" "$@"
	grep -q '^# restored ' "$WORK/$MODE.run2.log" || { echo "[$MODE] server did not restore:" >&2; cat "$WORK/$MODE.run2.log" >&2; exit 1; }
	post_csv "$ADDR" "$WORK/part2.csv"
	curl -fsS -X POST "http://$ADDR/v1/refine?sweeps=2" > /dev/null
	curl -fsS "http://$ADDR/v1/estimates" > "$WORK/$MODE.estimates.restored.csv"
	curl -fsS "http://$ADDR/v1/sources" > "$WORK/$MODE.sources.restored.csv"

	echo "== [$MODE] SIGTERM writes a shutdown checkpoint"
	kill -TERM "$SRV_PID"
	for _ in $(seq 1 100); do
		grep -q '^# shutdown checkpoint written to ' "$WORK/$MODE.run2.log" && break
		sleep 0.1
	done
	wait "$SRV_PID" 2>/dev/null || true
	SRV_PID=""
	grep -q '^# shutdown checkpoint written to ' "$WORK/$MODE.run2.log" || {
		echo "[$MODE] no shutdown checkpoint after SIGTERM:" >&2
		cat "$WORK/$MODE.run2.log" >&2
		exit 1
	}

	echo "== [$MODE] compare"
	diff "$WORK/$MODE.estimates.uninterrupted.csv" "$WORK/$MODE.estimates.restored.csv" || {
		echo "FAIL [$MODE]: /estimates diverged after restart" >&2
		exit 1
	}
	diff "$WORK/$MODE.sources.uninterrupted.csv" "$WORK/$MODE.sources.restored.csv" || {
		echo "FAIL [$MODE]: /sources diverged after restart" >&2
		exit 1
	}
	lines="$(wc -l < "$WORK/$MODE.estimates.restored.csv")"
	[ "$lines" -gt 100 ] || { echo "FAIL [$MODE]: suspiciously small estimate set ($lines lines)" >&2; exit 1; }
	echo "PASS [$MODE]: restart is byte-invisible ($lines estimate lines identical)"
}

# corruption_suite — the generation-fallback proof: build two
# checkpoint generations, damage the newest one on disk (truncation
# plus a bit flip, the classic torn-write-at-rest), and require the
# restarted server to boot from the previous generation bit-exact —
# then finish the ingest and land on the same bytes as the
# uninterrupted plain run.
corruption_suite() {
	echo "== [corrupt] build two checkpoint generations"
	CKPT="$WORK/corrupt.engine.ckpt"
	start_server "$WORK/corrupt.run1.log" -checkpoint "$CKPT" -checkpoint-keep 3
	post_csv "$ADDR" "$WORK/part1.csv"
	curl -fsS -X POST "http://$ADDR/v1/checkpoint" > /dev/null
	curl -fsS "http://$ADDR/v1/estimates" > "$WORK/corrupt.estimates.gen1.csv"
	post_csv "$ADDR" "$WORK/part2.csv"
	curl -fsS -X POST "http://$ADDR/v1/checkpoint" > /dev/null
	kill -9 "$SRV_PID" && wait "$SRV_PID" 2>/dev/null || true
	SRV_PID=""
	[ -s "$CKPT" ] && [ -s "$CKPT.1" ] || {
		echo "[corrupt] expected two generations at $CKPT{,.1}:" >&2
		ls -l "$WORK" >&2
		exit 1
	}

	echo "== [corrupt] truncate + bit-flip the newest generation"
	SIZE="$(wc -c < "$CKPT")"
	KEEP=$((SIZE * 3 / 5))
	head -c "$KEEP" "$CKPT" > "$CKPT.damaged"
	mv "$CKPT.damaged" "$CKPT"
	printf '\377' | dd of="$CKPT" bs=1 seek=$((KEEP / 2)) conv=notrunc 2>/dev/null

	echo "== [corrupt] restart must fall back to the previous generation"
	start_server "$WORK/corrupt.run2.log" -restore "$CKPT" -checkpoint "$CKPT" -checkpoint-keep 3
	grep -q 'WARNING: checkpoint generation .* unreadable' "$WORK/corrupt.run2.log" || {
		echo "[corrupt] no fallback warning in the boot log:" >&2
		cat "$WORK/corrupt.run2.log" >&2
		exit 1
	}
	grep -q "^# restored .* from $CKPT.1\$" "$WORK/corrupt.run2.log" || {
		echo "[corrupt] server did not restore from generation 1:" >&2
		cat "$WORK/corrupt.run2.log" >&2
		exit 1
	}
	curl -fsS "http://$ADDR/v1/estimates" > "$WORK/corrupt.estimates.restored.csv"
	diff "$WORK/corrupt.estimates.gen1.csv" "$WORK/corrupt.estimates.restored.csv" || {
		echo "FAIL [corrupt]: fallback generation is not bit-exact" >&2
		exit 1
	}

	echo "== [corrupt] finishing the ingest converges with the uninterrupted run"
	post_csv "$ADDR" "$WORK/part2.csv"
	curl -fsS -X POST "http://$ADDR/v1/refine?sweeps=2" > /dev/null
	curl -fsS "http://$ADDR/v1/estimates" > "$WORK/corrupt.estimates.final.csv"
	kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null || true
	SRV_PID=""
	diff "$WORK/plain.estimates.uninterrupted.csv" "$WORK/corrupt.estimates.final.csv" || {
		echo "FAIL [corrupt]: post-fallback ingest diverged from the uninterrupted run" >&2
		exit 1
	}
	echo "PASS [corrupt]: damaged generation fell back bit-exactly and converged"
}

restart_suite plain
restart_suite features -features "$WORK/features.csv"
corruption_suite

# The online run must actually have engaged the learner: its /sources
# carries the accuracy decomposition columns.
head -n1 "$WORK/features.sources.restored.csv" | grep -q '^source,accuracy,learned,empirical' || {
	echo "FAIL: -features run did not report the learned/empirical decomposition" >&2
	exit 1
}
echo "PASS: both modes restart byte-invisibly"
