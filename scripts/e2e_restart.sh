#!/bin/sh
# e2e_restart.sh — the restart-determinism proof, end to end over the
# network: build the real binary, serve, ingest a fixture over HTTP,
# checkpoint, kill the process, restart from the checkpoint, finish
# the ingest, and require the final /estimates and /sources bytes to
# be identical to a single uninterrupted run. This is the property
# that makes the serving mode operable: a crash-restart cycle is
# invisible to clients.
set -eu

WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/slimfast" ./cmd/slimfast

echo "== fixture"
# A deterministic claim stream: 8 sources of varying reliability
# reporting on 120 objects; source s7 is a contrarian. Split into two
# halves so the restart lands mid-stream.
awk 'BEGIN {
	print "source,object,value" > "'"$WORK"'/part1.csv"
	print "source,object,value" > "'"$WORK"'/part2.csv"
	for (o = 0; o < 120; o++) {
		for (s = 0; s < 8; s++) {
			v = "t" o % 7
			if (s == 7 || (o + s) % 11 == 0) v = "w" (o + s) % 5
			out = (o < 60) ? "'"$WORK"'/part1.csv" : "'"$WORK"'/part2.csv"
			printf "s%d,o%03d,%s\n", s, o, v >> out
		}
	}
}'

# start_server LOGFILE [extra flags...] — boots the server on an
# ephemeral port, sets SRV_PID, and leaves the bound address in ADDR.
# (Runs in the parent shell, not a subshell, so both survive.)
start_server() {
	log="$1"; shift
	"$WORK/slimfast" stream -listen 127.0.0.1:0 -shards 4 -epoch 64 -batch 32 "$@" > "$log" 2>&1 &
	SRV_PID=$!
	ADDR=""
	for _ in $(seq 1 100); do
		ADDR="$(sed -n 's/^# listening on //p' "$log" | head -n1)"
		[ -n "$ADDR" ] && break
		sleep 0.1
	done
	if [ -z "$ADDR" ]; then
		echo "server never came up:" >&2
		cat "$log" >&2
		exit 1
	fi
}

post_csv() { # addr file
	curl -fsS -X POST -H 'Content-Type: text/csv' --data-binary @"$2" "http://$1/observe" > /dev/null
}

echo "== uninterrupted run"
start_server "$WORK/uninterrupted.log"
curl -fsS "http://$ADDR/healthz" > /dev/null
post_csv "$ADDR" "$WORK/part1.csv"
post_csv "$ADDR" "$WORK/part2.csv"
curl -fsS "http://$ADDR/estimates" > "$WORK/estimates.uninterrupted.csv"
curl -fsS "http://$ADDR/sources" > "$WORK/sources.uninterrupted.csv"
kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "== interrupted run: ingest half, checkpoint, kill"
CKPT="$WORK/engine.ckpt"
start_server "$WORK/run1.log" -checkpoint "$CKPT"
post_csv "$ADDR" "$WORK/part1.csv"
curl -fsS -X POST "http://$ADDR/checkpoint" > /dev/null
kill -9 "$SRV_PID" && wait "$SRV_PID" 2>/dev/null || true # hard kill: the checkpoint must carry everything
SRV_PID=""
[ -s "$CKPT" ] || { echo "checkpoint file missing" >&2; exit 1; }

echo "== restart from checkpoint, finish ingest"
start_server "$WORK/run2.log" -restore "$CKPT" -checkpoint "$CKPT"
grep -q '^# restored ' "$WORK/run2.log" || { echo "server did not restore:" >&2; cat "$WORK/run2.log" >&2; exit 1; }
post_csv "$ADDR" "$WORK/part2.csv"
curl -fsS "http://$ADDR/estimates" > "$WORK/estimates.restored.csv"
curl -fsS "http://$ADDR/sources" > "$WORK/sources.restored.csv"

echo "== SIGTERM writes a shutdown checkpoint"
kill -TERM "$SRV_PID"
for _ in $(seq 1 100); do
	grep -q '^# shutdown checkpoint written to ' "$WORK/run2.log" && break
	sleep 0.1
done
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
grep -q '^# shutdown checkpoint written to ' "$WORK/run2.log" || {
	echo "no shutdown checkpoint after SIGTERM:" >&2
	cat "$WORK/run2.log" >&2
	exit 1
}

echo "== compare"
diff "$WORK/estimates.uninterrupted.csv" "$WORK/estimates.restored.csv" || {
	echo "FAIL: /estimates diverged after restart" >&2
	exit 1
}
diff "$WORK/sources.uninterrupted.csv" "$WORK/sources.restored.csv" || {
	echo "FAIL: /sources diverged after restart" >&2
	exit 1
}
lines="$(wc -l < "$WORK/estimates.restored.csv")"
[ "$lines" -gt 100 ] || { echo "FAIL: suspiciously small estimate set ($lines lines)" >&2; exit 1; }
echo "PASS: restart is byte-invisible ($lines estimate lines identical)"
