package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the drift example end to end. run itself errors
// unless the feature-aware engine out-tracks the agreement-only one
// after the cohort break, so the demo doubles as a regression test of
// the drift-recovery claim.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"beta-cohort accuracy tracking error",
		"feed=beta pipeline breaks",
		"final tracking error: feature-aware",
		"low-traffic beta source:",
		"never-seen source on feed=beta",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
