// Drift: a cohort of sources sharing a domain feature degrades
// mid-stream, and two engines race to notice — the agreement-only
// engine (cumulative counting, PR 3) against the feature-aware online
// engine (sliding-window discriminative learning, internal/online).
//
// The scenario is the paper's discriminative story run forward in
// time: "feed=beta" names a shared ingestion pipeline; when it breaks,
// every source behind it goes bad at once. The online learner sees the
// cohort's windowed agreement collapse, drags the shared feature
// weight down, and re-rates the whole cohort within a few epochs —
// including the low-traffic member the agreement-only engine barely
// re-rates at all, because its sparse new evidence drowns in its long
// good history.
//
//	go run ./examples/drift
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"slimfast/internal/online"
	"slimfast/internal/randx"
	"slimfast/internal/stream"
)

const (
	nPerCohort = 5
	epochLen   = 256
	preEpochs  = 10 // epochs of good behavior before the break
	postEpochs = 6  // epochs after the beta pipeline breaks
	domainSize = 3
	goodAcc    = 0.92
	brokenAcc  = 0.15
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// mkEngines builds the matched pair: identical estimator settings, one
// with the online learner (short drift window) and one without.
func mkEngines(features map[string][]string) (featured, plain *stream.Engine, err error) {
	base := stream.DefaultEngineOptions()
	base.Shards = 4
	base.EpochLength = epochLen

	opts := base
	opts.Features = features
	opts.Learn = online.DefaultConfig()
	opts.Learn.WindowEpochs = 4
	if featured, err = stream.NewEngine(opts); err != nil {
		return nil, nil, err
	}
	if plain, err = stream.NewEngine(base); err != nil {
		return nil, nil, err
	}
	return featured, plain, nil
}

func run(w io.Writer) error {
	// Two cohorts behind shared pipelines, plus one low-traffic member
	// of the beta cohort that reports 10× less often: the source whose
	// post-drift rating must come from its *feature*, because its own
	// recent evidence is too thin.
	features := map[string][]string{}
	var alpha, beta []string
	for i := 0; i < nPerCohort; i++ {
		a, b := fmt.Sprintf("alpha%d", i), fmt.Sprintf("beta%d", i)
		features[a] = []string{"feed=alpha"}
		features[b] = []string{"feed=beta"}
		alpha = append(alpha, a)
		beta = append(beta, b)
	}
	const rare = "beta-rare"
	features[rare] = []string{"feed=beta"}

	featured, plain, err := mkEngines(features)
	if err != nil {
		return err
	}
	rng := randx.New(7)
	obj := 0
	observe := func(source, object, value string) {
		featured.Observe(source, object, value)
		plain.Observe(source, object, value)
	}
	// One simulated event: every alpha source reports the truth with
	// goodAcc, every beta source with betaAcc; the rare beta source
	// joins one event in ten.
	event := func(betaAcc float64) {
		name := fmt.Sprintf("e%06d", obj)
		obj++
		truth := fmt.Sprintf("v%d", rng.Intn(domainSize))
		report := func(source string, acc float64) {
			v := truth
			if !rng.Bernoulli(acc) {
				v = fmt.Sprintf("x%d", rng.IntnExcept(domainSize, 0))
			}
			observe(source, name, v)
		}
		for _, s := range alpha {
			report(s, goodAcc)
		}
		for _, s := range beta {
			report(s, betaAcc)
		}
		if obj%10 == 0 {
			report(rare, betaAcc)
		}
	}
	claimsPerEvent := 2 * nPerCohort
	eventsPerEpoch := epochLen / claimsPerEvent

	trackErr := func(e *stream.Engine, trueBeta float64) float64 {
		var sum float64
		for _, s := range append(append([]string(nil), beta...), rare) {
			sum += math.Abs(e.SourceAccuracy(s) - trueBeta)
		}
		return sum / float64(nPerCohort+1)
	}

	fmt.Fprintf(w, "beta-cohort accuracy tracking error (true accuracy in brackets)\n")
	fmt.Fprintf(w, "%8s  %12s  %12s\n", "epoch", "feature-aware", "agreement-only")
	for ep := 0; ep < preEpochs; ep++ {
		for i := 0; i < eventsPerEpoch; i++ {
			event(goodAcc)
		}
	}
	fmt.Fprintf(w, "%8d  %12.3f  %12.3f   [%.2f] steady state\n",
		preEpochs, trackErr(featured, goodAcc), trackErr(plain, goodAcc), goodAcc)

	fmt.Fprintf(w, "-- feed=beta pipeline breaks: cohort accuracy %.2f -> %.2f --\n", goodAcc, brokenAcc)
	for ep := 0; ep < postEpochs; ep++ {
		for i := 0; i < eventsPerEpoch; i++ {
			event(brokenAcc)
		}
		fmt.Fprintf(w, "%8d  %12.3f  %12.3f   [%.2f]\n",
			preEpochs+ep+1, trackErr(featured, brokenAcc), trackErr(plain, brokenAcc), brokenAcc)
	}

	featErr, plainErr := trackErr(featured, brokenAcc), trackErr(plain, brokenAcc)
	fmt.Fprintf(w, "final tracking error: feature-aware %.3f vs agreement-only %.3f (lower is better)\n",
		featErr, plainErr)

	// The rare source is the discriminative punchline: almost no
	// post-drift evidence of its own, yet the shared feature re-rates
	// it. Ask both engines what they would serve for it.
	fa := featured.SourceAccuracy(rare)
	pa := plain.SourceAccuracy(rare)
	_, learned, empirical, _ := featured.SourceAccuracyDetail(rare)
	fmt.Fprintf(w, "low-traffic beta source: feature-aware %.3f (learned %.3f, empirical %.3f) vs agreement-only %.3f [true %.2f]\n",
		fa, learned, empirical, pa, brokenAcc)
	// And a source never seen at all is rated from its feature alone,
	// the serving analog of the paper's Figure 7 unseen-source curve.
	fmt.Fprintf(w, "never-seen source on feed=beta would start at %.3f (prior %.3f)\n",
		featured.PredictAccuracy([]string{"feed=beta"}), stream.DefaultEngineOptions().InitAccuracy)
	if featErr >= plainErr {
		return fmt.Errorf("feature-aware engine did not recover faster (%.3f vs %.3f)", featErr, plainErr)
	}
	return nil
}
