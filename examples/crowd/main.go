// Crowd: aggregate noisy crowdsourced sentiment labels (the paper's
// CrowdFlower weather dataset). 102 workers label 992 tweets with one
// of four sentiments, 20 workers per tweet, mean worker accuracy only
// 0.54. The example shows the EM→ERM crossover as labels accumulate
// and predicts the accuracy of workers hired tomorrow from their
// channel features alone.
//
//	go run ./examples/crowd
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/eval"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	inst, err := synth.Crowd(42)
	if err != nil {
		return err
	}
	ds := inst.Dataset
	fmt.Fprintf(w, "task: %d workers, %d tweets, %d judgments (avg worker accuracy %.2f)\n\n",
		ds.NumSources(), ds.NumObjects(), ds.NumObservations(),
		ds.AvgSourceAccuracy(inst.Gold))

	// The EM/ERM crossover (the paper's Table 4 Crowd rows): with a
	// handful of gold tweets EM wins; as gold grows ERM takes over and
	// the optimizer switches.
	fmt.Fprintln(w, "gold%  optimizer  ERM-acc  EM-acc")
	for _, frac := range []float64{0.001, 0.01, 0.05, 0.20} {
		train, test := data.Split(inst.Gold, frac, randx.New(3))
		dec := core.Decide(ds, train, core.DefaultOptimizerOptions())

		fuse := func(alg core.Algorithm) (float64, error) {
			m, err := core.Compile(ds, core.DefaultOptions())
			if err != nil {
				return 0, err
			}
			res, err := m.Fuse(alg, train)
			if err != nil {
				return 0, err
			}
			return metrics.ObjectAccuracy(res.Values, test), nil
		}
		ermAcc, err := fuse(core.AlgorithmERM)
		if err != nil {
			return err
		}
		emAcc, err := fuse(core.AlgorithmEM)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%5.1f  %-9s  %.3f    %.3f\n", frac*100, dec.Algorithm, ermAcc, emAcc)
	}

	// Predict the accuracy of never-seen workers from features alone
	// (the Figure 7 scenario): train on half the workers, predict the
	// other half.
	fmt.Fprintln(w, "\npredicting unseen workers from hiring-channel features:")
	rng := randx.New(9)
	perm := rng.Shuffled(ds.NumSources())
	half := ds.NumSources() / 2
	keep := make([]data.SourceID, half)
	for i := range keep {
		keep[i] = data.SourceID(perm[i])
	}
	sub, _, err := data.RestrictSources(ds, keep)
	if err != nil {
		return err
	}
	train := data.TruthMap{}
	for o, v := range inst.Gold {
		if len(sub.Domain(o)) > 0 {
			train[o] = v
		}
	}
	method := eval.NewSLiMFastERM()
	model, err := method.Model(sub, train)
	if err != nil {
		return err
	}
	trueAcc := ds.TrueSourceAccuracies(inst.Gold)
	var errSum float64
	for i := half; i < ds.NumSources(); i++ {
		s := data.SourceID(perm[i])
		var labels []string
		for _, k := range ds.SourceFeatures[s] {
			labels = append(labels, ds.FeatureNames[k])
		}
		errSum += abs(model.PredictAccuracy(labels) - trueAcc[s])
	}
	fmt.Fprintf(w, "mean abs error on %d unseen workers: %.3f\n",
		ds.NumSources()-half, errSum/float64(ds.NumSources()-half))
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
