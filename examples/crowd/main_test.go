package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the crowdsourcing example end to end: the
// EM/ERM crossover table and the unseen-worker prediction must both
// render.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("crowd example (~4s) in -short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"gold%  optimizer  ERM-acc  EM-acc",
		"predicting unseen workers from hiring-channel features:",
		"mean abs error on",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}
