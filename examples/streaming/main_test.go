package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the streaming example end to end: the ingest
// progress lines and the final batch refit score must render.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "claims ingested -> accuracy on objects seen so far") {
		t.Errorf("missing ingest header:\n%s", out)
	}
	if !strings.Contains(out, "(4 shards, epoch") {
		t.Errorf("missing sharded-engine summary:\n%s", out)
	}
	if !strings.Contains(out, "restored run identical: true") {
		t.Errorf("checkpoint/restore demo did not prove identity:\n%s", out)
	}
	if !strings.Contains(out, "batch EM refit") {
		t.Errorf("missing batch refit line:\n%s", out)
	}
}
