// Streaming: fuse a live feed of claims one observation at a time
// (the single-pass regime of the paper's related-work section), then
// hand the accumulated stream to the batch SLiMFast pipeline for a
// final offline refit.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"slimfast/internal/core"
	"slimfast/internal/randx"
	"slimfast/internal/stream"
	"slimfast/internal/synth"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Simulate a claim stream: 60 feeds reporting on 800 events in
	// random arrival order.
	inst, err := synth.Generate(synth.Config{
		Name: "feed", Sources: 60, Objects: 800, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.15,
		MeanAccuracy: 0.68, AccuracySD: 0.13, MinAccuracy: 0.4, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: 11,
	})
	if err != nil {
		return err
	}
	ds := inst.Dataset
	type triple struct{ s, o, v string }
	arrivals := make([]triple, 0, ds.NumObservations())
	for _, ob := range ds.Observations {
		arrivals = append(arrivals, triple{
			ds.SourceNames[ob.Source], ds.ObjectNames[ob.Object], ds.ValueNames[ob.Value],
		})
	}
	rng := randx.New(12)
	rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })

	f, err := stream.New(stream.DefaultOptions())
	if err != nil {
		return err
	}
	score := func() float64 {
		correct, total := 0, 0
		for o, truth := range inst.Gold {
			v, _, ok := f.Value(ds.ObjectNames[o])
			if !ok {
				continue
			}
			total++
			if v == ds.ValueNames[truth] {
				correct++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(correct) / float64(total)
	}

	fmt.Fprintln(w, "claims ingested -> accuracy on objects seen so far")
	for i, tr := range arrivals {
		f.Observe(tr.s, tr.o, tr.v)
		if (i+1)%(len(arrivals)/5) == 0 {
			fmt.Fprintf(w, "  %6d -> %.3f\n", i+1, score())
		}
	}
	f.Refine(2)
	fmt.Fprintf(w, "after Refine sweeps   -> %.3f\n", score())

	// Offline refit: export the accumulated claims and run batch EM.
	snap, _ := f.Snapshot("snapshot")
	m, err := core.Compile(snap, core.DefaultOptions())
	if err != nil {
		return err
	}
	res, err := m.Fuse(core.AlgorithmEM, nil)
	if err != nil {
		return err
	}
	// Score the batch result against gold, matching objects by name.
	gold := map[string]string{}
	for o, truth := range inst.Gold {
		gold[ds.ObjectNames[o]] = ds.ValueNames[truth]
	}
	correct, total := 0, 0
	for o, v := range res.Values {
		if want, ok := gold[snap.ObjectNames[o]]; ok {
			total++
			if snap.ValueNames[v] == want {
				correct++
			}
		}
	}
	fmt.Fprintf(w, "batch EM refit        -> %.3f\n", float64(correct)/float64(total))
	return nil
}
