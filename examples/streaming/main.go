// Streaming: fuse a live feed of claims through the sharded
// incremental engine (the single-pass regime of the paper's
// related-work section), watch the estimates sharpen as evidence
// arrives, checkpoint the engine mid-stream and prove a restored copy
// finishes with identical estimates (the warm-restart guarantee
// behind `slimfast stream -listen`), run the exact re-sweep, then
// hand the accumulated stream to the batch SLiMFast pipeline for a
// final offline refit.
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"slimfast/internal/core"
	"slimfast/internal/randx"
	"slimfast/internal/stream"
	"slimfast/internal/synth"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Simulate a claim stream: 60 feeds reporting on 800 events in
	// random arrival order.
	inst, err := synth.Generate(synth.Config{
		Name: "feed", Sources: 60, Objects: 800, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.15,
		MeanAccuracy: 0.68, AccuracySD: 0.13, MinAccuracy: 0.4, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: 11,
	})
	if err != nil {
		return err
	}
	ds := inst.Dataset
	arrivals := make([]stream.Triple, 0, ds.NumObservations())
	for _, ob := range ds.Observations {
		arrivals = append(arrivals, stream.Triple{
			Source: ds.SourceNames[ob.Source],
			Object: ds.ObjectNames[ob.Object],
			Value:  ds.ValueNames[ob.Value],
		})
	}
	rng := randx.New(12)
	rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })

	// A 4-shard engine with a 512-observation accuracy epoch: batches
	// ingest in parallel, yet the run is bit-identical for any worker
	// count because shards only couple through the frozen σ-table.
	opts := stream.DefaultEngineOptions()
	opts.Shards = 4
	opts.Workers = 4
	opts.EpochLength = 512
	f, err := stream.NewEngine(opts)
	if err != nil {
		return err
	}
	score := func() float64 {
		correct, total := 0, 0
		for o, truth := range inst.Gold {
			v, _, ok := f.Value(ds.ObjectNames[o])
			if !ok {
				continue
			}
			total++
			if v == ds.ValueNames[truth] {
				correct++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(correct) / float64(total)
	}

	fmt.Fprintln(w, "claims ingested -> accuracy on objects seen so far")
	const batch = 512
	// Halfway through the stream, checkpoint the engine and restore a
	// warm copy; both finish the ingest side by side.
	half := len(arrivals) / batch / 2 * batch
	var warm *stream.Engine
	var ckptSize int
	for lo := 0; lo < len(arrivals); lo += batch {
		hi := lo + batch
		if hi > len(arrivals) {
			hi = len(arrivals)
		}
		if lo == half {
			var ckpt bytes.Buffer
			if err := f.WriteCheckpoint(&ckpt); err != nil {
				return err
			}
			ckptSize = ckpt.Len()
			if warm, err = stream.Restore(&ckpt); err != nil {
				return err
			}
		}
		f.ObserveBatch(arrivals[lo:hi])
		if warm != nil {
			warm.ObserveBatch(arrivals[lo:hi])
		}
		fmt.Fprintf(w, "  %6d -> %.3f\n", hi, score())
	}
	// The restart-determinism guarantee: the restored engine lands on
	// exactly the estimates of the one that never stopped.
	est, warmEst := f.Estimates(), warm.Estimates()
	identical := len(est) == len(warmEst)
	for o, v := range est {
		if warmEst[o] != v {
			identical = false
			break
		}
	}
	fmt.Fprintf(w, "checkpoint at claim %d (%d bytes); restored run identical: %v\n",
		half, ckptSize, identical)
	f.Refine(2)
	st := f.Stats()
	fmt.Fprintf(w, "after Refine sweeps   -> %.3f  (%d shards, epoch %d)\n", score(), st.Shards, st.Epoch)

	// Offline refit: export the accumulated claims and run batch EM.
	snap, _ := f.Snapshot("snapshot")
	m, err := core.Compile(snap, core.DefaultOptions())
	if err != nil {
		return err
	}
	res, err := m.Fuse(core.AlgorithmEM, nil)
	if err != nil {
		return err
	}
	// Score the batch result against gold, matching objects by name.
	gold := map[string]string{}
	for o, truth := range inst.Gold {
		gold[ds.ObjectNames[o]] = ds.ValueNames[truth]
	}
	correct, total := 0, 0
	for o, v := range res.Values {
		if want, ok := gold[snap.ObjectNames[o]]; ok {
			total++
			if snap.ValueNames[v] == want {
				correct++
			}
		}
	}
	fmt.Fprintf(w, "batch EM refit        -> %.3f\n", float64(correct)/float64(total))
	return nil
}
