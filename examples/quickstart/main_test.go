package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the example end to end and checks its headline
// output: the 2-vs-1 conflict resolves to "false" and an accuracy
// prediction is produced.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "GIGYF2,Parkinson -> false") {
		t.Errorf("quickstart should fuse GIGYF2,Parkinson to false:\n%s", out)
	}
	if !strings.Contains(out, "Predicted accuracy of an unseen highly-cited article") {
		t.Errorf("missing unseen-source prediction line:\n%s", out)
	}
}
