// Quickstart: fuse the conflicting gene-disease claims from the
// paper's Figure 1 with the public slimfast API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"slimfast"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	p := slimfast.NewProblem("genomics-quickstart")

	// Three articles make claims about two gene-disease associations.
	// Articles 1 and 2 say GIGYF2 is NOT associated with Parkinson's;
	// article 3 disagrees.
	p.AddObservation("article1", "GIGYF2,Parkinson", "false")
	p.AddObservation("article2", "GIGYF2,Parkinson", "false")
	p.AddObservation("article3", "GIGYF2,Parkinson", "true")
	p.AddObservation("article1", "GBA,Parkinson", "true")
	p.AddObservation("article3", "GBA,Parkinson", "true")

	// Domain knowledge about the sources themselves (Section 3.1):
	// metadata that may correlate with reliability.
	p.AddFeature("article1", "citations=high")
	p.AddFeature("article2", "citations=high")
	p.AddFeature("article3", "study=GWAS")

	// A curated database supplies one ground-truth label.
	p.SetTruth("GBA,Parkinson", "true")

	// Solve. EM resolves the 2-vs-1 conflict without more labels.
	report, err := p.Solve(slimfast.WithAlgorithm(slimfast.EM), slimfast.WithSeed(1))
	if err != nil {
		return err
	}

	value, _ := report.Value("GIGYF2,Parkinson")
	fmt.Fprintf(w, "GIGYF2,Parkinson -> %s (confidence %.2f)\n",
		value, report.Confidence("GIGYF2,Parkinson"))

	fmt.Fprintln(w, "\nEstimated source accuracies:")
	for source, acc := range report.SourceAccuracies() {
		fmt.Fprintf(w, "  %-9s %.2f\n", source, acc)
	}

	// Predict the reliability of a brand-new article from metadata
	// alone (source-quality initialization, Section 5.3.2).
	fmt.Fprintf(w, "\nPredicted accuracy of an unseen highly-cited article: %.2f\n",
		report.PredictSourceAccuracy([]string{"citations=high"}))
	return nil
}
