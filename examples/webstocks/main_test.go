package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the webstocks example end to end: the Lasso
// feature ranking and the copy-detection summary must both render.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("webstocks example (~3s) in -short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"traffic features most predictive of source accuracy (Lasso path):",
		"hunting copiers among news portals (Demonstrations):",
		"mean copy weight: planted pairs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}
