// Webstocks: fuse stock-volume reports from 34 web sources whose mean
// accuracy is below 0.5 (a few excellent feeds among noisy scrapers),
// then explain which traffic statistics predict reliability via the
// Lasso path (the paper's Figure 6) and hunt for copying news portals
// on the Demonstrations dataset (Appendix D / Figure 8).
//
//	go run ./examples/webstocks
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/lasso"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	inst, err := synth.Stocks(42)
	if err != nil {
		return err
	}
	ds := inst.Dataset
	fmt.Fprintf(w, "stocks: %d web sources, %d stock-days, avg source accuracy %.2f\n",
		ds.NumSources(), ds.NumObjects(), ds.AvgSourceAccuracy(inst.Gold))

	train, test := data.Split(inst.Gold, 0.05, randx.New(5))
	model, err := core.Compile(ds, core.DefaultOptions())
	if err != nil {
		return err
	}
	res, dec, err := model.FuseAuto(train, core.DefaultOptimizerOptions())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fused with %s: volume accuracy %.3f on held-out stock-days\n\n",
		dec.Algorithm, metrics.ObjectAccuracy(res.Values, test))

	// Which traffic statistics actually predict accuracy? Run the
	// Lasso path and report the earliest-activating features.
	path, err := lasso.Compute(ds, inst.Gold, lasso.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "traffic features most predictive of source accuracy (Lasso path):")
	for i, k := range path.ActivationOrder(1e-6)[:6] {
		name := path.FeatureNames[k]
		fmt.Fprintf(w, "  %d. %-32s final weight %+.2f (latent %+.2f)\n",
			i+1, name, path.FinalWeights()[k], inst.TrueFeatureWeights[name])
	}

	// Copy detection on the Demonstrations news-source dataset.
	fmt.Fprintln(w, "\nhunting copiers among news portals (Demonstrations):")
	demos, err := synth.Demos(42)
	if err != nil {
		return err
	}
	copyOpts := core.DefaultOptions()
	copyOpts.UseFeatures = false
	copyOpts.CopyFeatures = true
	copyOpts.MinCopyOverlap = 12
	cm, err := core.Compile(demos.Dataset, copyOpts)
	if err != nil {
		return err
	}
	dtrain, _ := data.Split(demos.Gold, 0.20, randx.New(6))
	// Semi-supervised EM: agreement-on-mistakes across all objects
	// drives the copy weights, not just the labeled ones.
	if _, err := cm.FitEM(dtrain); err != nil {
		return err
	}
	planted := demos.CorrelatedPairs()
	type pair struct {
		a, b data.SourceID
		w    float64
	}
	var best []pair
	for p := 0; p < cm.NumCopyPairs(); p++ {
		a, b, wt := cm.CopyPair(p)
		best = append(best, pair{a, b, wt})
	}
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].w > best[i].w {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	for i := 0; i < 5 && i < len(best); i++ {
		p := best[i]
		mark := ""
		if planted[[2]data.SourceID{p.a, p.b}] {
			mark = "  <- planted copier"
		}
		fmt.Fprintf(w, "  %s ~ %s  weight %+.2f%s\n",
			demos.Dataset.SourceNames[p.a], demos.Dataset.SourceNames[p.b], p.w, mark)
	}
	var plantedSum, indepSum float64
	var plantedN, indepN int
	for _, p := range best {
		if planted[[2]data.SourceID{p.a, p.b}] {
			plantedSum += p.w
			plantedN++
		} else {
			indepSum += p.w
			indepN++
		}
	}
	fmt.Fprintf(w, "mean copy weight: planted pairs %+.3f vs independent pairs %+.3f (%d vs %d pairs)\n",
		plantedSum/float64(plantedN), indepSum/float64(indepN), plantedN, indepN)
	return nil
}
