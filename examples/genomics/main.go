// Genomics: the paper's motivating application at realistic scale.
// 2750 articles make sparse, conflicting claims about 571 gene-disease
// associations (~1.1 claims per article). With so little data per
// source, per-source accuracy cannot be estimated directly — SLiMFast
// pools reliability through PubMed-style metadata features and the
// optimizer picks EM for the extreme sparsity, exactly the regime the
// paper's Table 4 reports.
//
//	go run ./examples/genomics
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// The real GAD/DisGeNet data is offline; the calibrated simulator
	// matches Table 1's shape (see DESIGN.md §4).
	inst, err := synth.Genomics(42)
	if err != nil {
		return err
	}
	ds := inst.Dataset
	fmt.Fprintf(w, "corpus: %d articles, %d gene-disease pairs, %d extracted claims (density %.4f)\n",
		ds.NumSources(), ds.NumObjects(), ds.NumObservations(), ds.Density())

	// Reveal 10% of the curated labels, as a curator could afford.
	train, test := data.Split(inst.Gold, 0.10, randx.New(7))
	fmt.Fprintf(w, "curated labels: %d for training, %d held out\n\n", len(train), len(test))

	model, err := core.Compile(ds, core.DefaultOptions())
	if err != nil {
		return err
	}
	result, decision, err := model.FuseAuto(train, core.DefaultOptimizerOptions())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "optimizer chose %s (ERM units %.0f vs EM units %.0f, est. avg accuracy %.2f)\n",
		decision.Algorithm, decision.ERMUnits, decision.EMUnits, decision.AvgAccuracy)

	acc := metrics.ObjectAccuracy(result.Values, test)
	fmt.Fprintf(w, "held-out association accuracy: %.3f\n\n", acc)

	// Without features the same sparse instance is much harder —
	// the Section 5.2.1 comparison.
	plainOpts := core.DefaultOptions()
	plainOpts.UseFeatures = false
	plain, err := core.Compile(ds, plainOpts)
	if err != nil {
		return err
	}
	plainRes, err := plain.Fuse(core.AlgorithmEM, train)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "same instance without domain features: %.3f\n",
		metrics.ObjectAccuracy(plainRes.Values, test))

	// Show a few high-confidence associations a curator would review
	// first.
	fmt.Fprintln(w, "\nmost confident unlabeled associations:")
	shown := 0
	for o := 0; o < ds.NumObjects() && shown < 5; o++ {
		oid := data.ObjectID(o)
		if _, labeled := train[oid]; labeled {
			continue
		}
		v, ok := result.Values[oid]
		if !ok {
			continue
		}
		conf := result.Posterior(oid)[v]
		if conf > 0.95 {
			fmt.Fprintf(w, "  %s -> %s (%.2f)\n", ds.ObjectNames[o], ds.ValueNames[v], conf)
			shown++
		}
	}
	return nil
}
