package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the genomics example end to end: the optimizer
// must make a decision on the sparse corpus and report held-out
// accuracy.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "optimizer chose") {
		t.Errorf("missing optimizer decision line:\n%s", out)
	}
	if !strings.Contains(out, "held-out association accuracy:") {
		t.Errorf("missing accuracy line:\n%s", out)
	}
}
