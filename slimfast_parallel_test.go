package slimfast

import (
	"fmt"
	"testing"
)

// buildProblem constructs a fresh medium-size facade problem (Problems
// are consumed by Solve, so equivalence runs need one each).
func buildProblem() *Problem {
	p := NewProblem("par")
	for o := 0; o < 120; o++ {
		obj := fmt.Sprintf("obj%d", o)
		truth := "x"
		if o%3 == 0 {
			truth = "y"
		}
		for s := 0; s < 12; s++ {
			if (o+s)%2 != 0 {
				continue
			}
			src := fmt.Sprintf("src%d", s)
			v := truth
			// Sources 0-3 are unreliable: they flip odd objects.
			if s < 4 && o%2 == 1 {
				if v == "x" {
					v = "y"
				} else {
					v = "x"
				}
			}
			p.AddObservation(src, obj, v)
		}
		if o%5 == 0 {
			p.SetTruth(obj, truth)
		}
	}
	for s := 0; s < 12; s++ {
		grade := "grade=good"
		if s < 4 {
			grade = "grade=bad"
		}
		p.AddFeature(fmt.Sprintf("src%d", s), grade)
	}
	return p
}

// TestWithParallelismEquivalent is the facade-level determinism check:
// WithParallelism(n) must not change any reported number.
func TestWithParallelismEquivalent(t *testing.T) {
	for _, alg := range []Algorithm{ERM, EM, Auto} {
		serial, err := buildProblem().Solve(WithAlgorithm(alg), WithParallelism(1))
		if err != nil {
			t.Fatalf("%s serial: %v", alg, err)
		}
		for _, n := range []int{0, 4} {
			par, err := buildProblem().Solve(WithAlgorithm(alg), WithParallelism(n))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", alg, n, err)
			}
			if par.Algorithm() != serial.Algorithm() {
				t.Fatalf("%s workers=%d: algorithm %s vs %s", alg, n, par.Algorithm(), serial.Algorithm())
			}
			sv, pv := serial.Values(), par.Values()
			if len(sv) != len(pv) {
				t.Fatalf("%s workers=%d: %d vs %d fused objects", alg, n, len(sv), len(pv))
			}
			for obj, v := range sv {
				if pv[obj] != v {
					t.Fatalf("%s workers=%d: %s fused to %q vs %q", alg, n, obj, pv[obj], v)
				}
				if c1, c2 := serial.Confidence(obj), par.Confidence(obj); c1 != c2 {
					t.Fatalf("%s workers=%d: confidence(%s) %v vs %v", alg, n, obj, c1, c2)
				}
			}
			for src, acc := range serial.SourceAccuracies() {
				if got := par.SourceAccuracies()[src]; got != acc {
					t.Fatalf("%s workers=%d: accuracy(%s) %v vs %v", alg, n, src, got, acc)
				}
			}
		}
	}
}

func TestWithParallelismSmoke(t *testing.T) {
	rep, err := buildProblem().Solve(WithAlgorithm(ERM), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := rep.Value("obj0"); !ok || v != "y" {
		t.Errorf("obj0 = %q (ok=%v), want y", v, ok)
	}
	good := rep.SourceAccuracy("src8")
	bad := rep.SourceAccuracy("src1")
	if good <= bad {
		t.Errorf("reliable source should outrank flipper: %v vs %v", good, bad)
	}
}
