// Package slimfast is a Go implementation of SLiMFast (Joglekar et al.,
// SIGMOD 2017): data fusion with guaranteed results via discriminative
// probabilistic models.
//
// Data fusion unifies conflicting claims from many sources ("does gene
// GIGYF2 associate with Parkinson's?") into one estimate per object
// while learning how reliable each source is. SLiMFast models the
// posterior over true values as a logistic regression whose per-source
// reliability scores combine a source indicator with domain-specific
// features (citation counts, traffic statistics, worker channels, ...),
// learns the weights with ERM when ground truth is available or EM
// otherwise, and ships an optimizer that picks between the two.
//
// # Quick start
//
//	p := slimfast.NewProblem("genomics")
//	p.AddObservation("article1", "GIGYF2,Parkinson", "false")
//	p.AddObservation("article2", "GIGYF2,Parkinson", "false")
//	p.AddObservation("article3", "GIGYF2,Parkinson", "true")
//	p.AddFeature("article1", "citations=high")
//	p.SetTruth("GBA,Parkinson", "true")
//	report, err := p.Solve()
//	// report.Value("GIGYF2,Parkinson") == "false"
//	// report.SourceAccuracy("article3") ≈ low
//
// The internal packages expose the full machinery (factor graphs,
// baselines, the experiment harness reproducing every table and figure
// of the paper); this package is the stable user-facing surface.
package slimfast

import (
	"errors"
	"fmt"
	"io"

	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/lasso"
)

// Algorithm selects how model weights are learned.
type Algorithm string

const (
	// Auto lets SLiMFast's optimizer choose between ERM and EM.
	Auto Algorithm = "auto"
	// ERM uses empirical risk minimization (requires ground truth).
	ERM Algorithm = "erm"
	// EM uses (semi-supervised) expectation maximization.
	EM Algorithm = "em"
)

// Option customizes Solve.
type Option func(*solveConfig)

type solveConfig struct {
	algorithm Algorithm
	opts      core.Options
	optimizer core.OptimizerOptions
}

// WithAlgorithm forces a learning algorithm instead of the optimizer's
// choice.
func WithAlgorithm(a Algorithm) Option {
	return func(c *solveConfig) { c.algorithm = a }
}

// WithoutFeatures ignores domain features (the Sources-only model).
func WithoutFeatures() Option {
	return func(c *solveConfig) { c.opts.UseFeatures = false }
}

// WithCopyDetection enables Appendix D's pairwise copying features for
// source pairs co-observing at least minOverlap objects.
func WithCopyDetection(minOverlap int) Option {
	return func(c *solveConfig) {
		c.opts.CopyFeatures = true
		c.opts.MinCopyOverlap = minOverlap
	}
}

// WithGibbsInference computes posteriors by Gibbs sampling over the
// compiled factor graph (the paper's DeepDive execution path) instead
// of the exact closed form.
func WithGibbsInference() Option {
	return func(c *solveConfig) { c.opts.Inference = core.Gibbs }
}

// WithSeed fixes the random seed used by learning (results are
// deterministic for a fixed seed).
func WithSeed(seed int64) Option {
	return func(c *solveConfig) { c.opts.Optim.Seed = seed }
}

// WithParallelism bounds the worker goroutines used by learning and
// inference. n <= 0 selects runtime.GOMAXPROCS(0), the default; n == 1
// runs everything on the calling goroutine, the exact legacy serial
// path. The parallel subsystem is deterministic by construction, so
// Solve returns identical results for every setting — the knob only
// trades goroutines for wall-clock.
func WithParallelism(n int) Option {
	return func(c *solveConfig) { c.opts.Workers = n }
}

// WithOptimizerThreshold sets τ, the ERM-bound threshold of the EM/ERM
// optimizer (the paper uses 0.1).
func WithOptimizerThreshold(tau float64) Option {
	return func(c *solveConfig) { c.optimizer.Tau = tau }
}

// Problem accumulates observations, features and ground truth before
// solving. It is not safe for concurrent mutation.
type Problem struct {
	name    string
	builder *data.Builder
	truth   map[string]string
}

// NewProblem creates an empty fusion problem.
func NewProblem(name string) *Problem {
	return &Problem{
		name:    name,
		builder: data.NewBuilder(name),
		truth:   map[string]string{},
	}
}

// AddObservation records that source claims object has value. A
// repeated (source, object) pair overwrites the earlier claim.
func (p *Problem) AddObservation(source, object, value string) {
	p.builder.ObserveNames(source, object, value)
}

// AddFeature marks a Boolean domain feature (e.g. "citations=high") as
// active for the source.
func (p *Problem) AddFeature(source, feature string) {
	p.builder.SetFeature(p.builder.Source(source), feature)
}

// SetTruth provides a ground-truth label for an object. Labels power
// ERM and anchor semi-supervised EM.
func (p *Problem) SetTruth(object, value string) {
	p.truth[object] = value
}

// Report is the solved output.
type Report struct {
	ds        *data.Dataset
	result    *core.Result
	model     *core.Model
	decision  core.Decision
	algorithm Algorithm
}

// Solve compiles the problem and runs fusion. The Problem must not be
// modified afterwards.
func (p *Problem) Solve(options ...Option) (*Report, error) {
	cfg := &solveConfig{
		algorithm: Auto,
		opts:      core.DefaultOptions(),
		optimizer: core.DefaultOptimizerOptions(),
	}
	for _, o := range options {
		o(cfg)
	}
	ds := p.builder.Freeze()
	p.builder = nil
	if ds.NumObservations() == 0 {
		return nil, errors.New("slimfast: no observations")
	}
	train, err := data.TruthFromNames(ds, p.truth)
	if err != nil {
		return nil, err
	}
	m, err := core.Compile(ds, cfg.opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{ds: ds, model: m, algorithm: cfg.algorithm}
	switch cfg.algorithm {
	case Auto:
		res, dec, err := m.FuseAuto(train, cfg.optimizer)
		if err != nil {
			return nil, err
		}
		rep.result = res
		rep.decision = dec
		rep.algorithm = Algorithm(dec.Algorithm.String())
	case ERM:
		res, err := m.Fuse(core.AlgorithmERM, train)
		if err != nil {
			return nil, err
		}
		rep.result = res
	case EM:
		res, err := m.Fuse(core.AlgorithmEM, train)
		if err != nil {
			return nil, err
		}
		rep.result = res
	default:
		return nil, fmt.Errorf("slimfast: unknown algorithm %q", cfg.algorithm)
	}
	return rep, nil
}

// Algorithm reports which learner produced the result ("erm" or "em").
func (r *Report) Algorithm() Algorithm { return r.algorithm }

// Value returns the fused value for an object, or "" with ok=false
// when the object is unknown or has no observations.
func (r *Report) Value(object string) (string, bool) {
	o, ok := r.objectID(object)
	if !ok {
		return "", false
	}
	v, ok := r.result.Values[o]
	if !ok {
		return "", false
	}
	return r.ds.ValueNames[v], true
}

// Confidence returns the posterior probability of the fused value for
// the object (0 when unknown).
func (r *Report) Confidence(object string) float64 {
	o, ok := r.objectID(object)
	if !ok {
		return 0
	}
	v, ok := r.result.Values[o]
	if !ok {
		return 0
	}
	return r.result.Posterior(o)[v]
}

// Posterior returns the full posterior over the values sources claimed
// for the object (nil when unknown).
func (r *Report) Posterior(object string) map[string]float64 {
	o, ok := r.objectID(object)
	if !ok {
		return nil
	}
	post := r.result.Posterior(o)
	if post == nil {
		return nil
	}
	out := make(map[string]float64, len(post))
	for v, p := range post {
		out[r.ds.ValueNames[v]] = p
	}
	return out
}

// Values returns every fused (object, value) pair.
func (r *Report) Values() map[string]string {
	out := make(map[string]string, len(r.result.Values))
	for o, v := range r.result.Values {
		out[r.ds.ObjectNames[o]] = r.ds.ValueNames[v]
	}
	return out
}

// SourceAccuracy returns the estimated accuracy A_s of the source
// (0.5 for unknown sources).
func (r *Report) SourceAccuracy(source string) float64 {
	for s, n := range r.ds.SourceNames {
		if n == source {
			return r.result.SourceAccuracies[s]
		}
	}
	return 0.5
}

// SourceAccuracies returns every source's estimated accuracy.
func (r *Report) SourceAccuracies() map[string]float64 {
	out := make(map[string]float64, r.ds.NumSources())
	for s, n := range r.ds.SourceNames {
		out[n] = r.result.SourceAccuracies[s]
	}
	return out
}

// PredictSourceAccuracy estimates the accuracy of a source with no
// observations from its feature labels alone (source-reliability
// initialization, Section 5.3.2 of the paper).
func (r *Report) PredictSourceAccuracy(features []string) float64 {
	return r.model.PredictAccuracy(features)
}

// FeatureWeights returns the learned weight of every domain feature;
// positive weights mark features associated with accurate sources.
func (r *Report) FeatureWeights() map[string]float64 {
	out := make(map[string]float64, r.ds.NumFeatures())
	for k, n := range r.ds.FeatureNames {
		out[n] = r.model.FeatureWeight(data.FeatureID(k))
	}
	return out
}

// CopyPairs returns the detected copier pairs with their weights,
// strongest first, when Solve ran with WithCopyDetection.
func (r *Report) CopyPairs() []CopyPair {
	n := r.model.NumCopyPairs()
	out := make([]CopyPair, 0, n)
	for p := 0; p < n; p++ {
		a, b, w := r.model.CopyPair(p)
		out = append(out, CopyPair{
			SourceA: r.ds.SourceNames[a],
			SourceB: r.ds.SourceNames[b],
			Weight:  w,
		})
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Weight > out[i].Weight {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// CopyPair is a suspected copying relationship between two sources.
type CopyPair struct {
	SourceA, SourceB string
	Weight           float64
}

// OptimizerDecision explains the EM/ERM choice (only meaningful for
// Auto runs).
type OptimizerDecision struct {
	Algorithm   Algorithm
	ERMUnits    float64
	EMUnits     float64
	AvgAccuracy float64
}

// Decision returns the optimizer's reasoning for an Auto run.
func (r *Report) Decision() OptimizerDecision {
	return OptimizerDecision{
		Algorithm:   Algorithm(r.decision.Algorithm.String()),
		ERMUnits:    r.decision.ERMUnits,
		EMUnits:     r.decision.EMUnits,
		AvgAccuracy: r.decision.AvgAccuracy,
	}
}

func (r *Report) objectID(object string) (data.ObjectID, bool) {
	for o, n := range r.ds.ObjectNames {
		if n == object {
			return data.ObjectID(o), true
		}
	}
	return 0, false
}

// LassoPath computes feature-importance trajectories for a solved
// problem's dataset using its ground truth (Section 5.3.1). It returns
// feature names in activation order (earliest-activating — most
// predictive — first).
func (r *Report) LassoPath(truth map[string]string, steps int) ([]string, error) {
	tm, err := data.TruthFromNames(r.ds, truth)
	if err != nil {
		return nil, err
	}
	opts := lasso.DefaultOptions()
	if steps > 1 {
		opts.Steps = steps
	}
	p, err := lasso.Compute(r.ds, tm, opts)
	if err != nil {
		return nil, err
	}
	order := p.ActivationOrder(1e-6)
	out := make([]string, len(order))
	for i, k := range order {
		out[i] = p.FeatureNames[k]
	}
	return out, nil
}

// WriteJSON serializes the solved dataset and its fused values for
// downstream tools.
func (r *Report) WriteJSON(w io.Writer) error {
	return data.WriteJSON(w, r.ds, data.TruthMap(r.result.Values))
}
