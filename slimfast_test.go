package slimfast

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// figure1Problem builds the paper's Figure 1 example.
func figure1Problem() *Problem {
	p := NewProblem("genomics")
	p.AddObservation("article1", "GIGYF2,Parkinson", "false")
	p.AddObservation("article2", "GIGYF2,Parkinson", "false")
	p.AddObservation("article3", "GIGYF2,Parkinson", "true")
	p.AddObservation("article1", "GBA,Parkinson", "true")
	p.AddObservation("article3", "GBA,Parkinson", "true")
	p.SetTruth("GBA,Parkinson", "true")
	return p
}

func TestSolveFigure1(t *testing.T) {
	// EM exploits the 2-vs-1 conflict structure; ERM with a single
	// label cannot break the tie, so pin the algorithm here.
	rep, err := figure1Problem().Solve(WithSeed(1), WithAlgorithm(EM))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rep.Value("GIGYF2,Parkinson")
	if !ok {
		t.Fatal("no fused value for GIGYF2,Parkinson")
	}
	if v != "false" {
		t.Errorf("fused value = %q, want \"false\" (two sources against one)", v)
	}
	if conf := rep.Confidence("GIGYF2,Parkinson"); conf <= 0.5 || conf > 1 {
		t.Errorf("confidence = %v, want in (0.5, 1]", conf)
	}
	// Labeled object returned verbatim with confidence 1.
	if v, _ := rep.Value("GBA,Parkinson"); v != "true" {
		t.Errorf("labeled object value = %q", v)
	}
	if rep.Confidence("GBA,Parkinson") != 1 {
		t.Error("labeled object should have confidence 1")
	}
}

func TestSolveAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{Auto, ERM, EM} {
		rep, err := figure1Problem().Solve(WithAlgorithm(alg), WithSeed(2))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if alg != Auto && rep.Algorithm() != alg {
			t.Errorf("Algorithm() = %q, want %q", rep.Algorithm(), alg)
		}
		if alg == Auto && rep.Algorithm() != ERM && rep.Algorithm() != EM {
			t.Errorf("Auto should resolve to erm or em, got %q", rep.Algorithm())
		}
	}
	if _, err := figure1Problem().Solve(WithAlgorithm("bogus")); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestSolveEmptyProblem(t *testing.T) {
	p := NewProblem("empty")
	if _, err := p.Solve(); err == nil {
		t.Error("empty problem should error")
	}
}

func TestSolveUnknownTruthValue(t *testing.T) {
	p := NewProblem("bad")
	p.AddObservation("s", "o", "x")
	p.SetTruth("o", "never-observed")
	if _, err := p.Solve(); err == nil {
		t.Error("truth with unobserved value should error")
	}
}

func TestReportAccessors(t *testing.T) {
	rep, err := figure1Problem().Solve(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Value("unknown-object"); ok {
		t.Error("unknown object should report !ok")
	}
	if rep.Confidence("unknown-object") != 0 {
		t.Error("unknown object confidence should be 0")
	}
	if rep.Posterior("unknown-object") != nil {
		t.Error("unknown object posterior should be nil")
	}
	post := rep.Posterior("GIGYF2,Parkinson")
	var sum float64
	for _, p := range post {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("posterior sums to %v", sum)
	}
	values := rep.Values()
	if len(values) != 2 {
		t.Errorf("Values() has %d entries, want 2", len(values))
	}
	accs := rep.SourceAccuracies()
	if len(accs) != 3 {
		t.Errorf("SourceAccuracies() has %d entries, want 3", len(accs))
	}
	for s, a := range accs {
		if a <= 0 || a >= 1 {
			t.Errorf("accuracy of %s out of (0,1): %v", s, a)
		}
	}
	if rep.SourceAccuracy("nope") != 0.5 {
		t.Error("unknown source should get 0.5")
	}
}

func TestFeatureWeightsAndPrediction(t *testing.T) {
	p := NewProblem("feat")
	// Sources with feature "good" are right; "bad" sources are wrong.
	for i := 0; i < 12; i++ {
		obj := fmt.Sprintf("o%d", i)
		p.AddObservation("g1", obj, "right")
		p.AddObservation("g2", obj, "right")
		p.AddObservation("b1", obj, "wrong")
		p.SetTruth(obj, "right")
	}
	p.AddFeature("g1", "good")
	p.AddFeature("g2", "good")
	p.AddFeature("b1", "bad")
	rep, err := p.Solve(WithAlgorithm(ERM), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	fw := rep.FeatureWeights()
	if fw["good"] <= fw["bad"] {
		t.Errorf("good feature weight (%v) should exceed bad (%v)", fw["good"], fw["bad"])
	}
	pg := rep.PredictSourceAccuracy([]string{"good"})
	pb := rep.PredictSourceAccuracy([]string{"bad"})
	if pg <= pb {
		t.Errorf("predicted accuracy for good features (%v) should exceed bad (%v)", pg, pb)
	}
}

func TestWithoutFeaturesOption(t *testing.T) {
	p := figure1Problem()
	p.AddFeature("article1", "f")
	rep, err := p.Solve(WithoutFeatures(), WithAlgorithm(ERM), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if w := rep.FeatureWeights()["f"]; w != 0 {
		t.Errorf("feature weight should stay 0 without features, got %v", w)
	}
}

func TestCopyDetectionOption(t *testing.T) {
	p := NewProblem("copy")
	for i := 0; i < 10; i++ {
		obj := fmt.Sprintf("o%d", i)
		// a and b always agree (suspected copiers); c independent.
		v := "x"
		if i%2 == 0 {
			v = "y"
		}
		p.AddObservation("a", obj, v)
		p.AddObservation("b", obj, v)
		p.AddObservation("c", obj, "x")
		p.SetTruth(obj, "x")
	}
	rep, err := p.Solve(WithCopyDetection(3), WithAlgorithm(ERM), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	pairs := rep.CopyPairs()
	if len(pairs) == 0 {
		t.Fatal("copy detection should find candidate pairs")
	}
	if pairs[0].SourceA == pairs[0].SourceB {
		t.Error("degenerate copy pair")
	}
	// The (a, b) pair should rank top by weight.
	top := pairs[0]
	isAB := (top.SourceA == "a" && top.SourceB == "b") || (top.SourceA == "b" && top.SourceB == "a")
	if !isAB {
		t.Errorf("top copy pair = (%s, %s), want (a, b)", top.SourceA, top.SourceB)
	}
}

func TestGibbsInferenceOption(t *testing.T) {
	rep, err := figure1Problem().Solve(WithGibbsInference(), WithAlgorithm(EM), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rep.Value("GIGYF2,Parkinson"); v != "false" {
		t.Errorf("Gibbs inference fused value = %q, want \"false\"", v)
	}
}

func TestDecisionExposed(t *testing.T) {
	rep, err := figure1Problem().Solve(WithSeed(8), WithOptimizerThreshold(0.1))
	if err != nil {
		t.Fatal(err)
	}
	dec := rep.Decision()
	if dec.Algorithm != ERM && dec.Algorithm != EM {
		t.Errorf("decision algorithm = %q", dec.Algorithm)
	}
}

func TestLassoPathThroughFacade(t *testing.T) {
	p := NewProblem("lasso")
	truth := map[string]string{}
	for i := 0; i < 30; i++ {
		obj := fmt.Sprintf("o%d", i)
		p.AddObservation("good1", obj, "right")
		p.AddObservation("good2", obj, "right")
		p.AddObservation("bad1", obj, "wrong")
		p.AddObservation("bad2", obj, "wrong")
		truth[obj] = "right"
		p.SetTruth(obj, "right")
	}
	for _, s := range []string{"good1", "good2"} {
		p.AddFeature(s, "verified")
		p.AddFeature(s, "color=blue")
	}
	for _, s := range []string{"bad1", "bad2"} {
		p.AddFeature(s, "unverified")
		p.AddFeature(s, "color=blue")
	}
	rep, err := p.Solve(WithAlgorithm(ERM), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	order, err := rep.LassoPath(truth, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("expected 3 features, got %v", order)
	}
	// The uninformative shared feature should activate last.
	if order[len(order)-1] != "color=blue" {
		t.Errorf("activation order = %v; color=blue should be last", order)
	}
}

func TestWriteJSON(t *testing.T) {
	rep, err := figure1Problem().Solve(WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GIGYF2,Parkinson") {
		t.Error("JSON output missing object names")
	}
}
