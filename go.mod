module slimfast

go 1.24
