// Command datagen emits the calibrated dataset simulators (or a custom
// synthetic instance) as JSON/CSV files for use with cmd/slimfast or
// external tools.
//
// Usage:
//
//	datagen -dataset stocks -out ./data           # one calibrated dataset
//	datagen -dataset all -out ./data              # all four
//	datagen -sources 100 -objects 500 -density 0.1 -accuracy 0.7 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"slimfast/internal/data"
	"slimfast/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	dataset := fs.String("dataset", "", "calibrated dataset: stocks, demos, crowd, genomics or all")
	outDir := fs.String("out", ".", "output directory")
	seed := fs.Int64("seed", 42, "generation seed")
	format := fs.String("format", "json", "output format: json or csv")
	sources := fs.Int("sources", 0, "custom instance: number of sources")
	objects := fs.Int("objects", 0, "custom instance: number of objects")
	density := fs.Float64("density", 0.1, "custom instance: observation density")
	accuracy := fs.Float64("accuracy", 0.7, "custom instance: mean source accuracy")
	domain := fs.Int("domain", 2, "custom instance: values per object")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	var names []string
	switch {
	case *dataset == "all":
		names = synth.AllNames()
	case *dataset != "":
		names = []string{*dataset}
	case *sources > 0 && *objects > 0:
		inst, err := synth.Generate(synth.Config{
			Name: "custom", Sources: *sources, Objects: *objects,
			DomainSize: *domain, Assignment: synth.IIDDensity, Density: *density,
			MeanAccuracy: *accuracy, AccuracySD: 0.1,
			MinAccuracy: 0.05, MaxAccuracy: 0.99,
			EnsureTruthObserved: true, Seed: *seed,
		})
		if err != nil {
			return err
		}
		return write(inst, *outDir, *format)
	default:
		return fmt.Errorf("need -dataset or (-sources and -objects); run with -h")
	}
	for _, name := range names {
		inst, err := synth.NamedDataset(name, *seed)
		if err != nil {
			return err
		}
		if err := write(inst, *outDir, *format); err != nil {
			return err
		}
	}
	return nil
}

func write(inst *synth.Instance, dir, format string) error {
	name := inst.Dataset.Name
	switch format {
	case "json":
		path := filepath.Join(dir, name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := data.WriteJSON(f, inst.Dataset, inst.Gold); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d sources, %d objects, %d observations)\n",
			path, inst.Dataset.NumSources(), inst.Dataset.NumObjects(), inst.Dataset.NumObservations())
		return nil
	case "csv":
		writeCSV := func(suffix string, fn func(f *os.File) error) error {
			path := filepath.Join(dir, name+"-"+suffix+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := fn(f); err != nil {
				return err
			}
			fmt.Println("wrote", path)
			return nil
		}
		if err := writeCSV("observations", func(f *os.File) error {
			return data.WriteObservationsCSV(f, inst.Dataset)
		}); err != nil {
			return err
		}
		if err := writeCSV("features", func(f *os.File) error {
			return data.WriteFeaturesCSV(f, inst.Dataset)
		}); err != nil {
			return err
		}
		return writeCSV("truth", func(f *os.File) error {
			return data.WriteTruthCSV(f, inst.Dataset, inst.Gold)
		})
	default:
		return fmt.Errorf("unknown -format %q", format)
	}
}
