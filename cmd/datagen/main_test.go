package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slimfast/internal/data"
)

func TestRunCalibratedJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dataset", "crowd", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "crowd.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, truth, err := data.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSources() != 102 || ds.NumObjects() != 992 {
		t.Errorf("crowd shape wrong: %d sources, %d objects", ds.NumSources(), ds.NumObjects())
	}
	if len(truth) == 0 {
		t.Error("truth missing from JSON")
	}
}

func TestRunCustomCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-sources", "12", "-objects", "30", "-density", "0.4",
		"-accuracy", "0.7", "-out", dir, "-format", "csv"})
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"observations", "features", "truth"} {
		b, err := os.ReadFile(filepath.Join(dir, "custom-"+suffix+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", suffix, err)
		}
		if !strings.Contains(string(b), ",") {
			t.Errorf("%s csv looks empty", suffix)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir}); err == nil {
		t.Error("no dataset or custom size should error")
	}
	if err := run([]string{"-dataset", "nope", "-out", dir}); err == nil {
		t.Error("unknown dataset should error")
	}
	if err := run([]string{"-dataset", "crowd", "-out", dir, "-format", "xml"}); err == nil {
		t.Error("unknown format should error")
	}
}
