// Command experiments regenerates the tables and figures of the
// SLiMFast paper's evaluation (Section 5 plus appendices) on the
// calibrated dataset simulators.
//
// Usage:
//
//	experiments -list
//	experiments -exp table2            # one experiment
//	experiments -exp all               # the whole suite
//	experiments -exp fig4a -quick      # smaller instances, 1 seed
//	experiments -exp table3 -seeds 5   # average over 5 splits
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"slimfast/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	expID := fs.String("exp", "all", "experiment id (see -list) or \"all\"")
	list := fs.Bool("list", false, "list experiments and exit")
	quick := fs.Bool("quick", false, "quick mode: smaller instances, fewer settings")
	seeds := fs.Int("seeds", 3, "random splits to average per configuration")
	dataSeed := fs.Int64("dataseed", 42, "dataset generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range eval.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := eval.Config{Quick: *quick, DataSeed: *dataSeed}
	for i := 0; i < *seeds; i++ {
		cfg.Seeds = append(cfg.Seeds, int64(i+1))
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1}
	}

	var targets []eval.Experiment
	if *expID == "all" {
		targets = eval.All()
	} else {
		e, ok := eval.ByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *expID)
		}
		targets = []eval.Experiment{e}
	}
	for _, e := range targets {
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}
