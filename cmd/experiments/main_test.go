package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment run in -short mode")
	}
	if err := run([]string{"-exp", "table1", "-quick", "-seeds", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}
