package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/synth"
)

// writeTestCSVs materializes a small instance as the three CSVs.
func writeTestCSVs(t *testing.T) (obs, feat, truth string) {
	t.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "cli", Sources: 15, Objects: 80, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.3,
		MeanAccuracy: 0.7, AccuracySD: 0.1, MinAccuracy: 0.5, MaxAccuracy: 0.9,
		Features: []synth.FeatureGroup{
			{Name: "f", Cardinality: 4, Informative: true, WeightScale: 1.5},
		},
		EnsureTruthObserved: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	obs = filepath.Join(dir, "obs.csv")
	feat = filepath.Join(dir, "feat.csv")
	truth = filepath.Join(dir, "truth.csv")
	write := func(path string, fn func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
	}
	write(obs, func(f *os.File) error { return data.WriteObservationsCSV(f, inst.Dataset) })
	write(feat, func(f *os.File) error { return data.WriteFeaturesCSV(f, inst.Dataset) })
	write(truth, func(f *os.File) error { return data.WriteTruthCSV(f, inst.Dataset, inst.Gold) })
	return obs, feat, truth
}

func TestRunCSVPipeline(t *testing.T) {
	obs, feat, truth := writeTestCSVs(t)
	var out bytes.Buffer
	err := run([]string{"-obs", obs, "-features", feat, "-truth", truth, "-algorithm", "erm"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "via erm") {
		t.Errorf("missing banner: %s", s[:80])
	}
	if !strings.Contains(s, "object,value,confidence") || !strings.Contains(s, "source,accuracy") {
		t.Error("missing CSV headers in output")
	}
	// Every object row should carry a confidence in (0, 1].
	lines := strings.Split(s, "\n")
	sawObject := false
	for _, l := range lines {
		if strings.HasPrefix(l, "o") && strings.Count(l, ",") == 2 {
			sawObject = true
			break
		}
	}
	if !sawObject {
		t.Error("no fused object rows in output")
	}
}

func TestRunAlgorithms(t *testing.T) {
	obs, _, truth := writeTestCSVs(t)
	for _, alg := range []string{"auto", "em", "erm"} {
		var out bytes.Buffer
		if err := run([]string{"-obs", obs, "-truth", truth, "-algorithm", alg}, &out); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-obs", obs, "-algorithm", "bogus"}, &out); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestRunRequiresInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -obs/-json should error")
	}
	if err := run([]string{"-obs", "/nonexistent/x.csv"}, &out); err == nil {
		t.Error("missing file should error")
	}
}

func TestRunJSONInput(t *testing.T) {
	inst, err := synth.Generate(synth.Config{
		Name: "clijson", Sources: 10, Objects: 40, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.4,
		MeanAccuracy: 0.7, AccuracySD: 0.1, MinAccuracy: 0.5, MaxAccuracy: 0.9,
		EnsureTruthObserved: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.WriteJSON(f, inst.Dataset, inst.Gold); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-json", path, "-algorithm", "em"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "via em") {
		t.Error("JSON pipeline did not run EM")
	}
}

func TestRunWritesOutputFiles(t *testing.T) {
	obs, _, truth := writeTestCSVs(t)
	dir := t.TempDir()
	valPath := filepath.Join(dir, "values.csv")
	accPath := filepath.Join(dir, "accs.csv")
	var out bytes.Buffer
	err := run([]string{"-obs", obs, "-truth", truth, "-algorithm", "erm",
		"-values", valPath, "-accuracies", accPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := os.ReadFile(valPath)
	if err != nil || !strings.Contains(string(vals), "object,value,confidence") {
		t.Errorf("values file wrong: %v", err)
	}
	accs, err := os.ReadFile(accPath)
	if err != nil || !strings.Contains(string(accs), "source,accuracy") {
		t.Errorf("accuracies file wrong: %v", err)
	}
}

func TestRunCopyDetectionFlag(t *testing.T) {
	obs, _, truth := writeTestCSVs(t)
	var out bytes.Buffer
	if err := run([]string{"-obs", obs, "-truth", truth, "-algorithm", "erm", "-copy", "3"}, &out); err != nil {
		t.Fatal(err)
	}
}
