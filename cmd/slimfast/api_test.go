package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"slimfast/internal/query"
	"slimfast/internal/stream"
)

// decodeEnvelope asserts a response carries the uniform error envelope
// and returns its code.
func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("non-JSON error body (%d): %s", rec.Code, rec.Body)
	}
	if env.Error == "" {
		t.Fatalf("envelope without error message (%d): %s", rec.Code, rec.Body)
	}
	if env.Code == "" {
		t.Fatalf("envelope without code (%d): %s", rec.Code, rec.Body)
	}
	return env.Code
}

// TestErrorEnvelopeMapping pins the status → code table of the uniform
// envelope.
func TestErrorEnvelopeMapping(t *testing.T) {
	for status, want := range map[int]string{
		http.StatusBadRequest:            "bad_request",
		http.StatusRequestEntityTooLarge: "bad_request",
		http.StatusRequestTimeout:        "timeout",
		http.StatusConflict:              "conflict",
		http.StatusTooManyRequests:       "shed",
		http.StatusServiceUnavailable:    "shed",
		http.StatusInternalServerError:   "internal",
	} {
		rec := httptest.NewRecorder()
		httpErrorTo(rec, io.Discard, status, "boom")
		if got := decodeEnvelope(t, rec); got != want {
			t.Errorf("status %d code = %q, want %q", status, got, want)
		}
	}
}

// TestErrorEnvelopeEndpoints drives every non-2xx family through real
// handlers and asserts each answer carries the envelope with the right
// code: 400 bad_request, 409 conflict, 429 shed, 500 internal, 503 in
// both its shed (saturation) and timeout (lock deadline) flavors.
func TestErrorEnvelopeEndpoints(t *testing.T) {
	plain := testServer(testEngine(t, 1), "", 32)
	h := plain.handler()

	cases := []struct {
		name     string
		rec      *httptest.ResponseRecorder
		status   int
		wantCode string
	}{
		{"bad ndjson", doReq(t, h, "POST", "/v1/observe", "", "{broken\n"), 400, "bad_request"},
		{"unknown query column", doReq(t, h, "GET", "/v1/estimates?where=bogus>1", "", ""), 400, "bad_request"},
		{"unknown format", doReq(t, h, "GET", "/v1/estimates?format=xml", "", ""), 400, "bad_request"},
		{"bad refine sweeps", doReq(t, h, "POST", "/v1/refine?sweeps=zero", "", ""), 400, "bad_request"},
		{"checkpoint without store", doReq(t, h, "POST", "/v1/checkpoint", "", ""), 409, "conflict"},
		{"features without learner", doReq(t, h, "GET", "/v1/features", "", ""), 409, "conflict"},
	}

	// 429: a body past the in-flight byte budget sheds.
	shedSrv := newStreamServer(testEngine(t, 1), serveConfig{Batch: 32, MaxInflightBytes: 16}, io.Discard)
	cases = append(cases, struct {
		name     string
		rec      *httptest.ResponseRecorder
		status   int
		wantCode string
	}{"saturated observe", doReq(t, shedSrv.handler(), "POST", "/v1/observe", "text/csv", streamCSV(20)), 429, "shed"})

	// 503/timeout: a wedged ingest lock past the request deadline.
	lockSrv := newStreamServer(testEngine(t, 1), serveConfig{Batch: 8, RequestTimeout: 30 * time.Millisecond}, io.Discard)
	lockSrv.lock <- struct{}{}
	lockRec := doReq(t, lockSrv.handler(), "POST", "/v1/observe", "text/csv", "s,o,v\n")
	<-lockSrv.lock
	cases = append(cases, struct {
		name     string
		rec      *httptest.ResponseRecorder
		status   int
		wantCode string
	}{"lock deadline", lockRec, 503, "timeout"})

	// 503/shed: a saturated readiness probe.
	satSrv := newStreamServer(testEngine(t, 1), serveConfig{Batch: 32, MaxInflightReqs: 1}, io.Discard)
	release, err := satSrv.gate.Acquire(1)
	if err != nil {
		t.Fatal(err)
	}
	satRec := doReq(t, satSrv.handler(), "GET", "/v1/readyz", "", "")
	release()
	cases = append(cases, struct {
		name     string
		rec      *httptest.ResponseRecorder
		status   int
		wantCode string
	}{"saturated readyz", satRec, 503, "shed"})

	// 500/internal: a poisoned request through the panic recoverer.
	panicH := recoverPanicsTo(io.Discard, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("poisoned")
	}))
	cases = append(cases, struct {
		name     string
		rec      *httptest.ResponseRecorder
		status   int
		wantCode string
	}{"handler panic", doReq(t, panicH, "GET", "/v1/estimates", "", ""), 500, "internal"})

	for _, tc := range cases {
		if tc.rec.Code != tc.status {
			t.Errorf("%s: status = %d, want %d: %s", tc.name, tc.rec.Code, tc.status, tc.rec.Body)
			continue
		}
		if got := decodeEnvelope(t, tc.rec); got != tc.wantCode {
			t.Errorf("%s: code = %q, want %q", tc.name, got, tc.wantCode)
		}
	}
}

// doReqAccept is doReq with an Accept header.
func doReqAccept(t *testing.T, h http.Handler, method, path, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	req.Header.Set("Accept", accept)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestServeQueryLanguageAndNegotiation covers the relational surface
// of GET /v1/estimates and /v1/sources on one node: filters, ordering,
// limits, grouping, disagree pairs, and CSV/NDJSON negotiation.
func TestServeQueryLanguageAndNegotiation(t *testing.T) {
	h := testServer(testEngine(t, 2), "", 32).handler()
	if rec := doReq(t, h, "POST", "/v1/observe", "text/csv", streamCSV(40)); rec.Code != http.StatusOK {
		t.Fatalf("observe = %d: %s", rec.Code, rec.Body)
	}

	// Plain CSV is the legacy byte surface.
	plain := doReq(t, h, "GET", "/v1/estimates", "", "")
	if ct := plain.Header().Get("Content-Type"); ct != "text/csv" {
		t.Errorf("plain content type = %q", ct)
	}
	if !strings.HasPrefix(plain.Body.String(), "object,value,confidence\n") {
		t.Errorf("plain body:\n%s", plain.Body)
	}

	// The unversioned path is an alias: byte-identical answers.
	if got := doReq(t, h, "GET", "/estimates?order=object&limit=2", "", "").Body.String(); got != doReq(t, h, "GET", "/v1/estimates?order=object&limit=2", "", "").Body.String() {
		t.Error("unversioned alias diverges from /v1")
	}

	// Accept negotiation selects NDJSON; ?format=json is equivalent.
	viaAccept := doReqAccept(t, h, "GET", "/v1/estimates?limit=3", "application/json")
	if ct := viaAccept.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("negotiated content type = %q", ct)
	}
	viaParam := doReq(t, h, "GET", "/v1/estimates?limit=3&format=json", "", "")
	if viaAccept.Body.String() != viaParam.Body.String() {
		t.Error("Accept negotiation and ?format=json disagree")
	}
	lines := strings.Split(strings.TrimSpace(viaAccept.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("limit=3 returned %d NDJSON rows", len(lines))
	}
	var row struct {
		Object     string      `json:"object"`
		Value      string      `json:"value"`
		Confidence json.Number `json:"confidence"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil || row.Object == "" {
		t.Errorf("NDJSON row %q: %v", lines[0], err)
	}

	// Filter + order + limit + projection. streamCSV's consensus value
	// is "t" everywhere, claimed by two good sources against one bad.
	rec := doReq(t, h, "GET", "/v1/estimates?where=value=t&order=object&limit=2&cols=object,value", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Body.String(); got != "object,value\no000,t\no001,t\n" {
		t.Errorf("filtered query:\n%s", got)
	}

	// Group aggregation.
	rec = doReq(t, h, "GET", "/v1/estimates?group=value&agg=count", "", "")
	if got := rec.Body.String(); got != "value,count\nt,40\n" {
		t.Errorf("group query:\n%s", got)
	}

	// Disagree pair: good1 says t, bad says w, on every object.
	rec = doReq(t, h, "GET", "/v1/estimates?disagree=good1,bad&cols=object&order=object&limit=2", "", "")
	if got := rec.Body.String(); got != "object\no000\no001\n" {
		t.Errorf("disagree query:\n%s", got)
	}

	// Sources speak the same language.
	rec = doReq(t, h, "GET", "/v1/sources?where=source=good1&cols=source", "", "")
	if got := rec.Body.String(); got != "source\ngood1\n" {
		t.Errorf("sources query:\n%s", got)
	}
	if rec := doReqAccept(t, h, "GET", "/v1/sources?where=accuracy>=0", "application/json"); rec.Header().Get("Content-Type") != "application/x-ndjson" {
		t.Errorf("sources negotiation content type = %q", rec.Header().Get("Content-Type"))
	}
}

// refQueryBytes runs raw through the single reference engine and
// renders it in format — the byte-exactness oracle for router queries.
func refQueryBytes(t *testing.T, ref *stream.Engine, raw, format string) string {
	t.Helper()
	vals, err := url.ParseQuery(raw)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse(vals, query.EstimateColumns())
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Execute(ref, q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := query.Write(&buf, res, format); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRouterQueryGoldenEquivalence is the scatter-gather proof: every
// query shape served through a three-node router is byte-identical to
// the same query against one three-shard engine — predicates, ordering
// and limits pushed to the members, group partials folded node-major.
func TestRouterQueryGoldenEquivalence(t *testing.T) {
	const nodes, batch, epochLen = 3, 32, 64
	claims := goldenClaims()

	refOpts := stream.DefaultEngineOptions()
	refOpts.Shards = nodes
	refOpts.EpochLength = epochLen
	ref, err := stream.NewEngine(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(claims); lo += batch {
		hi := min(lo+batch, len(claims))
		ref.ObserveBatch(claims[lo:hi])
	}

	rs := newGoldenCluster(t, nodes, batch, epochLen)
	if rec := doReq(t, rs.handler(), "POST", "/v1/observe?seq=qgolden", "application/x-ndjson", ndjsonFromTriples(claims)); rec.Code != http.StatusOK {
		t.Fatalf("observe: %d %s", rec.Code, rec.Body)
	}

	queries := []string{
		"where=confidence<0.999&order=-contested&limit=12&cols=object,value,confidence,contested",
		"order=-contested,object&limit=7",
		"where=value=t0&cols=object&order=object",
		"disagree=s0,s7&order=object&limit=9",
		"group=value&agg=count,avg:confidence,max:contested",
		"group=value&agg=count&where=sources>=8",
	}
	for _, raw := range queries {
		for _, format := range []string{"csv", "json"} {
			want := refQueryBytes(t, ref, raw, format)
			rec := doReq(t, rs.handler(), "GET", "/v1/estimates?"+raw+"&format="+format, "", "")
			if rec.Code != http.StatusOK {
				t.Fatalf("%s (%s): %d %s", raw, format, rec.Code, rec.Body)
			}
			if got := rec.Body.String(); got != want {
				t.Errorf("%s (%s) diverged from the single engine\nrouter:\n%s\nreference:\n%s", raw, format, got, want)
			}
		}
	}

	// Accept negotiation works on the router too.
	rec := doReqAccept(t, rs.handler(), "GET", "/v1/estimates?order=-contested&limit=3", "application/json")
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("router negotiation content type = %q", ct)
	}
	if want := refQueryBytes(t, ref, "order=-contested&limit=3", "json"); rec.Body.String() != want {
		t.Error("router negotiated NDJSON diverged from the single engine")
	}

	// Sources queries run over the merged cluster table; the oracle is
	// the same query over the reference engine's merged CSV.
	var srcBuf bytes.Buffer
	if err := writeSourceAccuraciesCSV(&srcBuf, ref); err != nil {
		t.Fatal(err)
	}
	srcCols := []query.Column{
		{Name: "source", Kind: query.KindString},
		{Name: "accuracy", Kind: query.KindFloat},
	}
	rel, err := parseSourcesCSV(srcBuf.String(), srcCols)
	if err != nil {
		t.Fatal(err)
	}
	srcRaw := "order=-accuracy,source&limit=3"
	vals, _ := url.ParseQuery(srcRaw)
	q, err := query.Parse(vals, srcCols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.ExecuteRelation(rel, q)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := query.Write(&want, res, "json"); err != nil {
		t.Fatal(err)
	}
	rec = doReq(t, rs.handler(), "GET", "/v1/sources?"+srcRaw+"&format=json", "", "")
	if rec.Code != http.StatusOK || rec.Body.String() != want.String() {
		t.Errorf("router sources query diverged (%d)\nrouter:\n%s\nreference:\n%s", rec.Code, rec.Body, want.String())
	}

	// Bad queries carry the envelope through the router.
	rec = doReq(t, rs.handler(), "GET", "/v1/estimates?where=bogus>1", "", "")
	if rec.Code != http.StatusBadRequest || decodeEnvelope(t, rec) != "bad_request" {
		t.Errorf("router bad query = %d: %s", rec.Code, rec.Body)
	}

	// A learner-less cluster answers /v1/features with 409 + envelope.
	rec = doReq(t, rs.handler(), "GET", "/v1/features", "", "")
	if rec.Code != http.StatusConflict || decodeEnvelope(t, rec) != "conflict" {
		t.Errorf("router features without learner = %d: %s", rec.Code, rec.Body)
	}
}

// TestRouterFeaturesRelay: with a feature-mode member in the cluster,
// GET /v1/features on the router relays its weight table.
func TestRouterFeaturesRelay(t *testing.T) {
	opts := stream.DefaultEngineOptions()
	opts.Shards = 1
	opts.EpochLength = stream.ExternalEpochLength
	opts.Features = map[string][]string{"good1": {"tier=reviewed"}}
	eng, err := stream.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(testServer(eng, "", 8).handler())
	t.Cleanup(srv.Close)
	rs := newGoldenClusterOver(t, []string{srv.URL}, 8, 16)
	rec := doReq(t, rs.handler(), "GET", "/v1/features", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("router features = %d: %s", rec.Code, rec.Body)
	}
	if !strings.HasPrefix(rec.Body.String(), "feature,weight\n") {
		t.Errorf("router features body:\n%s", rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/csv" {
		t.Errorf("router features content type = %q", ct)
	}
}
