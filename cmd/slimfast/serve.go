// The network serving mode behind `slimfast stream -listen`: an HTTP
// API over the sharded engine, so the streaming reproduction runs as
// a long-lived service — claims arrive over the wire, estimates are
// queried live, and the engine state survives restarts through
// generation-rotated checkpoints and the SIGTERM handler.
//
// Endpoints (canonical under /v1; the unversioned paths are
// deprecated aliases kept for one release — see docs/API.md):
//
//	POST /v1/observe     ingest claims (NDJSON objects or text/csv rows);
//	                     idempotent when stamped with X-Batch-Seq
//	GET  /v1/estimates   the estimates relation: plain dump, or filtered /
//	                     ordered / limited / grouped via query parameters
//	                     (where, order, limit, cols, group, agg, disagree);
//	                     CSV by default, NDJSON via format=json or
//	                     Accept: application/json
//	GET  /v1/sources     source accuracies, same query language and formats
//	GET  /v1/features    online learner feature weights as CSV
//	POST /v1/refine      run the exact re-sweep (?sweeps=N, default 2)
//	POST /v1/checkpoint  write a checkpoint generation to the -checkpoint path
//	GET  /v1/healthz     liveness + engine stats as JSON
//	GET  /v1/readyz      readiness: 503 + Retry-After under admission pressure
//	POST /v1/epoch/drain cluster control plane: drain settled evidence deltas
//	POST /v1/epoch/mass  cluster control plane: exact refine mass
//	POST /v1/epoch/apply cluster control plane: install a pushed σ-table
//
// Every non-2xx response carries the uniform error envelope
// {"error": ..., "code": shed|timeout|bad_request|conflict|internal}
// (the mux's own plain-text 404/405 excepted).
//
// The three /epoch endpoints are the member half of cluster mode (see
// internal/cluster and `slimfast router`): idempotent by coordinator
// tag, serialized on the ingest lock, and refused (409) by engines
// running the online learner. On a member started with
// -external-epochs, POST /refine is refused (409) — the router
// coordinates cluster-wide refines.
//
// Ingest requests are serialized: for a fixed sequence of /observe
// bodies the engine state (and so the /estimates bytes) is identical
// run to run and across checkpoint/restore restarts — the property
// the e2e restart job in CI pins down.
//
// The server is overload-safe by construction: an admission gate
// bounds in-flight ingest bytes and requests (excess is shed with
// 429 + Retry-After before any body is read), -request-timeout bounds
// how long one request may trickle its body or wait on the ingest
// lock, and every handler runs inside a panic-recovery middleware so
// a poisoned request becomes a logged 500, not a dead service.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"slimfast/internal/obs"
	"slimfast/internal/query"
	"slimfast/internal/resilience"
	"slimfast/internal/stream"
)

// serveConfig carries the serving-mode knobs from the flag set.
type serveConfig struct {
	Addr  string
	Batch int

	// Store is the generation-rotated checkpoint store; nil disables
	// the /checkpoint endpoint, periodic checkpointing and the final
	// shutdown checkpoint.
	Store *stream.CheckpointStore

	// CheckpointEvery enables periodic background checkpointing at
	// this cadence (0 = only on demand and at shutdown).
	CheckpointEvery time.Duration

	// RequestTimeout bounds one request end to end: the body read
	// deadline and the wait for the ingest lock. 0 = no deadline.
	RequestTimeout time.Duration

	// Admission budgets: maximum concurrent in-flight ingest bytes and
	// requests before /observe sheds with 429. <= 0 = unbounded.
	MaxInflightBytes int64
	MaxInflightReqs  int64

	// Registry is the metrics registry GET /v1/metrics scrapes; nil
	// gets a fresh one (the HTTP families still register and serve).
	Registry *obs.Registry

	// LogFormat selects the structured-log encoding: "text" (default)
	// or "json".
	LogFormat string
}

// streamServer wires the engine to the HTTP handlers.
type streamServer struct {
	eng  *stream.Engine
	cfg  serveConfig
	logw io.Writer
	log  *slog.Logger
	reg  *obs.Registry
	met  httpMetrics
	ins  *instrumentor
	gate *resilience.Gate
	// lock serializes ingest, refine and checkpoint requests — the
	// channel form of a mutex, so acquisition can honor a request
	// deadline. Queries stay lock-free (the engine is concurrent-safe);
	// the lock exists so a replayed request sequence deterministically
	// reproduces the same engine state and checkpoints land on request
	// boundaries.
	lock chan struct{}

	// Single-entry response caches for the /epoch coordination
	// endpoints, keyed by the router's barrier tag and guarded by the
	// ingest lock. Draining is destructive, so a router retry whose
	// first response was lost must get the cached drain back instead of
	// draining (now-empty) vectors a second time.
	drainCache epochCache
	massCache  epochCache
	applyCache epochCache
}

// epochCache replays the response of an idempotent-by-tag exchange.
type epochCache struct {
	tag  string
	resp any
}

func newStreamServer(eng *stream.Engine, cfg serveConfig, logw io.Writer) *streamServer {
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := newComponentLogger(cfg.LogFormat, logw, "serve")
	ins := newInstrumentor(reg, log)
	return &streamServer{
		eng:  eng,
		cfg:  cfg,
		logw: logw,
		log:  log,
		reg:  reg,
		met:  ins.met,
		ins:  ins,
		gate: resilience.NewGate(cfg.MaxInflightBytes, cfg.MaxInflightReqs),
		lock: make(chan struct{}, 1),
	}
}

// acquireIngest takes the ingest lock, giving up when ctx expires.
func (s *streamServer) acquireIngest(ctx context.Context) bool {
	select {
	case s.lock <- struct{}{}:
		return true
	default:
	}
	select {
	case s.lock <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (s *streamServer) releaseIngest() { <-s.lock }

// handler builds the route table. Method matching is delegated to the
// ServeMux patterns (wrong methods get 405 for free); the whole mux
// runs behind the panic-recovery middleware.
// Every route is mounted twice: the canonical /v1 path and the
// unversioned alias kept for one release (see README's deprecation
// note). Unmatched paths and wrong methods get the mux's plain-text
// 404/405 — the one surface outside the JSON error envelope.
func (s *streamServer) handler() http.Handler {
	mux := http.NewServeMux()
	handleBoth(mux, "POST /observe", s.handleObserve, s.ins)
	handleBoth(mux, "GET /estimates", s.handleEstimates, s.ins)
	handleBoth(mux, "GET /sources", s.handleSources, s.ins)
	handleBoth(mux, "GET /features", s.handleFeatures, s.ins)
	handleBoth(mux, "POST /refine", s.handleRefine, s.ins)
	handleBoth(mux, "POST /checkpoint", s.handleCheckpoint, s.ins)
	handleBoth(mux, "GET /healthz", s.handleHealthz, s.ins)
	handleBoth(mux, "GET /readyz", s.handleReadyz, s.ins)
	handleBoth(mux, "POST /epoch/drain", s.handleEpochDrain, s.ins)
	handleBoth(mux, "POST /epoch/mass", s.handleEpochMass, s.ins)
	handleBoth(mux, "POST /epoch/apply", s.handleEpochApply, s.ins)
	// The scrape endpoint is versioned-only: it is new in this release,
	// so no deprecated alias exists to keep.
	mux.HandleFunc("GET /v1/metrics", s.ins.route("/v1/metrics", s.reg.Handler().ServeHTTP))
	return s.ins.middleware(mux)
}

// lockTimeout reports a request that gave up waiting for the ingest
// lock: 503 + Retry-After like shedding, but with code "timeout" — the
// deadline expired, the server is not necessarily saturated.
func (s *streamServer) lockTimeout(w http.ResponseWriter, r *http.Request, op string) {
	s.met.timeouts.Inc()
	w.Header().Set("Retry-After", "1")
	httpErrorCodeLog(w, requestLogger(r.Context(), s.log), http.StatusServiceUnavailable, "timeout",
		op+": timed out waiting for the ingest lock; retry with backoff")
}

// requestContext derives the deadline-bounded context for one request
// when -request-timeout is set.
func (s *streamServer) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// maxObserveBody caps one /observe request at 256 MiB: large enough
// for bulk ingest chunks, small enough that a hostile or buggy client
// cannot OOM the long-running service with a single unbounded body.
// Bigger streams just arrive as multiple requests.
const maxObserveBody = 256 << 20

// shed rejects a request with 429 + Retry-After — the contract the
// resilience ingest client retries against.
func (s *streamServer) shed(w http.ResponseWriter, r *http.Request, msg string) {
	s.met.shed.Inc()
	w.Header().Set("Retry-After", "1")
	s.httpError(w, r, http.StatusTooManyRequests, msg)
}

// handleObserve ingests a claim body. text/csv bodies use the
// source,object,value exchange format (header row optional); anything
// else is parsed as NDJSON. Claims feed the engine in fixed-size
// deterministic batches, exactly like the CLI ingest loop.
//
// Requests stamped with an idempotency key (X-Batch-Seq header or
// ?seq=) are exactly-once within the engine's dedup window: a
// retried delivery of an already-ingested batch is acknowledged
// without re-ingesting, and the window rides inside checkpoints so
// the guarantee holds across restarts.
func (s *streamServer) handleObserve(w http.ResponseWriter, r *http.Request) {
	// Admission first, before a byte of body is read: reserve the
	// declared Content-Length against the in-flight budget and shed
	// with 429 when the server is saturated.
	n := r.ContentLength
	if n < 0 {
		n = 1 << 20 // chunked body: reserve a nominal slot
	}
	release, err := s.gate.Acquire(n)
	if err != nil {
		s.shed(w, r, "observe: server saturated; retry with backoff")
		return
	}
	defer release()

	seq := seqKey(r)
	if seq != "" && s.eng.SeqSeen(seq) {
		// Fast path for retry storms: drop the duplicate before the
		// body read and the lock. The authoritative check still happens
		// under the lock below for requests that race here.
		s.deduped(w, r, seq)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	if s.cfg.RequestTimeout > 0 {
		// Cut off trickling bodies at the deadline: without this a
		// client sending one byte per minute holds its admission slot
		// forever (the lock is safe — it is taken after the read).
		rc := http.NewResponseController(w)
		rc.SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout))
		defer rc.SetReadDeadline(time.Time{})
	}

	// Read the whole body before taking the ingest lock: the lock is
	// held at request granularity (the determinism unit), and a client
	// trickling its body must not wedge every other ingest and
	// checkpoint request behind it.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("observe: body exceeds %d bytes; split the stream into smaller requests", tooBig.Limit))
			return
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.httpError(w, r, http.StatusRequestTimeout,
				fmt.Sprintf("observe: body not received within %v", s.cfg.RequestTimeout))
			return
		}
		s.httpError(w, r, http.StatusBadRequest, fmt.Sprintf("observe: reading body: %v", err))
		return
	}

	if !s.acquireIngest(ctx) {
		s.lockTimeout(w, r, "observe")
		return
	}
	defer s.releaseIngest()

	// Authoritative dedup, now that we hold the lock: of two racing
	// deliveries of the same key, exactly one ingests. A key is marked
	// before ingest so a mid-body 400 (claims before the bad row are
	// already in) is not re-applied by a confused retry.
	if seq != "" && !s.eng.MarkSeq(seq) {
		s.deduped(w, r, seq)
		return
	}

	buf := make([]stream.Triple, 0, s.cfg.Batch)
	var ingested int64
	flush := func() {
		if len(buf) > 0 {
			s.eng.ObserveBatch(buf)
			ingested += int64(len(buf))
			buf = buf[:0]
		}
	}
	err = parseClaimBody(body, r.Header.Get("Content-Type"), func(source, object, value string) error {
		if source == "" || object == "" || value == "" {
			return errEmptyClaimField
		}
		buf = append(buf, stream.Triple{Source: source, Object: object, Value: value})
		if len(buf) == cap(buf) {
			flush()
		}
		return nil
	})
	flush()
	if err != nil {
		// Claims before the bad row are already ingested; report both.
		s.httpError(w, r, http.StatusBadRequest, fmt.Sprintf("observe: %v (ingested %d claims before the error)", err, ingested))
		return
	}
	// The one info-level record per ingest request: with the request ID
	// attached by the middleware, this is what makes a router fan-out
	// followable across member logs.
	log := requestLogger(r.Context(), s.log)
	log.LogAttrs(r.Context(), slog.LevelInfo, "ingested claims",
		slog.Int64("claims", ingested), slog.String("seq", seq))
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"ingested":     ingested,
		"observations": s.eng.Stats().Observations,
	})
}

// deduped acknowledges an already-ingested idempotency key.
func (s *streamServer) deduped(w http.ResponseWriter, r *http.Request, seq string) {
	s.met.dedupReplays.Inc()
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"ingested":     0,
		"deduped":      true,
		"seq":          seq,
		"observations": s.eng.Stats().Observations,
	})
}

// serveCSV renders through emit into a buffer first, so an emit
// failure can still become a clean 500 — writing straight to the
// ResponseWriter would commit a 200 before the error surfaced.
func (s *streamServer) serveCSV(w http.ResponseWriter, r *http.Request, emit func(io.Writer) error) {
	var buf bytes.Buffer
	if err := emit(&buf); err != nil {
		s.httpError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if _, err := w.Write(buf.Bytes()); err != nil {
		requestLogger(r.Context(), s.log).Warn("writing CSV response failed", slog.Any("error", err))
	}
}

// serveResult renders a query result in the negotiated format, buffered
// so a failure still becomes a clean 500.
func (s *streamServer) serveResult(w http.ResponseWriter, r *http.Request, res *query.Result, format string) {
	var buf bytes.Buffer
	if err := query.Write(&buf, res, format); err != nil {
		s.httpError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", resultContentType(format))
	if _, err := w.Write(buf.Bytes()); err != nil {
		requestLogger(r.Context(), s.log).Warn("writing query response failed", slog.Any("error", err))
	}
}

// handleEstimates serves the estimates relation. Bare requests stream
// the legacy CSV bytes (what the restart e2e test byte-compares); any
// query parameter routes through the relational executor, and the
// format parameter / Accept header select CSV or NDJSON. The internal
// partial=1 flag (cluster scatter) returns unfinalized group
// aggregates for the router to fold.
func (s *streamServer) handleEstimates(w http.ResponseWriter, r *http.Request) {
	q, err := query.Parse(r.URL.Query(), query.EstimateColumns())
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "estimates: "+err.Error())
		return
	}
	format, err := negotiateFormat(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "estimates: "+err.Error())
		return
	}
	if q.IsPlain() && format == "csv" {
		s.serveCSV(w, r, func(out io.Writer) error { return writeEstimatesCSV(out, s.eng) })
		return
	}
	var res *query.Result
	if r.URL.Query().Get("partial") != "" {
		res, err = query.ExecutePartial(s.eng, q)
	} else {
		res, err = query.Execute(s.eng, q)
	}
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "estimates: "+err.Error())
		return
	}
	s.serveResult(w, r, res, format)
}

// sourcesRelation materializes the source accuracy table with the
// legacy column set (the online decomposition columns when the engine
// learns), so queried and negotiated reads share one schema with the
// plain CSV surface.
func sourcesRelation(eng *stream.Engine) *query.Relation {
	str := func(s string) query.Val { return query.Val{Kind: query.KindString, Str: s} }
	num := func(f float64) query.Val { return query.Val{Kind: query.KindFloat, Num: f} }
	if !eng.OnlineLearning() {
		rel := &query.Relation{Cols: []query.Column{
			{Name: "source", Kind: query.KindString},
			{Name: "accuracy", Kind: query.KindFloat},
		}}
		for _, s := range eng.Sources() {
			rel.Rows = append(rel.Rows, []query.Val{str(s), num(eng.SourceAccuracy(s))})
		}
		return rel
	}
	rel := &query.Relation{Cols: []query.Column{
		{Name: "source", Kind: query.KindString},
		{Name: "accuracy", Kind: query.KindFloat},
		{Name: "learned", Kind: query.KindFloat},
		{Name: "empirical", Kind: query.KindFloat},
	}}
	for _, s := range eng.Sources() {
		acc, learned, empirical, ok := eng.SourceAccuracyDetail(s)
		if !ok {
			continue
		}
		rel.Rows = append(rel.Rows, []query.Val{str(s), num(acc), num(learned), num(empirical)})
	}
	return rel
}

// handleSources serves the source accuracy relation with the same
// query language and content negotiation as /estimates.
func (s *streamServer) handleSources(w http.ResponseWriter, r *http.Request) {
	rel := sourcesRelation(s.eng)
	q, err := query.Parse(r.URL.Query(), rel.Cols)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "sources: "+err.Error())
		return
	}
	format, err := negotiateFormat(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "sources: "+err.Error())
		return
	}
	if q.IsPlain() && format == "csv" {
		s.serveCSV(w, r, func(out io.Writer) error { return writeSourceAccuraciesCSV(out, s.eng) })
		return
	}
	res, err := query.ExecuteRelation(rel, q)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "sources: "+err.Error())
		return
	}
	s.serveResult(w, r, res, format)
}

// handleFeatures exposes the online learner's model — the intercept
// plus every feature's learned weight — so an operator can see what
// the discriminative layer has learned without a checkpoint dump.
// Engines without an online learner get 409, matching how /checkpoint
// reports a missing -checkpoint path.
func (s *streamServer) handleFeatures(w http.ResponseWriter, r *http.Request) {
	intercept, feats, ok := s.eng.FeatureWeights()
	if !ok {
		s.httpError(w, r, http.StatusConflict, "features: engine has no online learner (start with -features)")
		return
	}
	s.serveCSV(w, r, func(out io.Writer) error { return writeFeatureWeightsCSV(out, intercept, feats) })
}

// maxRefineSweeps caps an operator-requested re-sweep: each sweep is
// O(total claims), and an absurd count from a typo must not wedge the
// ingest lock for hours.
const maxRefineSweeps = 64

// handleRefine runs the exact re-estimation re-sweep (Engine.Refine)
// on operator demand — the way to tighten single-pass estimates to
// the batch fixed point without restarting the service. The optional
// ?sweeps=N query selects the sweep count (default 2). The request
// holds the ingest lock: the engine itself is safe to refine during
// ingest, but serializing on request boundaries keeps a replayed
// request sequence deterministic, like /observe and /checkpoint. A
// refine storm therefore queues on the lock — with -request-timeout
// set, the queue sheds itself with 503s instead of piling up.
func (s *streamServer) handleRefine(w http.ResponseWriter, r *http.Request) {
	if s.eng.ExternalEpochs() {
		// A member-local refine would rebuild σ from this partition's
		// mass alone and silently fork the cluster's accuracy state.
		s.httpError(w, r, http.StatusConflict,
			"refine: this node's epochs are externally coordinated (-external-epochs); POST /refine on the router")
		return
	}
	sweeps := 2
	if q := r.URL.Query().Get("sweeps"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > maxRefineSweeps {
			s.httpError(w, r, http.StatusBadRequest,
				fmt.Sprintf("refine: sweeps must be an integer in [1,%d], got %q", maxRefineSweeps, q))
			return
		}
		sweeps = n
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	if !s.acquireIngest(ctx) {
		s.lockTimeout(w, r, "refine")
		return
	}
	defer s.releaseIngest()
	s.eng.Refine(sweeps)
	st := s.eng.Stats()
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"sweeps":       sweeps,
		"epoch":        st.Epoch,
		"observations": st.Observations,
	})
}

// handleCheckpoint durably checkpoints the engine as a new generation
// and reports where the bytes went.
func (s *streamServer) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		s.httpError(w, r, http.StatusConflict, "no -checkpoint path configured")
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	if !s.acquireIngest(ctx) {
		s.lockTimeout(w, r, "checkpoint")
		return
	}
	defer s.releaseIngest()
	if err := s.cfg.Store.Write(s.eng); err != nil {
		s.httpError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	path := s.cfg.Store.Path()
	var size int64
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	fmt.Fprintf(s.logw, "# checkpoint written to %s (%d bytes)\n", path, size)
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"path":        path,
		"bytes":       size,
		"generations": s.cfg.Store.Keep(),
	})
}

// handleHealthz reports liveness plus the engine counters. It always
// answers 200 while the process is up — readiness (can the server
// take more load?) is /readyz's job.
func (s *streamServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"status":       "ok",
		"shards":       st.Shards,
		"sources":      st.Sources,
		"objects":      st.Objects,
		"observations": st.Observations,
		"epoch":        st.Epoch,
		"evicted":      st.EvictedObjects,
	})
}

// handleReadyz reports admission pressure: 200 with the in-flight
// counters while the gate has headroom, 503 + Retry-After when
// saturated — the signal a load balancer uses to rotate a replica
// out before its clients see 429s.
func (s *streamServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reqs, inflight, shed := s.gate.Pressure()
	body := map[string]any{
		"inflight_requests": reqs,
		"inflight_bytes":    inflight,
		"shed_total":        shed,
	}
	if s.gate.Saturated() {
		body["status"] = "overloaded"
		// Non-2xx responses carry the uniform error envelope keys even
		// when, as here, they also carry diagnostic detail.
		body["error"] = "server saturated; retry with backoff"
		body["code"] = "shed"
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, r, http.StatusServiceUnavailable, body)
		return
	}
	body["status"] = "ready"
	s.writeJSON(w, r, http.StatusOK, body)
}

func (s *streamServer) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	writeJSONLog(w, requestLogger(r.Context(), s.log), code, v)
}

func (s *streamServer) httpError(w http.ResponseWriter, r *http.Request, code int, msg string) {
	httpErrorLog(w, requestLogger(r.Context(), s.log), code, msg)
}

// epochRequest is the body of the /epoch coordination endpoints. Tag
// is the coordinator's idempotency key for the exchange: a retried
// request with the tag of the last completed exchange replays its
// response without re-executing — draining is destructive, so this is
// what makes a barrier safe to retry after a lost response.
type epochRequest struct {
	Tag        string                  `json:"tag"`
	Accuracies []stream.SourceAccuracy `json:"accuracies,omitempty"`
	Rescore    bool                    `json:"rescore,omitempty"`
}

// decodeEpochRequest reads and parses an /epoch request body.
func (s *streamServer) decodeEpochRequest(w http.ResponseWriter, r *http.Request) (epochRequest, bool) {
	var req epochRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, fmt.Sprintf("epoch: reading body: %v", err))
		return req, false
	}
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			s.httpError(w, r, http.StatusBadRequest, fmt.Sprintf("epoch: parsing body: %v", err))
			return req, false
		}
	}
	return req, true
}

// runEpoch wraps one coordination exchange: take the ingest lock
// (coordination moves are request-serialized like everything that
// mutates the engine), replay the cached response when the tag
// matches, otherwise execute and cache. Engines running the online
// learner refuse with 409.
func (s *streamServer) runEpoch(w http.ResponseWriter, r *http.Request, cache *epochCache, exec func(req epochRequest) (any, error)) {
	req, ok := s.decodeEpochRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	if !s.acquireIngest(ctx) {
		s.lockTimeout(w, r, "epoch")
		return
	}
	defer s.releaseIngest()
	if req.Tag != "" && req.Tag == cache.tag {
		s.writeJSON(w, r, http.StatusOK, cache.resp)
		return
	}
	resp, err := exec(req)
	switch {
	case errors.Is(err, stream.ErrOnlineUnsupported):
		s.httpError(w, r, http.StatusConflict, err.Error())
		return
	case err != nil:
		s.httpError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if req.Tag != "" {
		cache.tag, cache.resp = req.Tag, resp
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// handleEpochDrain hands the coordinator this engine's settled
// evidence deltas since the last drain — the cluster form of the
// shard drain an epoch refresh starts with.
func (s *streamServer) handleEpochDrain(w http.ResponseWriter, r *http.Request) {
	s.runEpoch(w, r, &s.drainCache, func(req epochRequest) (any, error) {
		stats, err := s.eng.DrainDeltas()
		if err != nil {
			return nil, err
		}
		return map[string]any{"tag": req.Tag, "sources": stats}, nil
	})
}

// handleEpochMass hands the coordinator one Refine sweep's exact
// per-source posterior mass (evicted base included).
func (s *streamServer) handleEpochMass(w http.ResponseWriter, r *http.Request) {
	s.runEpoch(w, r, &s.massCache, func(req epochRequest) (any, error) {
		stats, err := s.eng.RefineMass()
		if err != nil {
			return nil, err
		}
		return map[string]any{"tag": req.Tag, "sources": stats}, nil
	})
}

// handleEpochApply installs the coordinator's merged accuracy table as
// the new frozen σ-table; with "rescore" every live object is rescored
// eagerly (the re-sweep half of a distributed Refine).
func (s *streamServer) handleEpochApply(w http.ResponseWriter, r *http.Request) {
	s.runEpoch(w, r, &s.applyCache, func(req epochRequest) (any, error) {
		if err := s.eng.ApplyAccuracies(req.Accuracies, req.Rescore); err != nil {
			return nil, err
		}
		return map[string]any{"tag": req.Tag, "epoch": s.eng.Stats().Epoch, "applied": len(req.Accuracies)}, nil
	})
}

// checkpointLoop runs periodic background checkpointing: every tick
// it takes the ingest lock (so generations land on request
// boundaries), writes a generation, and on failure retries with
// exponential backoff instead of silently skipping ticks — a full
// disk gets retried until space returns or the server stops.
func (s *streamServer) checkpointLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	bo := resilience.NewBackoff(1)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for {
			if !s.acquireIngest(ctx) {
				return
			}
			err := s.cfg.Store.Write(s.eng)
			s.releaseIngest()
			if err == nil {
				bo.Reset()
				fmt.Fprintf(s.logw, "# periodic checkpoint written to %s\n", s.cfg.Store.Path())
				break
			}
			d := bo.Next()
			s.log.Warn("periodic checkpoint failed",
				slog.Any("error", err), slog.Duration("retry_in", d))
			if !resilienceSleep(ctx, d) {
				return
			}
		}
	}
}

// resilienceSleep waits d unless ctx ends first.
func resilienceSleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// serveStream runs the HTTP service until SIGTERM/SIGINT or a fatal
// listener error. On a signal it stops accepting, drains in-flight
// requests, and — when a checkpoint store is configured — writes a
// final generation so the next `-restore` boot resumes exactly here.
func serveStream(eng *stream.Engine, cfg serveConfig, stdout io.Writer) error {
	s := newStreamServer(eng, cfg, stdout)
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	// The resolved address line is machine-readable on purpose: with
	// -listen :0 it is how scripts discover the port.
	fmt.Fprintf(stdout, "# listening on %s\n", ln.Addr())
	// No ReadTimeout: large ingest bodies may legitimately take a
	// while, and -request-timeout bounds them per request when the
	// operator wants that. Header and idle timeouts still shed dead
	// connections.
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.Store != nil && cfg.CheckpointEvery > 0 {
		go s.checkpointLoop(ctx, cfg.CheckpointEvery)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var shutdownErr error
	select {
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		fmt.Fprintf(stdout, "# signal received, draining connections\n")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		// A drain timeout (a client still holding a request) must not
		// skip the final checkpoint — WriteCheckpoint is safe
		// concurrent with ingest, so save what we have either way.
		shutdownErr = srv.Shutdown(shutCtx)
	case err := <-errc:
		// A fatal listener error still falls through to the final
		// checkpoint: the operator configured durability, and the
		// engine state is intact even when the socket is not.
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			shutdownErr = err
		}
	}
	if cfg.Store != nil {
		if err := cfg.Store.Write(eng); err != nil {
			return errors.Join(shutdownErr, err)
		}
		st := eng.Stats()
		fmt.Fprintf(stdout, "# shutdown checkpoint written to %s (%d observations)\n", cfg.Store.Path(), st.Observations)
	}
	return shutdownErr
}
