// The network serving mode behind `slimfast stream -listen`: an HTTP
// API over the sharded engine, so the streaming reproduction runs as
// a long-lived service — claims arrive over the wire, estimates are
// queried live, and the engine state survives restarts through the
// checkpoint endpoints and the SIGTERM handler.
//
// Endpoints:
//
//	POST /observe     ingest claims (NDJSON objects or text/csv rows)
//	GET  /estimates   every live object's MAP value as CSV
//	GET  /sources     source accuracies as CSV
//	POST /refine      run the exact re-sweep (?sweeps=N, default 2)
//	POST /checkpoint  write the engine checkpoint to the -checkpoint path
//	GET  /healthz     liveness + engine stats as JSON
//
// Ingest requests are serialized: for a fixed sequence of /observe
// bodies the engine state (and so the /estimates bytes) is identical
// run to run and across checkpoint/restore restarts — the property
// the e2e restart job in CI pins down.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"slimfast/internal/data"
	"slimfast/internal/stream"
)

// streamServer wires the engine to the HTTP handlers.
type streamServer struct {
	eng      *stream.Engine
	ckptPath string
	batch    int
	logw     io.Writer

	// mu serializes ingest and checkpoint requests. Queries stay
	// lock-free (the engine is concurrent-safe); the lock exists so a
	// replayed request sequence deterministically reproduces the same
	// engine state, checkpoints land on request boundaries, and the
	// batch buffer is not shared between in-flight bodies.
	mu sync.Mutex
}

func newStreamServer(eng *stream.Engine, ckptPath string, batch int, logw io.Writer) *streamServer {
	if batch < 1 {
		batch = 1
	}
	return &streamServer{eng: eng, ckptPath: ckptPath, batch: batch, logw: logw}
}

// handler builds the route table. Method matching is delegated to the
// ServeMux patterns (wrong methods get 405 for free).
func (s *streamServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /observe", s.handleObserve)
	mux.HandleFunc("GET /estimates", s.handleEstimates)
	mux.HandleFunc("GET /sources", s.handleSources)
	mux.HandleFunc("POST /refine", s.handleRefine)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// observation is one NDJSON ingest record.
type observation struct {
	Source string `json:"source"`
	Object string `json:"object"`
	Value  string `json:"value"`
}

// maxObserveBody caps one /observe request at 256 MiB: large enough
// for bulk ingest chunks, small enough that a hostile or buggy client
// cannot OOM the long-running service with a single unbounded body.
// Bigger streams just arrive as multiple requests.
const maxObserveBody = 256 << 20

// handleObserve ingests a claim body. text/csv bodies use the
// source,object,value exchange format (header row optional); anything
// else is parsed as NDJSON. Claims feed the engine in fixed-size
// deterministic batches, exactly like the CLI ingest loop.
func (s *streamServer) handleObserve(w http.ResponseWriter, r *http.Request) {
	// Read the whole body before taking the ingest lock: the lock is
	// held at request granularity (the determinism unit), and a client
	// trickling its body must not wedge every other ingest and
	// checkpoint request behind it.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("observe: body exceeds %d bytes; split the stream into smaller requests", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("observe: reading body: %v", err))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]stream.Triple, 0, s.batch)
	var n int64
	flush := func() {
		if len(buf) > 0 {
			s.eng.ObserveBatch(buf)
			n += int64(len(buf))
			buf = buf[:0]
		}
	}
	add := func(source, object, value string) error {
		if source == "" || object == "" || value == "" {
			return errors.New("source, object and value must all be non-empty")
		}
		buf = append(buf, stream.Triple{Source: source, Object: object, Value: value})
		if len(buf) == cap(buf) {
			flush()
		}
		return nil
	}

	if ct := r.Header.Get("Content-Type"); strings.Contains(ct, "csv") {
		err = data.StreamObservationsCSV(bytes.NewReader(body), add)
	} else {
		dec := json.NewDecoder(bytes.NewReader(body))
		row := 0
		for {
			var ob observation
			if derr := dec.Decode(&ob); derr == io.EOF {
				break
			} else if derr != nil {
				err = fmt.Errorf("ndjson row %d: %w", row+1, derr)
				break
			}
			row++
			if aerr := add(ob.Source, ob.Object, ob.Value); aerr != nil {
				err = fmt.Errorf("ndjson row %d: %w", row, aerr)
				break
			}
		}
	}
	flush()
	if err != nil {
		// Claims before the bad row are already ingested; report both.
		httpError(w, http.StatusBadRequest, fmt.Sprintf("observe: %v (ingested %d claims before the error)", err, n))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested":     n,
		"observations": s.eng.Stats().Observations,
	})
}

// serveCSV renders through emit into a buffer first, so an emit
// failure can still become a clean 500 — writing straight to the
// ResponseWriter would commit a 200 before the error surfaced.
func serveCSV(w http.ResponseWriter, emit func(io.Writer) error) {
	var buf bytes.Buffer
	if err := emit(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Write(buf.Bytes())
}

// handleEstimates serves the live MAP estimates as CSV — the same
// bytes the CLI's -values output produces, which is what the restart
// e2e test byte-compares.
func (s *streamServer) handleEstimates(w http.ResponseWriter, r *http.Request) {
	serveCSV(w, func(out io.Writer) error { return writeEstimatesCSV(out, s.eng) })
}

// handleSources serves source accuracies as CSV.
func (s *streamServer) handleSources(w http.ResponseWriter, r *http.Request) {
	serveCSV(w, func(out io.Writer) error { return writeSourceAccuraciesCSV(out, s.eng) })
}

// maxRefineSweeps caps an operator-requested re-sweep: each sweep is
// O(total claims), and an absurd count from a typo must not wedge the
// ingest lock for hours.
const maxRefineSweeps = 64

// handleRefine runs the exact re-estimation re-sweep (Engine.Refine)
// on operator demand — the way to tighten single-pass estimates to
// the batch fixed point without restarting the service. The optional
// ?sweeps=N query selects the sweep count (default 2). The request
// holds the ingest lock: the engine itself is safe to refine during
// ingest, but serializing on request boundaries keeps a replayed
// request sequence deterministic, like /observe and /checkpoint.
func (s *streamServer) handleRefine(w http.ResponseWriter, r *http.Request) {
	sweeps := 2
	if q := r.URL.Query().Get("sweeps"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > maxRefineSweeps {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("refine: sweeps must be an integer in [1,%d], got %q", maxRefineSweeps, q))
			return
		}
		sweeps = n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng.Refine(sweeps)
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"sweeps":       sweeps,
		"epoch":        st.Epoch,
		"observations": st.Observations,
	})
}

// handleCheckpoint durably checkpoints the engine to the configured
// path and reports where the bytes went.
func (s *streamServer) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.ckptPath == "" {
		httpError(w, http.StatusConflict, "no -checkpoint path configured")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.eng.WriteCheckpointFile(s.ckptPath); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var size int64
	if fi, err := os.Stat(s.ckptPath); err == nil {
		size = fi.Size()
	}
	fmt.Fprintf(s.logw, "# checkpoint written to %s (%d bytes)\n", s.ckptPath, size)
	writeJSON(w, http.StatusOK, map[string]any{"path": s.ckptPath, "bytes": size})
}

// handleHealthz reports liveness plus the engine counters.
func (s *streamServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"shards":       st.Shards,
		"sources":      st.Sources,
		"objects":      st.Objects,
		"observations": st.Observations,
		"epoch":        st.Epoch,
		"evicted":      st.EvictedObjects,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}

// serveStream runs the HTTP service until SIGTERM/SIGINT or a fatal
// listener error. On a signal it stops accepting, drains in-flight
// requests, and — when a -checkpoint path is configured — writes a
// final checkpoint so the next `-restore` boot resumes exactly here.
func serveStream(eng *stream.Engine, addr, ckptPath string, batch int, stdout io.Writer) error {
	s := newStreamServer(eng, ckptPath, batch, stdout)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address line is machine-readable on purpose: with
	// -listen :0 it is how scripts discover the port.
	fmt.Fprintf(stdout, "# listening on %s\n", ln.Addr())
	// No ReadTimeout: large ingest bodies may legitimately take a
	// while. Header and idle timeouts still shed dead connections.
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var shutdownErr error
	select {
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		fmt.Fprintf(stdout, "# signal received, draining connections\n")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		// A drain timeout (a client still holding a request) must not
		// skip the final checkpoint — WriteCheckpoint is safe
		// concurrent with ingest, so save what we have either way.
		shutdownErr = srv.Shutdown(shutCtx)
	case err := <-errc:
		// A fatal listener error still falls through to the final
		// checkpoint: the operator configured durability, and the
		// engine state is intact even when the socket is not.
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			shutdownErr = err
		}
	}
	if ckptPath != "" {
		if err := eng.WriteCheckpointFile(ckptPath); err != nil {
			return errors.Join(shutdownErr, err)
		}
		st := eng.Stats()
		fmt.Fprintf(stdout, "# shutdown checkpoint written to %s (%d observations)\n", ckptPath, st.Observations)
	}
	return shutdownErr
}
