package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"slimfast/internal/cluster"
	"slimfast/internal/resilience"
	"slimfast/internal/stream"
)

// goldenClaims builds a deterministic workload with real disagreement:
// eight sources over 120 objects, where source s7 is a contrarian and
// every (o+s)%11 claim dissents, so accuracies move at every epoch.
func goldenClaims() []stream.Triple {
	var out []stream.Triple
	for o := 0; o < 120; o++ {
		obj := fmt.Sprintf("obj%03d", o)
		for s := 0; s < 8; s++ {
			val := fmt.Sprintf("t%d", o%7)
			if s == 7 || (o+s)%11 == 0 {
				val = fmt.Sprintf("w%d", (o+s)%5)
			}
			out = append(out, stream.Triple{Source: fmt.Sprintf("s%d", s), Object: obj, Value: val})
		}
	}
	return out
}

func ndjsonFromTriples(claims []stream.Triple) string {
	var sb strings.Builder
	for _, tr := range claims {
		fmt.Fprintf(&sb, "{\"source\":%q,\"object\":%q,\"value\":%q}\n", tr.Source, tr.Object, tr.Value)
	}
	return sb.String()
}

// newGoldenCluster starts nodes member engines behind real node
// handlers plus a router over them, mirroring the reference geometry:
// one single-shard externally-coordinated member per reference shard.
func newGoldenCluster(t *testing.T, nodes, batch, epochLen int) *routerServer {
	t.Helper()
	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		opts := stream.DefaultEngineOptions()
		opts.Shards = 1
		opts.EpochLength = stream.ExternalEpochLength
		eng, err := stream.NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(testServer(eng, "", batch).handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return newGoldenClusterOver(t, urls, batch, epochLen)
}

// newGoldenClusterOver builds a router over already-running member URLs.
func newGoldenClusterOver(t *testing.T, urls []string, batch, epochLen int) *routerServer {
	t.Helper()
	rt, err := cluster.New(cluster.Config{
		Nodes:       urls,
		Batch:       batch,
		EpochLength: epochLen,
		Retry:       resilience.ClientConfig{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return newRouterServer(rt, io.Discard, nil, "text")
}

// TestRouterGoldenEquivalence is the tentpole's proof at the HTTP
// layer: a three-node cluster driven entirely through the router's
// public surface produces byte-identical /estimates and /sources to a
// single three-shard engine fed the same claim stream in the same
// chunks — after ingest with epoch barriers, and again after a
// cluster-wide refine.
func TestRouterGoldenEquivalence(t *testing.T) {
	const nodes, batch, epochLen = 3, 32, 64
	claims := goldenClaims()

	refOpts := stream.DefaultEngineOptions()
	refOpts.Shards = nodes
	refOpts.EpochLength = epochLen
	ref, err := stream.NewEngine(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(claims); lo += batch {
		hi := min(lo+batch, len(claims))
		ref.ObserveBatch(claims[lo:hi])
	}

	rs := newGoldenCluster(t, nodes, batch, epochLen)
	rec := doReq(t, rs.handler(), http.MethodPost, "/v1/observe?seq=golden", "application/x-ndjson", ndjsonFromTriples(claims))
	if rec.Code != http.StatusOK {
		t.Fatalf("observe: %d %s", rec.Code, rec.Body)
	}

	refCSV := func(emit func(w *bytes.Buffer) error) string {
		var buf bytes.Buffer
		if err := emit(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	wantEst := refCSV(func(w *bytes.Buffer) error { return writeEstimatesCSV(w, ref) })
	wantSrc := refCSV(func(w *bytes.Buffer) error { return writeSourceAccuraciesCSV(w, ref) })

	gotEst := doReq(t, rs.handler(), http.MethodGet, "/v1/estimates", "", "")
	if gotEst.Code != http.StatusOK || gotEst.Body.String() != wantEst {
		t.Fatalf("cluster /estimates diverged from the single engine\ncluster:\n%s\nreference:\n%s", gotEst.Body, wantEst)
	}
	gotSrc := doReq(t, rs.handler(), http.MethodGet, "/v1/sources", "", "")
	if gotSrc.Code != http.StatusOK || gotSrc.Body.String() != wantSrc {
		t.Fatalf("cluster /sources diverged from the single engine\ncluster:\n%s\nreference:\n%s", gotSrc.Body, wantSrc)
	}

	// The distributed refine must land on the same fixed point.
	ref.Refine(2)
	if rec := doReq(t, rs.handler(), http.MethodPost, "/v1/refine?sweeps=2", "", ""); rec.Code != http.StatusOK {
		t.Fatalf("refine: %d %s", rec.Code, rec.Body)
	}
	wantEst = refCSV(func(w *bytes.Buffer) error { return writeEstimatesCSV(w, ref) })
	wantSrc = refCSV(func(w *bytes.Buffer) error { return writeSourceAccuraciesCSV(w, ref) })
	if got := doReq(t, rs.handler(), http.MethodGet, "/v1/estimates", "", ""); got.Body.String() != wantEst {
		t.Fatalf("post-refine /estimates diverged\ncluster:\n%s\nreference:\n%s", got.Body, wantEst)
	}
	if got := doReq(t, rs.handler(), http.MethodGet, "/v1/sources", "", ""); got.Body.String() != wantSrc {
		t.Fatalf("post-refine /sources diverged\ncluster:\n%s\nreference:\n%s", got.Body, wantSrc)
	}

	// A full re-delivery of the same request must change nothing: the
	// router re-forwards every chunk (node dedup absorbs them) and the
	// cluster bytes stay put.
	if rec := doReq(t, rs.handler(), http.MethodPost, "/v1/observe?seq=golden", "application/x-ndjson", ndjsonFromTriples(claims)); rec.Code != http.StatusOK {
		t.Fatalf("re-observe: %d %s", rec.Code, rec.Body)
	}
	if got := doReq(t, rs.handler(), http.MethodGet, "/v1/estimates", "", ""); got.Body.String() != wantEst {
		t.Fatal("re-delivered request changed the cluster estimates")
	}
}

// TestRouterHTTPSurface covers the router's error contract: bad rows
// reject atomically, refine validates sweeps, health endpoints answer.
func TestRouterHTTPSurface(t *testing.T) {
	rs := newGoldenCluster(t, 2, 8, 16)
	h := rs.handler()

	if rec := doReq(t, h, http.MethodPost, "/v1/observe", "application/x-ndjson", `{"source":"","object":"o","value":"v"}`+"\n"); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty source accepted: %d %s", rec.Code, rec.Body)
	}
	if rec := doReq(t, h, http.MethodPost, "/v1/refine?sweeps=0", "", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("sweeps=0 accepted: %d", rec.Code)
	}
	if rec := doReq(t, h, http.MethodPost, "/v1/observe", "text/csv", "source,object,value\na,o1,v\nb,o2,v\n"); rec.Code != http.StatusOK {
		t.Fatalf("csv observe: %d %s", rec.Code, rec.Body)
	}
	if rec := doReq(t, h, http.MethodGet, "/v1/healthz", "", ""); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}
	if rec := doReq(t, h, http.MethodGet, "/v1/readyz", "", ""); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ready"`) {
		t.Fatalf("readyz: %d %s", rec.Code, rec.Body)
	}
}

// TestRouterRefusesMemberRefine: a member running -external-epochs
// must 409 a direct /refine — only the router may move the cluster's
// σ-table.
func TestRouterRefusesMemberRefine(t *testing.T) {
	opts := stream.DefaultEngineOptions()
	opts.Shards = 1
	opts.EpochLength = stream.ExternalEpochLength
	eng, err := stream.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := testServer(eng, "", 8).handler()
	if rec := doReq(t, h, http.MethodPost, "/v1/refine", "", ""); rec.Code != http.StatusConflict {
		t.Fatalf("member refine: %d, want 409", rec.Code)
	}
}
