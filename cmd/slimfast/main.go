// Command slimfast runs data fusion on CSV or JSON inputs.
//
// Usage:
//
//	slimfast -obs observations.csv [-features features.csv] [-truth truth.csv] \
//	         [-algorithm auto|erm|em] [-copy N] [-values out.csv] [-accuracies out.csv]
//	slimfast -json dataset.json [...]
//	slimfast stream [-obs observations.csv|-] [-shards N] [-workers N] [-epoch N] \
//	         [-max-objects N] [-decay f] [-every N] [-watch o1,o2] [-refine N] \
//	         [-values out.csv] [-accuracies out.csv] \
//	         [-checkpoint state.ckpt] [-restore state.ckpt]
//	slimfast stream -listen :8080 [-checkpoint state.ckpt] [-restore state.ckpt] [-batch N]
//	slimfast replay [-obs observations.csv|-] -to http://host:port [-batch N] [-attempts N]
//	slimfast router -nodes http://n1:8080,http://n2:8080 -listen :8080 \
//	         [-batch N] [-epoch N] [-checkpoint-epochs N] [-manifest cluster.json]
//	slimfast query [-to http://host:port | -from state.ckpt] [-table estimates|sources] \
//	         [-format csv|json] [-generations N] 'where=...&order=...&limit=...'
//
// The observations CSV has a "source,object,value" header; features
// "source,feature"; truth "object,value". With -json, a single document
// in the format produced by cmd/datagen and data.WriteJSON replaces the
// three CSVs. Fused values and estimated source accuracies are written
// as CSV (stdout by default, dash-separated into the two -values /
// -accuracies files when given).
//
// The stream subcommand ingests the observations CSV (or stdin with
// -obs -) through the sharded incremental engine instead of the batch
// pipeline: claims are consumed row by row, rolling status lines and
// -watch'd object estimates are emitted every -every observations, and
// the final estimates come from an exact -refine re-sweep.
//
// With -listen the stream subcommand serves an HTTP API instead of
// reading a file: POST /v1/observe ingests NDJSON or CSV claims, GET
// /v1/estimates and GET /v1/sources report the live state (with the
// relational query language — see the query subcommand and
// docs/API.md), POST /v1/checkpoint and SIGTERM write a durable
// engine checkpoint to the -checkpoint path, and -restore resumes
// from one — bit-identically, so a restarted server converges to
// exactly the state of one that never stopped. See the README's
// Operations section.
//
// The query subcommand runs the same relational query language from
// the shell, against a live server (-to) or a checkpoint file (-from);
// -generations walks retained checkpoint generations for as-of
// trajectories. See cmd/slimfast/query.go.
//
// The router subcommand turns N serving nodes into one cluster:
// objects are consistently hash-partitioned across the nodes, ingest
// fans out with per-node idempotency keys, and the router coordinates
// cluster-wide accuracy epochs, refines and checkpoints so the merged
// estimates are bit-identical to a single engine. See the README's
// Cluster section and docs/ARCHITECTURE.md.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"slimfast/internal/core"
	"slimfast/internal/data"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slimfast:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "stream" {
		return runStream(args[1:], os.Stdin, stdout)
	}
	if len(args) > 0 && args[0] == "replay" {
		return runReplay(args[1:], os.Stdin, stdout)
	}
	if len(args) > 0 && args[0] == "router" {
		return runRouter(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "query" {
		return runQuery(args[1:], stdout)
	}
	fs := flag.NewFlagSet("slimfast", flag.ContinueOnError)
	obsPath := fs.String("obs", "", "observations CSV (source,object,value)")
	featPath := fs.String("features", "", "source features CSV (source,feature)")
	truthPath := fs.String("truth", "", "ground truth CSV (object,value)")
	jsonPath := fs.String("json", "", "JSON dataset (alternative to the CSVs)")
	algorithm := fs.String("algorithm", "auto", "learning algorithm: auto, erm or em")
	copyOverlap := fs.Int("copy", 0, "enable copy detection for pairs sharing at least N objects (0 = off)")
	valuesOut := fs.String("values", "", "write fused values CSV here (default stdout)")
	accOut := fs.String("accuracies", "", "write source accuracies CSV here (default stdout)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ds *data.Dataset
	var train data.TruthMap
	switch {
	case *jsonPath != "":
		f, err := os.Open(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, train, err = data.ReadJSON(f)
		if err != nil {
			return err
		}
	case *obsPath != "":
		b := data.NewBuilder(*obsPath)
		if err := readInto(*obsPath, func(r io.Reader) error { return data.ReadObservationsCSV(r, b) }); err != nil {
			return err
		}
		if *featPath != "" {
			if err := readInto(*featPath, func(r io.Reader) error { return data.ReadFeaturesCSV(r, b) }); err != nil {
				return err
			}
		}
		var truthNames map[string]string
		if *truthPath != "" {
			if err := readInto(*truthPath, func(r io.Reader) error {
				var err error
				truthNames, err = data.ReadTruthCSV(r, b)
				return err
			}); err != nil {
				return err
			}
		}
		ds = b.Freeze()
		if truthNames != nil {
			var err error
			train, err = data.TruthFromNames(ds, truthNames)
			if err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("need -obs or -json (run with -h for usage)")
	}
	if err := ds.Validate(); err != nil {
		return err
	}

	opts := core.DefaultOptions()
	opts.Optim.Seed = *seed
	if *copyOverlap > 0 {
		opts.CopyFeatures = true
		opts.MinCopyOverlap = *copyOverlap
	}
	model, err := core.Compile(ds, opts)
	if err != nil {
		return err
	}
	var res *core.Result
	switch *algorithm {
	case "auto":
		res, _, err = model.FuseAuto(train, core.DefaultOptimizerOptions())
	case "erm":
		res, err = model.Fuse(core.AlgorithmERM, train)
	case "em":
		res, err = model.Fuse(core.AlgorithmEM, train)
	default:
		return fmt.Errorf("unknown -algorithm %q", *algorithm)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# fused %d objects from %d sources (%d observations) via %s\n",
		len(res.Values), ds.NumSources(), ds.NumObservations(), res.Algorithm)

	if err := writeValues(*valuesOut, stdout, ds, res); err != nil {
		return err
	}
	return writeAccuracies(*accOut, stdout, ds, res)
}

func readInto(path string, fn func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func openOut(path string, stdout io.Writer) (io.Writer, func() error, error) {
	if path == "" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func writeValues(path string, stdout io.Writer, ds *data.Dataset, res *core.Result) error {
	w, closeFn, err := openOut(path, stdout)
	if err != nil {
		return err
	}
	defer closeFn()
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"object", "value", "confidence"}); err != nil {
		return err
	}
	objects := make([]int, 0, len(res.Values))
	for o := range res.Values {
		objects = append(objects, int(o))
	}
	sort.Ints(objects)
	for _, o := range objects {
		oid := data.ObjectID(o)
		v := res.Values[oid]
		conf := res.Posterior(oid)[v]
		rec := []string{ds.ObjectNames[o], ds.ValueNames[v], fmt.Sprintf("%.4f", conf)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeAccuracies(path string, stdout io.Writer, ds *data.Dataset, res *core.Result) error {
	w, closeFn, err := openOut(path, stdout)
	if err != nil {
		return err
	}
	defer closeFn()
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"source", "accuracy"}); err != nil {
		return err
	}
	for s, name := range ds.SourceNames {
		if err := cw.Write([]string{name, fmt.Sprintf("%.4f", res.SourceAccuracies[s])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
