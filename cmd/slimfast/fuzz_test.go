package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"slimfast/internal/stream"
)

// fuzzServer builds a tiny engine + handler per execution. The
// handler chain includes the panic-recovery middleware, so a 500
// response is the signature of a parser panic — exactly what the
// fuzz targets assert never happens.
func fuzzServer(t *testing.T) http.Handler {
	opts := stream.DefaultEngineOptions()
	opts.Shards = 1
	opts.EpochLength = 16
	eng, err := stream.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	return newStreamServer(eng, serveConfig{Batch: 4}, io.Discard).handler()
}

// observeFuzzBody posts one body and checks the /observe invariants:
// the parser never panics (no 500 — the recovery middleware would
// turn one into exactly that) and every outcome is a deliberate
// status.
func observeFuzzBody(t *testing.T, contentType string, body []byte) {
	h := fuzzServer(t)
	req := httptest.NewRequest("POST", "/v1/observe", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", contentType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	switch rec.Code {
	case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
	case http.StatusInternalServerError:
		t.Fatalf("parser panicked (500): %s", rec.Body)
	default:
		t.Fatalf("unexpected status %d: %s", rec.Code, rec.Body)
	}
}

// FuzzObserveNDJSON throws arbitrary bytes at the NDJSON ingest path.
func FuzzObserveNDJSON(f *testing.F) {
	f.Add([]byte(`{"source":"s","object":"o","value":"v"}` + "\n"))
	f.Add([]byte(`{"source":"s","object":"o","value":"v"}{"source":"t","object":"o","value":"w"}`))
	f.Add([]byte("{broken"))
	f.Add([]byte(`{"source":"","object":"o","value":"v"}`))
	f.Add([]byte("null\ntrue\n[1,2]"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		observeFuzzBody(t, "application/x-ndjson", body)
	})
}

// FuzzObserveCSV throws arbitrary bytes at the CSV ingest path.
func FuzzObserveCSV(f *testing.F) {
	f.Add([]byte("source,object,value\ns,o,v\n"))
	f.Add([]byte("s,o,v\nt,o,w\n"))
	f.Add([]byte(`"unterminated,quote`))
	f.Add([]byte("a,b\n"))
	f.Add([]byte("a,b,c,d\n"))
	f.Add([]byte{0xef, 0xbb, 0xbf, 's', ',', 'o', ',', 'v'})
	f.Fuzz(func(t *testing.T, body []byte) {
		observeFuzzBody(t, "text/csv", body)
	})
}
