// Structured logging for the serving subcommands: component-scoped
// log/slog loggers selected by -log-format, a request-scoped logger
// carried in the request context (stamped with the request ID by the
// tracing middleware), and the optional pprof side server.
//
// Two output streams coexist on purpose. The machine-readable protocol
// lines ("# listening on ...", "# restored ...", "# shutdown ...")
// stay bare fmt.Fprintf writes — scripts and tests grep them — while
// diagnostics (panics, dropped response writes, deprecation warnings,
// per-request access records) go through slog so operators can switch
// the whole diagnostic stream to JSON with one flag.
package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// logFormats validates a -log-format value.
func validLogFormat(format string) error {
	switch format {
	case "", "text", "json":
		return nil
	}
	return fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// newComponentLogger builds the diagnostic logger for one serving
// component ("serve", "router", "pprof"). The empty format means text.
func newComponentLogger(format string, w io.Writer, component string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(h).With(slog.String("component", component))
}

// loggerKey carries the request-scoped logger in a request context.
type loggerKey struct{}

// withLogger returns ctx carrying l as the request-scoped logger.
func withLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// requestLogger resolves the request-scoped logger (request ID, method
// and path already attached by the middleware), falling back to the
// component logger, and — for bare handlers exercised outside the
// middleware, as tests do — to a discard logger, never nil.
func requestLogger(ctx context.Context, fallback *slog.Logger) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return l
	}
	if fallback != nil {
		return fallback
	}
	return slog.New(discardHandler{})
}

// discardHandler is a slog.Handler that drops everything; the fallback
// of last resort so logging is never a nil dereference.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// startPprof serves net/http/pprof on its own mux at addr — a side
// server, so the profiling surface never mounts on the public API by
// accident. It returns the resolved address (addr may be ":0").
func startPprof(addr string, stdout io.Writer) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	// Machine-readable like "# listening on": with -pprof :0 this is
	// how a script finds the profiling port.
	fmt.Fprintf(stdout, "# pprof listening on %s\n", ln.Addr())
	return ln.Addr().String(), nil
}
