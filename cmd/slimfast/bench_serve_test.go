// End-to-end serving benchmark: the paper's "fusion as a service"
// story measured where users actually live — real HTTP requests
// through streamServer.handler(), not engine method calls. The
// sub-benchmarks drive POST /observe (NDJSON ingest batches) and
// GET /estimates (the full live-estimate dump) under concurrent load
// and report requests/sec and p99 latency alongside the standard
// ns/op, B/op and allocs/op columns; scripts/bench.sh records all of
// them in the BENCH_N.json snapshot and the benchdiff CI gate holds
// the allocs/op line flat, giving the HTTP layer the same regression
// protection the kernels have.
package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"slimfast/internal/stream"
)

// benchCorpus builds a deterministic claim stream: nObj objects, each
// claimed by a rotating window of sources, with values alternating per
// pass so steady-state re-claims exercise the engine's delta path.
func benchCorpus(nSources, nObj, perObj int, pass int) []stream.Triple {
	out := make([]stream.Triple, 0, nObj*perObj)
	for o := 0; o < nObj; o++ {
		for k := 0; k < perObj; k++ {
			s := (o*perObj + k*7) % nSources
			v := (o + k%3 + pass) % 3
			out = append(out, stream.Triple{
				Source: fmt.Sprintf("s%03d", s),
				Object: fmt.Sprintf("o%04d", o),
				Value:  fmt.Sprintf("v%d", v),
			})
		}
	}
	return out
}

// ndjsonBodies renders the corpus as ready-to-send NDJSON request
// bodies of batch claims each, so the benchmark measures serving cost,
// not client-side formatting.
func ndjsonBodies(corpus []stream.Triple, batch int) [][]byte {
	var bodies [][]byte
	for lo := 0; lo < len(corpus); lo += batch {
		hi := lo + batch
		if hi > len(corpus) {
			hi = len(corpus)
		}
		var buf bytes.Buffer
		for _, tr := range corpus[lo:hi] {
			fmt.Fprintf(&buf, "{\"source\":%q,\"object\":%q,\"value\":%q}\n", tr.Source, tr.Object, tr.Value)
		}
		bodies = append(bodies, buf.Bytes())
	}
	return bodies
}

// benchServer boots the HTTP serving stack over a fresh engine,
// pre-warmed with two full passes of the corpus (interning, slab
// growth and the first epoch refreshes happen here, not in the timed
// region) and returns the base URL plus a keep-alive client sized for
// the concurrent load.
func benchServer(b *testing.B) (*httptest.Server, *http.Client) {
	b.Helper()
	opts := stream.DefaultEngineOptions()
	opts.Shards = 4
	opts.Workers = 1
	eng, err := stream.NewEngine(opts)
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(newStreamServer(eng, serveConfig{Batch: 256}, io.Discard).handler())
	b.Cleanup(srv.Close)
	for pass := 0; pass < 2; pass++ {
		eng.ObserveBatch(benchCorpus(64, 512, 8, pass))
	}
	tr := &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64}
	b.Cleanup(tr.CloseIdleConnections)
	return srv, &http.Client{Transport: tr}
}

// driveConcurrent runs one HTTP request per benchmark op across
// parallel goroutines, then reports throughput (req/s) and tail
// latency (p99-ns) next to the standard per-op columns.
func driveConcurrent(b *testing.B, do func(i int) (*http.Response, error)) {
	var mu sync.Mutex
	var lats []time.Duration
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 1024)
		i := 0
		for pb.Next() {
			start := time.Now()
			resp, err := do(i)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
			local = append(local, time.Since(start))
			i++
		}
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[(len(lats)*99)/100]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeHTTP is the end-to-end serving benchmark. One op of
// the observe sub-benchmark is one POST /observe carrying a 64-claim
// NDJSON batch (cycling a fixed corpus, values alternating between
// passes); one op of the estimates sub-benchmark is one GET /estimates
// returning the full 512-object CSV dump. GOMAXPROCS parallel clients
// drive the server concurrently over keep-alive connections.
func BenchmarkServeHTTP(b *testing.B) {
	b.Run("observe", func(b *testing.B) {
		srv, client := benchServer(b)
		url := srv.URL + "/v1/observe"
		var bodies [][]byte
		for pass := 0; pass < 2; pass++ {
			bodies = append(bodies, ndjsonBodies(benchCorpus(64, 512, 8, pass), 64)...)
		}
		driveConcurrent(b, func(i int) (*http.Response, error) {
			return client.Post(url, "application/x-ndjson", bytes.NewReader(bodies[i%len(bodies)]))
		})
	})
	b.Run("estimates", func(b *testing.B) {
		srv, client := benchServer(b)
		url := srv.URL + "/v1/estimates"
		driveConcurrent(b, func(i int) (*http.Response, error) {
			return client.Get(url)
		})
	})
}
