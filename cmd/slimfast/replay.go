// The `slimfast replay` subcommand: a resilient ingest client that
// streams an observations CSV into a serving slimfast over HTTP. It
// is the client half of the overload contract the server publishes —
// batches are stamped with idempotency keys and delivered at least
// once through retries with exponential backoff (honoring the
// server's Retry-After), and the server's dedup window makes the
// at-least-once delivery exactly-once. A replay interrupted by
// crashes, 429 sheds or flaky networks converges to the same engine
// state as one clean pass.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"slimfast/internal/data"
	"slimfast/internal/resilience"
)

// runReplay implements `slimfast replay`.
func runReplay(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("slimfast replay", flag.ContinueOnError)
	obsPath := fs.String("obs", "-", "observations CSV (source,object,value); - reads stdin")
	to := fs.String("to", "", "base URL of the serving slimfast (e.g. http://127.0.0.1:8080)")
	batch := fs.Int("batch", 1024, "claims per request")
	attempts := fs.Int("attempts", 5, "delivery attempts per batch before giving up")
	budget := fs.Int64("retry-budget", 0, "total retries across the whole replay (0 = per-batch attempts only)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-attempt request timeout")
	seqPrefix := fs.String("seq-prefix", "replay", "idempotency key prefix; batch i is delivered as <prefix>-<i>")
	seed := fs.Int64("seed", 1, "backoff jitter seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("replay: -to is required")
	}
	if *batch < 1 {
		*batch = 1
	}
	url := strings.TrimSuffix(*to, "/") + "/v1/observe"

	in := stdin
	if *obsPath != "-" && *obsPath != "" {
		f, err := os.Open(*obsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	client := resilience.NewClient(&http.Client{}, resilience.ClientConfig{
		MaxAttempts:   *attempts,
		RetryBudget:   *budget,
		PerTryTimeout: *timeout,
		Seed:          *seed,
	})
	ctx := context.Background()

	var (
		body     bytes.Buffer
		cw       = csv.NewWriter(&body)
		rows     int
		batchIdx int
		sent     int64
		deduped  int64
	)
	deliver := func() error {
		if rows == 0 {
			return nil
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		seq := fmt.Sprintf("%s-%d", *seqPrefix, batchIdx)
		resp, err := client.Post(ctx, url, "text/csv", seq, body.Bytes())
		if err != nil {
			return fmt.Errorf("replay: batch %s: %w", seq, err)
		}
		var ack struct {
			Ingested int64  `json:"ingested"`
			Deduped  bool   `json:"deduped"`
			Error    string `json:"error"`
		}
		derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ack)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg := ack.Error
			if derr != nil || msg == "" {
				msg = resp.Status
			}
			return fmt.Errorf("replay: batch %s rejected: %s", seq, msg)
		}
		if ack.Deduped {
			deduped++
		} else {
			sent += ack.Ingested
		}
		batchIdx++
		rows = 0
		body.Reset()
		return nil
	}

	if err := data.StreamObservationsCSV(in, func(source, object, value string) error {
		if err := cw.Write([]string{source, object, value}); err != nil {
			return err
		}
		rows++
		if rows >= *batch {
			return deliver()
		}
		return nil
	}); err != nil {
		return err
	}
	if err := deliver(); err != nil {
		return err
	}
	if batchIdx == 0 {
		return fmt.Errorf("no observations in %s", *obsPath)
	}
	fmt.Fprintf(stdout, "# replayed %d batches to %s: %d claims ingested, %d deduplicated, %d retries\n",
		batchIdx, url, sent, deduped, client.Retries())
	return nil
}
