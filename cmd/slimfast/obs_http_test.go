package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"slimfast/internal/obs"
	"slimfast/internal/resilience"
	"slimfast/internal/stream"
)

// obsServer builds a streamServer over a shared registry that also
// carries the engine instrumentation, the way runStream wires it.
func obsServer(t *testing.T, logw io.Writer) (*streamServer, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	eng := testEngine(t, 2)
	eng.SetMetrics(stream.NewMetrics(reg))
	return newStreamServer(eng, serveConfig{Batch: 32, Registry: reg}, logw), reg
}

// scrape fetches /v1/metrics through the public handler and parses the
// exposition strictly.
func scrape(t *testing.T, h http.Handler) map[string]*obs.Family {
	t.Helper()
	rec := doReq(t, h, "GET", "/v1/metrics", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	fams, err := obs.Parse(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("metrics output does not parse: %v", err)
	}
	return fams
}

// newTaggedRequest builds a recorder pair with an X-Request-ID set.
func newTaggedRequest(method, path, body, id string) (*http.Request, *httptest.ResponseRecorder) {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set(resilience.RequestIDHeader, id)
	return req, httptest.NewRecorder()
}

// TestMetricsEndpoint: one ingest request moves the HTTP and engine
// families, and the scrape output round-trips through the strict
// parser.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := obsServer(t, io.Discard)
	h := srv.handler()

	if rec := doReq(t, h, "POST", "/v1/observe", "text/csv", "s1,o1,v1\ns2,o1,v1\n"); rec.Code != http.StatusOK {
		t.Fatalf("observe = %d: %s", rec.Code, rec.Body)
	}
	fams := scrape(t, h)

	reqs, ok := fams["slimfast_http_requests_total"]
	if !ok {
		t.Fatal("scrape missing slimfast_http_requests_total")
	}
	if v, ok := reqs.Value("slimfast_http_requests_total",
		map[string]string{"route": "/v1/observe", "status": "200"}); !ok || v != 1 {
		t.Errorf("observe request count = %v (ok=%v), want 1", v, ok)
	}
	if eng, ok := fams["slimfast_engine_observations_total"]; !ok {
		t.Error("scrape missing slimfast_engine_observations_total")
	} else if v, _ := eng.Value("slimfast_engine_observations_total", nil); v != 2 {
		t.Errorf("engine observations = %v, want 2", v)
	}
	if dur, ok := fams["slimfast_http_request_duration_seconds"]; !ok {
		t.Error("scrape missing slimfast_http_request_duration_seconds")
	} else if v, ok := dur.Value("slimfast_http_request_duration_seconds_count",
		map[string]string{"route": "/v1/observe"}); !ok || v != 1 {
		t.Errorf("observe duration count = %v (ok=%v), want 1", v, ok)
	}
	if _, ok := fams["slimfast_http_inflight_requests"]; !ok {
		t.Error("scrape missing slimfast_http_inflight_requests")
	}
}

// TestDeprecatedAliasCounter: hitting a bare path serves normally but
// counts into slimfast_deprecated_requests_total{path} and logs a
// structured warning; the /v1 mount does neither.
func TestDeprecatedAliasCounter(t *testing.T) {
	var log bytes.Buffer
	srv, _ := obsServer(t, &log)
	h := srv.handler()

	if rec := doReq(t, h, "GET", "/estimates", "", ""); rec.Code != http.StatusOK {
		t.Fatalf("bare /estimates = %d", rec.Code)
	}
	if rec := doReq(t, h, "GET", "/v1/estimates", "", ""); rec.Code != http.StatusOK {
		t.Fatalf("/v1/estimates = %d", rec.Code)
	}
	fams := scrape(t, h)
	dep, ok := fams["slimfast_deprecated_requests_total"]
	if !ok {
		t.Fatal("scrape missing slimfast_deprecated_requests_total")
	}
	if v, ok := dep.Value("slimfast_deprecated_requests_total",
		map[string]string{"path": "/estimates"}); !ok || v != 1 {
		t.Errorf("deprecated counter = %v (ok=%v), want 1 (the /v1 hit must not count)", v, ok)
	}
	if !strings.Contains(log.String(), "deprecated unversioned path") {
		t.Errorf("no structured deprecation warning logged:\n%s", log.String())
	}
	// Both mounts share the canonical route label.
	reqs := fams["slimfast_http_requests_total"]
	if v, _ := reqs.Value("slimfast_http_requests_total",
		map[string]string{"route": "/v1/estimates", "status": "200"}); v != 2 {
		t.Errorf("canonical route count = %v, want 2 (both mounts)", v)
	}
}

// TestRequestIDEcho: a provided X-Request-ID is echoed and reaches the
// ingest log line; absent, the server mints one.
func TestRequestIDEcho(t *testing.T) {
	var log bytes.Buffer
	srv, _ := obsServer(t, &log)
	h := srv.handler()

	rec := doReq(t, h, "GET", "/v1/healthz", "", "")
	if id := rec.Header().Get(resilience.RequestIDHeader); id == "" {
		t.Error("no X-Request-ID minted for an untagged request")
	}

	req, rec2 := newTaggedRequest("POST", "/v1/observe", "s,o,v\n", "trace-echo-1")
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("observe = %d: %s", rec2.Code, rec2.Body)
	}
	if got := rec2.Header().Get(resilience.RequestIDHeader); got != "trace-echo-1" {
		t.Errorf("echoed request ID = %q, want trace-echo-1", got)
	}
	if !strings.Contains(log.String(), "trace-echo-1") {
		t.Errorf("request ID absent from the ingest log:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "ingested claims") {
		t.Errorf("no ingest record logged:\n%s", log.String())
	}
}

// TestShedAndDedupCounters: the admission 429 and an idempotency-key
// replay move their dedicated counters.
func TestShedAndDedupCounters(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newStreamServer(testEngine(t, 1), serveConfig{Batch: 32, MaxInflightBytes: 8, Registry: reg}, io.Discard)
	h := srv.handler()
	if rec := doReq(t, h, "POST", "/v1/observe", "text/csv", strings.Repeat("s,o,v\n", 10)); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("oversized observe = %d, want 429", rec.Code)
	}
	fams := scrape(t, h)
	shedFam, ok := fams["slimfast_http_shed_total"]
	if !ok {
		t.Fatal("scrape missing slimfast_http_shed_total")
	}
	if v, _ := shedFam.Value("slimfast_http_shed_total", nil); v != 1 {
		t.Errorf("shed counter = %v, want 1", v)
	}

	dedupSrv, _ := obsServer(t, io.Discard)
	dh := dedupSrv.handler()
	for i := 0; i < 2; i++ {
		if rec := doReq(t, dh, "POST", "/v1/observe?seq=once", "text/csv", "s,o,v\n"); rec.Code != http.StatusOK {
			t.Fatalf("observe #%d = %d", i, rec.Code)
		}
	}
	dfams := scrape(t, dh)
	dedupFam, ok := dfams["slimfast_http_dedup_replays_total"]
	if !ok {
		t.Fatal("scrape missing slimfast_http_dedup_replays_total")
	}
	if v, _ := dedupFam.Value("slimfast_http_dedup_replays_total", nil); v != 1 {
		t.Errorf("dedup replay counter = %v, want 1", v)
	}
}

// TestMiddlewarePanicMetrics: the middleware's recovery increments the
// panic counter and still answers the enveloped 500.
func TestMiddlewarePanicMetrics(t *testing.T) {
	var log bytes.Buffer
	reg := obs.NewRegistry()
	ins := newInstrumentor(reg, newComponentLogger("text", &log, "test"))
	h := ins.middleware(ins.route("/boom", func(http.ResponseWriter, *http.Request) {
		panic("poisoned request")
	}))
	rec := doReq(t, h, "GET", "/boom", "", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	if !strings.Contains(log.String(), "PANIC") || !strings.Contains(log.String(), "poisoned request") {
		t.Errorf("panic not logged:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "goroutine") {
		t.Errorf("panic log missing the stack:\n%s", log.String())
	}
	var sb strings.Builder
	if err := reg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "slimfast_http_panics_total 1") {
		t.Errorf("panic counter did not move:\n%s", sb.String())
	}
}

// TestRouterMetricsEndpoint: the router serves its own /v1/metrics
// with the router families after a fan-out.
func TestRouterMetricsEndpoint(t *testing.T) {
	rs := newGoldenCluster(t, 2, 16, 32)
	h := rs.handler()
	claims := goldenClaims()[:64]
	if rec := doReq(t, h, "POST", "/v1/observe?seq=met", "application/x-ndjson", ndjsonFromTriples(claims)); rec.Code != http.StatusOK {
		t.Fatalf("observe = %d: %s", rec.Code, rec.Body)
	}
	fams := scrape(t, h)
	if reqs, ok := fams["slimfast_http_requests_total"]; !ok {
		t.Error("router scrape missing slimfast_http_requests_total")
	} else if v, _ := reqs.Value("slimfast_http_requests_total",
		map[string]string{"route": "/v1/observe", "status": "200"}); v != 1 {
		t.Errorf("router observe count = %v, want 1", v)
	}
}
