// The `slimfast router` subcommand: the cluster coordinator that
// scales the streaming engine across machines. It partitions objects
// over N `slimfast stream -listen -external-epochs` nodes with the
// engine's own shard hash, fans ingest out through the retrying
// resilience client, drives cluster-wide epoch barriers and refines
// over the nodes' /epoch endpoints, and serves the same HTTP surface
// a single node does — so clients cannot tell a cluster from one big
// engine, and the merged /estimates and /sources bytes are
// bit-identical to a single-node run over the same claim stream (see
// internal/cluster for the protocol and its invariants).
//
// Endpoints (canonical under /v1; the bare paths are deprecated
// aliases kept for one release — see README and docs/API.md):
//
//	POST /v1/observe     ingest claims (NDJSON or CSV), fanned out by partition;
//	                     idempotent when stamped with X-Batch-Seq
//	GET  /v1/estimates   cluster-wide MAP estimates; accepts the full query
//	                     language (where/order/limit/cols/group/agg/disagree),
//	                     CSV default, NDJSON via Accept or ?format=json
//	GET  /v1/sources     cluster-wide source accuracies (union, sorted), same
//	                     query language over source,accuracy
//	GET  /v1/features    online learner feature weights, relayed from the
//	                     first member that runs a learner (409 when none does)
//	POST /v1/refine      cluster-wide exact re-sweep (?sweeps=N, default 2)
//	POST /v1/checkpoint  checkpoint every node, then write the router manifest
//	GET  /v1/healthz     per-partition liveness; always 200 while the router is up
//	GET  /v1/readyz      readiness: degrades per partition, 503 when no node answers
//
// Every non-2xx response carries the uniform JSON error envelope
// {"error": ..., "code": shed|timeout|bad_request|conflict|internal}.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"slimfast/internal/cluster"
	"slimfast/internal/obs"
	"slimfast/internal/query"
	"slimfast/internal/resilience"
	"slimfast/internal/stream"
)

// runRouter implements `slimfast router`.
func runRouter(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("slimfast router", flag.ContinueOnError)
	nodesFlag := fs.String("nodes", "", "comma-separated member base URLs in partition order (e.g. http://10.0.0.1:8080,http://10.0.0.2:8080); members must run `stream -listen -external-epochs`")
	listen := fs.String("listen", "", "serve the cluster HTTP API on this address (e.g. :8080)")
	batch := fs.Int("batch", 1024, "claims per fan-out chunk; must match across router restarts (barriers land on chunk boundaries)")
	epoch := fs.Int("epoch", 1024, "claims per cluster-wide accuracy epoch")
	decay := fs.Float64("decay", 1, "per-observation evidence decay in (0,1]; must match the members' -decay")
	ckptEpochs := fs.Int("checkpoint-epochs", 1, "checkpoint the whole cluster every N barriers (0 = only on demand and at shutdown)")
	manifest := fs.String("manifest", "", "router manifest path: cluster-cumulative state, written atomically at checkpoints and shutdown, restored at boot")
	attempts := fs.Int("attempts", 5, "delivery attempts per node request before the operation fails")
	timeout := fs.Duration("timeout", 30*time.Second, "per-attempt node request timeout")
	seed := fs.Int64("seed", 1, "backoff jitter seed")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty = off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validLogFormat(*logFormat); err != nil {
		return err
	}
	if *nodesFlag == "" {
		return fmt.Errorf("router: -nodes is required")
	}
	if *listen == "" {
		return fmt.Errorf("router: -listen is required")
	}
	var nodes []string
	for _, n := range strings.Split(*nodesFlag, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	reg := obs.NewRegistry()
	opts := stream.DefaultOptions()
	opts.Decay = *decay
	rt, err := cluster.New(cluster.Config{
		Nodes:            nodes,
		Batch:            *batch,
		EpochLength:      *epoch,
		Opts:             opts,
		CheckpointEpochs: *ckptEpochs,
		ManifestPath:     *manifest,
		HTTP:             &http.Client{},
		Retry: resilience.ClientConfig{
			MaxAttempts:   *attempts,
			PerTryTimeout: *timeout,
			Seed:          *seed,
		},
		Log:     stdout,
		Metrics: cluster.NewMetrics(reg),
	})
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		if _, err := startPprof(*pprofAddr, stdout); err != nil {
			return err
		}
	}
	return serveRouter(newRouterServer(rt, stdout, reg, *logFormat), *listen, stdout)
}

// routerServer wires the cluster router to the HTTP handlers.
type routerServer struct {
	rt   *cluster.Router
	logw io.Writer
	log  *slog.Logger
	reg  *obs.Registry
	ins  *instrumentor
}

// newRouterServer builds the router's HTTP layer; a nil registry gets
// a fresh one, so tests and callers without engine metrics still serve
// /v1/metrics with the HTTP families.
func newRouterServer(rt *cluster.Router, logw io.Writer, reg *obs.Registry, logFormat string) *routerServer {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := newComponentLogger(logFormat, logw, "router")
	return &routerServer{
		rt:   rt,
		logw: logw,
		log:  log,
		reg:  reg,
		ins:  newInstrumentor(reg, log),
	}
}

// Routes mount at /v1 and the deprecated unversioned alias, exactly
// like a member node: clients cannot tell a cluster from one engine.
func (s *routerServer) handler() http.Handler {
	mux := http.NewServeMux()
	handleBoth(mux, "POST /observe", s.handleObserve, s.ins)
	handleBoth(mux, "GET /estimates", s.handleEstimates, s.ins)
	handleBoth(mux, "GET /sources", s.handleSources, s.ins)
	handleBoth(mux, "GET /features", s.handleFeatures, s.ins)
	handleBoth(mux, "POST /refine", s.handleRefine, s.ins)
	handleBoth(mux, "POST /checkpoint", s.handleCheckpoint, s.ins)
	handleBoth(mux, "GET /healthz", s.handleHealthz, s.ins)
	handleBoth(mux, "GET /readyz", s.handleReadyz, s.ins)
	mux.HandleFunc("GET /v1/metrics", s.ins.route("/v1/metrics", s.reg.Handler().ServeHTTP))
	return s.ins.middleware(mux)
}

func (s *routerServer) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	writeJSONLog(w, requestLogger(r.Context(), s.log), code, v)
}

func (s *routerServer) httpError(w http.ResponseWriter, r *http.Request, code int, msg string) {
	httpErrorLog(w, requestLogger(r.Context(), s.log), code, msg)
}

// handleObserve parses a claim body exactly like a member node and
// fans it out. A fan-out failure (a partition down past the retry
// policy) answers 503 + Retry-After: the claims are not lost — the
// replay client redelivers under the same key, chunks the cluster
// already completed dedup, and the failed partition catches up.
func (s *routerServer) handleObserve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("observe: body exceeds %d bytes; split the stream into smaller requests", tooBig.Limit))
			return
		}
		s.httpError(w, r, http.StatusBadRequest, fmt.Sprintf("observe: reading body: %v", err))
		return
	}
	var claims []stream.Triple
	err = parseClaimBody(body, r.Header.Get("Content-Type"), func(source, object, value string) error {
		if source == "" || object == "" || value == "" {
			return errEmptyClaimField
		}
		claims = append(claims, stream.Triple{Source: source, Object: object, Value: value})
		return nil
	})
	if err != nil {
		// Unlike a member node, nothing was forwarded yet: the router
		// parses the whole body before fan-out, so a bad row rejects the
		// request atomically.
		s.httpError(w, r, http.StatusBadRequest, fmt.Sprintf("observe: %v", err))
		return
	}
	// The fan-out inherits r.Context(), so the resilience client stamps
	// this request's X-Request-ID on every member delivery — one ID
	// traces a claim batch from the router through every partition log.
	res, err := s.rt.Ingest(r.Context(), claims, seqKey(r))
	if err != nil {
		w.Header().Set("Retry-After", "1")
		s.httpError(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	requestLogger(r.Context(), s.log).LogAttrs(r.Context(), slog.LevelInfo, "fanned out claims",
		slog.Int("claims", len(claims)), slog.String("seq", seqKey(r)))
	s.writeJSON(w, r, http.StatusOK, res)
}

// serveResult renders a merged query result in the negotiated format.
func (s *routerServer) serveResult(w http.ResponseWriter, r *http.Request, res *query.Result, format string) {
	var buf bytes.Buffer
	if err := query.Write(&buf, res, format); err != nil {
		s.httpError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", resultContentType(format))
	if _, err := w.Write(buf.Bytes()); err != nil {
		requestLogger(r.Context(), s.log).Warn("writing query response failed", slog.Any("error", err))
	}
}

// handleEstimates serves the cluster-wide estimates relation: bare CSV
// requests keep the legacy concatenated scatter-gather; queries push
// down to every member and merge with the single-engine fold, so the
// bytes match one N-shard engine.
func (s *routerServer) handleEstimates(w http.ResponseWriter, r *http.Request) {
	q, err := query.Parse(r.URL.Query(), query.EstimateColumns())
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "estimates: "+err.Error())
		return
	}
	format, err := negotiateFormat(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "estimates: "+err.Error())
		return
	}
	if q.IsPlain() && format == "csv" {
		s.serveCSV(w, r, s.rt.Estimates)
		return
	}
	res, err := s.rt.Query(r.Context(), q)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		s.httpError(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.serveResult(w, r, res, format)
}

// handleSources serves cluster-wide source accuracies with the same
// query language and content negotiation as a member node: the merged
// table is materialized as a relation and queried locally.
func (s *routerServer) handleSources(w http.ResponseWriter, r *http.Request) {
	cols := []query.Column{
		{Name: "source", Kind: query.KindString},
		{Name: "accuracy", Kind: query.KindFloat},
	}
	q, err := query.Parse(r.URL.Query(), cols)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "sources: "+err.Error())
		return
	}
	format, err := negotiateFormat(r)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "sources: "+err.Error())
		return
	}
	if q.IsPlain() && format == "csv" {
		s.serveCSV(w, r, s.rt.Sources)
		return
	}
	var buf strings.Builder
	if err := s.rt.Sources(r.Context(), &buf); err != nil {
		w.Header().Set("Retry-After", "1")
		s.httpError(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	rel, err := parseSourcesCSV(buf.String(), cols)
	if err != nil {
		s.httpError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	res, err := query.ExecuteRelation(rel, q)
	if err != nil {
		s.httpError(w, r, http.StatusBadRequest, "sources: "+err.Error())
		return
	}
	s.serveResult(w, r, res, format)
}

// parseSourcesCSV rebuilds the merged sources table as a relation.
func parseSourcesCSV(body string, cols []query.Column) (*query.Relation, error) {
	rel := &query.Relation{Cols: cols}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	for i, line := range lines {
		if i == 0 || line == "" {
			continue // header
		}
		name, accStr, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("sources: malformed merged row %q", line)
		}
		acc, err := strconv.ParseFloat(accStr, 64)
		if err != nil {
			return nil, fmt.Errorf("sources: malformed accuracy in %q", line)
		}
		rel.Rows = append(rel.Rows, []query.Val{
			{Kind: query.KindString, Str: name},
			{Kind: query.KindFloat, Num: acc},
		})
	}
	return rel, nil
}

// handleFeatures relays the online learner's feature weights from the
// first member that has one; a learner-less cluster answers 409 like a
// learner-less node.
func (s *routerServer) handleFeatures(w http.ResponseWriter, r *http.Request) {
	body, err := s.rt.Features(r.Context())
	if err != nil {
		s.httpError(w, r, http.StatusConflict,
			"features: no member has an online learner: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if _, err := w.Write(body); err != nil {
		requestLogger(r.Context(), s.log).Warn("writing features response failed", slog.Any("error", err))
	}
}

// serveCSV buffers the scatter-gather merge so a partition failure
// mid-gather becomes a clean 503 instead of a truncated 200.
func (s *routerServer) serveCSV(w http.ResponseWriter, r *http.Request, gather func(context.Context, io.Writer) error) {
	var buf strings.Builder
	if err := gather(context.Background(), &buf); err != nil {
		w.Header().Set("Retry-After", "1")
		s.httpError(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if _, err := io.WriteString(w, buf.String()); err != nil {
		requestLogger(r.Context(), s.log).Warn("writing CSV response failed", slog.Any("error", err))
	}
}

func (s *routerServer) handleRefine(w http.ResponseWriter, r *http.Request) {
	sweeps := 2
	if q := r.URL.Query().Get("sweeps"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > maxRefineSweeps {
			s.httpError(w, r, http.StatusBadRequest,
				fmt.Sprintf("refine: sweeps must be an integer in [1,%d], got %q", maxRefineSweeps, q))
			return
		}
		sweeps = n
	}
	barriers, err := s.rt.Refine(r.Context(), sweeps)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		s.httpError(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.writeJSON(w, r, http.StatusOK, map[string]any{"sweeps": sweeps, "barriers": barriers})
}

func (s *routerServer) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.rt.Checkpoint(r.Context()); err != nil {
		s.httpError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeJSON(w, r, http.StatusOK, map[string]any{"stats": s.rt.Stats()})
}

// handleHealthz always answers 200 while the router process is up;
// the per-partition detail carries each member's own /healthz.
func (s *routerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, nodes := s.rt.Health(r.Context())
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"status": status,
		"router": s.rt.Stats(),
		"nodes":  nodes,
	})
}

// handleReadyz degrades per partition: 200 "ready" when every member
// can take load, 200 "degraded" naming the dark partitions while the
// rest still serve, and 503 only when no member answers.
func (s *routerServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, nodes := s.rt.Ready(r.Context())
	var down []int
	for _, n := range nodes {
		if !n.OK {
			down = append(down, n.Partition)
		}
	}
	body := map[string]any{"status": status, "nodes": nodes}
	if len(down) > 0 {
		body["down_partitions"] = down
	}
	code := http.StatusOK
	if status == "unavailable" {
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
		body["error"] = "no cluster partition is ready; retry with backoff"
		body["code"] = "shed"
	}
	s.writeJSON(w, r, code, body)
}

// serveRouter runs the router HTTP service until SIGTERM/SIGINT, then
// writes a final manifest so a restarted router resumes exactly here.
func serveRouter(s *routerServer, addr string, stdout io.Writer) error {
	rt := s.rt
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Machine-readable on purpose, like the node server: with
	// -listen :0 it is how scripts discover the port.
	fmt.Fprintf(stdout, "# listening on %s\n", ln.Addr())
	fmt.Fprintf(stdout, "# routing %d partitions\n", len(rt.Nodes()))
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var shutdownErr error
	select {
	case <-ctx.Done():
		stop()
		fmt.Fprintf(stdout, "# signal received, draining connections\n")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownErr = srv.Shutdown(shutCtx)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			shutdownErr = err
		}
	}
	if err := rt.WriteManifest(); err != nil {
		return errors.Join(shutdownErr, err)
	}
	st := rt.Stats()
	fmt.Fprintf(stdout, "# shutdown: %d claims routed, %d barriers\n", st.Claims, st.Barriers)
	return shutdownErr
}
