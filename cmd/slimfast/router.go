// The `slimfast router` subcommand: the cluster coordinator that
// scales the streaming engine across machines. It partitions objects
// over N `slimfast stream -listen -external-epochs` nodes with the
// engine's own shard hash, fans ingest out through the retrying
// resilience client, drives cluster-wide epoch barriers and refines
// over the nodes' /epoch endpoints, and serves the same HTTP surface
// a single node does — so clients cannot tell a cluster from one big
// engine, and the merged /estimates and /sources bytes are
// bit-identical to a single-node run over the same claim stream (see
// internal/cluster for the protocol and its invariants).
//
// Endpoints:
//
//	POST /observe     ingest claims (NDJSON or CSV), fanned out by partition;
//	                  idempotent when stamped with X-Batch-Seq
//	GET  /estimates   cluster-wide MAP estimates as CSV (merged, header once)
//	GET  /sources     cluster-wide source accuracies as CSV (union, sorted)
//	POST /refine      cluster-wide exact re-sweep (?sweeps=N, default 2)
//	POST /checkpoint  checkpoint every node, then write the router manifest
//	GET  /healthz     per-partition liveness; always 200 while the router is up
//	GET  /readyz      readiness: degrades per partition, 503 when no node answers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"slimfast/internal/cluster"
	"slimfast/internal/resilience"
	"slimfast/internal/stream"
)

// runRouter implements `slimfast router`.
func runRouter(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("slimfast router", flag.ContinueOnError)
	nodesFlag := fs.String("nodes", "", "comma-separated member base URLs in partition order (e.g. http://10.0.0.1:8080,http://10.0.0.2:8080); members must run `stream -listen -external-epochs`")
	listen := fs.String("listen", "", "serve the cluster HTTP API on this address (e.g. :8080)")
	batch := fs.Int("batch", 1024, "claims per fan-out chunk; must match across router restarts (barriers land on chunk boundaries)")
	epoch := fs.Int("epoch", 1024, "claims per cluster-wide accuracy epoch")
	decay := fs.Float64("decay", 1, "per-observation evidence decay in (0,1]; must match the members' -decay")
	ckptEpochs := fs.Int("checkpoint-epochs", 1, "checkpoint the whole cluster every N barriers (0 = only on demand and at shutdown)")
	manifest := fs.String("manifest", "", "router manifest path: cluster-cumulative state, written atomically at checkpoints and shutdown, restored at boot")
	attempts := fs.Int("attempts", 5, "delivery attempts per node request before the operation fails")
	timeout := fs.Duration("timeout", 30*time.Second, "per-attempt node request timeout")
	seed := fs.Int64("seed", 1, "backoff jitter seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodesFlag == "" {
		return fmt.Errorf("router: -nodes is required")
	}
	if *listen == "" {
		return fmt.Errorf("router: -listen is required")
	}
	var nodes []string
	for _, n := range strings.Split(*nodesFlag, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	opts := stream.DefaultOptions()
	opts.Decay = *decay
	rt, err := cluster.New(cluster.Config{
		Nodes:            nodes,
		Batch:            *batch,
		EpochLength:      *epoch,
		Opts:             opts,
		CheckpointEpochs: *ckptEpochs,
		ManifestPath:     *manifest,
		HTTP:             &http.Client{},
		Retry: resilience.ClientConfig{
			MaxAttempts:   *attempts,
			PerTryTimeout: *timeout,
			Seed:          *seed,
		},
		Log: stdout,
	})
	if err != nil {
		return err
	}
	return serveRouter(rt, *listen, stdout)
}

// routerServer wires the cluster router to the HTTP handlers.
type routerServer struct {
	rt   *cluster.Router
	logw io.Writer
}

func (s *routerServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /observe", s.handleObserve)
	mux.HandleFunc("GET /estimates", s.handleEstimates)
	mux.HandleFunc("GET /sources", s.handleSources)
	mux.HandleFunc("POST /refine", s.handleRefine)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return recoverPanicsTo(s.logw, mux)
}

// handleObserve parses a claim body exactly like a member node and
// fans it out. A fan-out failure (a partition down past the retry
// policy) answers 503 + Retry-After: the claims are not lost — the
// replay client redelivers under the same key, chunks the cluster
// already completed dedup, and the failed partition catches up.
func (s *routerServer) handleObserve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpErrorTo(w, s.logw, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("observe: body exceeds %d bytes; split the stream into smaller requests", tooBig.Limit))
			return
		}
		httpErrorTo(w, s.logw, http.StatusBadRequest, fmt.Sprintf("observe: reading body: %v", err))
		return
	}
	var claims []stream.Triple
	err = parseClaimBody(body, r.Header.Get("Content-Type"), func(source, object, value string) error {
		if source == "" || object == "" || value == "" {
			return errEmptyClaimField
		}
		claims = append(claims, stream.Triple{Source: source, Object: object, Value: value})
		return nil
	})
	if err != nil {
		// Unlike a member node, nothing was forwarded yet: the router
		// parses the whole body before fan-out, so a bad row rejects the
		// request atomically.
		httpErrorTo(w, s.logw, http.StatusBadRequest, fmt.Sprintf("observe: %v", err))
		return
	}
	res, err := s.rt.Ingest(r.Context(), claims, seqKey(r))
	if err != nil {
		w.Header().Set("Retry-After", "1")
		httpErrorTo(w, s.logw, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSONTo(w, s.logw, http.StatusOK, res)
}

func (s *routerServer) handleEstimates(w http.ResponseWriter, r *http.Request) {
	s.serveCSV(w, s.rt.Estimates)
}

func (s *routerServer) handleSources(w http.ResponseWriter, r *http.Request) {
	s.serveCSV(w, s.rt.Sources)
}

// serveCSV buffers the scatter-gather merge so a partition failure
// mid-gather becomes a clean 503 instead of a truncated 200.
func (s *routerServer) serveCSV(w http.ResponseWriter, gather func(context.Context, io.Writer) error) {
	var buf strings.Builder
	if err := gather(context.Background(), &buf); err != nil {
		w.Header().Set("Retry-After", "1")
		httpErrorTo(w, s.logw, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if _, err := io.WriteString(w, buf.String()); err != nil {
		fmt.Fprintf(s.logw, "# WARNING: writing CSV response: %v\n", err)
	}
}

func (s *routerServer) handleRefine(w http.ResponseWriter, r *http.Request) {
	sweeps := 2
	if q := r.URL.Query().Get("sweeps"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > maxRefineSweeps {
			httpErrorTo(w, s.logw, http.StatusBadRequest,
				fmt.Sprintf("refine: sweeps must be an integer in [1,%d], got %q", maxRefineSweeps, q))
			return
		}
		sweeps = n
	}
	barriers, err := s.rt.Refine(r.Context(), sweeps)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		httpErrorTo(w, s.logw, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSONTo(w, s.logw, http.StatusOK, map[string]any{"sweeps": sweeps, "barriers": barriers})
}

func (s *routerServer) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.rt.Checkpoint(r.Context()); err != nil {
		httpErrorTo(w, s.logw, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSONTo(w, s.logw, http.StatusOK, map[string]any{"stats": s.rt.Stats()})
}

// handleHealthz always answers 200 while the router process is up;
// the per-partition detail carries each member's own /healthz.
func (s *routerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, nodes := s.rt.Health(r.Context())
	writeJSONTo(w, s.logw, http.StatusOK, map[string]any{
		"status": status,
		"router": s.rt.Stats(),
		"nodes":  nodes,
	})
}

// handleReadyz degrades per partition: 200 "ready" when every member
// can take load, 200 "degraded" naming the dark partitions while the
// rest still serve, and 503 only when no member answers.
func (s *routerServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, nodes := s.rt.Ready(r.Context())
	var down []int
	for _, n := range nodes {
		if !n.OK {
			down = append(down, n.Partition)
		}
	}
	body := map[string]any{"status": status, "nodes": nodes}
	if len(down) > 0 {
		body["down_partitions"] = down
	}
	code := http.StatusOK
	if status == "unavailable" {
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	}
	writeJSONTo(w, s.logw, code, body)
}

// serveRouter runs the router HTTP service until SIGTERM/SIGINT, then
// writes a final manifest so a restarted router resumes exactly here.
func serveRouter(rt *cluster.Router, addr string, stdout io.Writer) error {
	s := &routerServer{rt: rt, logw: stdout}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Machine-readable on purpose, like the node server: with
	// -listen :0 it is how scripts discover the port.
	fmt.Fprintf(stdout, "# listening on %s\n", ln.Addr())
	fmt.Fprintf(stdout, "# routing %d partitions\n", len(rt.Nodes()))
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var shutdownErr error
	select {
	case <-ctx.Done():
		stop()
		fmt.Fprintf(stdout, "# signal received, draining connections\n")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownErr = srv.Shutdown(shutCtx)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			shutdownErr = err
		}
	}
	if err := rt.WriteManifest(); err != nil {
		return errors.Join(shutdownErr, err)
	}
	st := rt.Stats()
	fmt.Fprintf(stdout, "# shutdown: %d claims routed, %d barriers\n", st.Claims, st.Barriers)
	return shutdownErr
}
