// The `slimfast query` subcommand: the relational query language from
// GET /v1/estimates, runnable from the shell against a live server
// (-to) or a checkpoint file (-from) — same grammar, same bytes.
//
//	slimfast query -to http://host:8080 'order=-contested&limit=10'
//	slimfast query -from state.ckpt 'where=changed>=12&cols=object,value'
//	slimfast query -from state.ckpt -table sources -generations 3 'where=source=s0'
//
// Against a live server the query string is forwarded verbatim to
// GET {to}/v1/{table}, so the server's schema (including the online
// learner's extra source columns) applies. Against a checkpoint the
// engine is restored in memory and queried locally; -generations N
// additionally walks the retained checkpoint generations (path,
// path.1, …, path.N-1) oldest-first and prefixes each row with
// generation and epoch columns — an as-of trajectory, e.g. a source's
// accuracy across the last N checkpoints.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	"slimfast/internal/query"
	"slimfast/internal/stream"
)

// runQuery implements `slimfast query`.
func runQuery(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("slimfast query", flag.ContinueOnError)
	to := fs.String("to", "", "query a live server at this base URL (e.g. http://127.0.0.1:8080)")
	from := fs.String("from", "", "query a checkpoint file instead of a server")
	table := fs.String("table", "estimates", "relation to query: estimates or sources")
	format := fs.String("format", "csv", "output format: csv or json (NDJSON)")
	generations := fs.Int("generations", 1, "with -from: walk up to N retained checkpoint generations (path, path.1, ...), oldest first, prefixing generation and epoch columns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*to == "") == (*from == "") {
		return fmt.Errorf("query: exactly one of -to or -from is required")
	}
	if *table != "estimates" && *table != "sources" {
		return fmt.Errorf("query: unknown -table %q (want estimates or sources)", *table)
	}
	switch *format {
	case "csv", "json", "ndjson":
	default:
		return fmt.Errorf("query: unknown -format %q (want csv or json)", *format)
	}
	if *generations < 1 {
		return fmt.Errorf("query: -generations must be >= 1")
	}
	raw := strings.Join(fs.Args(), "&")
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return fmt.Errorf("query: parsing %q: %w", raw, err)
	}
	if *to != "" {
		if *generations != 1 {
			return fmt.Errorf("query: -generations needs -from (a server has no retained generations to walk)")
		}
		return queryServer(*to, *table, *format, vals, stdout)
	}
	return queryCheckpoint(*from, *table, *format, *generations, vals, stdout)
}

// queryServer forwards the query string verbatim to the live /v1
// endpoint, so the server's schema and validation apply, and relays
// the body. A non-2xx answer is decoded from the uniform error
// envelope into a command error.
func queryServer(base, table, format string, vals url.Values, stdout io.Writer) error {
	vals.Set("format", format)
	u := strings.TrimSuffix(base, "/") + "/v1/" + table + "?" + vals.Encode()
	resp, err := http.Get(u)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("query: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
			return fmt.Errorf("query: server answered %d (%s): %s", resp.StatusCode, envelope.Code, envelope.Error)
		}
		return fmt.Errorf("query: server answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	_, err = stdout.Write(body)
	return err
}

// queryCheckpoint restores each requested generation and runs the
// query locally. With -generations 1 the output is byte-identical to
// asking a server restored from the same file; beyond that, rows gain
// generation (store slot, 0 = newest) and epoch columns and
// generations are emitted oldest-first so trajectories read forward
// in time. Missing or damaged generations are skipped with a warning,
// matching the restore fallback semantics of the serving store.
func queryCheckpoint(path, table, format string, generations int, vals url.Values, stdout io.Writer) error {
	single := generations == 1
	store := stream.NewCheckpointStore(path, generations)
	var out *query.Result
	restored := 0
	for i := generations - 1; i >= 0; i-- {
		gen := store.GenPath(i)
		eng, err := stream.RestoreFile(gen)
		if err != nil {
			if single {
				return fmt.Errorf("query: %w", err)
			}
			if !errors.Is(err, os.ErrNotExist) {
				fmt.Fprintf(os.Stderr, "# WARNING: skipping checkpoint generation %s: %v\n", gen, err)
			}
			continue
		}
		restored++
		res, err := runTableQuery(eng, table, vals)
		if err != nil {
			return err
		}
		if single {
			out = res
			break
		}
		out = appendGeneration(out, res, i, eng.CurrentEpoch())
	}
	if restored == 0 {
		return fmt.Errorf("query: no readable checkpoint generation at %s", path)
	}
	return query.Write(stdout, out, format)
}

// runTableQuery parses the query against the chosen relation's schema
// and executes it over the restored engine.
func runTableQuery(eng *stream.Engine, table string, vals url.Values) (*query.Result, error) {
	if table == "sources" {
		rel := sourcesRelation(eng)
		q, err := query.Parse(vals, rel.Cols)
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		res, err := query.ExecuteRelation(rel, q)
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		return res, nil
	}
	q, err := query.Parse(vals, query.EstimateColumns())
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	res, err := query.Execute(eng, q)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return res, nil
}

// appendGeneration materializes res and appends its rows to out with
// generation and epoch prefix columns, building the trajectory result
// incrementally.
func appendGeneration(out, res *query.Result, generation int, epoch int64) *query.Result {
	rel := query.Materialize(res)
	if out == nil {
		cols := append([]query.Column{
			{Name: "generation", Kind: query.KindInt},
			{Name: "epoch", Kind: query.KindInt},
		}, rel.Cols...)
		out = &query.Result{Cols: cols}
	}
	rows := make([][]query.Val, 0, len(rel.Rows))
	for _, r := range rel.Rows {
		row := append([]query.Val{
			{Kind: query.KindInt, Int: int64(generation)},
			{Kind: query.KindInt, Int: int64(epoch)},
		}, r...)
		rows = append(rows, row)
	}
	prev := out.Rows
	out.Rows = func(yield func([]query.Val) bool) {
		if prev != nil {
			for r := range prev {
				if !yield(r) {
					return
				}
			}
		}
		for _, r := range rows {
			if !yield(r) {
				return
			}
		}
	}
	return out
}
