package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"slimfast/internal/resilience"
	"slimfast/internal/stream"
)

// TestServeAdmissionShedding: a body bigger than the in-flight byte
// budget is shed with 429 + Retry-After before ingest, and a full
// request-slot budget sheds the same way.
func TestServeAdmissionShedding(t *testing.T) {
	srv := newStreamServer(testEngine(t, 2), serveConfig{Batch: 32, MaxInflightBytes: 64}, io.Discard)
	h := srv.handler()

	big := streamCSV(40) // way past 64 bytes
	rec := doReq(t, h, "POST", "/v1/observe", "text/csv", big)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("oversized observe = %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if _, _, shed := srv.gate.Pressure(); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}
	// A body inside the budget is admitted.
	if rec := doReq(t, h, "POST", "/v1/observe", "text/csv", "s,o,v\n"); rec.Code != http.StatusOK {
		t.Errorf("small observe = %d: %s", rec.Code, rec.Body)
	}

	// Saturate the request-slot budget and watch /observe shed.
	slot := newStreamServer(testEngine(t, 2), serveConfig{Batch: 32, MaxInflightReqs: 1}, io.Discard)
	release, err := slot.gate.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec := doReq(t, slot.handler(), "POST", "/v1/observe", "text/csv", "s,o,v\n"); rec.Code != http.StatusTooManyRequests {
		t.Errorf("saturated observe = %d, want 429", rec.Code)
	}
	release()
	if rec := doReq(t, slot.handler(), "POST", "/v1/observe", "text/csv", "s,o,v\n"); rec.Code != http.StatusOK {
		t.Errorf("post-release observe = %d: %s", rec.Code, rec.Body)
	}
}

// TestServeReadyz: ready with headroom, 503 + Retry-After when the
// gate is saturated, ready again once pressure drains. /healthz stays
// 200 throughout — it reports liveness, not pressure.
func TestServeReadyz(t *testing.T) {
	srv := newStreamServer(testEngine(t, 2), serveConfig{Batch: 32, MaxInflightReqs: 2}, io.Discard)
	h := srv.handler()

	rec := doReq(t, h, "GET", "/v1/readyz", "", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ready"`) {
		t.Fatalf("idle readyz = %d: %s", rec.Code, rec.Body)
	}
	r1, _ := srv.gate.Acquire(10)
	r2, _ := srv.gate.Acquire(10)
	rec = doReq(t, h, "GET", "/v1/readyz", "", "")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"overloaded"`) {
		t.Errorf("saturated readyz = %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("overloaded readyz without Retry-After")
	}
	if rec := doReq(t, h, "GET", "/v1/healthz", "", ""); rec.Code != http.StatusOK {
		t.Errorf("healthz under pressure = %d, want 200 (liveness only)", rec.Code)
	}
	r1()
	r2()
	if rec := doReq(t, h, "GET", "/v1/readyz", "", ""); rec.Code != http.StatusOK {
		t.Errorf("drained readyz = %d: %s", rec.Code, rec.Body)
	}
}

// TestServeIdempotentObserve is the serving-layer golden idempotency
// proof: a client retry storm — every batch delivered several times
// with its X-Batch-Seq key — must leave the engine byte-identical to
// one clean delivery of each batch.
func TestServeIdempotentObserve(t *testing.T) {
	all := strings.Split(strings.TrimSpace(ndjsonFromCSV(streamCSV(200))), "\n")
	const chunks = 5
	per := len(all) / chunks
	bodies := make([]string, chunks)
	for i := range bodies {
		lo, hi := i*per, (i+1)*per
		if i == chunks-1 {
			hi = len(all)
		}
		bodies[i] = strings.Join(all[lo:hi], "\n") + "\n"
	}

	once := testServer(testEngine(t, 2), "", 32)
	storm := testServer(testEngine(t, 2), "", 32)
	hOnce, hStorm := once.handler(), storm.handler()
	for i, body := range bodies {
		seq := fmt.Sprintf("batch-%d", i)
		req := func(h http.Handler) *httptest.ResponseRecorder {
			r := httptest.NewRequest("POST", "/v1/observe", strings.NewReader(body))
			r.Header.Set(resilience.SeqHeader, seq)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			return rec
		}
		if rec := req(hOnce); rec.Code != http.StatusOK {
			t.Fatalf("clean delivery %d = %d: %s", i, rec.Code, rec.Body)
		}
		// The storm: 1 + (i%3 + 1) deliveries of the same batch.
		for k := 0; k <= i%3+1; k++ {
			rec := req(hStorm)
			if rec.Code != http.StatusOK {
				t.Fatalf("storm delivery %d/%d = %d: %s", i, k, rec.Code, rec.Body)
			}
			var ack struct {
				Deduped  bool  `json:"deduped"`
				Ingested int64 `json:"ingested"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
				t.Fatal(err)
			}
			if k == 0 && (ack.Deduped || ack.Ingested == 0) {
				t.Errorf("first delivery %d reported deduped=%v ingested=%d", i, ack.Deduped, ack.Ingested)
			}
			if k > 0 && (!ack.Deduped || ack.Ingested != 0) {
				t.Errorf("retry %d/%d not deduplicated: %s", i, k, rec.Body)
			}
		}
	}
	wantEst := doReq(t, hOnce, "GET", "/v1/estimates", "", "").Body.String()
	gotEst := doReq(t, hStorm, "GET", "/v1/estimates", "", "").Body.String()
	if gotEst != wantEst {
		t.Error("retry storm /estimates diverge from single delivery")
	}
	if a, b := once.eng.Stats(), storm.eng.Stats(); a != b {
		t.Errorf("stats diverged: %+v vs %+v", a, b)
	}

	// The ?seq= query form works for header-less clients.
	if rec := doReq(t, hStorm, "POST", "/v1/observe?seq=batch-0", "", bodies[0]); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), `"deduped":true`) {
		t.Errorf("?seq= replay = %d: %s", rec.Code, rec.Body)
	}
}

// TestServeDedupSurvivesRestart: the dedup window rides inside the
// checkpoint, so a retry that lands after a crash+restore is still
// deduplicated — exactly-once across process lives.
func TestServeDedupSurvivesRestart(t *testing.T) {
	ckpt := t.TempDir() + "/dedup.ckpt"
	srv := testServer(testEngine(t, 2), ckpt, 32)
	h := srv.handler()
	body := ndjsonFromCSV(streamCSV(30))
	req := httptest.NewRequest("POST", "/v1/observe", strings.NewReader(body))
	req.Header.Set(resilience.SeqHeader, "once-upon-a-batch")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("observe = %d: %s", rec.Code, rec.Body)
	}
	if rec := doReq(t, h, "POST", "/v1/checkpoint", "", ""); rec.Code != http.StatusOK {
		t.Fatalf("checkpoint = %d: %s", rec.Code, rec.Body)
	}
	restored, err := stream.RestoreFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	wantObs := restored.Stats().Observations
	h2 := testServer(restored, ckpt, 32).handler()
	req = httptest.NewRequest("POST", "/v1/observe", strings.NewReader(body))
	req.Header.Set(resilience.SeqHeader, "once-upon-a-batch")
	rec = httptest.NewRecorder()
	h2.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"deduped":true`) {
		t.Fatalf("post-restart replay = %d: %s", rec.Code, rec.Body)
	}
	if got := restored.Stats().Observations; got != wantObs {
		t.Errorf("replay after restart re-ingested: %d -> %d observations", wantObs, got)
	}
}

// TestServeFeaturesEndpoint: /features exposes the learner's model as
// CSV on online engines and 409s on agreement-only ones.
func TestServeFeaturesEndpoint(t *testing.T) {
	h := testServer(featureEngine(t, 2), "", 64).handler()
	if rec := doReq(t, h, "POST", "/v1/observe", "text/csv", streamCSV(150)); rec.Code != http.StatusOK {
		t.Fatalf("observe = %d: %s", rec.Code, rec.Body)
	}
	rec := doReq(t, h, "GET", "/v1/features", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("features = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/csv" {
		t.Errorf("features content type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.HasPrefix(body, "feature,weight\n") {
		t.Errorf("features header:\n%s", body)
	}
	for _, want := range []string{"(intercept),", "tier=reviewed,", "tier=scraped,"} {
		if !strings.Contains(body, want) {
			t.Errorf("features missing %q:\n%s", want, body)
		}
	}
	// The learner separates the tiers; their weights must differ.
	var reviewed, scraped float64
	for _, line := range strings.Split(body, "\n") {
		fmt.Sscanf(line, "tier=reviewed,%f", &reviewed)
		fmt.Sscanf(line, "tier=scraped,%f", &scraped)
	}
	if reviewed <= scraped {
		t.Errorf("reviewed weight %.4f should exceed scraped %.4f", reviewed, scraped)
	}

	if rec := doReq(t, h, "POST", "/v1/features", "", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/features = %d, want 405", rec.Code)
	}
	plain := testServer(testEngine(t, 2), "", 32).handler()
	if rec := doReq(t, plain, "GET", "/v1/features", "", ""); rec.Code != http.StatusConflict {
		t.Errorf("features without learner = %d, want 409", rec.Code)
	}
}

// TestServePanicRecovery: a handler panic becomes a logged 500 JSON
// error instead of killing the connection silently.
func TestServePanicRecovery(t *testing.T) {
	var log bytes.Buffer
	srv := newStreamServer(testEngine(t, 1), serveConfig{Batch: 1}, &log)
	h := recoverPanicsTo(srv.logw, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("poisoned request")
	}))
	rec := doReq(t, h, "GET", "/anything", "", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Errorf("500 body: %s", rec.Body)
	}
	if !strings.Contains(log.String(), "PANIC") || !strings.Contains(log.String(), "poisoned request") {
		t.Errorf("panic not logged:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "goroutine") {
		t.Errorf("panic log missing the stack:\n%s", log.String())
	}
}

// TestServeLockTimeout: with -request-timeout set, a request that
// cannot take the ingest lock in time sheds with 503 + Retry-After
// instead of queueing forever behind a wedged peer.
func TestServeLockTimeout(t *testing.T) {
	srv := newStreamServer(testEngine(t, 1), serveConfig{Batch: 8, RequestTimeout: 50 * time.Millisecond}, io.Discard)
	h := srv.handler()
	srv.lock <- struct{}{} // wedge the ingest lock
	defer func() { <-srv.lock }()

	start := time.Now()
	rec := doReq(t, h, "POST", "/v1/observe", "text/csv", "s,o,v\n")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("lock-starved observe = %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("shedding took %v, deadline did not bite", took)
	}
	if rec := doReq(t, h, "POST", "/v1/refine", "", ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("lock-starved refine = %d, want 503", rec.Code)
	}
	// Queries stay lock-free and keep answering while ingest is wedged.
	if rec := doReq(t, h, "GET", "/v1/estimates", "", ""); rec.Code != http.StatusOK {
		t.Errorf("estimates during wedge = %d", rec.Code)
	}
}

// TestServeBodyReadTimeout drives a real TCP server with a client
// that trickles its body forever: the read deadline must cut the
// request off with 408 instead of letting it hold an admission slot
// indefinitely.
func TestServeBodyReadTimeout(t *testing.T) {
	srv := newStreamServer(testEngine(t, 1), serveConfig{Batch: 8, RequestTimeout: 150 * time.Millisecond}, io.Discard)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	defer pw.Close()
	go func() {
		pw.Write([]byte("s,o,v\n")) // a taste, then silence
	}()
	req, err := http.NewRequest("POST", ts.URL+"/v1/observe", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	done := make(chan struct{})
	var code int
	var rerr error
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			rerr = err
			return
		}
		code = resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("trickling request was never cut off")
	}
	// The deadline either produces a clean 408 or snaps the connection
	// mid-upload (the client then sees a transport error); both prove
	// the slot was reclaimed.
	if rerr == nil && code != http.StatusRequestTimeout {
		t.Errorf("trickling request = %d, want 408 or a snapped connection", code)
	}
}

// TestServePeriodicCheckpoint: -checkpoint-every writes generations in
// the background without any operator request.
func TestServePeriodicCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store := stream.NewCheckpointStore(dir+"/auto.ckpt", 2)
	eng := testEngine(t, 2)
	eng.Observe("s", "o", "v")
	var log syncBuffer
	srv := newStreamServer(eng, serveConfig{Batch: 8, Store: store, CheckpointEvery: 20 * time.Millisecond}, &log)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.checkpointLoop(ctx, srv.cfg.CheckpointEvery)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if strings.Contains(log.String(), "# periodic checkpoint written to ") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no periodic checkpoint after 5s; log:\n%s", log.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, err := store.Restore(); err != nil {
		t.Fatalf("periodic generation unreadable: %v", err)
	}
}
