package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"slimfast/internal/stream"
)

// ndjsonFromCSV rewrites the test stream as NDJSON ingest bodies.
func ndjsonFromCSV(csvIn string) string {
	var sb strings.Builder
	lines := strings.Split(strings.TrimSpace(csvIn), "\n")
	for _, line := range lines[1:] { // skip header
		p := strings.SplitN(line, ",", 3)
		fmt.Fprintf(&sb, "{\"source\":%q,\"object\":%q,\"value\":%q}\n", p[0], p[1], p[2])
	}
	return sb.String()
}

func doReq(t *testing.T, h http.Handler, method, path, contentType, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// testServer builds a streamServer the way most tests want one: the
// given batch size, an optional checkpoint store, defaults elsewhere.
func testServer(eng *stream.Engine, ckpt string, batch int) *streamServer {
	var store *stream.CheckpointStore
	if ckpt != "" {
		store = stream.NewCheckpointStore(ckpt, 2)
	}
	return newStreamServer(eng, serveConfig{Batch: batch, Store: store}, io.Discard)
}

func testEngine(t *testing.T, workers int) *stream.Engine {
	t.Helper()
	opts := stream.DefaultEngineOptions()
	opts.Shards = 4
	opts.Workers = workers
	opts.EpochLength = 128
	e, err := stream.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestServeRestartDeterminism is the serving-layer half of the golden
// restart guarantee: POST part one, checkpoint over HTTP, restart from
// the checkpoint, POST part two — the /estimates and /sources bytes
// must be identical to a server that ingested everything in one life.
// Runs for one and four ingest workers.
func TestServeRestartDeterminism(t *testing.T) {
	all := strings.Split(strings.TrimSpace(ndjsonFromCSV(streamCSV(300))), "\n")
	cut := 5 * len(all) / 9 // not a batch boundary: restart mid-epoch
	part1 := strings.Join(all[:cut], "\n") + "\n"
	part2 := strings.Join(all[cut:], "\n") + "\n"

	for _, workers := range []int{1, 4} {
		// One uninterrupted life.
		hU := testServer(testEngine(t, workers), "", 64).handler()
		for _, body := range []string{part1, part2} {
			if rec := doReq(t, hU, "POST", "/v1/observe", "", body); rec.Code != http.StatusOK {
				t.Fatalf("workers=%d: observe = %d: %s", workers, rec.Code, rec.Body)
			}
		}
		wantEst := doReq(t, hU, "GET", "/v1/estimates", "", "").Body.String()
		wantSrc := doReq(t, hU, "GET", "/v1/sources", "", "").Body.String()

		// Ingest, checkpoint, die, restore, finish.
		ckpt := filepath.Join(t.TempDir(), "srv.ckpt")
		h1 := testServer(testEngine(t, workers), ckpt, 64).handler()
		if rec := doReq(t, h1, "POST", "/v1/observe", "", part1); rec.Code != http.StatusOK {
			t.Fatalf("workers=%d: part1 = %d: %s", workers, rec.Code, rec.Body)
		}
		if rec := doReq(t, h1, "POST", "/v1/checkpoint", "", ""); rec.Code != http.StatusOK {
			t.Fatalf("workers=%d: checkpoint = %d: %s", workers, rec.Code, rec.Body)
		}
		restored, err := stream.RestoreFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		h2 := testServer(restored, ckpt, 64).handler()
		if rec := doReq(t, h2, "POST", "/v1/observe", "", part2); rec.Code != http.StatusOK {
			t.Fatalf("workers=%d: part2 = %d: %s", workers, rec.Code, rec.Body)
		}
		if got := doReq(t, h2, "GET", "/v1/estimates", "", "").Body.String(); got != wantEst {
			t.Errorf("workers=%d: restored /estimates differ from uninterrupted run\ngot:\n%s\nwant:\n%s", workers, got, wantEst)
		}
		if got := doReq(t, h2, "GET", "/v1/sources", "", "").Body.String(); got != wantSrc {
			t.Errorf("workers=%d: restored /sources differ from uninterrupted run", workers)
		}
	}
}

func TestServeObserveCSVAndQueries(t *testing.T) {
	h := testServer(testEngine(t, 2), "", 32).handler()
	rec := doReq(t, h, "POST", "/v1/observe", "text/csv", streamCSV(40))
	if rec.Code != http.StatusOK {
		t.Fatalf("csv observe = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Ingested     int64 `json:"ingested"`
		Observations int64 `json:"observations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Ingested != 120 || resp.Observations != 120 {
		t.Errorf("ingested %d / observations %d, want 120/120", resp.Ingested, resp.Observations)
	}

	est := doReq(t, h, "GET", "/v1/estimates", "", "")
	if ct := est.Header().Get("Content-Type"); ct != "text/csv" {
		t.Errorf("estimates content type = %q", ct)
	}
	if body := est.Body.String(); !strings.HasPrefix(body, "object,value,confidence\n") || !strings.Contains(body, "o000,t,") {
		t.Errorf("estimates body:\n%s", body)
	}
	if body := doReq(t, h, "GET", "/v1/sources", "", "").Body.String(); !strings.Contains(body, "good1,") {
		t.Errorf("sources body:\n%s", body)
	}

	hz := doReq(t, h, "GET", "/v1/healthz", "", "")
	var health map[string]any
	if err := json.Unmarshal(hz.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["observations"] != float64(120) {
		t.Errorf("healthz = %v", health)
	}
}

func TestServeErrors(t *testing.T) {
	h := testServer(testEngine(t, 1), "", 32).handler()
	if rec := doReq(t, h, "GET", "/v1/observe", "", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/observe = %d, want 405", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/estimates", "", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/estimates = %d, want 405", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/checkpoint", "", ""); rec.Code != http.StatusConflict {
		t.Errorf("checkpoint with no path = %d, want 409", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/observe", "", "{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad ndjson = %d, want 400", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/observe", "", `{"source":"s","object":"","value":"v"}`+"\n"); rec.Code != http.StatusBadRequest {
		t.Errorf("empty object field = %d, want 400", rec.Code)
	}
	// A bad row after good ones still reports the prefix ingested.
	body := `{"source":"s","object":"o","value":"v"}` + "\n" + "{broken\n"
	rec := doReq(t, h, "POST", "/v1/observe", "", body)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "ingested 1 claims") {
		t.Errorf("partial ingest = %d: %s", rec.Code, rec.Body)
	}
}

// syncBuffer is an io.Writer safe for the cross-goroutine logging the
// SIGTERM test does.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeStreamSIGTERM boots the real server loop on an ephemeral
// port, ingests over TCP, delivers a real SIGTERM to the process, and
// verifies the graceful path: drain, final checkpoint, clean exit,
// and a restorable state.
func TestServeStreamSIGTERM(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sig.ckpt")
	eng := testEngine(t, 2)
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- serveStream(eng, serveConfig{Addr: "127.0.0.1:0", Batch: 32, Store: stream.NewCheckpointStore(ckpt, 2)}, &out)
	}()

	// Wait for the listen line and extract the bound address.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never came up; log:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "# listening on "); ok {
				addr = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	body := ndjsonFromCSV(streamCSV(20))
	resp, err := http.Post("http://"+addr+"/v1/observe", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe over TCP = %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveStream returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
	if !strings.Contains(out.String(), "# shutdown checkpoint written to ") {
		t.Errorf("missing shutdown checkpoint line:\n%s", out.String())
	}
	restored, err := stream.RestoreFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if obs := restored.Stats().Observations; obs != 60 {
		t.Errorf("restored observations = %d, want 60", obs)
	}
}

// TestStreamSubcommandCheckpointRestore drives the batch-mode flags:
// -checkpoint after a run, then -restore resuming with no new input.
func TestStreamSubcommandCheckpointRestore(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "batch.ckpt")
	var out bytes.Buffer
	err := runStream([]string{"-shards", "2", "-checkpoint", ckpt},
		strings.NewReader(streamCSV(50)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# checkpoint written to "+ckpt) {
		t.Errorf("missing checkpoint line:\n%s", out.String())
	}

	// Resuming with an empty stdin is fine: the restored engine already
	// holds the observations.
	out.Reset()
	err = runStream([]string{"-restore", ckpt}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# restored 50 objects from 3 sources (150 observations") {
		t.Errorf("missing restore line:\n%s", s)
	}
	if !strings.Contains(s, "o000,t,") {
		t.Errorf("restored run lost the estimates:\n%s", s)
	}

	// A missing checkpoint with -restore starts fresh and says so.
	out.Reset()
	err = runStream([]string{"-restore", filepath.Join(t.TempDir(), "nope.ckpt")},
		strings.NewReader(streamCSV(5)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "starting fresh") {
		t.Errorf("missing starting-fresh notice:\n%s", out.String())
	}
}

// TestServeRefineEndpoint covers the operator re-sweep: a default
// refine, an explicit sweep count, rejection of junk counts, and —
// the load-bearing part — refines racing a concurrent ingest stream
// without breaking determinism of the final state.
func TestServeRefineEndpoint(t *testing.T) {
	h := testServer(testEngine(t, 2), "", 32).handler()
	if rec := doReq(t, h, "POST", "/v1/observe", "text/csv", streamCSV(60)); rec.Code != http.StatusOK {
		t.Fatalf("observe = %d: %s", rec.Code, rec.Body)
	}
	rec := doReq(t, h, "POST", "/v1/refine", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("refine = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Sweeps       int   `json:"sweeps"`
		Observations int64 `json:"observations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sweeps != 2 || resp.Observations != 180 {
		t.Errorf("refine response = %+v, want sweeps=2 observations=180", resp)
	}
	if rec := doReq(t, h, "POST", "/v1/refine?sweeps=3", "", ""); rec.Code != http.StatusOK {
		t.Errorf("refine sweeps=3 = %d: %s", rec.Code, rec.Body)
	}
	for _, bad := range []string{"0", "-1", "9999", "two"} {
		if rec := doReq(t, h, "POST", "/v1/refine?sweeps="+bad, "", ""); rec.Code != http.StatusBadRequest {
			t.Errorf("refine sweeps=%s = %d, want 400", bad, rec.Code)
		}
	}
	if rec := doReq(t, h, "GET", "/v1/refine", "", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/refine = %d, want 405", rec.Code)
	}
}

// TestServeRefineConcurrentWithIngest hammers /observe and /refine
// from concurrent clients (the ingest lock serializes them), then
// verifies every claim landed and a final refine converges the same
// state a sequential ingest+refine reaches.
func TestServeRefineConcurrentWithIngest(t *testing.T) {
	const chunks = 8
	bodies := make([]string, chunks)
	all := strings.Split(strings.TrimSpace(ndjsonFromCSV(streamCSV(200))), "\n")
	per := len(all) / chunks
	for i := range bodies {
		lo, hi := i*per, (i+1)*per
		if i == chunks-1 {
			hi = len(all)
		}
		bodies[i] = strings.Join(all[lo:hi], "\n") + "\n"
	}

	srv := testServer(testEngine(t, 2), "", 32)
	h := srv.handler()
	var wg sync.WaitGroup
	errs := make(chan string, chunks+4)
	for i := 0; i < chunks; i++ {
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			if rec := doReq(t, h, "POST", "/v1/observe", "", body); rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("observe = %d: %s", rec.Code, rec.Body)
			}
		}(bodies[i])
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rec := doReq(t, h, "POST", "/v1/refine", "", ""); rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("refine = %d: %s", rec.Code, rec.Body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := srv.eng.Stats().Observations; got != int64(len(all)) {
		t.Fatalf("observations = %d, want %d", got, len(all))
	}

	// Sequential reference: same claims, then the same final refine.
	ref := testServer(testEngine(t, 2), "", 32)
	hRef := ref.handler()
	for _, body := range bodies {
		if rec := doReq(t, hRef, "POST", "/v1/observe", "", body); rec.Code != http.StatusOK {
			t.Fatalf("reference observe = %d", rec.Code)
		}
	}
	doReq(t, h, "POST", "/v1/refine?sweeps=4", "", "")
	doReq(t, hRef, "POST", "/v1/refine?sweeps=4", "", "")
	got := doReq(t, h, "GET", "/v1/estimates", "", "").Body.String()
	want := doReq(t, hRef, "GET", "/v1/estimates", "", "").Body.String()
	if got != want {
		t.Error("estimates after concurrent ingest+refine diverge from sequential reference")
	}
}

// featureEngine builds an online-learning engine matching streamCSV's
// sources: the reliable pair shares a feature, the contrarian has its
// own.
func featureEngine(t *testing.T, workers int) *stream.Engine {
	t.Helper()
	opts := stream.DefaultEngineOptions()
	opts.Shards = 4
	opts.Workers = workers
	opts.EpochLength = 128
	opts.Features = map[string][]string{
		"good1": {"tier=reviewed"},
		"good2": {"tier=reviewed"},
		"bad":   {"tier=scraped"},
	}
	e, err := stream.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestServeSourcesDetailInOnlineMode: a feature-mode server reports
// the accuracy decomposition on /sources, and the restart guarantee
// holds for the v2 checkpoint.
func TestServeSourcesDetailInOnlineMode(t *testing.T) {
	h := testServer(featureEngine(t, 2), "", 64).handler()
	if rec := doReq(t, h, "POST", "/v1/observe", "text/csv", streamCSV(150)); rec.Code != http.StatusOK {
		t.Fatalf("observe = %d: %s", rec.Code, rec.Body)
	}
	body := doReq(t, h, "GET", "/v1/sources", "", "").Body.String()
	if !strings.HasPrefix(body, "source,accuracy,learned,empirical\n") {
		t.Fatalf("online /sources missing detail header:\n%s", body)
	}
	var goodLearned, badLearned float64
	for _, line := range strings.Split(body, "\n") {
		var acc, learned, empirical float64
		if n, _ := fmt.Sscanf(line, "good1,%f,%f,%f", &acc, &learned, &empirical); n == 3 {
			goodLearned = learned
		}
		if n, _ := fmt.Sscanf(line, "bad,%f,%f,%f", &acc, &learned, &empirical); n == 3 {
			badLearned = learned
		}
	}
	if goodLearned <= badLearned {
		t.Errorf("learned accuracy: reviewed tier %.3f should exceed scraped %.3f", goodLearned, badLearned)
	}

	// Restart determinism with the learner in play.
	all := strings.Split(strings.TrimSpace(ndjsonFromCSV(streamCSV(300))), "\n")
	cut := 5 * len(all) / 9
	part1 := strings.Join(all[:cut], "\n") + "\n"
	part2 := strings.Join(all[cut:], "\n") + "\n"
	hU := testServer(featureEngine(t, 2), "", 64).handler()
	doReq(t, hU, "POST", "/v1/observe", "", part1)
	doReq(t, hU, "POST", "/v1/observe", "", part2)
	wantSrc := doReq(t, hU, "GET", "/v1/sources", "", "").Body.String()

	ckpt := filepath.Join(t.TempDir(), "online.ckpt")
	h1 := testServer(featureEngine(t, 2), ckpt, 64).handler()
	doReq(t, h1, "POST", "/v1/observe", "", part1)
	if rec := doReq(t, h1, "POST", "/v1/checkpoint", "", ""); rec.Code != http.StatusOK {
		t.Fatalf("checkpoint = %d: %s", rec.Code, rec.Body)
	}
	restored, err := stream.RestoreFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.OnlineLearning() {
		t.Fatal("restored engine lost the learner")
	}
	h2 := testServer(restored, ckpt, 64).handler()
	doReq(t, h2, "POST", "/v1/observe", "", part2)
	if got := doReq(t, h2, "GET", "/v1/sources", "", "").Body.String(); got != wantSrc {
		t.Errorf("restored online /sources diverges from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, wantSrc)
	}
}
