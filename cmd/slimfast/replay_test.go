package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"slimfast/internal/resilience"
)

// TestReplaySubcommand drives `slimfast replay` against a live
// server: a clean replay ingests everything, and re-running the same
// replay (same seq prefix) is fully deduplicated — the CLI-level
// exactly-once property.
func TestReplaySubcommand(t *testing.T) {
	srv := testServer(testEngine(t, 2), "", 32)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var out bytes.Buffer
	err := runReplay([]string{"-to", ts.URL, "-batch", "25", "-seq-prefix", "rt"},
		strings.NewReader(streamCSV(40)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.eng.Stats().Observations; got != 120 {
		t.Fatalf("observations after replay = %d, want 120", got)
	}
	if s := out.String(); !strings.Contains(s, "replayed 5 batches") || !strings.Contains(s, "120 claims ingested, 0 deduplicated") {
		t.Errorf("replay summary:\n%s", s)
	}

	// Same stream, same keys: nothing is re-ingested.
	out.Reset()
	err = runReplay([]string{"-to", ts.URL, "-batch", "25", "-seq-prefix", "rt"},
		strings.NewReader(streamCSV(40)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.eng.Stats().Observations; got != 120 {
		t.Errorf("observations after duplicate replay = %d, want 120", got)
	}
	if s := out.String(); !strings.Contains(s, "0 claims ingested, 5 deduplicated") {
		t.Errorf("duplicate replay summary:\n%s", s)
	}

	if err := runReplay([]string{"-batch", "10"}, strings.NewReader(streamCSV(5)), &out); err == nil {
		t.Error("replay without -to should fail")
	}
	if err := runReplay([]string{"-to", ts.URL}, strings.NewReader(""), &out); err == nil {
		t.Error("replay with an empty stream should fail")
	}
}

// TestReplayRetriesThroughOverload fronts the server with a shedder
// that 429s the first delivery of every batch: the replay client must
// retry each one through and converge to exactly the clean state.
func TestReplayRetriesThroughOverload(t *testing.T) {
	srv := testServer(testEngine(t, 2), "", 32)
	inner := srv.handler()
	var mu sync.Mutex
	seen := map[string]bool{}
	shedder := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == "POST" && r.URL.Path == "/v1/observe" {
			seq := r.Header.Get(resilience.SeqHeader)
			mu.Lock()
			first := !seen[seq]
			seen[seq] = true
			mu.Unlock()
			if first {
				w.Header().Set("Retry-After", "0")
				http.Error(w, "shed", http.StatusTooManyRequests)
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(shedder)
	defer ts.Close()

	var out bytes.Buffer
	err := runReplay([]string{"-to", ts.URL, "-batch", "20", "-seq-prefix", "ov"},
		strings.NewReader(streamCSV(30)), &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.eng.Stats().Observations; got != 90 {
		t.Fatalf("observations after shed+retry replay = %d, want 90", got)
	}
	if !strings.Contains(out.String(), "90 claims ingested, 0 deduplicated, 5 retries") {
		t.Errorf("replay summary:\n%s", out.String())
	}

	// Reference: the same stream into a fresh server with no shedding
	// produces byte-identical estimates.
	ref := testServer(testEngine(t, 2), "", 32)
	tsRef := httptest.NewServer(ref.handler())
	defer tsRef.Close()
	if err := runReplay([]string{"-to", tsRef.URL, "-batch", "20"},
		strings.NewReader(streamCSV(30)), &out); err != nil {
		t.Fatal(err)
	}
	got := doReq(t, srv.handler(), "GET", "/v1/estimates", "", "").Body.String()
	want := doReq(t, ref.handler(), "GET", "/v1/estimates", "", "").Body.String()
	if got != want {
		t.Error("shed+retry replay estimates diverge from clean replay")
	}
}
