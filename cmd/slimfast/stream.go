// The `slimfast stream` subcommand: ingest a claim stream from CSV or
// stdin through the sharded incremental engine and emit rolling
// estimates, instead of the batch compile-and-fit pipeline of the bare
// command. With -listen it becomes a long-running HTTP service (see
// serve.go); with -checkpoint / -restore the engine state survives
// process restarts bit for bit.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"slimfast/internal/data"
	"slimfast/internal/obs"
	"slimfast/internal/online"
	"slimfast/internal/stream"
)

// runStream implements `slimfast stream`. Claims are read row by row
// (never materializing the dataset), ingested through the sharded
// engine in deterministic batches, and summarized as rolling status
// lines plus final values/accuracies CSVs.
func runStream(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("slimfast stream", flag.ContinueOnError)
	obsPath := fs.String("obs", "-", "observations CSV (source,object,value); - reads stdin")
	shards := fs.Int("shards", 0, "object shards (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 0, "ingest/refine goroutines (0 = GOMAXPROCS)")
	epoch := fs.Int("epoch", 0, "observations per accuracy epoch (0 = default)")
	externalEpochs := fs.Bool("external-epochs", false, "cluster member mode: never refresh accuracies locally; epochs are driven by a router via the /epoch endpoints")
	maxObjects := fs.Int("max-objects", 0, "bound live objects, LRU-evicting beyond (0 = unbounded)")
	decay := fs.Float64("decay", 1, "per-observation evidence decay in (0,1]; 1 = never forget")
	batch := fs.Int("batch", 1024, "claims per deterministic parallel ingest batch")
	every := fs.Int("every", 0, "emit a rolling status line every N observations (0 = off)")
	watch := fs.String("watch", "", "comma-separated object names whose rolling estimates to emit")
	refine := fs.Int("refine", 2, "exact re-sweeps before the final output")
	valuesOut := fs.String("values", "", "write final estimates CSV here (default stdout)")
	accOut := fs.String("accuracies", "", "write final source accuracies CSV here (default stdout)")
	listen := fs.String("listen", "", "serve the HTTP ingest/query API on this address (e.g. :8080) instead of reading -obs")
	ckptPath := fs.String("checkpoint", "", "checkpoint file: written on POST /checkpoint and SIGTERM (serve mode) or after the final output (batch mode)")
	ckptKeep := fs.Int("checkpoint-keep", stream.DefaultCheckpointKeep, "checkpoint generations to retain (newest at the -checkpoint path, older at path.1, path.2, ...)")
	ckptEvery := fs.Duration("checkpoint-every", 0, "write a checkpoint generation this often in serve mode (0 = only on demand and at shutdown)")
	reqTimeout := fs.Duration("request-timeout", 0, "serve mode: bound one request's body read and ingest-lock wait (0 = no deadline)")
	maxInflightMB := fs.Int64("max-inflight-mb", 512, "serve mode: shed /observe with 429 beyond this many MiB of concurrent in-flight bodies (0 = unbounded)")
	maxInflightReqs := fs.Int64("max-inflight-reqs", 256, "serve mode: shed /observe with 429 beyond this many concurrent requests (0 = unbounded)")
	restorePath := fs.String("restore", "", "resume from this checkpoint when it exists (engine flags like -shards then come from the checkpoint); damaged generations fall back to older ones")
	featPath := fs.String("features", "", "source features CSV (source,feature); enables online discriminative reliability learning")
	window := fs.Int("window", 0, "drift window in epochs for the online learner (0 = default; needs -features)")
	logFormat := fs.String("log-format", "text", "serve mode: structured log format, text or json")
	pprofAddr := fs.String("pprof", "", "serve mode: serve net/http/pprof on this side address (e.g. localhost:6060); empty = off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validLogFormat(*logFormat); err != nil {
		return err
	}
	if *externalEpochs {
		if *epoch != 0 {
			return errors.New("-epoch and -external-epochs are mutually exclusive")
		}
		if *featPath != "" {
			return errors.New("-features is not supported in cluster member mode (-external-epochs): the online σ-table cannot be coordinated remotely")
		}
		*epoch = stream.ExternalEpochLength
	}

	var eng *stream.Engine
	if *restorePath != "" {
		rs := stream.NewCheckpointStore(*restorePath, *ckptKeep)
		rs.Log = stdout
		switch restored, from, err := rs.Restore(); {
		case err == nil:
			eng = restored
			st := eng.Stats()
			fmt.Fprintf(stdout, "# restored %d objects from %d sources (%d observations, epoch %d) from %s\n",
				st.Objects, st.Sources, st.Observations, st.Epoch, from)
		case errors.Is(err, os.ErrNotExist):
			// One command line serves both cold and warm boots.
			fmt.Fprintf(stdout, "# no checkpoint at %s, starting fresh\n", *restorePath)
		default:
			return err
		}
	}
	if *window < 0 {
		return fmt.Errorf("-window must be non-negative, got %d", *window)
	}
	if eng != nil && *featPath != "" {
		// Engine shape comes from the checkpoint, like -shards; saying
		// so matters here because an operator adding -features to a
		// running deployment would otherwise silently keep serving
		// agreement-only accuracies.
		if eng.OnlineLearning() {
			fmt.Fprintf(stdout, "# note: -features ignored, restored checkpoint already carries its feature table\n")
		} else {
			fmt.Fprintf(stdout, "# WARNING: -features ignored: restored checkpoint has no online learner; delete %s (or checkpoint elsewhere) to enable it\n", *restorePath)
		}
	}
	if eng != nil && *externalEpochs && !eng.ExternalEpochs() {
		// Like -shards, the epoch length comes from the checkpoint; a
		// node restored from a single-process checkpoint would keep
		// refreshing locally and fork the cluster's accuracy state.
		return fmt.Errorf("-external-epochs conflicts with the restored checkpoint (local epoch length %d); checkpoint elsewhere or drop the flag", eng.Stats().EpochLength)
	}
	if eng == nil {
		opts := stream.DefaultEngineOptions()
		opts.Shards = *shards
		opts.Workers = *workers
		opts.EpochLength = *epoch
		opts.MaxObjects = *maxObjects
		opts.Decay = *decay
		if *featPath != "" {
			f, err := os.Open(*featPath)
			if err != nil {
				return err
			}
			features, err := data.ReadSourceFeaturesCSV(f)
			f.Close()
			if err != nil {
				return err
			}
			opts.Features = features
			opts.OnlineLearn = true
			if *window > 0 {
				opts.Learn = online.DefaultConfig()
				opts.Learn.InitAccuracy = opts.InitAccuracy
				opts.Learn.WindowEpochs = *window
			}
			fmt.Fprintf(stdout, "# online learning over %d featured sources\n", len(features))
		}
		var err error
		if eng, err = stream.NewEngine(opts); err != nil {
			return err
		}
	}
	var store *stream.CheckpointStore
	if *ckptPath != "" {
		store = stream.NewCheckpointStore(*ckptPath, *ckptKeep)
		store.Log = stdout
	}
	if *listen != "" {
		// One registry per process: engine internals, checkpoint store
		// and the HTTP layer all expose through GET /v1/metrics.
		reg := obs.NewRegistry()
		eng.SetMetrics(stream.NewMetrics(reg))
		if store != nil {
			store.Metrics = stream.NewStoreMetrics(reg)
		}
		if *pprofAddr != "" {
			if _, err := startPprof(*pprofAddr, stdout); err != nil {
				return err
			}
		}
		return serveStream(eng, serveConfig{
			Addr:             *listen,
			Batch:            *batch,
			Store:            store,
			CheckpointEvery:  *ckptEvery,
			RequestTimeout:   *reqTimeout,
			MaxInflightBytes: *maxInflightMB << 20,
			MaxInflightReqs:  *maxInflightReqs,
			Registry:         reg,
			LogFormat:        *logFormat,
		}, stdout)
	}
	var watched []string
	if *watch != "" {
		watched = strings.Split(*watch, ",")
	}
	if *batch < 1 {
		*batch = 1
	}

	in := stdin
	if *obsPath != "-" && *obsPath != "" {
		f, err := os.Open(*obsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	status := func(n int64) {
		st := eng.Stats()
		fmt.Fprintf(stdout, "# obs=%d sources=%d objects=%d epoch=%d evicted=%d\n",
			n, st.Sources, st.Objects, st.Epoch, st.EvictedObjects)
		for _, o := range watched {
			if v, conf, ok := eng.Value(o); ok {
				fmt.Fprintf(stdout, "# watch %s = %s (%.4f)\n", o, v, conf)
			} else {
				fmt.Fprintf(stdout, "# watch %s = ? (unseen or evicted)\n", o)
			}
		}
	}

	// Ingest in fixed-size batches: the batch boundary (not the worker
	// count) determines epoch turnover, so a re-run of the same stream
	// with different -workers produces bit-identical output.
	buf := make([]stream.Triple, 0, *batch)
	var n, lastTick int64
	flush := func() {
		if len(buf) == 0 {
			return
		}
		eng.ObserveBatch(buf)
		n += int64(len(buf))
		buf = buf[:0]
		if *every > 0 && n-lastTick >= int64(*every) {
			lastTick = n
			status(n)
		}
	}
	if err := data.StreamObservationsCSV(in, func(source, object, value string) error {
		buf = append(buf, stream.Triple{Source: source, Object: object, Value: value})
		if len(buf) == cap(buf) {
			flush()
		}
		return nil
	}); err != nil {
		return err
	}
	flush()
	if n == 0 && eng.Stats().Observations == 0 {
		return fmt.Errorf("no observations in %s", *obsPath)
	}

	eng.Refine(*refine)
	st := eng.Stats()
	fmt.Fprintf(stdout, "# fused %d live objects from %d sources (%d observations, %d evicted) via %d-shard stream\n",
		st.Objects, st.Sources, st.Observations, st.EvictedObjects, st.Shards)

	if err := writeStreamValues(*valuesOut, stdout, eng); err != nil {
		return err
	}
	if err := writeStreamAccuracies(*accOut, stdout, eng); err != nil {
		return err
	}
	if store != nil {
		if err := store.Write(eng); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "# checkpoint written to %s\n", store.Path())
	}
	return nil
}

// writeEstimatesCSV emits the final estimates in the exchange format.
// The CLI's -values output and the server's GET /estimates share this
// one emitter, so a served engine and a batch run produce comparable
// bytes. Rows stream through Engine.EstimatesSeq — shard-major, names
// sorted within each shard, deterministic for a fixed shard count —
// so huge object sets never materialize in one slice or map.
func writeEstimatesCSV(w io.Writer, eng *stream.Engine) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"object", "value", "confidence"}); err != nil {
		return err
	}
	for est := range eng.EstimatesSeq() {
		if err := cw.Write([]string{est.Object, est.Value, fmt.Sprintf("%.4f", est.Confidence)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeSourceAccuraciesCSV emits source accuracies; shared by the
// CLI's -accuracies output and the server's GET /sources. Online
// engines report the full decomposition — the served accuracy plus
// the feature-model ("learned") and agreement-only ("empirical")
// estimates it blends — so an operator can see what the features are
// contributing.
func writeSourceAccuraciesCSV(w io.Writer, eng *stream.Engine) error {
	cw := csv.NewWriter(w)
	if !eng.OnlineLearning() {
		if err := cw.Write([]string{"source", "accuracy"}); err != nil {
			return err
		}
		for _, s := range eng.Sources() {
			if err := cw.Write([]string{s, fmt.Sprintf("%.4f", eng.SourceAccuracy(s))}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	if err := cw.Write([]string{"source", "accuracy", "learned", "empirical"}); err != nil {
		return err
	}
	for _, s := range eng.Sources() {
		acc, learned, empirical, ok := eng.SourceAccuracyDetail(s)
		if !ok {
			continue
		}
		rec := []string{s, fmt.Sprintf("%.4f", acc), fmt.Sprintf("%.4f", learned), fmt.Sprintf("%.4f", empirical)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeFeatureWeightsCSV emits the online learner's model for the
// server's GET /features: the intercept first, then every feature
// label sorted, each with its learned logit-space weight.
func writeFeatureWeightsCSV(w io.Writer, intercept float64, feats []online.WeightedFeature) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"feature", "weight"}); err != nil {
		return err
	}
	if err := cw.Write([]string{"(intercept)", fmt.Sprintf("%.6f", intercept)}); err != nil {
		return err
	}
	sorted := append([]online.WeightedFeature(nil), feats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	for _, f := range sorted {
		if err := cw.Write([]string{f.Label, fmt.Sprintf("%.6f", f.Weight)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeStreamValues(path string, stdout io.Writer, eng *stream.Engine) error {
	w, closeFn, err := openOut(path, stdout)
	if err != nil {
		return err
	}
	defer closeFn()
	return writeEstimatesCSV(w, eng)
}

func writeStreamAccuracies(path string, stdout io.Writer, eng *stream.Engine) error {
	w, closeFn, err := openOut(path, stdout)
	if err != nil {
		return err
	}
	defer closeFn()
	return writeSourceAccuraciesCSV(w, eng)
}
