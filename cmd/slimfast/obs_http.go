// HTTP instrumentation shared by the node server and the cluster
// router: the slimfast_http_* metric families, the X-Request-ID
// tracing middleware, and the per-route wrapper that counts, times and
// access-logs every request. All of it is allocation-frugal — the
// request-duration child is resolved once at mount, status labels are
// precomputed, and counter increments are single atomic adds — so the
// instrumented /observe path stays inside the benchdiff allocation
// gate.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"slimfast/internal/obs"
	"slimfast/internal/resilience"
)

// httpMetrics is the serving-surface instrumentation seam. The zero
// value is a no-op (every obs method is nil-safe), so handlers never
// guard their increments.
type httpMetrics struct {
	// requests counts completed requests by canonical route and status;
	// duration times them by route.
	requests *obs.CounterVec
	duration *obs.HistogramVec
	// inflight is the number of requests currently inside a handler.
	inflight *obs.Gauge
	// deprecated counts hits on the unversioned alias paths slated for
	// removal — the signal that it is safe to drop them.
	deprecated *obs.CounterVec
	// panics counts requests recovered into a 500 by the middleware.
	panics *obs.Counter
	// shed / timeouts / dedupReplays break the interesting non-2xx
	// flavors out of the status labels: admission-gate 429s, ingest-lock
	// deadline 503s, and idempotency-key replays acknowledged without
	// re-ingesting.
	shed         *obs.Counter
	timeouts     *obs.Counter
	dedupReplays *obs.Counter
}

// newHTTPMetrics registers the slimfast_http_* families on reg.
func newHTTPMetrics(reg *obs.Registry) httpMetrics {
	return httpMetrics{
		requests:     reg.CounterVec("slimfast_http_requests_total", "Completed HTTP requests by canonical route and status.", "route", "status"),
		duration:     reg.HistogramVec("slimfast_http_request_duration_seconds", "Request latency by canonical route.", nil, "route"),
		inflight:     reg.Gauge("slimfast_http_inflight_requests", "Requests currently being served."),
		deprecated:   reg.CounterVec("slimfast_deprecated_requests_total", "Hits on deprecated unversioned alias paths.", "path"),
		panics:       reg.Counter("slimfast_http_panics_total", "Handler panics recovered into 500 responses."),
		shed:         reg.Counter("slimfast_http_shed_total", "Requests shed with 429 by the admission gate."),
		timeouts:     reg.Counter("slimfast_http_timeouts_total", "Requests that gave up waiting for the ingest lock."),
		dedupReplays: reg.Counter("slimfast_http_dedup_replays_total", "Idempotent ingest replays acknowledged without re-ingesting."),
	}
}

// statusLabels maps every HTTP status to its preformatted label so the
// per-request counter increment never formats an integer.
var statusLabels = func() map[int]string {
	m := make(map[int]string, 500)
	for code := 100; code < 600; code++ {
		m[code] = strconv.Itoa(code)
	}
	return m
}()

// statusLabel returns the metric label for an HTTP status.
func statusLabel(code int) string {
	if s, ok := statusLabels[code]; ok {
		return s
	}
	return strconv.Itoa(code)
}

// statusWriter records the response status for metrics and access
// logs. Unwrap exposes the underlying writer so http.ResponseController
// (the body read-deadline in handleObserve) still reaches the real
// connection through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// ridSource mints request IDs: a random per-process prefix plus an
// atomic counter, so IDs are unique across restarts without per-request
// entropy reads.
type ridSource struct {
	prefix string
	n      atomic.Uint64
}

func newRIDSource() *ridSource {
	var b [6]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return &ridSource{prefix: hex.EncodeToString(b[:])}
}

func (g *ridSource) next() string {
	return g.prefix + "-" + strconv.FormatUint(g.n.Add(1), 10)
}

// instrumentor bundles what the middleware and route wrappers need:
// the metric families, the component logger, and the ID mint.
type instrumentor struct {
	met  httpMetrics
	log  *slog.Logger
	rids *ridSource
}

func newInstrumentor(reg *obs.Registry, log *slog.Logger) *instrumentor {
	return &instrumentor{met: newHTTPMetrics(reg), log: log, rids: newRIDSource()}
}

// middleware is the outermost layer on both serving surfaces: it
// adopts or mints the X-Request-ID, echoes it on the response, plants
// the request-scoped logger in the context, and recovers panics into
// logged 500s (the structured successor of the old "# PANIC" line).
func (ins *instrumentor) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(resilience.RequestIDHeader)
		if id == "" {
			id = ins.rids.next()
		}
		w.Header().Set(resilience.RequestIDHeader, id)
		log := ins.log.With(
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
		)
		r = r.WithContext(withLogger(resilience.WithRequestID(r.Context(), id), log))
		defer func() {
			if rec := recover(); rec != nil {
				ins.met.panics.Inc()
				log.Error("PANIC recovered",
					slog.Any("panic", rec),
					slog.String("stack", string(stackTrace())))
				writeJSONLog(w, log, http.StatusInternalServerError,
					map[string]any{"error": "internal error", "code": "internal"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// route wraps one handler with the per-route instrumentation: the
// in-flight gauge, the route/status request counter, the latency
// histogram (its child resolved once, here at mount), and a
// debug-level access record on the request-scoped logger.
func (ins *instrumentor) route(route string, h http.HandlerFunc) http.HandlerFunc {
	dur := ins.met.duration.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		ins.met.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			ins.met.inflight.Add(-1)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			ins.met.requests.With(route, statusLabel(status)).Inc()
			elapsed := time.Since(began)
			dur.Observe(elapsed.Seconds())
			log := requestLogger(r.Context(), ins.log)
			if log.Enabled(r.Context(), slog.LevelDebug) {
				log.LogAttrs(r.Context(), slog.LevelDebug, "request served",
					slog.String("route", route),
					slog.Int("status", status),
					slog.Duration("elapsed", elapsed))
			}
		}()
		h(sw, r)
	}
}

// deprecated wraps the unversioned alias mount of a route: every hit
// increments slimfast_deprecated_requests_total{path} and logs a
// structured warning naming the /v1 replacement, then serves normally.
func (ins *instrumentor) deprecated(path string, h http.HandlerFunc) http.HandlerFunc {
	hits := ins.met.deprecated.With(path)
	return func(w http.ResponseWriter, r *http.Request) {
		hits.Inc()
		requestLogger(r.Context(), ins.log).Warn("deprecated unversioned path",
			slog.String("deprecated_path", path),
			slog.String("use", "/v1"+path))
		h(w, r)
	}
}
