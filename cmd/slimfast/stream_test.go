package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// streamCSV renders a small claim stream: two reliable sources and one
// contrarian reporting on numbered objects.
func streamCSV(objects int) string {
	var sb strings.Builder
	sb.WriteString("source,object,value\n")
	for i := 0; i < objects; i++ {
		fmt.Fprintf(&sb, "good1,o%03d,t\n", i)
		fmt.Fprintf(&sb, "good2,o%03d,t\n", i)
		fmt.Fprintf(&sb, "bad,o%03d,w\n", i)
	}
	return sb.String()
}

func TestStreamSubcommandFromStdin(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"stream", "-shards", "2", "-every", "50", "-watch", "o000,missing"},
		&out)
	if err == nil {
		t.Fatal("stream with no stdin data should error") // run wires os.Stdin; empty here
	}

	out.Reset()
	err = runStream([]string{"-shards", "2", "-workers", "2", "-epoch", "64",
		"-every", "100", "-watch", "o000,missing"},
		strings.NewReader(streamCSV(80)), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"# obs=",
		"# watch o000 = t",
		"# watch missing = ?",
		"via 2-shard stream",
		"object,value,confidence",
		"source,accuracy",
		"o000,t,",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestStreamSubcommandFileAndOutputs(t *testing.T) {
	dir := t.TempDir()
	obs := filepath.Join(dir, "obs.csv")
	if err := os.WriteFile(obs, []byte(streamCSV(60)), 0o644); err != nil {
		t.Fatal(err)
	}
	valPath := filepath.Join(dir, "values.csv")
	accPath := filepath.Join(dir, "accs.csv")
	var out bytes.Buffer
	err := runStream([]string{"-obs", obs, "-shards", "2",
		"-values", valPath, "-accuracies", accPath}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := os.ReadFile(valPath)
	if err != nil || !strings.Contains(string(vals), "object,value,confidence") {
		t.Errorf("values file wrong: %v", err)
	}
	accs, err := os.ReadFile(accPath)
	if err != nil || !strings.Contains(string(accs), "good1,") {
		t.Errorf("accuracies file wrong: %v", err)
	}
	// The contrarian must score below the corroborated pair.
	var good, bad float64
	for _, line := range strings.Split(string(accs), "\n") {
		var acc float64
		if n, _ := fmt.Sscanf(line, "good1,%f", &acc); n == 1 {
			good = acc
		}
		if n, _ := fmt.Sscanf(line, "bad,%f", &acc); n == 1 {
			bad = acc
		}
	}
	if good <= bad {
		t.Errorf("good1 accuracy %.3f should exceed bad %.3f", good, bad)
	}
}

func TestStreamSubcommandBoundedMemory(t *testing.T) {
	var out bytes.Buffer
	err := runStream([]string{"-shards", "2", "-max-objects", "20", "-epoch", "32"},
		strings.NewReader(streamCSV(200)), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "evicted)") || strings.Contains(s, "(600 observations, 0 evicted)") {
		t.Errorf("bounded-memory run should report evictions:\n%s", s)
	}
}

func TestStreamSubcommandDeterministicAcrossWorkers(t *testing.T) {
	csvIn := streamCSV(150)
	render := func(workers int) string {
		var out bytes.Buffer
		err := runStream([]string{"-shards", "4", "-workers", fmt.Sprint(workers),
			"-epoch", "64", "-batch", "128"}, strings.NewReader(csvIn), &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render(1), render(4); a != b {
		t.Error("stream output must be byte-identical across -workers")
	}
}

func TestStreamSubcommandErrors(t *testing.T) {
	var out bytes.Buffer
	if err := runStream(nil, strings.NewReader(""), &out); err == nil {
		t.Error("empty stream should error")
	}
	if err := runStream([]string{"-obs", "/nonexistent/x.csv"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file should error")
	}
	if err := runStream([]string{"-decay", "7"}, strings.NewReader(streamCSV(2)), &out); err == nil {
		t.Error("invalid decay should error")
	}
	if err := runStream([]string{"-max-objects", "-2"}, strings.NewReader(streamCSV(2)), &out); err == nil {
		t.Error("negative max-objects should error")
	}
}

// featuresCSV renders the feature table for streamCSV's sources.
func featuresCSV() string {
	return "source,feature\ngood1,tier=reviewed\ngood2,tier=reviewed\nbad,tier=scraped\n"
}

func TestStreamSubcommandFeatures(t *testing.T) {
	dir := t.TempDir()
	featPath := filepath.Join(dir, "features.csv")
	if err := os.WriteFile(featPath, []byte(featuresCSV()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := runStream([]string{"-shards", "2", "-epoch", "64", "-features", featPath, "-window", "16"},
		strings.NewReader(streamCSV(120)), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# online learning over 3 featured sources") {
		t.Errorf("missing online banner:\n%s", s)
	}
	if !strings.Contains(s, "source,accuracy,learned,empirical") {
		t.Errorf("missing accuracy decomposition header:\n%s", s)
	}
	// The shared reviewed-tier feature should rate good1 above bad in
	// the learned column.
	var good, bad float64
	for _, line := range strings.Split(s, "\n") {
		var acc, learned, empirical float64
		if n, _ := fmt.Sscanf(line, "good1,%f,%f,%f", &acc, &learned, &empirical); n == 3 {
			good = learned
		}
		if n, _ := fmt.Sscanf(line, "bad,%f,%f,%f", &acc, &learned, &empirical); n == 3 {
			bad = learned
		}
	}
	if good <= bad {
		t.Errorf("learned accuracy good1 %.3f should exceed bad %.3f\n%s", good, bad, s)
	}

	// Byte-determinism across workers holds in feature mode too.
	render := func(workers int) string {
		var o bytes.Buffer
		err := runStream([]string{"-shards", "4", "-workers", fmt.Sprint(workers),
			"-epoch", "64", "-batch", "128", "-features", featPath},
			strings.NewReader(streamCSV(150)), &o)
		if err != nil {
			t.Fatal(err)
		}
		return o.String()
	}
	if a, b := render(1), render(4); a != b {
		t.Error("feature-mode stream output must be byte-identical across -workers")
	}

	// A missing features file is a clean error.
	if err := runStream([]string{"-features", filepath.Join(dir, "nope.csv")},
		strings.NewReader(streamCSV(2)), &out); err == nil {
		t.Error("missing features file should error")
	}
}

func TestStreamSubcommandFeatureFlagEdgeCases(t *testing.T) {
	dir := t.TempDir()
	featPath := filepath.Join(dir, "features.csv")
	if err := os.WriteFile(featPath, []byte(featuresCSV()), 0o644); err != nil {
		t.Fatal(err)
	}
	// Negative window is rejected like the other numeric flags.
	var out bytes.Buffer
	if err := runStream([]string{"-features", featPath, "-window", "-3"},
		strings.NewReader(streamCSV(2)), &out); err == nil {
		t.Error("negative -window should error")
	}

	// -features alongside a -restore that finds a featureless
	// checkpoint must warn, not silently serve agreement-only.
	ckpt := filepath.Join(dir, "plain.ckpt")
	out.Reset()
	if err := runStream([]string{"-shards", "2", "-checkpoint", ckpt},
		strings.NewReader(streamCSV(30)), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runStream([]string{"-restore", ckpt, "-features", featPath},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WARNING: -features ignored") {
		t.Errorf("missing warning when restore drops -features:\n%s", out.String())
	}

	// And a checkpoint that already carries features gets the calmer
	// notice.
	onlineCkpt := filepath.Join(dir, "online.ckpt")
	out.Reset()
	if err := runStream([]string{"-shards", "2", "-features", featPath, "-checkpoint", onlineCkpt},
		strings.NewReader(streamCSV(30)), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runStream([]string{"-restore", onlineCkpt, "-features", featPath},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# note: -features ignored, restored checkpoint already carries its feature table") {
		t.Errorf("missing notice on feature-carrying restore:\n%s", s)
	}
	if !strings.Contains(s, "source,accuracy,learned,empirical") {
		t.Errorf("restored online engine lost the decomposition:\n%s", s)
	}
}
