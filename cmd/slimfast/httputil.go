// HTTP plumbing shared by the node server (serve.go) and the cluster
// router (router.go): JSON responses, panic recovery, and the claim
// body parser both ingest surfaces accept. Response-write failures (a
// client that hung up mid-response) log through the request-scoped
// slog logger, so the record carries the request ID, method and path
// instead of an anonymous "# WARNING" line.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"

	"slimfast/internal/data"
	"slimfast/internal/resilience"
)

// writeJSONLog writes a JSON response; encode/write failures are
// logged on log (request-scoped when called through a server's
// writeJSON method), not dropped.
func writeJSONLog(w http.ResponseWriter, log *slog.Logger, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Warn("writing JSON response failed", slog.Any("error", err))
	}
}

// writeJSONTo is the io.Writer form of writeJSONLog for callers with
// no request in hand; it logs through a throwaway text logger on logw.
func writeJSONTo(w http.ResponseWriter, logw io.Writer, code int, v any) {
	writeJSONLog(w, newComponentLogger("text", logw, "http"), code, v)
}

// errorCode maps an HTTP status to the machine-readable code of the
// uniform error envelope. 503 defaults to "shed" (admission pressure);
// sites where a 503 really means a deadline (the ingest-lock wait)
// override it through httpErrorCodeLog.
func errorCode(status int) string {
	switch status {
	case http.StatusRequestTimeout:
		return "timeout"
	case http.StatusConflict:
		return "conflict"
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return "shed"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return "bad_request"
	}
}

// httpErrorLog writes the uniform JSON error envelope every endpoint
// uses: {"error": ..., "code": shed|timeout|bad_request|conflict|internal},
// with the code derived from the status.
func httpErrorLog(w http.ResponseWriter, log *slog.Logger, status int, msg string) {
	httpErrorCodeLog(w, log, status, errorCode(status), msg)
}

// httpErrorCodeLog writes the error envelope with an explicit code.
func httpErrorCodeLog(w http.ResponseWriter, log *slog.Logger, status int, code, msg string) {
	writeJSONLog(w, log, status, map[string]any{"error": msg, "code": code})
}

// httpErrorTo is the io.Writer form of httpErrorLog.
func httpErrorTo(w http.ResponseWriter, logw io.Writer, status int, msg string) {
	httpErrorLog(w, newComponentLogger("text", logw, "http"), status, msg)
}

// handleBoth mounts a "METHOD /path" pattern at both its unversioned
// path and under /v1, instrumented with the canonical /v1 route label
// on both mounts. The /v1 form is canonical; the bare path is a
// deprecated alias kept for one release (see README) — it counts into
// slimfast_deprecated_requests_total and logs a structured warning.
func handleBoth(mux *http.ServeMux, pattern string, h http.HandlerFunc, ins *instrumentor) {
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic("handleBoth: pattern must be \"METHOD /path\"")
	}
	routed := ins.route("/v1"+path, h)
	mux.HandleFunc(method+" /v1"+path, routed)
	mux.HandleFunc(pattern, ins.deprecated(path, routed))
}

// stackTrace is the panic-site stack for the middleware's PANIC log.
func stackTrace() []byte { return debug.Stack() }

// recoverPanicsTo turns a handler panic into a logged 500 so one
// poisoned request cannot take the connection (or a test binary) down
// with it. The serving surfaces run the instrumentor's middleware
// instead (same recovery, plus tracing and metrics); this standalone
// form remains for handlers built without an instrumentor.
func recoverPanicsTo(logw io.Writer, next http.Handler) http.Handler {
	log := newComponentLogger("text", logw, "http")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				log.Error("PANIC recovered",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Any("panic", rec),
					slog.String("stack", string(stackTrace())))
				httpErrorLog(w, log, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// negotiateFormat picks the response format for the relational read
// endpoints: an explicit format parameter wins, otherwise an Accept
// header naming application/json selects NDJSON, default CSV. An
// unknown format parameter is a 400 — it is part of the query surface.
func negotiateFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "":
		if strings.Contains(r.Header.Get("Accept"), "application/json") {
			return "json", nil
		}
		return "csv", nil
	case "csv", "json", "ndjson":
		return f, nil
	default:
		return "", fmt.Errorf("unknown format %q (want csv or json)", f)
	}
}

// resultContentType is the Content-Type a negotiated format serves as.
func resultContentType(format string) string {
	if format == "csv" {
		return "text/csv"
	}
	return "application/x-ndjson"
}

// seqKey extracts the client's idempotency key: the X-Batch-Seq
// header, or the ?seq query parameter for header-less clients.
func seqKey(r *http.Request) string {
	if k := r.Header.Get(resilience.SeqHeader); k != "" {
		return k
	}
	return r.URL.Query().Get("seq")
}

// observation is one NDJSON ingest record.
type observation struct {
	Source string `json:"source"`
	Object string `json:"object"`
	Value  string `json:"value"`
}

// parseClaimBody streams an ingest body through add: text/csv bodies
// use the source,object,value exchange format (header row optional),
// anything else is parsed as NDJSON. On error, claims before the bad
// row have already been delivered to add — the caller reports how many.
func parseClaimBody(body []byte, contentType string, add func(source, object, value string) error) error {
	if strings.Contains(contentType, "csv") {
		return data.StreamObservationsCSV(bytes.NewReader(body), add)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	row := 0
	for {
		var ob observation
		if derr := dec.Decode(&ob); derr == io.EOF {
			return nil
		} else if derr != nil {
			return fmt.Errorf("ndjson row %d: %w", row+1, derr)
		}
		row++
		if aerr := add(ob.Source, ob.Object, ob.Value); aerr != nil {
			return fmt.Errorf("ndjson row %d: %w", row, aerr)
		}
	}
}

// errEmptyClaimField is the shared validation failure for ingest rows.
var errEmptyClaimField = errors.New("source, object and value must all be non-empty")
