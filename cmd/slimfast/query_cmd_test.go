package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"slimfast/internal/stream"
)

// driftCheckpoints builds a three-generation checkpoint family over a
// drift-style stream: wave one establishes consensus (with three weak
// objects claimed by a single source), a pad wave advances the epoch
// clock, and wave two flips the weak objects with nine fresh sources.
// It returns the store path, the epoch cutoff separating the waves,
// and the names of the flipped objects.
func driftCheckpoints(t *testing.T, keep int) (string, int64, []string) {
	t.Helper()
	opts := stream.DefaultEngineOptions()
	opts.Shards = 2
	opts.EpochLength = 32
	eng, err := stream.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "drift.ckpt")
	store := stream.NewCheckpointStore(path, keep)

	var flipped []string
	var wave1 []stream.Triple
	for o := 0; o < 30; o++ {
		obj := fmt.Sprintf("o%03d", o)
		if o%10 == 0 {
			// Weak: one claimant, so nine dissenters can flip it later.
			wave1 = append(wave1, stream.Triple{Source: "good1", Object: obj, Value: "t"})
			flipped = append(flipped, obj)
			continue
		}
		wave1 = append(wave1,
			stream.Triple{Source: "good1", Object: obj, Value: "t"},
			stream.Triple{Source: "good2", Object: obj, Value: "t"},
			stream.Triple{Source: "bad", Object: obj, Value: "w"})
	}
	eng.ObserveBatch(wave1)
	if err := store.Write(eng); err != nil {
		t.Fatal(err)
	}

	// Pad: enough claims on one sacrificial object to cross at least
	// two epoch boundaries, so the cutoff strictly exceeds every
	// wave-one changed stamp.
	var pad []stream.Triple
	for i := 0; i < 2*opts.EpochLength; i++ {
		pad = append(pad, stream.Triple{Source: fmt.Sprintf("f%03d", i), Object: "pad", Value: "t"})
	}
	eng.ObserveBatch(pad)
	cutoff := eng.CurrentEpoch()
	if err := store.Write(eng); err != nil {
		t.Fatal(err)
	}

	var wave2 []stream.Triple
	for s := 0; s < 9; s++ {
		for _, obj := range flipped {
			wave2 = append(wave2, stream.Triple{Source: fmt.Sprintf("n%d", s), Object: obj, Value: "flip"})
		}
	}
	eng.ObserveBatch(wave2)
	if err := store.Write(eng); err != nil {
		t.Fatal(err)
	}
	return path, cutoff, flipped
}

// TestQuerySubcommandRoadmapQuestions answers the four ROADMAP example
// questions from the shell against checkpointed drift data.
func TestQuerySubcommandRoadmapQuestions(t *testing.T) {
	path, cutoff, flipped := driftCheckpoints(t, 3)

	runQ := func(args ...string) string {
		t.Helper()
		var out bytes.Buffer
		if err := runQuery(args, &out); err != nil {
			t.Fatalf("query %v: %v", args, err)
		}
		return out.String()
	}

	// 1. Top-k most contested objects: the two-against-one consensus
	// objects (margin 0.4) outrank the decisively flipped nine-to-one
	// ones; ties break on the object name.
	top := runQ("-from", path, "order=-contested,object&limit=5")
	if want := "object,value,confidence\no001,t,0.7000\no002,t,0.7000\no003,t,0.7000\no004,t,0.7000\no005,t,0.7000\n"; top != want {
		t.Errorf("top-k contested:\ngot:\n%s\nwant:\n%s", top, want)
	}

	// 2. Which estimates flipped since epoch E?
	got := runQ("-from", path, fmt.Sprintf("where=changed>=%d&cols=object,value&order=object", cutoff))
	want := "object,value\n"
	for _, obj := range flipped {
		want += obj + ",flip\n"
	}
	if got != want {
		t.Errorf("flipped-since query:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// 3. Objects where two sources actively disagree.
	got = runQ("-from", path, "disagree=good1,bad&cols=object&order=object&limit=3")
	if got != "object\no001\no002\no003\n" {
		t.Errorf("disagree query:\n%s", got)
	}

	// 4. Accuracy trajectory of one source across checkpoint
	// generations, oldest first.
	traj := runQ("-from", path, "-table", "sources", "-generations", "3", "where=source=bad&cols=source,accuracy")
	lines := strings.Split(strings.TrimSpace(traj), "\n")
	if lines[0] != "generation,epoch,source,accuracy" {
		t.Fatalf("trajectory header:\n%s", traj)
	}
	if len(lines) != 4 {
		t.Fatalf("trajectory rows = %d, want 3:\n%s", len(lines)-1, traj)
	}
	var lastEpoch int64 = -1
	for i, line := range lines[1:] {
		var gen int
		var epoch int64
		var acc float64
		if n, err := fmt.Sscanf(line, "%d,%d,bad,%f", &gen, &epoch, &acc); n != 3 || err != nil {
			t.Fatalf("trajectory row %q: %v", line, err)
		}
		if wantGen := 2 - i; gen != wantGen {
			t.Errorf("trajectory row %d generation = %d, want %d (oldest first)", i, gen, wantGen)
		}
		if epoch < lastEpoch {
			t.Errorf("trajectory epochs regress: %d after %d", epoch, lastEpoch)
		}
		lastEpoch = epoch
	}
}

// TestQuerySubcommandAgainstServer: the same query against -from and
// against a live server restored from that checkpoint returns
// identical bytes, and server-side errors surface the envelope code.
func TestQuerySubcommandAgainstServer(t *testing.T) {
	path, _, _ := driftCheckpoints(t, 1)
	restored, err := stream.RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(testServer(restored, "", 32).handler())
	defer ts.Close()

	const raw = "order=-contested,object&limit=5&cols=object,value,confidence"
	for _, format := range []string{"csv", "json"} {
		var fromOut, toOut bytes.Buffer
		if err := runQuery([]string{"-from", path, "-format", format, raw}, &fromOut); err != nil {
			t.Fatal(err)
		}
		if err := runQuery([]string{"-to", ts.URL, "-format", format, raw}, &toOut); err != nil {
			t.Fatal(err)
		}
		if fromOut.String() != toOut.String() {
			t.Errorf("format %s: -from and -to diverge\nfrom:\n%s\nto:\n%s", format, fromOut.String(), toOut.String())
		}
	}

	var out bytes.Buffer
	err = runQuery([]string{"-to", ts.URL, "where=bogus>1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "bad_request") {
		t.Errorf("server-side bad query error = %v, want envelope code", err)
	}
}

// TestQuerySubcommandFlagValidation pins the CLI contract.
func TestQuerySubcommandFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},                                       // neither -to nor -from
		{"-to", "http://x", "-from", "a.ckpt"},   // both
		{"-from", "a.ckpt", "-table", "bogus"},   // unknown table
		{"-from", "a.ckpt", "-format", "xml"},    // unknown format
		{"-from", "a.ckpt", "-generations", "0"}, // non-positive generations
		{"-to", "http://x", "-generations", "2"}, // generations without -from
		{"-from", "a.ckpt", "where=%zz"},         // unparseable query string
	} {
		if err := runQuery(args, &out); err == nil {
			t.Errorf("runQuery(%v) accepted", args)
		}
	}
	if err := runQuery([]string{"-from", filepath.Join(t.TempDir(), "missing.ckpt"), "limit=1"}, &out); err == nil {
		t.Error("missing checkpoint accepted")
	}
}
