// Benchmarks regenerating every table and figure of the SLiMFast paper
// (one benchmark per artifact; run with `go test -bench=. -benchmem`),
// plus ablation benches for the design choices called out in DESIGN.md
// §5 and micro-benchmarks of the core operations.
//
// Each experiment bench runs the same code path as `cmd/experiments
// -exp <id>` in quick mode; b.N repetitions measure end-to-end cost,
// and the rendered output goes to io.Discard. For the full-scale
// numbers recorded in EXPERIMENTS.md, run cmd/experiments without
// -quick.
package slimfast

import (
	"fmt"
	"io"
	"testing"

	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/eval"
	"slimfast/internal/lasso"
	"slimfast/internal/optim"
	"slimfast/internal/randx"
	"slimfast/internal/stream"
	"slimfast/internal/synth"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := eval.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := eval.QuickConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFigure4a(b *testing.B) { benchExperiment(b, "fig4a") }
func BenchmarkFigure4b(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFigure4c(b *testing.B) { benchExperiment(b, "fig4c") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)   { benchExperiment(b, "table6") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkTheory(b *testing.B)   { benchExperiment(b, "theory") }

// benchInstance builds a mid-size instance shared by the ablation and
// micro benches.
func benchInstance(b *testing.B) *synth.Instance {
	b.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "bench", Sources: 80, Objects: 800, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.15,
		MeanAccuracy: 0.68, AccuracySD: 0.12, MinAccuracy: 0.45, MaxAccuracy: 0.95,
		Features: []synth.FeatureGroup{
			{Name: "a", Cardinality: 10, Informative: true, WeightScale: 1.5},
			{Name: "b", Cardinality: 10, Informative: false},
		},
		EnsureTruthObserved: true, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationInference compares exact closed-form posteriors
// against Gibbs sampling over the compiled factor graph.
func BenchmarkAblationInference(b *testing.B) {
	inst := benchInstance(b)
	train, _ := data.Split(inst.Gold, 0.2, randx.New(1))
	fit := func(opts core.Options) *core.Model {
		m, err := core.Compile(inst.Dataset, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.FitERM(train); err != nil {
			b.Fatal(err)
		}
		return m
	}
	b.Run("exact", func(b *testing.B) {
		m := fit(core.DefaultOptions())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Infer(train); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gibbs", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.Inference = core.Gibbs
		m := fit(opts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Infer(train); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEMUnits compares the printed Algorithm 1 against the
// Example 8 variant that multiplies per-object gain by m.
func BenchmarkAblationEMUnits(b *testing.B) {
	inst := benchInstance(b)
	for _, mult := range []bool{false, true} {
		name := "algorithm1"
		if mult {
			name = "example8-m"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EMUnits(inst.Dataset, 0.7, mult)
			}
		})
	}
}

// BenchmarkAblationAgreement compares the paper's closed-form average-
// accuracy estimator with the overlap-weighted variant.
func BenchmarkAblationAgreement(b *testing.B) {
	inst := benchInstance(b)
	for _, weighted := range []bool{false, true} {
		name := "paper-closed-form"
		if weighted {
			name = "overlap-weighted"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EstimateAverageAccuracy(inst.Dataset, weighted)
			}
		})
	}
}

// BenchmarkAblationRegularization compares L2 against L1 for the
// feature-heavy ERM fit.
func BenchmarkAblationRegularization(b *testing.B) {
	inst := benchInstance(b)
	train, _ := data.Split(inst.Gold, 0.2, randx.New(2))
	run := func(b *testing.B, l1, l2 float64) {
		for i := 0; i < b.N; i++ {
			opts := core.DefaultOptions()
			opts.Optim.L1 = l1
			opts.Optim.L2 = l2
			m, err := core.Compile(inst.Dataset, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.FitERM(train); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("l2", func(b *testing.B) { run(b, 0, 1e-3) })
	b.Run("l1", func(b *testing.B) { run(b, 1e-3, 0) })
}

// BenchmarkAblationOptimizer compares SGD against AdaGrad for ERM.
func BenchmarkAblationOptimizer(b *testing.B) {
	inst := benchInstance(b)
	train, _ := data.Split(inst.Gold, 0.2, randx.New(3))
	run := func(b *testing.B, method optim.Method) {
		for i := 0; i < b.N; i++ {
			opts := core.DefaultOptions()
			opts.Optim.Method = method
			m, err := core.Compile(inst.Dataset, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.FitERM(train); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sgd", func(b *testing.B) { run(b, optim.SGD) })
	b.Run("adagrad", func(b *testing.B) { run(b, optim.AdaGrad) })
}

// --- Micro-benchmarks of the core operations ---

func BenchmarkCoreERMFit(b *testing.B) {
	inst := benchInstance(b)
	train, _ := data.Split(inst.Gold, 0.3, randx.New(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.Compile(inst.Dataset, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.FitERM(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreEMFit measures EM fitting per worker count (the E-step
// fans out; results are bit-identical across the variants) plus the
// opt-in minibatch M-step that parallelizes the gradient work too.
func BenchmarkCoreEMFit(b *testing.B) {
	inst := benchInstance(b)
	run := func(b *testing.B, opts core.Options) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := core.Compile(inst.Dataset, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.FitEM(nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Workers = workers
			run(b, opts)
		})
	}
	b.Run("minibatch32-workers=4", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.Workers = 4
		opts.Optim.Batch = 32
		run(b, opts)
	})
}

// BenchmarkCoreExactInference measures closed-form posterior inference
// per worker count; this path is embarrassingly parallel, so the
// speedup should track the core count.
func BenchmarkCoreExactInference(b *testing.B) {
	inst := benchInstance(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Workers = workers
			m, err := core.Compile(inst.Dataset, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Infer(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamIngest measures the per-observation cost of streaming
// ingest: the seed sequential Fuser (which rebuilds the touched
// object's posterior maps on every Observe) against the sharded
// incremental engine (dense per-shard state, O(domain) delta updates,
// frozen-accuracy epochs). The stream cycles through a fixed claim set
// with values alternating between passes, so steady-state re-claims
// exercise the delta path rather than pure no-ops. The engine's
// allocs/op is the headline number: the seed's per-observe full
// recompute allocates every call, the engine amortizes to ~0.
func BenchmarkStreamIngest(b *testing.B) {
	inst, err := synth.Generate(synth.Config{
		Name: "ingest", Sources: 80, Objects: 2000, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.1,
		MeanAccuracy: 0.7, AccuracySD: 0.12, MinAccuracy: 0.45, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: 31,
	})
	if err != nil {
		b.Fatal(err)
	}
	ds := inst.Dataset
	type tri struct {
		s, o string
		vals [2]string // alternate value per pass to force real deltas
	}
	triples := make([]tri, 0, ds.NumObservations())
	for _, ob := range ds.Observations {
		triples = append(triples, tri{
			s: ds.SourceNames[ob.Source],
			o: ds.ObjectNames[ob.Object],
			vals: [2]string{
				ds.ValueNames[ob.Value],
				ds.ValueNames[(int(ob.Value)+1)%ds.NumValues()],
			},
		})
	}
	rng := randx.New(32)
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })

	b.Run("seed-fuser", func(b *testing.B) {
		f, err := stream.New(stream.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := &triples[i%len(triples)]
			f.Observe(t.s, t.o, t.vals[(i/len(triples))%2])
		}
	})
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("engine-shards=%d", shards), func(b *testing.B) {
			opts := stream.DefaultEngineOptions()
			opts.Shards = shards
			opts.Workers = 1
			e, err := stream.NewEngine(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := &triples[i%len(triples)]
				e.Observe(t.s, t.o, t.vals[(i/len(triples))%2])
			}
		})
	}
}

// BenchmarkOnlineIngest measures the streaming engine with the online
// discriminative learner active: same claim cycling as
// BenchmarkStreamIngest, but every source carries a cohort feature and
// each epoch refresh retrains the minibatch logistic regression and
// rebuilds the σ-table from the feature-smoothed window. The learning
// cost amortizes over EpochLength observations, so the Observe hot
// path must stay zero-alloc (the allocs/op gate benchdiff enforces).
func BenchmarkOnlineIngest(b *testing.B) {
	inst, err := synth.Generate(synth.Config{
		Name: "online-ingest", Sources: 80, Objects: 2000, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.1,
		MeanAccuracy: 0.7, AccuracySD: 0.12, MinAccuracy: 0.45, MaxAccuracy: 0.95,
		Features: []synth.FeatureGroup{
			{Name: "grp", Cardinality: 8, Informative: true, WeightScale: 1.5},
		},
		EnsureTruthObserved: true, Seed: 31,
	})
	if err != nil {
		b.Fatal(err)
	}
	ds := inst.Dataset
	features := make(map[string][]string, ds.NumSources())
	for s := 0; s < ds.NumSources(); s++ {
		var labels []string
		for _, f := range ds.SourceFeatures[s] {
			labels = append(labels, ds.FeatureNames[f])
		}
		features[ds.SourceNames[s]] = labels
	}
	type tri struct {
		s, o string
		vals [2]string
	}
	triples := make([]tri, 0, ds.NumObservations())
	for _, ob := range ds.Observations {
		triples = append(triples, tri{
			s: ds.SourceNames[ob.Source],
			o: ds.ObjectNames[ob.Object],
			vals: [2]string{
				ds.ValueNames[ob.Value],
				ds.ValueNames[(int(ob.Value)+1)%ds.NumValues()],
			},
		})
	}
	rng := randx.New(32)
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })

	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			opts := stream.DefaultEngineOptions()
			opts.Shards = shards
			opts.Workers = 1
			opts.Features = features
			e, err := stream.NewEngine(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := &triples[i%len(triples)]
				e.Observe(t.s, t.o, t.vals[(i/len(triples))%2])
			}
		})
	}
}

func BenchmarkOptimizerDecide(b *testing.B) {
	inst := benchInstance(b)
	train, _ := data.Split(inst.Gold, 0.1, randx.New(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Decide(inst.Dataset, train, core.DefaultOptimizerOptions())
	}
}

func BenchmarkLassoPath(b *testing.B) {
	inst := benchInstance(b)
	opts := lasso.DefaultOptions()
	opts.Steps = 8
	opts.MaxIter = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lasso.Compute(inst.Dataset, inst.Gold, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.Crowd(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacadeSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewProblem("bench")
		for o := 0; o < 50; o++ {
			obj := string(rune('a'+o%26)) + string(rune('0'+o/26))
			p.AddObservation("s1", obj, "x")
			p.AddObservation("s2", obj, "x")
			p.AddObservation("s3", obj, "y")
			p.SetTruth(obj, "x")
		}
		if _, err := p.Solve(WithAlgorithm(ERM), WithSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationsQuality runs the registered quality-ablation
// experiment (DESIGN.md §5) end to end.
func BenchmarkAblationsQuality(b *testing.B) { benchExperiment(b, "ablations") }
