// Package online implements the streaming half of SLiMFast's headline
// contribution: *discriminative* source reliability, learned from
// domain features (Section 3 of the paper), maintained incrementally
// on a stream instead of refit in batch.
//
// The Learner is a minibatch-SGD logistic regression over per-source
// Boolean feature labels — the same feature layout core.Model's
// PredictAccuracy uses (σ_s = intercept + Σ_k w_k f_sk, A_s =
// logistic(σ_s)) — trained against the posterior-agreement statistics
// the streaming engine settles at every epoch refresh. The training
// objective is the weighted logistic loss of core's Calibrate pass:
//
//	Σ_s [ c_s·(−log A_s(w)) + (t_s−c_s)·(−log(1−A_s(w))) ]
//
// where (c_s, t_s) are a source's agreement and claim mass over a
// sliding window of recent epochs, so the feature weights track
// *current* source behavior and a drifting cohort drags its shared
// feature weight with it.
//
// The served accuracy is the empirical-Bayes blend Calibrate's
// closed-form step uses: the windowed agreement ratio shrunk toward
// the feature-model prediction by PriorStrength pseudo-counts. Heavily
// observed sources are governed by their own recent agreement;
// lightly observed ones inherit the prediction of sources that share
// their features.
//
// Everything is deterministic: minibatch order comes from a seed
// mixed with the epoch counter, the SGD step counter drives the
// learning-rate decay, and both counters serialize through the
// checkpoint codec, so restore → continue is bit-identical to never
// stopping.
package online

import (
	"errors"
	"math"
	"sort"

	"slimfast/internal/mathx"
	"slimfast/internal/randx"
)

// Config tunes the online reliability learner. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	// InitAccuracy anchors the intercept: an untrained learner (and any
	// source with no active features beyond the intercept) predicts
	// this accuracy. Must lie in (0, 1).
	InitAccuracy float64

	// PriorStrength is the pseudo-count mass behind the feature-model
	// prediction when blending with windowed empirical agreement — the
	// same role core.Calibrate's priorStrength plays.
	PriorStrength float64

	// WindowEpochs is the sliding-window length in epoch refreshes: a
	// source's empirical statistics (and the regression targets) cover
	// only its last WindowEpochs epochs of settled agreement, so
	// accuracies adapt when a source drifts. 0 keeps cumulative
	// statistics (never forget).
	WindowEpochs int

	// Steps is the number of minibatch SGD steps per epoch refresh,
	// bounding the learning work added to a refresh regardless of how
	// many sources are live.
	Steps int

	// Batch is the number of sources per minibatch.
	Batch int

	// LearningRate and Decay follow optim's schedule: the step size at
	// (persisted) step t is LearningRate / (1 + Decay·t).
	LearningRate float64
	Decay        float64

	// L2 is the ridge penalty on the feature weights (the intercept is
	// unpenalized, as in standard logistic regression).
	L2 float64

	// Intercept learns a global intercept weight. Without it the
	// feature weights must also absorb the base accuracy level.
	Intercept bool

	// Seed drives the deterministic minibatch shuffle (mixed with the
	// epoch counter, so every refresh visits sources in a fresh but
	// reproducible order).
	Seed int64
}

// DefaultConfig returns settings that track the batch discriminative
// fit on the test workloads without per-stream tuning.
func DefaultConfig() Config {
	return Config{
		InitAccuracy:  0.7,
		PriorStrength: 4,
		WindowEpochs:  32,
		Steps:         24,
		Batch:         16,
		LearningRate:  0.3,
		Decay:         0.01,
		L2:            1e-3,
		Intercept:     true,
		Seed:          1,
	}
}

// Validate reports the first invalid option.
func (c Config) Validate() error {
	if c.InitAccuracy <= 0 || c.InitAccuracy >= 1 {
		return errors.New("online: InitAccuracy must be in (0,1)")
	}
	if c.PriorStrength < 0 {
		return errors.New("online: PriorStrength must be non-negative")
	}
	if c.WindowEpochs < 0 {
		return errors.New("online: WindowEpochs must be non-negative")
	}
	if c.Steps < 0 {
		return errors.New("online: Steps must be non-negative")
	}
	if c.Batch < 1 {
		return errors.New("online: Batch must be positive")
	}
	if c.LearningRate <= 0 {
		return errors.New("online: LearningRate must be positive")
	}
	if c.Decay < 0 || c.L2 < 0 {
		return errors.New("online: Decay and L2 must be non-negative")
	}
	return nil
}

// Accuracy clamp bounds, matching the streaming engine's
// smoothedAccuracy so logits stay bounded either way.
const (
	accLo = 0.02
	accHi = 0.98
)

// Learner is the online discriminative-reliability model. It is not
// safe for concurrent use; the streaming engine serializes all
// mutation under its refresh lock and guards reads separately.
type Learner struct {
	cfg Config

	// Feature vocabulary, interned in first-seen order, and the learned
	// weights: w[0] is the intercept slot (present even when disabled,
	// to keep the layout stable), features at w[1+k].
	featIdx   map[string]int
	featNames []string
	w         []float64

	// srcFeats[s] lists source s's sorted feature ids; sources register
	// once, in intern order, via SetFeatures.
	srcFeats [][]int32

	// Sliding-window ring of per-epoch settled deltas: slot i holds the
	// per-source (agree, total) the engine drained at one refresh.
	// winAgree/winTotal are the current window sums.
	ringAgree [][]float64
	ringTotal [][]float64
	ringPos   int
	winAgree  []float64
	winTotal  []float64

	// Persisted counters: epochs drives the per-refresh shuffle seed,
	// step the learning-rate decay.
	epochs int64
	step   int64

	// Reused scratch (active-source order and the dense gradient).
	active []int
	grad   []float64
}

// New returns an empty learner.
func New(cfg Config) (*Learner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Learner{
		cfg:     cfg,
		featIdx: map[string]int{},
		w:       make([]float64, 1),
	}
	if cfg.Intercept {
		l.w[0] = mathx.Logit(cfg.InitAccuracy)
	}
	if cfg.WindowEpochs > 0 {
		l.ringAgree = make([][]float64, cfg.WindowEpochs)
		l.ringTotal = make([][]float64, cfg.WindowEpochs)
	}
	return l, nil
}

// Config returns the learner's configuration.
func (l *Learner) Config() Config { return l.cfg }

// NumSources returns how many sources have registered features.
func (l *Learner) NumSources() int { return len(l.srcFeats) }

// NumFeatures returns the size of the interned feature vocabulary.
func (l *Learner) NumFeatures() int { return len(l.featNames) }

// SetFeatures registers source sid with the given feature labels,
// interning new labels into the vocabulary. Sources must register in
// ascending id order (the engine registers at intern time), each
// exactly once; labels are deduplicated and sorted by feature id so
// the gradient accumulation order is reproducible.
func (l *Learner) SetFeatures(sid int, labels []string) {
	if sid != len(l.srcFeats) {
		panic("online: sources must register in ascending id order")
	}
	var feats []int32
	for _, lbl := range labels {
		k, ok := l.featIdx[lbl]
		if !ok {
			k = len(l.featNames)
			l.featIdx[lbl] = k
			l.featNames = append(l.featNames, lbl)
			l.w = append(l.w, 0)
		}
		dup := false
		for _, f := range feats {
			if f == int32(k) {
				dup = true
				break
			}
		}
		if !dup {
			feats = append(feats, int32(k))
		}
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i] < feats[j] })
	l.srcFeats = append(l.srcFeats, feats)
	l.winAgree = append(l.winAgree, 0)
	l.winTotal = append(l.winTotal, 0)
}

// WeightedFeature is one (label, weight) pair from the learned model.
type WeightedFeature struct {
	Label  string
	Weight float64
}

// FeatureWeights enumerates every interned feature label with its
// learned weight, in intern (first-seen) order, plus the intercept
// (0 when the intercept is disabled). The slice is freshly allocated.
func (l *Learner) FeatureWeights() (intercept float64, feats []WeightedFeature) {
	if l.cfg.Intercept {
		intercept = l.w[0]
	}
	feats = make([]WeightedFeature, len(l.featNames))
	for k, name := range l.featNames {
		feats[k] = WeightedFeature{Label: name, Weight: l.w[1+k]}
	}
	return intercept, feats
}

// WeightNorm returns the L2 norm of the learned weight vector
// (intercept slot included): an allocation-free drift signal for
// instrumentation.
func (l *Learner) WeightNorm() float64 {
	var s float64
	for _, w := range l.w {
		s += w * w
	}
	return math.Sqrt(s)
}

// FeatureWeight returns the learned weight of a feature label (0 for
// unknown labels).
func (l *Learner) FeatureWeight(label string) float64 {
	if k, ok := l.featIdx[label]; ok {
		return l.w[1+k]
	}
	return 0
}

// sigmaOf computes the feature-model logit of source sid at the
// current weights.
func (l *Learner) sigmaOf(sid int) float64 {
	var z float64
	if l.cfg.Intercept {
		z = l.w[0]
	}
	for _, k := range l.srcFeats[sid] {
		z += l.w[1+k]
	}
	return z
}

// Predict returns the pure feature-model accuracy estimate of source
// sid — what the regression alone says, before any empirical evidence
// is blended in.
func (l *Learner) Predict(sid int) float64 {
	return mathx.Logistic(l.sigmaOf(sid))
}

// PredictLabels estimates the accuracy of a source never seen on the
// stream from feature labels alone (the PredictAccuracy analog;
// unknown labels are ignored).
func (l *Learner) PredictLabels(labels []string) float64 {
	var z float64
	if l.cfg.Intercept {
		z = l.w[0]
	}
	for _, lbl := range labels {
		if k, ok := l.featIdx[lbl]; ok {
			z += l.w[1+k]
		}
	}
	return mathx.Logistic(z)
}

// windowStats returns source sid's windowed (agree, total) with the
// agreement clamped into [0, total]: settled deltas can briefly go
// negative when old posteriors drift down inside the window.
func (l *Learner) windowStats(sid int) (agree, total float64) {
	total = l.winTotal[sid]
	if total < 0 {
		total = 0
	}
	agree = mathx.Clamp(l.winAgree[sid], 0, total)
	return agree, total
}

// Blend is the empirical-Bayes accuracy estimate given agreement mass
// c over claim mass t: the agreement ratio shrunk toward the
// feature-model prediction by PriorStrength pseudo-counts, clamped
// like the engine's smoothedAccuracy.
func (l *Learner) Blend(sid int, c, t float64) float64 {
	if t < 0 {
		t = 0
	}
	c = mathx.Clamp(c, 0, t)
	prior := l.Predict(sid)
	return mathx.Clamp((c+l.cfg.PriorStrength*prior)/(t+l.cfg.PriorStrength), accLo, accHi)
}

// Accuracy returns the served accuracy of source sid: the windowed
// agreement ratio blended with the feature-model prior.
func (l *Learner) Accuracy(sid int) float64 {
	c, t := l.windowStats(sid)
	return l.Blend(sid, c, t)
}

// ObserveEpoch ingests one epoch's settled per-source deltas (indexed
// by source id; shorter than NumSources is fine — missing tails are
// zero), rotates the sliding window, and runs the configured number of
// minibatch SGD steps against the updated window. Call once per engine
// epoch refresh, after every source in the vectors has registered.
func (l *Learner) ObserveEpoch(agree, total []float64) {
	if len(agree) > len(l.srcFeats) || len(total) != len(agree) {
		panic("online: ObserveEpoch vectors exceed registered sources")
	}
	l.pushWindow(agree, total)
	l.train(l.windowStats)
	l.epochs++
}

// FitMass runs one round of minibatch SGD against explicitly supplied
// cumulative statistics instead of the sliding window — the streaming
// engine's exact re-sweep (Refine) uses it to re-anchor the feature
// weights on full posterior-agreement mass, the way core.Calibrate's
// feature-pooling pass does. The epoch and step counters advance as in
// ObserveEpoch, so the call sequence stays deterministic and
// checkpoint-restorable.
func (l *Learner) FitMass(agree, total []float64) {
	if len(agree) > len(l.srcFeats) || len(total) != len(agree) {
		panic("online: FitMass vectors exceed registered sources")
	}
	l.train(func(sid int) (c, t float64) {
		if sid >= len(agree) {
			return 0, 0
		}
		t = total[sid]
		if t < 0 {
			t = 0
		}
		return mathx.Clamp(agree[sid], 0, t), t
	})
	l.epochs++
}

// pushWindow folds one epoch's deltas into the window sums, evicting
// the slot that falls off the ring (cumulative mode just accumulates).
func (l *Learner) pushWindow(agree, total []float64) {
	if l.cfg.WindowEpochs == 0 {
		for s := range agree {
			l.winAgree[s] += agree[s]
			l.winTotal[s] += total[s]
		}
		return
	}
	oldA := l.ringAgree[l.ringPos]
	oldT := l.ringTotal[l.ringPos]
	for s := range oldA {
		l.winAgree[s] -= oldA[s]
		l.winTotal[s] -= oldT[s]
	}
	// Store a copy sized to the sources seen this epoch; the slot is
	// replayed verbatim when it falls off the ring.
	newA := append(oldA[:0], agree...)
	newT := append(oldT[:0], total...)
	l.ringAgree[l.ringPos] = newA
	l.ringTotal[l.ringPos] = newT
	for s := range agree {
		l.winAgree[s] += agree[s]
		l.winTotal[s] += total[s]
	}
	l.ringPos = (l.ringPos + 1) % l.cfg.WindowEpochs
}

// train runs one round of minibatch SGD steps: sources with claim
// mass under stats, shuffled by a seed derived from the epoch
// counter, consumed in minibatches at frozen weights with one mean-
// gradient step per batch. Gradients are normalized by the mean claim
// mass of the active sources (as in core.Calibrate) so step sizes stay
// O(1) regardless of traffic volume.
func (l *Learner) train(stats func(sid int) (c, t float64)) {
	if l.cfg.Steps == 0 {
		return
	}
	l.active = l.active[:0]
	var massSum float64
	for s := range l.srcFeats {
		if _, t := stats(s); t > 0 {
			l.active = append(l.active, s)
			massSum += t
		}
	}
	n := len(l.active)
	if n == 0 {
		return
	}
	massMean := massSum / float64(n)
	rng := randx.New(randx.Mix(l.cfg.Seed, l.epochs))
	rng.Shuffle(n, func(i, j int) { l.active[i], l.active[j] = l.active[j], l.active[i] })

	if cap(l.grad) < len(l.w) {
		l.grad = make([]float64, len(l.w))
	}
	g := l.grad[:len(l.w)]
	pos := 0
	for step := 0; step < l.cfg.Steps; step++ {
		k := l.cfg.Batch
		if k > n {
			k = n
		}
		for j := range g {
			g[j] = 0
		}
		for b := 0; b < k; b++ {
			s := l.active[pos]
			pos++
			if pos == n {
				pos = 0
			}
			c, t := stats(s)
			a := mathx.Logistic(l.sigmaOf(s))
			// d/dσ of the weighted logistic loss, volume-normalized.
			r := (t*a - c) / massMean
			if l.cfg.Intercept {
				g[0] += r
			}
			for _, f := range l.srcFeats[s] {
				g[1+f] += r
			}
		}
		lr := l.cfg.LearningRate / (1 + l.cfg.Decay*float64(l.step))
		l.step++
		inv := 1 / float64(k)
		if l.cfg.Intercept {
			l.w[0] -= lr * g[0] * inv // intercept: no L2
		}
		for j := 1; j < len(l.w); j++ {
			l.w[j] -= lr * (g[j]*inv + l.cfg.L2*l.w[j])
		}
	}
}

// Clone deep-copies the learner (used by the engine's copy-on-read
// checkpoint path: snapshot under the refresh lock, encode without).
func (l *Learner) Clone() *Learner {
	c := &Learner{
		cfg:       l.cfg,
		featIdx:   make(map[string]int, len(l.featIdx)),
		featNames: append([]string(nil), l.featNames...),
		w:         append([]float64(nil), l.w...),
		srcFeats:  make([][]int32, len(l.srcFeats)),
		ringPos:   l.ringPos,
		winAgree:  append([]float64(nil), l.winAgree...),
		winTotal:  append([]float64(nil), l.winTotal...),
		epochs:    l.epochs,
		step:      l.step,
	}
	for k, v := range l.featIdx {
		c.featIdx[k] = v
	}
	for s := range l.srcFeats {
		c.srcFeats[s] = append([]int32(nil), l.srcFeats[s]...)
	}
	if l.cfg.WindowEpochs > 0 {
		c.ringAgree = make([][]float64, len(l.ringAgree))
		c.ringTotal = make([][]float64, len(l.ringTotal))
		for i := range l.ringAgree {
			c.ringAgree[i] = append([]float64(nil), l.ringAgree[i]...)
			c.ringTotal[i] = append([]float64(nil), l.ringTotal[i]...)
		}
	}
	return c
}
