// Checkpoint serialization for the learner: the state section of the
// engine's format v2. The configuration travels in the engine's
// options block (it is needed to reconstruct the learner before state
// can be decoded); this codec carries everything else — weights,
// vocabulary, per-source features, the window ring, and the RNG/step
// counters — so a restored learner continues bit-identically.
package online

import (
	"errors"
	"fmt"

	"slimfast/internal/wire"
)

// EncodeConfig writes the learner configuration through the wire
// codec; the field order is the format contract, mirrored by
// DecodeConfig.
func EncodeConfig(w *wire.Writer, c Config) {
	w.Float64(c.InitAccuracy)
	w.Float64(c.PriorStrength)
	w.Int(c.WindowEpochs)
	w.Int(c.Steps)
	w.Int(c.Batch)
	w.Float64(c.LearningRate)
	w.Float64(c.Decay)
	w.Float64(c.L2)
	w.Bool(c.Intercept)
	w.Int64(c.Seed)
}

// DecodeConfig reads a configuration written by EncodeConfig.
func DecodeConfig(r *wire.Reader) Config {
	var c Config
	c.InitAccuracy = r.Float64()
	c.PriorStrength = r.Float64()
	c.WindowEpochs = r.Int()
	c.Steps = r.Int()
	c.Batch = r.Int()
	c.LearningRate = r.Float64()
	c.Decay = r.Float64()
	c.L2 = r.Float64()
	c.Intercept = r.Bool()
	c.Seed = r.Int64()
	return c
}

// EncodeState writes the learner's mutable state. Call on a quiescent
// learner (or a Clone taken under the engine's refresh lock).
func (l *Learner) EncodeState(w *wire.Writer) {
	w.Strings(l.featNames)
	w.Float64s(l.w)
	w.Uint32(uint32(len(l.srcFeats)))
	for _, fs := range l.srcFeats {
		w.Int32s(fs)
	}
	w.Uint32(uint32(len(l.ringAgree)))
	for i := range l.ringAgree {
		w.Float64s(l.ringAgree[i])
		w.Float64s(l.ringTotal[i])
	}
	w.Int(l.ringPos)
	w.Float64s(l.winAgree)
	w.Float64s(l.winTotal)
	w.Int64(l.epochs)
	w.Int64(l.step)
}

// maxStateSlots bounds counts read before the stream checksum has
// been verified, so a corrupted length cannot drive a large
// allocation (the grow-as-data-arrives wire decoding bounds the rest).
const maxStateSlots = 1 << 28

// DecodeState reads state written by EncodeState into the (freshly
// constructed) learner, validating structural invariants so a
// corrupted checkpoint fails here rather than panicking at the next
// refresh. Wire-level errors surface through the reader's sticky
// error; structural violations return a descriptive error.
func (l *Learner) DecodeState(r *wire.Reader) error {
	l.featNames = r.Strings()
	l.w = r.Float64s()
	nSrc := int(r.Uint32())
	if err := r.Err(); err != nil {
		return err
	}
	if nSrc > maxStateSlots {
		return fmt.Errorf("online: state declares %d sources", nSrc)
	}
	if len(l.w) != 1+len(l.featNames) {
		return fmt.Errorf("online: %d weights for %d features", len(l.w), len(l.featNames))
	}
	l.featIdx = make(map[string]int, len(l.featNames))
	for k, name := range l.featNames {
		if _, dup := l.featIdx[name]; dup {
			return fmt.Errorf("online: duplicate feature label %q", name)
		}
		l.featIdx[name] = k
	}
	l.srcFeats = l.srcFeats[:0]
	for s := 0; s < nSrc; s++ {
		if err := r.Err(); err != nil {
			return err
		}
		fs := r.Int32s()
		for _, f := range fs {
			if int(f) < 0 || int(f) >= len(l.featNames) {
				return fmt.Errorf("online: source %d references feature id %d of %d", s, f, len(l.featNames))
			}
		}
		l.srcFeats = append(l.srcFeats, fs)
	}
	nRing := int(r.Uint32())
	if err := r.Err(); err != nil {
		return err
	}
	if nRing != l.cfg.WindowEpochs {
		return fmt.Errorf("online: state has %d ring slots, config says %d", nRing, l.cfg.WindowEpochs)
	}
	for i := 0; i < nRing; i++ {
		if err := r.Err(); err != nil {
			return err
		}
		a := r.Float64s()
		t := r.Float64s()
		if len(a) != len(t) {
			return fmt.Errorf("online: ring slot %d is ragged: %d vs %d", i, len(a), len(t))
		}
		if len(a) > nSrc {
			return fmt.Errorf("online: ring slot %d covers %d sources, table has %d", i, len(a), nSrc)
		}
		l.ringAgree[i] = a
		l.ringTotal[i] = t
	}
	l.ringPos = r.Int()
	l.winAgree = r.Float64s()
	l.winTotal = r.Float64s()
	l.epochs = r.Int64()
	l.step = r.Int64()
	if err := r.Err(); err != nil {
		return err
	}
	if nRing > 0 && (l.ringPos < 0 || l.ringPos >= nRing) {
		return fmt.Errorf("online: ring position %d out of %d slots", l.ringPos, nRing)
	}
	if nRing == 0 && l.ringPos != 0 {
		return errors.New("online: nonzero ring position in cumulative mode")
	}
	if len(l.winAgree) != nSrc || len(l.winTotal) != nSrc {
		return fmt.Errorf("online: window sums are ragged: %d/%d for %d sources", len(l.winAgree), len(l.winTotal), nSrc)
	}
	return nil
}
