package online

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"slimfast/internal/wire"
)

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.InitAccuracy = 0 },
		func(c *Config) { c.InitAccuracy = 1 },
		func(c *Config) { c.PriorStrength = -1 },
		func(c *Config) { c.WindowEpochs = -1 },
		func(c *Config) { c.Steps = -1 },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.LearningRate = 0 },
		func(c *Config) { c.Decay = -1 },
		func(c *Config) { c.L2 = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d should be rejected", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestSetFeaturesInternsAndDedups(t *testing.T) {
	l, _ := New(DefaultConfig())
	l.SetFeatures(0, []string{"b", "a", "b"})
	l.SetFeatures(1, []string{"a", "c"})
	l.SetFeatures(2, nil)
	if l.NumSources() != 3 || l.NumFeatures() != 3 {
		t.Fatalf("sources=%d features=%d, want 3/3", l.NumSources(), l.NumFeatures())
	}
	if len(l.srcFeats[0]) != 2 {
		t.Errorf("duplicate label not deduped: %v", l.srcFeats[0])
	}
	// Sorted by feature id ("b" interned before "a").
	if l.srcFeats[0][0] != 0 || l.srcFeats[0][1] != 1 {
		t.Errorf("features not sorted: %v", l.srcFeats[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order registration should panic")
		}
	}()
	l.SetFeatures(7, nil)
}

func TestUntrainedPredictsInitAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitAccuracy = 0.65
	l, _ := New(cfg)
	l.SetFeatures(0, []string{"f"})
	if got := l.Predict(0); math.Abs(got-0.65) > 1e-12 {
		t.Errorf("untrained Predict = %v, want 0.65", got)
	}
	if got := l.PredictLabels([]string{"unknown"}); math.Abs(got-0.65) > 1e-12 {
		t.Errorf("untrained PredictLabels = %v, want 0.65", got)
	}
}

// feedCohorts registers nPer sources per cohort (features "good" and
// "bad") and feeds epochs where good sources agree at accGood and bad
// ones at accBad, with mass claims per source per epoch.
func feedCohorts(l *Learner, nPer, epochs int, accGood, accBad, mass float64) {
	if l.NumSources() == 0 {
		for s := 0; s < nPer; s++ {
			l.SetFeatures(s, []string{"good"})
		}
		for s := nPer; s < 2*nPer; s++ {
			l.SetFeatures(s, []string{"bad"})
		}
	}
	agree := make([]float64, 2*nPer)
	total := make([]float64, 2*nPer)
	for s := 0; s < nPer; s++ {
		agree[s] = accGood * mass
		total[s] = mass
	}
	for s := nPer; s < 2*nPer; s++ {
		agree[s] = accBad * mass
		total[s] = mass
	}
	for e := 0; e < epochs; e++ {
		l.ObserveEpoch(agree, total)
	}
}

func TestLearnsFeatureSeparation(t *testing.T) {
	l, _ := New(DefaultConfig())
	feedCohorts(l, 6, 30, 0.9, 0.3, 20)
	if wg, wb := l.FeatureWeight("good"), l.FeatureWeight("bad"); wg <= wb+0.5 {
		t.Errorf("good weight %.3f should clearly exceed bad %.3f", wg, wb)
	}
	if pg, pb := l.Predict(0), l.Predict(6); pg <= pb+0.2 {
		t.Errorf("Predict: good %.3f should clearly exceed bad %.3f", pg, pb)
	}
	// A source never seen on the stream inherits its cohort's estimate.
	if p := l.PredictLabels([]string{"bad"}); p >= 0.6 {
		t.Errorf("unseen bad-cohort source predicted %.3f, want < 0.6", p)
	}
	if p := l.PredictLabels([]string{"good"}); p <= 0.7 {
		t.Errorf("unseen good-cohort source predicted %.3f, want > 0.7", p)
	}
	if l.FeatureWeight("never-interned") != 0 {
		t.Error("unknown feature should have zero weight")
	}
}

func TestBlendFollowsEvidenceMass(t *testing.T) {
	l, _ := New(DefaultConfig())
	feedCohorts(l, 6, 30, 0.9, 0.3, 20)
	// Heavy evidence dominates the prior...
	if a := l.Blend(6, 85, 100); math.Abs(a-0.85) > 0.03 {
		t.Errorf("high-mass blend = %.3f, want ≈ 0.85", a)
	}
	// ...light evidence follows the feature prior.
	prior := l.Predict(6)
	if a := l.Blend(6, 1, 1); math.Abs(a-prior) > 0.15 {
		t.Errorf("low-mass blend = %.3f, want near prior %.3f", a, prior)
	}
	// Degenerate inputs stay in the clamp range.
	if a := l.Blend(0, -5, -3); a < accLo || a > accHi {
		t.Errorf("degenerate blend = %v out of range", a)
	}
}

func TestWindowTracksDriftFasterThanCumulative(t *testing.T) {
	win := DefaultConfig()
	win.WindowEpochs = 8
	cum := DefaultConfig()
	cum.WindowEpochs = 0
	lw, _ := New(win)
	lc, _ := New(cum)
	for _, l := range []*Learner{lw, lc} {
		feedCohorts(l, 4, 40, 0.9, 0.9, 25) // long good history for everyone
		feedCohorts(l, 4, 12, 0.9, 0.2, 25) // then the bad cohort degrades
	}
	aw, ac := lw.Accuracy(4), lc.Accuracy(4)
	if aw >= ac-0.05 {
		t.Errorf("windowed accuracy %.3f should fall well below cumulative %.3f after drift", aw, ac)
	}
	if aw > 0.45 {
		t.Errorf("windowed accuracy %.3f should approach the post-drift level", aw)
	}
}

func TestObserveEpochDeterministic(t *testing.T) {
	run := func() *Learner {
		l, _ := New(DefaultConfig())
		feedCohorts(l, 5, 20, 0.85, 0.35, 10)
		return l
	}
	a, b := run(), run()
	for j := range a.w {
		if a.w[j] != b.w[j] {
			t.Fatalf("weight %d differs bit-for-bit: %v vs %v", j, a.w[j], b.w[j])
		}
	}
	for s := 0; s < a.NumSources(); s++ {
		if a.Accuracy(s) != b.Accuracy(s) {
			t.Fatalf("accuracy of source %d differs", s)
		}
	}
}

func TestObserveEpochRejectsUnregisteredSources(t *testing.T) {
	l, _ := New(DefaultConfig())
	l.SetFeatures(0, nil)
	defer func() {
		if recover() == nil {
			t.Error("oversized epoch vector should panic")
		}
	}()
	l.ObserveEpoch(make([]float64, 3), make([]float64, 3))
}

const testMagic = "OLTS"

// encodeLearner round-trips through the wire codec the way the engine
// checkpoint does.
func encodeLearner(t *testing.T, l *Learner) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := wire.NewWriter(&buf, testMagic, 1)
	EncodeConfig(w, l.Config())
	l.Clone().EncodeState(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeLearner(b []byte) (*Learner, error) {
	r, err := wire.NewReader(bytes.NewReader(b), testMagic, 1)
	if err != nil {
		return nil, err
	}
	cfg := DecodeConfig(r)
	l, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := l.DecodeState(r); err != nil {
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return l, nil
}

func TestCodecRoundTripContinuesBitIdentically(t *testing.T) {
	for _, windowEpochs := range []int{0, 8} {
		cfg := DefaultConfig()
		cfg.WindowEpochs = windowEpochs
		orig, _ := New(cfg)
		feedCohorts(orig, 4, 17, 0.88, 0.4, 12)
		restored, err := decodeLearner(encodeLearner(t, orig))
		if err != nil {
			t.Fatalf("window=%d: %v", windowEpochs, err)
		}
		if restored.Config() != orig.Config() {
			t.Fatalf("window=%d: config did not round-trip", windowEpochs)
		}
		// Continue both: every subsequent update must stay bit-exact.
		feedCohorts(orig, 4, 9, 0.6, 0.6, 12)
		feedCohorts(restored, 4, 9, 0.6, 0.6, 12)
		for j := range orig.w {
			if orig.w[j] != restored.w[j] {
				t.Fatalf("window=%d: weight %d diverged after restore", windowEpochs, j)
			}
		}
		for s := 0; s < orig.NumSources(); s++ {
			if orig.Accuracy(s) != restored.Accuracy(s) {
				t.Fatalf("window=%d: source %d accuracy diverged after restore", windowEpochs, s)
			}
		}
	}
}

func TestDecodeStateRejectsCorruption(t *testing.T) {
	write := func(build func(w *wire.Writer)) []byte {
		var buf bytes.Buffer
		w := wire.NewWriter(&buf, testMagic, 1)
		EncodeConfig(w, DefaultConfig())
		build(w)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name  string
		build func(w *wire.Writer)
	}{
		{"weights-vs-features", func(w *wire.Writer) {
			w.Strings([]string{"f"})
			w.Float64s([]float64{0}) // want 2 weights for 1 feature
		}},
		{"dangling-feature-id", func(w *wire.Writer) {
			w.Strings([]string{"f"})
			w.Float64s([]float64{0, 0})
			w.Uint32(1)
			w.Int32s([]int32{5})
		}},
		{"duplicate-label", func(w *wire.Writer) {
			w.Strings([]string{"f", "f"})
			w.Float64s([]float64{0, 0, 0})
		}},
		{"ring-size-mismatch", func(w *wire.Writer) {
			w.Strings(nil)
			w.Float64s([]float64{0})
			w.Uint32(0)
			w.Uint32(3) // config says WindowEpochs=32
		}},
		{"ragged-window-sums", func(w *wire.Writer) {
			w.Strings(nil)
			w.Float64s([]float64{0})
			w.Uint32(1)       // one source
			w.Int32s(nil)     // its features
			w.Uint32(32)      // ring slots
			writeEmptyRing(w) // 32 empty slots
			w.Int(0)
			w.Float64s(nil) // winAgree: empty for 1 source
			w.Float64s(nil)
			w.Int64(0)
			w.Int64(0)
		}},
		{"ring-pos-out-of-range", func(w *wire.Writer) {
			w.Strings(nil)
			w.Float64s([]float64{0})
			w.Uint32(0)
			w.Uint32(32)
			writeEmptyRing(w)
			w.Int(99)
			w.Float64s(nil)
			w.Float64s(nil)
			w.Int64(0)
			w.Int64(0)
		}},
	}
	for _, tc := range cases {
		if _, err := decodeLearner(write(tc.build)); err == nil {
			t.Errorf("%s: corrupt state should be rejected", tc.name)
		}
	}
	// Truncation surfaces as a wire error, never a panic.
	good := encodeLearner(t, func() *Learner { l, _ := New(DefaultConfig()); return l }())
	for _, cut := range []int{9, len(good) / 2, len(good) - 2} {
		if _, err := decodeLearner(good[:cut]); err == nil {
			t.Errorf("cut=%d: truncated state should be rejected", cut)
		}
	}
}

func writeEmptyRing(w *wire.Writer) {
	for i := 0; i < 32; i++ {
		w.Float64s(nil)
		w.Float64s(nil)
	}
}

func TestZeroStepsSkipsTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Steps = 0
	l, _ := New(cfg)
	l.SetFeatures(0, []string{"f"})
	l.ObserveEpoch([]float64{5}, []float64{10})
	if got := l.FeatureWeight("f"); got != 0 {
		t.Errorf("Steps=0 must not move weights, got %v", got)
	}
	// The window still updates, so served accuracy follows evidence.
	if a := l.Accuracy(0); math.Abs(a-(5+4*0.7)/(10+4)) > 1e-9 {
		t.Errorf("accuracy = %v, want the pure blend", a)
	}
}

func TestAccuracyNamesAreStable(t *testing.T) {
	// Guard the layout contract the engine relies on: feature ids are
	// first-seen ordered and stable across identical registrations.
	l, _ := New(DefaultConfig())
	for s := 0; s < 4; s++ {
		l.SetFeatures(s, []string{fmt.Sprintf("g%d", s%2)})
	}
	if l.NumFeatures() != 2 {
		t.Fatalf("features = %d, want 2", l.NumFeatures())
	}
	if l.featIdx["g0"] != 0 || l.featIdx["g1"] != 1 {
		t.Errorf("feature ids not first-seen ordered: %v", l.featIdx)
	}
}
