package metrics

import (
	"math"
	"testing"

	"slimfast/internal/data"
)

func smallDataset() *data.Dataset {
	b := data.NewBuilder("m")
	b.ObserveNames("s0", "o0", "a")
	b.ObserveNames("s0", "o1", "a")
	b.ObserveNames("s0", "o2", "a")
	b.ObserveNames("s1", "o0", "b")
	d := b.Freeze()
	return d
}

func TestObjectAccuracy(t *testing.T) {
	est := map[data.ObjectID]data.ValueID{0: 1, 1: 0, 2: 1}
	test := data.TruthMap{0: 1, 1: 1, 2: 1}
	if got := ObjectAccuracy(est, test); got != 2.0/3.0 {
		t.Errorf("ObjectAccuracy = %v, want 2/3", got)
	}
}

func TestObjectAccuracyMissingEstimateCountsWrong(t *testing.T) {
	est := map[data.ObjectID]data.ValueID{0: 1}
	test := data.TruthMap{0: 1, 1: 1}
	if got := ObjectAccuracy(est, test); got != 0.5 {
		t.Errorf("missing estimate should count wrong: %v", got)
	}
	if ObjectAccuracy(est, data.TruthMap{}) != 0 {
		t.Error("empty test should give 0")
	}
}

func TestSourceAccuracyErrorWeighting(t *testing.T) {
	d := smallDataset() // s0 has 3 observations, s1 has 1
	est := []float64{0.9, 0.5}
	trueAcc := []float64{1.0, 0.5}
	// weighted: (3*0.1 + 1*0) / 4 = 0.075
	if got := SourceAccuracyError(d, est, trueAcc); math.Abs(got-0.075) > 1e-12 {
		t.Errorf("SourceAccuracyError = %v, want 0.075", got)
	}
}

func TestSourceAccuracyErrorPerfect(t *testing.T) {
	d := smallDataset()
	acc := []float64{0.8, 0.6}
	if got := SourceAccuracyError(d, acc, acc); got != 0 {
		t.Errorf("perfect estimates should give 0, got %v", got)
	}
}

func TestUnweightedSourceAccuracyError(t *testing.T) {
	est := []float64{0.9, 0.5, 0.7}
	trueAcc := []float64{1.0, 0.5, 0.5}
	if got := UnweightedSourceAccuracyError(est, trueAcc, nil); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("unweighted all = %v, want 0.1", got)
	}
	if got := UnweightedSourceAccuracyError(est, trueAcc, []int{2}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("unweighted subset = %v, want 0.2", got)
	}
	if UnweightedSourceAccuracyError(est, trueAcc, []int{}) != 0 {
		t.Error("empty subset should give 0")
	}
}

func TestMeanKL(t *testing.T) {
	if got := MeanKL([]float64{0.7, 0.3}, []float64{0.7, 0.3}); got > 1e-12 {
		t.Errorf("identical accuracies should give ~0 KL, got %v", got)
	}
	if MeanKL([]float64{0.9}, []float64{0.1}) <= 0 {
		t.Error("different accuracies should give positive KL")
	}
	if MeanKL(nil, nil) != 0 {
		t.Error("empty should give 0")
	}
}

func TestLogLoss(t *testing.T) {
	post := map[data.ObjectID]map[data.ValueID]float64{
		0: {0: 0.9, 1: 0.1},
	}
	test := data.TruthMap{0: 0}
	want := -math.Log(0.9)
	if got := LogLoss(post, test, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogLoss = %v, want %v", got, want)
	}
	// Missing posterior contributes log(domain).
	test2 := data.TruthMap{0: 0, 1: 0}
	got := LogLoss(post, test2, 4)
	want = (-math.Log(0.9) + math.Log(4)) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LogLoss with missing = %v, want %v", got, want)
	}
	// Zero probability stays finite.
	post[0][0] = 0
	if v := LogLoss(post, test, 2); math.IsInf(v, 0) {
		t.Error("LogLoss should clamp zero probabilities")
	}
}

func TestRelativeDifference(t *testing.T) {
	if got := RelativeDifference(0.9, 1.0); math.Abs(got-(-10)) > 1e-12 {
		t.Errorf("RelativeDifference = %v, want -10", got)
	}
	if RelativeDifference(1, 0) != 0 {
		t.Error("division by zero should give 0")
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Stddev(xs); math.Abs(got-2.138) > 1e-3 {
		t.Errorf("Stddev = %v, want ~2.138", got)
	}
	if Mean(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}
