// Package metrics implements the two evaluation measures from Section
// 5.1 of the SLiMFast paper plus supporting divergences:
//
//   - Accuracy for true object values: the fraction of test objects for
//     which a fusion method identified the correct value.
//   - Error for estimated source accuracies: a weighted average of
//     per-source absolute estimation error, weighted by the number of
//     observations each source provides.
//
// It also provides the mean Bernoulli KL divergence used by Theorem 3's
// bound and standard aggregate helpers for the experiment harness.
package metrics

import (
	"math"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// ObjectAccuracy returns the fraction of objects in test whose estimate
// matches the gold label. Objects missing from estimates count as wrong
// (a method that abstains is penalized, consistent with the paper's
// single-truth evaluation). Returns 0 when test is empty.
func ObjectAccuracy(estimates map[data.ObjectID]data.ValueID, test data.TruthMap) float64 {
	if len(test) == 0 {
		return 0
	}
	correct := 0
	for o, truth := range test {
		if v, ok := estimates[o]; ok && v == truth {
			correct++
		}
	}
	return float64(correct) / float64(len(test))
}

// SourceAccuracyError is the paper's weighted-average absolute error for
// estimated source accuracies: each source's |A_s - A*_s| weighted by
// its observation count, so sources that supply many observations
// dominate (the weighting scheme of Li et al. adopted in Section 5.1).
func SourceAccuracyError(d *data.Dataset, estimated, trueAcc []float64) float64 {
	var num, den float64
	for s := 0; s < d.NumSources(); s++ {
		w := float64(d.SourceObservationCount(data.SourceID(s)))
		if w == 0 {
			continue
		}
		num += w * math.Abs(estimated[s]-trueAcc[s])
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// UnweightedSourceAccuracyError is the unweighted mean absolute error
// over sources, restricted to the given subset (all sources when subset
// is nil). Used by the Figure 7 unseen-source experiment, where every
// held-out source should count equally.
func UnweightedSourceAccuracyError(estimated, trueAcc []float64, subset []int) float64 {
	if subset == nil {
		subset = make([]int, len(estimated))
		for i := range subset {
			subset[i] = i
		}
	}
	if len(subset) == 0 {
		return 0
	}
	var sum float64
	for _, s := range subset {
		sum += math.Abs(estimated[s] - trueAcc[s])
	}
	return sum / float64(len(subset))
}

// MeanKL returns (1/|S|) Σ_s KL(A_s || A*_s), the quantity bounded by
// Theorem 3. Estimates are clamped away from {0,1}.
func MeanKL(estimated, trueAcc []float64) float64 {
	if len(estimated) == 0 {
		return 0
	}
	var sum float64
	for s := range estimated {
		sum += mathx.KLBernoulli(mathx.ClampProb(estimated[s]), trueAcc[s])
	}
	return sum / float64(len(estimated))
}

// LogLoss returns the mean negative log posterior probability assigned
// to the gold value over test objects, given per-object posteriors
// (maps from value to probability). Objects without a posterior
// contribute the maximum loss log(domain)≈uniform surprise.
func LogLoss(posteriors map[data.ObjectID]map[data.ValueID]float64, test data.TruthMap, defaultDomain int) float64 {
	if len(test) == 0 {
		return 0
	}
	if defaultDomain < 2 {
		defaultDomain = 2
	}
	var sum float64
	for o, truth := range test {
		post, ok := posteriors[o]
		if !ok {
			sum += math.Log(float64(defaultDomain))
			continue
		}
		p := mathx.ClampProb(post[truth])
		sum += -math.Log(p)
	}
	return sum / float64(len(test))
}

// RelativeDifference returns (a-b)/b as a percentage, the statistic the
// paper's Table 2 Panel B reports (difference of each baseline relative
// to SLiMFast). Returns 0 when b is 0.
func RelativeDifference(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 when fewer than
// two samples).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
