package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestLogisticKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{math.Log(3), 0.75},
		{-math.Log(3), 0.25},
		{1000, 1},
		{-1000, 0},
	}
	for _, c := range cases {
		if got := Logistic(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Logistic(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogisticMonotone(t *testing.T) {
	prev := Logistic(-50)
	for x := -49.0; x <= 50; x += 0.5 {
		cur := Logistic(x)
		if cur < prev {
			t.Fatalf("Logistic not monotone at x=%v: %v < %v", x, cur, prev)
		}
		prev = cur
	}
}

func TestLogitLogisticRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 20) // keep logits in a safe range
		p := Logistic(x)
		return almostEqual(Logit(p), x, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogitClamps(t *testing.T) {
	if v := Logit(0); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("Logit(0) should be finite, got %v", v)
	}
	if v := Logit(1); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("Logit(1) should be finite, got %v", v)
	}
	if Logit(0.9) <= 0 || Logit(0.1) >= 0 {
		t.Error("Logit sign wrong")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp basic behaviour wrong")
	}
}

func TestLogSumExp(t *testing.T) {
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !almostEqual(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	// Stability: huge values must not overflow.
	got = LogSumExp([]float64{1000, 1000})
	if !almostEqual(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp stability failed: %v", got)
	}
	// All -Inf stays -Inf.
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}), -1) {
		t.Error("LogSumExp of -Infs should be -Inf")
	}
}

func TestLogSumExpShiftInvariance(t *testing.T) {
	f := func(a, b, c, shift float64) bool {
		a, b, c = math.Mod(a, 50), math.Mod(b, 50), math.Mod(c, 50)
		shift = math.Mod(shift, 100)
		x := LogSumExp([]float64{a, b, c})
		y := LogSumExp([]float64{a + shift, b + shift, c + shift})
		return almostEqual(y-x, shift, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(a, b, c float64) bool {
		a, b, c = math.Mod(a, 100), math.Mod(b, 100), math.Mod(c, 100)
		p := Softmax([]float64{a, b, c}, nil)
		var s float64
		for _, v := range p {
			if v < 0 {
				return false
			}
			s += v
		}
		return almostEqual(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxReusesBuffer(t *testing.T) {
	buf := make([]float64, 8)
	out := Softmax([]float64{1, 2, 3}, buf)
	if len(out) != 3 {
		t.Fatalf("len(out)=%d, want 3", len(out))
	}
	if &out[0] != &buf[0] {
		t.Error("Softmax should reuse provided buffer")
	}
}

func TestEntropy2(t *testing.T) {
	if Entropy2(0.5) != 1 {
		t.Errorf("H(0.5) = %v, want 1", Entropy2(0.5))
	}
	if Entropy2(0) != 0 || Entropy2(1) != 0 {
		t.Error("H(0), H(1) should be 0")
	}
	// Symmetric.
	if !almostEqual(Entropy2(0.3), Entropy2(0.7), 1e-12) {
		t.Error("Entropy2 should be symmetric")
	}
	// Paper Example 8: pe = 0.8497 gives H ~= 0.611.
	if h := Entropy2(0.8497); !almostEqual(h, 0.611, 1e-3) {
		t.Errorf("Entropy2(0.8497) = %v, want ~0.611 (paper Example 8)", h)
	}
}

func TestEntropyDist(t *testing.T) {
	if got := EntropyDist([]float64{0.5, 0.5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("EntropyDist uniform 2 = %v, want 1", got)
	}
	if got := EntropyDist([]float64{0.25, 0.25, 0.25, 0.25}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("EntropyDist uniform 4 = %v, want 2", got)
	}
	if got := EntropyDist([]float64{1, 0, 0}); got != 0 {
		t.Errorf("EntropyDist point mass = %v, want 0", got)
	}
}

func TestKLBernoulli(t *testing.T) {
	if got := KLBernoulli(0.5, 0.5); !almostEqual(got, 0, 1e-12) {
		t.Errorf("KL(p||p) = %v, want 0", got)
	}
	if KLBernoulli(0.9, 0.1) <= 0 {
		t.Error("KL should be positive for p != q")
	}
	// Finite at the boundaries thanks to clamping.
	if v := KLBernoulli(1, 0.5); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("KL(1||0.5) = %v, want finite", v)
	}
	if v := KLBernoulli(0.5, 1); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("KL(0.5||1) = %v, want finite (clamped)", v)
	}
}

func TestKLBernoulliNonNegative(t *testing.T) {
	f := func(p, q float64) bool {
		p = math.Abs(math.Mod(p, 1))
		q = math.Abs(math.Mod(q, 1))
		return KLBernoulli(p, q) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogBinomCoeff(t *testing.T) {
	if got := LogBinomCoeff(10, 5); !almostEqual(math.Exp(got), 252, 1e-6) {
		t.Errorf("C(10,5) = %v, want 252", math.Exp(got))
	}
	if !math.IsInf(LogBinomCoeff(5, 6), -1) || !math.IsInf(LogBinomCoeff(5, -1), -1) {
		t.Error("out-of-range LogBinomCoeff should be -Inf")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.7, 0.99} {
		var s float64
		for k := 0; k <= 20; k++ {
			s += BinomPMF(20, k, p)
		}
		if !almostEqual(s, 1, 1e-9) {
			t.Errorf("PMF(p=%v) sums to %v", p, s)
		}
	}
}

func TestBinomPMFEdges(t *testing.T) {
	if BinomPMF(10, 0, 0) != 1 || BinomPMF(10, 1, 0) != 0 {
		t.Error("PMF at p=0 wrong")
	}
	if BinomPMF(10, 10, 1) != 1 || BinomPMF(10, 9, 1) != 0 {
		t.Error("PMF at p=1 wrong")
	}
	if BinomPMF(10, -1, 0.5) != 0 || BinomPMF(10, 11, 0.5) != 0 {
		t.Error("PMF out of range should be 0")
	}
}

func TestBinomCDFPaperExample8(t *testing.T) {
	// pe = 1 - CDF(5; 10, 0.7) = 0.8497 per the paper's Example 8.
	pe := 1 - BinomCDF(10, 5, 0.7)
	if !almostEqual(pe, 0.8497, 1e-4) {
		t.Errorf("pe = %v, want 0.8497 (paper Example 8)", pe)
	}
}

func TestBinomCDFMonotone(t *testing.T) {
	prev := 0.0
	for k := 0; k <= 30; k++ {
		c := BinomCDF(30, k, 0.37)
		if c+1e-12 < prev {
			t.Fatalf("CDF not monotone at k=%d", k)
		}
		prev = c
	}
	if !almostEqual(prev, 1, 1e-9) {
		t.Errorf("CDF(n) = %v, want 1", prev)
	}
}

func TestBinomTailAbove(t *testing.T) {
	for _, k := range []int{-1, 0, 3, 10, 15, 19, 20, 25} {
		got := BinomTailAbove(20, k, 0.6)
		var want float64
		if k < 0 {
			want = 1
		} else {
			want = 1 - BinomCDF(20, k, 0.6)
		}
		if !almostEqual(got, want, 1e-9) {
			t.Errorf("TailAbove(20,%d) = %v, want %v", k, got, want)
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.841344746, 1.0},
		{0.999, 3.090232},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEqual(got, c.want, 1e-4) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile boundary behaviour wrong")
	}
}

func TestChiSquareQuantile(t *testing.T) {
	// Reference values from standard tables.
	cases := []struct {
		p    float64
		k    int
		want float64
		tol  float64
	}{
		{0.95, 10, 18.307, 0.15},
		{0.95, 1, 3.841, 0.6}, // WH is weakest at k=1
		{0.975, 5, 12.833, 0.2},
		{0.05, 10, 3.940, 0.15},
	}
	for _, c := range cases {
		if got := ChiSquareQuantile(c.p, c.k); !almostEqual(got, c.want, c.tol) {
			t.Errorf("ChiSq(%v, %d) = %v, want %v +- %v", c.p, c.k, got, c.want, c.tol)
		}
	}
	if ChiSquareQuantile(0.95, 0) != 0 {
		t.Error("k=0 should give 0")
	}
}

func TestChiSquareQuantileMonotoneInDF(t *testing.T) {
	prev := 0.0
	for k := 1; k <= 100; k++ {
		q := ChiSquareQuantile(0.975, k)
		if q < prev {
			t.Fatalf("chi-square quantile not monotone in df at k=%d", k)
		}
		prev = q
	}
}

func TestMeanVar(t *testing.T) {
	m, v := MeanVar([]float64{1, 2, 3, 4})
	if !almostEqual(m, 2.5, 1e-12) || !almostEqual(v, 1.25, 1e-12) {
		t.Errorf("MeanVar = (%v, %v), want (2.5, 1.25)", m, v)
	}
	m, v = MeanVar(nil)
	if m != 0 || v != 0 {
		t.Error("MeanVar(nil) should be (0,0)")
	}
}

func TestDotAndNorms(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := L1Norm([]float64{-1, 2, -3}); got != 6 {
		t.Errorf("L1Norm = %v, want 6", got)
	}
	if got := L2Norm([]float64{3, 4}); got != 5 {
		t.Errorf("L2Norm = %v, want 5", got)
	}
	if got := MaxAbsDiff([]float64{1, 5}, []float64{2, 3}); got != 2 {
		t.Errorf("MaxAbsDiff = %v, want 2", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot should panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ x, t, want float64 }{
		{3, 1, 2},
		{-3, 1, -2},
		{0.5, 1, 0},
		{-0.5, 1, 0},
		{1, 1, 0},
	}
	for _, c := range cases {
		if got := SoftThreshold(c.x, c.t); got != c.want {
			t.Errorf("SoftThreshold(%v,%v) = %v, want %v", c.x, c.t, got, c.want)
		}
	}
}

func TestSoftThresholdShrinks(t *testing.T) {
	f := func(x, th float64) bool {
		th = math.Abs(math.Mod(th, 10))
		x = math.Mod(x, 100)
		y := SoftThreshold(x, th)
		return math.Abs(y) <= math.Abs(x)+1e-12 && y*x >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
