// Package mathx provides the numeric kernel shared by the SLiMFast
// implementation: logistic functions, numerically stable log-sum-exp,
// entropies, Bernoulli KL divergence, binomial tail probabilities, and
// the chi-square quantile approximation used by the CATD baseline.
//
// Everything is implemented on top of the standard library only, with
// attention to the numerical edge cases that show up in data fusion:
// probabilities clamped away from {0,1}, long chains of products done
// in log space, and CDF sums accumulated from the small end.
package mathx

import (
	"math"
)

// Eps is the default probability clamp used throughout the repository.
// Source accuracies and posteriors are kept inside [Eps, 1-Eps] so that
// logits and log-losses stay finite.
const Eps = 1e-9

// Logistic returns 1/(1+exp(-x)), the standard sigmoid, computed in a
// branch that avoids overflow for large |x|.
func Logistic(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Logit returns log(p/(1-p)), clamping p into (Eps, 1-Eps) first.
func Logit(p float64) float64 {
	p = ClampProb(p)
	return math.Log(p / (1 - p))
}

// ClampProb clamps p into [Eps, 1-Eps].
func ClampProb(p float64) float64 {
	return Clamp(p, Eps, 1-Eps)
}

// Clamp restricts x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// LogSumExp returns log(sum_i exp(xs[i])) computed stably. It returns
// -Inf for an empty slice, matching log(0).
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Softmax writes the softmax of xs into out (allocating when out is nil
// or too short) and returns it. The computation subtracts the maximum
// for stability.
func Softmax(xs []float64, out []float64) []float64 {
	if cap(out) < len(xs) {
		out = make([]float64, len(xs))
	}
	out = out[:len(xs)]
	if len(xs) == 0 {
		return out
	}
	lse := LogSumExp(xs)
	for i, x := range xs {
		out[i] = math.Exp(x - lse)
	}
	return out
}

// Entropy2 returns the binary entropy of p in bits:
// H(p) = -p log2 p - (1-p) log2 (1-p). H(0)=H(1)=0 by convention.
func Entropy2(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// EntropyDist returns the Shannon entropy in bits of the distribution
// ps, which need not be normalized exactly; zero entries contribute 0.
func EntropyDist(ps []float64) float64 {
	var h float64
	for _, p := range ps {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// KLBernoulli returns KL(p || q) in nats for Bernoulli parameters p and
// q, clamping q away from {0,1} so the divergence stays finite.
func KLBernoulli(p, q float64) float64 {
	p = Clamp(p, 0, 1)
	q = ClampProb(q)
	var kl float64
	if p > 0 {
		kl += p * math.Log(p/q)
	}
	if p < 1 {
		kl += (1 - p) * math.Log((1-p)/(1-q))
	}
	return kl
}

// LogBinomCoeff returns log C(n, k) using lgamma, valid for large n.
func LogBinomCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// BinomPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogBinomCoeff(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// BinomCDF returns P(X <= k) for X ~ Binomial(n, p), summing PMF terms
// directly. n in this repository is the number of sources observing one
// object (tens to hundreds), so the direct sum is both exact enough and
// fast.
func BinomCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var c float64
	for i := 0; i <= k; i++ {
		c += BinomPMF(n, i, p)
	}
	return Clamp(c, 0, 1)
}

// BinomTailAbove returns P(X > k) = 1 - CDF(k) for X ~ Binomial(n, p),
// summing whichever tail is shorter for accuracy.
func BinomTailAbove(n, k int, p float64) float64 {
	if k < 0 {
		return 1
	}
	if k >= n {
		return 0
	}
	if k <= n/2 {
		return Clamp(1-BinomCDF(n, k, p), 0, 1)
	}
	var t float64
	for i := k + 1; i <= n; i++ {
		t += BinomPMF(n, i, p)
	}
	return Clamp(t, 0, 1)
}

// NormalQuantile returns the quantile function (inverse CDF) of the
// standard normal distribution, using the Acklam rational approximation
// (relative error < 1.15e-9 over (0,1)).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// ChiSquareQuantile returns the p-quantile of the chi-square
// distribution with k degrees of freedom via the Wilson–Hilferty cube
// approximation, which is accurate to a few percent for k >= 2 — good
// enough for CATD's confidence weights, which only need the right order
// of magnitude.
func ChiSquareQuantile(p float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	z := NormalQuantile(p)
	kf := float64(k)
	t := 1 - 2/(9*kf) + z*math.Sqrt(2/(9*kf))
	q := kf * t * t * t
	if q < 0 {
		return 0
	}
	return q
}

// MeanVar returns the sample mean and (population) variance of xs. For
// an empty slice both are 0.
func MeanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return mean, variance
}

// Dot returns the dot product of a and b; the slices must have equal
// length (enforced by panic, as a programming error).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// L1Norm returns sum_i |xs[i]|.
func L1Norm(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s
}

// L2Norm returns sqrt(sum_i xs[i]^2).
func L2Norm(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_i |a[i]-b[i]|; slices must have equal length.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// SoftThreshold applies the soft-thresholding (shrinkage) operator used
// by proximal L1 steps: sign(x)*max(|x|-t, 0).
func SoftThreshold(x, t float64) float64 {
	switch {
	case x > t:
		return x - t
	case x < -t:
		return x + t
	default:
		return 0
	}
}
