// Relation-backed execution: the same query language over an
// already-materialized table. This is how the query subcommand
// filters the sources/accuracy-trajectory relations and how the
// cluster router merges per-member row streams — the comparator is
// the same total order the engine-backed path uses (order keys, then
// every column left to right), so a router merge of member results
// reproduces a single engine's bytes.
package query

import (
	"fmt"
	"sort"
)

// ExecuteRelation runs a query over a materialized relation. The
// disagree parameter is engine-only (it needs per-claim state) and is
// rejected here; the router clears it before merging because members
// already applied it.
func ExecuteRelation(rel *Relation, q *Query) (*Result, error) {
	if q.DisA != "" {
		return nil, fmt.Errorf("disagree applies only to the estimates relation")
	}
	allCols := make([]int, len(rel.Cols))
	for i := range allCols {
		allCols[i] = i
	}
	p, err := compile(q, rel.Cols, allCols)
	if err != nil {
		return nil, err
	}
	rows := make([][]Val, 0, len(rel.Rows))
	for _, row := range rel.Rows {
		if len(row) != len(rel.Cols) {
			return nil, fmt.Errorf("relation row has %d cells, want %d", len(row), len(rel.Cols))
		}
		if p.matchVals(row) {
			rows = append(rows, row)
		}
	}
	if p.groupIx >= 0 {
		table := newGroupTable(p)
		for _, row := range rows {
			table.addVals(p, row)
		}
		return table.finalize(p), nil
	}
	sort.Slice(rows, func(i, j int) bool { return p.cmpVals(rows[i], rows[j]) < 0 })
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	cols := p.projCols()
	out := func(yield func([]Val) bool) {
		buf := make([]Val, len(p.proj))
		for _, row := range rows {
			for i, ix := range p.proj {
				buf[i] = row[ix]
			}
			if !yield(buf) {
				return
			}
		}
	}
	return &Result{Cols: cols, Rows: out}, nil
}

// matchVals evaluates the compiled conjuncts against a relation row.
func (p *plan) matchVals(row []Val) bool {
	for i := range p.conds {
		c := &p.conds[i]
		if c.kind == KindString {
			if !c.evalStr(row[c.ix].Str) {
				return false
			}
		} else if !c.evalNum(row[c.ix].num()) {
			return false
		}
	}
	return true
}

// cmpVals is the relation-row total order: the order keys, then every
// column left to right. For relations whose first column is a unique
// key (object, source) this coincides with the engine comparator.
func (p *plan) cmpVals(a, b []Val) int {
	for _, k := range p.order {
		c := cmpVal(a[k.ix], b[k.ix])
		if k.desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	for i := range a {
		if c := cmpVal(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// addVals folds one relation row into a group table.
func (g *groupTable) addVals(p *plan, row []Val) {
	key := row[p.groupIx]
	acc := g.m[key]
	if acc == nil {
		acc = &groupAcc{key: key, count: 1, accs: make([]Val, len(p.aggs))}
		for i, ix := range p.aggIx {
			if ix >= 0 {
				acc.accs[i] = row[ix]
			} else {
				acc.accs[i] = Val{Kind: KindInt}
			}
		}
		g.m[key] = acc
		return
	}
	acc.count++
	for i, ix := range p.aggIx {
		if ix >= 0 {
			acc.accs[i] = combine(p.aggs[i].Fn, acc.accs[i], row[ix])
		}
	}
}

// Materialize drains a result into a relation (copying each reused
// row), for callers that need random access — the router's merge
// input, tests.
func Materialize(res *Result) *Relation {
	rel := &Relation{Cols: res.Cols}
	for row := range res.Rows {
		rel.Rows = append(rel.Rows, append([]Val(nil), row...))
	}
	return rel
}
