// The one row-writer both output formats share: a Result streams
// through WriteCSV (the legacy-compatible default: floats as %.4f)
// or WriteNDJSON (one JSON object per line, floats in shortest
// round-trippable form — the cluster's internal scatter format,
// because encoding/json's float64 parsing restores the exact bits).
package query

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV streams a result as CSV: a header row of column names,
// then one record per row with floats rendered %.4f (the format the
// unqueried /estimates and /sources endpoints have always used).
func WriteCSV(w io.Writer, res *Result) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(res.Cols))
	for i, c := range res.Cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	record := make([]string, len(res.Cols))
	for row := range res.Rows {
		for i, v := range row {
			record[i] = v.String()
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteNDJSON streams a result as newline-delimited JSON objects in
// column order, one per row. Floats use the shortest representation
// that round-trips bit-exactly, so a reader that parses and re-emits
// (the cluster router) reproduces the member's bytes.
func WriteNDJSON(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	keys := make([][]byte, len(res.Cols))
	for i, c := range res.Cols {
		k, err := json.Marshal(c.Name)
		if err != nil {
			return err
		}
		keys[i] = append(k, ':')
	}
	var buf []byte
	for row := range res.Rows {
		buf = buf[:0]
		buf = append(buf, '{')
		for i, v := range row {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, keys[i]...)
			switch v.Kind {
			case KindString:
				s, err := json.Marshal(v.Str)
				if err != nil {
					return err
				}
				buf = append(buf, s...)
			case KindFloat:
				buf = strconv.AppendFloat(buf, v.Num, 'g', -1, 64)
			default:
				buf = strconv.AppendInt(buf, v.Int, 10)
			}
		}
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses a WriteNDJSON stream back into typed rows against
// a known schema — the router's member-response decoder. Numbers are
// kept as json.Number internally so int64 cells survive exactly and
// float cells restore their original bits.
func ReadNDJSON(r io.Reader, cols []Column) ([][]Val, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var rows [][]Val
	for {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				return rows, nil
			}
			return nil, fmt.Errorf("ndjson row %d: %w", len(rows)+1, err)
		}
		row := make([]Val, len(cols))
		for i, c := range cols {
			raw, ok := m[c.Name]
			if !ok {
				return nil, fmt.Errorf("ndjson row %d: missing column %q", len(rows)+1, c.Name)
			}
			switch c.Kind {
			case KindString:
				s, okS := raw.(string)
				if !okS {
					return nil, fmt.Errorf("ndjson row %d: column %q is not a string", len(rows)+1, c.Name)
				}
				row[i] = Val{Kind: KindString, Str: s}
			default:
				n, okN := raw.(json.Number)
				if !okN {
					return nil, fmt.Errorf("ndjson row %d: column %q is not a number", len(rows)+1, c.Name)
				}
				if c.Kind == KindInt {
					v, err := strconv.ParseInt(n.String(), 10, 64)
					if err != nil {
						return nil, fmt.Errorf("ndjson row %d: column %q: %w", len(rows)+1, c.Name, err)
					}
					row[i] = Val{Kind: KindInt, Int: v}
				} else {
					v, err := n.Float64()
					if err != nil {
						return nil, fmt.Errorf("ndjson row %d: column %q: %w", len(rows)+1, c.Name, err)
					}
					row[i] = Val{Kind: KindFloat, Num: v}
				}
			}
		}
		rows = append(rows, row)
	}
}

// Write streams a result in the named format: "csv" (default) or
// "json"/"ndjson".
func Write(w io.Writer, res *Result, format string) error {
	switch format {
	case "", "csv":
		return WriteCSV(w, res)
	case "json", "ndjson":
		return WriteNDJSON(w, res)
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", format)
	}
}
