package query

import (
	"fmt"
	"net/url"
	"runtime"
	"testing"

	"slimfast/internal/stream"
)

// benchClaims builds a large uncontested stream: 12k objects, three
// sources each — big enough that materializing the estimate set costs
// real allocation, which a pushed-down selective query must not pay.
func benchClaims() [][3]string {
	out := make([][3]string, 0, 3*12000)
	for o := 0; o < 12000; o++ {
		obj := fmt.Sprintf("b%05d", o)
		for s := 0; s < 3; s++ {
			val := "t"
			if s == 2 && o%7 == 0 {
				val = "w"
			}
			out = append(out, [3]string{fmt.Sprintf("s%d", s), obj, val})
		}
	}
	return out
}

var benchTop10 = mustParse("order=-contested&limit=10")

func mustParse(raw string) *Query {
	vals, err := url.ParseQuery(raw)
	if err != nil {
		panic(err)
	}
	q, err := Parse(vals, EstimateColumns())
	if err != nil {
		panic(err)
	}
	return q
}

func runTop10(e *stream.Engine) int {
	res, err := Execute(e, benchTop10)
	if err != nil {
		panic(err)
	}
	n := 0
	for range res.Rows {
		n++
	}
	return n
}

// TestSelectiveQueryAllocatesFarLessThanMaterializing is the
// pushdown's acceptance bar: a limit-10 query over 12k objects keeps
// only bounded per-shard buffers, so it allocates a small fraction of
// what EstimateAll's full materialization does.
func TestSelectiveQueryAllocatesFarLessThanMaterializing(t *testing.T) {
	e := buildEngine(t, 4, 4, 1024, benchClaims())
	measure := func(f func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	// Warm both paths once so lazy engine state is off the books.
	if n := runTop10(e); n != 10 {
		t.Fatalf("top-10 query returned %d rows", n)
	}
	_ = e.EstimateAll()

	queryBytes := measure(func() { runTop10(e) })
	allBytes := measure(func() { _ = e.EstimateAll() })
	t.Logf("selective query: %d bytes, EstimateAll: %d bytes", queryBytes, allBytes)
	if queryBytes*5 >= allBytes {
		t.Errorf("selective query allocated %d bytes, not ≪ EstimateAll's %d", queryBytes, allBytes)
	}
}

// BenchmarkQueryTop10Contested is the selective-query benchmark the
// issue asks for: limit 10 of 12k objects through the pushdown.
func BenchmarkQueryTop10Contested(b *testing.B) {
	e := buildEngine(b, 4, 4, 1024, benchClaims())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runTop10(e) != 10 {
			b.Fatal("short result")
		}
	}
}

// BenchmarkEstimateAll is the materializing baseline the selective
// query is measured against.
func BenchmarkEstimateAll(b *testing.B) {
	e := buildEngine(b, 4, 4, 1024, benchClaims())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(e.EstimateAll()) != 12000 {
			b.Fatal("short result")
		}
	}
}
