package query

import (
	"bytes"
	"net/url"
	"reflect"
	"strings"
	"testing"
)

// parseQ parses a raw query string against the estimates schema,
// failing the test on error.
func parseQ(t *testing.T, raw string) *Query {
	t.Helper()
	vals, err := url.ParseQuery(raw)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", raw, err)
	}
	q, err := Parse(vals, EstimateColumns())
	if err != nil {
		t.Fatalf("Parse(%q): %v", raw, err)
	}
	return q
}

func TestParseFullGrammar(t *testing.T) {
	q := parseQ(t, "where=confidence<0.9&where=value!=t0&order=-contested,object&limit=10&cols=object,value,confidence")
	if len(q.Where) != 2 || q.Where[0].Col != "confidence" || q.Where[0].Op != "<" || q.Where[0].Num != 0.9 {
		t.Errorf("where parsed wrong: %+v", q.Where)
	}
	if q.Where[1].Str != "t0" || q.Where[1].Op != "!=" {
		t.Errorf("string conjunct parsed wrong: %+v", q.Where[1])
	}
	want := []OrderKey{{Col: "contested", Desc: true}, {Col: "object"}}
	if !reflect.DeepEqual(q.Order, want) {
		t.Errorf("order = %+v, want %+v", q.Order, want)
	}
	if q.Limit != 10 || !reflect.DeepEqual(q.Cols, []string{"object", "value", "confidence"}) {
		t.Errorf("limit/cols parsed wrong: %+v", q)
	}
	if q.IsPlain() {
		t.Error("non-trivial query reported plain")
	}

	g := parseQ(t, "group=value&agg=count,sum:confidence,avg:dissent,min:confidence,max:sources")
	if g.Group != "value" || len(g.Aggs) != 5 || g.Aggs[1].Name() != "sum:confidence" {
		t.Errorf("group parsed wrong: %+v", g)
	}
	if d := parseQ(t, "disagree=s0,s7"); d.DisA != "s0" || d.DisB != "s7" {
		t.Errorf("disagree parsed wrong: %+v", d)
	}
	// group with no explicit agg defaults to count.
	if g2 := parseQ(t, "group=value"); len(g2.Aggs) != 1 || g2.Aggs[0].Fn != "count" {
		t.Errorf("default agg = %+v, want count", g2.Aggs)
	}
}

func TestParseTransportKeysIgnored(t *testing.T) {
	q := parseQ(t, "format=json&partial=1")
	if !q.IsPlain() {
		t.Errorf("transport-only query not plain: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ raw, wantSub string }{
		{"bogus=1", "unknown query parameter"},
		{"where=nope<1", `unknown column "nope"`},
		{"where=confidence<abc", "cannot parse"},
		{"where=value<t0", "only = and != apply"},
		{"where=confidence", "want <col><op><value>"},
		{"order=nope", `unknown column "nope"`},
		{"order=-nope", `unknown column "nope"`},
		{"limit=0", "positive integer"},
		{"limit=-3", "positive integer"},
		{"limit=ten", "positive integer"},
		{"cols=object,nope", `unknown column "nope"`},
		{"group=nope", `unknown column "nope"`},
		{"agg=count", "agg requires group"},
		{"group=value&agg=median:confidence", "unknown function"},
		{"group=value&agg=sum", "want count or fn:col"},
		{"group=value&agg=sum:value", "aggregate a numeric column"},
		{"group=value&agg=sum:nope", `unknown column "nope"`},
		{"group=value&cols=object", "drop cols/order"},
		{"group=value&order=value", "drop cols/order"},
		{"disagree=only", "two comma-separated source names"},
		{"disagree=,b", "two comma-separated source names"},
	}
	for _, tc := range cases {
		vals, err := url.ParseQuery(tc.raw)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", tc.raw, err)
		}
		_, err = Parse(vals, EstimateColumns())
		if err == nil {
			t.Errorf("Parse(%q) accepted, want error containing %q", tc.raw, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", tc.raw, err, tc.wantSub)
		}
	}
}

// TestValuesRoundTrip pins the canonical re-encoding the router uses:
// parsing the re-encoded form must reproduce the query exactly.
func TestValuesRoundTrip(t *testing.T) {
	for _, raw := range []string{
		"where=confidence<0.875&where=value=t0&order=-contested,object&limit=7&cols=object,contested",
		"group=value&agg=count,sum:confidence,avg:confidence",
		"where=changed>=12&disagree=alpha,beta&limit=3",
	} {
		q := parseQ(t, raw)
		back, err := Parse(q.Values(nil), EstimateColumns())
		if err != nil {
			t.Fatalf("reparse of Values(%q): %v", raw, err)
		}
		if !reflect.DeepEqual(q, back) {
			t.Errorf("round trip of %q: %+v != %+v", raw, q, back)
		}
	}
	// extraCols replaces the projection.
	q := parseQ(t, "order=-confidence&limit=2")
	vals := q.Values([]string{"object", "value", "confidence"})
	if got := vals.Get("cols"); got != "object,value,confidence" {
		t.Errorf("extraCols not applied: cols=%q", got)
	}
}

// sourceRelation is a small materialized table for the relation path.
func sourceRelation() *Relation {
	cols := []Column{{"source", KindString}, {"accuracy", KindFloat}, {"cohort", KindString}, {"claims", KindInt}}
	row := func(s string, a float64, c string, n int64) []Val {
		return []Val{
			{Kind: KindString, Str: s},
			{Kind: KindFloat, Num: a},
			{Kind: KindString, Str: c},
			{Kind: KindInt, Int: n},
		}
	}
	return &Relation{Cols: cols, Rows: [][]Val{
		row("a0", 0.91, "alpha", 120),
		row("a1", 0.88, "alpha", 80),
		row("b0", 0.61, "beta", 120),
		row("b1", 0.97, "beta", 40),
		row("b2", 0.61, "beta", 10),
	}}
}

func relCSV(t *testing.T, rel *Relation, raw string) string {
	t.Helper()
	vals, err := url.ParseQuery(raw)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(vals, rel.Cols)
	if err != nil {
		t.Fatalf("Parse(%q): %v", raw, err)
	}
	res, err := ExecuteRelation(rel, q)
	if err != nil {
		t.Fatalf("ExecuteRelation(%q): %v", raw, err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestExecuteRelation(t *testing.T) {
	rel := sourceRelation()
	got := relCSV(t, rel, "where=cohort=beta&order=-accuracy&limit=2&cols=source,accuracy")
	want := "source,accuracy\nb1,0.9700\nb0,0.6100\n"
	if got != want {
		t.Errorf("filtered query:\n%s\nwant:\n%s", got, want)
	}
	// Ties on the order key fall back to the remaining columns left to
	// right, so equal accuracies order by source name.
	got = relCSV(t, rel, "where=accuracy<0.7&cols=source")
	if want = "source\nb0\nb2\n"; got != want {
		t.Errorf("tie-broken query:\n%s\nwant:\n%s", got, want)
	}
	got = relCSV(t, rel, "group=cohort&agg=count,sum:claims,avg:accuracy,min:accuracy,max:accuracy")
	want = "cohort,count,sum:claims,avg:accuracy,min:accuracy,max:accuracy\n" +
		"alpha,2,200,0.8950,0.8800,0.9100\n" +
		"beta,3,170,0.7300,0.6100,0.9700\n"
	if got != want {
		t.Errorf("group query:\n%s\nwant:\n%s", got, want)
	}
}

func TestExecuteRelationErrors(t *testing.T) {
	rel := sourceRelation()
	if _, err := ExecuteRelation(rel, &Query{DisA: "a", DisB: "b"}); err == nil ||
		!strings.Contains(err.Error(), "disagree applies only") {
		t.Errorf("disagree not rejected: %v", err)
	}
	bad := &Relation{Cols: rel.Cols, Rows: [][]Val{{{Kind: KindString, Str: "x"}}}}
	if _, err := ExecuteRelation(bad, &Query{}); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Errorf("ragged row not rejected: %v", err)
	}
	if _, err := ExecuteRelation(rel, &Query{Where: []Cond{{Col: "nope", Op: "=", Str: "x"}}}); err == nil {
		t.Error("unknown where column not rejected")
	}
	if _, err := ExecuteRelation(rel, &Query{Order: []OrderKey{{Col: "nope"}}}); err == nil {
		t.Error("unknown order column not rejected")
	}
	if _, err := ExecuteRelation(rel, &Query{Cols: []string{"nope"}}); err == nil {
		t.Error("unknown projection column not rejected")
	}
	if _, err := ExecuteRelation(rel, &Query{Group: "nope", Aggs: []Agg{{Fn: "count"}}}); err == nil {
		t.Error("unknown group column not rejected")
	}
	if _, err := ExecuteRelation(rel, &Query{Group: "cohort", Aggs: []Agg{{Fn: "sum", Col: "source"}}}); err == nil {
		t.Error("string aggregate column not rejected")
	}
	// A numeric operand against a string column is a compile error even
	// when the Cond was built by hand rather than parsed.
	if _, err := ExecuteRelation(rel, &Query{Where: []Cond{{Col: "source", Op: "=", Num: 1, num: true}}}); err == nil {
		t.Error("type-mismatched conjunct not rejected")
	}
}

func TestNDJSONRoundTripExactBits(t *testing.T) {
	cols := []Column{{"name", KindString}, {"x", KindFloat}, {"n", KindInt}}
	rows := [][]Val{
		{{Kind: KindString, Str: `we"ird, name`}, {Kind: KindFloat, Num: 0.1 + 0.2}, {Kind: KindInt, Int: -42}},
		{{Kind: KindString, Str: ""}, {Kind: KindFloat, Num: 1e-17}, {Kind: KindInt, Int: 1<<62 + 3}},
		{{Kind: KindString, Str: "plain"}, {Kind: KindFloat, Num: -123456.789012345}, {Kind: KindInt, Int: 0}},
	}
	res := &Result{Cols: cols, Rows: func(yield func([]Val) bool) {
		for _, r := range rows {
			if !yield(r) {
				return
			}
		}
	}}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNDJSON(&buf, cols)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, back) {
		t.Errorf("round trip mismatch:\n%v\n%v", rows, back)
	}
}

func TestReadNDJSONErrors(t *testing.T) {
	cols := []Column{{"name", KindString}, {"x", KindFloat}}
	cases := []struct{ body, wantSub string }{
		{`{"name":"a"}`, `missing column "x"`},
		{`{"name":3,"x":1}`, "not a string"},
		{`{"name":"a","x":"oops"}`, "not a number"},
		{`{"name":"a","x":`, "ndjson row 1"},
	}
	for _, tc := range cases {
		_, err := ReadNDJSON(strings.NewReader(tc.body), cols)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ReadNDJSON(%q) = %v, want substring %q", tc.body, err, tc.wantSub)
		}
	}
	intCols := []Column{{"n", KindInt}}
	if _, err := ReadNDJSON(strings.NewReader(`{"n":1.5}`), intCols); err == nil {
		t.Error("fractional int cell not rejected")
	}
}

func TestWriteFormatDispatch(t *testing.T) {
	res := &Result{Cols: []Column{{"a", KindInt}}, Rows: func(yield func([]Val) bool) {
		yield([]Val{{Kind: KindInt, Int: 1}})
	}}
	var csvBuf, jsonBuf bytes.Buffer
	if err := Write(&csvBuf, res, ""); err != nil || csvBuf.String() != "a\n1\n" {
		t.Errorf("default format: %q, %v", csvBuf.String(), err)
	}
	if err := Write(&jsonBuf, res, "json"); err != nil || jsonBuf.String() != "{\"a\":1}\n" {
		t.Errorf("json format: %q, %v", jsonBuf.String(), err)
	}
	if err := Write(&bytes.Buffer{}, res, "xml"); err == nil {
		t.Error("unknown format not rejected")
	}
}
