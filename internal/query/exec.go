// The query executor. Engine-backed execution pushes predicates into
// the per-shard scans (object-equality conjuncts prune to a single
// shard; the disagree pair resolves to interned ids checked during
// the locked scan) and keeps only bounded state per shard: a top-k
// buffer when the query has a limit, group partials when it
// aggregates. The per-shard results then compose lazily — a k-way
// merge under the query's total order, a projection at yield time —
// so the full estimate set is never materialized.
//
// Determinism contract: every result is totally ordered (the order
// keys, then the object name / the remaining columns), group
// aggregates fold per-shard partials in shard order, and the cluster
// router folds per-member results with the same comparator and the
// same partial-fold tree — so a query's bytes are identical for any
// worker count and for an N-member cluster vs a single N-shard
// engine.
package query

import (
	"fmt"
	"iter"
	"sort"
	"strings"

	"slimfast/internal/stream"
)

// Column indices of EstimateColumns, the engine-backed relation.
const (
	colObject = iota
	colValue
	colConfidence
	colContested
	colChanged
	colSources
	colDissent
)

// Result is an executed query: a schema plus a lazy row sequence.
// Rows yields one reused []Val per row — copy it to retain it beyond
// the iteration step.
type Result struct {
	Cols []Column
	Rows iter.Seq[[]Val]
}

// Relation is a materialized table, the input of ExecuteRelation and
// the router's merge.
type Relation struct {
	Cols []Column
	Rows [][]Val
}

// condP is a compiled where conjunct.
type condP struct {
	ix   int
	kind Kind
	op   string
	str  string
	num  float64
}

func (c *condP) evalStr(s string) bool {
	if c.op == "=" {
		return s == c.str
	}
	return s != c.str
}

func (c *condP) evalNum(f float64) bool {
	switch c.op {
	case "=":
		return f == c.num
	case "!=":
		return f != c.num
	case "<":
		return f < c.num
	case "<=":
		return f <= c.num
	case ">":
		return f > c.num
	default:
		return f >= c.num
	}
}

// orderP is a compiled sort key.
type orderP struct {
	ix   int
	kind Kind
	desc bool
}

// plan is a query compiled against a concrete relation schema.
type plan struct {
	cols     []Column
	conds    []condP
	order    []orderP
	proj     []int
	limit    int    // group-path row cap (rows honor Query.Limit directly)
	groupIx  int    // -1 when not grouping
	aggIx    []int  // aggregated column per agg (-1 for count)
	accKinds []Kind // accumulator kind per agg
	aggs     []Agg
}

// compile resolves a parsed query's column names against a schema.
// defaultProj is used when the query has no explicit projection.
func compile(q *Query, cols []Column, defaultProj []int) (*plan, error) {
	ix := make(map[string]int, len(cols))
	for i, c := range cols {
		ix[c.Name] = i
	}
	p := &plan{cols: cols, groupIx: -1, limit: q.Limit}
	for _, c := range q.Where {
		i, ok := ix[c.Col]
		if !ok {
			return nil, fmt.Errorf("where: relation has no column %q", c.Col)
		}
		kind := cols[i].Kind
		if (kind == KindString) == c.num {
			return nil, fmt.Errorf("where: column %q type mismatch", c.Col)
		}
		p.conds = append(p.conds, condP{ix: i, kind: kind, op: c.Op, str: c.Str, num: c.Num})
	}
	for _, k := range q.Order {
		i, ok := ix[k.Col]
		if !ok {
			return nil, fmt.Errorf("order: relation has no column %q", k.Col)
		}
		p.order = append(p.order, orderP{ix: i, kind: cols[i].Kind, desc: k.Desc})
	}
	if q.Group != "" {
		gi, ok := ix[q.Group]
		if !ok {
			return nil, fmt.Errorf("group: relation has no column %q", q.Group)
		}
		p.groupIx = gi
		p.aggs = q.Aggs
		for _, a := range q.Aggs {
			if a.Fn == "count" {
				p.aggIx = append(p.aggIx, -1)
				p.accKinds = append(p.accKinds, KindInt)
				continue
			}
			ai, okA := ix[a.Col]
			if !okA {
				return nil, fmt.Errorf("agg: relation has no column %q", a.Col)
			}
			if cols[ai].Kind == KindString {
				return nil, fmt.Errorf("agg: column %q is a string", a.Col)
			}
			p.aggIx = append(p.aggIx, ai)
			p.accKinds = append(p.accKinds, cols[ai].Kind)
		}
		return p, nil
	}
	if len(q.Cols) == 0 {
		p.proj = defaultProj
	} else {
		for _, name := range q.Cols {
			i, ok := ix[name]
			if !ok {
				return nil, fmt.Errorf("cols: relation has no column %q", name)
			}
			p.proj = append(p.proj, i)
		}
	}
	return p, nil
}

// projCols returns the output schema of a non-group plan.
func (p *plan) projCols() []Column {
	out := make([]Column, len(p.proj))
	for i, ix := range p.proj {
		out[i] = p.cols[ix]
	}
	return out
}

// groupCols returns the output schema of a group plan: the group key
// then one column per aggregate (count is an int, avg a float, the
// rest inherit the aggregated column's kind).
func (p *plan) groupCols() []Column {
	out := []Column{p.cols[p.groupIx]}
	for i, a := range p.aggs {
		kind := p.accKinds[i]
		if a.Fn == "avg" {
			kind = KindFloat
		}
		out = append(out, Column{Name: a.Name(), Kind: kind})
	}
	return out
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// ---- engine-backed execution over stream.Row ----

func estRowStr(r *stream.Row, ix int) string {
	if ix == colObject {
		return r.Object
	}
	return r.Value
}

func estRowNum(r *stream.Row, ix int) float64 {
	switch ix {
	case colConfidence:
		return r.Confidence
	case colContested:
		return r.Contested
	case colChanged:
		return float64(r.Changed)
	case colSources:
		return float64(r.Sources)
	default:
		return float64(r.Dissent)
	}
}

// matchRow evaluates the compiled conjuncts (and the disagree gate)
// against a borrowed scan row.
func (p *plan) matchRow(r *stream.Row, pair bool) bool {
	if pair && !r.Disagree {
		return false
	}
	for i := range p.conds {
		c := &p.conds[i]
		if c.kind == KindString {
			if !c.evalStr(estRowStr(r, c.ix)) {
				return false
			}
		} else if !c.evalNum(estRowNum(r, c.ix)) {
			return false
		}
	}
	return true
}

// cmpRow is the query's total order over estimate rows: the order
// keys, then the (unique) object name.
func (p *plan) cmpRow(a, b *stream.Row) int {
	for _, k := range p.order {
		var c int
		if k.kind == KindString {
			c = strings.Compare(estRowStr(a, k.ix), estRowStr(b, k.ix))
		} else {
			c = cmpFloat(estRowNum(a, k.ix), estRowNum(b, k.ix))
		}
		if k.desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return strings.Compare(a.Object, b.Object)
}

func (p *plan) sortRows(buf []stream.Row) {
	sort.Slice(buf, func(i, j int) bool { return p.cmpRow(&buf[i], &buf[j]) < 0 })
}

// projectRow fills out (a reused slice) with the projected cells of r.
func (p *plan) projectRow(r *stream.Row, out []Val) {
	for i, ix := range p.proj {
		col := &p.cols[ix]
		switch col.Kind {
		case KindString:
			out[i] = Val{Kind: KindString, Str: estRowStr(r, ix)}
		case KindFloat:
			out[i] = Val{Kind: KindFloat, Num: estRowNum(r, ix)}
		default:
			out[i] = Val{Kind: KindInt, Int: int64(estRowNum(r, ix))}
		}
	}
}

// shardList applies the one structural pushdown the hash layout
// allows: an object-equality conjunct pins the query to a single
// shard, so the other shards are never even snapshotted.
func shardList(eng *stream.Engine, q *Query) []int {
	n := eng.NumShards()
	for _, c := range q.Where {
		if c.Col == "object" && c.Op == "=" {
			return []int{stream.ShardIndex(c.Str, n)}
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}

// Execute runs a compiled query against a live engine. Safe to call
// during ingest (each shard is scanned under its read lock); for
// byte-deterministic results quiesce ingest, as with /estimates.
func Execute(eng *stream.Engine, q *Query) (*Result, error) {
	p, err := compile(q, EstimateColumns(), []int{colObject, colValue, colConfidence})
	if err != nil {
		return nil, err
	}
	opt := stream.NoPair
	pair := false
	if q.DisA != "" {
		ia, ib, ok := eng.SourceIDs(q.DisA, q.DisB)
		if !ok {
			// One of the pair has never been seen: no row can have
			// them disagreeing.
			return emptyResult(p), nil
		}
		opt.PairA, opt.PairB = ia, ib
		pair = true
	}
	shards := shardList(eng, q)
	if p.groupIx >= 0 {
		global := newGroupTable(p)
		for _, s := range shards {
			local := newGroupTable(p)
			eng.ScanShard(s, opt, func(r *stream.Row) bool {
				if p.matchRow(r, pair) {
					local.addRow(p, r)
				}
				return true
			})
			global.fold(p, local)
		}
		return global.finalize(p), nil
	}
	parts := make([][]stream.Row, len(shards))
	for i, s := range shards {
		parts[i] = collectShard(eng, s, p, opt, pair, q.Limit)
	}
	return &Result{Cols: p.projCols(), Rows: p.mergeRows(parts, q.Limit)}, nil
}

// ExecutePartial runs a group query but stops before finalizing: the
// result is the per-group partial accumulators (count plus raw
// sums/mins/maxes), the cluster's internal scatter format. The router
// folds members' partials in node order — the same fold tree a single
// N-shard engine uses over its shards — then finalizes once.
func ExecutePartial(eng *stream.Engine, q *Query) (*Result, error) {
	if q.Group == "" {
		return nil, fmt.Errorf("partial: not a group query")
	}
	p, err := compile(q, EstimateColumns(), nil)
	if err != nil {
		return nil, err
	}
	opt := stream.NoPair
	pair := false
	if q.DisA != "" {
		ia, ib, ok := eng.SourceIDs(q.DisA, q.DisB)
		if !ok {
			return &Result{Cols: p.partialCols(), Rows: func(func([]Val) bool) {}}, nil
		}
		opt.PairA, opt.PairB = ia, ib
		pair = true
	}
	global := newGroupTable(p)
	for _, s := range shardList(eng, q) {
		local := newGroupTable(p)
		eng.ScanShard(s, opt, func(r *stream.Row) bool {
			if p.matchRow(r, pair) {
				local.addRow(p, r)
			}
			return true
		})
		global.fold(p, local)
	}
	return global.partial(p), nil
}

// collectShard scans one shard with the predicates pushed down,
// keeping a bounded buffer when the query has a limit: the buffer is
// sorted and cut back to the limit every time it reaches a small
// multiple of it, so a selective query over a huge shard allocates
// O(limit), not O(shard).
func collectShard(eng *stream.Engine, s int, p *plan, opt stream.ScanOptions, pair bool, limit int) []stream.Row {
	var buf []stream.Row
	cut := 0
	if limit > 0 {
		cut = 4*limit + 16
	}
	eng.ScanShard(s, opt, func(r *stream.Row) bool {
		if !p.matchRow(r, pair) {
			return true
		}
		buf = append(buf, *r)
		if cut > 0 && len(buf) >= cut {
			p.sortRows(buf)
			buf = buf[:limit]
		}
		return true
	})
	p.sortRows(buf)
	if limit > 0 && len(buf) > limit {
		buf = buf[:limit]
	}
	return buf
}

// mergeRows lazily k-way-merges the per-shard sorted buffers under
// the plan's total order, projecting at yield time. Cross-shard ties
// are impossible (an object lives in exactly one shard), so the merge
// order — and therefore the output bytes — does not depend on the
// shard iteration pattern.
func (p *plan) mergeRows(parts [][]stream.Row, limit int) iter.Seq[[]Val] {
	return func(yield func([]Val) bool) {
		heads := make([]int, len(parts))
		out := make([]Val, len(p.proj))
		n := 0
		for limit <= 0 || n < limit {
			best := -1
			for i := range parts {
				if heads[i] >= len(parts[i]) {
					continue
				}
				if best < 0 || p.cmpRow(&parts[i][heads[i]], &parts[best][heads[best]]) < 0 {
					best = i
				}
			}
			if best < 0 {
				return
			}
			p.projectRow(&parts[best][heads[best]], out)
			heads[best]++
			if !yield(out) {
				return
			}
			n++
		}
	}
}

func emptyResult(p *plan) *Result {
	cols := p.projCols()
	if p.groupIx >= 0 {
		cols = p.groupCols()
	}
	return &Result{Cols: cols, Rows: func(func([]Val) bool) {}}
}

// ---- group aggregation ----

// groupAcc is one group's partial state: the row count plus one
// accumulator per aggregate (sum for sum/avg, running min/max).
type groupAcc struct {
	key   Val
	count int64
	accs  []Val
}

// groupTable accumulates groups for one scan scope (a shard, or a
// fold of shards/members).
type groupTable struct {
	m map[Val]*groupAcc
}

func newGroupTable(p *plan) *groupTable {
	return &groupTable{m: make(map[Val]*groupAcc)}
}

func colVal(cols []Column, ix int, r *stream.Row) Val {
	switch cols[ix].Kind {
	case KindString:
		return Val{Kind: KindString, Str: estRowStr(r, ix)}
	case KindFloat:
		return Val{Kind: KindFloat, Num: estRowNum(r, ix)}
	default:
		return Val{Kind: KindInt, Int: int64(estRowNum(r, ix))}
	}
}

// addRow folds one estimate row into the table.
func (g *groupTable) addRow(p *plan, r *stream.Row) {
	key := colVal(p.cols, p.groupIx, r)
	acc := g.m[key]
	if acc == nil {
		acc = &groupAcc{key: key, count: 1, accs: make([]Val, len(p.aggs))}
		for i, ix := range p.aggIx {
			if ix >= 0 {
				acc.accs[i] = colVal(p.cols, ix, r)
			} else {
				acc.accs[i] = Val{Kind: KindInt}
			}
		}
		g.m[key] = acc
		return
	}
	acc.count++
	for i, ix := range p.aggIx {
		if ix >= 0 {
			acc.accs[i] = combine(p.aggs[i].Fn, acc.accs[i], colVal(p.cols, ix, r))
		}
	}
}

// combine merges a new value (or a partial) into an accumulator.
// sum and avg add; min/max keep the extremum. Int accumulators stay
// exact; float addition order is fixed by the caller (slot order
// within a shard, shard/member order across).
func combine(fn string, a, b Val) Val {
	switch fn {
	case "min":
		if b.num() < a.num() {
			return b
		}
		return a
	case "max":
		if b.num() > a.num() {
			return b
		}
		return a
	default: // sum, avg
		if a.Kind == KindInt {
			a.Int += b.Int
			return a
		}
		a.Num += b.Num
		return a
	}
}

// fold merges a finer-grained table (one shard, one member) into g.
// Per group the accumulators combine exactly once per fold, so the
// float addition tree is "partial per scope, folded in scope order" —
// identical for a single N-shard engine and an N-member cluster.
func (g *groupTable) fold(p *plan, local *groupTable) {
	for key, la := range local.m {
		acc := g.m[key]
		if acc == nil {
			g.m[key] = la
			continue
		}
		acc.count += la.count
		for i, a := range p.aggs {
			if p.aggIx[i] >= 0 {
				acc.accs[i] = combine(a.Fn, acc.accs[i], la.accs[i])
			}
		}
	}
}

// sortedAccs returns the groups sorted by key ascending — the fixed
// output (and partial emission) order.
func (g *groupTable) sortedAccs() []*groupAcc {
	out := make([]*groupAcc, 0, len(g.m))
	for _, acc := range g.m {
		out = append(out, acc)
	}
	sort.Slice(out, func(i, j int) bool { return cmpVal(out[i].key, out[j].key) < 0 })
	return out
}

// cmpVal orders two cells of the same column.
func cmpVal(a, b Val) int {
	if a.Kind == KindString {
		return strings.Compare(a.Str, b.Str)
	}
	return cmpFloat(a.num(), b.num())
}

// finalize turns the folded table into the group query's result:
// rows sorted by group key, avg divided out once, the limit applied
// here (never to partials — truncating a partial would corrupt the
// cluster fold).
func (g *groupTable) finalize(p *plan) *Result {
	accs := g.sortedAccs()
	if p.limit > 0 && len(accs) > p.limit {
		accs = accs[:p.limit]
	}
	cols := p.groupCols()
	rows := func(yield func([]Val) bool) {
		out := make([]Val, len(cols))
		for _, acc := range accs {
			out[0] = acc.key
			for i, a := range p.aggs {
				switch a.Fn {
				case "count":
					out[i+1] = Val{Kind: KindInt, Int: acc.count}
				case "avg":
					out[i+1] = Val{Kind: KindFloat, Num: acc.accs[i].num() / float64(acc.count)}
				default:
					out[i+1] = acc.accs[i]
				}
			}
			if !yield(out) {
				return
			}
		}
	}
	return &Result{Cols: cols, Rows: rows}
}

// partialCols is the wire schema of a partial group result: the group
// key, the count, then one raw accumulator per aggregate.
func (p *plan) partialCols() []Column {
	cols := []Column{p.cols[p.groupIx], {Name: "count", Kind: KindInt}}
	for i, a := range p.aggs {
		cols = append(cols, Column{Name: "acc:" + a.Name(), Kind: p.accKinds[i]})
	}
	return cols
}

// partial emits the folded table unfinalized, sorted by group key.
func (g *groupTable) partial(p *plan) *Result {
	accs := g.sortedAccs()
	cols := p.partialCols()
	rows := func(yield func([]Val) bool) {
		out := make([]Val, len(cols))
		for _, acc := range accs {
			out[0] = acc.key
			out[1] = Val{Kind: KindInt, Int: acc.count}
			for i := range p.aggs {
				out[i+2] = acc.accs[i]
			}
			if !yield(out) {
				return
			}
		}
	}
	return &Result{Cols: cols, Rows: rows}
}

// PartialColumns exposes the partial wire schema for a group query —
// what the router parses member responses against.
func PartialColumns(q *Query) ([]Column, error) {
	p, err := compile(q, EstimateColumns(), nil)
	if err != nil {
		return nil, err
	}
	if p.groupIx < 0 {
		return nil, fmt.Errorf("partial: not a group query")
	}
	return p.partialCols(), nil
}

// MergePartials folds per-member partial rows (node order) and
// finalizes — the router half of a cluster group query.
func MergePartials(q *Query, members [][][]Val) (*Result, error) {
	p, err := compile(q, EstimateColumns(), nil)
	if err != nil {
		return nil, err
	}
	if p.groupIx < 0 {
		return nil, fmt.Errorf("partial: not a group query")
	}
	global := newGroupTable(p)
	for _, rows := range members {
		for _, row := range rows {
			if len(row) != 2+len(p.aggs) {
				return nil, fmt.Errorf("partial: row has %d cells, want %d", len(row), 2+len(p.aggs))
			}
			key := row[0]
			acc := global.m[key]
			if acc == nil {
				acc = &groupAcc{key: key, count: row[1].Int, accs: append([]Val(nil), row[2:]...)}
				global.m[key] = acc
				continue
			}
			acc.count += row[1].Int
			for i, a := range p.aggs {
				if p.aggIx[i] >= 0 {
					acc.accs[i] = combine(a.Fn, acc.accs[i], row[2+i])
				}
			}
		}
	}
	return global.finalize(p), nil
}
