// Package query is the relational query surface over live estimates:
// a small composable layer — filter, project, order, limit,
// group-aggregate — expressed as lazy iterators over the streaming
// engine's per-shard scans, in the streaming-relational-algebra style
// (janus-datalog) where operators compose over iterators and only the
// bounded pieces (per-shard top-k buffers, group partials) ever
// materialize.
//
// The same URL-query language drives three frontends: the
// `GET /v1/estimates` parameters, the `slimfast query` subcommand
// (live server or checkpoint file), and the cluster router's
// scatter-gather (which pushes the query to every member and merges
// with the identical comparator, so cluster results are bit-identical
// to a single N-shard engine).
//
// Grammar (all parameters optional; repeated `where` params AND
// together):
//
//	where=<col><op><operand>   op ∈ = != < <= > >= (strings: = != only)
//	order=[-]col[,[-]col...]   `-` = descending
//	limit=N
//	cols=col[,col...]          projection (default object,value,confidence)
//	group=<col>&agg=fn[,fn...] fn ∈ count | sum:col | avg:col | min:col | max:col
//	disagree=A,B               keep rows where sources A and B claim different values
//
// Every query result carries a total order — the order keys, then
// every remaining column left to right — so output bytes depend only
// on the engine's logical state, never on shard/worker scheduling.
package query

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// Kind is a column's scalar type.
type Kind uint8

const (
	KindString Kind = iota
	KindFloat
	KindInt
)

// Column names and types one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Val is one cell: a tagged scalar. Val is comparable, so it can key
// group-by maps directly.
type Val struct {
	Kind Kind
	Str  string
	Num  float64
	Int  int64
}

// String returns the CSV cell form: floats as %.4f (the wire format
// the legacy CSV endpoints use), ints and strings verbatim.
func (v Val) String() string {
	switch v.Kind {
	case KindFloat:
		return strconv.FormatFloat(v.Num, 'f', 4, 64)
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	default:
		return v.Str
	}
}

// num returns the cell as a float64 for comparisons (exact for the
// int ranges this engine produces).
func (v Val) num() float64 {
	if v.Kind == KindInt {
		return float64(v.Int)
	}
	return v.Num
}

// EstimateColumns is the schema of the estimates relation, in
// serving order. The first column is also the default sort key.
func EstimateColumns() []Column {
	return []Column{
		{"object", KindString},
		{"value", KindString},
		{"confidence", KindFloat},
		{"contested", KindFloat},
		{"changed", KindInt},
		{"sources", KindInt},
		{"dissent", KindInt},
	}
}

// Cond is one conjunct of the where clause.
type Cond struct {
	Col string
	Op  string  // "=", "!=", "<", "<=", ">", ">="
	Str string  // operand for string columns
	Num float64 // operand for numeric columns
	num bool    // operand parsed numerically
}

// OrderKey is one sort key.
type OrderKey struct {
	Col  string
	Desc bool
}

// Agg is one aggregate of a group query.
type Agg struct {
	Fn  string // "count", "sum", "avg", "min", "max"
	Col string // aggregated column ("" for count)
}

// Name returns the output column name of the aggregate.
func (a Agg) Name() string {
	if a.Fn == "count" {
		return "count"
	}
	return a.Fn + ":" + a.Col
}

// Query is a parsed query. The zero value (or a Parse of no
// parameters) is the plain full dump.
type Query struct {
	Where []Cond
	Order []OrderKey // empty = default (first column ascending)
	Limit int        // 0 = unlimited
	Cols  []string   // projection; empty = relation default
	Group string     // group-by column; "" = no grouping
	Aggs  []Agg      // aggregates when Group is set
	DisA  string     // disagree pair; "" = off
	DisB  string
}

// IsPlain reports whether the query is the bare full dump — the case
// the serving layer answers with its legacy shard-major fast path.
func (q *Query) IsPlain() bool {
	return len(q.Where) == 0 && len(q.Order) == 0 && q.Limit == 0 &&
		len(q.Cols) == 0 && q.Group == "" && q.DisA == ""
}

// transportKeys are URL parameters the query language shares the
// namespace with but does not interpret: output format selection and
// the cluster's internal partial-aggregate flag.
var transportKeys = map[string]bool{"format": true, "partial": true}

// ops in longest-match-first order so "<=" wins over "<".
var ops = []string{"<=", ">=", "!=", "=", "<", ">"}

// Parse builds a Query from URL parameters, validated against the
// relation's columns. Unknown parameters and unknown columns are
// errors (a typo must not silently dump everything).
func Parse(vals url.Values, cols []Column) (*Query, error) {
	q := &Query{}
	colKind := make(map[string]Kind, len(cols))
	for _, c := range cols {
		colKind[c.Name] = c.Kind
	}
	for key := range vals {
		switch key {
		case "where", "order", "limit", "cols", "group", "agg", "disagree":
		default:
			if transportKeys[key] {
				continue
			}
			return nil, fmt.Errorf("unknown query parameter %q", key)
		}
	}
	for _, raw := range vals["where"] {
		cond, err := parseCond(raw, colKind)
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, cond)
	}
	if raw := vals.Get("order"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			key := OrderKey{Col: part}
			if strings.HasPrefix(part, "-") {
				key = OrderKey{Col: part[1:], Desc: true}
			}
			if _, ok := colKind[key.Col]; !ok {
				return nil, fmt.Errorf("order: unknown column %q", key.Col)
			}
			q.Order = append(q.Order, key)
		}
	}
	if raw := vals.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("limit: want a positive integer, got %q", raw)
		}
		q.Limit = n
	}
	if raw := vals.Get("cols"); raw != "" {
		for _, name := range strings.Split(raw, ",") {
			if _, ok := colKind[name]; !ok {
				return nil, fmt.Errorf("cols: unknown column %q", name)
			}
			q.Cols = append(q.Cols, name)
		}
	}
	if raw := vals.Get("group"); raw != "" {
		if _, ok := colKind[raw]; !ok {
			return nil, fmt.Errorf("group: unknown column %q", raw)
		}
		q.Group = raw
		aggRaw := vals.Get("agg")
		if aggRaw == "" {
			aggRaw = "count"
		}
		for _, part := range strings.Split(aggRaw, ",") {
			agg, err := parseAgg(part, colKind)
			if err != nil {
				return nil, err
			}
			q.Aggs = append(q.Aggs, agg)
		}
	} else if vals.Get("agg") != "" {
		return nil, fmt.Errorf("agg requires group")
	}
	if q.Group != "" && (len(q.Cols) > 0 || len(q.Order) > 0) {
		return nil, fmt.Errorf("group queries fix their own columns and order (group key ascending); drop cols/order")
	}
	if raw := vals.Get("disagree"); raw != "" {
		a, b, ok := strings.Cut(raw, ",")
		if !ok || a == "" || b == "" {
			return nil, fmt.Errorf("disagree: want two comma-separated source names, got %q", raw)
		}
		q.DisA, q.DisB = a, b
	}
	return q, nil
}

// parseCond parses one where conjunct: col, operator, operand.
func parseCond(raw string, colKind map[string]Kind) (Cond, error) {
	for _, op := range ops {
		i := strings.Index(raw, op)
		if i <= 0 {
			continue
		}
		col, operand := raw[:i], raw[i+len(op):]
		kind, ok := colKind[col]
		if !ok {
			return Cond{}, fmt.Errorf("where: unknown column %q in %q", col, raw)
		}
		cond := Cond{Col: col, Op: op}
		if kind == KindString {
			if op != "=" && op != "!=" {
				return Cond{}, fmt.Errorf("where: column %q is a string; only = and != apply", col)
			}
			cond.Str = operand
			return cond, nil
		}
		n, err := strconv.ParseFloat(operand, 64)
		if err != nil {
			return Cond{}, fmt.Errorf("where: column %q is numeric; cannot parse %q", col, operand)
		}
		cond.Num, cond.num = n, true
		return cond, nil
	}
	return Cond{}, fmt.Errorf("where: want <col><op><value> with op one of = != < <= > >=, got %q", raw)
}

// parseAgg parses one aggregate: "count" or "fn:col" over a numeric
// column.
func parseAgg(raw string, colKind map[string]Kind) (Agg, error) {
	if raw == "count" {
		return Agg{Fn: "count"}, nil
	}
	fn, col, ok := strings.Cut(raw, ":")
	if !ok {
		return Agg{}, fmt.Errorf("agg: want count or fn:col, got %q", raw)
	}
	switch fn {
	case "sum", "avg", "min", "max":
	default:
		return Agg{}, fmt.Errorf("agg: unknown function %q (want count, sum, avg, min, max)", fn)
	}
	kind, okCol := colKind[col]
	if !okCol {
		return Agg{}, fmt.Errorf("agg: unknown column %q", col)
	}
	if kind == KindString {
		return Agg{}, fmt.Errorf("agg: column %q is a string; aggregate a numeric column", col)
	}
	return Agg{Fn: fn, Col: col}, nil
}

// Values re-encodes the query as URL parameters — the canonical form
// the router forwards to members. extraCols, when non-empty, replaces
// the projection (the router widens it so order keys survive the
// member round trip).
func (q *Query) Values(extraCols []string) url.Values {
	vals := url.Values{}
	for _, c := range q.Where {
		operand := c.Str
		if c.num {
			operand = strconv.FormatFloat(c.Num, 'g', -1, 64)
		}
		vals.Add("where", c.Col+c.Op+operand)
	}
	if len(q.Order) > 0 {
		parts := make([]string, len(q.Order))
		for i, k := range q.Order {
			parts[i] = k.Col
			if k.Desc {
				parts[i] = "-" + k.Col
			}
		}
		vals.Set("order", strings.Join(parts, ","))
	}
	if q.Limit > 0 {
		vals.Set("limit", strconv.Itoa(q.Limit))
	}
	cols := q.Cols
	if len(extraCols) > 0 {
		cols = extraCols
	}
	if len(cols) > 0 {
		vals.Set("cols", strings.Join(cols, ","))
	}
	if q.Group != "" {
		vals.Set("group", q.Group)
		parts := make([]string, len(q.Aggs))
		for i, a := range q.Aggs {
			parts[i] = a.Fn
			if a.Fn != "count" {
				parts[i] = a.Fn + ":" + a.Col
			}
		}
		vals.Set("agg", strings.Join(parts, ","))
	}
	if q.DisA != "" {
		vals.Set("disagree", q.DisA+","+q.DisB)
	}
	return vals
}
