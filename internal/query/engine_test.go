package query

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"slimfast/internal/stream"
)

// goldenClaims builds the engine-backed test stream: 120 objects with
// a strong "t0" majority, a contrarian source s7 ("w" on every third
// object), scattered "alt" dissent, and every tenth object weakly
// supported (two claims only) so a later wave can flip it.
func goldenClaims() [][3]string {
	var out [][3]string
	for o := 0; o < 120; o++ {
		obj := fmt.Sprintf("o%03d", o)
		if o%10 == 0 {
			out = append(out, [3]string{"s0", obj, "t0"}, [3]string{"s1", obj, "t0"})
			continue
		}
		for s := 0; s < 8; s++ {
			val := "t0"
			if s == 7 && o%3 == 0 {
				val = "w"
			} else if (o+s)%13 == 0 {
				val = "alt"
			}
			out = append(out, [3]string{fmt.Sprintf("s%d", s), obj, val})
		}
	}
	return out
}

// flipClaims is the second wave: nine fresh sources flip every weakly
// supported object to "flip".
func flipClaims() [][3]string {
	var out [][3]string
	for o := 0; o < 120; o += 10 {
		obj := fmt.Sprintf("o%03d", o)
		for s := 0; s < 9; s++ {
			out = append(out, [3]string{fmt.Sprintf("e%d", s), obj, "flip"})
		}
	}
	return out
}

// ingest feeds triples with a fixed batching pattern, so epoch
// boundaries land identically across worker counts.
func ingest(e *stream.Engine, triples [][3]string) {
	const chunk = 100
	for lo := 0; lo < len(triples); lo += chunk {
		hi := min(lo+chunk, len(triples))
		batch := make([]stream.Triple, hi-lo)
		for i, tr := range triples[lo:hi] {
			batch[i] = stream.Triple{Source: tr[0], Object: tr[1], Value: tr[2]}
		}
		e.ObserveBatch(batch)
	}
}

func buildEngine(t testing.TB, shards, workers, epochLen int, waves ...[][3]string) *stream.Engine {
	t.Helper()
	opts := stream.DefaultEngineOptions()
	opts.Shards, opts.Workers, opts.EpochLength = shards, workers, epochLen
	e, err := stream.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range waves {
		ingest(e, w)
	}
	return e
}

// queryNDJSON executes a raw query and renders NDJSON — the format
// whose shortest-round-trip floats expose every bit, so byte equality
// here is bit equality of the result.
func queryNDJSON(t *testing.T, e *stream.Engine, raw string) string {
	t.Helper()
	res, err := Execute(e, parseQ(t, raw))
	if err != nil {
		t.Fatalf("Execute(%q): %v", raw, err)
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestEngineQueryDeterministicAcrossWorkers is the worker-count golden
// gate: for a fixed shard count, every query's bytes are identical
// whether one goroutine ingested or four.
func TestEngineQueryDeterministicAcrossWorkers(t *testing.T) {
	queries := []string{
		"",
		"where=confidence<0.95&order=-contested&limit=10",
		"cols=object,value,changed,sources,dissent&where=dissent>0",
		"group=value&agg=count,sum:confidence,avg:confidence,min:confidence,max:confidence",
		"disagree=s0,s7&cols=object,value",
		"where=object=o037",
		"order=-changed,object&limit=5&cols=object,changed",
	}
	e1 := buildEngine(t, 4, 1, 64, goldenClaims(), flipClaims())
	e4 := buildEngine(t, 4, 4, 64, goldenClaims(), flipClaims())
	for _, raw := range queries {
		a, b := queryNDJSON(t, e1, raw), queryNDJSON(t, e4, raw)
		if a == "" {
			t.Errorf("query %q returned no bytes", raw)
		}
		if a != b {
			t.Errorf("query %q differs between workers 1 and 4:\n%s\nvs\n%s", raw, a, b)
		}
	}
}

// TestEngineQueryAcrossShardCounts checks the shard-count-stable slice
// of the relation (MAP values, counts — float bits legitimately vary
// with the shard fold tree, per the engine's Shards contract).
func TestEngineQueryAcrossShardCounts(t *testing.T) {
	queries := []string{
		"cols=object,value",
		"group=value&agg=count",
		"where=object=o005&cols=object,value",
		"disagree=s0,s7&cols=object",
	}
	base := buildEngine(t, 1, 2, 64, goldenClaims(), flipClaims())
	for _, shards := range []int{2, 4} {
		e := buildEngine(t, shards, 2, 64, goldenClaims(), flipClaims())
		for _, raw := range queries {
			a, b := queryNDJSON(t, base, raw), queryNDJSON(t, e, raw)
			if a != b {
				t.Errorf("query %q differs between 1 and %d shards:\n%s\nvs\n%s", raw, shards, a, b)
			}
		}
	}
}

// TestFlippedSinceEpoch drives the ROADMAP question "which estimates
// flipped since epoch E": the weak objects flipped by the second wave
// are exactly the rows with changed >= the epoch between the waves.
func TestFlippedSinceEpoch(t *testing.T) {
	e := buildEngine(t, 4, 4, 64, goldenClaims())
	// Advance the epoch clock strictly past every wave-1 changed stamp:
	// 130 one-off claims on a sacrificial object cross at least two
	// epoch boundaries without touching any other object's MAP.
	var pad [][3]string
	for s := 0; s < 130; s++ {
		pad = append(pad, [3]string{fmt.Sprintf("f%d", s), "pad", "t0"})
	}
	ingest(e, pad)
	cutoff := e.CurrentEpoch()
	if cutoff <= 1 {
		t.Fatalf("epoch did not advance during wave 1 (epoch=%d)", cutoff)
	}
	ingest(e, flipClaims())

	var want []string
	for o := 0; o < 120; o += 10 {
		want = append(want, fmt.Sprintf("o%03d,flip", o))
	}
	for name, raw := range map[string]string{
		"changed": fmt.Sprintf("where=changed>=%d&cols=object,value", cutoff),
		"value":   "where=value=flip&cols=object,value",
	} {
		res, err := Execute(e, parseQ(t, raw))
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for row := range res.Rows {
			got = append(got, row[0].Str+","+row[1].Str)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s query %q = %v, want %v", name, raw, got, want)
		}
	}
}

// TestDisagreePair checks the disagree filter against the claim rule
// the stream was generated from.
func TestDisagreePair(t *testing.T) {
	e := buildEngine(t, 4, 2, 64, goldenClaims())
	var want []string
	for o := 0; o < 120; o++ {
		if o%10 == 0 {
			continue // weak objects: s7 never claims
		}
		v0, v7 := "t0", "t0"
		if o%13 == 0 {
			v0 = "alt"
		}
		if o%3 == 0 {
			v7 = "w"
		} else if (o+7)%13 == 0 {
			v7 = "alt"
		}
		if v0 != v7 {
			want = append(want, fmt.Sprintf("o%03d", o))
		}
	}
	sort.Strings(want)
	res, err := Execute(e, parseQ(t, "disagree=s0,s7&cols=object"))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for row := range res.Rows {
		got = append(got, row[0].Str)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disagree rows = %v, want %v", got, want)
	}

	// An unknown source cannot disagree with anyone: empty, not an error.
	if out := queryNDJSON(t, e, "disagree=s0,ghost"); out != "" {
		t.Errorf("unknown disagree source returned rows:\n%s", out)
	}
}

// TestClusterStyleMergeMatchesSingleEngine proves the scatter-gather
// contract at the query layer: three single-shard engines holding the
// ShardIndex(·,3) partitions, merged with the relation comparator (row
// queries) or the node-order partial fold (group queries), reproduce a
// single 3-shard engine bit for bit. Epoch refresh is external-length
// so σ stays at the shared prior, as cluster members defer to the
// router's barriers.
func TestClusterStyleMergeMatchesSingleEngine(t *testing.T) {
	all := append(goldenClaims(), flipClaims()...)
	single := buildEngine(t, 3, 2, stream.ExternalEpochLength, all)
	members := make([]*stream.Engine, 3)
	for i := range members {
		var part [][3]string
		for _, tr := range all {
			if stream.ShardIndex(tr[1], 3) == i {
				part = append(part, tr)
			}
		}
		members[i] = buildEngine(t, 1, 2, stream.ExternalEpochLength, part)
	}

	t.Run("rows", func(t *testing.T) {
		// Member projection carries the order and filter columns, as the
		// router widens it; disagree is applied member-side and cleared
		// before the merge.
		memberRaw := "where=confidence<0.999&order=-contested&limit=12&cols=object,value,confidence,contested&disagree=s0,s7"
		var rel *Relation
		for _, m := range members {
			res, err := Execute(m, parseQ(t, memberRaw))
			if err != nil {
				t.Fatal(err)
			}
			part := Materialize(res)
			if rel == nil {
				rel = part
			} else {
				rel.Rows = append(rel.Rows, part.Rows...)
			}
		}
		mergeQ := parseQ(t, strings.Replace(memberRaw, "&disagree=s0,s7", "", 1))
		merged, err := ExecuteRelation(rel, mergeQ)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteNDJSON(&buf, merged); err != nil {
			t.Fatal(err)
		}
		want := queryNDJSON(t, single, memberRaw)
		if want == "" {
			t.Fatal("single-engine query returned no rows")
		}
		if buf.String() != want {
			t.Errorf("merged rows differ from single engine:\n%s\nvs\n%s", buf.String(), want)
		}
	})

	t.Run("group", func(t *testing.T) {
		raw := "group=value&agg=count,sum:confidence,avg:confidence,min:confidence,max:confidence"
		q := parseQ(t, raw)
		parts := make([][][]Val, len(members))
		for i, m := range members {
			res, err := ExecutePartial(m, q)
			if err != nil {
				t.Fatal(err)
			}
			parts[i] = Materialize(res).Rows
		}
		merged, err := MergePartials(q, parts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteNDJSON(&buf, merged); err != nil {
			t.Fatal(err)
		}
		want := queryNDJSON(t, single, raw)
		if buf.String() != want {
			t.Errorf("merged group differs from single engine:\n%s\nvs\n%s", buf.String(), want)
		}
	})
}

func TestPartialAPIErrors(t *testing.T) {
	e := buildEngine(t, 2, 1, 64, goldenClaims())
	plain := parseQ(t, "limit=3")
	if _, err := ExecutePartial(e, plain); err == nil {
		t.Error("ExecutePartial accepted a non-group query")
	}
	if _, err := PartialColumns(plain); err == nil {
		t.Error("PartialColumns accepted a non-group query")
	}
	g := parseQ(t, "group=value&agg=count,sum:confidence")
	if _, err := MergePartials(g, [][][]Val{{{{Kind: KindString, Str: "x"}}}}); err == nil ||
		!strings.Contains(err.Error(), "cells") {
		t.Errorf("ragged partial row not rejected: %v", err)
	}
	if cols, err := PartialColumns(g); err != nil || len(cols) != 4 {
		t.Errorf("PartialColumns = %v, %v; want 4 columns", cols, err)
	}
	// Partial of a group query whose disagree pair is unknown: empty.
	gp := parseQ(t, "group=value&disagree=s0,ghost")
	res, err := ExecutePartial(e, gp)
	if err != nil {
		t.Fatal(err)
	}
	if rows := Materialize(res).Rows; len(rows) != 0 {
		t.Errorf("unknown-pair partial returned %d rows", len(rows))
	}
}
