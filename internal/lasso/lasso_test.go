package lasso

import (
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/synth"
)

func lassoInstance(t *testing.T) *synth.Instance {
	t.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "lasso", Sources: 120, Objects: 800, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.15,
		MeanAccuracy: 0.68, AccuracySD: 0.15, MinAccuracy: 0.35, MaxAccuracy: 0.97,
		Features: []synth.FeatureGroup{
			{Name: "signal", Cardinality: 4, Informative: true, WeightScale: 2.5},
			{Name: "noise", Cardinality: 4, Informative: false},
		},
		EnsureTruthObserved: true,
		Seed:                81,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestComputeValidation(t *testing.T) {
	inst := lassoInstance(t)
	if _, err := Compute(inst.Dataset, nil, DefaultOptions()); err == nil {
		t.Error("no truth should error")
	}
	opts := DefaultOptions()
	opts.Steps = 1
	if _, err := Compute(inst.Dataset, inst.Gold, opts); err == nil {
		t.Error("1 step should error")
	}
	// Dataset without features.
	b := data.NewBuilder("nf")
	b.ObserveNames("s", "o", "v")
	d := b.Freeze()
	if _, err := Compute(d, data.TruthMap{0: 0}, DefaultOptions()); err == nil {
		t.Error("no features should error")
	}
}

func TestPathShapeAndMonotonicity(t *testing.T) {
	inst := lassoInstance(t)
	opts := DefaultOptions()
	opts.Steps = 12
	p, err := Compute(inst.Dataset, inst.Gold, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Weights) != 12 || len(p.Lambdas) != 12 {
		t.Fatalf("path has %d steps, want 12", len(p.Weights))
	}
	// Lambdas strictly descending.
	for i := 1; i < len(p.Lambdas); i++ {
		if p.Lambdas[i] >= p.Lambdas[i-1] {
			t.Fatal("lambdas must descend")
		}
	}
	// At the strongest penalty all feature weights are zero.
	for k, w := range p.Weights[0] {
		if w != 0 {
			t.Errorf("feature %d nonzero at lambda_max: %v", k, w)
		}
	}
	// Sparsity decreases (weakly) along the path.
	nonzero := func(ws []float64) int {
		n := 0
		for _, w := range ws {
			if w != 0 {
				n++
			}
		}
		return n
	}
	if nonzero(p.Weights[0]) > nonzero(p.FinalWeights()) {
		t.Error("active set should grow as penalty relaxes")
	}
	if nonzero(p.FinalWeights()) == 0 {
		t.Error("some features should activate at the weakest penalty")
	}
}

func TestSignalFeaturesActivateBeforeNoise(t *testing.T) {
	inst := lassoInstance(t)
	opts := DefaultOptions()
	opts.Steps = 16
	p, err := Compute(inst.Dataset, inst.Gold, opts)
	if err != nil {
		t.Fatal(err)
	}
	order := p.ActivationOrder(1e-6)
	// Among the first half of activated features, signal buckets
	// should dominate: the latent generator gave them real weights.
	isSignal := func(k int) bool {
		name := p.FeatureNames[k]
		return len(name) >= 6 && name[:6] == "signal"
	}
	signalRankSum, noiseRankSum := 0, 0
	for rank, k := range order {
		if isSignal(k) {
			signalRankSum += rank
		} else {
			noiseRankSum += rank
		}
	}
	// 4 signal + 4 noise features: mean signal rank must be lower.
	if signalRankSum >= noiseRankSum {
		t.Errorf("signal features should activate earlier: signal rank sum %d vs noise %d",
			signalRankSum, noiseRankSum)
	}
}

func TestFinalWeightsCorrelateWithLatent(t *testing.T) {
	inst := lassoInstance(t)
	p, err := Compute(inst.Dataset, inst.Gold, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	final := p.FinalWeights()
	// Pearson correlation between recovered and latent weights over
	// the signal buckets should be clearly positive.
	var xs, ys []float64
	for k, name := range p.FeatureNames {
		latent, ok := inst.TrueFeatureWeights[name]
		if !ok {
			continue
		}
		xs = append(xs, latent)
		ys = append(ys, final[k])
	}
	if len(xs) < 4 {
		t.Fatal("missing latent weights")
	}
	if r := pearson(xs, ys); r < 0.5 {
		t.Errorf("recovered/latent weight correlation = %v, want >= 0.5", r)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func TestActivationOrderNeverActivatedLast(t *testing.T) {
	p := &Path{
		FeatureNames: []string{"a", "b", "c"},
		Weights: [][]float64{
			{0, 0, 0},
			{0.5, 0, 0},
			{0.9, 0, 0.1},
		},
	}
	order := p.ActivationOrder(1e-9)
	if order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Errorf("order = %v, want [0 2 1]", order)
	}
}

func TestDeterministicPath(t *testing.T) {
	inst := lassoInstance(t)
	opts := DefaultOptions()
	opts.Steps = 6
	p1, err := Compute(inst.Dataset, inst.Gold, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compute(inst.Dataset, inst.Gold, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Weights {
		for k := range p1.Weights[i] {
			if p1.Weights[i][k] != p2.Weights[i][k] {
				t.Fatal("path must be deterministic")
			}
		}
	}
}
