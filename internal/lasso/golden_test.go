package lasso

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
)

// goldenPathFingerprint was recorded from the pre-dense-layout solver
// (PR 5 state plus the backtracking try-cap). The scratch-buffer and
// gradient-reuse rewrite of proxL1ExceptFirst must reproduce the whole
// path — every lambda, intercept and weight — bit for bit: any drift
// means the optimization changed arithmetic, not just allocation.
const goldenPathFingerprint uint64 = 0x88c3f67c1ce04de

// pathFingerprint hashes the exact bit patterns of the path's grid,
// intercepts and weight matrix in grid order.
func pathFingerprint(p *Path) uint64 {
	h := fnv.New64a()
	var b8 [8]byte
	put := func(x float64) {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(x))
		h.Write(b8[:])
	}
	for i := range p.Lambdas {
		put(p.Lambdas[i])
		put(p.Intercepts[i])
		for _, w := range p.Weights[i] {
			put(w)
		}
	}
	return h.Sum64()
}

func TestPathGoldenFingerprint(t *testing.T) {
	inst := lassoInstance(t)
	opts := DefaultOptions()
	opts.Steps = 8
	opts.MaxIter = 100
	p, err := Compute(inst.Dataset, inst.Gold, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := pathFingerprint(p); got != goldenPathFingerprint {
		t.Errorf("lasso path fingerprint = %#x, want %#x (the solver changed arithmetic, not just layout)", got, goldenPathFingerprint)
	}
}
