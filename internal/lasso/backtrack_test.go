package lasso

import (
	"math"
	"testing"

	"slimfast/internal/optim"
)

// pathologicalSmooth is the twin of optim.PathologicalSmooth (test
// files cannot be imported across packages): NaN loss outside a
// microscopic basin, finite enormous gradients. See
// TestProximalGradientBacktrackCapped in internal/optim.
func pathologicalSmooth(calls *int) optim.BatchGradFunc {
	return func(w []float64, grad []float64) float64 {
		*calls++
		loss := 0.0
		for j := range w {
			grad[j] = 2e30 * w[j]
			loss += 1e30 * w[j] * w[j]
		}
		if loss > 1e3 {
			return math.NaN()
		}
		return loss
	}
}

// TestProxL1BacktrackCapped is the regression test for the uncapped
// backtracking loop: proxL1ExceptFirst's inner loop used to terminate
// only on lr < 1e-12, so a NaN/Inf trial loss (which fails every
// quadratic-bound comparison) burned ~40 halvings on every outer
// iteration and the step size never recovered. The solver now carries
// optim.ProximalGradient's try >= 40 cap: it must run to maxIter with
// a bounded number of smooth evaluations.
func TestProxL1BacktrackCapped(t *testing.T) {
	const maxIter = 5
	var calls int
	w := []float64{1e-14, 1e-14}
	res, err := proxL1ExceptFirst(w, pathologicalSmooth(&calls), 1e-3, maxIter, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs < 1 || res.Epochs > maxIter {
		t.Errorf("proxL1ExceptFirst ran %d iters, want within [1, %d]", res.Epochs, maxIter)
	}
	// At most 41 trial evaluations per outer iteration (initial try +
	// 40 halvings) plus the one gradient evaluation at the start. An
	// uncapped loop keyed on lr alone either hangs or burns an
	// lr-dependent number of halvings here.
	if limit := res.Epochs*41 + 1; calls > limit {
		t.Errorf("proxL1ExceptFirst evaluated smooth %d times over %d iters, want <= %d (backtracking not capped)", calls, res.Epochs, limit)
	}
}
