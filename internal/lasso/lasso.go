// Package lasso computes Lasso paths over SLiMFast's domain-specific
// features (Section 5.3.1 of the paper, Figures 6 and 9): how each
// feature's weight evolves as the L1 regularization penalty relaxes.
// Features that activate early (at high penalties) and keep growing are
// the ones most predictive of source accuracy.
//
// The path is computed on the feature-only accuracy model: per-source
// correctness rates t_s (from ground truth) are regressed on the
// source's Boolean features with a weighted logistic model
//
//	A_s = logistic(b + Σ_k w_k f_sk)
//
// minimizing Σ_s n_s·CE(t_s, A_s)/N + λ·||w||₁ by proximal gradient,
// for a descending grid of λ. Per-source indicator weights are excluded
// so the features alone must explain accuracy — that is what makes the
// path interpretable.
package lasso

import (
	"errors"
	"math"
	"sort"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
	"slimfast/internal/optim"
)

// Path holds feature-weight trajectories along the regularization
// grid. Weights[i][k] is feature k's weight at Lambdas[i]; the grid is
// sorted descending (strongest penalty first), so plotting against
// Mu[i] = 1 - i/(len-1) matches the paper's x-axis convention ("higher
// x = lower penalty").
type Path struct {
	FeatureNames []string
	Lambdas      []float64
	Mu           []float64
	Intercepts   []float64
	Weights      [][]float64
}

// Options controls the path computation.
type Options struct {
	// Steps is the number of grid points (default 20).
	Steps int
	// LambdaMax is the strongest penalty; when 0 it is auto-set from
	// the gradient at zero (the smallest penalty that keeps all
	// weights at zero).
	LambdaMax float64
	// LambdaMinRatio sets LambdaMin = LambdaMax·ratio (default 1e-3).
	LambdaMinRatio float64
	// MaxIter and Tol control each proximal-gradient solve.
	MaxIter int
	Tol     float64
}

// DefaultOptions returns the settings used by the Figure 6/9 benches.
func DefaultOptions() Options {
	return Options{Steps: 20, LambdaMinRatio: 1e-3, MaxIter: 500, Tol: 1e-7}
}

// Compute fits the path for the dataset using the given ground truth to
// derive per-source correctness rates.
func Compute(ds *data.Dataset, train data.TruthMap, opts Options) (*Path, error) {
	if ds.NumFeatures() == 0 {
		return nil, errors.New("lasso: dataset has no domain features")
	}
	if len(train) == 0 {
		return nil, errors.New("lasso: ground truth required")
	}
	if opts.Steps <= 1 {
		return nil, errors.New("lasso: need at least 2 steps")
	}

	// Per-source correctness counts on labeled objects.
	nS := ds.NumSources()
	corr := make([]float64, nS)
	tot := make([]float64, nS)
	for _, ob := range ds.Observations {
		truth, ok := train[ob.Object]
		if !ok {
			continue
		}
		tot[ob.Source]++
		if ob.Value == truth {
			corr[ob.Source]++
		}
	}
	var totalObs float64
	for s := 0; s < nS; s++ {
		totalObs += tot[s]
	}
	if totalObs == 0 {
		return nil, errors.New("lasso: no labeled observations")
	}

	nK := ds.NumFeatures()
	// w layout: [0] intercept (unpenalized), [1..nK] feature weights.
	smooth := func(w []float64, grad []float64) float64 {
		var loss float64
		for s := 0; s < nS; s++ {
			if tot[s] == 0 {
				continue
			}
			sigma := w[0]
			for _, k := range ds.SourceFeatures[s] {
				sigma += w[1+int(k)]
			}
			a := mathx.Logistic(sigma)
			t := corr[s] / tot[s]
			loss += tot[s] * -(t*math.Log(mathx.ClampProb(a)) + (1-t)*math.Log(mathx.ClampProb(1-a)))
			r := tot[s] * (a - t) / totalObs
			grad[0] += r
			for _, k := range ds.SourceFeatures[s] {
				grad[1+int(k)] += r
			}
		}
		return loss / totalObs
	}

	// Auto lambda-max: with w=0 (after fitting the intercept), the
	// largest |gradient| coordinate bounds the penalty at which any
	// feature activates.
	lambdaMax := opts.LambdaMax
	if lambdaMax <= 0 {
		w0 := make([]float64, 1+nK)
		// Fit the intercept alone first.
		interceptOnly := func(w []float64, grad []float64) float64 {
			g := make([]float64, 1+nK)
			l := smooth(append([]float64{w[0]}, make([]float64, nK)...), g)
			grad[0] = g[0]
			return l
		}
		b := []float64{0}
		if _, err := optim.ProximalGradient(b, interceptOnly, 0, 300, 1e-9); err != nil {
			return nil, err
		}
		w0[0] = b[0]
		g := make([]float64, 1+nK)
		smooth(w0, g)
		for k := 1; k <= nK; k++ {
			if a := math.Abs(g[k]); a > lambdaMax {
				lambdaMax = a
			}
		}
		if lambdaMax == 0 {
			lambdaMax = 1
		}
		lambdaMax *= 1.05 // all-zero at the first grid point
	}
	ratio := opts.LambdaMinRatio
	if ratio <= 0 || ratio >= 1 {
		ratio = 1e-3
	}

	p := &Path{
		FeatureNames: append([]string{}, ds.FeatureNames...),
		Lambdas:      make([]float64, opts.Steps),
		Mu:           make([]float64, opts.Steps),
		Intercepts:   make([]float64, opts.Steps),
		Weights:      make([][]float64, opts.Steps),
	}
	// Warm-started descending grid (log spaced).
	w := make([]float64, 1+nK)
	for i := 0; i < opts.Steps; i++ {
		frac := float64(i) / float64(opts.Steps-1)
		lambda := lambdaMax * math.Pow(ratio, frac)
		p.Lambdas[i] = lambda
		p.Mu[i] = frac
		// Penalize only feature coordinates: ProximalGradient applies
		// the prox to every coordinate, so shield the intercept by
		// solving with a wrapper that adds lambda*|w0| back. Simpler:
		// since the intercept gradient dominates early, run with the
		// penalty and then refit the intercept unpenalized.
		if _, err := proxL1ExceptFirst(w, smooth, lambda, opts.MaxIter, opts.Tol); err != nil {
			return nil, err
		}
		p.Intercepts[i] = w[0]
		row := make([]float64, nK)
		copy(row, w[1:])
		p.Weights[i] = row
	}
	return p, nil
}

// proxL1ExceptFirst is ISTA with the soft-threshold applied to every
// coordinate except index 0 (the intercept). Like
// optim.ProximalGradient it keeps two swapped gradient buffers — the
// accepted trial's gradient becomes the next iteration's gradient, so
// the inner loop neither allocates nor re-evaluates smooth at the
// accepted point — and it caps backtracking at 40 halvings per outer
// iteration: the old loop terminated only on lr < 1e-12, so a NaN/Inf
// trial loss (which fails every quadratic-bound comparison) burned ~40
// halvings on every outer iteration and the step size never recovered
// through the 1.1× growth.
func proxL1ExceptFirst(w []float64, smooth optim.BatchGradFunc, l1 float64, maxIter int, tol float64) (optim.Result, error) {
	if maxIter <= 0 {
		return optim.Result{}, errors.New("lasso: maxIter must be positive")
	}
	grad := make([]float64, len(w))
	next := make([]float64, len(w))
	gNext := make([]float64, len(w))
	lr := 1.0
	var res optim.Result
	loss := smooth(w, grad)
	for iter := 0; iter < maxIter; iter++ {
		var lossNext float64
		for try := 0; ; try++ {
			next[0] = w[0] - lr*grad[0]
			for j := 1; j < len(w); j++ {
				next[j] = mathx.SoftThreshold(w[j]-lr*grad[j], lr*l1)
			}
			for j := range gNext {
				gNext[j] = 0
			}
			lossNext = smooth(next, gNext)
			var lin, quad float64
			for j := range w {
				d := next[j] - w[j]
				lin += grad[j] * d
				quad += d * d
			}
			if lossNext <= loss+lin+quad/(2*lr)+1e-12 || try >= 40 {
				break
			}
			lr /= 2
		}
		delta := mathx.MaxAbsDiff(next, w)
		copy(w, next)
		grad, gNext = gNext, grad
		loss = lossNext
		res.Epochs = iter + 1
		res.LastDelta = delta
		if delta < tol {
			res.Converged = true
			return res, nil
		}
		lr *= 1.1
	}
	return res, nil
}

// ActivationOrder returns feature indices sorted by when they first
// obtain a non-zero weight along the path (earliest activation = most
// important), breaking ties by final absolute weight. Features that
// never activate come last.
func (p *Path) ActivationOrder(tol float64) []int {
	n := len(p.FeatureNames)
	first := make([]int, n)
	for k := 0; k < n; k++ {
		first[k] = len(p.Weights) // never activated
		for i := range p.Weights {
			if math.Abs(p.Weights[i][k]) > tol {
				first[k] = i
				break
			}
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	last := len(p.Weights) - 1
	sort.SliceStable(idx, func(a, b int) bool {
		if first[idx[a]] != first[idx[b]] {
			return first[idx[a]] < first[idx[b]]
		}
		return math.Abs(p.Weights[last][idx[a]]) > math.Abs(p.Weights[last][idx[b]])
	})
	return idx
}

// FinalWeights returns the weights at the weakest penalty (the last
// grid point).
func (p *Path) FinalWeights() []float64 {
	if len(p.Weights) == 0 {
		return nil
	}
	return p.Weights[len(p.Weights)-1]
}
