package synth

import (
	"math"
	"testing"

	"slimfast/internal/data"
)

func TestGenerateBasicShape(t *testing.T) {
	inst, err := Generate(Config{
		Name:                "t",
		Sources:             50,
		Objects:             200,
		DomainSize:          3,
		Assignment:          IIDDensity,
		Density:             0.2,
		MeanAccuracy:        0.7,
		AccuracySD:          0.1,
		MinAccuracy:         0.5,
		MaxAccuracy:         0.95,
		EnsureTruthObserved: true,
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := inst.Dataset
	if d.NumSources() != 50 || d.NumObjects() != 200 {
		t.Fatalf("shape wrong: %d sources, %d objects", d.NumSources(), d.NumObjects())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Density within sampling noise of 0.2.
	if got := d.Density(); math.Abs(got-0.2) > 0.02 {
		t.Errorf("density = %v, want ~0.2", got)
	}
	if len(inst.TrueAccuracy) != 50 {
		t.Errorf("TrueAccuracy len = %d", len(inst.TrueAccuracy))
	}
}

func TestGenerateMeanAccuracyCalibrated(t *testing.T) {
	inst, err := Generate(Config{
		Name: "t", Sources: 200, Objects: 300, DomainSize: 2,
		Assignment: IIDDensity, Density: 0.1,
		MeanAccuracy: 0.65, AccuracySD: 0.1, MinAccuracy: 0.4, MaxAccuracy: 0.95,
		Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, a := range inst.TrueAccuracy {
		if a < 0.4 || a > 0.95 {
			t.Fatalf("accuracy out of clamp: %v", a)
		}
		sum += a
	}
	mean := sum / float64(len(inst.TrueAccuracy))
	if math.Abs(mean-0.65) > 0.01 {
		t.Errorf("mean accuracy = %v, want 0.65", mean)
	}
}

func TestGenerateEmpiricalAccuracyMatchesLatent(t *testing.T) {
	// Without the truth-observed fix-up, each source's empirical
	// accuracy against gold should track its latent accuracy.
	inst, err := Generate(Config{
		Name: "t", Sources: 20, Objects: 2000, DomainSize: 2,
		Assignment: IIDDensity, Density: 0.5,
		MeanAccuracy: 0.7, AccuracySD: 0.12, MinAccuracy: 0.5, MaxAccuracy: 0.95,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	emp := inst.Dataset.TrueSourceAccuracies(inst.Gold)
	for s := range emp {
		if math.Abs(emp[s]-inst.TrueAccuracy[s]) > 0.05 {
			t.Errorf("source %d: empirical %v vs latent %v", s, emp[s], inst.TrueAccuracy[s])
		}
	}
}

func TestEnsureTruthObserved(t *testing.T) {
	inst, err := Generate(Config{
		Name: "t", Sources: 10, Objects: 500, DomainSize: 5,
		Assignment: IIDDensity, Density: 0.2,
		MeanAccuracy: 0.55, AccuracySD: 0.05, MinAccuracy: 0.3, MaxAccuracy: 0.9,
		EnsureTruthObserved: true,
		Seed:                4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for o, truth := range inst.Gold {
		found := false
		for _, ob := range inst.Dataset.ObjectObservations(o) {
			if ob.Value == truth {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("object %d: single-truth semantics violated", o)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Name: "t", Sources: 30, Objects: 100, DomainSize: 3,
		Assignment: IIDDensity, Density: 0.3,
		MeanAccuracy: 0.6, AccuracySD: 0.1, MinAccuracy: 0.4, MaxAccuracy: 0.9,
		Features: []FeatureGroup{{Name: "f", Cardinality: 5, Informative: true, WeightScale: 1}},
		Seed:     7,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset.NumObservations() != b.Dataset.NumObservations() {
		t.Fatal("same seed, different observation counts")
	}
	for i := range a.Dataset.Observations {
		if a.Dataset.Observations[i] != b.Dataset.Observations[i] {
			t.Fatal("same seed, different observations")
		}
	}
	for s := range a.TrueAccuracy {
		if a.TrueAccuracy[s] != b.TrueAccuracy[s] {
			t.Fatal("same seed, different accuracies")
		}
	}
}

func TestFixedPerObjectAssignment(t *testing.T) {
	inst, err := Generate(Config{
		Name: "t", Sources: 40, Objects: 100, DomainSize: 4,
		Assignment: FixedPerObject, ObsPerObject: 7,
		MeanAccuracy: 0.6, AccuracySD: 0.1, MinAccuracy: 0.3, MaxAccuracy: 0.9,
		Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 100; o++ {
		if n := len(inst.Dataset.ObjectObservations(data.ObjectID(o))); n != 7 {
			t.Fatalf("object %d has %d observations, want 7", o, n)
		}
	}
}

func TestSkewedSourcesLongTail(t *testing.T) {
	inst, err := Generate(Config{
		Name: "t", Sources: 200, Objects: 400, DomainSize: 2,
		Assignment: SkewedSources, ObsPerObject: 5, SourceSkew: 1.0,
		MeanAccuracy: 0.6, AccuracySD: 0.1, MinAccuracy: 0.3, MaxAccuracy: 0.9,
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 200)
	for _, ob := range inst.Dataset.Observations {
		counts[ob.Source]++
	}
	// Head sources should have far more observations than the median.
	max, nonzero := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			nonzero++
		}
	}
	avg := float64(inst.Dataset.NumObservations()) / float64(nonzero)
	if float64(max) < 3*avg {
		t.Errorf("expected long tail: max=%d avg=%.1f", max, avg)
	}
}

func TestCopierCliquesAgree(t *testing.T) {
	inst, err := Generate(Config{
		Name: "t", Sources: 30, Objects: 300, DomainSize: 2,
		Assignment: IIDDensity, Density: 0.4,
		MeanAccuracy: 0.6, AccuracySD: 0.1, MinAccuracy: 0.3, MaxAccuracy: 0.9,
		Copying: CopyConfig{Cliques: 2, Size: 3, CopyProb: 0.95},
		Seed:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.CopierPairs) != 4 { // 2 cliques × 2 copiers each
		t.Fatalf("CopierPairs = %d, want 4", len(inst.CopierPairs))
	}
	// Copier agreement with leader should far exceed the agreement of
	// two independent 0.6-accuracy sources (~0.52).
	d := inst.Dataset
	agreeRate := func(a, b data.SourceID) float64 {
		vals := map[data.ObjectID]data.ValueID{}
		for _, i := range d.SourceObservationIndices(a) {
			ob := d.Observations[i]
			vals[ob.Object] = ob.Value
		}
		agree, tot := 0, 0
		for _, i := range d.SourceObservationIndices(b) {
			ob := d.Observations[i]
			if v, ok := vals[ob.Object]; ok {
				tot++
				if v == ob.Value {
					agree++
				}
			}
		}
		if tot == 0 {
			return 0
		}
		return float64(agree) / float64(tot)
	}
	for _, p := range inst.CopierPairs {
		if r := agreeRate(p[0], p[1]); r < 0.85 {
			t.Errorf("copier pair %v agreement %v, want >= 0.85", p, r)
		}
	}
	// Independent pair for contrast.
	if r := agreeRate(20, 25); r > 0.8 {
		t.Errorf("independent pair agreement suspiciously high: %v", r)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Config{
		Name: "t", Sources: 10, Objects: 10, DomainSize: 2,
		Assignment: IIDDensity, Density: 0.5,
		MeanAccuracy: 0.6, AccuracySD: 0.1, MinAccuracy: 0.4, MaxAccuracy: 0.9,
	}
	mutations := []func(*Config){
		func(c *Config) { c.Sources = 1 },
		func(c *Config) { c.Objects = 0 },
		func(c *Config) { c.DomainSize = 1 },
		func(c *Config) { c.Density = 0 },
		func(c *Config) { c.Density = 1.5 },
		func(c *Config) { c.Assignment = FixedPerObject; c.ObsPerObject = 0 },
		func(c *Config) { c.Assignment = FixedPerObject; c.ObsPerObject = 99 },
		func(c *Config) { c.MeanAccuracy = 0 },
		func(c *Config) { c.MinAccuracy = 0.9; c.MaxAccuracy = 0.4 },
		func(c *Config) { c.Copying = CopyConfig{Cliques: 1, Size: 1, CopyProb: 0.5} },
		func(c *Config) { c.Copying = CopyConfig{Cliques: 9, Size: 2, CopyProb: 0.5} },
		func(c *Config) { c.Copying = CopyConfig{Cliques: 1, Size: 2, CopyProb: 0} },
		func(c *Config) { c.Assignment = Assignment(99) },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if _, err := Generate(c); err == nil {
			t.Errorf("mutation %d should be rejected", i)
		}
	}
}

func TestCalibratedDatasetsMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrated dataset generation in -short mode")
	}
	type target struct {
		name             string
		sources, objects int
		obsLo, obsHi     int
		featLo, featHi   int
		accLo, accHi     float64 // empirical avg source accuracy range
	}
	targets := []target{
		{"stocks", 34, 907, 27000, 32000, 70, 70, 0.0, 0.55},
		{"demos", 522, 3105, 24000, 31500, 341, 341, 0.5, 0.72},
		{"crowd", 102, 992, 19840, 19840, 171, 171, 0.45, 0.64},
		{"genomics", 2750, 571, 2500, 3600, 16358, 16358, 0.5, 0.8},
	}
	for _, tg := range targets {
		inst, err := NamedDataset(tg.name, 42)
		if err != nil {
			t.Fatalf("%s: %v", tg.name, err)
		}
		d := inst.Dataset
		if d.NumSources() != tg.sources || d.NumObjects() != tg.objects {
			t.Errorf("%s: %d sources × %d objects, want %d × %d",
				tg.name, d.NumSources(), d.NumObjects(), tg.sources, tg.objects)
		}
		if n := d.NumObservations(); n < tg.obsLo || n > tg.obsHi {
			t.Errorf("%s: %d observations, want [%d,%d]", tg.name, n, tg.obsLo, tg.obsHi)
		}
		if f := d.NumFeatures(); f < tg.featLo || f > tg.featHi {
			t.Errorf("%s: %d feature values, want [%d,%d]", tg.name, f, tg.featLo, tg.featHi)
		}
		if acc := d.AvgSourceAccuracy(inst.Gold); acc < tg.accLo || acc > tg.accHi {
			t.Errorf("%s: avg source accuracy %v, want [%v,%v]", tg.name, acc, tg.accLo, tg.accHi)
		}
	}
}

func TestExample6Shape(t *testing.T) {
	inst, err := Example6(0.7, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := inst.Dataset
	if d.NumSources() != 1000 || d.NumObjects() != 1000 {
		t.Fatal("Example6 shape wrong")
	}
	if math.Abs(d.Density()-0.01) > 0.002 {
		t.Errorf("density = %v, want ~0.01", d.Density())
	}
	if acc := d.AvgSourceAccuracy(inst.Gold); math.Abs(acc-0.7) > 0.05 {
		t.Errorf("avg accuracy = %v, want ~0.7", acc)
	}
}

func TestNamedDatasetUnknown(t *testing.T) {
	if _, err := NamedDataset("nope", 1); err == nil {
		t.Error("unknown name should error")
	}
	if len(AllNames()) != 4 {
		t.Error("AllNames should list 4 datasets")
	}
}

func TestSkewedSourcesDeterministic(t *testing.T) {
	cfg := Config{
		Name: "sk", Sources: 100, Objects: 150, DomainSize: 2,
		Assignment: SkewedSources, ObsPerObject: 6, SourceSkew: 0.8,
		MeanAccuracy: 0.65, AccuracySD: 0.1, MinAccuracy: 0.4, MaxAccuracy: 0.9,
		Copying: CopyConfig{Cliques: 2, Size: 3, CopyProb: 0.9, OverlapProb: 0.5},
		Seed:    14,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset.NumObservations() != b.Dataset.NumObservations() {
		t.Fatal("skewed generation nondeterministic: counts differ")
	}
	for i := range a.Dataset.Observations {
		if a.Dataset.Observations[i] != b.Dataset.Observations[i] {
			t.Fatalf("skewed generation nondeterministic at observation %d", i)
		}
	}
	if len(a.Cliques) != 2 || len(a.Cliques[0]) != 3 {
		t.Errorf("cliques = %v", a.Cliques)
	}
	if n := len(a.CorrelatedPairs()); n != 12 { // 2 cliques × C(3,2)=3 pairs × 2 orientations
		t.Errorf("CorrelatedPairs = %d entries, want 12", n)
	}
}
