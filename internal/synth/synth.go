// Package synth generates synthetic data-fusion instances. It serves
// two roles in the reproduction:
//
//  1. The controlled workloads of Section 4.1 (Example 6 / Figure 4):
//     |S| sources × |O| objects with a configurable density p, average
//     source accuracy, and training fraction.
//  2. Calibrated simulators of the paper's four real datasets (Stocks,
//     Demonstrations, Crowd, Genomics), matched to the Table 1
//     statistics. The real datasets are proprietary/offline; these
//     simulators exercise the same code paths with the same shape
//     (sparsity, domain sizes, accuracy heterogeneity, feature signal,
//     copier cliques). See DESIGN.md §4 for the substitution rationale.
//
// Source accuracies are produced by a latent feature-logistic model:
// each source carries categorical domain features, a subset of feature
// groups genuinely drives accuracy, and the rest are noise. This gives
// the Lasso-path and unseen-source experiments a known ground truth to
// recover.
package synth

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
	"slimfast/internal/randx"
)

// Assignment selects how observations are placed.
type Assignment int

const (
	// IIDDensity observes each (source, object) pair independently
	// with probability Density (the paper's uniform-selectivity model).
	IIDDensity Assignment = iota
	// FixedPerObject assigns exactly ObsPerObject distinct sources to
	// each object (the crowdsourcing pattern: 20 workers per tweet).
	FixedPerObject
	// SkewedSources draws ObsPerObject sources per object from a
	// Zipfian distribution over sources (long-tail participation, as
	// in Genomics and Demonstrations).
	SkewedSources
)

// FeatureGroup describes one categorical domain feature ("PubYear",
// "BounceRate", ...). Each source gets Cardinality-way bucket(s); when
// Informative, each bucket carries a latent weight that shifts the
// source's true accuracy.
type FeatureGroup struct {
	Name        string
	Cardinality int
	Informative bool
	// WeightScale is the stddev of the latent bucket weights for
	// informative groups.
	WeightScale float64
	// PerSource is how many buckets a source activates in this group
	// (1 for ordinary categorical features; >1 models multi-label
	// features such as author lists). Defaults to 1.
	PerSource int
}

// CopyConfig plants copier cliques (Appendix D): each clique has one
// leader and Size-1 copiers that repeat the leader's observed value
// with probability CopyProb on objects both observe.
type CopyConfig struct {
	Cliques  int
	Size     int
	CopyProb float64
	// OverlapProb is the probability a copier is added as an observer
	// of an object its leader observes (beyond its own assignments),
	// controlling how detectable the copying is.
	OverlapProb float64
}

// Config controls dataset generation.
type Config struct {
	Name       string
	Sources    int
	Objects    int
	DomainSize int // number of distinct values an object can take

	Assignment   Assignment
	Density      float64 // for IIDDensity
	ObsPerObject int     // for FixedPerObject / SkewedSources
	SourceSkew   float64 // Zipf exponent for SkewedSources

	// MeanAccuracy is the target average of the true source
	// accuracies; AccuracySD controls heterogeneity; accuracies are
	// clamped to [MinAccuracy, MaxAccuracy].
	MeanAccuracy float64
	AccuracySD   float64
	MinAccuracy  float64
	MaxAccuracy  float64

	// WrongBias makes errors correlate: a wrong answer lands on the
	// object's designated "distractor" value (shared by all sources)
	// with a per-object probability drawn uniformly from
	// [0, WrongBias], instead of a uniform wrong value. Real data has
	// confusable values — crowd workers mix up neutral/unrelated
	// sentiment, scrapers serve the same stale number — with the
	// confusability varying by object; that per-object variation is
	// what makes naive majority voting fail on some objects while
	// weighted fusion recovers them.
	WrongBias float64

	Features []FeatureGroup

	Copying CopyConfig

	// EnsureTruthObserved enforces the paper's single-truth semantics:
	// every object with at least one observation has at least one
	// source reporting the true value. When an object would have none,
	// one of its observations is flipped to the truth.
	EnsureTruthObserved bool

	Seed int64
}

// Instance is a generated fusion problem with its hidden ground truth.
type Instance struct {
	Dataset *data.Dataset
	// Gold labels every object that received observations.
	Gold data.TruthMap
	// TrueAccuracy[s] is the latent accuracy used to generate source
	// s's observations (before the EnsureTruthObserved fix-ups).
	TrueAccuracy []float64
	// TrueFeatureWeights maps feature labels to the latent weights
	// that generated accuracies; noise features map to 0. Used by the
	// Lasso-path experiment to check recovery.
	TrueFeatureWeights map[string]float64
	// CopierPairs lists the planted (leader, copier) pairs.
	CopierPairs [][2]data.SourceID
	// Cliques lists every planted clique (leader first). Any two
	// members of one clique are correlated: copiers repeat the same
	// leader, so copier-copier pairs agree as strongly as
	// leader-copier pairs.
	Cliques [][]data.SourceID
}

// CorrelatedPairs returns every unordered within-clique pair (in both
// orientations) as a set, for checking whether a detected copy pair
// was planted.
func (in *Instance) CorrelatedPairs() map[[2]data.SourceID]bool {
	out := map[[2]data.SourceID]bool{}
	for _, clique := range in.Cliques {
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				out[[2]data.SourceID{clique[i], clique[j]}] = true
				out[[2]data.SourceID{clique[j], clique[i]}] = true
			}
		}
	}
	return out
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.Sources < 2 {
		return errors.New("synth: need at least 2 sources")
	}
	if c.Objects < 1 {
		return errors.New("synth: need at least 1 object")
	}
	if c.DomainSize < 2 {
		return errors.New("synth: DomainSize must be >= 2")
	}
	switch c.Assignment {
	case IIDDensity:
		if c.Density <= 0 || c.Density > 1 {
			return fmt.Errorf("synth: density %v out of (0,1]", c.Density)
		}
	case FixedPerObject, SkewedSources:
		if c.ObsPerObject < 1 || c.ObsPerObject > c.Sources {
			return fmt.Errorf("synth: ObsPerObject %d out of [1,%d]", c.ObsPerObject, c.Sources)
		}
	default:
		return fmt.Errorf("synth: unknown assignment %d", c.Assignment)
	}
	if c.MeanAccuracy <= 0 || c.MeanAccuracy >= 1 {
		return fmt.Errorf("synth: MeanAccuracy %v out of (0,1)", c.MeanAccuracy)
	}
	if c.MinAccuracy < 0 || c.MaxAccuracy > 1 || c.MinAccuracy >= c.MaxAccuracy {
		return fmt.Errorf("synth: accuracy clamp [%v,%v] invalid", c.MinAccuracy, c.MaxAccuracy)
	}
	if c.WrongBias < 0 || c.WrongBias > 1 {
		return fmt.Errorf("synth: WrongBias %v out of [0,1]", c.WrongBias)
	}
	if c.Copying.Cliques > 0 {
		if c.Copying.Size < 2 {
			return errors.New("synth: copier clique size must be >= 2")
		}
		if c.Copying.Cliques*c.Copying.Size > c.Sources {
			return errors.New("synth: copier cliques exceed source count")
		}
		if c.Copying.CopyProb <= 0 || c.Copying.CopyProb > 1 {
			return errors.New("synth: CopyProb out of (0,1]")
		}
		if c.Copying.OverlapProb < 0 || c.Copying.OverlapProb > 1 {
			return errors.New("synth: OverlapProb out of [0,1]")
		}
	}
	return nil
}

// Generate builds an Instance from the configuration. Generation is
// fully deterministic in Config.Seed.
func Generate(cfg Config) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed)
	b := data.NewBuilder(cfg.Name)

	// Intern sources, objects, values up front for dense stable ids.
	for s := 0; s < cfg.Sources; s++ {
		b.Source(fmt.Sprintf("s%04d", s))
	}
	for o := 0; o < cfg.Objects; o++ {
		b.Object(fmt.Sprintf("o%05d", o))
	}
	for v := 0; v < cfg.DomainSize; v++ {
		b.Value(fmt.Sprintf("v%03d", v))
	}

	// Assign feature buckets and latent weights.
	featRNG := rng.Child("features")
	trueWeights := map[string]float64{}
	sourceSigma := make([]float64, cfg.Sources) // latent feature signal
	for _, fg := range cfg.Features {
		card := fg.Cardinality
		if card < 1 {
			return nil, fmt.Errorf("synth: feature group %q has cardinality %d", fg.Name, card)
		}
		per := fg.PerSource
		if per < 1 {
			per = 1
		}
		if per > card {
			per = card
		}
		bucketW := make([]float64, card)
		if fg.Informative {
			for i := range bucketW {
				bucketW[i] = featRNG.NormFloat64() * fg.WeightScale
			}
		}
		// Intern the whole vocabulary: Table 1's "# Feature Values"
		// counts distinct feature values, including rarely used ones.
		for i := 0; i < card; i++ {
			label := fmt.Sprintf("%s=%d", fg.Name, i)
			trueWeights[label] = bucketW[i]
			b.Feature(label)
		}
		for s := 0; s < cfg.Sources; s++ {
			buckets := featRNG.SampleWithoutReplacement(card, per)
			for _, bk := range buckets {
				label := fmt.Sprintf("%s=%d", fg.Name, bk)
				b.SetFeature(data.SourceID(s), label)
				sourceSigma[s] += bucketW[bk]
			}
		}
	}

	// Per-source idiosyncratic noise on top of the feature signal.
	accRNG := rng.Child("accuracy")
	for s := range sourceSigma {
		sourceSigma[s] += accRNG.NormFloat64() * logitSD(cfg)
	}
	// Shift by a bias chosen (via bisection) so the mean clamped
	// accuracy hits MeanAccuracy.
	bias := solveBias(sourceSigma, cfg)
	trueAcc := make([]float64, cfg.Sources)
	for s := range trueAcc {
		trueAcc[s] = mathx.Clamp(mathx.Logistic(sourceSigma[s]+bias), cfg.MinAccuracy, cfg.MaxAccuracy)
	}

	// Copier cliques: reserve the first Cliques*Size sources.
	var copierPairs [][2]data.SourceID
	var cliques [][]data.SourceID
	copyLeader := make([]int, cfg.Sources) // leader index or -1
	for s := range copyLeader {
		copyLeader[s] = -1
	}
	if cfg.Copying.Cliques > 0 {
		for c := 0; c < cfg.Copying.Cliques; c++ {
			base := c * cfg.Copying.Size
			leader := base
			clique := []data.SourceID{data.SourceID(leader)}
			for m := 1; m < cfg.Copying.Size; m++ {
				copier := base + m
				copyLeader[copier] = leader
				copierPairs = append(copierPairs, [2]data.SourceID{data.SourceID(leader), data.SourceID(copier)})
				clique = append(clique, data.SourceID(copier))
			}
			cliques = append(cliques, clique)
		}
	}

	// Hidden true values, plus a per-object distractor wrong values
	// gravitate to when WrongBias > 0.
	truthRNG := rng.Child("truth")
	trueVal := make([]data.ValueID, cfg.Objects)
	distractor := make([]data.ValueID, cfg.Objects)
	distractorBias := make([]float64, cfg.Objects)
	for o := range trueVal {
		trueVal[o] = data.ValueID(truthRNG.Intn(cfg.DomainSize))
		distractor[o] = data.ValueID(truthRNG.IntnExcept(cfg.DomainSize, int(trueVal[o])))
		distractorBias[o] = truthRNG.Float64() * cfg.WrongBias
	}

	// Observation placement.
	obsRNG := rng.Child("observations")
	observers := make([][]int, cfg.Objects)
	switch cfg.Assignment {
	case IIDDensity:
		for o := 0; o < cfg.Objects; o++ {
			for s := 0; s < cfg.Sources; s++ {
				if obsRNG.Bernoulli(cfg.Density) {
					observers[o] = append(observers[o], s)
				}
			}
		}
	case FixedPerObject:
		for o := 0; o < cfg.Objects; o++ {
			observers[o] = obsRNG.SampleWithoutReplacement(cfg.Sources, cfg.ObsPerObject)
		}
	case SkewedSources:
		draw := obsRNG.Zipf(cfg.Sources, cfg.SourceSkew)
		for o := 0; o < cfg.Objects; o++ {
			seen := map[int]bool{}
			for len(seen) < cfg.ObsPerObject {
				seen[draw()] = true
			}
			obs := make([]int, 0, len(seen))
			for s := range seen {
				obs = append(obs, s)
			}
			// Map iteration order is random; sort so the downstream
			// value draws are deterministic in the seed.
			sort.Ints(obs)
			observers[o] = obs
		}
	}
	// Give copiers extra overlap with their leaders (a copier that
	// never overlaps its leader is undetectable and uninteresting).
	if cfg.Copying.Cliques > 0 && cfg.Copying.OverlapProb > 0 {
		overlapRNG := rng.Child("copy-overlap")
		for o := range observers {
			inSet := map[int]bool{}
			for _, s := range observers[o] {
				inSet[s] = true
			}
			for s := 0; s < cfg.Sources; s++ {
				l := copyLeader[s]
				if l >= 0 && inSet[l] && !inSet[s] && overlapRNG.Bernoulli(cfg.Copying.OverlapProb) {
					observers[o] = append(observers[o], s)
					inSet[s] = true
				}
			}
		}
	}

	// Emit values: leaders and independents report the truth w.p.
	// their accuracy; copiers repeat their leader w.p. CopyProb.
	valRNG := rng.Child("values")
	for o := 0; o < cfg.Objects; o++ {
		reported := map[int]data.ValueID{}
		emit := func(s int) data.ValueID {
			if v, done := reported[s]; done {
				return v
			}
			var v data.ValueID
			if l := copyLeader[s]; l >= 0 && valRNG.Bernoulli(cfg.Copying.CopyProb) {
				// Copy the leader's (possibly wrong) value; materialize
				// the leader's report even if the leader doesn't
				// observe this object.
				lv, ok := reported[l]
				if !ok {
					lv = drawValueBiased(valRNG, trueVal[o], distractor[o], trueAcc[l], cfg.DomainSize, distractorBias[o])
					reported[l] = lv
				}
				v = lv
			} else {
				v = drawValueBiased(valRNG, trueVal[o], distractor[o], trueAcc[s], cfg.DomainSize, distractorBias[o])
			}
			reported[s] = v
			return v
		}
		anyCorrect := false
		for _, s := range observers[o] {
			v := emit(s)
			if v == trueVal[o] {
				anyCorrect = true
			}
		}
		if cfg.EnsureTruthObserved && !anyCorrect && len(observers[o]) > 0 {
			fix := observers[o][valRNG.Intn(len(observers[o]))]
			reported[fix] = trueVal[o]
		}
		for _, s := range observers[o] {
			b.Observe(data.SourceID(s), data.ObjectID(o), reported[s])
		}
	}

	d := b.Freeze()
	gold := data.TruthMap{}
	for o := 0; o < cfg.Objects; o++ {
		if len(d.Domain(data.ObjectID(o))) > 0 {
			gold[data.ObjectID(o)] = trueVal[o]
		}
	}
	return &Instance{
		Dataset:            d,
		Gold:               gold,
		TrueAccuracy:       trueAcc,
		TrueFeatureWeights: trueWeights,
		CopierPairs:        copierPairs,
		Cliques:            cliques,
	}, nil
}

// drawValueBiased reports the truth with probability acc; otherwise a
// wrong value, which is the object's distractor with probability
// wrongBias and uniform over the remaining wrong values otherwise.
func drawValueBiased(rng *randx.RNG, truth, distractor data.ValueID, acc float64, domain int, wrongBias float64) data.ValueID {
	if rng.Bernoulli(acc) {
		return truth
	}
	if wrongBias > 0 && rng.Bernoulli(wrongBias) {
		return distractor
	}
	return data.ValueID(rng.IntnExcept(domain, int(truth)))
}

// logitSD converts the requested accuracy spread into logit-space
// noise: d logistic / dx at the mean is A(1-A).
func logitSD(cfg Config) float64 {
	slope := cfg.MeanAccuracy * (1 - cfg.MeanAccuracy)
	if slope < 0.05 {
		slope = 0.05
	}
	return cfg.AccuracySD / slope
}

// solveBias bisects for the bias that brings the mean clamped accuracy
// to cfg.MeanAccuracy.
func solveBias(sigma []float64, cfg Config) float64 {
	mean := func(bias float64) float64 {
		var s float64
		for _, x := range sigma {
			s += mathx.Clamp(mathx.Logistic(x+bias), cfg.MinAccuracy, cfg.MaxAccuracy)
		}
		return s / float64(len(sigma))
	}
	lo, hi := -20.0, 20.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if mean(mid) < cfg.MeanAccuracy {
			lo = mid
		} else {
			hi = mid
		}
	}
	b := (lo + hi) / 2
	if math.IsNaN(b) {
		return 0
	}
	return b
}
