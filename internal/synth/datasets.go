package synth

// Calibrated simulators of the paper's four evaluation datasets,
// matched to Table 1:
//
//	Parameter            Stocks   Demos    Crowd    Genomics
//	# Sources            34       522      102      2750
//	# Objects            907      3105     992      571
//	# Observations       30763    27736    19840    3052
//	# Domain Features    7        7        4        4
//	# Feature Values     70       341      171      16358
//	Avg. Src. Acc.       <0.5     0.604    0.540    (n/a)
//	Avg. Obs per Obj.    33.9     15.7     20       5.3
//	Avg. Obs per Src.    904.8    53.1     194.5    1.1
//
// The real data are proprietary or require offline downloads; the
// generators below reproduce the statistical structure (sparsity,
// domain sizes, heterogeneity, feature signal, copier cliques) so every
// experiment in Section 5 runs end-to-end. See DESIGN.md §4.

// Stocks simulates the stock-volume fusion dataset [24]: 34 web
// sources, near-complete density (each source reports almost every
// stock-day), many-valued volume domains, and a mean source accuracy
// below 0.5 with strong heterogeneity (a few excellent feeds among
// noisy scrapers). 7 Alexa-style traffic features discretized to 70
// Boolean values, several of them genuinely predictive.
func Stocks(seed int64) (*Instance, error) {
	return Generate(Config{
		Name:       "stocks",
		Sources:    34,
		Objects:    907,
		DomainSize: 12,
		Assignment: IIDDensity,
		Density:    0.998,
		// Heavily heterogeneous with mean below 0.5 (Table 1).
		MeanAccuracy: 0.42,
		AccuracySD:   0.28,
		MinAccuracy:  0.05,
		MaxAccuracy:  0.98,
		WrongBias:    0.95, // scrapers repeat the same stale volume
		Features: []FeatureGroup{
			{Name: "BounceRate", Cardinality: 10, Informative: true, WeightScale: 2.2},
			{Name: "DailyTimeOnSite", Cardinality: 10, Informative: true, WeightScale: 1.8},
			{Name: "Rank", Cardinality: 10, Informative: false},
			{Name: "CountryRank", Cardinality: 10, Informative: false},
			{Name: "DailyPageViewsPerVisitor", Cardinality: 10, Informative: true, WeightScale: 1.0},
			{Name: "SearchVisits", Cardinality: 10, Informative: false},
			{Name: "TotalSitesLinkingIn", Cardinality: 10, Informative: false},
		},
		EnsureTruthObserved: true,
		Seed:                seed,
	})
}

// Demos simulates the GDELT demonstrations dataset: 522 online news
// domains, sparse boolean extraction-correctness objects, mean accuracy
// 0.604, with planted copier cliques (regional news portals that
// syndicate each other, per Appendix D's findings).
func Demos(seed int64) (*Instance, error) {
	return Generate(Config{
		Name:         "demos",
		Sources:      522,
		Objects:      3105,
		DomainSize:   2,
		Assignment:   SkewedSources,
		ObsPerObject: 6, // grows toward the Table 1 totals via copier overlap
		SourceSkew:   0.7,
		MeanAccuracy: 0.604,
		AccuracySD:   0.16,
		MinAccuracy:  0.2,
		MaxAccuracy:  0.95,
		Features: []FeatureGroup{
			{Name: "BounceRate", Cardinality: 49, Informative: true, WeightScale: 1.6},
			{Name: "DailyTimeOnSite", Cardinality: 49, Informative: true, WeightScale: 1.2},
			{Name: "Rank", Cardinality: 49, Informative: false},
			{Name: "CountryRank", Cardinality: 49, Informative: false},
			{Name: "DailyPageViewsPerVisitor", Cardinality: 49, Informative: true, WeightScale: 0.8},
			{Name: "SearchVisits", Cardinality: 48, Informative: false},
			{Name: "TotalSitesLinkingIn", Cardinality: 48, Informative: false},
		},
		Copying:             CopyConfig{Cliques: 30, Size: 6, CopyProb: 0.85, OverlapProb: 0.5},
		EnsureTruthObserved: true,
		Seed:                seed,
	})
}

// Crowd simulates the CrowdFlower weather-sentiment dataset: 102
// workers, 992 tweets, exactly 20 workers per tweet, 4-way sentiment
// domain, mean worker accuracy 0.54, with labor-channel and coverage
// features partially predictive of accuracy (Figure 9's finding).
func Crowd(seed int64) (*Instance, error) {
	return Generate(Config{
		Name:         "crowd",
		Sources:      102,
		Objects:      992,
		DomainSize:   4,
		Assignment:   FixedPerObject,
		ObsPerObject: 20,
		MeanAccuracy: 0.52,
		AccuracySD:   0.2,
		MinAccuracy:  0.1,
		MaxAccuracy:  0.97,
		WrongBias:    0.95, // sentiment classes are confusable
		Features: []FeatureGroup{
			{Name: "channel", Cardinality: 12, Informative: true, WeightScale: 2.0},
			{Name: "country", Cardinality: 24, Informative: false},
			{Name: "city", Cardinality: 125, Informative: false},
			{Name: "coverage", Cardinality: 10, Informative: true, WeightScale: 1.4},
		},
		EnsureTruthObserved: true,
		Seed:                seed,
	})
}

// Genomics simulates the GAD gene-disease association dataset from the
// paper's motivating example: 2750 articles, 571 conflicting
// gene-disease pairs, ~1.1 observations per article (extreme long-tail
// sparsity), boolean associations, and PubMed metadata features with a
// very large value vocabulary (journal, citations, year, authors).
func Genomics(seed int64) (*Instance, error) {
	return Generate(Config{
		Name:         "genomics",
		Sources:      2750,
		Objects:      571,
		DomainSize:   2,
		Assignment:   SkewedSources,
		ObsPerObject: 5, // ~5.3 observations per object
		SourceSkew:   0.35,
		MeanAccuracy: 0.62,
		AccuracySD:   0.15,
		MinAccuracy:  0.2,
		MaxAccuracy:  0.95,
		Features: []FeatureGroup{
			{Name: "journal", Cardinality: 300, Informative: true, WeightScale: 1.5},
			{Name: "citations", Cardinality: 12, Informative: true, WeightScale: 1.2},
			{Name: "pubyear", Cardinality: 30, Informative: false},
			// Author lists: multi-label with a huge vocabulary, the
			// bulk of Table 1's 16358 feature values.
			{Name: "author", Cardinality: 16016, Informative: false, PerSource: 4},
		},
		EnsureTruthObserved: true,
		Seed:                seed,
	})
}

// Example6 builds the synthetic instance of the paper's Example 6 /
// Figure 4: 1000 independent sources, 1000 objects, binary domain,
// configurable density and average accuracy, no domain features (the
// figure's EM and ERM are Sources-EM and Sources-ERM).
func Example6(avgAccuracy, density float64, seed int64) (*Instance, error) {
	return Generate(Config{
		Name:                "example6",
		Sources:             1000,
		Objects:             1000,
		DomainSize:          2,
		Assignment:          IIDDensity,
		Density:             density,
		MeanAccuracy:        avgAccuracy,
		AccuracySD:          0.15,
		MinAccuracy:         0.3,
		MaxAccuracy:         0.95,
		EnsureTruthObserved: true,
		Seed:                seed,
	})
}

// NamedDataset builds one of the four calibrated simulators by name
// ("stocks", "demos", "crowd", "genomics").
func NamedDataset(name string, seed int64) (*Instance, error) {
	switch name {
	case "stocks":
		return Stocks(seed)
	case "demos":
		return Demos(seed)
	case "crowd":
		return Crowd(seed)
	case "genomics":
		return Genomics(seed)
	}
	return nil, errUnknownDataset(name)
}

type errUnknownDataset string

func (e errUnknownDataset) Error() string {
	return "synth: unknown dataset " + string(e) + " (want stocks|demos|crowd|genomics)"
}

// AllNames lists the calibrated dataset names in the paper's order.
func AllNames() []string { return []string{"stocks", "demos", "crowd", "genomics"} }
