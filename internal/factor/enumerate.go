package factor

import (
	"errors"
	"math"

	"slimfast/internal/mathx"
)

// ExactMarginalsEnumerate computes marginals by brute-force enumeration
// of the joint state space (latent variables only; evidence stays
// pinned). It refuses graphs with more than maxStates joint states.
// This is the validation oracle for the Gibbs sampler on graphs with
// higher-arity factors, where ExactMarginalsSingleton does not apply.
func (g *Graph) ExactMarginalsEnumerate(maxStates int) ([][]float64, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	n := len(g.card)
	// Count joint states over latent variables.
	states := 1
	latent := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if g.evidence[v] >= 0 {
			continue
		}
		latent = append(latent, v)
		if states > maxStates/g.card[v] {
			return nil, errors.New("factor: state space too large to enumerate")
		}
		states *= g.card[v]
	}

	assign := make([]int, n)
	for v := 0; v < n; v++ {
		if g.evidence[v] >= 0 {
			assign[v] = g.evidence[v]
		}
	}
	logp := make([]float64, states)
	scratch := make([]int, 0, 8)
	for st := 0; st < states; st++ {
		// Decode the joint state.
		rest := st
		for _, v := range latent {
			assign[v] = rest % g.card[v]
			rest /= g.card[v]
		}
		var lp float64
		for fi := range g.factors {
			f := &g.factors[fi]
			scratch = scratch[:0]
			for _, fv := range f.Vars {
				scratch = append(scratch, assign[fv])
			}
			lp += f.Weight * f.Potential(scratch)
		}
		logp[st] = lp
	}
	lse := mathx.LogSumExp(logp)

	out := make([][]float64, n)
	for v := 0; v < n; v++ {
		out[v] = make([]float64, g.card[v])
		if g.evidence[v] >= 0 {
			out[v][g.evidence[v]] = 1
		}
	}
	for st := 0; st < states; st++ {
		p := math.Exp(logp[st] - lse)
		rest := st
		for _, v := range latent {
			out[v][rest%g.card[v]] += p
			rest /= g.card[v]
		}
	}
	return out, nil
}
