// Package factor implements a compact factor-graph representation with
// a Gibbs sampler. It stands in for the DeepDive sampler that the paper
// compiles SLiMFast's logistic-regression model onto (Section 3.2).
//
// The graph holds categorical variables and weighted factors. A factor
// connects a set of variables and contributes weight·potential(assign)
// to the log-density, so the joint distribution is
//
//	P(x) ∝ exp Σ_f weight_f · potential_f(x_f)
//
// Indicator potentials over single variables recover exactly SLiMFast's
// Equation 4; higher-arity potentials support extensions such as the
// copying-source features of Appendix D.
package factor

import (
	"errors"
	"fmt"

	"slimfast/internal/mathx"
	"slimfast/internal/parallel"
	"slimfast/internal/randx"
)

// Potential scores an assignment to the factor's variables. vals[i] is
// the current value of the factor's i-th variable. Implementations must
// be pure functions.
type Potential func(vals []int) float64

// Factor is one weighted potential over a set of variables.
type Factor struct {
	Vars      []int // indices into the graph's variables
	Weight    float64
	Potential Potential
}

// Graph is a factor graph under construction or sampling. The zero
// value is an empty graph ready for AddVariable/AddFactor.
type Graph struct {
	card       []int // cardinality per variable
	evidence   []int // fixed value per variable, -1 when latent
	factors    []Factor
	varFactors [][]int // factor indices adjacent to each variable
}

// AddVariable adds a categorical variable with the given cardinality
// and returns its index. Cardinality must be at least 1.
func (g *Graph) AddVariable(cardinality int) int {
	if cardinality < 1 {
		panic("factor: variable cardinality must be >= 1")
	}
	g.card = append(g.card, cardinality)
	g.evidence = append(g.evidence, -1)
	g.varFactors = append(g.varFactors, nil)
	return len(g.card) - 1
}

// SetEvidence pins variable v to value val (observed evidence). Pass
// val = -1 to clear evidence and make the variable latent again.
func (g *Graph) SetEvidence(v, val int) error {
	if v < 0 || v >= len(g.card) {
		return fmt.Errorf("factor: variable %d out of range", v)
	}
	if val >= g.card[v] || val < -1 {
		return fmt.Errorf("factor: evidence %d out of range for cardinality %d", val, g.card[v])
	}
	g.evidence[v] = val
	return nil
}

// AddFactor attaches a weighted potential over the given variables.
func (g *Graph) AddFactor(f Factor) error {
	if f.Potential == nil {
		return errors.New("factor: nil potential")
	}
	if len(f.Vars) == 0 {
		return errors.New("factor: factor with no variables")
	}
	for _, v := range f.Vars {
		if v < 0 || v >= len(g.card) {
			return fmt.Errorf("factor: variable %d out of range", v)
		}
	}
	idx := len(g.factors)
	g.factors = append(g.factors, f)
	for _, v := range f.Vars {
		g.varFactors[v] = append(g.varFactors[v], idx)
	}
	return nil
}

// NumVariables returns the number of variables in the graph.
func (g *Graph) NumVariables() int { return len(g.card) }

// NumFactors returns the number of factors in the graph.
func (g *Graph) NumFactors() int { return len(g.factors) }

// Cardinality returns the domain size of variable v.
func (g *Graph) Cardinality(v int) int { return g.card[v] }

// GibbsConfig controls a sampling run.
type GibbsConfig struct {
	Burnin  int   // sweeps discarded before counting
	Samples int   // counted sweeps
	Seed    int64 // chain seed

	// Workers bounds the goroutines used by the independent-chains
	// fan-out (<= 0 means runtime.GOMAXPROCS(0)). Unless Workers is
	// exactly 1, a graph where no factor couples two latent variables —
	// always true for the fully factorized graphs SLiMFast compiles
	// to — samples each latent variable from its own decorrelated
	// stream (seeded by Seed and the variable index alone). The path
	// choice and the streams depend only on the config, never on the
	// host's core count or scheduling, so the marginals are
	// bit-identical for every Workers != 1 on every machine.
	// Workers == 1 keeps the legacy single-stream sweep chain, which
	// visits variables in order from one generator; graphs with
	// latent-latent couplings also fall back to that chain, whose
	// correctness does not admit independent per-variable sampling.
	Workers int
}

// DefaultGibbsConfig returns settings adequate for the per-object
// posteriors in this repository (chains mix in a handful of sweeps
// because the compiled SLiMFast graph is fully factorized).
func DefaultGibbsConfig() GibbsConfig {
	return GibbsConfig{Burnin: 50, Samples: 200, Seed: 1}
}

// Gibbs runs the sampler and returns per-variable marginal estimates:
// marginals[v][d] ≈ P(X_v = d | evidence). Evidence variables get a
// point mass on their pinned value.
func (g *Graph) Gibbs(cfg GibbsConfig) ([][]float64, error) {
	if cfg.Samples <= 0 {
		return nil, errors.New("factor: Samples must be positive")
	}
	if cfg.Burnin < 0 {
		return nil, errors.New("factor: Burnin must be non-negative")
	}
	// The path choice keys off the configured Workers, not the resolved
	// host parallelism: the same config must sample the same marginals
	// on a 1-core laptop and a 64-core runner.
	if cfg.Workers != 1 && g.latentsIndependent() {
		return g.gibbsIndependent(cfg), nil
	}
	rng := randx.New(cfg.Seed)
	n := len(g.card)
	state := make([]int, n)
	for v := range state {
		if g.evidence[v] >= 0 {
			state[v] = g.evidence[v]
		} else {
			state[v] = rng.Intn(g.card[v])
		}
	}
	counts := make([][]float64, n)
	for v := range counts {
		counts[v] = make([]float64, g.card[v])
	}
	scores := make([]float64, 0, 16)
	scratch := make([]int, 0, 8)
	for sweep := 0; sweep < cfg.Burnin+cfg.Samples; sweep++ {
		for v := 0; v < n; v++ {
			if g.evidence[v] >= 0 {
				continue
			}
			scores = scores[:0]
			for d := 0; d < g.card[v]; d++ {
				state[v] = d
				var s float64
				for _, fi := range g.varFactors[v] {
					f := &g.factors[fi]
					scratch = scratch[:0]
					for _, fv := range f.Vars {
						scratch = append(scratch, state[fv])
					}
					s += f.Weight * f.Potential(scratch)
				}
				scores = append(scores, s)
			}
			probs := mathx.Softmax(scores, nil)
			state[v] = rng.Categorical(probs)
		}
		if sweep >= cfg.Burnin {
			for v := 0; v < n; v++ {
				counts[v][state[v]]++
			}
		}
	}
	total := float64(cfg.Samples)
	for v := range counts {
		if g.evidence[v] >= 0 {
			for d := range counts[v] {
				counts[v][d] = 0
			}
			counts[v][g.evidence[v]] = 1
			continue
		}
		for d := range counts[v] {
			counts[v][d] /= total
		}
	}
	return counts, nil
}

// latentsIndependent reports whether no factor couples two latent
// variables, i.e. the posterior factorizes over variables and each
// latent variable's full conditional is constant across sweeps.
func (g *Graph) latentsIndependent() bool {
	for _, f := range g.factors {
		latent := 0
		for _, v := range f.Vars {
			if g.evidence[v] < 0 {
				latent++
			}
		}
		if latent > 1 {
			return false
		}
	}
	return true
}

// gibbsIndependent samples each latent variable from its own chain.
// With no latent-latent couplings a variable's full conditional never
// changes, so its draws are i.i.d. from one fixed softmax — no mixing
// is needed and Burnin is skipped entirely, leaving Samples categorical
// draws per variable. Each variable draws from a stream derived from
// (Seed, variable index) alone, making the marginals a deterministic
// function of the config — bit-identical for every worker count — while
// the per-object chains fan out over the workers.
func (g *Graph) gibbsIndependent(cfg GibbsConfig) [][]float64 {
	n := len(g.card)
	counts := make([][]float64, n)
	total := float64(cfg.Samples)
	parallel.Do(n, cfg.Workers, func(ch parallel.Chunk) {
		var scores, probs []float64
		var vals []int
		for v := ch.Lo; v < ch.Hi; v++ {
			out := make([]float64, g.card[v])
			counts[v] = out
			if g.evidence[v] >= 0 {
				out[g.evidence[v]] = 1
				continue
			}
			if cap(scores) < g.card[v] {
				scores = make([]float64, g.card[v])
			}
			scores = scores[:g.card[v]]
			for d := range scores {
				scores[d] = 0
				for _, fi := range g.varFactors[v] {
					f := &g.factors[fi]
					if cap(vals) < len(f.Vars) {
						vals = make([]int, len(f.Vars))
					}
					vals = vals[:len(f.Vars)]
					for j, fv := range f.Vars {
						if fv == v {
							vals[j] = d
						} else {
							// Independence guarantees every other
							// variable in the factor is evidence.
							vals[j] = g.evidence[fv]
						}
					}
					scores[d] += f.Weight * f.Potential(vals)
				}
			}
			probs = mathx.Softmax(scores, probs)
			rng := randx.New(randx.Mix(cfg.Seed, int64(v)))
			for s := 0; s < cfg.Samples; s++ {
				out[rng.Categorical(probs)]++
			}
			for d := range out {
				out[d] /= total
			}
		}
	})
	return counts
}

// MAP returns the marginal-MAP assignment from a Gibbs run: each
// variable takes its highest-marginal value. For the fully factorized
// graphs SLiMFast compiles to, this equals the exact MAP.
func (g *Graph) MAP(cfg GibbsConfig) ([]int, error) {
	marg, err := g.Gibbs(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(marg))
	for v, ps := range marg {
		best, bestP := 0, ps[0]
		for d := 1; d < len(ps); d++ {
			if ps[d] > bestP {
				best, bestP = d, ps[d]
			}
		}
		out[v] = best
	}
	return out, nil
}

// ExactMarginalsSingleton computes marginals exactly for graphs whose
// factors are all unary (every factor touches exactly one variable).
// Returns an error if any factor has arity > 1; callers fall back to
// Gibbs in that case. This is the fast path for SLiMFast's Equation 4.
func (g *Graph) ExactMarginalsSingleton() ([][]float64, error) {
	for _, f := range g.factors {
		if len(f.Vars) != 1 {
			return nil, errors.New("factor: graph has non-unary factors; use Gibbs")
		}
	}
	out := make([][]float64, len(g.card))
	vals := make([]int, 1)
	for v := range g.card {
		if g.evidence[v] >= 0 {
			p := make([]float64, g.card[v])
			p[g.evidence[v]] = 1
			out[v] = p
			continue
		}
		scores := make([]float64, g.card[v])
		for d := range scores {
			vals[0] = d
			for _, fi := range g.varFactors[v] {
				f := &g.factors[fi]
				scores[d] += f.Weight * f.Potential(vals)
			}
		}
		out[v] = mathx.Softmax(scores, nil)
	}
	return out, nil
}

// IndicatorEquals returns a unary potential that is 1 when the variable
// equals target and 0 otherwise — the building block of SLiMFast's
// compiled model (1[v_{o,s} = d] in Equation 4).
func IndicatorEquals(target int) Potential {
	return func(vals []int) float64 {
		if vals[0] == target {
			return 1
		}
		return 0
	}
}

// IndicatorNotEquals returns a unary potential that is 1 when the
// variable differs from target — used by the copying-source features of
// Appendix D (active when the fused value disagrees with the value two
// copiers agree on).
func IndicatorNotEquals(target int) Potential {
	return func(vals []int) float64 {
		if vals[0] != target {
			return 1
		}
		return 0
	}
}
