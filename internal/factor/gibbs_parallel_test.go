package factor

import (
	"math"
	"testing"
)

// buildUnaryGraph compiles a small fully factorized graph: every factor
// is unary, matching the structure SLiMFast's Equation 4 compiles to.
func buildUnaryGraph(t *testing.T) *Graph {
	t.Helper()
	var g Graph
	weights := [][]float64{
		{1.2, -0.3, 0.1},
		{0.0, 0.9},
		{-0.5, 0.5, 1.5, -1.0},
		{2.0, 0.0},
	}
	for v, ws := range weights {
		id := g.AddVariable(len(ws))
		for d, w := range ws {
			if err := g.AddFactor(Factor{Vars: []int{id}, Weight: w, Potential: IndicatorEquals(d)}); err != nil {
				t.Fatal(err)
			}
		}
		_ = v
	}
	if err := g.SetEvidence(3, 1); err != nil {
		t.Fatal(err)
	}
	return &g
}

// TestGibbsIndependentChainsDeterministic: with a factorized graph the
// parallel sampler draws each variable from its own (Seed, variable)
// stream, so marginals are bit-identical for every worker count > 1.
func TestGibbsIndependentChainsDeterministic(t *testing.T) {
	g := buildUnaryGraph(t)
	run := func(workers int) [][]float64 {
		m, err := g.Gibbs(GibbsConfig{Burnin: 20, Samples: 500, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Workers=0 (the default: GOMAXPROCS fan-out) must match any
	// explicit count — the streams depend only on (Seed, variable).
	m0, m2, m8 := run(0), run(2), run(8)
	for v := range m2 {
		for d := range m2[v] {
			if m2[v][d] != m8[v][d] || m2[v][d] != m0[v][d] {
				t.Fatalf("marginal[%d][%d] differs across worker counts: %v / %v / %v", v, d, m0[v][d], m2[v][d], m8[v][d])
			}
		}
	}
	// Evidence stays a point mass.
	if m2[3][1] != 1 || m2[3][0] != 0 {
		t.Fatalf("evidence marginal = %v, want point mass on 1", m2[3])
	}
}

// TestGibbsIndependentChainsMatchExact: the independent-chain sampler
// must estimate the same distribution the closed form computes.
func TestGibbsIndependentChainsMatchExact(t *testing.T) {
	g := buildUnaryGraph(t)
	exact, err := g.ExactMarginalsSingleton()
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := g.Gibbs(GibbsConfig{Burnin: 50, Samples: 20000, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact {
		for d := range exact[v] {
			if diff := math.Abs(exact[v][d] - sampled[v][d]); diff > 0.02 {
				t.Errorf("marginal[%d][%d]: exact %v vs sampled %v (diff %v)", v, d, exact[v][d], sampled[v][d], diff)
			}
		}
	}
}

// TestGibbsCoupledLatentsFallBack: a factor over two latent variables
// rules out independent chains, so any worker count must reproduce the
// legacy single-stream sweep chain exactly.
func TestGibbsCoupledLatentsFallBack(t *testing.T) {
	build := func() *Graph {
		var g Graph
		a := g.AddVariable(2)
		b := g.AddVariable(2)
		if err := g.AddFactor(Factor{Vars: []int{a}, Weight: 0.7, Potential: IndicatorEquals(1)}); err != nil {
			t.Fatal(err)
		}
		// Coupling: reward agreement between the two latents.
		agree := func(vals []int) float64 {
			if vals[0] == vals[1] {
				return 1
			}
			return 0
		}
		if err := g.AddFactor(Factor{Vars: []int{a, b}, Weight: 1.1, Potential: agree}); err != nil {
			t.Fatal(err)
		}
		return &g
	}
	g := build()
	if g.latentsIndependent() {
		t.Fatal("coupled graph misclassified as independent")
	}
	cfg := GibbsConfig{Burnin: 10, Samples: 300, Seed: 11}
	serial, err := g.Gibbs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 6
	parallelRun, err := g.Gibbs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range serial {
		for d := range serial[v] {
			if serial[v][d] != parallelRun[v][d] {
				t.Fatalf("coupled graph: workers=6 diverged from the sweep chain at [%d][%d]", v, d)
			}
		}
	}
}

// TestGibbsIndependentEvidenceCoupling: factors joining a latent to an
// evidence variable keep chains independent (the evidence side is a
// constant), and the conditional must reflect the pinned value.
func TestGibbsIndependentEvidenceCoupling(t *testing.T) {
	var g Graph
	a := g.AddVariable(2)
	e := g.AddVariable(2)
	if err := g.SetEvidence(e, 1); err != nil {
		t.Fatal(err)
	}
	match := func(vals []int) float64 {
		if vals[0] == vals[1] {
			return 1
		}
		return 0
	}
	if err := g.AddFactor(Factor{Vars: []int{a, e}, Weight: 2.0, Potential: match}); err != nil {
		t.Fatal(err)
	}
	if !g.latentsIndependent() {
		t.Fatal("latent-evidence coupling misclassified as dependent")
	}
	m, err := g.Gibbs(GibbsConfig{Burnin: 50, Samples: 20000, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// P(a=1) = logistic(2.0) ≈ 0.881.
	want := 1 / (1 + math.Exp(-2.0))
	if diff := math.Abs(m[a][1] - want); diff > 0.02 {
		t.Errorf("P(a=1) = %v, want ≈ %v", m[a][1], want)
	}
}
