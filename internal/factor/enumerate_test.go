package factor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEnumerateMatchesSingletonPath(t *testing.T) {
	g := buildBiased(0.8)
	singleton, err := g.ExactMarginalsSingleton()
	if err != nil {
		t.Fatal(err)
	}
	enum, err := g.ExactMarginalsEnumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	for d := range singleton[0] {
		if math.Abs(singleton[0][d]-enum[0][d]) > 1e-12 {
			t.Errorf("value %d: singleton %v vs enum %v", d, singleton[0][d], enum[0][d])
		}
	}
}

func TestEnumerateRespectsEvidence(t *testing.T) {
	var g Graph
	v0 := g.AddVariable(2)
	v1 := g.AddVariable(2)
	agree := func(vals []int) float64 {
		if vals[0] == vals[1] {
			return 1
		}
		return 0
	}
	if err := g.AddFactor(Factor{Vars: []int{v0, v1}, Weight: 2, Potential: agree}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEvidence(v0, 1); err != nil {
		t.Fatal(err)
	}
	m, err := g.ExactMarginalsEnumerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if m[v0][1] != 1 {
		t.Error("evidence not pinned in enumeration")
	}
	// P(v1=1 | v0=1) = logistic(2)
	want := 1 / (1 + math.Exp(-2))
	if math.Abs(m[v1][1]-want) > 1e-12 {
		t.Errorf("P(v1=1) = %v, want %v", m[v1][1], want)
	}
}

func TestEnumerateRefusesHugeGraphs(t *testing.T) {
	var g Graph
	for i := 0; i < 40; i++ {
		g.AddVariable(3)
	}
	_ = g.AddFactor(Factor{Vars: []int{0}, Weight: 1, Potential: IndicatorEquals(0)})
	if _, err := g.ExactMarginalsEnumerate(1000); err == nil {
		t.Error("huge state space should be refused")
	}
}

// TestQuickGibbsMatchesEnumeration: on random small pairwise graphs,
// the Gibbs marginals agree with brute-force enumeration.
func TestQuickGibbsMatchesEnumeration(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling-heavy property test in -short mode")
	}
	f := func(w1, w2, w3 float64, ev uint8) bool {
		clampW := func(x float64) float64 {
			x = math.Mod(x, 3)
			if math.IsNaN(x) {
				return 0
			}
			return x
		}
		var g Graph
		a := g.AddVariable(2)
		b := g.AddVariable(3)
		c := g.AddVariable(2)
		agree01 := func(vals []int) float64 {
			if vals[0] == vals[1]%2 {
				return 1
			}
			return 0
		}
		if err := g.AddFactor(Factor{Vars: []int{a, b}, Weight: clampW(w1), Potential: agree01}); err != nil {
			return false
		}
		if err := g.AddFactor(Factor{Vars: []int{b, c}, Weight: clampW(w2), Potential: agree01}); err != nil {
			return false
		}
		if err := g.AddFactor(Factor{Vars: []int{a}, Weight: clampW(w3), Potential: IndicatorEquals(1)}); err != nil {
			return false
		}
		if ev%3 == 0 {
			if err := g.SetEvidence(c, int(ev)%2); err != nil {
				return false
			}
		}
		exact, err := g.ExactMarginalsEnumerate(0)
		if err != nil {
			return false
		}
		gibbs, err := g.Gibbs(GibbsConfig{Burnin: 300, Samples: 12000, Seed: int64(ev) + 1})
		if err != nil {
			return false
		}
		for v := range exact {
			for d := range exact[v] {
				if math.Abs(exact[v][d]-gibbs[v][d]) > 0.05 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
