package factor

import (
	"math"
	"testing"

	"slimfast/internal/mathx"
)

func TestAddVariableAndFactorValidation(t *testing.T) {
	var g Graph
	v := g.AddVariable(3)
	if v != 0 || g.NumVariables() != 1 || g.Cardinality(0) != 3 {
		t.Fatal("AddVariable bookkeeping wrong")
	}
	if err := g.AddFactor(Factor{Vars: []int{0}, Weight: 1, Potential: IndicatorEquals(0)}); err != nil {
		t.Fatal(err)
	}
	if g.NumFactors() != 1 {
		t.Error("NumFactors wrong")
	}
	if err := g.AddFactor(Factor{Vars: []int{5}, Weight: 1, Potential: IndicatorEquals(0)}); err == nil {
		t.Error("out-of-range variable should error")
	}
	if err := g.AddFactor(Factor{Vars: []int{0}, Weight: 1}); err == nil {
		t.Error("nil potential should error")
	}
	if err := g.AddFactor(Factor{Weight: 1, Potential: IndicatorEquals(0)}); err == nil {
		t.Error("empty vars should error")
	}
}

func TestAddVariablePanicsOnBadCardinality(t *testing.T) {
	var g Graph
	defer func() {
		if recover() == nil {
			t.Error("cardinality 0 should panic")
		}
	}()
	g.AddVariable(0)
}

func TestSetEvidence(t *testing.T) {
	var g Graph
	g.AddVariable(2)
	if err := g.SetEvidence(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEvidence(0, 5); err == nil {
		t.Error("out-of-range evidence should error")
	}
	if err := g.SetEvidence(3, 0); err == nil {
		t.Error("out-of-range variable should error")
	}
	if err := g.SetEvidence(0, -1); err != nil {
		t.Errorf("clearing evidence should be allowed: %v", err)
	}
}

// buildBiased builds one binary variable with a single indicator factor
// of weight w on value 1, so P(X=1) = logistic(w).
func buildBiased(w float64) *Graph {
	var g Graph
	g.AddVariable(2)
	_ = g.AddFactor(Factor{Vars: []int{0}, Weight: w, Potential: IndicatorEquals(1)})
	return &g
}

func TestExactMarginalsMatchLogistic(t *testing.T) {
	for _, w := range []float64{-2, 0, 0.5, 3} {
		g := buildBiased(w)
		m, err := g.ExactMarginalsSingleton()
		if err != nil {
			t.Fatal(err)
		}
		want := mathx.Logistic(w)
		if math.Abs(m[0][1]-want) > 1e-12 {
			t.Errorf("w=%v: P(X=1) = %v, want %v", w, m[0][1], want)
		}
	}
}

func TestGibbsMatchesExactOnSingleton(t *testing.T) {
	g := buildBiased(1.2)
	exact, err := g.ExactMarginalsSingleton()
	if err != nil {
		t.Fatal(err)
	}
	cfg := GibbsConfig{Burnin: 100, Samples: 20000, Seed: 7}
	gibbs, err := g.Gibbs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gibbs[0][1]-exact[0][1]) > 0.02 {
		t.Errorf("Gibbs %v vs exact %v", gibbs[0][1], exact[0][1])
	}
}

func TestGibbsRespectsEvidence(t *testing.T) {
	g := buildBiased(-5) // strongly prefers value 0
	if err := g.SetEvidence(0, 1); err != nil {
		t.Fatal(err)
	}
	m, err := g.Gibbs(DefaultGibbsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m[0][1] != 1 || m[0][0] != 0 {
		t.Errorf("evidence ignored: %v", m[0])
	}
	exact, err := g.ExactMarginalsSingleton()
	if err != nil {
		t.Fatal(err)
	}
	if exact[0][1] != 1 {
		t.Errorf("exact marginals ignore evidence: %v", exact[0])
	}
}

func TestGibbsPairwiseAttraction(t *testing.T) {
	// Two binary variables with a strong agreement factor: the joint
	// should concentrate on {00, 11}, making the conditional
	// correlation visible in marginal of v1 given evidence on v0.
	var g Graph
	v0 := g.AddVariable(2)
	v1 := g.AddVariable(2)
	agree := func(vals []int) float64 {
		if vals[0] == vals[1] {
			return 1
		}
		return 0
	}
	if err := g.AddFactor(Factor{Vars: []int{v0, v1}, Weight: 3, Potential: agree}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEvidence(v0, 1); err != nil {
		t.Fatal(err)
	}
	cfg := GibbsConfig{Burnin: 200, Samples: 5000, Seed: 3}
	m, err := g.Gibbs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := mathx.Logistic(3) // P(v1=1 | v0=1) = e^3/(e^3+1)
	if math.Abs(m[v1][1]-want) > 0.03 {
		t.Errorf("P(v1=1|v0=1) = %v, want ~%v", m[v1][1], want)
	}
}

func TestExactMarginalsRejectsPairwise(t *testing.T) {
	var g Graph
	g.AddVariable(2)
	g.AddVariable(2)
	_ = g.AddFactor(Factor{Vars: []int{0, 1}, Weight: 1, Potential: func(v []int) float64 { return 1 }})
	if _, err := g.ExactMarginalsSingleton(); err == nil {
		t.Error("pairwise factor should force Gibbs")
	}
}

func TestMAPPicksHigherMarginal(t *testing.T) {
	g := buildBiased(2)
	cfg := GibbsConfig{Burnin: 50, Samples: 500, Seed: 11}
	mp, err := g.MAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mp[0] != 1 {
		t.Errorf("MAP = %v, want value 1", mp[0])
	}
	g2 := buildBiased(-2)
	mp2, err := g2.MAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mp2[0] != 0 {
		t.Errorf("MAP = %v, want value 0", mp2[0])
	}
}

func TestGibbsConfigValidation(t *testing.T) {
	g := buildBiased(0)
	if _, err := g.Gibbs(GibbsConfig{Samples: 0}); err == nil {
		t.Error("Samples=0 should error")
	}
	if _, err := g.Gibbs(GibbsConfig{Samples: 10, Burnin: -1}); err == nil {
		t.Error("negative burnin should error")
	}
}

func TestGibbsDeterministicPerSeed(t *testing.T) {
	g := buildBiased(0.7)
	cfg := GibbsConfig{Burnin: 10, Samples: 100, Seed: 5}
	m1, err := g.Gibbs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g.Gibbs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1[0][0] != m2[0][0] {
		t.Error("same seed must reproduce the chain")
	}
}

func TestIndicatorPotentials(t *testing.T) {
	eq := IndicatorEquals(2)
	if eq([]int{2}) != 1 || eq([]int{1}) != 0 {
		t.Error("IndicatorEquals wrong")
	}
	ne := IndicatorNotEquals(2)
	if ne([]int{2}) != 0 || ne([]int{1}) != 1 {
		t.Error("IndicatorNotEquals wrong")
	}
}

func TestSlimFastEquation4Compilation(t *testing.T) {
	// Compile a 3-source object per Equation 4: sources with scores
	// σ = [2, 2, 1]; sources 0,1 vote value 0, source 2 votes value 1.
	// P(To=0) = e^{4} / (e^{4} + e^{1}).
	var g Graph
	v := g.AddVariable(2)
	votes := []struct {
		val   int
		sigma float64
	}{{0, 2}, {0, 2}, {1, 1}}
	for _, vt := range votes {
		if err := g.AddFactor(Factor{Vars: []int{v}, Weight: vt.sigma, Potential: IndicatorEquals(vt.val)}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := g.ExactMarginalsSingleton()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(4) / (math.Exp(4) + math.Exp(1))
	if math.Abs(m[v][0]-want) > 1e-12 {
		t.Errorf("Equation 4 posterior = %v, want %v", m[v][0], want)
	}
}
