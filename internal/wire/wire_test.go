package wire

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

const (
	testMagic   = "TSTW"
	testVersion = uint32(3)
)

// writeSample encodes one value of every primitive the codec speaks.
func writeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, testVersion)
	w.Uint8(7)
	w.Bool(true)
	w.Bool(false)
	w.Uint32(0xdeadbeef)
	w.Uint64(1 << 62)
	w.Int64(-42)
	w.Int(-1)
	w.Float64(math.Pi)
	w.Float64(math.Copysign(0, -1)) // signed zero must round-trip
	w.String("hello, wire")
	w.String("")
	w.Float64s([]float64{1.5, -2.25, math.Inf(1)})
	w.Int64s([]int64{-1, 0, 1})
	w.Ints([]int{3, 1, 4})
	w.Int32s([]int32{-7, 7})
	w.Strings([]string{"a", "", "bc"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	b := writeSample(t)
	r, err := NewReader(bytes.NewReader(b), testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Uint8(); got != 7 {
		t.Errorf("Uint8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %x", got)
	}
	if got := r.Uint64(); got != 1<<62 {
		t.Errorf("Uint64 = %x", got)
	}
	if got := r.Int64(); got != -42 {
		t.Errorf("Int64 = %d", got)
	}
	if got := r.Int(); got != -1 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Float64(); got != math.Pi {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Float64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("signed zero lost: %v", got)
	}
	if got := r.String(); got != "hello, wire" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	fs := r.Float64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.25 || !math.IsInf(fs[2], 1) {
		t.Errorf("Float64s = %v", fs)
	}
	is := r.Int64s()
	if len(is) != 3 || is[0] != -1 || is[2] != 1 {
		t.Errorf("Int64s = %v", is)
	}
	ints := r.Ints()
	if len(ints) != 3 || ints[0] != 3 || ints[2] != 4 {
		t.Errorf("Ints = %v", ints)
	}
	i32 := r.Int32s()
	if len(i32) != 2 || i32[0] != -7 || i32[1] != 7 {
		t.Errorf("Int32s = %v", i32)
	}
	ss := r.Strings()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "bc" {
		t.Errorf("Strings = %v", ss)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	b := writeSample(t)
	if _, err := NewReader(bytes.NewReader(b), "NOPE", testVersion); !errors.Is(err, ErrMagic) {
		t.Errorf("err = %v, want ErrMagic", err)
	}
	// An invalid magic length is a caller bug, not a typed stream error.
	if _, err := NewReader(bytes.NewReader(b), "LONGMAGIC", testVersion); err == nil {
		t.Error("long magic accepted")
	}
	if w := NewWriter(&bytes.Buffer{}, "XY", 1); w.Err() == nil {
		t.Error("short writer magic accepted")
	}
}

func TestVersionSkew(t *testing.T) {
	b := writeSample(t)
	_, err := NewReader(bytes.NewReader(b), testMagic, testVersion+1)
	if !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestChecksumMismatch(t *testing.T) {
	b := writeSample(t)
	// Flip a bit in the footer so the payload still parses.
	b[len(b)-1] ^= 0x01
	r, err := NewReader(bytes.NewReader(b), testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	drainSample(r)
	if err := r.Close(); !errors.Is(err, ErrChecksum) {
		t.Errorf("Close = %v, want ErrChecksum", err)
	}
}

func TestPayloadCorruptionCaughtByChecksum(t *testing.T) {
	b := writeSample(t)
	// Flip a payload bit (the Uint64 field). The value parses fine but
	// Close must reject the stream.
	b[20] ^= 0x80
	r, err := NewReader(bytes.NewReader(b), testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	drainSample(r)
	if err := r.Close(); !errors.Is(err, ErrChecksum) {
		t.Errorf("Close = %v, want ErrChecksum", err)
	}
}

func TestTruncation(t *testing.T) {
	b := writeSample(t)
	// Every strict prefix must fail with ErrTruncated somewhere —
	// either mid-read or at Close (missing footer). Never a panic,
	// never a silent success.
	for cut := 0; cut < len(b); cut++ {
		r, err := NewReader(bytes.NewReader(b[:cut]), testMagic, testVersion)
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut=%d: NewReader err = %v, want ErrTruncated", cut, err)
			}
			continue
		}
		drainSample(r)
		if err := r.Close(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: Close = %v, want ErrTruncated", cut, err)
		}
	}
}

// drainSample reads the sample payload, tolerating sticky errors.
func drainSample(r *Reader) {
	r.Uint8()
	r.Bool()
	r.Bool()
	r.Uint32()
	r.Uint64()
	r.Int64()
	r.Int()
	r.Float64()
	r.Float64()
	_ = r.String()
	_ = r.String()
	r.Float64s()
	r.Int64s()
	r.Ints()
	r.Int32s()
	r.Strings()
}

// TestLyingLengthHitsTruncationNotOOM: a cap-passing but absurd
// length prefix backed by almost no data must fail with ErrTruncated
// after allocating in proportion to the bytes actually present — not
// preallocate the declared length.
func TestLyingLengthHitsTruncationNotOOM(t *testing.T) {
	build := func(write func(w *Writer)) *Reader {
		var buf bytes.Buffer
		w := NewWriter(&buf, testMagic, testVersion)
		write(w)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()), testMagic, testVersion)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := build(func(w *Writer) {
		w.Uint32(maxSliceLen - 1) // claims ~256M floats...
		w.Float64(1)              // ...delivers one
	})
	if xs := r.Float64s(); xs != nil || !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("Float64s = %d elems, err = %v; want nil + ErrTruncated", len(xs), r.Err())
	}
	r = build(func(w *Writer) {
		w.Uint32(maxSliceLen - 1) // claims a ~256MB string...
		w.Uint8('x')              // ...delivers one byte
	})
	if s := r.String(); s != "" || !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("String = %d bytes, err = %v; want empty + ErrTruncated", len(s), r.Err())
	}
}

func TestLengthGuard(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, testVersion)
	w.Uint32(maxSliceLen + 1) // a hand-rolled oversized length prefix
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.String(); s != "" || r.Err() == nil {
		t.Errorf("oversized length accepted: %q, err=%v", s, r.Err())
	}
}

// failWriter fails after n bytes, to exercise sticky write errors.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(&failWriter{n: 6}, testMagic, testVersion)
	for i := 0; i < 100; i++ {
		w.Float64(1)
	}
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close = %v, want disk full", err)
	}
}

// TestNewReaderVersions covers multi-version format negotiation: the
// matched version is reported, unlisted versions fail with ErrVersion,
// and an empty accept set is a caller bug.
func TestNewReaderVersions(t *testing.T) {
	b := writeSample(t)
	r, v, err := NewReaderVersions(bytes.NewReader(b), testMagic, 1, testVersion, 9)
	if err != nil || v != testVersion {
		t.Fatalf("negotiation failed: v=%d err=%v", v, err)
	}
	if got := r.Uint8(); got != 7 {
		t.Errorf("payload after negotiation: Uint8 = %d", got)
	}
	if _, _, err := NewReaderVersions(bytes.NewReader(b), testMagic, 1, 2); !errors.Is(err, ErrVersion) {
		t.Errorf("unlisted version: err = %v, want ErrVersion", err)
	}
	if _, _, err := NewReaderVersions(bytes.NewReader(b), testMagic); err == nil {
		t.Error("empty accept set should error")
	}
	if _, _, err := NewReaderVersions(bytes.NewReader(b), "WRNG", testVersion); !errors.Is(err, ErrMagic) {
		t.Errorf("wrong magic: err = %v, want ErrMagic", err)
	}
	if _, _, err := NewReaderVersions(strings.NewReader("TS"), testMagic, testVersion); !errors.Is(err, ErrTruncated) {
		t.Errorf("short stream: err = %v, want ErrTruncated", err)
	}
}
