package wire

import (
	"bytes"
	"testing"
)

// fuzzMagic matches the checkpoint magic so the committed corpus can
// double as near-miss checkpoint headers.
const fuzzMagic = "SFCK"

// validStream builds a well-formed stream exercising every encoder,
// used both as a fuzz seed and as the round-trip reference.
func validStream() []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf, fuzzMagic, 3)
	w.Uint8(7)
	w.Bool(true)
	w.Uint32(123456)
	w.Uint64(1 << 40)
	w.Int(-42)
	w.Float64(3.14159)
	w.String("claims")
	w.Strings([]string{"a", "bb", ""})
	w.Float64s([]float64{1, 2.5})
	w.Int64s([]int64{-1, 9})
	w.Ints([]int{3})
	w.Int32s([]int32{-7, 7})
	w.Close()
	return buf.Bytes()
}

// FuzzDecode throws arbitrary bytes at the reader with the same read
// schedule the valid stream uses, and checks the decoder's two
// contracts: it never panics, and its allocations track bytes
// actually present — every decoded string or slice is bounded by the
// input's own length, no matter what the length prefixes claim.
func FuzzDecode(f *testing.F) {
	f.Add(validStream())
	f.Add([]byte("SFCK"))
	f.Add([]byte{})
	// Version accepted, then a lying length prefix.
	f.Add(append([]byte{'S', 'F', 'C', 'K', 3, 0, 0, 0}, 0xff, 0xff, 0xff, 0x0f))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, _, err := NewReaderVersions(bytes.NewReader(data), fuzzMagic, 1, 2, 3)
		if err != nil {
			return
		}
		r.Uint8()
		r.Bool()
		r.Uint32()
		r.Uint64()
		r.Int()
		r.Float64()
		s := r.String()
		ss := r.Strings()
		fs := r.Float64s()
		is := r.Int64s()
		ns := r.Ints()
		i32 := r.Int32s()
		r.Close()

		bound := len(data)
		if len(s) > bound {
			t.Fatalf("decoded string of %d bytes from a %d-byte input", len(s), bound)
		}
		total := 0
		for _, x := range ss {
			total += len(x)
		}
		if total > bound || len(ss) > bound {
			t.Fatalf("decoded %d strings / %d bytes from a %d-byte input", len(ss), total, bound)
		}
		for _, n := range []int{len(fs) * 8, len(is) * 8, len(ns) * 8, len(i32) * 4} {
			if n > bound {
				t.Fatalf("decoded slice of %d payload bytes from a %d-byte input", n, bound)
			}
		}
	})
}

// FuzzRoundTrip: any byte string survives a String write/read cycle
// bit for bit, and the checksum accepts what the writer produced.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{0, 1, 2, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		w := NewWriter(&buf, fuzzMagic, 1)
		w.String(string(payload))
		w.Int(len(payload))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()), fuzzMagic, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := r.String()
		n := r.Int()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if got != string(payload) || n != len(payload) {
			t.Fatalf("round trip mangled %q -> %q (n=%d)", payload, got, n)
		}
	})
}
