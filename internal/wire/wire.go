// Package wire is the small binary codec under the engine checkpoint
// format: a magic/version header, fixed-width little-endian
// primitives, and a trailing CRC-32C over everything written, so a
// reader can reject truncated, corrupted, or version-skewed streams
// with a typed error before any of the payload is trusted.
//
// The codec is deliberately dumb: no reflection, no varints, no
// schema. Layout knowledge lives entirely in the caller (one write
// call per field, mirrored by one read call), which keeps the format
// auditable byte for byte and the failure modes enumerable.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Typed decode failures. Callers match with errors.Is; the returned
// errors wrap these sentinels with positional detail.
var (
	// ErrMagic means the stream does not start with the expected
	// 4-byte magic — it is not a stream of this format at all.
	ErrMagic = errors.New("wire: bad magic")
	// ErrVersion means the magic matched but the format version is one
	// this build does not speak.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrChecksum means the payload parsed but its CRC-32C footer does
	// not match: the bytes were corrupted in flight or at rest.
	ErrChecksum = errors.New("wire: checksum mismatch")
	// ErrTruncated means the stream ended before the declared payload
	// (or the footer) was complete.
	ErrTruncated = errors.New("wire: truncated stream")
)

// castagnoli is the CRC-32C table; Castagnoli has hardware support on
// amd64/arm64, so checksumming never shows up in checkpoint profiles.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxSliceLen caps decoded slice and string lengths. Together with
// the grow-as-bytes-arrive decoding below (allocations track data
// actually read, never the declared length), a corrupted length
// prefix cannot drive a large allocation before the checksum is ever
// verified: on a finite stream it just runs into ErrTruncated.
const maxSliceLen = 1 << 28

// growChunk bounds how far ahead of the consumed bytes any decode
// allocation runs.
const growChunk = 1 << 16

// Writer encodes primitives to an io.Writer while folding every byte
// (header included) into a running CRC-32C. Errors are sticky: after
// the first write failure all further calls are no-ops and Close
// reports the error.
type Writer struct {
	w   io.Writer
	crc hash.Hash32
	err error
	buf [8]byte
}

// NewWriter starts a stream: it writes the 4-byte magic and the
// format version before returning.
func NewWriter(w io.Writer, magic string, version uint32) *Writer {
	wr := &Writer{w: w, crc: crc32.New(castagnoli)}
	if len(magic) != 4 {
		wr.err = fmt.Errorf("wire: magic must be 4 bytes, got %d", len(magic))
		return wr
	}
	wr.write([]byte(magic))
	wr.Uint32(version)
	return wr
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	if err == nil && n != len(p) {
		err = io.ErrShortWrite
	}
	if err != nil {
		w.err = err
		return
	}
	w.crc.Write(p)
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Close writes the CRC-32C footer and returns the first error of the
// whole stream. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	sum := w.crc.Sum32()
	binary.LittleEndian.PutUint32(w.buf[:4], sum)
	if _, err := w.w.Write(w.buf[:4]); err != nil {
		w.err = err
	}
	return w.err
}

// Uint8 writes one byte.
func (w *Writer) Uint8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// Bool writes a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	var b uint8
	if v {
		b = 1
	}
	w.Uint8(b)
}

// Uint32 writes a fixed-width little-endian uint32.
func (w *Writer) Uint32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// Uint64 writes a fixed-width little-endian uint64.
func (w *Writer) Uint64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// Int64 writes an int64 (two's complement, little-endian).
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.Int64(int64(v)) }

// Float64 writes the IEEE-754 bit pattern, so values round-trip bit
// for bit (NaN payloads and signed zeros included).
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// String writes a length-prefixed byte string.
func (w *Writer) String(s string) {
	w.Uint32(uint32(len(s)))
	w.write([]byte(s))
}

// Float64s writes a length-prefixed []float64.
func (w *Writer) Float64s(xs []float64) {
	w.Uint32(uint32(len(xs)))
	for _, x := range xs {
		w.Float64(x)
	}
}

// Int64s writes a length-prefixed []int64.
func (w *Writer) Int64s(xs []int64) {
	w.Uint32(uint32(len(xs)))
	for _, x := range xs {
		w.Int64(x)
	}
}

// Ints writes a length-prefixed []int (as int64s).
func (w *Writer) Ints(xs []int) {
	w.Uint32(uint32(len(xs)))
	for _, x := range xs {
		w.Int64(int64(x))
	}
}

// Int32s writes a length-prefixed []int32.
func (w *Writer) Int32s(xs []int32) {
	w.Uint32(uint32(len(xs)))
	for _, x := range xs {
		w.Uint32(uint32(x))
	}
}

// Strings writes a length-prefixed []string.
func (w *Writer) Strings(xs []string) {
	w.Uint32(uint32(len(xs)))
	for _, x := range xs {
		w.String(x)
	}
}

// Reader decodes a stream produced by Writer, folding every consumed
// byte into the CRC so Close can verify the footer. Errors are
// sticky; once any read fails, all further reads return zero values
// and Err/Close report the failure.
type Reader struct {
	r   io.Reader
	crc hash.Hash32
	err error
	buf [8]byte
}

// NewReader validates the 4-byte magic and the format version before
// returning; a stream of the wrong kind fails here with ErrMagic or
// ErrVersion, never half-parsed.
func NewReader(r io.Reader, magic string, version uint32) (*Reader, error) {
	rd, _, err := NewReaderVersions(r, magic, version)
	return rd, err
}

// NewReaderVersions is NewReader for formats that stay readable across
// revisions: the stream's version must match one of accept, and the
// matched version is returned so the caller can branch its decode
// layout on it. Anything else fails with ErrVersion (listing the
// accepted set) before any payload is parsed.
func NewReaderVersions(r io.Reader, magic string, accept ...uint32) (*Reader, uint32, error) {
	if len(magic) != 4 {
		return nil, 0, fmt.Errorf("wire: magic must be 4 bytes, got %d", len(magic))
	}
	if len(accept) == 0 {
		return nil, 0, errors.New("wire: no accepted versions")
	}
	rd := &Reader{r: r, crc: crc32.New(castagnoli)}
	var got [4]byte
	rd.read(got[:])
	if rd.err != nil {
		return nil, 0, rd.err
	}
	if string(got[:]) != magic {
		return nil, 0, fmt.Errorf("%w: got %q, want %q", ErrMagic, got[:], magic)
	}
	v := rd.Uint32()
	if rd.err != nil {
		return nil, 0, rd.err
	}
	for _, a := range accept {
		if v == a {
			return rd, v, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: stream is v%d, this build reads %v", ErrVersion, v, accept)
}

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			r.err = fmt.Errorf("%w: %v", ErrTruncated, err)
		} else {
			r.err = err
		}
		return
	}
	r.crc.Write(p)
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// fail records the first error (used by length-guard checks).
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Close reads the 4-byte CRC footer and verifies it against every
// byte consumed since NewReader. A short footer is ErrTruncated; a
// mismatch is ErrChecksum.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc.Sum32() // snapshot before the footer bytes are read
	var foot [4]byte
	if _, err := io.ReadFull(r.r, foot[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			r.err = fmt.Errorf("%w: missing checksum footer", ErrTruncated)
		} else {
			r.err = err
		}
		return r.err
	}
	if got := binary.LittleEndian.Uint32(foot[:]); got != want {
		r.err = fmt.Errorf("%w: footer %08x, computed %08x", ErrChecksum, got, want)
	}
	return r.err
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	r.read(r.buf[:1])
	return r.buf[0]
}

// Bool reads a byte written by Writer.Bool; any nonzero byte is true.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint32 reads a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	r.read(r.buf[:4])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// Uint64 reads a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	r.read(r.buf[:8])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// Int64 reads an int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Int reads an int64 written by Writer.Int.
func (r *Reader) Int() int { return int(r.Int64()) }

// Float64 reads an IEEE-754 bit pattern.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// length reads and guards a length prefix.
func (r *Reader) length() int {
	n := r.Uint32()
	if r.err != nil {
		return 0
	}
	if n > maxSliceLen {
		r.fail(fmt.Errorf("wire: length %d exceeds cap %d", n, maxSliceLen))
		return 0
	}
	return int(n)
}

// String reads a length-prefixed byte string, growing the buffer as
// bytes actually arrive.
func (r *Reader) String() string {
	n := r.length()
	if r.err != nil || n == 0 {
		return ""
	}
	out := make([]byte, 0, min(n, growChunk))
	var chunk [growChunk]byte
	for len(out) < n {
		m := min(n-len(out), growChunk)
		r.read(chunk[:m])
		if r.err != nil {
			return ""
		}
		out = append(out, chunk[:m]...)
	}
	return string(out)
}

// decodeSlice reads n elements via elem into a slice that grows with
// the data consumed (never preallocated to the declared length), so a
// lying length prefix ends in ErrTruncated, not an OOM.
func decodeSlice[T any](r *Reader, elem func() T) []T {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]T, 0, min(n, growChunk))
	for i := 0; i < n; i++ {
		v := elem()
		if r.err != nil {
			return nil
		}
		xs = append(xs, v)
	}
	return xs
}

// Float64s reads a length-prefixed []float64 (nil when empty).
func (r *Reader) Float64s() []float64 {
	return decodeSlice(r, r.Float64)
}

// Int64s reads a length-prefixed []int64 (nil when empty).
func (r *Reader) Int64s() []int64 {
	return decodeSlice(r, r.Int64)
}

// Ints reads a length-prefixed []int (nil when empty).
func (r *Reader) Ints() []int {
	return decodeSlice(r, r.Int)
}

// Int32s reads a length-prefixed []int32 (nil when empty).
func (r *Reader) Int32s() []int32 {
	return decodeSlice(r, func() int32 { return int32(r.Uint32()) })
}

// Strings reads a length-prefixed []string (nil when empty).
func (r *Reader) Strings() []string {
	return decodeSlice(r, r.String)
}
