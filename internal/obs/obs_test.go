package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-105.65) > 1e-9 {
		t.Fatalf("sum = %v, want 105.65", got)
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 2`, // 0.05 and 0.1 (le is inclusive)
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWriteDeterminism: the exposition must be byte-identical across
// writes, and independent of child registration order — families sort
// by name, children by label values.
func TestWriteDeterminism(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		r.Counter("test_b_total", "second family")
		v := r.CounterVec("test_a_total", "first family", "route", "status")
		for _, route := range order {
			v.With(route, "200").Inc()
		}
		var sb strings.Builder
		if err := r.Write(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	fwd := build([]string{"/observe", "/estimates", "/refine"})
	rev := build([]string{"/refine", "/estimates", "/observe"})
	if fwd != rev {
		t.Fatalf("exposition depends on registration order:\n%s\n--- vs ---\n%s", fwd, rev)
	}
	if i := strings.Index(fwd, "test_a_total"); i < 0 || strings.Index(fwd, "test_b_total") < i {
		t.Fatalf("families not sorted by name:\n%s", fwd)
	}
	if again := build([]string{"/observe", "/estimates", "/refine"}); again != fwd {
		t.Fatalf("exposition not stable across writes")
	}
}

// TestRoundTrip writes a registry with every metric kind — including
// label values and help text that need escaping — and parses the
// exposition back, requiring types, help, and values to survive.
func TestRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rt_ops_total", `ops with a \ backslash`)
	c.Add(7)
	g := r.Gauge("rt_temp", "multi\nline help")
	g.Set(-3.25)
	cv := r.CounterVec("rt_errs_total", "errors", "kind")
	cv.With(`weird "quoted" \ value`).Add(2)
	cv.With("line\nbreak").Inc()
	h := r.HistogramVec("rt_lat_seconds", "latency", []float64{0.5, 2}, "route")
	h.With("/x").Observe(0.1)
	h.With("/x").Observe(1)
	h.With("/x").Observe(99)

	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, sb.String())
	}

	ops := fams["rt_ops_total"]
	if ops == nil || ops.Type != "counter" || ops.Help != `ops with a \ backslash` {
		t.Fatalf("rt_ops_total family mangled: %+v", ops)
	}
	if v, ok := ops.Value("rt_ops_total", nil); !ok || v != 7 {
		t.Fatalf("rt_ops_total = %v (ok=%v), want 7", v, ok)
	}
	temp := fams["rt_temp"]
	if temp == nil || temp.Type != "gauge" || temp.Help != "multi\nline help" {
		t.Fatalf("rt_temp family mangled: %+v", temp)
	}
	if v, ok := temp.Value("rt_temp", nil); !ok || v != -3.25 {
		t.Fatalf("rt_temp = %v, want -3.25", v)
	}
	errs := fams["rt_errs_total"]
	if v, ok := errs.Value("rt_errs_total", map[string]string{"kind": `weird "quoted" \ value`}); !ok || v != 2 {
		t.Fatalf("escaped label value did not round-trip: %v %v", v, ok)
	}
	if v, ok := errs.Value("rt_errs_total", map[string]string{"kind": "line\nbreak"}); !ok || v != 1 {
		t.Fatalf("newline label value did not round-trip: %v %v", v, ok)
	}
	lat := fams["rt_lat_seconds"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("rt_lat_seconds family mangled: %+v", lat)
	}
	if v, ok := lat.Value("rt_lat_seconds_bucket", map[string]string{"route": "/x", "le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v, want 3", v)
	}
	if v, ok := lat.Value("rt_lat_seconds_count", map[string]string{"route": "/x"}); !ok || v != 3 {
		t.Fatalf("histogram count = %v, want 3", v)
	}
	if v, ok := lat.Value("rt_lat_seconds_sum", map[string]string{"route": "/x"}); !ok || math.Abs(v-100.1) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 100.1", v)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_ops_total", "ops").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentType)
	}
	if _, err := Parse(strings.NewReader(rec.Body.String())); err != nil {
		t.Fatalf("scrape body does not parse: %v", err)
	}
	if !strings.Contains(rec.Body.String(), "h_ops_total 1\n") {
		t.Fatalf("scrape missing sample:\n%s", rec.Body.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"9name 1",
		"ok_name notanumber",
		`ok_name{l="unterminated 1`,
		`ok_name{l="v" 1`,
		`ok_name{=x} 1`,
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) accepted a malformed line", bad)
		}
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x")
	mustPanic("duplicate", func() { r.Gauge("dup_total", "y") })
	mustPanic("bad name", func() { r.Counter("9starts_with_digit", "x") })
	mustPanic("bad label", func() { r.CounterVec("v_total", "x", "le") })
	mustPanic("bad buckets", func() { r.Histogram("h_seconds", "x", []float64{1, 1}) })
	v := r.CounterVec("arity_total", "x", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("id_total", "x", "k")
	if v.With("a") != v.With("a") {
		t.Fatal("With returned distinct children for the same label values")
	}
	if v.With("a") == v.With("b") {
		t.Fatal("With returned the same child for different label values")
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics reported nonzero values")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "x")
	g := r.Gauge("cc_gauge", "x")
	h := r.Histogram("cc_seconds", "x", []float64{1})
	v := r.CounterVec("cc_vec_total", "x", "k")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w%4))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
				v.With(key).Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	var vecTotal uint64
	for _, k := range []string{"a", "b", "c", "d"} {
		vecTotal += v.With(k).Value()
	}
	if vecTotal != workers*per {
		t.Fatalf("vec total = %d, want %d", vecTotal, workers*per)
	}
}

// The increment paths must stay allocation-free: they run inside the
// engine's Observe hot path, whose 0 allocs/op contract is gated by
// BenchmarkStreamIngest.
func TestIncrementsAreZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	r := NewRegistry()
	c := r.Counter("za_total", "x")
	g := r.Gauge("za_gauge", "x")
	h := r.Histogram("za_seconds", "x", nil)
	child := r.CounterVec("za_vec_total", "x", "k").With("hot") // resolved once, held
	check := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(200, f); n != 0 {
			t.Errorf("%s allocates %v per op, want 0", name, n)
		}
	}
	check("Counter.Inc", func() { c.Inc() })
	check("Gauge.Set", func() { g.Set(3.14) })
	check("Gauge.Add", func() { g.Add(0.5) })
	check("Histogram.Observe", func() { h.Observe(0.0042) })
	check("cached vec child Inc", func() { child.Inc() })
}

// BenchmarkMetricsScrape renders a registry of realistic size — the
// families the server exposes, with per-route and per-status children
// populated — the cost of one GET /v1/metrics.
func BenchmarkMetricsScrape(b *testing.B) {
	r := NewRegistry()
	routes := []string{"/v1/observe", "/v1/estimates", "/v1/sources", "/v1/features", "/v1/refine", "/v1/checkpoint", "/v1/healthz", "/v1/readyz", "/v1/stats", "/v1/query"}
	reqs := r.CounterVec("slimfast_http_requests_total", "requests", "route", "status")
	lat := r.HistogramVec("slimfast_http_request_duration_seconds", "latency", nil, "route")
	for _, rt := range routes {
		for _, st := range []string{"200", "400", "503"} {
			reqs.With(rt, st).Add(17)
		}
		for i := 0; i < 32; i++ {
			lat.With(rt).Observe(float64(i) / 100)
		}
	}
	r.Counter("slimfast_engine_observations_total", "triples").Add(1 << 20)
	r.Gauge("slimfast_http_inflight_requests", "in flight").Set(3)
	r.Histogram("slimfast_engine_epoch_refresh_seconds", "epoch", nil).Observe(0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
