// Package obs is a zero-dependency observability toolkit: a
// Prometheus-text-format (0.0.4) metrics registry whose increment
// paths are lock-free and allocation-free, so instruments can live
// inside the streaming engine's Observe hot path without breaking its
// 0 allocs/op contract.
//
// Metrics are registered once at startup (registration panics on
// duplicate or malformed names — a wiring bug, not a runtime
// condition) and incremented from any goroutine. Counter, Gauge and
// Histogram methods are nil-receiver-safe no-ops, so a subsystem can
// carry an un-wired metrics struct at zero cost and zero branching at
// call sites.
//
// Labeled families (CounterVec, HistogramVec) resolve children through
// a read-locked map; hot paths should resolve With(...) once and keep
// the child pointer, which is then as cheap as a scalar metric.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ContentType is the Prometheus text exposition content type served
// by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefBuckets are the default histogram upper bounds, in seconds,
// spanning sub-millisecond increments to multi-second epochs.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing counter.
type Counter struct{ n atomic.Uint64 }

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a float64 value that can go up and down, stored as atomic
// bits so Set is wait-free and Add is a CAS loop.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add offsets the gauge by d. Safe on a nil receiver (no-op).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observe touches
// one bucket counter and CASes the running sum — no locks, no
// allocation.
type Histogram struct {
	upper  []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records v. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// child is one labeled series of a vec family.
type child struct {
	values []string
	c      *Counter
	h      *Histogram
}

// family is one exposition family: a name, a type, and either a
// scalar metric or a set of labeled children.
type family struct {
	name, help string
	kind       kind
	labels     []string
	buckets    []float64

	c *Counter
	g *Gauge
	h *Histogram

	mu       sync.RWMutex
	children map[string]*child
}

// childFor resolves (creating on first use) the child for a label
// value tuple. The fast path is a read-locked map hit.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	ch := f.children[key]
	f.mu.RUnlock()
	if ch != nil {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch = f.children[key]; ch != nil {
		return ch
	}
	ch = &child{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindHistogram:
		ch.h = newHistogram(f.buckets)
	}
	f.children[key] = ch
	return ch
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With resolves the counter for a label value tuple. Hot paths should
// call With once and keep the child.
func (v *CounterVec) With(values ...string) *Counter { return v.f.childFor(values).c }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With resolves the histogram for a label value tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.childFor(values).h }

// Registry holds a set of metric families and renders them in the
// Prometheus text format, sorted and byte-deterministic.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || strings.ContainsRune(l, ':') || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, f.name))
		}
	}
	if f.kind == kindHistogram {
		if len(f.buckets) == 0 {
			f.buckets = DefBuckets
		}
		for i := 1; i < len(f.buckets); i++ {
			if f.buckets[i] <= f.buckets[i-1] {
				panic(fmt.Sprintf("obs: %s buckets must be strictly increasing", f.name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", f.name))
	}
	r.fams[f.name] = f
}

// Counter registers and returns a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// Histogram registers and returns a scalar histogram. A nil buckets
// slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := &family{name: name, help: help, kind: kindHistogram, buckets: buckets}
	r.register(f)
	f.h = newHistogram(f.buckets)
	return f.h
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: kindCounter, labels: labels, children: map[string]*child{}}
	r.register(f)
	return &CounterVec{f: f}
}

// HistogramVec registers a histogram family with the given label
// names. A nil buckets slice selects DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := &family{name: name, help: help, kind: kindHistogram, labels: labels, buckets: buckets, children: map[string]*child{}}
	r.register(f)
	return &HistogramVec{f: f}
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Write renders every family in the text exposition format. The
// output is byte-deterministic: families sort by name, children by
// label values, and labels appear in declaration order.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.expo(bw)
	}
	return bw.Flush()
}

func (f *family) expo(bw *bufio.Writer) {
	bw.WriteString("# HELP ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	helpEscaper.WriteString(bw, f.help)
	bw.WriteString("\n# TYPE ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	bw.WriteString(f.kind.String())
	bw.WriteByte('\n')

	if f.labels == nil {
		switch f.kind {
		case kindCounter:
			writeSample(bw, f.name, nil, nil, "", strconv.FormatUint(f.c.Value(), 10))
		case kindGauge:
			writeSample(bw, f.name, nil, nil, "", formatFloat(f.g.Value()))
		case kindHistogram:
			writeHistogramSeries(bw, f.name, nil, nil, f.h)
		}
		return
	}

	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make([]*child, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()

	for _, ch := range children {
		switch f.kind {
		case kindCounter:
			writeSample(bw, f.name, f.labels, ch.values, "", strconv.FormatUint(ch.c.Value(), 10))
		case kindHistogram:
			writeHistogramSeries(bw, f.name, f.labels, ch.values, ch.h)
		}
	}
}

// writeSample emits one `name{labels} value` line; le, when non-empty,
// is appended as the trailing bucket label.
func writeSample(bw *bufio.Writer, name string, lnames, lvals []string, le, value string) {
	bw.WriteString(name)
	if len(lnames) > 0 || le != "" {
		bw.WriteByte('{')
		for i := range lnames {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(lnames[i])
			bw.WriteString(`="`)
			labelEscaper.WriteString(bw, lvals[i])
			bw.WriteByte('"')
		}
		if le != "" {
			if len(lnames) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func writeHistogramSeries(bw *bufio.Writer, name string, lnames, lvals []string, h *Histogram) {
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		writeSample(bw, name+"_bucket", lnames, lvals, formatFloat(ub), strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSample(bw, name+"_bucket", lnames, lvals, "+Inf", strconv.FormatUint(cum, 10))
	writeSample(bw, name+"_sum", lnames, lvals, "", formatFloat(h.Sum()))
	writeSample(bw, name+"_count", lnames, lvals, "", strconv.FormatUint(cum, 10))
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.Write(w)
	})
}
