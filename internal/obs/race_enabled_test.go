//go:build race

package obs

// raceEnabled reports whether the race detector is active; the
// allocation-regression tests skip under it because instrumentation
// inserts allocations the production build does not make.
const raceEnabled = true
