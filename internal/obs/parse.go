package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a series name (which may
// carry a _bucket/_sum/_count suffix for histograms), its label set,
// and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: the # HELP / # TYPE header plus
// every sample attributed to it.
type Family struct {
	Name, Type, Help string
	Samples          []Sample
}

// Value returns the value of the sample with this exact series name
// and label set (le included for buckets).
func (f *Family) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Parse reads Prometheus text exposition format and groups samples
// into families keyed by family name. Histogram sub-series
// (_bucket/_sum/_count) attach to their base family when a # TYPE
// line declared it a histogram; samples with no header become
// untyped families of their own. It is the test-side inverse of
// Registry.Write and deliberately strict: a malformed line is an
// error, not a skip.
func Parse(r io.Reader) (map[string]*Family, error) {
	fams := map[string]*Family{}
	fam := func(name string) *Family {
		f := fams[name]
		if f == nil {
			f = &Family{Name: name}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(text, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			fam(name).Help = unescapeHelp(help)
			continue
		}
		if rest, ok := strings.CutPrefix(text, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line", line)
			}
			fam(name).Type = typ
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		base := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			t := strings.TrimSuffix(s.Name, suf)
			if t != s.Name {
				if f, ok := fams[t]; ok && f.Type == "histogram" {
					base = t
					break
				}
			}
		}
		f := fam(base)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

func parseSample(text string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(text) && text[i] != '{' && text[i] != ' ' {
		i++
	}
	s.Name = text[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if i < len(text) && text[i] == '{' {
		var err error
		s.Labels, i, err = parseLabels(text, i+1)
		if err != nil {
			return s, err
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(text[i:]), 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value in %q: %w", text, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `name="value",...}` starting just past the
// opening brace and returns the label map and the index past the
// closing brace. Escapes \\ \" \n in values are decoded.
func parseLabels(text string, i int) (map[string]string, int, error) {
	labels := map[string]string{}
	for {
		j := i
		for j < len(text) && text[j] != '=' {
			j++
		}
		if j >= len(text) || j+1 >= len(text) || text[j+1] != '"' {
			return nil, i, fmt.Errorf("malformed label in %q", text)
		}
		name := text[i:j]
		if !validName(name) {
			return nil, i, fmt.Errorf("invalid label name %q", name)
		}
		var val strings.Builder
		j += 2
		for j < len(text) && text[j] != '"' {
			if text[j] == '\\' && j+1 < len(text) {
				j++
				switch text[j] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(text[j])
				}
			} else {
				val.WriteByte(text[j])
			}
			j++
		}
		if j >= len(text) {
			return nil, i, fmt.Errorf("unterminated label value in %q", text)
		}
		labels[name] = val.String()
		j++ // past closing quote
		if j < len(text) && text[j] == ',' {
			i = j + 1
			continue
		}
		if j < len(text) && text[j] == '}' {
			return labels, j + 1, nil
		}
		return nil, i, fmt.Errorf("malformed label list in %q", text)
	}
}
