package resilience

import "context"

// RequestIDHeader is the trace header the serving layer generates (or
// accepts from clients) and the retrying client propagates: one
// ingest hitting the router fans out to members carrying the same ID,
// so a single request is followable across every process it touched.
const RequestIDHeader = "X-Request-ID"

type requestIDKey struct{}

// WithRequestID returns a context carrying a request trace ID. The
// retrying Client stamps it on every attempt of every request it
// sends under this context.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the trace ID carried by ctx ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
