package resilience

import (
	"errors"
	"io"
	"os"
	"sync"
	"syscall"
)

// This file is the fault-injection layer the durability tests drive:
// an io.Writer shim that tears, truncates or flips bytes at an exact
// offset, and a filesystem seam the checkpoint store writes through,
// so tests can make "the disk lied" deterministic — every injected
// fault must end in "recovered to the last good generation,
// bit-exact", never a corrupted engine.

// ErrInjected marks a failure produced by a fault shim, so tests can
// assert the error they provoked is the error they saw.
var ErrInjected = errors.New("resilience: injected fault")

// FaultMode selects what a FaultWriter does when the fault offset is
// reached.
type FaultMode int

const (
	// TearAt silently drops every byte from the fault offset on while
	// reporting success — the classic torn write: the writer (and its
	// fsync) believe the bytes landed, the file at rest is truncated.
	TearAt FaultMode = iota
	// FailAt returns an ENOSPC-wrapped ErrInjected at the fault offset,
	// persisting only the bytes before it — a full disk mid-write.
	FailAt
	// FlipAt XOR-flips the low bit of the byte at the fault offset and
	// keeps writing normally — silent media corruption.
	FlipAt
)

// FaultWriter wraps an io.Writer and injects one fault at byte offset
// Off per the Mode. Offsets are absolute across all Writes.
type FaultWriter struct {
	W    io.Writer
	Mode FaultMode
	Off  int64

	n int64 // bytes seen so far
}

// Write implements io.Writer with the configured fault.
func (f *FaultWriter) Write(p []byte) (int, error) {
	start := f.n
	f.n += int64(len(p))
	switch f.Mode {
	case TearAt:
		if start >= f.Off {
			return len(p), nil // claim success, persist nothing
		}
		if f.n > f.Off {
			keep := int(f.Off - start)
			if _, err := f.W.Write(p[:keep]); err != nil {
				return 0, err
			}
			return len(p), nil
		}
		return f.W.Write(p)
	case FailAt:
		if start >= f.Off {
			return 0, &os.PathError{Op: "write", Path: "fault", Err: errors.Join(ErrInjected, syscall.ENOSPC)}
		}
		if f.n > f.Off {
			keep := int(f.Off - start)
			if n, err := f.W.Write(p[:keep]); err != nil {
				return n, err
			}
			return int(f.Off - start), &os.PathError{Op: "write", Path: "fault", Err: errors.Join(ErrInjected, syscall.ENOSPC)}
		}
		return f.W.Write(p)
	case FlipAt:
		if start <= f.Off && f.Off < f.n {
			q := append([]byte(nil), p...)
			q[f.Off-start] ^= 1
			return f.W.Write(q)
		}
		return f.W.Write(p)
	default:
		return f.W.Write(p)
	}
}

// FS is the filesystem seam the checkpoint store writes and restores
// through. The production implementation is OS; tests substitute a
// FaultFS to inject write failures without touching real disks'
// behavior.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Open(name string) (io.ReadCloser, error)
	Stat(name string) (os.FileInfo, error)
	// SyncDir best-effort-fsyncs a directory so renames survive power
	// loss; refusals (FUSE, overlay mounts) are ignored by callers.
	SyncDir(dir string) error
}

// File is the writable handle FS hands out.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// OS is the passthrough FS.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Open(name string) (io.ReadCloser, error)      { return os.Open(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// FaultFS wraps an FS and arms faults against the files it creates.
// Arm installs a FaultWriter spec for the next created file (one
// shot); ArmRename makes the next Rename fail. The zero wrap passes
// everything through.
type FaultFS struct {
	Inner FS

	mu         sync.Mutex
	nextWrite  *FaultWriter // template: Mode+Off applied to next CreateTemp
	failRename bool
	failCreate bool
}

// NewFaultFS wraps inner (nil selects OS).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{Inner: inner}
}

// Arm installs a one-shot write fault applied to the next file
// created through the FS.
func (f *FaultFS) Arm(mode FaultMode, off int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextWrite = &FaultWriter{Mode: mode, Off: off}
}

// ArmRenameFailure makes the next Rename fail with ErrInjected.
func (f *FaultFS) ArmRenameFailure() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRename = true
}

// ArmCreateFailure makes the next CreateTemp fail with ErrInjected
// (a directory that stopped accepting files — quota, read-only
// remount).
func (f *FaultFS) ArmCreateFailure() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failCreate = true
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	f.mu.Lock()
	fw := f.nextWrite
	f.nextWrite = nil
	fc := f.failCreate
	f.failCreate = false
	f.mu.Unlock()
	if fc {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: errors.Join(ErrInjected, syscall.ENOSPC)}
	}
	file, err := f.Inner.CreateTemp(dir, pattern)
	if err != nil || fw == nil {
		return file, err
	}
	fw.W = file
	return &faultFile{File: file, w: fw}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	fr := f.failRename
	f.failRename = false
	f.mu.Unlock()
	if fr {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: ErrInjected}
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error                { return f.Inner.Remove(name) }
func (f *FaultFS) Open(name string) (io.ReadCloser, error) { return f.Inner.Open(name) }
func (f *FaultFS) Stat(name string) (os.FileInfo, error)   { return f.Inner.Stat(name) }
func (f *FaultFS) SyncDir(dir string) error                { return f.Inner.SyncDir(dir) }

// faultFile routes writes through the armed FaultWriter while keeping
// the underlying file's Sync/Close/Name.
type faultFile struct {
	File
	w *FaultWriter
}

func (f *faultFile) Write(p []byte) (int, error) { return f.w.Write(p) }
