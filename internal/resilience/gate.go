// Package resilience holds the overload- and fault-tolerance
// primitives under the serving path: an admission gate that bounds
// in-flight ingest work, deterministic exponential backoff, a
// retrying HTTP ingest client with idempotency keys, and the
// fault-injection shims (torn writes, ENOSPC, bit flips) the
// durability tests drive through the checkpoint store.
//
// Nothing here knows about the fusion engine: the package sits below
// cmd/slimfast and internal/stream so both the single-node server and
// the future cluster router can reuse the same admission, retry and
// fault-injection machinery.
package resilience

import (
	"errors"
	"sync/atomic"
)

// ErrSaturated is returned by Gate.Acquire when admitting the request
// would exceed the configured in-flight byte or request budget. The
// HTTP layer maps it to 429 + Retry-After; the retrying client backs
// off and re-sends.
var ErrSaturated = errors.New("resilience: server saturated")

// Gate is the admission controller: it bounds the number of in-flight
// requests and the total body bytes they may hold buffered at once,
// so a storm of large ingest bodies degrades into fast 429s instead
// of unbounded memory growth and a wedged ingest queue. The zero
// value admits nothing; use NewGate.
type Gate struct {
	maxBytes int64
	maxReqs  int64
	bytes    atomic.Int64
	reqs     atomic.Int64
	shed     atomic.Int64 // total admissions refused (observability)
}

// NewGate returns a gate admitting at most maxReqs concurrent
// requests holding at most maxBytes total reserved body bytes.
// Non-positive values select unbounded on that axis.
func NewGate(maxBytes, maxReqs int64) *Gate {
	return &Gate{maxBytes: maxBytes, maxReqs: maxReqs}
}

// Acquire reserves n bytes and one request slot. On success it
// returns a release function (safe to call exactly once); when the
// reservation would exceed either budget it returns ErrSaturated and
// reserves nothing.
func (g *Gate) Acquire(n int64) (release func(), err error) {
	if n < 0 {
		n = 0
	}
	if r := g.reqs.Add(1); g.maxReqs > 0 && r > g.maxReqs {
		g.reqs.Add(-1)
		g.shed.Add(1)
		return nil, ErrSaturated
	}
	if b := g.bytes.Add(n); g.maxBytes > 0 && b > g.maxBytes {
		g.bytes.Add(-n)
		g.reqs.Add(-1)
		g.shed.Add(1)
		return nil, ErrSaturated
	}
	return func() {
		g.bytes.Add(-n)
		g.reqs.Add(-1)
	}, nil
}

// Pressure reports the current reservation state: in-flight requests,
// reserved bytes, and how many admissions have been shed since start.
func (g *Gate) Pressure() (reqs, bytes, shed int64) {
	return g.reqs.Load(), g.bytes.Load(), g.shed.Load()
}

// Saturated reports whether the gate is at (or beyond) either budget
// right now — the /readyz signal: a load balancer should stop routing
// new ingest here until pressure drains.
func (g *Gate) Saturated() bool {
	if g.maxReqs > 0 && g.reqs.Load() >= g.maxReqs {
		return true
	}
	return g.maxBytes > 0 && g.bytes.Load() >= g.maxBytes
}
