package resilience

import (
	"math/rand"
	"time"
)

// Backoff produces capped exponential delays with deterministic
// seeded jitter: delay k is Base·Mult^k, clamped to Max, then
// stretched by a jitter factor in [1-Jitter, 1+Jitter]. The seeded
// RNG keeps retry schedules reproducible in tests while still
// decorrelating real clients that pass distinct seeds.
type Backoff struct {
	Base   time.Duration // first delay (default 100ms)
	Max    time.Duration // ceiling per delay (default 10s)
	Mult   float64       // growth factor (default 2)
	Jitter float64       // relative jitter in [0,1) (default 0.2)

	attempt int
	rng     *rand.Rand
}

// NewBackoff returns a Backoff with the default schedule and a
// jitter stream seeded by seed.
func NewBackoff(seed int64) *Backoff {
	return &Backoff{rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay before the upcoming retry and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	base, maxd, mult, jit := b.Base, b.Max, b.Mult, b.Jitter
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if maxd <= 0 {
		maxd = 10 * time.Second
	}
	if mult < 1 {
		mult = 2
	}
	if jit < 0 || jit >= 1 {
		jit = 0.2
	}
	d := float64(base)
	for i := 0; i < b.attempt; i++ {
		d *= mult
		if d >= float64(maxd) {
			d = float64(maxd)
			break
		}
	}
	b.attempt++
	if b.rng != nil && jit > 0 {
		d *= 1 - jit + 2*jit*b.rng.Float64()
	}
	if d > float64(maxd) {
		d = float64(maxd)
	}
	return time.Duration(d)
}

// Reset rewinds the schedule to the first delay (the jitter stream
// keeps advancing, so reset-after-success does not replay delays).
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt reports how many delays have been handed out since the
// last Reset.
func (b *Backoff) Attempt() int { return b.attempt }
