package resilience

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("RequestID on a bare context = %q, want empty", got)
	}
	if got := RequestID(WithRequestID(ctx, "abc-123")); got != "abc-123" {
		t.Fatalf("RequestID = %q, want abc-123", got)
	}
	// An empty ID must not shadow an inherited one.
	inner := WithRequestID(WithRequestID(ctx, "outer"), "")
	if got := RequestID(inner); got != "outer" {
		t.Fatalf("empty WithRequestID overwrote the inherited ID: %q", got)
	}
}

// TestClientStampsRequestIDOnRetries: every attempt — the first and
// each retry — must carry the context's trace ID, so a fan-out that
// retries mid-stream stays followable in member logs.
func TestClientStampsRequestIDOnRetries(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(RequestIDHeader))
		attempts++
		fail := attempts == 1
		mu.Unlock()
		if fail {
			http.Error(w, "transient", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), ClientConfig{
		MaxAttempts: 3,
		Backoff:     Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	ctx := WithRequestID(context.Background(), "trace-42")
	resp, err := c.Post(ctx, srv.URL, "text/csv", "seq-1", []byte("s,o,v\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(seen))
	}
	for i, id := range seen {
		if id != "trace-42" {
			t.Errorf("attempt %d carried request ID %q, want trace-42", i+1, id)
		}
	}
}
