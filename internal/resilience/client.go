package resilience

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// SeqHeader is the idempotency key header the retrying client stamps
// on every ingest body and the server's dedup window keys on: a
// retried request carrying the same key ingests exactly once even
// when the first attempt's response was lost.
const SeqHeader = "X-Batch-Seq"

// ClientConfig tunes the retrying ingest client.
type ClientConfig struct {
	// MaxAttempts bounds tries per request, first attempt included
	// (default 5).
	MaxAttempts int
	// RetryBudget bounds total retries across the client's lifetime, so
	// a long replay against a dying server fails fast instead of
	// multiplying every request by MaxAttempts (0 = unbounded).
	RetryBudget int64
	// PerTryTimeout bounds each attempt (0 = no per-attempt deadline;
	// the caller's context still applies).
	PerTryTimeout time.Duration
	// Backoff is the delay schedule template; its Base/Max/Mult/Jitter
	// fields are used, the RNG is per-client from Seed.
	Backoff Backoff
	// Seed fixes the jitter stream (0 = 1), keeping retry schedules
	// reproducible.
	Seed int64
}

// Client is an at-least-once HTTP ingest client made effectively
// exactly-once by idempotency keys: it retries transient failures
// (network errors, 408/429/5xx) with capped exponential backoff,
// honors Retry-After on shed responses, and stamps every request with
// the caller's sequence key so server-side dedup can collapse the
// retries. It is the ingest half the cluster router will fan out
// through; `slimfast replay` wires it to a claim file today.
type Client struct {
	hc      *http.Client
	cfg     ClientConfig
	retries atomic.Int64
}

// NewClient wraps hc (nil selects http.DefaultClient) with the retry
// policy in cfg.
func NewClient(hc *http.Client, cfg ClientConfig) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Client{hc: hc, cfg: cfg}
}

// Retries reports how many retries (attempts beyond each first) the
// client has spent so far.
func (c *Client) Retries() int64 { return c.retries.Load() }

// retryable reports whether an HTTP status is worth retrying: shed
// (429), timeout (408), and server-side failures. With an idempotency
// key even a 500 whose side effects landed is safe to retry.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusRequestTimeout ||
		status >= 500
}

// retryAfter parses a Retry-After header as delta-seconds (the form
// the slimfast server emits); absent or unparseable yields 0.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec >= 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 0
}

// Post sends body to url with the given content type and idempotency
// sequence key, retrying per the client's policy. On success (any
// non-retryable status, 2xx included) the response is returned with
// its body intact for the caller to consume. Once attempts or the
// retry budget run out, the last failure is returned as an error.
func (c *Client) Post(ctx context.Context, url, contentType, seq string, body []byte) (*http.Response, error) {
	return c.do(ctx, http.MethodPost, url, contentType, seq, body)
}

// Get fetches url under the same retry policy as Post. GETs are
// naturally idempotent, so no sequence key is stamped; the router
// leans on this for scatter-gather reads against cluster members.
func (c *Client) Get(ctx context.Context, url string) (*http.Response, error) {
	return c.do(ctx, http.MethodGet, url, "", "", nil)
}

// do runs the shared retry loop around attempt.
func (c *Client) do(ctx context.Context, method, url, contentType, seq string, body []byte) (*http.Response, error) {
	bo := Backoff{
		Base:   c.cfg.Backoff.Base,
		Max:    c.cfg.Backoff.Max,
		Mult:   c.cfg.Backoff.Mult,
		Jitter: c.cfg.Backoff.Jitter,
		rng:    NewBackoff(c.cfg.Seed).rng,
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if c.cfg.RetryBudget > 0 && c.retries.Add(1) > c.cfg.RetryBudget {
				c.retries.Add(-1)
				return nil, fmt.Errorf("resilience: retry budget exhausted: %w", lastErr)
			}
			if c.cfg.RetryBudget <= 0 {
				c.retries.Add(1)
			}
		}
		resp, err := c.attempt(ctx, method, url, contentType, seq, body)
		var ra time.Duration
		switch {
		case err != nil:
			lastErr = err
		case !retryable(resp.StatusCode):
			return resp, nil
		default:
			// Drain so the transport can reuse the connection, and note
			// the server's pacing if it gave one.
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("resilience: %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
			ra = retryAfter(resp)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if attempt < c.cfg.MaxAttempts-1 {
			// A Retry-After from the server overrides the local schedule
			// (which still advances, so later delays keep growing).
			d := bo.Next()
			if ra > 0 {
				d = ra
			}
			if !sleep(ctx, d) {
				return nil, ctx.Err()
			}
		}
	}
	return nil, fmt.Errorf("resilience: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// attempt runs one try. When a per-try deadline is configured, the
// attempt context is released only once the response body is closed —
// canceling earlier would kill the body read the caller still owns.
func (c *Client) attempt(ctx context.Context, method, url, contentType, seq string, body []byte) (*http.Response, error) {
	cancel := context.CancelFunc(func() {})
	if c.cfg.PerTryTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.cfg.PerTryTimeout)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		cancel()
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if seq != "" {
		req.Header.Set(SeqHeader, seq)
	}
	if id := RequestID(ctx); id != "" {
		req.Header.Set(RequestIDHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelOnClose ties a context's release to the response body's
// lifetime.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// sleep waits d or until ctx is done; it reports whether the full
// delay elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
