package resilience

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsAndReleases(t *testing.T) {
	g := NewGate(100, 2)
	rel1, err := g.Acquire(60)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := g.Acquire(30)
	if err != nil {
		t.Fatal(err)
	}
	// Third request exceeds maxReqs.
	if _, err := g.Acquire(1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third acquire = %v, want ErrSaturated", err)
	}
	rel2()
	// Byte budget: 60 held, 50 more would exceed 100.
	if _, err := g.Acquire(50); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-bytes acquire = %v, want ErrSaturated", err)
	}
	rel3, err := g.Acquire(40)
	if err != nil {
		t.Fatalf("within-budget acquire = %v", err)
	}
	reqs, bts, shed := g.Pressure()
	if reqs != 2 || bts != 100 || shed != 2 {
		t.Errorf("pressure = %d reqs %d bytes %d shed, want 2/100/2", reqs, bts, shed)
	}
	if !g.Saturated() {
		t.Error("gate at byte budget should report saturated")
	}
	rel1()
	rel3()
	if g.Saturated() {
		t.Error("drained gate should not be saturated")
	}
	if reqs, bts, _ := g.Pressure(); reqs != 0 || bts != 0 {
		t.Errorf("drained pressure = %d reqs %d bytes, want 0/0", reqs, bts)
	}
}

func TestGateUnboundedAxes(t *testing.T) {
	g := NewGate(0, 0)
	var rels []func()
	for i := 0; i < 100; i++ {
		rel, err := g.Acquire(1 << 30)
		if err != nil {
			t.Fatalf("unbounded gate refused acquire %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	if g.Saturated() {
		t.Error("unbounded gate can never saturate")
	}
	for _, rel := range rels {
		rel()
	}
	// Negative reservations clamp to zero instead of freeing budget.
	g2 := NewGate(10, 0)
	rel, err := g2.Acquire(-5)
	if err != nil {
		t.Fatal(err)
	}
	if _, bts, _ := g2.Pressure(); bts != 0 {
		t.Errorf("negative reservation held %d bytes", bts)
	}
	rel()
}

func TestGateConcurrent(t *testing.T) {
	g := NewGate(0, 8)
	var wg sync.WaitGroup
	var admitted, shed sync.Map
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, err := g.Acquire(1)
			if err != nil {
				shed.Store(i, true)
				return
			}
			admitted.Store(i, true)
			time.Sleep(time.Millisecond)
			rel()
		}(i)
	}
	wg.Wait()
	if reqs, bts, _ := g.Pressure(); reqs != 0 || bts != 0 {
		t.Errorf("pressure after drain = %d reqs %d bytes", reqs, bts)
	}
}

func TestBackoffScheduleGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Mult: 2, Jitter: 0}
	var got []time.Duration
	for i := 0; i < 6; i++ {
		got = append(got, b.Next())
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delay %d = %v, want %v", i, got[i], want[i])
		}
	}
	if b.Attempt() != 6 {
		t.Errorf("attempt = %d, want 6", b.Attempt())
	}
	b.Reset()
	if d := b.Next(); d != 100*time.Millisecond {
		t.Errorf("post-reset delay = %v, want 100ms", d)
	}
}

func TestBackoffJitterDeterministicPerSeed(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		b := NewBackoff(seed)
		b.Base, b.Max, b.Mult, b.Jitter = 100*time.Millisecond, 10*time.Second, 2, 0.2
		var out []time.Duration
		for i := 0; i < 5; i++ {
			out = append(out, b.Next())
		}
		return out
	}
	a1, a2, b1 := delays(7), delays(7), delays(8)
	same, diff := true, false
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
		}
		if a1[i] != b1[i] {
			diff = true
		}
		lo := time.Duration(float64(100*time.Millisecond) * 0.79 * pow2(i))
		hi := time.Duration(float64(100*time.Millisecond) * 1.21 * pow2(i))
		if a1[i] < lo || a1[i] > hi {
			t.Errorf("delay %d = %v outside jitter band [%v, %v]", i, a1[i], lo, hi)
		}
	}
	if !same {
		t.Error("same seed produced different schedules")
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
	// Defaults kick in for a zero-value schedule.
	var z Backoff
	if d := z.Next(); d < 80*time.Millisecond || d > 120*time.Millisecond {
		t.Errorf("zero-value first delay = %v, want ~100ms", d)
	}
}

func pow2(i int) float64 {
	f := 1.0
	for ; i > 0; i-- {
		f *= 2
	}
	return f
}

func TestFaultWriterTear(t *testing.T) {
	var buf bytes.Buffer
	fw := &FaultWriter{W: &buf, Mode: TearAt, Off: 10}
	for _, chunk := range []string{"0123", "456789abcd", "efgh"} {
		n, err := fw.Write([]byte(chunk))
		if err != nil || n != len(chunk) {
			t.Fatalf("torn write reported n=%d err=%v, want silent success", n, err)
		}
	}
	if got := buf.String(); got != "0123456789" {
		t.Errorf("persisted %q, want first 10 bytes only", got)
	}
}

func TestFaultWriterFail(t *testing.T) {
	var buf bytes.Buffer
	fw := &FaultWriter{W: &buf, Mode: FailAt, Off: 6}
	if n, err := fw.Write([]byte("0123")); n != 4 || err != nil {
		t.Fatalf("pre-fault write n=%d err=%v", n, err)
	}
	_, err := fw.Write([]byte("456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("fault write err = %v, want ErrInjected", err)
	}
	if got := buf.String(); got != "012345" {
		t.Errorf("persisted %q, want bytes before the fault", got)
	}
	// Further writes keep failing (offset already past).
	if _, err := fw.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("post-fault write err = %v, want ErrInjected", err)
	}
}

func TestFaultWriterFlip(t *testing.T) {
	var buf bytes.Buffer
	fw := &FaultWriter{W: &buf, Mode: FlipAt, Off: 5}
	for _, chunk := range []string{"0123", "4567"} {
		if _, err := fw.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	want := []byte("01234567")
	want[5] ^= 1
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("persisted %q, want %q (bit flipped at 5)", got, want)
	}
}

func TestFaultFSArming(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)

	// Unarmed: passthrough round trip.
	f, err := ffs.CreateTemp(dir, "plain*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	name := f.Name()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(name, name+".done"); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.Stat(name + ".done"); err != nil {
		t.Fatal(err)
	}
	rc, err := ffs.Open(name + ".done")
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Remove(name + ".done"); err != nil {
		t.Fatal(err)
	}

	// Armed write fault: one-shot ENOSPC.
	ffs.Arm(FailAt, 3)
	f2, err := ffs.CreateTemp(dir, "fault*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("abcdef")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write err = %v, want ErrInjected", err)
	}
	f2.Close()
	f3, err := ffs.CreateTemp(dir, "after*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f3.Write([]byte("abcdef")); err != nil {
		t.Errorf("fault was not one-shot: %v", err)
	}
	f3.Close()

	// Armed rename fault.
	ffs.ArmRenameFailure()
	if err := ffs.Rename(f3.Name(), f3.Name()+".x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed rename err = %v, want ErrInjected", err)
	}
	if err := ffs.Rename(f3.Name(), f3.Name()+".x"); err != nil {
		t.Errorf("rename fault was not one-shot: %v", err)
	}

	// Armed create fault.
	ffs.ArmCreateFailure()
	if _, err := ffs.CreateTemp(dir, "nope*"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed create err = %v, want ErrInjected", err)
	}
}
