package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastCfg keeps retry delays test-sized.
func fastCfg(attempts int) ClientConfig {
	return ClientConfig{
		MaxAttempts: attempts,
		Backoff:     Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Mult: 2, Jitter: 0},
		Seed:        1,
	}
}

func TestClientRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	var seqs []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seqs = append(seqs, r.Header.Get(SeqHeader))
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		body, _ := io.ReadAll(r.Body)
		if string(body) != "payload" {
			t.Errorf("retried body = %q, want replayed payload", body)
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("done"))
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), fastCfg(5))
	resp, err := c.Post(context.Background(), srv.URL, "text/plain", "seq-1", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out, _ := io.ReadAll(resp.Body)
	if string(out) != "done" {
		t.Errorf("body = %q", out)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
	if c.Retries() != 2 {
		t.Errorf("client counted %d retries, want 2", c.Retries())
	}
	for i, s := range seqs {
		if s != "seq-1" {
			t.Errorf("attempt %d carried seq %q, want seq-1 on every retry", i, s)
		}
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var times []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		times = append(times, time.Now())
		if len(times) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), fastCfg(3))
	start := time.Now()
	resp, err := c.Post(context.Background(), srv.URL, "text/plain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(times) != 2 {
		t.Fatalf("server saw %d calls, want 2", len(times))
	}
	if gap := times[1].Sub(start); gap < 900*time.Millisecond {
		t.Errorf("retry landed after %v, want >= ~1s per Retry-After", gap)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), fastCfg(5))
	resp, err := c.Post(context.Background(), srv.URL, "text/plain", "", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 passed through", resp.StatusCode)
	}
	if calls.Load() != 1 {
		t.Errorf("400 was retried %d times", calls.Load()-1)
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "still broken", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := NewClient(srv.Client(), fastCfg(3))
	_, err := c.Post(context.Background(), srv.URL, "text/plain", "", nil)
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	if !strings.Contains(err.Error(), "still broken") {
		t.Errorf("err %v does not carry the server's message", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
}

func TestClientRetryBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	cfg := fastCfg(10)
	cfg.RetryBudget = 3
	c := NewClient(srv.Client(), cfg)
	_, err := c.Post(context.Background(), srv.URL, "text/plain", "", nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("first request err = %v, want budget exhaustion", err)
	}
	// The budget is client-wide: a second request has nothing left and
	// must fail on its first retryable response.
	_, err = c.Post(context.Background(), srv.URL, "text/plain", "", nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("second request err = %v, want immediate budget exhaustion", err)
	}
	if got := c.Retries(); got != 3 {
		t.Errorf("retries spent = %d, want exactly the budget of 3", got)
	}
}

func TestClientContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := NewClient(srv.Client(), fastCfg(5))
	start := time.Now()
	_, err := c.Post(ctx, srv.URL, "text/plain", "", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancel did not interrupt the Retry-After sleep")
	}
}

func TestClientNetworkErrorRetries(t *testing.T) {
	// A server that dies after the first response: the second POST hits
	// a connection error and must be retried against... nothing, so the
	// client gives up with the transport error preserved.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()

	c := NewClient(&http.Client{}, fastCfg(2))
	_, err := c.Post(context.Background(), url, "text/plain", "", nil)
	if err == nil || !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Fatalf("err = %v, want transport failure after retries", err)
	}
}

func TestClientPerTryTimeout(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first attempt hangs past the per-try deadline
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	defer close(release)

	cfg := fastCfg(3)
	cfg.PerTryTimeout = 100 * time.Millisecond
	c := NewClient(srv.Client(), cfg)
	resp, err := c.Post(context.Background(), srv.URL, "text/plain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The successful response's body must still be readable: the
	// per-try context is released on body close, not before.
	out, err := io.ReadAll(resp.Body)
	if err != nil || string(out) != "ok" {
		t.Fatalf("body = %q err = %v after per-try timeout retry", out, err)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want hung first + ok second", calls.Load())
	}
}
