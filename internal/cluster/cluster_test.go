package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"slimfast/internal/resilience"
	"slimfast/internal/stream"
)

// fakeNode is a minimal in-memory stand-in for a `stream -listen`
// member: it records forwarded bodies and idempotency keys, dedups on
// them like the real server, and answers the coordination endpoints
// with canned (empty) drains. The real-engine equivalence lives in
// cmd/slimfast's router golden test; these tests pin the router's own
// protocol mechanics.
type fakeNode struct {
	mu       sync.Mutex
	seqs     []string // every /observe idempotency key, in arrival order
	claims   int      // claims ingested (deduped)
	deduped  int      // /observe requests collapsed by key
	seen     map[string]bool
	drains   []string // /epoch/drain tags, in arrival order
	masses   []string // /epoch/mass tags, in arrival order
	applies  []epochRequest
	failObs  int // fail this many /observe requests with 500 first
	checkpts int
}

func (f *fakeNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/observe", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.failObs > 0 {
			f.failObs--
			http.Error(w, "induced failure", http.StatusInternalServerError)
			return
		}
		seq := r.Header.Get(resilience.SeqHeader)
		f.seqs = append(f.seqs, seq)
		if seq != "" && f.seen[seq] {
			f.deduped++
			fmt.Fprintln(w, `{"ingested":0,"deduped":true}`)
			return
		}
		if seq != "" {
			f.seen[seq] = true
		}
		n := 0
		dec := json.NewDecoder(r.Body)
		for dec.More() {
			var v map[string]string
			if err := dec.Decode(&v); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			n++
		}
		f.claims += n
		fmt.Fprintf(w, `{"ingested":%d}`+"\n", n)
	})
	mux.HandleFunc("POST /v1/epoch/drain", func(w http.ResponseWriter, r *http.Request) {
		var req epochRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.drains = append(f.drains, req.Tag)
		f.mu.Unlock()
		json.NewEncoder(w).Encode(epochResponse{Tag: req.Tag, Sources: []stream.SourceStat{}})
	})
	mux.HandleFunc("POST /v1/epoch/mass", func(w http.ResponseWriter, r *http.Request) {
		var req epochRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.masses = append(f.masses, req.Tag)
		f.mu.Unlock()
		json.NewEncoder(w).Encode(epochResponse{Tag: req.Tag, Sources: []stream.SourceStat{
			{Source: "s0", Agree: 1, Total: 2},
		}})
	})
	mux.HandleFunc("POST /v1/epoch/apply", func(w http.ResponseWriter, r *http.Request) {
		var req epochRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.applies = append(f.applies, req)
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"tag": req.Tag})
	})
	mux.HandleFunc("POST /v1/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.checkpts++
		f.mu.Unlock()
		fmt.Fprintln(w, `{}`)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	return mux
}

// fakeCluster starts n fake nodes and a router over them.
func fakeCluster(t *testing.T, n int, mutate func(*Config)) (*Router, []*fakeNode) {
	t.Helper()
	fakes := make([]*fakeNode, n)
	urls := make([]string, n)
	for i := range fakes {
		fakes[i] = &fakeNode{seen: map[string]bool{}}
		srv := httptest.NewServer(fakes[i].handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	cfg := Config{
		Nodes:       urls,
		Batch:       4,
		EpochLength: 8,
		Retry:       resilience.ClientConfig{MaxAttempts: 3},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, fakes
}

// testClaims builds c claims over o distinct objects.
func testClaims(c, o int) []stream.Triple {
	out := make([]stream.Triple, c)
	for i := range out {
		out[i] = stream.Triple{
			Source: fmt.Sprintf("s%d", i%5),
			Object: fmt.Sprintf("obj-%d", i%o),
			Value:  fmt.Sprintf("v%d", i%3),
		}
	}
	return out
}

// TestIngestPartitionsByEngineHash: every claim lands on the node the
// engine's own shard hash selects — the invariant that makes N nodes
// interchangeable with N shards.
func TestIngestPartitionsByEngineHash(t *testing.T) {
	r, fakes := fakeCluster(t, 3, nil)
	claims := testClaims(64, 16)
	if _, err := r.Ingest(context.Background(), claims, "seq-a"); err != nil {
		t.Fatal(err)
	}
	want := make([]int, 3)
	for _, tr := range claims {
		want[stream.ShardIndex(tr.Object, 3)]++
	}
	for i, f := range fakes {
		if f.claims != want[i] {
			t.Fatalf("partition %d ingested %d claims, want %d", i, f.claims, want[i])
		}
		if got := r.Partition(claims[0].Object); got != stream.ShardIndex(claims[0].Object, 3) {
			t.Fatalf("Partition disagrees with stream.ShardIndex: %d", got)
		}
	}
}

// TestIngestBarriersAndDedup: a retried request re-forwards every
// chunk (restored nodes need the replay) with the same derived node
// keys, but claims count once and no extra barrier runs.
func TestIngestBarriersAndDedup(t *testing.T) {
	r, fakes := fakeCluster(t, 2, nil)
	claims := testClaims(16, 8) // batch 4, epoch 8 -> 4 chunks, 2 barriers
	res1, err := r.Ingest(context.Background(), claims, "seq-a")
	if err != nil {
		t.Fatal(err)
	}
	if res1.Ingested != 16 || res1.Claims != 16 || res1.Barriers != 2 {
		t.Fatalf("first ingest: %+v", res1)
	}
	firstSeqs := append([]string(nil), fakes[0].seqs...)
	res2, err := r.Ingest(context.Background(), claims, "seq-a")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Ingested != 0 || res2.DedupedChunks != 4 || res2.Claims != 16 || res2.Barriers != 2 {
		t.Fatalf("retried ingest: %+v", res2)
	}
	for _, f := range fakes {
		if f.claims != 0 && f.deduped == 0 {
			t.Fatalf("node saw no dedup on the retry: %+v", f.seqs)
		}
		for _, tag := range f.drains {
			if tag != "e1" && tag != "e2" {
				t.Fatalf("unexpected barrier tag %q", tag)
			}
		}
		if len(f.drains) != 2 {
			t.Fatalf("node drained %d times, want 2", len(f.drains))
		}
	}
	// The retry re-sent the same derived keys, in the same order.
	if got := fakes[0].seqs[len(firstSeqs):]; len(got) != len(firstSeqs) {
		t.Fatalf("retry forwarded %d requests, first pass %d", len(got), len(firstSeqs))
	} else {
		for i := range got {
			if got[i] != firstSeqs[i] {
				t.Fatalf("retry key %d = %q, first pass %q", i, got[i], firstSeqs[i])
			}
		}
	}
	if !strings.HasPrefix(firstSeqs[0], "seq-a.c0.n") {
		t.Fatalf("derived node key = %q", firstSeqs[0])
	}
}

// TestIngestRetriesThroughNodeFailure: a node that sheds a request
// with 500 is retried by the resilience client and the ingest still
// lands exactly once.
func TestIngestRetriesThroughNodeFailure(t *testing.T) {
	r, fakes := fakeCluster(t, 2, nil)
	fakes[0].failObs = 1
	fakes[1].failObs = 1
	res, err := r.Ingest(context.Background(), testClaims(8, 8), "seq-b")
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingested != 8 {
		t.Fatalf("ingested %d, want 8", res.Ingested)
	}
	if fakes[0].claims+fakes[1].claims != 8 {
		t.Fatalf("cluster holds %d claims, want 8", fakes[0].claims+fakes[1].claims)
	}
}

// TestCheckpointEveryBarrier: with CheckpointEpochs=1 every barrier
// checkpoints every node and writes the manifest.
func TestCheckpointEveryBarrier(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "cluster.json")
	r, fakes := fakeCluster(t, 2, func(c *Config) {
		c.CheckpointEpochs = 1
		c.ManifestPath = manifest
	})
	if _, err := r.Ingest(context.Background(), testClaims(16, 8), "seq-c"); err != nil {
		t.Fatal(err)
	}
	for i, f := range fakes {
		if f.checkpts != 2 {
			t.Fatalf("node %d checkpointed %d times, want 2", i, f.checkpts)
		}
	}
	m, err := LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Claims != 16 || m.Barriers != 2 {
		t.Fatalf("manifest: %+v", m)
	}
}

// TestManifestRestoreResumesState: a second router booted from the
// manifest resumes counters, dedup window and barrier position — a
// re-replayed request dedups instead of re-counting.
func TestManifestRestoreResumesState(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "cluster.json")
	mutate := func(c *Config) {
		c.CheckpointEpochs = 1
		c.ManifestPath = manifest
	}
	r1, fakes := fakeCluster(t, 2, mutate)
	claims := testClaims(16, 8)
	if _, err := r1.Ingest(context.Background(), claims, "seq-d"); err != nil {
		t.Fatal(err)
	}
	urls := r1.Nodes()
	r2, err := New(Config{
		Nodes: urls, Batch: 4, EpochLength: 8,
		CheckpointEpochs: 1, ManifestPath: manifest,
		Retry: resilience.ClientConfig{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Claims != 16 || st.Barriers != 2 {
		t.Fatalf("restored stats: %+v", st)
	}
	res, err := r2.Ingest(context.Background(), claims, "seq-d")
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingested != 0 || res.DedupedChunks != 4 {
		t.Fatalf("replay against restored router: %+v", res)
	}
	if res.Barriers != 2 {
		t.Fatalf("restored router re-ran barriers: %+v", res)
	}
	_ = fakes
}

// TestManifestRejectsLayoutChanges: node count, batch/epoch geometry
// and fold options are all part of the cluster's history; a config
// that changes them must be refused, not silently adopted.
func TestManifestRejectsLayoutChanges(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "cluster.json")
	r1, _ := fakeCluster(t, 2, func(c *Config) {
		c.CheckpointEpochs = 1
		c.ManifestPath = manifest
	})
	if _, err := r1.Ingest(context.Background(), testClaims(8, 8), "seq-e"); err != nil {
		t.Fatal(err)
	}
	urls := r1.Nodes()
	bad := []Config{
		{Nodes: urls[:1], Batch: 4, EpochLength: 8, ManifestPath: manifest},
		{Nodes: urls, Batch: 8, EpochLength: 8, ManifestPath: manifest},
		{Nodes: urls, Batch: 4, EpochLength: 16, ManifestPath: manifest},
		{Nodes: urls, Batch: 4, EpochLength: 8, ManifestPath: manifest,
			Opts: stream.Options{InitAccuracy: 0.6, PriorStrength: 4, Decay: 1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d adopted an incompatible manifest", i)
		}
	}
}

// TestHealthDegradesPerPartition: probes never block, and the
// aggregate status walks ok -> degraded -> unavailable as partitions
// go dark.
func TestHealthDegradesPerPartition(t *testing.T) {
	fakes := make([]*fakeNode, 2)
	srvs := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range fakes {
		fakes[i] = &fakeNode{seen: map[string]bool{}}
		srvs[i] = httptest.NewServer(fakes[i].handler())
		urls[i] = srvs[i].URL
	}
	defer srvs[1].Close()
	r, err := New(Config{Nodes: urls, Retry: resilience.ClientConfig{MaxAttempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if status, _ := r.Ready(ctx); status != "ready" {
		t.Fatalf("status = %q, want ready", status)
	}
	srvs[0].Close()
	status, nodes := r.Ready(ctx)
	if status != "degraded" {
		t.Fatalf("status = %q, want degraded", status)
	}
	if nodes[0].OK || !nodes[1].OK {
		t.Fatalf("per-partition report wrong: %+v", nodes)
	}
	if status, _ := r.Health(ctx); status != "degraded" {
		t.Fatalf("health = %q, want degraded", status)
	}
	srvs[1].Close()
	if status, _ := r.Ready(ctx); status != "unavailable" {
		t.Fatalf("status = %q, want unavailable", status)
	}
}

// TestRefineTagsAdvance: two refine operations must not share tags, or
// the nodes' single-entry response caches would replay stale mass.
func TestRefineTagsAdvance(t *testing.T) {
	r, fakes := fakeCluster(t, 1, nil)
	ctx := context.Background()
	if _, err := r.Refine(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Refine(ctx, 1); err != nil {
		t.Fatal(err)
	}
	f := fakes[0]
	f.mu.Lock()
	defer f.mu.Unlock()
	wantMass := []string{"r1.s0", "r1.s1", "r2.s0"}
	if len(f.masses) != len(wantMass) {
		t.Fatalf("mass tags = %v, want %v", f.masses, wantMass)
	}
	for i, tag := range wantMass {
		if f.masses[i] != tag {
			t.Fatalf("mass tags = %v, want %v", f.masses, wantMass)
		}
	}
	seen := map[string]bool{}
	for _, a := range f.applies {
		if seen[a.Tag] {
			t.Fatalf("apply tag %q reused across operations", a.Tag)
		}
		seen[a.Tag] = true
		if !a.Rescore {
			t.Fatalf("refine apply %q did not request a rescore", a.Tag)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("saw %d refine applies, want 3", len(seen))
	}
}
