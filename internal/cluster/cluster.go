// Package cluster implements the consistent-hash scale-out router
// behind `slimfast router`: one coordinator that partitions objects
// across N `slimfast stream -listen` nodes and drives their epochs so
// the cluster is bit-identical to a single N-shard engine fed the
// same claim stream.
//
// The design is the engine's own in-process shard pattern lifted one
// level up. A single engine partitions objects over shards with an
// FNV-1a hash, drains per-shard evidence deltas in shard order, folds
// them into one cumulative table, and freezes a new σ-table for the
// next epoch. The router does exactly that across processes: objects
// route to nodes with the same hash (stream.ShardIndex), ingest fans
// out over the nodes' HTTP /observe surface through the retrying
// resilience client, and at every epoch barrier the router drains all
// nodes in fixed node order (POST /epoch/drain), folds the deltas
// node-major — the same float accumulation order as a shard drain —
// recomputes the accuracies, and pushes the merged σ-table back (POST
// /epoch/apply). Refine is the same protocol over /epoch/mass with an
// eager rescore. Because every float is folded in the same order a
// single engine would fold it, the cluster's estimates and source
// accuracies match the single engine bit for bit
// (TestRouterGoldenEquivalence in cmd/slimfast pins this down).
//
// Exactly-once across retries and node restarts:
//
//   - Every fan-out chunk carries a derived idempotency key
//     ("<seq>.c<chunk>.n<node>"), so node-level dedup collapses
//     router retries.
//   - Duplicate chunks are always re-forwarded but never re-counted:
//     a node restored from its checkpoint needs the re-delivery (its
//     dedup window was checkpointed with it, so lost claims re-ingest
//     and already-applied ones are acknowledged without effect).
//   - Coordination exchanges are idempotent by barrier tag: draining
//     is destructive, so nodes replay the cached response of the last
//     tag instead of re-draining when a barrier retries after a lost
//     response.
//   - A failed barrier stays pending and re-runs at the same position
//     in the claim stream before any further chunk is forwarded —
//     barrier position determines the σ history, so it must not
//     drift under retries.
//
// The router's own durable state — cumulative per-source evidence,
// counters, and the chunk dedup window — is a small JSON manifest
// (see Manifest) written atomically beside the nodes' checkpoint
// generations at every cluster checkpoint.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slimfast/internal/obs"
	"slimfast/internal/resilience"
	"slimfast/internal/stream"
)

// Config assembles a Router.
type Config struct {
	// Nodes are the member base URLs ("http://host:port"). Their order
	// is the partition order and must be stable across router restarts:
	// object → node routing and the barrier fold order both key on it.
	Nodes []string

	// Batch is the fan-out chunk size in claims. Epoch barriers land on
	// chunk boundaries, so Batch together with EpochLength fixes where
	// in the claim stream the σ-table refreshes — the same role -batch
	// plays for a single engine.
	Batch int

	// EpochLength is how many claims pass between accuracy barriers,
	// cluster-wide (the single engine's -epoch).
	EpochLength int

	// Opts must match the streaming options the member nodes were
	// started with; the router re-runs the engine's accuracy fold with
	// them.
	Opts stream.Options

	// CheckpointEpochs triggers a cluster checkpoint (every node writes
	// a generation, then the manifest is written) after this many
	// barriers. 0 disables periodic checkpoints; the default 1 makes
	// every barrier durable, which is what provably lossless node
	// recovery wants.
	CheckpointEpochs int

	// ManifestPath is where the router persists its own state. Empty
	// disables the manifest (the router then restarts cold).
	ManifestPath string

	// DedupWindow bounds the chunk-key dedup ring (default 4096,
	// matching the nodes' request window).
	DedupWindow int

	// HTTP is the transport for all node traffic (nil =
	// http.DefaultClient).
	HTTP *http.Client

	// Retry tunes the resilience client wrapped around every fan-out
	// and coordination request.
	Retry resilience.ClientConfig

	// Log receives operational notes (nil = discard).
	Log io.Writer

	// Metrics is the optional instrumentation seam; the zero value is
	// a no-op.
	Metrics Metrics
}

// Router coordinates a fixed set of member nodes. All mutating
// operations serialize on one mutex — the cluster-level ingest lock,
// mirroring the per-node request serialization — while health probes
// read atomic counters and never block on in-flight work.
type Router struct {
	cfg    Config
	client *resilience.Client
	hc     *http.Client
	log    io.Writer

	mu    sync.Mutex
	ix    map[string]int // source name -> index in names/agree/total
	names []string
	agree []float64 // cluster-cumulative settled evidence
	total []float64
	// pendingBarrier records that the claim stream crossed an epoch
	// boundary but the barrier has not completed; it must run before
	// any further chunk is forwarded.
	pendingBarrier bool
	since          int   // claims since the last barrier
	claims         int64 // lifetime claims ingested (deduped)
	barriers       int64 // completed epoch barriers
	refines        int64 // completed refine operations
	refineSweeps   int   // sweeps completed of an in-flight refine
	seen           map[string]struct{}
	ring           []string // chunk-key dedup ring, oldest at ringAt
	ringAt         int

	// Probe-visible mirrors of the counters above, updated under mu,
	// read lock-free by Stats/Health/Ready.
	statClaims   atomic.Int64
	statBarriers atomic.Int64
	statRefines  atomic.Int64
	statSince    atomic.Int64
	statSources  atomic.Int64

	// Instrumentation (all nil-safe): per-partition fan-out children
	// resolved once at New, plus the scalar seams from Config.Metrics.
	met    Metrics
	fanReq []*obs.Counter
	fanSec []*obs.Histogram
}

// New validates cfg, normalizes the node URLs, and — when a manifest
// exists at cfg.ManifestPath — restores the router's state from it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: at least one node is required")
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1024
	}
	if cfg.EpochLength < 1 {
		cfg.EpochLength = 1024
	}
	if cfg.DedupWindow < 1 {
		cfg.DedupWindow = 4096
	}
	if cfg.Opts == (stream.Options{}) {
		cfg.Opts = stream.DefaultOptions()
	}
	if err := cfg.Opts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	nodes := make([]string, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		n = strings.TrimRight(n, "/")
		if n == "" {
			return nil, fmt.Errorf("cluster: node %d has an empty address", i)
		}
		if !strings.Contains(n, "://") {
			n = "http://" + n
		}
		nodes[i] = n
	}
	cfg.Nodes = nodes
	hc := cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	r := &Router{
		cfg:    cfg,
		client: resilience.NewClient(hc, cfg.Retry),
		hc:     hc,
		log:    cfg.Log,
		ix:     map[string]int{},
		seen:   map[string]struct{}{},
		ring:   make([]string, 0, cfg.DedupWindow),
		met:    cfg.Metrics,
		fanReq: make([]*obs.Counter, len(nodes)),
		fanSec: make([]*obs.Histogram, len(nodes)),
	}
	for j := range nodes {
		if cfg.Metrics.FanoutRequests != nil {
			r.fanReq[j] = cfg.Metrics.FanoutRequests.With(strconv.Itoa(j))
		}
		if cfg.Metrics.FanoutSeconds != nil {
			r.fanSec[j] = cfg.Metrics.FanoutSeconds.With(strconv.Itoa(j))
		}
	}
	if cfg.ManifestPath != "" {
		if err := r.restoreManifest(cfg.ManifestPath); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Nodes returns the normalized member URLs in partition order.
func (r *Router) Nodes() []string { return append([]string(nil), r.cfg.Nodes...) }

// Partition reports which node an object routes to — the engine's own
// FNV-1a shard routing, over nodes instead of shards.
func (r *Router) Partition(object string) int {
	return stream.ShardIndex(object, len(r.cfg.Nodes))
}

// internLocked returns the index for a source name, growing the
// cumulative vectors for new names.
func (r *Router) internLocked(name string) int {
	if i, ok := r.ix[name]; ok {
		return i
	}
	i := len(r.names)
	r.ix[name] = i
	r.names = append(r.names, name)
	r.agree = append(r.agree, 0)
	r.total = append(r.total, 0)
	return i
}

// seenKey / markKey implement the bounded chunk-key dedup window.
func (r *Router) seenKey(key string) bool {
	_, ok := r.seen[key]
	return ok
}

func (r *Router) markKey(key string) {
	if _, ok := r.seen[key]; ok {
		return
	}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, key)
	} else {
		delete(r.seen, r.ring[r.ringAt])
		r.ring[r.ringAt] = key
		r.ringAt = (r.ringAt + 1) % len(r.ring)
	}
	r.seen[key] = struct{}{}
}

// syncStatsLocked refreshes the probe-visible counter mirrors and the
// client-retry gauge.
func (r *Router) syncStatsLocked() {
	r.statClaims.Store(r.claims)
	r.statBarriers.Store(r.barriers)
	r.statRefines.Store(r.refines)
	r.statSince.Store(int64(r.since))
	r.statSources.Store(int64(len(r.names)))
	r.met.Retries.Set(float64(r.client.Retries()))
}

// IngestResult reports one Ingest call's effect.
type IngestResult struct {
	// Ingested counts claims newly forwarded and counted (claims in
	// chunks the router had already completed are excluded).
	Ingested int64 `json:"ingested"`
	// DedupedChunks counts chunks that were re-forwarded for node-side
	// dedup but not re-counted.
	DedupedChunks int `json:"deduped_chunks,omitempty"`
	// Claims is the cluster-lifetime deduplicated claim count.
	Claims int64 `json:"claims"`
	// Barriers is the completed epoch-barrier count.
	Barriers int64 `json:"barriers"`
}

// Ingest partitions claims over the member nodes in Batch-sized
// chunks and drives epoch barriers at the same positions in the claim
// stream a single engine's refresh would fire. seq is the request's
// idempotency key ("" = no dedup): each chunk derives a stable key
// from it, so a retried request re-forwards every chunk (nodes dedup
// individually — a node restored from checkpoint needs the replay)
// without double-counting claims or re-running barriers.
func (r *Router) Ingest(ctx context.Context, claims []stream.Triple, seq string) (IngestResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	defer r.syncStatsLocked()
	var res IngestResult
	chunk := 0
	for lo := 0; lo < len(claims); lo += r.cfg.Batch {
		// A barrier left pending by an earlier failure must complete at
		// its position in the stream before any new claim passes it.
		if err := r.flushBarrierLocked(ctx); err != nil {
			return res, err
		}
		hi := min(lo+r.cfg.Batch, len(claims))
		part := claims[lo:hi]
		key := ""
		if seq != "" {
			key = seq + ".c" + strconv.Itoa(chunk)
		}
		first := key == "" || !r.seenKey(key)
		if err := r.forwardLocked(ctx, part, key); err != nil {
			return res, err
		}
		if first {
			// The chunk is marked complete before its barrier runs: the
			// claims are on the nodes and counted, so a retry must skip
			// straight to the pending barrier instead of re-counting.
			if key != "" {
				r.markKey(key)
			}
			r.claims += int64(len(part))
			r.since += len(part)
			r.met.Claims.Add(uint64(len(part)))
			res.Ingested += int64(len(part))
			if r.since >= r.cfg.EpochLength {
				r.pendingBarrier = true
			}
		} else {
			res.DedupedChunks++
		}
		chunk++
	}
	if err := r.flushBarrierLocked(ctx); err != nil {
		return res, err
	}
	res.Claims = r.claims
	res.Barriers = r.barriers
	return res, nil
}

// ndjsonRecord is one forwarded claim.
type ndjsonRecord struct {
	Source string `json:"source"`
	Object string `json:"object"`
	Value  string `json:"value"`
}

// forwardLocked fans one chunk out to the nodes owning its objects.
func (r *Router) forwardLocked(ctx context.Context, chunk []stream.Triple, key string) error {
	n := len(r.cfg.Nodes)
	bufs := make([]bytes.Buffer, n)
	for _, tr := range chunk {
		j := stream.ShardIndex(tr.Object, n)
		if err := json.NewEncoder(&bufs[j]).Encode(ndjsonRecord{tr.Source, tr.Object, tr.Value}); err != nil {
			return fmt.Errorf("cluster: encoding claim: %w", err)
		}
	}
	for j, node := range r.cfg.Nodes {
		if bufs[j].Len() == 0 {
			continue
		}
		nodeKey := ""
		if key != "" {
			nodeKey = key + ".n" + strconv.Itoa(j)
		}
		began := time.Now()
		if _, err := r.post(ctx, node+"/v1/observe", "application/x-ndjson", nodeKey, bufs[j].Bytes()); err != nil {
			return fmt.Errorf("cluster: partition %d: %w", j, err)
		}
		r.fanReq[j].Inc()
		r.fanSec[j].Observe(time.Since(began).Seconds())
	}
	return nil
}

// epochRequest / epochResponse are the node coordination exchange
// bodies (the server half lives in cmd/slimfast's /epoch handlers).
type epochRequest struct {
	Tag        string                  `json:"tag"`
	Accuracies []stream.SourceAccuracy `json:"accuracies,omitempty"`
	Rescore    bool                    `json:"rescore,omitempty"`
}

type epochResponse struct {
	Tag     string              `json:"tag"`
	Sources []stream.SourceStat `json:"sources"`
}

// flushBarrierLocked completes a pending epoch barrier, if any.
func (r *Router) flushBarrierLocked(ctx context.Context) error {
	if !r.pendingBarrier {
		return nil
	}
	if err := r.barrierLocked(ctx); err != nil {
		return fmt.Errorf("cluster: epoch barrier %d: %w", r.barriers+1, err)
	}
	return nil
}

// barrierLocked runs one cluster epoch: drain every node in node
// order, fold the deltas node-major (the same accumulation order a
// single engine's shard drain uses), recompute the accuracies against
// the cluster-cumulative evidence, and push the merged σ-table back.
// The cumulative state commits only after every node accepted the
// apply, so a partial failure retried under the same tag folds the
// very same (cached) drains and cannot double-count.
func (r *Router) barrierLocked(ctx context.Context) error {
	tag := "e" + strconv.FormatInt(r.barriers+1, 10)
	delta := make([]float64, len(r.names), len(r.names)+16)
	dtot := make([]float64, len(r.names), len(r.names)+16)
	obs := make([]int64, len(r.names), len(r.names)+16)
	for _, node := range r.cfg.Nodes {
		var resp epochResponse
		if err := r.postEpoch(ctx, node, "/v1/epoch/drain", epochRequest{Tag: tag}, &resp); err != nil {
			return err
		}
		for _, st := range resp.Sources {
			i := r.internLocked(st.Source)
			for len(delta) < len(r.names) {
				delta = append(delta, 0)
				dtot = append(dtot, 0)
				obs = append(obs, 0)
			}
			delta[i] += st.Agree
			dtot[i] += st.Total
			obs[i] += st.Observations
		}
	}
	// Fold into scratch first; the cumulative table is replaced only
	// once the apply landed everywhere.
	newAgree := append([]float64(nil), r.agree...)
	newTotal := append([]float64(nil), r.total...)
	accs := make([]stream.SourceAccuracy, len(r.names))
	for s := range r.names {
		if r.cfg.Opts.Decay < 1 && obs[s] > 0 {
			d := math.Pow(r.cfg.Opts.Decay, float64(obs[s]))
			newAgree[s] *= d
			newTotal[s] *= d
		}
		newAgree[s] += delta[s]
		newTotal[s] += dtot[s]
		if newAgree[s] < 0 {
			newAgree[s] = 0
		}
		accs[s] = stream.SourceAccuracy{Source: r.names[s], Accuracy: r.cfg.Opts.EstimateAccuracy(newAgree[s], newTotal[s])}
	}
	for _, node := range r.cfg.Nodes {
		if err := r.postEpoch(ctx, node, "/v1/epoch/apply", epochRequest{Tag: tag, Accuracies: accs}, nil); err != nil {
			return err
		}
	}
	r.agree, r.total = newAgree, newTotal
	r.barriers++
	r.met.Barriers.Inc()
	// The barrier is complete before the checkpoint below snapshots the
	// manifest — a restore must not re-run it.
	r.pendingBarrier = false
	r.since = 0
	if r.cfg.CheckpointEpochs > 0 && r.barriers%int64(r.cfg.CheckpointEpochs) == 0 {
		// Durability must not fail the barrier the cluster state already
		// committed; a missed generation is a warning, and the next
		// checkpoint (or shutdown) covers it.
		if err := r.checkpointLocked(ctx); err != nil {
			fmt.Fprintf(r.log, "# WARNING: cluster checkpoint after barrier %d failed: %v\n", r.barriers, err)
		}
	}
	return nil
}

// Refine drives the distributed exact re-sweep: per sweep, every node
// recomputes its partition's refine mass under the current posteriors
// (POST /epoch/mass), the router pools the masses node-major and
// re-anchors its cumulative evidence on the pool, and the new σ-table
// is pushed back with an eager rescore. Sweep progress is tracked so
// a retry after a partial failure resumes at the failed sweep with
// the same tag — never re-gathering an earlier sweep's mass under
// posteriors a later apply already moved.
func (r *Router) Refine(ctx context.Context, sweeps int) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	defer r.syncStatsLocked()
	if err := r.flushBarrierLocked(ctx); err != nil {
		return r.barriers, err
	}
	op := r.refines + 1
	for sweep := r.refineSweeps; sweep < sweeps; sweep++ {
		if err := r.refineSweepLocked(ctx, op, sweep); err != nil {
			return r.barriers, fmt.Errorf("cluster: refine %d sweep %d: %w", op, sweep, err)
		}
		r.refineSweeps = sweep + 1
	}
	r.refines = op
	r.refineSweeps = 0
	return r.barriers, nil
}

func (r *Router) refineSweepLocked(ctx context.Context, op int64, sweep int) error {
	tag := "r" + strconv.FormatInt(op, 10) + ".s" + strconv.Itoa(sweep)
	mergedA := make([]float64, len(r.names), len(r.names)+16)
	mergedT := make([]float64, len(r.names), len(r.names)+16)
	rows := 0
	for _, node := range r.cfg.Nodes {
		var resp epochResponse
		if err := r.postEpoch(ctx, node, "/v1/epoch/mass", epochRequest{Tag: tag}, &resp); err != nil {
			return err
		}
		rows += len(resp.Sources)
		for _, st := range resp.Sources {
			i := r.internLocked(st.Source)
			for len(mergedA) < len(r.names) {
				mergedA = append(mergedA, 0)
				mergedT = append(mergedT, 0)
			}
			mergedA[i] += st.Agree
			mergedT[i] += st.Total
		}
	}
	if rows == 0 {
		return nil
	}
	accs := make([]stream.SourceAccuracy, len(r.names))
	for s := range r.names {
		accs[s] = stream.SourceAccuracy{Source: r.names[s], Accuracy: r.cfg.Opts.EstimateAccuracy(mergedA[s], mergedT[s])}
	}
	for _, node := range r.cfg.Nodes {
		if err := r.postEpoch(ctx, node, "/v1/epoch/apply", epochRequest{Tag: tag, Accuracies: accs, Rescore: true}, nil); err != nil {
			return err
		}
	}
	r.agree, r.total = mergedA, mergedT
	return nil
}

// estimatesHeader / sourcesHeader pin the node CSV surfaces the
// merges below rely on; drift is an error, not silent corruption.
const (
	estimatesHeader = "object,value,confidence\n"
	sourcesHeader   = "source,accuracy\n"
)

// Estimates scatter-gathers GET /estimates and writes the merged CSV:
// node bodies concatenated in partition order with the header kept
// once — exactly the shard-major order a single engine with one shard
// per node emits, so the merged bytes match the single-engine output.
func (r *Router) Estimates(ctx context.Context, w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, node := range r.cfg.Nodes {
		body, err := r.get(ctx, node+"/v1/estimates")
		if err != nil {
			return fmt.Errorf("cluster: partition %d estimates: %w", i, err)
		}
		if !bytes.HasPrefix(body, []byte(estimatesHeader)) {
			return fmt.Errorf("cluster: partition %d returned an unexpected /estimates header", i)
		}
		if i > 0 {
			body = body[len(estimatesHeader):]
		}
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// Sources scatter-gathers GET /sources and writes the cluster-wide
// accuracy table: the union of the node tables (every node holds the
// full pushed σ-table, but interning order differs), globally sorted
// — the same bytes a single engine's sorted emit produces. Rows are
// merged verbatim, and a source reported with two different
// accuracies is a protocol error (the apply push keeps them equal).
func (r *Router) Sources(ctx context.Context, w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := map[string]string{}
	for i, node := range r.cfg.Nodes {
		body, err := r.get(ctx, node+"/v1/sources")
		if err != nil {
			return fmt.Errorf("cluster: partition %d sources: %w", i, err)
		}
		if !bytes.HasPrefix(body, []byte(sourcesHeader)) {
			return fmt.Errorf("cluster: partition %d returned an unexpected /sources header (online-learner nodes cannot join a cluster)", i)
		}
		for _, line := range strings.Split(strings.TrimRight(string(body[len(sourcesHeader):]), "\n"), "\n") {
			if line == "" {
				continue
			}
			name, _, ok := strings.Cut(line, ",")
			if !ok {
				return fmt.Errorf("cluster: partition %d returned a malformed /sources row %q", i, line)
			}
			if prev, dup := rows[name]; dup && prev != line {
				return fmt.Errorf("cluster: source %q diverged across partitions (%q vs %q)", name, prev, line)
			}
			rows[name] = line
		}
	}
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteString(sourcesHeader)
	for _, name := range names {
		buf.WriteString(rows[name])
		buf.WriteByte('\n')
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Checkpoint makes the cluster durable on demand: every node writes a
// checkpoint generation, then the router manifest is written.
func (r *Router) Checkpoint(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checkpointLocked(ctx)
}

func (r *Router) checkpointLocked(ctx context.Context) error {
	for i, node := range r.cfg.Nodes {
		if _, err := r.post(ctx, node+"/v1/checkpoint", "", "", nil); err != nil {
			return fmt.Errorf("cluster: partition %d checkpoint: %w", i, err)
		}
	}
	if r.cfg.ManifestPath == "" {
		return nil
	}
	if err := r.writeManifestLocked(); err != nil {
		return err
	}
	fmt.Fprintf(r.log, "# cluster manifest written to %s (%d claims, %d barriers)\n",
		r.cfg.ManifestPath, r.claims, r.barriers)
	return nil
}

// WriteManifest persists the router state (shutdown path).
func (r *Router) WriteManifest() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.ManifestPath == "" {
		return nil
	}
	return r.writeManifestLocked()
}

// Stats is the router's lock-free operational snapshot.
type Stats struct {
	Nodes      int   `json:"nodes"`
	Claims     int64 `json:"claims"`
	Barriers   int64 `json:"barriers"`
	Refines    int64 `json:"refines"`
	SinceEpoch int64 `json:"since_epoch"`
	Sources    int64 `json:"sources"`
}

// Stats never blocks on in-flight ingest or barriers.
func (r *Router) Stats() Stats {
	return Stats{
		Nodes:      len(r.cfg.Nodes),
		Claims:     r.statClaims.Load(),
		Barriers:   r.statBarriers.Load(),
		Refines:    r.statRefines.Load(),
		SinceEpoch: r.statSince.Load(),
		Sources:    r.statSources.Load(),
	}
}

// NodeStatus is one member's view in a Health or Ready report.
type NodeStatus struct {
	Partition int             `json:"partition"`
	Node      string          `json:"node"`
	OK        bool            `json:"ok"`
	Error     string          `json:"error,omitempty"`
	Detail    json.RawMessage `json:"detail,omitempty"`
}

// probeTimeout bounds one health probe: probes must answer fast even
// when a member hangs.
const probeTimeout = 2 * time.Second

// probe issues one non-retried GET (a liveness probe that retried
// would report stale truth).
func (r *Router) probe(ctx context.Context, partition int, url string) NodeStatus {
	st := NodeStatus{Partition: partition, Node: url[:strings.LastIndex(url, "/")]}
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Valid(body) {
		st.Detail = json.RawMessage(body)
	}
	if resp.StatusCode != http.StatusOK {
		st.Error = "status " + strconv.Itoa(resp.StatusCode)
		return st
	}
	st.OK = true
	return st
}

// Health probes every node's /healthz. The cluster is "ok" when all
// nodes answer, "degraded" otherwise; the per-partition detail says
// which partitions are dark. Probes never take the router lock.
func (r *Router) Health(ctx context.Context) (string, []NodeStatus) {
	return r.probeAll(ctx, "/v1/healthz")
}

// Ready probes every node's /readyz: "ready" when every partition can
// take load, "degraded" when some can, "unavailable" when none can.
func (r *Router) Ready(ctx context.Context) (string, []NodeStatus) {
	status, nodes := r.probeAll(ctx, "/v1/readyz")
	if status == "ok" {
		status = "ready"
	}
	return status, nodes
}

func (r *Router) probeAll(ctx context.Context, path string) (string, []NodeStatus) {
	nodes := make([]NodeStatus, len(r.cfg.Nodes))
	var wg sync.WaitGroup
	for i, node := range r.cfg.Nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nodes[i] = r.probe(ctx, i, node+path)
		}()
	}
	wg.Wait()
	up := 0
	for _, st := range nodes {
		if st.OK {
			up++
		}
	}
	r.met.DownPartitions.Set(float64(len(nodes) - up))
	switch up {
	case len(nodes):
		return "ok", nodes
	case 0:
		return "unavailable", nodes
	default:
		return "degraded", nodes
	}
}

// post issues one mutating node request through the retrying client
// and fails on any non-2xx answer with the node's error text.
func (r *Router) post(ctx context.Context, url, contentType, seq string, body []byte) ([]byte, error) {
	resp, err := r.client.Post(ctx, url, contentType, seq, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if rerr != nil {
		return nil, fmt.Errorf("%s: reading response: %w", url, rerr)
	}
	return data, nil
}

// postEpoch runs one idempotent-by-tag coordination exchange.
func (r *Router) postEpoch(ctx context.Context, node, path string, req epochRequest, out *epochResponse) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	data, err := r.post(ctx, node+path, "application/json", "", body)
	if err != nil {
		return err
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("%s%s: parsing response: %w", node, path, err)
		}
	}
	return nil
}

// get issues one read through the retrying client.
func (r *Router) get(ctx context.Context, url string) ([]byte, error) {
	resp, err := r.client.Get(ctx, url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if rerr != nil {
		return nil, fmt.Errorf("%s: reading response: %w", url, rerr)
	}
	return data, nil
}
