package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// manifestVersion is the cluster manifest schema version (see
// docs/WIRE_FORMAT.md for the layout and its compatibility rules).
const manifestVersion = 1

// Manifest is the router's durable state, written atomically beside
// the nodes' checkpoint generations. JSON keeps it inspectable with
// standard tooling, and Go's shortest-representation float encoding
// round-trips every float64 bit-exactly, so a restored router resumes
// the accuracy fold on the very same numbers.
type Manifest struct {
	Version     int      `json:"version"`
	Nodes       []string `json:"nodes"`
	Batch       int      `json:"batch"`
	EpochLength int      `json:"epoch_length"`

	Claims   int64 `json:"claims"`
	Barriers int64 `json:"barriers"`
	Refines  int64 `json:"refines"`
	// SinceEpoch and PendingBarrier restore the router's position
	// between barriers, so a restart cannot shift where the next
	// barrier lands in the claim stream.
	SinceEpoch     int  `json:"since_epoch"`
	PendingBarrier bool `json:"pending_barrier,omitempty"`

	// Sources is the cluster-cumulative settled evidence in intern
	// order — the fold order is part of the state.
	Sources []ManifestSource `json:"sources"`

	// SeqKeys is the chunk dedup window, oldest first.
	SeqKeys []string `json:"seq_keys"`

	Options ManifestOptions `json:"options"`
}

// ManifestSource is one source's cumulative evidence.
type ManifestSource struct {
	Source string  `json:"source"`
	Agree  float64 `json:"agree"`
	Total  float64 `json:"total"`
}

// ManifestOptions pins the streaming options the evidence was folded
// under; restoring with different options would change the math.
type ManifestOptions struct {
	InitAccuracy  float64 `json:"init_accuracy"`
	PriorStrength float64 `json:"prior_strength"`
	Decay         float64 `json:"decay"`
}

// manifestLocked snapshots the router state.
func (r *Router) manifestLocked() Manifest {
	m := Manifest{
		Version:        manifestVersion,
		Nodes:          append([]string(nil), r.cfg.Nodes...),
		Batch:          r.cfg.Batch,
		EpochLength:    r.cfg.EpochLength,
		Claims:         r.claims,
		Barriers:       r.barriers,
		Refines:        r.refines,
		SinceEpoch:     r.since,
		PendingBarrier: r.pendingBarrier,
		Sources:        make([]ManifestSource, len(r.names)),
		Options: ManifestOptions{
			InitAccuracy:  r.cfg.Opts.InitAccuracy,
			PriorStrength: r.cfg.Opts.PriorStrength,
			Decay:         r.cfg.Opts.Decay,
		},
	}
	for i, name := range r.names {
		m.Sources[i] = ManifestSource{Source: name, Agree: r.agree[i], Total: r.total[i]}
	}
	// Ring order oldest-first so a restore refills the window in the
	// same eviction order.
	if len(r.ring) == cap(r.ring) && cap(r.ring) > 0 {
		m.SeqKeys = append(m.SeqKeys, r.ring[r.ringAt:]...)
		m.SeqKeys = append(m.SeqKeys, r.ring[:r.ringAt]...)
	} else {
		m.SeqKeys = append(m.SeqKeys, r.ring...)
	}
	return m
}

// writeManifestLocked writes the manifest atomically: temp file in
// the target directory, then rename, so a crash mid-write leaves the
// previous manifest intact.
func (r *Router) writeManifestLocked() error {
	data, err := json.MarshalIndent(r.manifestLocked(), "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(r.cfg.ManifestPath)
	tmp, err := os.CreateTemp(dir, filepath.Base(r.cfg.ManifestPath)+".tmp*")
	if err != nil {
		return fmt.Errorf("cluster: writing manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: writing manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: syncing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: closing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), r.cfg.ManifestPath); err != nil {
		return fmt.Errorf("cluster: installing manifest: %w", err)
	}
	return nil
}

// LoadManifest reads and validates a manifest file.
func LoadManifest(path string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("cluster: parsing manifest %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("cluster: manifest %s has version %d, this build supports %d", path, m.Version, manifestVersion)
	}
	return m, nil
}

// restoreManifest adopts a persisted manifest at boot. A missing file
// is a cold start, not an error. The restored state must be layout-
// compatible with the configuration: the node count fixes the object
// partitioning, and batch size, epoch length and streaming options
// fix where barriers land and what they compute — silently adopting
// different values would fork the cluster history. Node addresses may
// change (rolling restarts move ports); a change is logged.
func (r *Router) restoreManifest(path string) error {
	m, err := LoadManifest(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(m.Nodes) != len(r.cfg.Nodes) {
		return fmt.Errorf("cluster: manifest %s was written for %d nodes, got %d; object partitions do not move",
			path, len(m.Nodes), len(r.cfg.Nodes))
	}
	if m.Batch != r.cfg.Batch || m.EpochLength != r.cfg.EpochLength {
		return fmt.Errorf("cluster: manifest %s was written with -batch %d -epoch %d (configured %d/%d); barrier positions depend on both",
			path, m.Batch, m.EpochLength, r.cfg.Batch, r.cfg.EpochLength)
	}
	mo := ManifestOptions{
		InitAccuracy:  r.cfg.Opts.InitAccuracy,
		PriorStrength: r.cfg.Opts.PriorStrength,
		Decay:         r.cfg.Opts.Decay,
	}
	if m.Options != mo {
		return fmt.Errorf("cluster: manifest %s was folded under options %+v, configured %+v", path, m.Options, mo)
	}
	for i, node := range m.Nodes {
		if node != r.cfg.Nodes[i] {
			fmt.Fprintf(r.log, "# note: partition %d moved from %s to %s\n", i, node, r.cfg.Nodes[i])
		}
	}
	r.claims = m.Claims
	r.barriers = m.Barriers
	r.refines = m.Refines
	r.since = m.SinceEpoch
	r.pendingBarrier = m.PendingBarrier
	for _, s := range m.Sources {
		i := r.internLocked(s.Source)
		r.agree[i] = s.Agree
		r.total[i] = s.Total
	}
	keys := m.SeqKeys
	if len(keys) > r.cfg.DedupWindow {
		keys = keys[len(keys)-r.cfg.DedupWindow:]
	}
	for _, k := range keys {
		r.markKey(k)
	}
	r.syncStatsLocked()
	fmt.Fprintf(r.log, "# restored cluster manifest from %s (%d claims, %d barriers, %d sources)\n",
		path, r.claims, r.barriers, len(r.names))
	return nil
}
