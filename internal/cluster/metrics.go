// Router instrumentation: the obs seam `slimfast router` wires in at
// boot. As with stream.Metrics, the zero value is a no-op, and the
// per-fan-out increments are atomic adds against children resolved
// once at construction — nothing on the ingest path allocates for
// metrics.
package cluster

import (
	"slimfast/internal/obs"
)

// Metrics is the router's instrumentation seam.
type Metrics struct {
	// FanoutRequests counts ingest chunks forwarded per member
	// partition; FanoutSeconds times each forward (including the
	// resilience client's retries and backoff).
	FanoutRequests *obs.CounterVec
	FanoutSeconds  *obs.HistogramVec
	// Claims counts deduplicated claims ingested cluster-wide;
	// Barriers counts completed epoch barriers.
	Claims   *obs.Counter
	Barriers *obs.Counter
	// Retries mirrors the resilience client's lifetime retry count;
	// DownPartitions is how many members failed the last probe sweep.
	Retries        *obs.Gauge
	DownPartitions *obs.Gauge
}

// NewMetrics registers the router metric families on reg.
func NewMetrics(reg *obs.Registry) Metrics {
	return Metrics{
		FanoutRequests: reg.CounterVec("slimfast_router_fanout_requests_total", "Ingest chunks forwarded to each member partition.", "partition"),
		FanoutSeconds:  reg.HistogramVec("slimfast_router_fanout_seconds", "Per-member forward latency, retries and backoff included.", nil, "partition"),
		Claims:         reg.Counter("slimfast_router_claims_total", "Deduplicated claims ingested cluster-wide."),
		Barriers:       reg.Counter("slimfast_router_barriers_total", "Completed cluster epoch barriers."),
		Retries:        reg.Gauge("slimfast_router_retries", "Lifetime retries spent by the fan-out client."),
		DownPartitions: reg.Gauge("slimfast_router_down_partitions", "Members that failed the most recent probe sweep."),
	}
}
