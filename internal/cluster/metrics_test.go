package cluster

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"slimfast/internal/obs"
)

// TestRouterMetrics wires the instrumentation seam through a fake
// cluster and requires the fan-out, claim, barrier and probe families
// to move with the work.
func TestRouterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	r, _ := fakeCluster(t, 3, func(cfg *Config) { cfg.Metrics = met })

	claims := testClaims(16, 8) // batch 4, epoch 8 -> 4 chunks, 2 barriers
	if _, err := r.Ingest(context.Background(), claims, "seq-m"); err != nil {
		t.Fatal(err)
	}
	if got := met.Claims.Value(); got != 16 {
		t.Errorf("claims counter = %d, want 16", got)
	}
	if got := met.Barriers.Value(); got != 2 {
		t.Errorf("barriers counter = %d, want 2", got)
	}
	var fanReqs, fanObs uint64
	for j := 0; j < 3; j++ {
		p := strconv.Itoa(j)
		fanReqs += met.FanoutRequests.With(p).Value()
		fanObs += met.FanoutSeconds.With(p).Count()
	}
	if fanReqs == 0 {
		t.Error("no fan-out requests counted")
	}
	if fanObs != fanReqs {
		t.Errorf("fan-out latency observations %d != fan-out requests %d", fanObs, fanReqs)
	}

	if status, _ := r.Health(context.Background()); status != "ok" {
		t.Fatalf("health = %q, want ok", status)
	}
	if got := met.DownPartitions.Value(); got != 0 {
		t.Errorf("down partitions = %v after a healthy sweep, want 0", got)
	}

	var sb strings.Builder
	if err := reg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`slimfast_router_fanout_requests_total{partition="0"}`,
		"slimfast_router_claims_total 16",
		"slimfast_router_barriers_total 2",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
