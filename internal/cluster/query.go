// The router half of the relational query surface: push the query to
// every member, merge the partial results with the exact fold a single
// N-shard engine uses. Row queries forward the query verbatim with the
// projection widened (the object key first, then the requested and
// order columns), gather each member's NDJSON rows, and re-run the
// order/limit/projection over the concatenation — the relation
// comparator ties break on the object key, so the merged rows are
// byte-identical to one engine whose shards are the members. Group
// queries gather unfinalized partials (partial=1) and fold them in
// node order, the same accumulation tree the engine's shard-major fold
// builds.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/url"

	"slimfast/internal/query"
)

// estimateDefaultProj mirrors the engine relation's default projection.
var estimateDefaultProj = []string{"object", "value", "confidence"}

// memberColumns is the projection the router asks members for: the
// object key first (the merge's tie-breaker), then the query's
// projection and order columns in stable order.
func memberColumns(q *query.Query) (member []string, final []string) {
	final = q.Cols
	if len(final) == 0 {
		final = estimateDefaultProj
	}
	seen := map[string]bool{"object": true}
	member = []string{"object"}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			member = append(member, name)
		}
	}
	for _, c := range final {
		add(c)
	}
	for _, k := range q.Order {
		add(k.Col)
	}
	return member, final
}

// estimateSchema resolves column names against the estimates relation.
func estimateSchema(names []string) ([]query.Column, error) {
	kinds := make(map[string]query.Kind)
	for _, c := range query.EstimateColumns() {
		kinds[c.Name] = c.Kind
	}
	cols := make([]query.Column, len(names))
	for i, n := range names {
		kind, ok := kinds[n]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown estimate column %q", n)
		}
		cols[i] = query.Column{Name: n, Kind: kind}
	}
	return cols, nil
}

// Query scatter-gathers one relational query across the members and
// merges the results so they match a single N-shard engine bit for
// bit. Like Estimates, it holds the router lock for a barrier-stable
// read.
func (r *Router) Query(ctx context.Context, q *query.Query) (*query.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if q.Group != "" {
		return r.queryGroupLocked(ctx, q)
	}
	return r.queryRowsLocked(ctx, q)
}

// memberQuery fetches one member's NDJSON rows for the given forward
// parameters.
func (r *Router) memberQuery(ctx context.Context, partition int, vals url.Values, cols []query.Column) ([][]query.Val, error) {
	vals.Set("format", "json")
	node := r.cfg.Nodes[partition]
	body, err := r.get(ctx, node+"/v1/estimates?"+vals.Encode())
	if err != nil {
		return nil, fmt.Errorf("cluster: partition %d query: %w", partition, err)
	}
	rows, err := query.ReadNDJSON(bytes.NewReader(body), cols)
	if err != nil {
		return nil, fmt.Errorf("cluster: partition %d query: %w", partition, err)
	}
	return rows, nil
}

// queryRowsLocked runs a non-group query: members apply the
// predicates, the disagree pair, the order and the limit; the router
// re-merges under the same total order and re-applies the limit and
// final projection.
func (r *Router) queryRowsLocked(ctx context.Context, q *query.Query) (*query.Result, error) {
	member, final := memberColumns(q)
	cols, err := estimateSchema(member)
	if err != nil {
		return nil, err
	}
	rel := &query.Relation{Cols: cols}
	for i := range r.cfg.Nodes {
		rows, err := r.memberQuery(ctx, i, q.Values(member), cols)
		if err != nil {
			return nil, err
		}
		rel.Rows = append(rel.Rows, rows...)
	}
	merge := &query.Query{Order: q.Order, Limit: q.Limit, Cols: final}
	res, err := query.ExecuteRelation(rel, merge)
	if err != nil {
		return nil, fmt.Errorf("cluster: merging query results: %w", err)
	}
	return res, nil
}

// queryGroupLocked runs a group query: members return unfinalized
// partials, folded here in node order and finalized once.
func (r *Router) queryGroupLocked(ctx context.Context, q *query.Query) (*query.Result, error) {
	pcols, err := query.PartialColumns(q)
	if err != nil {
		return nil, err
	}
	parts := make([][][]query.Val, len(r.cfg.Nodes))
	for i := range r.cfg.Nodes {
		vals := q.Values(nil)
		vals.Set("partial", "1")
		rows, err := r.memberQuery(ctx, i, vals, pcols)
		if err != nil {
			return nil, err
		}
		parts[i] = rows
	}
	res, err := query.MergePartials(q, parts)
	if err != nil {
		return nil, fmt.Errorf("cluster: merging group partials: %w", err)
	}
	return res, nil
}

// Features relays the online learner's feature weights: the first
// member that answers wins (at most one member runs the learner).
// When none does — the common cluster case, since -external-epochs
// excludes -features — the last member's refusal is returned.
func (r *Router) Features(ctx context.Context) ([]byte, error) {
	var lastErr error
	for i, node := range r.cfg.Nodes {
		body, err := r.get(ctx, node+"/v1/features")
		if err == nil {
			return body, nil
		}
		lastErr = fmt.Errorf("cluster: partition %d features: %w", i, err)
	}
	return nil, lastErr
}
