// Package randx provides the deterministic random-number substrate used
// by the simulators and samplers in this repository. Every experiment
// in the paper reproduction is seeded, so re-running a bench regenerates
// the same table.
//
// The package wraps math/rand with a splitmix-style seed deriver so that
// independent components (dataset generation, train/test splits, Gibbs
// chains, SGD shuffles) get decorrelated streams from one master seed.
package randx

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. It embeds *rand.Rand and adds
// the sampling helpers used by the fusion simulators.
type RNG struct {
	*rand.Rand
}

// New returns a deterministic RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}

// splitmix64 advances and mixes a 64-bit state; used to derive
// decorrelated child seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed mixes a master seed with a stream label into a new seed.
// Distinct labels give decorrelated streams.
func DeriveSeed(master int64, label string) int64 {
	h := uint64(master)
	for _, b := range []byte(label) {
		h = splitmix64(h ^ uint64(b))
	}
	return int64(splitmix64(h))
}

// Child returns a new RNG derived from this one's next value and the
// label, for handing decorrelated streams to sub-components.
func (r *RNG) Child(label string) *RNG {
	return New(DeriveSeed(r.Int63(), label))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Binomial samples from Binomial(n, p) by direct simulation; n is small
// (number of sources per object) in all our uses.
func (r *RNG) Binomial(n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// Categorical samples an index from the (not necessarily normalized)
// non-negative weight vector ws. It panics if all weights are zero or
// the slice is empty, which indicates a programming error upstream.
func (r *RNG) Categorical(ws []float64) int {
	var total float64
	for _, w := range ws {
		if w < 0 {
			panic("randx: negative categorical weight")
		}
		total += w
	}
	if total <= 0 {
		panic("randx: categorical weights sum to zero")
	}
	u := r.Float64() * total
	var c float64
	for i, w := range ws {
		c += w
		if u < c {
			return i
		}
	}
	return len(ws) - 1
}

// IntnExcept returns a uniform value in [0, n) excluding the value
// except. It panics when n < 2, since no valid draw exists.
func (r *RNG) IntnExcept(n, except int) int {
	if n < 2 {
		panic("randx: IntnExcept needs n >= 2")
	}
	v := r.Intn(n - 1)
	if v >= except {
		v++
	}
	return v
}

// TruncNormal samples a normal with the given mean and stddev, rejected
// into [lo, hi]. Falls back to clamping after 64 rejections to stay
// total.
func (r *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := mean + stddev*r.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Max(lo, math.Min(hi, mean))
}

// Beta samples from a Beta(a, b) distribution using Jöhnk's/Gamma
// method via two Gamma draws (Marsaglia–Tsang).
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma samples from Gamma(shape, 1) using Marsaglia–Tsang for
// shape >= 1 and the boost transform for shape < 1.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("randx: Gamma shape must be positive")
	}
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Shuffled returns a new slice [0, n) in random order.
func (r *RNG) Shuffled(n int) []int {
	idx := make([]int, n)
	r.ShuffleRange(idx)
	return idx
}

// ShuffleRange fills idx with [0, len(idx)) and shuffles it in place,
// consuming the same stream as Shuffled(len(idx)) — callers reuse one
// buffer across epochs without changing the visit order.
func (r *RNG) ShuffleRange(idx []int) {
	for i := range idx {
		idx[i] = i
	}
	r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Mix derives a decorrelated child seed from a master seed and an
// integer stream label via splitmix64; the integer analogue of
// DeriveSeed for hot paths that must not allocate label strings.
func Mix(master, stream int64) int64 {
	return int64(splitmix64(splitmix64(uint64(master)) ^ splitmix64(uint64(stream)+0x9e3779b97f4a7c15)))
}

// SampleWithoutReplacement returns k distinct values from [0, n) in
// random order. It panics when k > n.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("randx: sample size exceeds population")
	}
	idx := r.Shuffled(n)
	return idx[:k]
}

// Zipf returns a sampler over [0, n) with Zipfian skew s >= 0 (s = 0 is
// uniform). Used to generate the long-tailed per-source observation
// counts seen in the real datasets (e.g. Genomics: 1.1 obs/source but
// a few prolific sources).
func (r *RNG) Zipf(n int, s float64) func() int {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
	}
	return func() int { return r.Categorical(weights) }
}
