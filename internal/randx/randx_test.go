package randx

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestDeriveSeedDistinctLabels(t *testing.T) {
	s1 := DeriveSeed(7, "datagen")
	s2 := DeriveSeed(7, "split")
	s3 := DeriveSeed(8, "datagen")
	if s1 == s2 || s1 == s3 || s2 == s3 {
		t.Errorf("derived seeds should differ: %d %d %d", s1, s2, s3)
	}
	if s1 != DeriveSeed(7, "datagen") {
		t.Error("DeriveSeed must be deterministic")
	}
}

func TestChildStreamsDecorrelated(t *testing.T) {
	r := New(1)
	c1 := r.Child("a")
	r2 := New(1)
	c2 := r2.Child("a")
	if c1.Float64() != c2.Float64() {
		t.Error("same parent seed + label should give same child stream")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(3)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / float64(n)
	if math.Abs(freq-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) frequency = %v", freq)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(4)
	const trials, n = 5000, 20
	const p = 0.4
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		k := float64(r.Binomial(n, p))
		sum += k
		sumsq += k * k
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean-n*p) > 0.15 {
		t.Errorf("Binomial mean = %v, want %v", mean, n*p)
	}
	if math.Abs(variance-n*p*(1-p)) > 0.5 {
		t.Errorf("Binomial variance = %v, want %v", variance, n*p*(1-p))
	}
}

func TestCategoricalProportions(t *testing.T) {
	r := New(5)
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Categorical([]float64{1, 2, 7})]++
	}
	want := [3]float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		freq := float64(c) / n
		if math.Abs(freq-want[i]) > 0.02 {
			t.Errorf("categorical freq[%d] = %v, want %v", i, freq, want[i])
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := New(6)
	for _, ws := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) should panic", ws)
				}
			}()
			r.Categorical(ws)
		}()
	}
}

func TestIntnExcept(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		v := r.IntnExcept(5, 2)
		if v == 2 || v < 0 || v >= 5 {
			t.Fatalf("IntnExcept out of range: %d", v)
		}
	}
	// All other values reachable.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[r.IntnExcept(3, 0)] = true
	}
	if !seen[1] || !seen[2] || seen[0] {
		t.Errorf("IntnExcept coverage wrong: %v", seen)
	}
	defer func() {
		if recover() == nil {
			t.Error("IntnExcept(1, 0) should panic")
		}
	}()
	r.IntnExcept(1, 0)
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(8)
	for i := 0; i < 2000; i++ {
		v := r.TruncNormal(0.7, 0.2, 0.5, 1.0)
		if v < 0.5 || v > 1.0 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
	// Degenerate interval falls back to clamp.
	v := r.TruncNormal(10, 0.001, 0, 1)
	if v != 1 {
		t.Errorf("TruncNormal clamp fallback = %v, want 1", v)
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(9)
	const a, b, n = 2.0, 5.0, 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Beta(a, b)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of [0,1]: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-a/(a+b)) > 0.01 {
		t.Errorf("Beta mean = %v, want %v", mean, a/(a+b))
	}
}

func TestGammaMean(t *testing.T) {
	r := New(10)
	for _, shape := range []float64{0.5, 1, 3.7} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.08*math.Max(1, shape) {
			t.Errorf("Gamma(%v) mean = %v", shape, mean)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Gamma(0) should panic")
		}
	}()
	r.Gamma(0)
}

func TestShuffledIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Shuffled(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(12)
	s := r.SampleWithoutReplacement(10, 4)
	if len(s) != 4 {
		t.Fatalf("len = %d, want 4", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample: %v", s)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("k > n should panic")
		}
	}()
	r.SampleWithoutReplacement(3, 4)
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	draw := r.Zipf(100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[draw()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf head (%d) should dominate tail (%d)", counts[0], counts[50])
	}
	// Uniform at s=0.
	draw0 := r.Zipf(10, 0)
	c0 := make([]int, 10)
	for i := 0; i < 20000; i++ {
		c0[draw0()]++
	}
	for i, c := range c0 {
		if math.Abs(float64(c)/20000-0.1) > 0.02 {
			t.Errorf("Zipf(s=0) not uniform at %d: %d", i, c)
		}
	}
}
