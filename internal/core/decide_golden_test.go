package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/randx"
)

// goldenDecideFingerprint was recorded from the map-backed
// EstimateAverageAccuracy (PR 2 state). The dense pair-matrix layout
// must reproduce every field of the Decision bit for bit under the
// default overlap-weighted estimator, whose integer-valued sums are
// exactly order-independent — so the fingerprint is stable across both
// the map iteration order of the old code and the triangular sweep of
// the new one.
const goldenDecideFingerprint uint64 = 0x3b83854de55fa935

func decisionFingerprint(decs ...Decision) uint64 {
	h := fnv.New64a()
	var b8 [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(b8[:], u)
		h.Write(b8[:])
	}
	for _, dec := range decs {
		put(uint64(int64(dec.Algorithm)))
		if dec.BoundFired {
			put(1)
		} else {
			put(0)
		}
		put(math.Float64bits(dec.ERMBound))
		put(math.Float64bits(dec.ERMUnits))
		put(math.Float64bits(dec.EMUnits))
		put(math.Float64bits(dec.AvgAccuracy))
	}
	return h.Sum64()
}

func TestDecideGoldenFingerprint(t *testing.T) {
	inst := goldenInstance(t)
	var decs []Decision
	for _, frac := range []float64{0.05, 0.3, 0.8} {
		train, _ := data.Split(inst.Gold, frac, randx.New(5))
		opts := DefaultOptimizerOptions()
		decs = append(decs, Decide(inst.Dataset, train, opts))
		opts.MultiplyByM = true
		decs = append(decs, Decide(inst.Dataset, train, opts))
	}
	if got := decisionFingerprint(decs...); got != goldenDecideFingerprint {
		t.Errorf("decision fingerprint = %#x, want %#x (Decide changed arithmetic, not just layout)", got, goldenDecideFingerprint)
	}
}

// TestEstimateAverageAccuracyMatchesReference checks the dense
// triangular accumulation against a straightforward per-object
// reference for both estimator variants. The closed-form variant sums
// non-integer ratios whose order the old map-backed code left to map
// iteration; the dense sweep fixes pair order, so the comparison
// allows float reassociation noise.
func TestEstimateAverageAccuracyMatchesReference(t *testing.T) {
	inst := goldenInstance(t)
	ds := inst.Dataset
	type pairStat struct {
		agreeMinusDisagree int
		overlap            int
	}
	stats := map[[2]data.SourceID]*pairStat{}
	for o := 0; o < ds.NumObjects(); o++ {
		obs := ds.ObjectObservations(data.ObjectID(o))
		for i := 0; i < len(obs); i++ {
			for j := i + 1; j < len(obs); j++ {
				k := [2]data.SourceID{obs[i].Source, obs[j].Source}
				st := stats[k]
				if st == nil {
					st = &pairStat{}
					stats[k] = st
				}
				st.overlap++
				if obs[i].Value == obs[j].Value {
					st.agreeMinusDisagree++
				} else {
					st.agreeMinusDisagree--
				}
			}
		}
	}
	for _, weighted := range []bool{true, false} {
		var num, den float64
		if weighted {
			for _, st := range stats {
				num += float64(st.agreeMinusDisagree)
				den += float64(st.overlap)
			}
		} else {
			for _, st := range stats {
				num += 2 * float64(st.agreeMinusDisagree) / float64(st.overlap)
			}
			nS := ds.NumSources()
			den = float64(nS*nS - nS)
		}
		muSq := num / den
		if muSq < 0 {
			muSq = 0
		}
		want := (math.Sqrt(muSq) + 1) / 2
		if want < 0.5 {
			want = 0.5
		}
		got := EstimateAverageAccuracy(ds, weighted)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("EstimateAverageAccuracy(weighted=%v) = %v, want %v", weighted, got, want)
		}
	}
}
