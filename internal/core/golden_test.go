package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

// The fingerprints below were recorded from the pre-compiled-layout
// implementation (PR 1). The compiled hot-path layout (σ caching,
// precomputed score indices, scratch buffers, dense posteriors) must
// reproduce the learning trajectory and inference output bit for bit:
// any fingerprint drift means the refactor changed arithmetic, not just
// layout.
var goldenFingerprints = map[string]uint64{
	"em-default":    0xcf05ddcbebb57c9b,
	"erm":           0xda6766f6992b64d9,
	"em-copy":       0x56f05e2556172e9b,
	"em-classes":    0x479b254e3b4ccd54,
	"erm-openworld": 0x166d952ab4149c84,
	"em-minibatch":  0x19191434273240e0,
}

// goldenInstance builds the synth dataset the golden scenarios share.
func goldenInstance(t testing.TB) *synth.Instance {
	t.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "golden", Sources: 40, Objects: 300, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.2,
		MeanAccuracy: 0.7, AccuracySD: 0.12, MinAccuracy: 0.45, MaxAccuracy: 0.95,
		Features: []synth.FeatureGroup{
			{Name: "a", Cardinality: 6, Informative: true, WeightScale: 1.5},
			{Name: "b", Cardinality: 5, Informative: false},
		},
		EnsureTruthObserved: true, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// fingerprint hashes the exact bit patterns of the learned weights, the
// fused values, and the posteriors (objects in id order, domain values
// ascending within each object).
func fingerprint(m *Model, res *Result) uint64 {
	h := fnv.New64a()
	var b8 [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(b8[:], u)
		h.Write(b8[:])
	}
	for _, x := range m.Weights() {
		put(math.Float64bits(x))
	}
	posts := res.Posteriors()
	objs := make([]int, 0, len(posts))
	for o := range posts {
		objs = append(objs, int(o))
	}
	sort.Ints(objs)
	for _, o := range objs {
		put(uint64(o))
		put(uint64(int64(res.Values[data.ObjectID(o)])))
		post := posts[data.ObjectID(o)]
		vals := make([]int, 0, len(post))
		for v := range post {
			vals = append(vals, int(v))
		}
		sort.Ints(vals)
		for _, v := range vals {
			put(uint64(int64(v)))
			put(math.Float64bits(post[data.ValueID(v)]))
		}
	}
	return h.Sum64()
}

func goldenScenarios(t testing.TB) map[string]func() (*Model, *Result) {
	inst := goldenInstance(t)
	train, _ := data.Split(inst.Gold, 0.3, randx.New(7))
	compile := func(opts Options) *Model {
		opts.Workers = 1
		m, err := Compile(inst.Dataset, opts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fuse := func(m *Model, alg Algorithm, tr data.TruthMap) (*Model, *Result) {
		res, err := m.Fuse(alg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return m, res
	}
	return map[string]func() (*Model, *Result){
		"em-default": func() (*Model, *Result) {
			return fuse(compile(DefaultOptions()), AlgorithmEM, nil)
		},
		"erm": func() (*Model, *Result) {
			return fuse(compile(DefaultOptions()), AlgorithmERM, train)
		},
		"em-copy": func() (*Model, *Result) {
			opts := DefaultOptions()
			opts.CopyFeatures = true
			return fuse(compile(opts), AlgorithmEM, nil)
		},
		"em-classes": func() (*Model, *Result) {
			opts := DefaultOptions()
			opts.NumClasses = 2
			classes := make([]int, inst.Dataset.NumObjects())
			for o := range classes {
				classes[o] = o % 2
			}
			opts.ObjectClasses = classes
			return fuse(compile(opts), AlgorithmEM, train)
		},
		"erm-openworld": func() (*Model, *Result) {
			opts := DefaultOptions()
			opts.OpenWorld = true
			opts.OpenWorldBias = -1
			return fuse(compile(opts), AlgorithmERM, train)
		},
		"em-minibatch": func() (*Model, *Result) {
			opts := DefaultOptions()
			opts.Optim.Batch = 16
			return fuse(compile(opts), AlgorithmEM, nil)
		},
	}
}

// TestBitIdenticalToPreRefactor locks the compiled hot-path layout to
// the exact output of the straightforward implementation it replaced.
func TestBitIdenticalToPreRefactor(t *testing.T) {
	for name, run := range goldenScenarios(t) {
		t.Run(name, func(t *testing.T) {
			m, res := run()
			got := fingerprint(m, res)
			want, ok := goldenFingerprints[name]
			if !ok {
				t.Fatalf("no golden fingerprint for %q (got %#x)", name, got)
			}
			if got != want {
				t.Errorf("fingerprint = %#x, want %#x (results drifted from the pre-refactor trajectory)", got, want)
			}
		})
	}
}
