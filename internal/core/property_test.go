package core

import (
	"math"
	"testing"
	"testing/quick"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// propDataset builds a moderate instance for property checks: 6
// sources, 8 objects, 3 values, dense-ish observations derived from a
// seed byte slice so testing/quick can explore different structures.
func propDataset(obsPattern []byte) *data.Dataset {
	b := data.NewBuilder("prop")
	sources := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	objects := []string{"o0", "o1", "o2", "o3", "o4", "o5", "o6", "o7"}
	values := []string{"x", "y", "z"}
	if len(obsPattern) == 0 {
		obsPattern = []byte{1}
	}
	k := 0
	for _, s := range sources {
		for _, o := range objects {
			v := obsPattern[k%len(obsPattern)]
			k++
			if v%4 == 3 {
				continue // skip: sparse pattern
			}
			b.ObserveNames(s, o, values[int(v)%3])
		}
	}
	b.SetFeature(b.Source("s0"), "f0")
	b.SetFeature(b.Source("s1"), "f0")
	b.SetFeature(b.Source("s2"), "f1")
	return b.Freeze()
}

// TestQuickPosteriorIsDistribution: for any weights, every object's
// posterior is a probability distribution over its domain.
func TestQuickPosteriorIsDistribution(t *testing.T) {
	f := func(obsPattern []byte, w0, w1, w2 float64) bool {
		ds := propDataset(obsPattern)
		m, err := Compile(ds, DefaultOptions())
		if err != nil {
			return false
		}
		w := make([]float64, m.NumParams())
		raw := []float64{w0, w1, w2}
		for i := range w {
			w[i] = math.Mod(raw[i%3], 10)
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		if err := m.SetWeights(w); err != nil {
			return false
		}
		for o := 0; o < ds.NumObjects(); o++ {
			post := m.Posterior(data.ObjectID(o))
			if post == nil {
				continue
			}
			var sum float64
			for v, p := range post {
				if p < 0 || p > 1+1e-12 {
					return false
				}
				// Posterior only over observed domain values.
				found := false
				for _, d := range ds.Domain(data.ObjectID(o)) {
					if d == v {
						found = true
					}
				}
				if !found {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickAccuracyMatchesSigma: A_s = logistic(σ_s) for any weights
// (Equation 3 consistency).
func TestQuickAccuracyMatchesSigma(t *testing.T) {
	f := func(w0, w1, w2, w3 float64) bool {
		ds := propDataset([]byte{0, 1, 2})
		m, err := Compile(ds, DefaultOptions())
		if err != nil {
			return false
		}
		w := make([]float64, m.NumParams())
		raw := []float64{w0, w1, w2, w3}
		for i := range w {
			w[i] = math.Mod(raw[i%4], 8)
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		if err := m.SetWeights(w); err != nil {
			return false
		}
		acc := m.SourceAccuracies()
		for s := range acc {
			want := mathx.Logistic(m.Sigma(data.SourceID(s)))
			if math.Abs(acc[s]-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickSigmaShiftMonotonicity: raising one source's weight never
// decreases the posterior of the values that source voted for.
func TestQuickSigmaShiftMonotonicity(t *testing.T) {
	f := func(obsPattern []byte, delta float64) bool {
		delta = math.Abs(math.Mod(delta, 5))
		ds := propDataset(obsPattern)
		m, err := Compile(ds, DefaultOptions())
		if err != nil {
			return false
		}
		before := map[data.ObjectID]map[data.ValueID]float64{}
		for o := 0; o < ds.NumObjects(); o++ {
			before[data.ObjectID(o)] = m.Posterior(data.ObjectID(o))
		}
		w := make([]float64, m.NumParams())
		w[0] = delta // boost s0
		if err := m.SetWeights(w); err != nil {
			return false
		}
		for _, idx := range ds.SourceObservationIndices(0) {
			ob := ds.Observations[idx]
			after := m.Posterior(ob.Object)
			if after == nil || before[ob.Object] == nil {
				continue
			}
			if after[ob.Value]+1e-12 < before[ob.Object][ob.Value] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickEMUnitsBounds: Algorithm 1's per-instance output is always
// within [0, |O|] (each object contributes at most 1 unit) for any
// accuracy.
func TestQuickEMUnitsBounds(t *testing.T) {
	f := func(obsPattern []byte, acc float64) bool {
		acc = mathx.Clamp(math.Abs(math.Mod(acc, 1)), 0.01, 0.99)
		ds := propDataset(obsPattern)
		u := EMUnits(ds, acc, false)
		return u >= 0 && u <= float64(ds.NumObjects())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickAverageAccuracyInRange: the matrix-completion estimate is
// always a valid accuracy in [0.5, 1] regardless of the instance.
func TestQuickAverageAccuracyInRange(t *testing.T) {
	f := func(obsPattern []byte, weighted bool) bool {
		ds := propDataset(obsPattern)
		a := EstimateAverageAccuracy(ds, weighted)
		return a >= 0.5 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickInferMatchesPosteriorArgmax: Infer's MAP value always has
// maximal posterior probability.
func TestQuickInferMatchesPosteriorArgmax(t *testing.T) {
	f := func(obsPattern []byte, w0 float64) bool {
		ds := propDataset(obsPattern)
		m, err := Compile(ds, DefaultOptions())
		if err != nil {
			return false
		}
		w := make([]float64, m.NumParams())
		for i := range w {
			w[i] = math.Mod(w0*float64(i+1), 3)
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		if err := m.SetWeights(w); err != nil {
			return false
		}
		res, err := m.Infer(nil)
		if err != nil {
			return false
		}
		for o, v := range res.Values {
			post := res.Posterior(o)
			for _, p := range post {
				if p > post[v]+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
