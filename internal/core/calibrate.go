package core

import (
	"slimfast/internal/data"
	"slimfast/internal/mathx"
	"slimfast/internal/optim"
	"slimfast/internal/parallel"
)

// Calibrate refits the source and feature weights so that each source's
// accuracy A_s = logistic(σ_s) matches its posterior-expected agreement
// with the fused truth. This mirrors Step 3 of the paper's Theorem 3
// construction: given per-source correctness estimates a_s, choose w to
// minimize
//
//	Σ_s [ a_s·(−log A_s(w)) + (|O_s|−a_s)·(−log(1−A_s(w))) ]
//
// which is a convex weighted logistic regression over the sources. The
// correctness estimates come from the current posteriors: labeled
// objects contribute exact agreement, unlabeled objects contribute
// P(To = v_os). Laplace smoothing (one pseudo-observation split both
// ways) keeps single-observation sources away from {0,1}.
//
// EM needs this pass because its likelihood only weakly identifies σ_s
// once object posteriors saturate (every weight assignment above a
// margin explains saturated posteriors equally well); anchoring on
// agreement counts restores Equation 2's σ_s = logit(A_s) semantics.
// Copy-pair weights are left untouched.
//
// Calibration trades a sliver of MAP sharpness for honest accuracies:
// EM's drifted weights can have *more* contrast than the calibrated
// ones and occasionally win a few contested objects, but their
// accuracy estimates are badly biased; calibrated weights keep object
// accuracy within a few points while cutting the source-accuracy error
// by an order of magnitude (see TestCalibrationFixesEMSourceError).
//
// Calibration iterates a few rounds to a fixed point: when the incoming
// weights produce soft posteriors (e.g. EM parked near its init), the
// first round's agreement counts are diluted by posterior mass on wrong
// values; re-deriving the counts under the calibrated weights sharpens
// them, and the process converges in 2–3 rounds (the same fixed-point
// structure as ACCU's accuracy/confidence alternation).
func (m *Model) Calibrate(train data.TruthMap) error {
	return m.calibrate(train, false)
}

// CalibrateSupervised anchors the accuracies on labeled agreement
// only: unlabeled observations contribute nothing, keeping the
// procedure a pure function of the ground truth. This is the variant
// FitERM uses — ERM's defining property is that it learns from G alone
// (the paper's Figure 4 contrasts exactly this against EM's use of the
// full observation set).
func (m *Model) CalibrateSupervised(train data.TruthMap) error {
	return m.calibrate(train, true)
}

func (m *Model) calibrate(train data.TruthMap, labeledOnly bool) error {
	// Anchor the fixed point: starting calibration from a weak or
	// untrained model (mean σ ≈ 0, near-uniform posteriors) rates
	// every source near chance, flips σ negative, and converges to the
	// *inverted* labeling — the same failure ACCU prevents by starting
	// all sources at accuracy 0.8. If the average reliability of
	// observed sources is below that anchor, shift all per-source
	// weights up uniformly (preserving any learned contrasts); the
	// counts overwrite them within a round anyway.
	if m.opts.EMInitAccuracy > 0 {
		target := mathx.Logit(m.opts.EMInitAccuracy)
		var mean float64
		active := 0
		for s := 0; s < m.numSources; s++ {
			if m.ds.SourceObservationCount(data.SourceID(s)) == 0 {
				continue
			}
			mean += m.Sigma(data.SourceID(s))
			active++
		}
		if active > 0 {
			mean /= float64(active)
			if mean < target {
				shift := target - mean
				for i := 0; i < m.numSources*m.numClasses; i++ {
					m.w[i] += shift
				}
				m.invalidateSigma()
			}
		}
	}
	rounds := 3
	if labeledOnly {
		// Labeled-only counts do not change across rounds; one
		// feature-fit plus the closed-form step is the fixed point.
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		if err := m.calibrateOnce(train, round == 0, labeledOnly); err != nil {
			return err
		}
	}
	return nil
}

// calibrateOnce runs one agreement-count / weight-refit round. The SGD
// feature-pooling pass only runs on the first round; later rounds do
// the closed-form per-source step against the sharpened counts.
//
// Inference uses the dense slab path (no per-object posterior maps) and
// the agreement counting fans out over sources: the count slots of
// source s — srcIdx(s, c) for every class c — are written only by s's
// task, and each source's observations are visited in global
// observation order (bySource preserves it), so every slot accumulates
// the same floats in the same order as the legacy serial sweep and the
// counts are bit-identical for any worker count.
func (m *Model) calibrateOnce(train data.TruthMap, fitFeatures, labeledOnly bool) error {
	dr := m.inferDense(train)
	nS := m.numSources
	// Per (source, class) counts, flattened the same way as srcIdx.
	nSC := nS * m.numClasses
	corr := make([]float64, nSC)
	tot := make([]float64, nSC)
	parallel.Do(nS, m.workers(), func(ch parallel.Chunk) {
		for s := ch.Lo; s < ch.Hi; s++ {
			for _, oi := range m.ds.SourceObservationIndices(data.SourceID(s)) {
				ob := m.ds.Observations[oi]
				if dr.state[ob.Object] == objEmpty {
					continue
				}
				i := m.srcIdx(ob.Source, m.classOfObject(ob.Object))
				if truth, labeled := train[ob.Object]; labeled {
					tot[i]++
					if ob.Value == truth {
						corr[i]++
					}
					continue
				}
				if labeledOnly {
					continue
				}
				tot[i]++
				corr[i] += dr.probs[m.lay.scoreStart[ob.Object]+int(m.lay.obsLocal[oi])]
			}
		}
	})
	var totMean float64
	active := 0
	for i := 0; i < nSC; i++ {
		if tot[i] == 0 {
			continue
		}
		totMean += tot[i]
		active++
	}
	if active == 0 {
		return nil
	}
	totMean /= float64(active)

	cfg := m.optimCfg()
	cfg.Seed = m.opts.Optim.Seed + 7919
	grad := func(i int, w []float64, g *optim.Sparse) {
		if tot[i] == 0 {
			return
		}
		s := data.SourceID(i % nS)
		sigma := w[i]
		if m.opts.UseFeatures {
			for _, k := range m.ds.SourceFeatures[s] {
				sigma += w[m.featBase()+int(k)]
			}
		}
		as := mathx.Logistic(sigma)
		// d/dσ of the weighted logistic loss, scaled so gradient
		// magnitudes stay O(1) regardless of observation counts.
		r := (tot[i]*as - corr[i]) / totMean
		g.Add(i, r)
		if m.opts.UseFeatures {
			for _, k := range m.ds.SourceFeatures[s] {
				g.Add(m.featBase()+int(k), r)
			}
		}
	}
	if fitFeatures {
		_, err := optim.Minimize(nSC, m.w, grad, cfg)
		m.invalidateSigma()
		if err != nil {
			return err
		}
	}

	// The SGD pass pools signal into the feature weights; finish with
	// the exact per-source step. With per-source indicators in the
	// model, the weighted-logistic MLE satisfies A_s = corr_s/tot_s
	// exactly, so set w_s in closed form, shrinking low-count sources
	// toward their feature-based prior (empirical-Bayes blend with
	// pseudo-count priorStrength).
	const priorStrength = 4.0
	for i := 0; i < nSC; i++ {
		if tot[i] == 0 {
			continue
		}
		sid := data.SourceID(i % nS)
		class := i / nS
		featPart := m.SigmaClass(sid, class) - m.w[i]
		prior := mathx.Logistic(m.SigmaClass(sid, class))
		pHat := (corr[i] + priorStrength*prior) / (tot[i] + priorStrength)
		m.w[i] = mathx.Logit(pHat) - featPart
	}
	m.invalidateSigma()
	return nil
}
