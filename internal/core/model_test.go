package core

import (
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
	"slimfast/internal/synth"
)

// tinyDataset builds a 3-source, 2-object instance with features.
func tinyDataset() *data.Dataset {
	b := data.NewBuilder("tiny")
	b.ObserveNames("s0", "o0", "a")
	b.ObserveNames("s1", "o0", "a")
	b.ObserveNames("s2", "o0", "b")
	b.ObserveNames("s0", "o1", "b")
	b.ObserveNames("s2", "o1", "b")
	b.SetFeature(b.Source("s0"), "f0")
	b.SetFeature(b.Source("s1"), "f0")
	b.SetFeature(b.Source("s1"), "f1")
	return b.Freeze()
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(nil, DefaultOptions()); err == nil {
		t.Error("nil dataset should error")
	}
	opts := DefaultOptions()
	opts.Optim.Epochs = 0
	if _, err := Compile(tinyDataset(), opts); err == nil {
		t.Error("invalid optim config should error")
	}
	opts = DefaultOptions()
	opts.EMMaxIters = 0
	if _, err := Compile(tinyDataset(), opts); err == nil {
		t.Error("EMMaxIters=0 should error")
	}
}

func TestSigmaAndAccuracies(t *testing.T) {
	m, err := Compile(tinyDataset(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Weights: 3 sources + 2 features.
	if m.NumParams() != 5 {
		t.Fatalf("NumParams = %d, want 5", m.NumParams())
	}
	w := []float64{0.5, -0.2, 0.1, 1.0, 2.0} // ws0 ws1 ws2 wf0 wf1
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	// σ(s0) = 0.5 + f0 = 1.5; σ(s1) = -0.2 + 1 + 2 = 2.8; σ(s2) = 0.1.
	if got := m.Sigma(0); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Sigma(s0) = %v, want 1.5", got)
	}
	if got := m.Sigma(1); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("Sigma(s1) = %v, want 2.8", got)
	}
	acc := m.SourceAccuracies()
	if math.Abs(acc[2]-mathx.Logistic(0.1)) > 1e-12 {
		t.Errorf("acc(s2) = %v", acc[2])
	}
}

func TestSigmaWithoutFeatures(t *testing.T) {
	opts := DefaultOptions()
	opts.UseFeatures = false
	m, err := Compile(tinyDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, m.NumParams())
	w[0] = 0.5
	w[3] = 99 // feature weight must be ignored
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if got := m.Sigma(0); got != 0.5 {
		t.Errorf("Sigma without features = %v, want 0.5", got)
	}
}

func TestSetWeightsLengthCheck(t *testing.T) {
	m, _ := Compile(tinyDataset(), DefaultOptions())
	if err := m.SetWeights([]float64{1}); err == nil {
		t.Error("wrong length should error")
	}
}

func TestPosteriorMatchesEquation4(t *testing.T) {
	m, _ := Compile(tinyDataset(), DefaultOptions())
	w := make([]float64, m.NumParams())
	w[0], w[1], w[2] = 2, 1, 0.5 // no feature weights
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	// Object 0: s0(σ=2), s1(σ=1) say "a"; s2(σ=0.5) says "b".
	// P(a) = e^3 / (e^3 + e^0.5).
	post := m.Posterior(0)
	want := math.Exp(3) / (math.Exp(3) + math.Exp(0.5))
	if math.Abs(post[0]-want) > 1e-12 {
		t.Errorf("P(a) = %v, want %v", post[0], want)
	}
	// Posterior sums to 1.
	var sum float64
	for _, p := range post {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("posterior sums to %v", sum)
	}
}

func TestInferExactRespectsKnownLabels(t *testing.T) {
	m, _ := Compile(tinyDataset(), DefaultOptions())
	known := data.TruthMap{0: 1} // pin object 0 to "b"
	res, err := m.Infer(known)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 1 {
		t.Errorf("known label overridden: %v", res.Values[0])
	}
	if res.Posterior(0)[1] != 1 {
		t.Error("known label should have point-mass posterior")
	}
}

func TestInferGibbsMatchesExact(t *testing.T) {
	inst, err := synth.Generate(synth.Config{
		Name: "g", Sources: 15, Objects: 60, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.4,
		MeanAccuracy: 0.7, AccuracySD: 0.1, MinAccuracy: 0.5, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	optsExact := DefaultOptions()
	mExact, err := Compile(inst.Dataset, optsExact)
	if err != nil {
		t.Fatal(err)
	}
	// Moderate weights so posteriors aren't saturated.
	w := make([]float64, mExact.NumParams())
	for s := 0; s < inst.Dataset.NumSources(); s++ {
		w[s] = mathx.Logit(inst.TrueAccuracy[s]) / 2
	}
	if err := mExact.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	exact := mExact.inferExact(nil)

	optsGibbs := DefaultOptions()
	optsGibbs.Inference = Gibbs
	optsGibbs.Gibbs.Samples = 4000
	optsGibbs.Gibbs.Burnin = 200
	mGibbs, err := Compile(inst.Dataset, optsGibbs)
	if err != nil {
		t.Fatal(err)
	}
	if err := mGibbs.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	gibbs, err := mGibbs.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Posteriors should agree to sampling error; MAP values should
	// agree on confidently decided objects.
	var maxDiff float64
	for o, pe := range exact.Posteriors() {
		pg := gibbs.Posterior(o)
		for v, p := range pe {
			d := math.Abs(p - pg[v])
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 0.06 {
		t.Errorf("max posterior diff exact vs Gibbs = %v", maxDiff)
	}
	agree, decided := 0, 0
	for o, v := range exact.Values {
		if exact.Posterior(o)[v] < 0.7 {
			continue
		}
		decided++
		if gibbs.Values[o] == v {
			agree++
		}
	}
	if decided > 0 && float64(agree)/float64(decided) < 0.95 {
		t.Errorf("Gibbs MAP agrees on %d/%d confident objects", agree, decided)
	}
}

func TestCopyPairsCompiled(t *testing.T) {
	inst, err := synth.Generate(synth.Config{
		Name: "c", Sources: 12, Objects: 200, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.5,
		MeanAccuracy: 0.65, AccuracySD: 0.08, MinAccuracy: 0.4, MaxAccuracy: 0.9,
		Copying: synth.CopyConfig{Cliques: 1, Size: 3, CopyProb: 0.9},
		Seed:    31,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.CopyFeatures = true
	opts.MinCopyOverlap = 5
	m, err := Compile(inst.Dataset, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCopyPairs() == 0 {
		t.Fatal("dense instance should compile copy pairs")
	}
	if m.NumParams() != inst.Dataset.NumSources()+inst.Dataset.NumFeatures()+m.NumCopyPairs() {
		t.Error("NumParams should include copy pairs")
	}
	a, b, w := m.CopyPair(0)
	if a == b {
		t.Error("copy pair with identical sources")
	}
	if w != 0 {
		t.Error("initial copy weight should be 0")
	}
}

func TestPredictAccuracyUsesFeatures(t *testing.T) {
	m, _ := Compile(tinyDataset(), DefaultOptions())
	w := make([]float64, m.NumParams())
	w[3] = 2  // f0
	w[4] = -1 // f1
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	// Source weights are all zero, so intercept = 0.
	pf0 := m.PredictAccuracy([]string{"f0"})
	if math.Abs(pf0-mathx.Logistic(2)) > 1e-12 {
		t.Errorf("PredictAccuracy(f0) = %v, want logistic(2)", pf0)
	}
	both := m.PredictAccuracy([]string{"f0", "f1"})
	if math.Abs(both-mathx.Logistic(1)) > 1e-12 {
		t.Errorf("PredictAccuracy(f0,f1) = %v, want logistic(1)", both)
	}
	// Unknown labels ignored.
	if got := m.PredictAccuracy([]string{"zzz"}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("unknown feature should give logistic(0) = 0.5, got %v", got)
	}
}

func TestPredictAccuracyIntercept(t *testing.T) {
	opts := DefaultOptions()
	opts.PredictIntercept = true
	m, _ := Compile(tinyDataset(), opts)
	w := make([]float64, m.NumParams())
	w[0], w[1], w[2] = 3, 3, 3 // mean source weight 3
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if got := m.PredictAccuracy(nil); math.Abs(got-mathx.Logistic(3)) > 1e-12 {
		t.Errorf("intercept prediction = %v, want logistic(3)", got)
	}
	opts.PredictIntercept = false
	m2, _ := Compile(tinyDataset(), opts)
	if err := m2.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if got := m2.PredictAccuracy(nil); got != 0.5 {
		t.Errorf("no-intercept prediction = %v, want 0.5", got)
	}
}

func TestInferSkipsUnobservedObjects(t *testing.T) {
	b := data.NewBuilder("sparse")
	b.Object("lonely") // no observations
	b.ObserveNames("s", "seen", "x")
	d := b.Freeze()
	m, _ := Compile(d, DefaultOptions())
	res, err := m.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Values[0]; ok {
		t.Error("unobserved object should have no estimate")
	}
	if _, ok := res.Values[1]; !ok {
		t.Error("observed object should have an estimate")
	}
}
