package core

import (
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

// denseInstance reproduces the regime where raw EM/ERM leaves σ weakly
// identified: many observations per object saturate the posteriors.
func denseInstance(t *testing.T, seed int64) *synth.Instance {
	t.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "dense", Sources: 30, Objects: 500, DomainSize: 6,
		Assignment: synth.IIDDensity, Density: 0.9,
		MeanAccuracy: 0.55, AccuracySD: 0.22, MinAccuracy: 0.1, MaxAccuracy: 0.97,
		EnsureTruthObserved: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestCalibrationFixesEMSourceError(t *testing.T) {
	inst := denseInstance(t, 201)
	trueAcc := inst.Dataset.TrueSourceAccuracies(inst.Gold)
	run := func(calibrate bool) float64 {
		opts := DefaultOptions()
		opts.EMCalibrate = calibrate
		m, err := Compile(inst.Dataset, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.FitEM(nil); err != nil {
			t.Fatal(err)
		}
		return metrics.SourceAccuracyError(inst.Dataset, m.SourceAccuracies(), trueAcc)
	}
	raw := run(false)
	calibrated := run(true)
	if calibrated >= raw {
		t.Errorf("calibration should reduce source error: %.4f -> %.4f", raw, calibrated)
	}
	if calibrated > 0.03 {
		t.Errorf("calibrated EM source error = %.4f, want <= 0.03 on a dense instance", calibrated)
	}
}

func TestCalibrationFixesERMSourceError(t *testing.T) {
	inst := denseInstance(t, 202)
	trueAcc := inst.Dataset.TrueSourceAccuracies(inst.Gold)
	train, _ := data.Split(inst.Gold, 0.2, randx.New(1))
	run := func(calibrate bool) float64 {
		opts := DefaultOptions()
		opts.ERMCalibrate = calibrate
		m, err := Compile(inst.Dataset, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.FitERM(train); err != nil {
			t.Fatal(err)
		}
		return metrics.SourceAccuracyError(inst.Dataset, m.SourceAccuracies(), trueAcc)
	}
	raw := run(false)
	calibrated := run(true)
	if calibrated >= raw {
		t.Errorf("ERM calibration should reduce source error: %.4f -> %.4f", raw, calibrated)
	}
	// Supervised calibration only sees the 20% labeled observations,
	// so its error floor is higher than EM's full-data calibration.
	if calibrated > 0.06 {
		t.Errorf("calibrated ERM source error = %.4f, want <= 0.06", calibrated)
	}
}

func TestCalibrationPreservesObjectAccuracy(t *testing.T) {
	inst := denseInstance(t, 203)
	train, test := data.Split(inst.Gold, 0.1, randx.New(2))
	run := func(calibrate bool) float64 {
		opts := DefaultOptions()
		opts.EMCalibrate = calibrate
		m, err := Compile(inst.Dataset, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.FitEM(train); err != nil {
			t.Fatal(err)
		}
		res, err := m.Infer(train)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.ObjectAccuracy(res.Values, test)
	}
	raw := run(false)
	calibrated := run(true)
	// Calibrated (honest) weights can cost a little MAP accuracy versus
	// EM's self-sharpened weights on dense many-valued instances; the
	// trade buys order-of-magnitude better accuracy estimates. Bound
	// the cost.
	if calibrated+0.05 < raw {
		t.Errorf("calibration cost too much object accuracy: %.3f -> %.3f", raw, calibrated)
	}
}

func TestCalibrateOnEmptyModelIsNoOp(t *testing.T) {
	b := data.NewBuilder("empty")
	b.Source("s")
	b.Object("o")
	ds := b.Freeze()
	m, err := Compile(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(nil); err != nil {
		t.Fatalf("calibrate with no observations should be a no-op: %v", err)
	}
	for _, w := range m.Weights() {
		if w != 0 {
			t.Fatal("weights moved without observations")
		}
	}
}

func TestCalibrationSigmaEqualsLogitAccuracy(t *testing.T) {
	// Equation 2 consistency after calibration: A_s = logistic(σ_s) by
	// construction, and both match the posterior agreement rate.
	inst := denseInstance(t, 204)
	m, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitEM(nil); err != nil {
		t.Fatal(err)
	}
	acc := m.SourceAccuracies()
	for s := 0; s < inst.Dataset.NumSources(); s++ {
		sigma := m.Sigma(data.SourceID(s))
		if math.Abs(acc[s]-1/(1+math.Exp(-sigma))) > 1e-12 {
			t.Fatal("Equation 2/3 inconsistency")
		}
	}
}
