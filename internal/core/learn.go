package core

import (
	"errors"
	"math"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
	"slimfast/internal/optim"
	"slimfast/internal/parallel"
)

// prepGrad wires a Minimize config for the gradient hot path and
// returns the σ-table the gradient closures should score against plus a
// scratch provider safe for the config's concurrency.
//
// In minibatch mode (cfg.Batch > 1) the returned table is refreshed by
// a BatchStart hook at each batch's frozen weights, so the concurrent
// gradient shards read one σ per (source, class) instead of re-summing
// the feature weights per observation; scratch comes from the model's
// pool because the shards run on multiple goroutines. In sequential
// mode the table is nil — accumGradient recomputes σ from the live
// weights at every step, preserving the exact legacy SGD trajectory —
// and a single reused scratch suffices.
func (m *Model) prepGrad(cfg *optim.Config) (sg []float64, get func() *scratch, put func(*scratch)) {
	if cfg.Batch > 1 {
		tbl := make([]float64, m.numSources*m.numClasses)
		cfg.BatchStart = func(w []float64) { m.fillSigma(w, tbl) }
		return tbl, m.getScratch, m.putScratch
	}
	sc := &scratch{}
	return nil, func() *scratch { return sc }, func(*scratch) {}
}

// FitERM learns the model weights by empirical risk minimization over
// the ground truth G (Section 3.2): it maximizes the likelihood of the
// labeled object values, a convex objective solved with SGD. It returns
// the optimizer's run statistics.
//
// Labeled objects without observations carry no gradient and are
// skipped.
func (m *Model) FitERM(train data.TruthMap) (optim.Result, error) {
	examples := m.labeledExamples(train)
	if len(examples) == 0 {
		return optim.Result{}, errors.New("core: FitERM requires ground truth on observed objects")
	}
	cfg := m.optimCfg()
	sg, get, put := m.prepGrad(&cfg)
	grad := func(i int, w []float64, g *optim.Sparse) {
		ex := examples[i]
		sc := get()
		m.accumGradient(w, g, ex.object, ex.truth, nil, sg, sc)
		put(sc)
	}
	res, err := optim.Minimize(len(examples), m.w, grad, cfg)
	m.invalidateSigma()
	if err != nil {
		return res, err
	}
	if m.opts.ERMCalibrate {
		if err := m.CalibrateSupervised(train); err != nil {
			return res, err
		}
	}
	return res, nil
}

// EMStats reports what an EM run did.
type EMStats struct {
	Iterations int
	Converged  bool
	LastDelta  float64 // max weight change in the final iteration
}

// FitEM learns the weights by expectation maximization (Section 3.2).
// Labeled objects in train (may be empty) act as evidence, making the
// run semi-supervised. Each round alternates:
//
//	E-step: q_o(d) = P(To=d | Ω; w) for unlabeled objects
//	        (labeled objects have q_o = point mass on the label),
//	M-step: SGD on the expected negative log-likelihood under q.
//
// EM stops when the max weight change drops below EMTolerance or after
// EMMaxIters rounds.
func (m *Model) FitEM(train data.TruthMap) (EMStats, error) {
	type emExample struct {
		object data.ObjectID
		truth  data.ValueID // data.None when unlabeled
	}
	var examples []emExample
	for o := 0; o < m.ds.NumObjects(); o++ {
		oid := data.ObjectID(o)
		if len(m.ds.Domain(oid)) == 0 {
			continue
		}
		truth := data.None
		if v, ok := train[oid]; ok {
			truth = v
		}
		examples = append(examples, emExample{oid, truth})
	}
	if len(examples) == 0 {
		return EMStats{}, errors.New("core: FitEM requires at least one observed object")
	}

	// Break the symmetric fixed point: from all-zero weights the
	// E-step is uniform and the M-step gradient vanishes. Seed the
	// source weights with a prior accuracy so round one is a weighted
	// majority vote.
	allZero := true
	for _, x := range m.w {
		if x != 0 {
			allZero = false
			break
		}
	}
	if allZero && m.opts.EMInitAccuracy > 0 {
		init := mathx.Logit(m.opts.EMInitAccuracy)
		for i := 0; i < m.numSources*m.numClasses; i++ {
			m.w[i] = init
		}
		m.invalidateSigma()
	}

	// q[i] is the E-step posterior over examples[i].object's domain;
	// the slices are allocated once and rewritten in place every round.
	q := make([][]float64, len(examples))
	prevW := make([]float64, len(m.w))
	var stats EMStats
	mcfg := m.optimCfg()
	// A few SGD epochs per M-step; full convergence per round is
	// wasted work since q moves again immediately.
	if mcfg.Epochs > 10 {
		mcfg.Epochs = 10
	}
	sg, get, put := m.prepGrad(&mcfg)
	workers := m.workers()
	for iter := 0; iter < m.opts.EMMaxIters; iter++ {
		// E-step: each example's posterior lands in its own q slot, so
		// the scoring fans out over workers with bit-identical results
		// for any worker count. The σ-table is frozen for the whole
		// step.
		esg := m.sigmaTable()
		parallel.Do(len(examples), workers, func(ch parallel.Chunk) {
			sc := m.getScratch()
			for i := ch.Lo; i < ch.Hi; i++ {
				ex := examples[i]
				if ex.truth != data.None {
					// Labeled: point mass on the label; no scoring.
					dom := m.lay.dom[ex.object]
					p := growFloats(q[i], len(dom))
					for j, v := range dom {
						p[j] = 0
						if v == ex.truth {
							p[j] = 1
						}
					}
					q[i] = p
					continue
				}
				scores, _ := m.objectScores(ex.object, esg, sc.scores)
				sc.scores = scores
				q[i] = mathx.Softmax(scores, q[i])
			}
			m.putScratch(sc)
		})
		// M-step.
		copy(prevW, m.w)
		mcfg.Seed = m.opts.Optim.Seed + int64(iter) + 1
		grad := func(i int, w []float64, g *optim.Sparse) {
			ex := examples[i]
			sc := get()
			m.accumGradient(w, g, ex.object, data.None, q[i], sg, sc)
			put(sc)
		}
		_, err := optim.Minimize(len(examples), m.w, grad, mcfg)
		m.invalidateSigma()
		if err != nil {
			return stats, err
		}
		stats.Iterations = iter + 1
		stats.LastDelta = mathx.MaxAbsDiff(m.w, prevW)
		if stats.LastDelta < m.opts.EMTolerance {
			stats.Converged = true
			break
		}
	}
	if m.opts.EMCalibrate {
		if err := m.Calibrate(train); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

type labeledExample struct {
	object data.ObjectID
	truth  data.ValueID
}

// labeledExamples returns the training examples ERM can use: labeled
// objects with at least one observation whose label is in the observed
// domain (the single-truth assumption guarantees this for real data;
// labels outside the domain are unlearnable and skipped).
func (m *Model) labeledExamples(train data.TruthMap) []labeledExample {
	var out []labeledExample
	for o := 0; o < m.ds.NumObjects(); o++ {
		oid := data.ObjectID(o)
		truth, ok := train[oid]
		if !ok {
			continue
		}
		dom := m.ds.Domain(oid)
		if len(dom) == 0 {
			continue
		}
		// Under open-world semantics a data.None label ("the truth was
		// never reported") is trainable: it targets the wildcard
		// coordinate.
		found := m.opts.OpenWorld && truth == data.None
		for _, v := range dom {
			if v == truth {
				found = true
				break
			}
		}
		if found {
			out = append(out, labeledExample{oid, truth})
		}
	}
	return out
}

// accumGradient adds one object's gradient contribution to g. q selects
// the residual: when non-nil it is the E-step posterior over the
// object's compiled domain and r = probs − q (EM's expected loss);
// otherwise r = probs − 1[v = truth] (ERM's supervised loss, where
// truth may be data.None under open-world semantics to target the
// wildcard). The chain rule routes each value residual to the weights
// that feed that value's score: observation (o,s) with value v adds r_v
// to w_s and to every active feature weight of s; a copy agreement on
// value u adds Σ_{d≠u} r_d to the pair weight.
//
// sg is the frozen-batch σ-table (see prepGrad) or nil for the
// sequential path, which recomputes σ from w at every step — w aliases
// m.w during optimization, and the per-step recomputation honours the
// optimizer's live view of the weights exactly as the pre-compiled
// implementation did. All buffers come from sc, so the steady state
// allocates nothing.
func (m *Model) accumGradient(w []float64, g *optim.Sparse, o data.ObjectID, truth data.ValueID, q []float64, sg []float64, sc *scratch) {
	dom := m.lay.dom[o]
	n := len(dom)
	if n == 0 {
		return
	}
	fb := m.featBase()
	scores := growFloats(sc.scores, n)
	sc.scores = scores
	for i := range scores {
		scores[i] = 0
	}
	if m.opts.OpenWorld {
		scores[n-1] = m.opts.OpenWorldBias
	}
	obs := m.ds.ObjectObservations(o)
	base := m.lay.obsBase[o]
	class := m.classOfObject(o)
	classBase := class * m.numSources
	if sg != nil {
		for i, ob := range obs {
			scores[m.lay.obsLocal[base+i]] += sg[classBase+int(ob.Source)]
		}
	} else {
		for i, ob := range obs {
			sgm := w[classBase+int(ob.Source)]
			if m.opts.UseFeatures {
				for _, k := range m.ds.SourceFeatures[ob.Source] {
					sgm += w[fb+int(k)]
				}
			}
			scores[m.lay.obsLocal[base+i]] += sgm
		}
	}
	if m.opts.CopyFeatures {
		for _, ag := range m.objCopyAgree[o] {
			wp := w[fb+m.numFeatures+ag.pair]
			for i, v := range dom {
				if v != ag.value {
					scores[i] += wp
				}
			}
		}
	}
	probs := mathx.Softmax(scores, sc.probs)
	sc.probs = probs
	r := growFloats(sc.resid, n)
	sc.resid = r
	if q != nil {
		for j := range dom {
			r[j] = probs[j] - q[j]
		}
	} else {
		for j, v := range dom {
			r[j] = probs[j]
			if v == truth {
				r[j] -= 1
			}
		}
	}
	for i, ob := range obs {
		rv := r[m.lay.obsLocal[base+i]]
		if rv == 0 {
			continue
		}
		g.Add(classBase+int(ob.Source), rv)
		if m.opts.UseFeatures {
			for _, k := range m.ds.SourceFeatures[ob.Source] {
				g.Add(fb+int(k), rv)
			}
		}
	}
	if m.opts.CopyFeatures {
		for _, ag := range m.objCopyAgree[o] {
			var sum float64
			for i, v := range dom {
				if v != ag.value {
					sum += r[i]
				}
			}
			g.Add(fb+m.numFeatures+ag.pair, sum)
		}
	}
}

// LogLikelihood returns the mean log posterior probability the current
// weights assign to the labels in truth, over labeled observed objects.
// Used by tests to verify learning increases likelihood.
func (m *Model) LogLikelihood(truth data.TruthMap) float64 {
	examples := m.labeledExamples(truth)
	if len(examples) == 0 {
		return 0
	}
	sg := m.sigmaTable()
	// Chunked ordered reduction: bit-identical for any Workers > 1 and
	// within float reassociation noise (<< 1e-12) of the serial order.
	sum := parallel.Sum(len(examples), m.workers(), func(ch parallel.Chunk) float64 {
		var part float64
		sc := m.getScratch()
		for i := ch.Lo; i < ch.Hi; i++ {
			ex := examples[i]
			scores, dom := m.objectScores(ex.object, sg, sc.scores)
			sc.scores = scores
			lse := mathx.LogSumExp(scores)
			for j, v := range dom {
				if v == ex.truth {
					part += scores[j] - lse
					break
				}
			}
		}
		m.putScratch(sc)
		return part
	})
	return sum / float64(len(examples))
}

// Fuse is the one-call API: fits with the requested algorithm and runs
// inference. algorithm must be AlgorithmERM or AlgorithmEM.
func (m *Model) Fuse(algorithm Algorithm, train data.TruthMap) (*Result, error) {
	switch algorithm {
	case AlgorithmERM:
		if _, err := m.FitERM(train); err != nil {
			return nil, err
		}
	case AlgorithmEM:
		if _, err := m.FitEM(train); err != nil {
			return nil, err
		}
	default:
		return nil, errors.New("core: unknown algorithm")
	}
	res, err := m.Infer(train)
	if err != nil {
		return nil, err
	}
	res.Algorithm = algorithm.String()
	return res, nil
}

// ExpectedLogLoss computes the mean negative log posterior of the gold
// label over the given objects (the generalization loss L(w) of
// Theorem 1), used by the theory-validation experiments.
func (m *Model) ExpectedLogLoss(gold data.TruthMap) float64 {
	examples := m.labeledExamples(gold)
	if len(examples) == 0 {
		return 0
	}
	sg := m.sigmaTable()
	sum := parallel.Sum(len(examples), m.workers(), func(ch parallel.Chunk) float64 {
		var part float64
		sc := m.getScratch()
		for i := ch.Lo; i < ch.Hi; i++ {
			ex := examples[i]
			scores, dom := m.objectScores(ex.object, sg, sc.scores)
			sc.scores = scores
			lse := mathx.LogSumExp(scores)
			for j, v := range dom {
				if v == ex.truth {
					part += -(scores[j] - lse)
					break
				}
			}
		}
		m.putScratch(sc)
		return part
	})
	loss := sum / float64(len(examples))
	if math.IsNaN(loss) {
		return math.Inf(1)
	}
	return loss
}
