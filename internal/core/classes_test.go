package core

import (
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
)

// classedInstance builds an instance where every source is accurate on
// class-0 objects and inaccurate on class-1 objects (or vice versa), by
// merging two synthetic instances over the same sources.
func classedInstance(t *testing.T) (*data.Dataset, data.TruthMap, []int) {
	t.Helper()
	// Class 0: sources 0-9 accurate (0.9), sources 10-19 poor (0.3).
	// Class 1: flipped.
	b := data.NewBuilder("classed")
	rng := randx.New(33)
	const perClass = 250
	classes := make([]int, 0, 2*perClass)
	truth := data.TruthMap{}
	for class := 0; class < 2; class++ {
		for i := 0; i < perClass; i++ {
			oname := "c" + string(rune('0'+class)) + "-" + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + string(rune('0'+i/676))
			o := b.Object(oname)
			classes = append(classes, class)
			tv := b.Value("v" + string(rune('0'+rng.Intn(2))))
			truth[o] = tv
			for s := 0; s < 20; s++ {
				if !rng.Bernoulli(0.4) {
					continue
				}
				acc := 0.9
				if (s >= 10) == (class == 0) {
					acc = 0.3
				}
				v := tv
				if !rng.Bernoulli(acc) {
					// binary domain: the other value
					other := "v0"
					if b.Value("v0") == tv {
						other = "v1"
					}
					v = b.Value(other)
				}
				b.Observe(data.SourceID(s), o, v)
			}
		}
	}
	// Intern all 20 sources even if unused.
	for s := 0; s < 20; s++ {
		b.Source("s" + string(rune('a'+s)))
	}
	return b.Freeze(), truth, classes
}

func TestPerClassAccuraciesImproveFusion(t *testing.T) {
	ds, gold, classes := classedInstance(t)
	train, test := data.Split(gold, 0.3, randx.New(1))

	// Single-class model: each source's two behaviours average out to
	// ~0.6, washing out the signal.
	single, err := Compile(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.FitERM(train); err != nil {
		t.Fatal(err)
	}
	resSingle, err := single.Infer(train)
	if err != nil {
		t.Fatal(err)
	}
	accSingle := metrics.ObjectAccuracy(resSingle.Values, test)

	// Per-class model learns both regimes.
	opts := DefaultOptions()
	opts.ObjectClasses = classes
	opts.NumClasses = 2
	classed, err := Compile(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if classed.NumClasses() != 2 {
		t.Fatal("NumClasses wrong")
	}
	if _, err := classed.FitERM(train); err != nil {
		t.Fatal(err)
	}
	resClassed, err := classed.Infer(train)
	if err != nil {
		t.Fatal(err)
	}
	accClassed := metrics.ObjectAccuracy(resClassed.Values, test)

	if accClassed <= accSingle+0.05 {
		t.Errorf("per-class model should clearly win: single %.3f vs classed %.3f", accSingle, accClassed)
	}
	// The learned per-class accuracies should show the flip for a
	// class-0-accurate source.
	byClass := classed.SourceAccuraciesByClass()
	if byClass[0][0] <= byClass[1][0] {
		t.Errorf("source 0 should be better on class 0: %.2f vs %.2f", byClass[0][0], byClass[1][0])
	}
	if byClass[1][15] <= byClass[0][15] {
		t.Errorf("source 15 should be better on class 1: %.2f vs %.2f", byClass[1][15], byClass[0][15])
	}
}

func TestPerClassEMWithCalibration(t *testing.T) {
	ds, gold, classes := classedInstance(t)
	opts := DefaultOptions()
	opts.ObjectClasses = classes
	opts.NumClasses = 2
	m, err := Compile(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitEM(nil); err != nil {
		t.Fatal(err)
	}
	res, err := m.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc := metrics.ObjectAccuracy(res.Values, gold); acc < 0.75 {
		t.Errorf("unsupervised per-class EM accuracy = %v, want >= 0.75", acc)
	}
}

func TestPerClassValidation(t *testing.T) {
	ds, _, classes := classedInstance(t)
	opts := DefaultOptions()
	opts.ObjectClasses = classes[:3] // wrong length
	opts.NumClasses = 2
	if _, err := Compile(ds, opts); err == nil {
		t.Error("wrong-length ObjectClasses should error")
	}
	opts.ObjectClasses = classes
	opts.NumClasses = 0
	if _, err := Compile(ds, opts); err == nil {
		t.Error("NumClasses=0 should error")
	}
	bad := append([]int{}, classes...)
	bad[0] = 7
	opts.ObjectClasses = bad
	opts.NumClasses = 2
	if _, err := Compile(ds, opts); err == nil {
		t.Error("out-of-range class should error")
	}
}

func TestPerClassParamCount(t *testing.T) {
	ds, _, classes := classedInstance(t)
	opts := DefaultOptions()
	opts.ObjectClasses = classes
	opts.NumClasses = 2
	m, err := Compile(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := ds.NumSources()*2 + ds.NumFeatures()
	if m.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", m.NumParams(), want)
	}
	single, _ := Compile(ds, DefaultOptions())
	if single.NumClasses() != 1 {
		t.Error("default model should have 1 class")
	}
}

func TestPerClassGibbsInference(t *testing.T) {
	ds, gold, classes := classedInstance(t)
	opts := DefaultOptions()
	opts.ObjectClasses = classes
	opts.NumClasses = 2
	opts.Inference = Gibbs
	opts.Gibbs.Samples = 300
	m, err := Compile(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	train, test := data.Split(gold, 0.3, randx.New(2))
	if _, err := m.FitERM(train); err != nil {
		t.Fatal(err)
	}
	res, err := m.Infer(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc := metrics.ObjectAccuracy(res.Values, test); acc < 0.75 {
		t.Errorf("per-class Gibbs accuracy = %v, want >= 0.75", acc)
	}
}
