package core

import (
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
	"slimfast/internal/metrics"
	"slimfast/internal/optim"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

// mediumInstance generates a fusion problem that is easy enough to
// learn in test time yet non-trivial.
func mediumInstance(t *testing.T, seed int64) *synth.Instance {
	t.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "medium", Sources: 40, Objects: 600, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.25,
		MeanAccuracy: 0.72, AccuracySD: 0.12, MinAccuracy: 0.5, MaxAccuracy: 0.95,
		Features: []synth.FeatureGroup{
			{Name: "q", Cardinality: 8, Informative: true, WeightScale: 2.0},
			{Name: "noise", Cardinality: 8, Informative: false},
		},
		EnsureTruthObserved: true,
		Seed:                seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestFitERMGradientFiniteDifference(t *testing.T) {
	// The analytic gradient must match a numerical one on a small
	// instance — the load-bearing correctness check for both learners.
	d := tinyDataset()
	m, err := Compile(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	train := data.TruthMap{0: 0, 1: 1}
	base := []float64{0.3, -0.5, 0.2, 0.7, -0.1}
	if err := m.SetWeights(base); err != nil {
		t.Fatal(err)
	}

	// Analytic: sum of per-example gradients of -log P(truth).
	examples := m.labeledExamples(train)
	analytic := make([]float64, m.NumParams())
	for _, ex := range examples {
		g := optim.NewSparse()
		m.accumGradient(m.w, g, ex.object, ex.truth, nil, nil, &scratch{})
		g.Dense(analytic)
	}

	// Numerical: central differences on the summed negative log-lik.
	loss := func(w []float64) float64 {
		if err := m.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		return -m.LogLikelihood(train) * float64(len(examples))
	}
	const h = 1e-6
	for j := 0; j < m.NumParams(); j++ {
		wp := append([]float64{}, base...)
		wm := append([]float64{}, base...)
		wp[j] += h
		wm[j] -= h
		num := (loss(wp) - loss(wm)) / (2 * h)
		if math.Abs(num-analytic[j]) > 1e-4 {
			t.Errorf("grad[%d]: numeric %v vs analytic %v", j, num, analytic[j])
		}
	}
}

func TestFitERMGradientWithCopyFeaturesFiniteDifference(t *testing.T) {
	b := data.NewBuilder("copygrad")
	// Two sources co-observing 3 objects (enough for MinCopyOverlap=3),
	// plus a third source to create conflicts.
	for _, row := range [][3]string{
		{"s0", "o0", "x"}, {"s1", "o0", "x"}, {"s2", "o0", "y"},
		{"s0", "o1", "y"}, {"s1", "o1", "y"}, {"s2", "o1", "x"},
		{"s0", "o2", "x"}, {"s1", "o2", "x"}, {"s2", "o2", "x"},
	} {
		b.ObserveNames(row[0], row[1], row[2])
	}
	d := b.Freeze()
	opts := DefaultOptions()
	opts.CopyFeatures = true
	opts.MinCopyOverlap = 3
	m, err := Compile(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCopyPairs() == 0 {
		t.Fatal("expected copy pairs")
	}
	train := data.TruthMap{0: 0, 1: 0, 2: 1}
	base := make([]float64, m.NumParams())
	for i := range base {
		base[i] = 0.1 * float64(i%5-2)
	}
	if err := m.SetWeights(base); err != nil {
		t.Fatal(err)
	}
	examples := m.labeledExamples(train)
	analytic := make([]float64, m.NumParams())
	for _, ex := range examples {
		g := optim.NewSparse()
		m.accumGradient(m.w, g, ex.object, ex.truth, nil, nil, &scratch{})
		g.Dense(analytic)
	}
	loss := func(w []float64) float64 {
		if err := m.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		return -m.LogLikelihood(train) * float64(len(examples))
	}
	const h = 1e-6
	for j := 0; j < m.NumParams(); j++ {
		wp := append([]float64{}, base...)
		wm := append([]float64{}, base...)
		wp[j] += h
		wm[j] -= h
		num := (loss(wp) - loss(wm)) / (2 * h)
		if math.Abs(num-analytic[j]) > 1e-4 {
			t.Errorf("grad[%d]: numeric %v vs analytic %v", j, num, analytic[j])
		}
	}
}

func TestFitERMLearnsAccurateFusion(t *testing.T) {
	inst := mediumInstance(t, 51)
	train, test := data.Split(inst.Gold, 0.3, randx.New(1))
	m, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitERM(train); err != nil {
		t.Fatal(err)
	}
	res, err := m.Infer(train)
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.ObjectAccuracy(res.Values, test)
	if acc < 0.85 {
		t.Errorf("ERM object accuracy = %v, want >= 0.85", acc)
	}
	trueAcc := inst.Dataset.TrueSourceAccuracies(inst.Gold)
	srcErr := metrics.SourceAccuracyError(inst.Dataset, res.SourceAccuracies, trueAcc)
	if srcErr > 0.1 {
		t.Errorf("ERM source accuracy error = %v, want <= 0.1", srcErr)
	}
}

func TestFitERMIncreasesLikelihood(t *testing.T) {
	inst := mediumInstance(t, 52)
	train, _ := data.Split(inst.Gold, 0.2, randx.New(2))
	m, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := m.LogLikelihood(train)
	if _, err := m.FitERM(train); err != nil {
		t.Fatal(err)
	}
	after := m.LogLikelihood(train)
	if after <= before {
		t.Errorf("ERM should increase training likelihood: %v -> %v", before, after)
	}
}

func TestFitERMRequiresTruth(t *testing.T) {
	m, _ := Compile(tinyDataset(), DefaultOptions())
	if _, err := m.FitERM(nil); err == nil {
		t.Error("FitERM without ground truth should error")
	}
	// Truth on an object with no observations is unusable.
	b := data.NewBuilder("x")
	b.Object("lonely")
	b.ObserveNames("s", "seen", "v")
	d := b.Freeze()
	m2, _ := Compile(d, DefaultOptions())
	if _, err := m2.FitERM(data.TruthMap{0: 0}); err == nil {
		t.Error("truth only on unobserved objects should error")
	}
}

func TestFitEMUnsupervisedBeatsChance(t *testing.T) {
	// EM with zero ground truth must still recover most object values
	// when sources are better than chance (Section 4.2.2 regime).
	inst, err := synth.Generate(synth.Config{
		Name: "em", Sources: 60, Objects: 400, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.3,
		MeanAccuracy: 0.75, AccuracySD: 0.08, MinAccuracy: 0.55, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.FitEM(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations == 0 {
		t.Error("EM should run at least one iteration")
	}
	res, err := m.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.ObjectAccuracy(res.Values, inst.Gold)
	if acc < 0.9 {
		t.Errorf("unsupervised EM accuracy = %v, want >= 0.9", acc)
	}
	trueAcc := inst.Dataset.TrueSourceAccuracies(inst.Gold)
	srcErr := metrics.SourceAccuracyError(inst.Dataset, res.SourceAccuracies, trueAcc)
	if srcErr > 0.12 {
		t.Errorf("unsupervised EM source error = %v, want <= 0.12", srcErr)
	}
}

func TestFitEMSemiSupervisedUsesLabels(t *testing.T) {
	inst := mediumInstance(t, 54)
	train, test := data.Split(inst.Gold, 0.1, randx.New(3))
	m, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitEM(train); err != nil {
		t.Fatal(err)
	}
	res, err := m.Infer(train)
	if err != nil {
		t.Fatal(err)
	}
	// Labeled objects returned verbatim.
	for o, v := range train {
		if res.Values[o] != v {
			t.Fatalf("semi-supervised EM must clamp evidence (object %d)", o)
		}
	}
	if acc := metrics.ObjectAccuracy(res.Values, test); acc < 0.8 {
		t.Errorf("semi-supervised EM accuracy = %v, want >= 0.8", acc)
	}
}

func TestFitEMRequiresObservations(t *testing.T) {
	b := data.NewBuilder("empty")
	b.Object("o") // object but no observations
	b.Source("s")
	d := b.Freeze()
	m, _ := Compile(d, DefaultOptions())
	if _, err := m.FitEM(nil); err == nil {
		t.Error("FitEM with no observed objects should error")
	}
}

func TestFuseDispatch(t *testing.T) {
	inst := mediumInstance(t, 55)
	train, _ := data.Split(inst.Gold, 0.2, randx.New(4))
	for _, alg := range []Algorithm{AlgorithmERM, AlgorithmEM} {
		m, err := Compile(inst.Dataset, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Fuse(alg, train)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Algorithm != alg.String() {
			t.Errorf("Algorithm tag = %q, want %q", res.Algorithm, alg.String())
		}
		if len(res.Values) == 0 {
			t.Error("no fused values")
		}
	}
	m, _ := Compile(inst.Dataset, DefaultOptions())
	if _, err := m.Fuse(Algorithm(99), train); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestCopyFeaturesDetectPlantedCopiers(t *testing.T) {
	inst, err := synth.Generate(synth.Config{
		Name: "copy", Sources: 16, Objects: 400, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.5,
		MeanAccuracy: 0.62, AccuracySD: 0.08, MinAccuracy: 0.45, MaxAccuracy: 0.9,
		Copying:             synth.CopyConfig{Cliques: 1, Size: 3, CopyProb: 0.95},
		EnsureTruthObserved: true,
		Seed:                56,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.CopyFeatures = true
	opts.MinCopyOverlap = 20
	m, err := Compile(inst.Dataset, opts)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := data.Split(inst.Gold, 0.4, randx.New(5))
	if _, err := m.FitERM(train); err != nil {
		t.Fatal(err)
	}
	// Planted copier pairs should carry higher copy weights than the
	// average independent pair.
	planted := map[[2]data.SourceID]bool{}
	for _, p := range inst.CopierPairs {
		planted[p] = true
		planted[[2]data.SourceID{p[1], p[0]}] = true
	}
	var plantedSum, otherSum float64
	var plantedN, otherN int
	for p := 0; p < m.NumCopyPairs(); p++ {
		a, b, w := m.CopyPair(p)
		if planted[[2]data.SourceID{a, b}] {
			plantedSum += w
			plantedN++
		} else {
			otherSum += w
			otherN++
		}
	}
	if plantedN == 0 || otherN == 0 {
		t.Fatalf("want both planted (%d) and independent (%d) pairs", plantedN, otherN)
	}
	if plantedSum/float64(plantedN) <= otherSum/float64(otherN) {
		t.Errorf("planted copier weight %.3f should exceed independent %.3f",
			plantedSum/float64(plantedN), otherSum/float64(otherN))
	}
}

func TestExpectedLogLossFiniteAndOrdered(t *testing.T) {
	inst := mediumInstance(t, 57)
	train, test := data.Split(inst.Gold, 0.3, randx.New(6))
	m, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lossBefore := m.ExpectedLogLoss(test)
	if _, err := m.FitERM(train); err != nil {
		t.Fatal(err)
	}
	lossAfter := m.ExpectedLogLoss(test)
	if math.IsInf(lossAfter, 0) || math.IsNaN(lossAfter) {
		t.Fatalf("loss not finite: %v", lossAfter)
	}
	if lossAfter >= lossBefore {
		t.Errorf("test loss should drop after training: %v -> %v", lossBefore, lossAfter)
	}
}

func TestSourcesOnlyModelStillLearns(t *testing.T) {
	// Sources-ERM (no features) should still fuse well on a dataset
	// with enough training signal.
	inst := mediumInstance(t, 58)
	train, test := data.Split(inst.Gold, 0.3, randx.New(7))
	opts := DefaultOptions()
	opts.UseFeatures = false
	m, err := Compile(inst.Dataset, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitERM(train); err != nil {
		t.Fatal(err)
	}
	res, err := m.Infer(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc := metrics.ObjectAccuracy(res.Values, test); acc < 0.8 {
		t.Errorf("Sources-ERM accuracy = %v, want >= 0.8", acc)
	}
	// Feature weights must remain untouched.
	for k := 0; k < inst.Dataset.NumFeatures(); k++ {
		if m.FeatureWeight(data.FeatureID(k)) != 0 {
			t.Fatal("feature weights moved in sources-only model")
		}
	}
}

func TestERMDeterministicAcrossRuns(t *testing.T) {
	inst := mediumInstance(t, 59)
	train, _ := data.Split(inst.Gold, 0.2, randx.New(8))
	run := func() []float64 {
		m, err := Compile(inst.Dataset, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.FitERM(train); err != nil {
			t.Fatal(err)
		}
		return append([]float64{}, m.Weights()...)
	}
	w1, w2 := run(), run()
	if mathx.MaxAbsDiff(w1, w2) != 0 {
		t.Error("same seeds must reproduce identical weights")
	}
}
