package core

import (
	"math"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// Algorithm names SLiMFast's two learning procedures.
type Algorithm int

const (
	// AlgorithmERM is empirical risk minimization over ground truth.
	AlgorithmERM Algorithm = iota
	// AlgorithmEM is (semi-supervised) expectation maximization.
	AlgorithmEM
)

// String returns "erm" or "em".
func (a Algorithm) String() string {
	if a == AlgorithmERM {
		return "erm"
	}
	return "em"
}

// OptimizerOptions tunes the ERM/EM selection procedure of Section 4.3.
type OptimizerOptions struct {
	// Tau is the threshold τ of Algorithm 2: when the ERM
	// generalization bound √(|K|/|G|)·log|G| falls below it, ERM is
	// chosen immediately. The paper uses 0.1 in the evaluation.
	Tau float64

	// MultiplyByM reproduces Example 8 (each object's information gain
	// scaled by its number of observations m) instead of the printed
	// Algorithm 1 (which adds the raw 1−H(pe) per object). The two
	// disagree in the paper; the printed algorithm is the default.
	// When set, the ERM side is scaled the same way to stay
	// comparable.
	MultiplyByM bool

	// OverlapWeightedAgreement switches the average-accuracy estimator
	// from the paper's closed form (sum over all |S|²−|S| ordered
	// pairs, zero for non-overlapping pairs) to an overlap-weighted
	// mean that is more stable on sparse instances.
	OverlapWeightedAgreement bool
}

// DefaultOptimizerOptions follows the paper's evaluation settings
// (τ = 0.1, printed Algorithm 1) with one documented divergence: the
// overlap-weighted agreement estimator is the default. The paper's
// closed form divides by all |S|²−|S| pairs, which collapses the
// accuracy estimate to 0.5 on very sparse instances (Genomics has
// ~1 observation per source) and misroutes the ERM/EM decision; the
// overlap-weighted mean recovers the intended behaviour and is
// identical on dense instances. Set OverlapWeightedAgreement=false for
// the verbatim paper estimator (ablated in BenchmarkAblationAgreement).
func DefaultOptimizerOptions() OptimizerOptions {
	return OptimizerOptions{Tau: 0.1, OverlapWeightedAgreement: true}
}

// Decision records the optimizer's choice and its internal evidence,
// exposed so Table 4 can be reproduced and so users can inspect why an
// algorithm was selected.
type Decision struct {
	Algorithm   Algorithm
	ERMBound    float64 // √(|K|/|G|)·log|G|
	BoundFired  bool    // true when the bound alone decided for ERM
	ERMUnits    float64 // units of information in ground truth (= |G|)
	EMUnits     float64 // Algorithm 1's estimate
	AvgAccuracy float64 // matrix-completion estimate of mean accuracy
}

// densePairLimit bounds the |S|² agreement matrix at 4096² entries
// (~256 MiB of int64 pair counters); rarer, wider instances take the
// map path instead of risking the allocation.
const densePairLimit = 4096

// EstimateAverageAccuracy implements the matrix-completion estimator of
// Section 4.3: the source-agreement matrix X has E[X_ij] = (2A−1)², so
// µ̂ = √(ΣX_ij / (|S|²−|S|)) and A = (µ̂+1)/2. The overlap-weighted
// variant divides by overlap mass instead of the full pair count.
//
// The pair statistics accumulate in a dense |S|×|S| upper-triangular
// matrix (two flat slices) instead of a map of heap-allocated structs:
// the map paid one allocation per co-observing pair (the bulk of
// Decide's allocation bill) and hashed on every observation pair,
// while the dense layout is two slice allocations total and a direct
// index per pair. It also makes the paper's closed-form variant
// deterministic — the map version summed non-integer ratios in map
// iteration order. The overlap-weighted default sums integer-valued
// floats, which are exactly associative, so its result is bit-identical
// to the map implementation (pinned by TestDecideGoldenFingerprint).
func EstimateAverageAccuracy(ds *data.Dataset, overlapWeighted bool) float64 {
	nS := ds.NumSources()
	if nS < 2 {
		return 0.5
	}
	if nS > densePairLimit {
		return estimateAverageAccuracySparse(ds, overlapWeighted)
	}
	// agree[a·|S|+b] (a < b, observations are source-sorted within an
	// object) holds agreements minus disagreements; overlap counts the
	// shared objects.
	agree := make([]int64, nS*nS)
	overlap := make([]int64, nS*nS)
	for o := 0; o < ds.NumObjects(); o++ {
		obs := ds.ObjectObservations(data.ObjectID(o))
		for i := 0; i < len(obs); i++ {
			row := int(obs[i].Source) * nS
			vi := obs[i].Value
			for j := i + 1; j < len(obs); j++ {
				k := row + int(obs[j].Source)
				overlap[k]++
				if vi == obs[j].Value {
					agree[k]++
				} else {
					agree[k]--
				}
			}
		}
	}
	var num, den float64
	if overlapWeighted {
		for k, ov := range overlap {
			if ov != 0 {
				num += float64(agree[k])
				den += float64(ov)
			}
		}
		if den == 0 {
			return 0.5
		}
	} else {
		// Paper's closed form: X_ij is the mean agreement of pair
		// (i,j); the denominator counts all ordered pairs, with
		// non-overlapping pairs contributing X_ij = 0. Each unordered
		// pair appears twice in Σ_{i,j}, matching |S|²−|S| ordered
		// pairs.
		for k, ov := range overlap {
			if ov != 0 {
				num += 2 * float64(agree[k]) / float64(ov)
			}
		}
		den = float64(nS*nS - nS)
	}
	return finishAverageAccuracy(num, den)
}

// estimateAverageAccuracySparse is the map fallback for instances too
// wide for the dense pair matrix. Same arithmetic; per-pair map
// entries instead of the flat slabs.
func estimateAverageAccuracySparse(ds *data.Dataset, overlapWeighted bool) float64 {
	type pairStat struct {
		agreeMinusDisagree int64
		overlap            int64
	}
	stats := map[[2]data.SourceID]*pairStat{}
	for o := 0; o < ds.NumObjects(); o++ {
		obs := ds.ObjectObservations(data.ObjectID(o))
		for i := 0; i < len(obs); i++ {
			for j := i + 1; j < len(obs); j++ {
				k := [2]data.SourceID{obs[i].Source, obs[j].Source}
				st := stats[k]
				if st == nil {
					st = &pairStat{}
					stats[k] = st
				}
				st.overlap++
				if obs[i].Value == obs[j].Value {
					st.agreeMinusDisagree++
				} else {
					st.agreeMinusDisagree--
				}
			}
		}
	}
	var num, den float64
	if overlapWeighted {
		for _, st := range stats {
			num += float64(st.agreeMinusDisagree)
			den += float64(st.overlap)
		}
		if den == 0 {
			return 0.5
		}
	} else {
		for _, st := range stats {
			num += 2 * float64(st.agreeMinusDisagree) / float64(st.overlap)
		}
		nS := ds.NumSources()
		den = float64(nS*nS - nS)
	}
	return finishAverageAccuracy(num, den)
}

// finishAverageAccuracy maps the accumulated agreement mass to the
// average-accuracy estimate A = (µ̂+1)/2.
func finishAverageAccuracy(num, den float64) float64 {
	muSq := num / den
	if muSq < 0 {
		muSq = 0
	}
	mu := math.Sqrt(muSq)
	return mathx.Clamp((mu+1)/2, 0.5, 1)
}

// EMUnits implements Algorithm 1: the estimated units of information
// the E-step extracts from unlabeled observations, under the
// simplifying model that every source has accuracy avgAcc and conflicts
// are resolved by majority vote.
func EMUnits(ds *data.Dataset, avgAcc float64, multiplyByM bool) float64 {
	var total float64
	for o := 0; o < ds.NumObjects(); o++ {
		oid := data.ObjectID(o)
		m := len(ds.ObjectObservations(oid))
		if m == 0 {
			continue
		}
		nd := len(ds.Domain(oid))
		if nd < 1 {
			continue
		}
		// pe = P(majority vote is correct) = P(#correct > m/|Do|)
		// via the Binomial CDF, exactly as Algorithm 1 states.
		k := m / nd // floor
		pe := mathx.BinomTailAbove(m, k, avgAcc)
		if pe < 0.5 {
			continue
		}
		gain := 1 - mathx.Entropy2(pe)
		if multiplyByM {
			gain *= float64(m)
		}
		total += gain
	}
	return total
}

// Decide implements Algorithm 2: choose between ERM and EM for the
// given instance and ground truth.
func Decide(ds *data.Dataset, train data.TruthMap, opts OptimizerOptions) Decision {
	dec := Decision{}
	numFeatures := ds.NumFeatures()
	if numFeatures == 0 {
		// Without domain features the model's capacity is its |S|
		// per-source indicators.
		numFeatures = ds.NumSources()
	}
	g := float64(len(train))
	if g > 0 {
		dec.ERMBound = math.Sqrt(float64(numFeatures)/g) * math.Log(g)
	} else {
		dec.ERMBound = math.Inf(1)
	}
	if g > 1 && dec.ERMBound < opts.Tau {
		dec.Algorithm = AlgorithmERM
		dec.BoundFired = true
		return dec
	}
	dec.ERMUnits = g
	if opts.MultiplyByM {
		// Scale each labeled object by its observation count to stay
		// comparable with the Example 8 variant of EMUnits.
		dec.ERMUnits = 0
		for o := range train {
			dec.ERMUnits += float64(len(ds.ObjectObservations(o)))
		}
	}
	dec.AvgAccuracy = EstimateAverageAccuracy(ds, opts.OverlapWeightedAgreement)
	dec.EMUnits = EMUnits(ds, dec.AvgAccuracy, opts.MultiplyByM)
	if dec.ERMUnits < dec.EMUnits {
		dec.Algorithm = AlgorithmEM
	} else {
		dec.Algorithm = AlgorithmERM
	}
	return dec
}

// FuseAuto runs the full SLiMFast pipeline: decide between ERM and EM
// with the optimizer, fit, and infer. The decision is returned for
// reporting.
func (m *Model) FuseAuto(train data.TruthMap, opts OptimizerOptions) (*Result, Decision, error) {
	dec := Decide(m.ds, train, opts)
	alg := dec.Algorithm
	if len(train) == 0 {
		alg = AlgorithmEM // no ground truth: ERM is impossible
		dec.Algorithm = AlgorithmEM
	}
	res, err := m.Fuse(alg, train)
	if err != nil {
		return nil, dec, err
	}
	return res, dec, nil
}
