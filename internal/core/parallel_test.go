package core

import (
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

// The race/determinism tier: fitting and inference with Workers=N must
// produce results identical to Workers=1, across ERM, EM,
// copy-detection and multi-class configurations. Run under -race this
// also proves the parallel paths share no mutable state.

// fitBoth compiles the instance twice with the given options at two
// worker counts, runs fit, and returns both models and results.
func fitBoth(t *testing.T, inst *synth.Instance, opts Options, alg Algorithm, train data.TruthMap, w1, wN int) (a, b *Model, ra, rb *Result) {
	t.Helper()
	run := func(workers int) (*Model, *Result) {
		o := opts
		o.Workers = workers
		m, err := Compile(inst.Dataset, o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Fuse(alg, train)
		if err != nil {
			t.Fatal(err)
		}
		return m, res
	}
	a, ra = run(w1)
	b, rb = run(wN)
	return a, b, ra, rb
}

// assertSameFit fails unless weights, fused values and posteriors are
// bit-identical between the two runs.
func assertSameFit(t *testing.T, label string, a, b *Model, ra, rb *Result) {
	t.Helper()
	wa, wb := a.Weights(), b.Weights()
	if len(wa) != len(wb) {
		t.Fatalf("%s: param counts differ: %d vs %d", label, len(wa), len(wb))
	}
	for j := range wa {
		if wa[j] != wb[j] {
			t.Fatalf("%s: weight %d differs: %v vs %v (Δ=%g)", label, j, wa[j], wb[j], wa[j]-wb[j])
		}
	}
	if len(ra.Values) != len(rb.Values) {
		t.Fatalf("%s: fused %d vs %d objects", label, len(ra.Values), len(rb.Values))
	}
	for o, v := range ra.Values {
		if rb.Values[o] != v {
			t.Fatalf("%s: object %d fused to %d vs %d", label, o, v, rb.Values[o])
		}
	}
	for o, post := range ra.Posteriors() {
		for v, p := range post {
			if q := rb.Posterior(o)[v]; q != p {
				t.Fatalf("%s: posterior[%d][%d] = %v vs %v", label, o, v, p, q)
			}
		}
	}
	for s := range ra.SourceAccuracies {
		if ra.SourceAccuracies[s] != rb.SourceAccuracies[s] {
			t.Fatalf("%s: source %d accuracy differs", label, s)
		}
	}
}

func TestParallelERMEquivalentToSerial(t *testing.T) {
	inst := mediumInstance(t, 51)
	train, _ := data.Split(inst.Gold, 0.2, randx.New(1))
	for _, workers := range []int{2, 4} {
		a, b, ra, rb := fitBoth(t, inst, DefaultOptions(), AlgorithmERM, train, 1, workers)
		assertSameFit(t, "erm", a, b, ra, rb)
	}
}

func TestParallelEMEquivalentToSerial(t *testing.T) {
	inst := mediumInstance(t, 52)
	train, _ := data.Split(inst.Gold, 0.05, randx.New(2))
	a, b, ra, rb := fitBoth(t, inst, DefaultOptions(), AlgorithmEM, train, 1, 4)
	assertSameFit(t, "em", a, b, ra, rb)
	// Fully unsupervised EM too.
	a, b, ra, rb = fitBoth(t, inst, DefaultOptions(), AlgorithmEM, nil, 1, 3)
	assertSameFit(t, "em-unsupervised", a, b, ra, rb)
}

func TestParallelCopyDetectionEquivalentToSerial(t *testing.T) {
	inst, err := synth.Demos(7)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.UseFeatures = false
	opts.CopyFeatures = true
	opts.MinCopyOverlap = 12
	train, _ := data.Split(inst.Gold, 0.2, randx.New(3))
	a, b, ra, rb := fitBoth(t, inst, opts, AlgorithmEM, train, 1, 4)
	assertSameFit(t, "copy-em", a, b, ra, rb)
}

func TestParallelMultiClassEquivalentToSerial(t *testing.T) {
	inst := mediumInstance(t, 53)
	opts := DefaultOptions()
	classes := make([]int, inst.Dataset.NumObjects())
	for o := range classes {
		classes[o] = o % 2
	}
	opts.ObjectClasses = classes
	opts.NumClasses = 2
	train, _ := data.Split(inst.Gold, 0.2, randx.New(4))
	a, b, ra, rb := fitBoth(t, inst, opts, AlgorithmERM, train, 1, 4)
	assertSameFit(t, "multiclass-erm", a, b, ra, rb)
}

func TestParallelInferEquivalentToSerial(t *testing.T) {
	inst := mediumInstance(t, 54)
	train, _ := data.Split(inst.Gold, 0.1, randx.New(5))
	opts := DefaultOptions()
	opts.Workers = 1
	m, err := Compile(inst.Dataset, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitERM(train); err != nil {
		t.Fatal(err)
	}
	serial, err := m.Infer(train)
	if err != nil {
		t.Fatal(err)
	}
	w := append([]float64{}, m.Weights()...)
	for _, workers := range []int{2, 4, 8} {
		o := DefaultOptions()
		o.Workers = workers
		mp, err := Compile(inst.Dataset, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := mp.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		par, err := mp.Infer(train)
		if err != nil {
			t.Fatal(err)
		}
		assertSameFit(t, "infer", m, mp, serial, par)
	}
}

func TestParallelLikelihoodWithinTolerance(t *testing.T) {
	// Scalar reductions reassociate across chunks, so Workers=N agrees
	// with Workers=1 to 1e-12 (and exactly across N > 1).
	inst := mediumInstance(t, 55)
	train, _ := data.Split(inst.Gold, 0.3, randx.New(6))
	opts := DefaultOptions()
	opts.Workers = 1
	m, err := Compile(inst.Dataset, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitERM(train); err != nil {
		t.Fatal(err)
	}
	llSerial := m.LogLikelihood(inst.Gold)
	lossSerial := m.ExpectedLogLoss(inst.Gold)
	w := append([]float64{}, m.Weights()...)

	var llRef, lossRef float64
	for i, workers := range []int{2, 4, 8} {
		o := DefaultOptions()
		o.Workers = workers
		mp, err := Compile(inst.Dataset, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := mp.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		ll := mp.LogLikelihood(inst.Gold)
		loss := mp.ExpectedLogLoss(inst.Gold)
		if math.Abs(ll-llSerial) > 1e-12 || math.Abs(loss-lossSerial) > 1e-12 {
			t.Fatalf("workers=%d: likelihood drifted: %v vs %v / %v vs %v",
				workers, ll, llSerial, loss, lossSerial)
		}
		if i == 0 {
			llRef, lossRef = ll, loss
		} else if ll != llRef || loss != lossRef {
			t.Fatalf("workers=%d: parallel reductions not bit-identical", workers)
		}
	}
}

func TestDefaultWorkersEquivalentToSerial(t *testing.T) {
	// Workers=0 (the GOMAXPROCS default every caller gets) must match
	// the explicit serial path too.
	inst := mediumInstance(t, 56)
	train, _ := data.Split(inst.Gold, 0.1, randx.New(7))
	a, b, ra, rb := fitBoth(t, inst, DefaultOptions(), AlgorithmEM, train, 1, 0)
	assertSameFit(t, "em-default-workers", a, b, ra, rb)
}
