package core

import (
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// openWorldDataset: one contested object plus one unanimous object.
func openWorldDataset() *data.Dataset {
	b := data.NewBuilder("ow")
	b.ObserveNames("s1", "contested", "a")
	b.ObserveNames("s2", "contested", "b")
	b.ObserveNames("s1", "clear", "x")
	b.ObserveNames("s2", "clear", "x")
	b.ObserveNames("s3", "clear", "x")
	return b.Freeze()
}

func TestOpenWorldPosteriorIncludesWildcard(t *testing.T) {
	opts := DefaultOptions()
	opts.OpenWorld = true
	opts.OpenWorldBias = 0
	m, err := Compile(openWorldDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	post := m.Posterior(0) // contested
	if _, ok := post[data.None]; !ok {
		t.Fatal("open-world posterior missing wildcard")
	}
	// With zero weights and zero bias, all three options are uniform.
	for v, p := range post {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Errorf("P(%d) = %v, want 1/3", v, p)
		}
	}
	var sum float64
	for _, p := range post {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("posterior sums to %v", sum)
	}
}

func TestOpenWorldVeryNegativeBiasMatchesClosedWorld(t *testing.T) {
	ds := openWorldDataset()
	closed, err := Compile(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	owOpts := DefaultOptions()
	owOpts.OpenWorld = true
	owOpts.OpenWorldBias = -50
	open, err := Compile(ds, owOpts)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, closed.NumParams())
	w[0], w[1], w[2] = 1.5, 0.5, 1.0
	if err := closed.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if err := open.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	for o := 0; o < ds.NumObjects(); o++ {
		pc := closed.Posterior(data.ObjectID(o))
		po := open.Posterior(data.ObjectID(o))
		for v, p := range pc {
			if math.Abs(po[v]-p) > 1e-9 {
				t.Errorf("object %d value %d: open %v vs closed %v", o, v, po[v], p)
			}
		}
		if po[data.None] > 1e-9 {
			t.Errorf("wildcard mass should vanish at bias -50, got %v", po[data.None])
		}
	}
}

func TestOpenWorldHighBiasAbstains(t *testing.T) {
	opts := DefaultOptions()
	opts.OpenWorld = true
	opts.OpenWorldBias = 30
	m, err := Compile(openWorldDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	// With an overwhelming bias, every object resolves to the wildcard.
	for o, v := range res.Values {
		if v != data.None {
			t.Errorf("object %d = %d, want wildcard under bias 30", o, v)
		}
	}
}

func TestOpenWorldMAPPrefersUnanimousOverWildcard(t *testing.T) {
	opts := DefaultOptions()
	opts.OpenWorld = true
	opts.OpenWorldBias = 2.0 // above one source's σ, below three
	m, err := Compile(openWorldDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Give the sources solid reliabilities.
	w := make([]float64, m.NumParams())
	for s := 0; s < 3; s++ {
		w[s] = mathx.Logit(0.85)
	}
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	res, err := m.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Three agreeing reliable sources beat the wildcard on "clear"...
	if res.Values[1] == data.None {
		t.Error("unanimous reliable object should not abstain")
	}
	// ...but the 1-vs-1 contested object abstains: each side carries
	// only logit(0.85) ≈ 1.73 < bias 2.0.
	if res.Values[0] != data.None {
		t.Errorf("contested object = %d, want wildcard", res.Values[0])
	}
}

func TestOpenWorldERMWithNoneLabels(t *testing.T) {
	// Label the contested object as "truth unreported"; ERM should
	// learn to distrust both claimants relative to the clear object's
	// sources... and at minimum must accept the example and converge.
	opts := DefaultOptions()
	opts.OpenWorld = true
	opts.OpenWorldBias = 0
	// Test the raw ERM learning path: with only two observations per
	// source, calibration's empirical-Bayes prior would dominate the
	// counts and wash out the deliberately distrusting solution.
	opts.ERMCalibrate = false
	m, err := Compile(openWorldDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Value ids follow interning order: a=0, b=1, x=2.
	train := data.TruthMap{0: data.None, 1: 2} // contested=unreported, clear=x
	if _, err := m.FitERM(train); err != nil {
		t.Fatal(err)
	}
	res, err := m.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != data.None {
		t.Errorf("trained model should abstain on the contested object, got %d", res.Values[0])
	}
	if res.Values[1] == data.None {
		t.Error("trained model should commit on the clear object")
	}
}

func TestOpenWorldGibbsMatchesExact(t *testing.T) {
	opts := DefaultOptions()
	opts.OpenWorld = true
	opts.OpenWorldBias = 0.5
	mExact, err := Compile(openWorldDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, mExact.NumParams())
	w[0], w[1], w[2] = 1, 0.3, 0.7
	if err := mExact.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	exact, err := mExact.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	gOpts := opts
	gOpts.Inference = Gibbs
	gOpts.Gibbs.Samples = 20000
	gOpts.Gibbs.Burnin = 500
	mGibbs, err := Compile(openWorldDataset(), gOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := mGibbs.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	gibbs, err := mGibbs.Infer(nil)
	if err != nil {
		t.Fatal(err)
	}
	for o, pe := range exact.Posteriors() {
		for v, p := range pe {
			if math.Abs(gibbs.Posterior(o)[v]-p) > 0.02 {
				t.Errorf("object %d value %d: gibbs %v vs exact %v", o, v, gibbs.Posterior(o)[v], p)
			}
		}
	}
}
