package core

import (
	"slimfast/internal/data"
)

// layout is the compiled hot-path representation of the dataset, built
// once in Compile. It flattens the per-object observation structure
// into a CSR-style form so the inner loops of scoring, gradient
// accumulation and inference index straight into slices instead of
// rebuilding a map[ValueID]int position index per call:
//
//   - observation i of object o lives at global index obsBase[o]+i in
//     ds.Observations, and obsLocal[obsBase[o]+i] is the local index of
//     its value inside dom[o];
//   - dom[o] is the object's scoring domain with the open-world
//     wildcard (data.None) already appended when Options.OpenWorld is
//     set, so the hot loops never copy or extend domains;
//   - scoreStart offsets a single dense slab: object o's score/
//     posterior vector occupies [scoreStart[o], scoreStart[o+1]) —
//     the dense posterior path (inferDense) writes there instead of
//     allocating one map per object per round;
//   - featIdx is PredictAccuracy's feature-name index, hoisted out of
//     the per-call path.
type layout struct {
	obsBase    []int
	obsLocal   []int32
	dom        [][]data.ValueID
	scoreStart []int
	featIdx    map[string]data.FeatureID
}

// localIndex returns the position of v in dom, or -1 when absent. Only
// used at compile time and on cold paths; the hot loops read the
// precomputed obsLocal instead.
func localIndex(dom []data.ValueID, v data.ValueID) int {
	for i, d := range dom {
		if d == v {
			return i
		}
	}
	return -1
}

// buildLayout compiles the CSR observation layout, the (open-world
// extended) domains, the dense-slab offsets and the feature-name index.
func (m *Model) buildLayout() {
	ds := m.ds
	nObj := ds.NumObjects()
	m.lay.obsBase = make([]int, nObj)
	m.lay.obsLocal = make([]int32, ds.NumObservations())
	m.lay.dom = make([][]data.ValueID, nObj)
	m.lay.scoreStart = make([]int, nObj+1)
	base := 0
	for o := 0; o < nObj; o++ {
		oid := data.ObjectID(o)
		obs := ds.ObjectObservations(oid)
		m.lay.obsBase[o] = base
		dom := ds.Domain(oid)
		if m.opts.OpenWorld && len(dom) > 0 {
			ext := make([]data.ValueID, len(dom)+1)
			copy(ext, dom)
			ext[len(dom)] = data.None
			dom = ext
		}
		m.lay.dom[o] = dom
		m.lay.scoreStart[o+1] = m.lay.scoreStart[o] + len(dom)
		for i, ob := range obs {
			m.lay.obsLocal[base+i] = int32(localIndex(dom, ob.Value))
		}
		base += len(obs)
	}
	m.lay.featIdx = make(map[string]data.FeatureID, ds.NumFeatures())
	for i, n := range ds.FeatureNames {
		m.lay.featIdx[n] = data.FeatureID(i)
	}
}

// fillSigma writes σ_{s,c} = w_{s,c} + Σ_k w_k f_sk for every
// (source, class) into tbl (indexed like srcIdx: class·|S|+source),
// reading the weights from w. The per-entry arithmetic and feature
// summation order match SigmaClass exactly, so a cached entry is
// bit-identical to a per-observation recomputation at the same weights.
func (m *Model) fillSigma(w []float64, tbl []float64) {
	fb := m.featBase()
	for c := 0; c < m.numClasses; c++ {
		for s := 0; s < m.numSources; s++ {
			sg := w[c*m.numSources+s]
			if m.opts.UseFeatures {
				for _, k := range m.ds.SourceFeatures[s] {
					sg += w[fb+int(k)]
				}
			}
			tbl[c*m.numSources+s] = sg
		}
	}
}

// sigmaTable returns the σ-cache for the current model weights,
// recomputing it at most once per frozen-weight phase.
//
// Invalidation contract: every code path that mutates m.w must call
// invalidateSigma before the next frozen-weight phase reads the table.
// Inside this package that is SetWeights, the optimizer runs in FitERM,
// FitEM's M-step and calibrateOnce, EM's initial-accuracy seeding, and
// calibrate's uniform shift / closed-form per-source steps. The
// sequential SGD path never reads this cache — accumGradient recomputes
// σ from the live weights at every step so the legacy per-step
// trajectory stays bit-identical; only phases with frozen weights
// (E-step, exact inference, likelihood scoring, Gibbs compilation,
// calibration counting, minibatch gradient shards via their own
// per-batch table) read a σ-table.
func (m *Model) sigmaTable() []float64 {
	m.sigmaMu.Lock()
	if !m.sigmaValid {
		m.fillSigma(m.w, m.sigma)
		m.sigmaValid = true
	}
	m.sigmaMu.Unlock()
	return m.sigma
}

// invalidateSigma marks the σ-cache stale; see sigmaTable.
func (m *Model) invalidateSigma() {
	m.sigmaMu.Lock()
	m.sigmaValid = false
	m.sigmaMu.Unlock()
}

// scratch bundles the reusable per-worker buffers of the inner loops
// (scores, softmax output, residuals) so steady-state scoring and
// gradient accumulation allocate nothing.
type scratch struct {
	scores []float64
	probs  []float64
	resid  []float64
}

// growFloats returns buf resized to n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// getScratch hands out a per-worker scratch; return it with putScratch.
func (m *Model) getScratch() *scratch {
	if sc, ok := m.scratchPool.Get().(*scratch); ok {
		return sc
	}
	return &scratch{}
}

func (m *Model) putScratch(sc *scratch) { m.scratchPool.Put(sc) }
