package core

import (
	"math/rand"
	"testing"

	"slimfast/internal/data"
)

// TestSigmaCacheInvalidation exercises the invalidate-on-weight-change
// contract: every public path that mutates weights must leave the model
// scoring exactly as a freshly compiled model with the same weights.
func TestSigmaCacheInvalidation(t *testing.T) {
	inst := goldenInstance(t)
	m, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitEM(nil); err != nil {
		t.Fatal(err)
	}
	// Populate the cache, then change the weights behind it.
	_ = m.Posterior(0)
	w := append([]float64{}, m.Weights()...)
	for i := range w {
		w[i] += 0.25 * float64(i%3)
	}
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	fresh, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	for o := 0; o < inst.Dataset.NumObjects(); o++ {
		got := m.Posterior(data.ObjectID(o))
		want := fresh.Posterior(data.ObjectID(o))
		if len(got) != len(want) {
			t.Fatalf("object %d: posterior sizes differ: %d vs %d", o, len(got), len(want))
		}
		for v, p := range want {
			if got[v] != p {
				t.Fatalf("object %d value %d: stale σ-cache posterior %v, want %v", o, v, got[v], p)
			}
		}
	}
	if got, want := m.LogLikelihood(inst.Gold), fresh.LogLikelihood(inst.Gold); got != want {
		t.Fatalf("stale σ-cache log-likelihood %v, want %v", got, want)
	}
}

// TestCopyPairsOrderIndependent is the regression test for the
// canonicalized copy-pair keys: feeding the builder the same
// observations in shuffled orders must compile the same pairs and learn
// the same weights.
func TestCopyPairsOrderIndependent(t *testing.T) {
	rows := [][3]string{
		{"s0", "o0", "x"}, {"s1", "o0", "x"}, {"s2", "o0", "y"},
		{"s0", "o1", "y"}, {"s1", "o1", "y"}, {"s2", "o1", "x"},
		{"s0", "o2", "x"}, {"s1", "o2", "x"}, {"s2", "o2", "x"},
		{"s0", "o3", "z"}, {"s1", "o3", "z"}, {"s2", "o3", "z"},
	}
	build := func(order []int) *Model {
		b := data.NewBuilder("shuffled")
		// Pre-intern names in canonical order so shuffling the
		// observation stream cannot change the id assignment — the
		// point is to vary the order sources co-observe objects.
		for _, r := range rows {
			b.Source(r[0])
			b.Object(r[1])
			b.Value(r[2])
		}
		for _, i := range order {
			b.ObserveNames(rows[i][0], rows[i][1], rows[i][2])
		}
		opts := DefaultOptions()
		opts.CopyFeatures = true
		opts.MinCopyOverlap = 3
		m, err := Compile(b.Freeze(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := build([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	if ref.NumCopyPairs() == 0 {
		t.Fatal("expected copy pairs on the reference build")
	}
	for p := 0; p < ref.NumCopyPairs(); p++ {
		a, b, _ := ref.CopyPair(p)
		if a >= b {
			t.Fatalf("pair %d not canonicalized: (%d, %d)", p, a, b)
		}
	}
	train := data.TruthMap{0: ref.ds.Domain(0)[0], 1: ref.ds.Domain(1)[0], 2: ref.ds.Domain(2)[0]}
	if _, err := ref.FitERM(train); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		order := rng.Perm(len(rows))
		m := build(order)
		if m.NumCopyPairs() != ref.NumCopyPairs() {
			t.Fatalf("trial %d: %d copy pairs, want %d", trial, m.NumCopyPairs(), ref.NumCopyPairs())
		}
		for p := 0; p < ref.NumCopyPairs(); p++ {
			ra, rb, _ := ref.CopyPair(p)
			ma, mb, _ := m.CopyPair(p)
			if ra != ma || rb != mb {
				t.Fatalf("trial %d pair %d: (%d,%d), want (%d,%d)", trial, p, ma, mb, ra, rb)
			}
		}
		if _, err := m.FitERM(train); err != nil {
			t.Fatal(err)
		}
		wr, wm := ref.Weights(), m.Weights()
		for j := range wr {
			if wr[j] != wm[j] {
				t.Fatalf("trial %d: weight %d differs under shuffled input: %v vs %v", trial, j, wm[j], wr[j])
			}
		}
	}
}

// TestCalibrateWorkerDeterminism targets the parallel agreement
// counting directly: calibrating the same weights with 1 and 8 workers
// must produce bit-identical weight vectors (the per-source count slots
// accumulate in global observation order regardless of chunking).
func TestCalibrateWorkerDeterminism(t *testing.T) {
	inst := goldenInstance(t)
	opts := DefaultOptions()
	opts.EMCalibrate = false
	seed, err := Compile(inst.Dataset, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.FitEM(nil); err != nil {
		t.Fatal(err)
	}
	calibrated := func(workers int) []float64 {
		o := opts
		o.Workers = workers
		m, err := Compile(inst.Dataset, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetWeights(seed.Weights()); err != nil {
			t.Fatal(err)
		}
		if err := m.Calibrate(nil); err != nil {
			t.Fatal(err)
		}
		return m.Weights()
	}
	w1, w8 := calibrated(1), calibrated(8)
	for j := range w1 {
		if w1[j] != w8[j] {
			t.Fatalf("weight %d differs across calibrate worker counts: %v vs %v", j, w1[j], w8[j])
		}
	}
}
