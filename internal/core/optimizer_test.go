package core

import (
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

func TestEstimateAverageAccuracyRecovers(t *testing.T) {
	// Homogeneous sources: the matrix-completion estimator should
	// recover the common accuracy on a binary domain.
	for _, acc := range []float64{0.6, 0.75, 0.9} {
		inst, err := synth.Generate(synth.Config{
			Name: "a", Sources: 80, Objects: 800, DomainSize: 2,
			Assignment: synth.IIDDensity, Density: 0.2,
			MeanAccuracy: acc, AccuracySD: 0.01,
			MinAccuracy: acc - 0.02, MaxAccuracy: acc + 0.02,
			Seed: 61,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := EstimateAverageAccuracy(inst.Dataset, false)
		if math.Abs(got-acc) > 0.04 {
			t.Errorf("acc=%v: estimate %v (paper closed form)", acc, got)
		}
		gotW := EstimateAverageAccuracy(inst.Dataset, true)
		if math.Abs(gotW-acc) > 0.04 {
			t.Errorf("acc=%v: estimate %v (overlap-weighted)", acc, gotW)
		}
	}
}

func TestEstimateAverageAccuracyDegenerate(t *testing.T) {
	b := data.NewBuilder("one")
	b.ObserveNames("only", "o", "v")
	d := b.Freeze()
	if got := EstimateAverageAccuracy(d, false); got != 0.5 {
		t.Errorf("single source should give 0.5, got %v", got)
	}
	// Two sources, no overlap.
	b2 := data.NewBuilder("nooverlap")
	b2.ObserveNames("s1", "o1", "v")
	b2.ObserveNames("s2", "o2", "v")
	d2 := b2.Freeze()
	if got := EstimateAverageAccuracy(d2, true); got != 0.5 {
		t.Errorf("no overlap should give 0.5, got %v", got)
	}
	if got := EstimateAverageAccuracy(d2, false); got != 0.5 {
		t.Errorf("no overlap (paper form) should give 0.5, got %v", got)
	}
}

func TestEMUnitsExample8(t *testing.T) {
	// Paper Example 8: 10 sources, accuracy 0.7, binary object.
	// pe = 0.8497, H = 0.611, per-object gain = 0.389 (Algorithm 1)
	// or 3.89 when multiplied by m (Example 8's arithmetic).
	b := data.NewBuilder("ex8")
	for i := 0; i < 5; i++ {
		b.ObserveNames("s"+string(rune('a'+i)), "o", "true")
	}
	for i := 5; i < 10; i++ {
		b.ObserveNames("s"+string(rune('a'+i)), "o", "false")
	}
	d := b.Freeze()
	units := EMUnits(d, 0.7, false)
	if math.Abs(units-0.389) > 1e-3 {
		t.Errorf("EMUnits = %v, want 0.389 (Algorithm 1)", units)
	}
	unitsM := EMUnits(d, 0.7, true)
	if math.Abs(unitsM-3.89) > 1e-2 {
		t.Errorf("EMUnits×m = %v, want 3.89 (Example 8)", unitsM)
	}
}

func TestEMUnitsSkipsLowConfidenceObjects(t *testing.T) {
	// With accuracy 0.5 on a binary object, pe = P(majority correct)
	// is near 0.5, so 1−H(pe) ≈ 0 and low-pe objects are skipped.
	b := data.NewBuilder("low")
	b.ObserveNames("s1", "o", "x")
	b.ObserveNames("s2", "o", "y")
	d := b.Freeze()
	if units := EMUnits(d, 0.5, false); units > 0.05 {
		t.Errorf("uninformative object should contribute ~0 units, got %v", units)
	}
}

func TestEMUnitsMonotoneInAccuracy(t *testing.T) {
	inst, err := synth.Generate(synth.Config{
		Name: "mono", Sources: 50, Objects: 300, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.2,
		MeanAccuracy: 0.7, AccuracySD: 0.05, MinAccuracy: 0.5, MaxAccuracy: 0.9,
		Seed: 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, a := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
		u := EMUnits(inst.Dataset, a, false)
		if u < prev {
			t.Fatalf("EMUnits not monotone in accuracy at %v: %v < %v", a, u, prev)
		}
		prev = u
	}
}

func TestDecideBoundFiresWithMassiveTruth(t *testing.T) {
	inst, err := synth.Generate(synth.Config{
		Name: "big", Sources: 20, Objects: 2000, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.1,
		MeanAccuracy: 0.7, AccuracySD: 0.05, MinAccuracy: 0.5, MaxAccuracy: 0.9,
		Features: []synth.FeatureGroup{{Name: "f", Cardinality: 4, Informative: true, WeightScale: 1}},
		Seed:     63,
	})
	if err != nil {
		t.Fatal(err)
	}
	// |K| = 4, |G| = 2000: bound = sqrt(4/2000)·log(2000) ≈ 0.34.
	// With tau 0.5 the bound fires.
	train, _ := data.Split(inst.Gold, 1.0, randx.New(1))
	dec := Decide(inst.Dataset, train, OptimizerOptions{Tau: 0.5})
	if dec.Algorithm != AlgorithmERM || !dec.BoundFired {
		t.Errorf("massive truth should fire the ERM bound: %+v", dec)
	}
}

func TestDecideNoTruthPrefersEM(t *testing.T) {
	inst, err := synth.Generate(synth.Config{
		Name: "none", Sources: 50, Objects: 500, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.1,
		MeanAccuracy: 0.75, AccuracySD: 0.05, MinAccuracy: 0.55, MaxAccuracy: 0.9,
		Seed: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	dec := Decide(inst.Dataset, data.TruthMap{}, DefaultOptimizerOptions())
	if dec.Algorithm != AlgorithmEM {
		t.Errorf("no ground truth should choose EM: %+v", dec)
	}
	if !math.IsInf(dec.ERMBound, 1) {
		t.Errorf("ERM bound should be +Inf with no truth, got %v", dec.ERMBound)
	}
}

func TestDecideTradeoffTrainingData(t *testing.T) {
	// Dense accurate instance: EM wins at tiny training fractions, ERM
	// as truth grows — the Figure 2/5 tradeoff.
	inst, err := synth.Generate(synth.Config{
		Name: "trade", Sources: 100, Objects: 1000, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.05,
		MeanAccuracy: 0.8, AccuracySD: 0.05, MinAccuracy: 0.6, MaxAccuracy: 0.95,
		Seed: 65,
	})
	if err != nil {
		t.Fatal(err)
	}
	tiny, _ := data.Split(inst.Gold, 0.001, randx.New(2))
	full, _ := data.Split(inst.Gold, 1.0, randx.New(2))
	opts := OptimizerOptions{Tau: 0} // disable the bound shortcut
	decTiny := Decide(inst.Dataset, tiny, opts)
	decFull := Decide(inst.Dataset, full, opts)
	if decTiny.Algorithm != AlgorithmEM {
		t.Errorf("tiny truth on dense accurate instance should pick EM: %+v", decTiny)
	}
	if decFull.Algorithm != AlgorithmERM {
		t.Errorf("full truth should pick ERM: %+v", decFull)
	}
}

func TestDecideUsesSourceCountWithoutFeatures(t *testing.T) {
	b := data.NewBuilder("nofeat")
	b.ObserveNames("s1", "o1", "a")
	b.ObserveNames("s2", "o1", "b")
	d := b.Freeze()
	dec := Decide(d, data.TruthMap{0: 0}, OptimizerOptions{Tau: 0.0001})
	// |K|=0 so capacity falls back to |S|=2; with |G|=1 the bound is 0
	// (log 1 = 0) but |G|<=1 must not fire the bound.
	if dec.BoundFired {
		t.Errorf("bound must not fire on a single example: %+v", dec)
	}
}

func TestFuseAutoEndToEnd(t *testing.T) {
	inst, err := synth.Generate(synth.Config{
		Name: "auto", Sources: 40, Objects: 500, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.2,
		MeanAccuracy: 0.72, AccuracySD: 0.1, MinAccuracy: 0.5, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: 66,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := data.Split(inst.Gold, 0.1, randx.New(3))
	m, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, dec, err := m.FuseAuto(train, DefaultOptimizerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != dec.Algorithm.String() {
		t.Errorf("result algorithm %q != decision %q", res.Algorithm, dec.Algorithm)
	}
	correct := 0
	for o, v := range test {
		if res.Values[o] == v {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.85 {
		t.Errorf("FuseAuto accuracy = %v, want >= 0.85", acc)
	}
}

func TestFuseAutoNoTruthForcesEM(t *testing.T) {
	inst, err := synth.Generate(synth.Config{
		Name: "auto2", Sources: 30, Objects: 200, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.3,
		MeanAccuracy: 0.75, AccuracySD: 0.05, MinAccuracy: 0.55, MaxAccuracy: 0.9,
		EnsureTruthObserved: true, Seed: 67,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(inst.Dataset, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, dec, err := m.FuseAuto(nil, DefaultOptimizerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Algorithm != AlgorithmEM || res.Algorithm != "em" {
		t.Errorf("no truth must force EM: %+v %q", dec, res.Algorithm)
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgorithmERM.String() != "erm" || AlgorithmEM.String() != "em" {
		t.Error("Algorithm.String wrong")
	}
}

func TestAgreementEstimatorAblation(t *testing.T) {
	// On a sparse long-tail instance, the overlap-weighted variant
	// should be no worse than the paper's closed form.
	inst, err := synth.Generate(synth.Config{
		Name: "sparse", Sources: 300, Objects: 400, DomainSize: 2,
		Assignment: synth.SkewedSources, ObsPerObject: 4, SourceSkew: 0.8,
		MeanAccuracy: 0.7, AccuracySD: 0.02, MinAccuracy: 0.65, MaxAccuracy: 0.75,
		Seed: 68,
	})
	if err != nil {
		t.Fatal(err)
	}
	paper := EstimateAverageAccuracy(inst.Dataset, false)
	weighted := EstimateAverageAccuracy(inst.Dataset, true)
	truth := mathx.Clamp(0.7, 0, 1)
	if math.Abs(weighted-truth) > math.Abs(paper-truth)+0.02 {
		t.Errorf("overlap-weighted (%v) should not be much worse than paper form (%v)", weighted, paper)
	}
}
