// Package core implements SLiMFast (Sections 3–4 of the paper): a
// discriminative data-fusion model that couples cross-source conflicts
// with domain-specific source features, learned either by empirical
// risk minimization (ERM, when ground truth is available) or by
// expectation maximization (EM), with an optimizer that picks between
// the two (Section 4.3).
//
// The model is Equation 4:
//
//	P(To = d | Ω; w) ∝ exp Σ_{(o,s)∈Ω} (w_s + Σ_k w_k f_sk) · 1[v_os = d]
//
// so each source's reliability score σ_s = w_s + Σ_k w_k f_sk doubles as
// the log-odds of its accuracy: A_s = logistic(σ_s) (Equations 2–3).
// The Appendix D copying extension adds pairwise features over source
// pairs that penalize agreement between suspected copiers.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"slimfast/internal/data"
	"slimfast/internal/factor"
	"slimfast/internal/mathx"
	"slimfast/internal/optim"
	"slimfast/internal/parallel"
)

// Inference selects how posteriors are computed.
type Inference int

const (
	// Exact computes Equation 4 posteriors in closed form (the model
	// factorizes over objects). This is the default.
	Exact Inference = iota
	// Gibbs compiles the model to a factor graph and samples, matching
	// the paper's DeepDive execution path.
	Gibbs
)

// Options configures a SLiMFast model.
type Options struct {
	// UseFeatures includes the domain-specific feature weights w_k.
	// Disabling them yields the paper's Sources-ERM / Sources-EM
	// variants, which rely on the per-source indicators only.
	UseFeatures bool

	// CopyFeatures adds Appendix D's pairwise copying features for
	// source pairs that co-observe at least MinCopyOverlap objects.
	CopyFeatures   bool
	MinCopyOverlap int

	// Inference selects exact closed-form posteriors or Gibbs
	// sampling over the compiled factor graph.
	Inference Inference
	Gibbs     factor.GibbsConfig

	// Optim configures the SGD/AdaGrad runs inside ERM and each EM
	// M-step.
	Optim optim.Config

	// EMMaxIters bounds the number of EM rounds; EMTolerance stops
	// early when the maximum weight change between rounds drops below
	// it.
	EMMaxIters  int
	EMTolerance float64

	// EMCalibrate runs a post-EM calibration pass (see Calibrate) that
	// anchors A_s = logistic(σ_s) on posterior-agreement counts, the
	// construction used by the paper's Theorem 3 proof. Without it, σ
	// is only weakly identified once posteriors saturate.
	EMCalibrate bool

	// ERMCalibrate runs the same pass after ERM: the supervised
	// likelihood suffers the same weak identification on dense
	// instances (saturated posteriors accept any weights above a
	// margin), and calibration restores Equation 2's σ_s = logit(A_s)
	// reading that the paper's Table 3 errors reflect.
	ERMCalibrate bool

	// EMInitAccuracy seeds the per-source weights with
	// logit(EMInitAccuracy) when EM starts from all-zero weights.
	// All-zero weights are a fixed point of EM (uniform posteriors
	// produce zero gradients), so the first E-step must be anchored;
	// this makes it a weighted majority vote, the standard
	// initialization in the truth-discovery literature.
	EMInitAccuracy float64

	// ObjectClasses optionally assigns each object (by dense id) a
	// class in [0, NumClasses); the model then learns one accuracy
	// parameter per (source, class), the relaxation Section 2 of the
	// paper describes for sources whose reliability differs across
	// object categories. Domain-feature weights stay shared across
	// classes. Nil means a single class.
	ObjectClasses []int
	NumClasses    int

	// OpenWorld enables the open-world semantics sketched in Section 2
	// of the paper: every object's domain gains a wildcard value
	// (data.None) meaning "the true value was not reported by any
	// source", with constant log-score OpenWorldBias. Objects whose
	// posterior favours the wildcard are returned with data.None as
	// their value. More negative biases approach closed-world
	// behaviour.
	OpenWorld     bool
	OpenWorldBias float64

	// PredictIntercept controls unseen-source accuracy prediction
	// (Section 5.3.2): when true, the mean of the learned per-source
	// weights is used as an intercept alongside the feature weights.
	PredictIntercept bool

	// Workers bounds the goroutines used by the parallel execution
	// subsystem for the EM E-step, exact inference and likelihood
	// scoring, and is inherited by Optim.Workers when that is unset.
	// 0 means runtime.GOMAXPROCS(0); 1 runs everything on the calling
	// goroutine (the legacy serial path). Learning and inference
	// results — weights, fused values, posteriors, accuracies — are
	// bit-identical for every value of Workers: each object/example
	// owns its output slot, and gradient application stays ordered.
	// The scalar diagnostics LogLikelihood and ExpectedLogLoss reduce
	// over chunked partial sums, so they are bit-identical across all
	// Workers > 1 but may differ from Workers == 1 by float
	// reassociation noise (well under 1e-12).
	Workers int
}

// DefaultOptions returns the configuration used across the experiment
// suite.
func DefaultOptions() Options {
	oc := optim.DefaultConfig()
	oc.L2 = 1e-3 // keep separable instances finite
	return Options{
		UseFeatures:      true,
		MinCopyOverlap:   3,
		Inference:        Exact,
		Gibbs:            factor.DefaultGibbsConfig(),
		Optim:            oc,
		EMMaxIters:       25,
		EMTolerance:      1e-3,
		EMCalibrate:      true,
		ERMCalibrate:     true,
		EMInitAccuracy:   0.8,
		PredictIntercept: true,
	}
}

// Model is a compiled SLiMFast instance over one dataset. Construct
// with Compile; learn with FitERM or FitEM; read results with Infer,
// SourceAccuracies and the Weights accessors.
type Model struct {
	ds   *data.Dataset
	opts Options

	// w holds all weights: per-source w_s at [0, |S|), per-feature w_k
	// at [|S|, |S|+|K|), copy-pair weights after that.
	w []float64

	numSources  int
	numFeatures int
	numClasses  int
	classOf     []int // per-object class; nil means all class 0

	// copyPairs lists the source pairs with pairwise copy features;
	// copyAgree[p] lists, for each pair, the (object, value) agreements
	// it has, precomputed at compile time.
	copyPairs []copyPair
	// objCopyAgree[o] lists agreements relevant to object o: which copy
	// pair agreed and on which value.
	objCopyAgree [][]copyAgreement

	// lay is the compiled hot-path layout (CSR observations with local
	// domain indices, extended domains, dense-slab offsets, feature
	// index); see compiled.go.
	lay layout

	// sigma caches the per-(source, class) reliability scores at the
	// current weights; sigmaValid tracks the invalidate-on-weight-change
	// contract documented on sigmaTable.
	sigma      []float64
	sigmaValid bool
	sigmaMu    sync.Mutex

	// scratchPool recycles the per-worker hot-loop buffers.
	scratchPool sync.Pool
}

type copyPair struct {
	a, b data.SourceID
}

type copyAgreement struct {
	pair  int // index into copyPairs
	value data.ValueID
}

// Compile builds a Model over the dataset. It precomputes the copy-pair
// structure when Options.CopyFeatures is set.
func Compile(ds *data.Dataset, opts Options) (*Model, error) {
	if ds == nil {
		return nil, errors.New("core: nil dataset")
	}
	if err := opts.Optim.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.EMMaxIters <= 0 {
		return nil, errors.New("core: EMMaxIters must be positive")
	}
	m := &Model{
		ds:          ds,
		opts:        opts,
		numSources:  ds.NumSources(),
		numFeatures: ds.NumFeatures(),
		numClasses:  1,
	}
	if opts.ObjectClasses != nil {
		if len(opts.ObjectClasses) != ds.NumObjects() {
			return nil, fmt.Errorf("core: ObjectClasses has %d entries, want %d", len(opts.ObjectClasses), ds.NumObjects())
		}
		if opts.NumClasses < 1 {
			return nil, errors.New("core: NumClasses must be >= 1 with ObjectClasses")
		}
		for o, c := range opts.ObjectClasses {
			if c < 0 || c >= opts.NumClasses {
				return nil, fmt.Errorf("core: object %d class %d out of [0,%d)", o, c, opts.NumClasses)
			}
		}
		m.numClasses = opts.NumClasses
		m.classOf = opts.ObjectClasses
	}
	if opts.CopyFeatures {
		m.buildCopyPairs()
	}
	m.w = make([]float64, m.numSources*m.numClasses+m.numFeatures+len(m.copyPairs))
	m.sigma = make([]float64, m.numSources*m.numClasses)
	m.buildLayout()
	return m, nil
}

// srcIdx returns the weight index of source s in class c.
func (m *Model) srcIdx(s data.SourceID, c int) int { return c*m.numSources + int(s) }

// featBase returns the index of the first feature weight.
func (m *Model) featBase() int { return m.numSources * m.numClasses }

// classOfObject returns the class of object o (0 when unclassed).
func (m *Model) classOfObject(o data.ObjectID) int {
	if m.classOf == nil {
		return 0
	}
	return m.classOf[o]
}

// NumClasses returns the number of per-source accuracy classes.
func (m *Model) NumClasses() int { return m.numClasses }

// buildCopyPairs finds source pairs co-observing at least
// MinCopyOverlap objects and records their per-object agreements. Pair
// keys are canonicalized to (min, max) so the compiled copy features do
// not depend on the order observations happened to be recorded in.
func (m *Model) buildCopyPairs() {
	type pairKey struct{ a, b data.SourceID }
	overlap := map[pairKey]int{}
	type agreeRec struct {
		o data.ObjectID
		v data.ValueID
	}
	agreeByPair := map[pairKey][]agreeRec{}
	for o := 0; o < m.ds.NumObjects(); o++ {
		obs := m.ds.ObjectObservations(data.ObjectID(o))
		for i := 0; i < len(obs); i++ {
			for j := i + 1; j < len(obs); j++ {
				k := pairKey{obs[i].Source, obs[j].Source}
				if k.a > k.b {
					k.a, k.b = k.b, k.a
				}
				overlap[k]++
				if obs[i].Value == obs[j].Value {
					agreeByPair[k] = append(agreeByPair[k], agreeRec{data.ObjectID(o), obs[i].Value})
				}
			}
		}
	}
	m.objCopyAgree = make([][]copyAgreement, m.ds.NumObjects())
	// Deterministic pair order: sort keys before assigning indices so
	// learned weights are reproducible across runs.
	keys := make([]pairKey, 0, len(overlap))
	for k := range overlap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		if overlap[k] < m.opts.MinCopyOverlap {
			continue
		}
		idx := len(m.copyPairs)
		m.copyPairs = append(m.copyPairs, copyPair{k.a, k.b})
		for _, ar := range agreeByPair[k] {
			m.objCopyAgree[ar.o] = append(m.objCopyAgree[ar.o], copyAgreement{pair: idx, value: ar.v})
		}
	}
}

// NumParams returns the total number of learned weights.
func (m *Model) NumParams() int { return len(m.w) }

// NumCopyPairs returns how many pairwise copying features were
// compiled.
func (m *Model) NumCopyPairs() int { return len(m.copyPairs) }

// CopyPair returns the source pair and learned weight of copy feature
// p. Large positive weights mark suspected copiers (their agreement is
// discounted during fusion), matching Figure 8's reading.
func (m *Model) CopyPair(p int) (a, b data.SourceID, weight float64) {
	cp := m.copyPairs[p]
	return cp.a, cp.b, m.w[m.featBase()+m.numFeatures+p]
}

// Weights exposes the raw weight vector (source weights first, then
// feature weights, then copy weights). The returned slice aliases the
// model; treat it as read-only.
func (m *Model) Weights() []float64 { return m.w }

// SetWeights overwrites the model weights; used by tests and by the
// Lasso-path sweep. The length must match NumParams.
func (m *Model) SetWeights(w []float64) error {
	if len(w) != len(m.w) {
		return fmt.Errorf("core: SetWeights: got %d weights, want %d", len(w), len(m.w))
	}
	copy(m.w, w)
	m.invalidateSigma()
	return nil
}

// FeatureWeight returns w_k for feature k.
func (m *Model) FeatureWeight(k data.FeatureID) float64 {
	return m.w[m.featBase()+int(k)]
}

// Sigma returns the reliability score σ_s = w_s + Σ_k w_k f_sk of
// source s under the current weights (class 0 when per-class
// accuracies are enabled; see SigmaClass).
func (m *Model) Sigma(s data.SourceID) float64 { return m.SigmaClass(s, 0) }

// SigmaClass returns source s's reliability score for objects of the
// given class.
func (m *Model) SigmaClass(s data.SourceID, class int) float64 {
	sigma := m.w[m.srcIdx(s, class)]
	if m.opts.UseFeatures {
		for _, k := range m.ds.SourceFeatures[s] {
			sigma += m.w[m.featBase()+int(k)]
		}
	}
	return sigma
}

// SourceAccuracies returns A_s = logistic(σ_s) for every source
// (Equation 3). With per-class accuracies enabled this is the class-0
// estimate; use SourceAccuraciesByClass for all classes.
func (m *Model) SourceAccuracies() []float64 {
	acc := make([]float64, m.numSources)
	for s := range acc {
		acc[s] = mathx.Logistic(m.Sigma(data.SourceID(s)))
	}
	return acc
}

// SourceAccuraciesByClass returns accuracies indexed [class][source].
func (m *Model) SourceAccuraciesByClass() [][]float64 {
	out := make([][]float64, m.numClasses)
	for c := range out {
		out[c] = make([]float64, m.numSources)
		for s := range out[c] {
			out[c][s] = mathx.Logistic(m.SigmaClass(data.SourceID(s), c))
		}
	}
	return out
}

// PredictAccuracy estimates the accuracy of a source never seen during
// training, from its feature labels alone (Section 5.3.2, Figure 7).
// Labels absent from the training feature vocabulary are ignored.
func (m *Model) PredictAccuracy(featureLabels []string) float64 {
	idx := m.lay.featIdx
	var sigma float64
	if m.opts.PredictIntercept && m.numSources > 0 {
		var sum float64
		n := m.numSources * m.numClasses
		for i := 0; i < n; i++ {
			sum += m.w[i]
		}
		sigma += sum / float64(n)
	}
	if m.opts.UseFeatures {
		for _, lbl := range featureLabels {
			if k, ok := idx[lbl]; ok {
				sigma += m.w[m.featBase()+int(k)]
			}
		}
	}
	return mathx.Logistic(sigma)
}

// objectScores computes the unnormalized log-posterior scores for every
// value in the compiled domain of object o (Equation 4 plus copy
// features), writing into buf and returning it alongside the domain.
// sg is the σ-table for the weights being scored (sigmaTable for the
// model's own weights). The compiled layout supplies each observation's
// local domain index and the open-world-extended domain, so the loop is
// pure indexed arithmetic — no per-call maps or domain copies. Under
// open-world semantics the returned domain carries a trailing data.None
// wildcard whose score is the configured bias.
func (m *Model) objectScores(o data.ObjectID, sg []float64, buf []float64) ([]float64, []data.ValueID) {
	dom := m.lay.dom[o]
	n := len(dom)
	if n == 0 {
		return buf[:0], nil
	}
	buf = growFloats(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	if m.opts.OpenWorld {
		buf[n-1] = m.opts.OpenWorldBias
	}
	base := m.lay.obsBase[o]
	classBase := m.classOfObject(o) * m.numSources
	for i, ob := range m.ds.ObjectObservations(o) {
		buf[m.lay.obsLocal[base+i]] += sg[classBase+int(ob.Source)]
	}
	if m.opts.CopyFeatures {
		for _, ag := range m.objCopyAgree[o] {
			wp := m.w[m.featBase()+m.numFeatures+ag.pair]
			// Appendix D: the feature is active when the fused value
			// differs from what the agreeing pair reported, so every
			// value except the agreed one gets +wp (the wildcard
			// included: an unreported truth also contradicts the
			// copiers).
			for i, v := range dom {
				if v != ag.value {
					buf[i] += wp
				}
			}
		}
	}
	return buf, dom
}

// Posterior returns P(To = d | Ω; w) over the object's domain, computed
// exactly. Objects with no observations return nil.
func (m *Model) Posterior(o data.ObjectID) map[data.ValueID]float64 {
	scores, dom := m.objectScores(o, m.sigmaTable(), nil)
	if len(dom) == 0 {
		return nil
	}
	probs := mathx.Softmax(scores, nil)
	out := make(map[data.ValueID]float64, len(dom))
	for i, v := range dom {
		out[v] = probs[i]
	}
	return out
}

// Result is the output of data fusion: MAP values and posteriors per
// object, plus the estimated source accuracies.
//
// Posteriors are held densely (one slab indexed by the compiled layout)
// and materialized into maps lazily: Posterior and Posteriors return
// ordinary map[data.ValueID]float64 views, but a caller that only reads
// Values never pays for per-object map construction. The slab is a
// snapshot taken at inference time, so the views stay valid if the
// model's weights change afterwards.
type Result struct {
	Values           map[data.ObjectID]data.ValueID
	SourceAccuracies []float64
	// Algorithm records which learner produced the weights
	// ("erm", "em", or "none" for an unfitted model).
	Algorithm string

	// dense is the slab-backed posterior snapshot (exact inference);
	// Gibbs results materialize posteriors eagerly instead. lay is the
	// owning model's compiled layout, needed to decode the slab.
	dense *denseResult
	lay   *layout

	mu         sync.Mutex
	posteriors map[data.ObjectID]map[data.ValueID]float64
	allBuilt   bool
}

// Posterior returns P(To = d | Ω) for object o as a map over its
// domain, or nil when the object has no posterior. The map is built on
// first access and cached; repeated calls return the same map.
func (r *Result) Posterior(o data.ObjectID) map[data.ValueID]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if post, ok := r.posteriors[o]; ok {
		return post
	}
	if r.allBuilt || r.dense == nil || int(o) < 0 || int(o) >= len(r.dense.state) {
		return nil
	}
	post := r.materialize(o)
	if post != nil {
		if r.posteriors == nil {
			r.posteriors = make(map[data.ObjectID]map[data.ValueID]float64)
		}
		r.posteriors[o] = post
	}
	return post
}

// Posteriors returns the full per-object posterior view, materializing
// any maps not yet built. Callers that need only a few objects should
// prefer Posterior.
func (r *Result) Posteriors() map[data.ObjectID]map[data.ValueID]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.allBuilt {
		return r.posteriors
	}
	if r.posteriors == nil {
		n := 0
		if r.dense != nil {
			n = len(r.dense.state)
		}
		r.posteriors = make(map[data.ObjectID]map[data.ValueID]float64, n)
	}
	if r.dense != nil {
		for o := range r.dense.state {
			oid := data.ObjectID(o)
			if _, ok := r.posteriors[oid]; ok {
				continue
			}
			if post := r.materialize(oid); post != nil {
				r.posteriors[oid] = post
			}
		}
	}
	r.allBuilt = true
	return r.posteriors
}

// materialize builds object o's posterior map from the dense snapshot;
// callers hold r.mu.
func (r *Result) materialize(o data.ObjectID) map[data.ValueID]float64 {
	switch r.dense.state[o] {
	case objKnown:
		return map[data.ValueID]float64{r.dense.best[o]: 1}
	case objComputed:
		dom := r.lay.dom[o]
		seg := r.dense.probs[r.lay.scoreStart[o]:r.lay.scoreStart[o+1]]
		post := make(map[data.ValueID]float64, len(dom))
		for i, v := range dom {
			post[v] = seg[i]
		}
		return post
	}
	return nil
}

// Infer runs posterior inference for every object under the current
// weights, using exact computation or Gibbs sampling per Options. Known
// labels (may be nil) are clamped as evidence: their value is returned
// verbatim, matching the paper's semi-supervised treatment.
func (m *Model) Infer(known data.TruthMap) (*Result, error) {
	switch m.opts.Inference {
	case Exact:
		return m.inferExact(known), nil
	case Gibbs:
		return m.inferGibbs(known)
	default:
		return nil, fmt.Errorf("core: unknown inference kind %d", m.opts.Inference)
	}
}

// Dense-path object states; see denseResult.
const (
	objEmpty    uint8 = iota // no observations and no label: no output
	objComputed              // posterior computed into the slab
	objKnown                 // label clamped: point mass on best
)

// denseResult is the allocation-light internal form of exact inference:
// object o's posterior over lay.dom[o] occupies
// probs[lay.scoreStart[o]:lay.scoreStart[o+1]] in one shared slab, and
// best holds its MAP value. Internal consumers (the EM E-step feed and
// Calibrate's agreement counting) read the slab directly through the
// compiled observation indices; only the public Result API materializes
// maps.
type denseResult struct {
	probs []float64
	state []uint8
	best  []data.ValueID
}

// inferDense computes exact posteriors for every object into a dense
// slab. Per-object scores are written straight into each object's
// index-owned slab segment and softmaxed in place, so the scoring loop
// performs no per-object allocation and the result is bit-identical for
// any worker count.
func (m *Model) inferDense(known data.TruthMap) *denseResult {
	nObj := m.ds.NumObjects()
	sg := m.sigmaTable()
	dr := &denseResult{
		probs: make([]float64, m.lay.scoreStart[nObj]),
		state: make([]uint8, nObj),
		best:  make([]data.ValueID, nObj),
	}
	parallel.Do(nObj, m.workers(), func(ch parallel.Chunk) {
		for o := ch.Lo; o < ch.Hi; o++ {
			oid := data.ObjectID(o)
			if v, ok := known[oid]; ok {
				dr.state[o] = objKnown
				dr.best[o] = v
				continue
			}
			seg := dr.probs[m.lay.scoreStart[o]:m.lay.scoreStart[o+1]]
			scores, dom := m.objectScores(oid, sg, seg)
			if len(dom) == 0 {
				continue
			}
			probs := mathx.Softmax(scores, scores)
			best, bestP := dom[0], probs[0]
			for i, v := range dom {
				if probs[i] > bestP {
					best, bestP = v, probs[i]
				}
			}
			dr.state[o] = objComputed
			dr.best[o] = best
		}
	})
	return dr
}

func (m *Model) inferExact(known data.TruthMap) *Result {
	nObj := m.ds.NumObjects()
	res := &Result{
		Values:           make(map[data.ObjectID]data.ValueID, nObj),
		SourceAccuracies: m.SourceAccuracies(),
	}
	dr := m.inferDense(known)
	for o := 0; o < nObj; o++ {
		if dr.state[o] != objEmpty {
			res.Values[data.ObjectID(o)] = dr.best[o]
		}
	}
	res.dense = dr
	res.lay = &m.lay
	return res
}

// workers resolves the effective worker count for the parallel paths.
func (m *Model) workers() int { return parallel.Resolve(m.opts.Workers) }

// optimCfg returns the SGD configuration with the model's parallelism
// knob inherited when the optimizer's own Workers is unset.
func (m *Model) optimCfg() optim.Config {
	cfg := m.opts.Optim
	if cfg.Workers == 0 {
		cfg.Workers = m.opts.Workers
	}
	return cfg
}

// inferGibbs compiles the current model into a factor graph and runs
// the sampler, the execution path the paper uses via DeepDive. The
// compiled graph is fully factorized (every factor is unary), so the
// sampler's independent-chain fan-out applies unless the effective
// Gibbs Workers setting is exactly 1 (the legacy sweep chain); the
// sampled marginals depend only on the config, never on the host's
// core count.
func (m *Model) inferGibbs(known data.TruthMap) (*Result, error) {
	var g factor.Graph
	sg := m.sigmaTable()
	varOf := make([]int, m.ds.NumObjects())
	domains := make([][]data.ValueID, m.ds.NumObjects())
	for o := 0; o < m.ds.NumObjects(); o++ {
		oid := data.ObjectID(o)
		dom := m.lay.dom[o]
		if len(dom) == 0 {
			varOf[o] = -1
			continue
		}
		domains[o] = dom
		varOf[o] = g.AddVariable(len(dom))
		if m.opts.OpenWorld {
			f := factor.Factor{
				Vars:      []int{varOf[o]},
				Weight:    m.opts.OpenWorldBias,
				Potential: factor.IndicatorEquals(len(dom) - 1),
			}
			if err := g.AddFactor(f); err != nil {
				return nil, err
			}
		}
		if v, ok := known[oid]; ok {
			if i := localIndex(dom, v); i >= 0 {
				if err := g.SetEvidence(varOf[o], i); err != nil {
					return nil, err
				}
			}
		}
		classBase := m.classOfObject(oid) * m.numSources
		base := m.lay.obsBase[o]
		for i, ob := range m.ds.ObjectObservations(oid) {
			f := factor.Factor{
				Vars:      []int{varOf[o]},
				Weight:    sg[classBase+int(ob.Source)],
				Potential: factor.IndicatorEquals(int(m.lay.obsLocal[base+i])),
			}
			if err := g.AddFactor(f); err != nil {
				return nil, err
			}
		}
		if m.opts.CopyFeatures {
			for _, ag := range m.objCopyAgree[oid] {
				wp := m.w[m.featBase()+m.numFeatures+ag.pair]
				f := factor.Factor{
					Vars:      []int{varOf[o]},
					Weight:    wp,
					Potential: factor.IndicatorNotEquals(localIndex(dom, ag.value)),
				}
				if err := g.AddFactor(f); err != nil {
					return nil, err
				}
			}
		}
	}
	cfg := m.opts.Gibbs
	if cfg.Workers == 0 {
		cfg.Workers = m.opts.Workers
	}
	marg, err := g.Gibbs(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Values:           make(map[data.ObjectID]data.ValueID, m.ds.NumObjects()),
		SourceAccuracies: m.SourceAccuracies(),
		// Sampling is the cold path; its posteriors materialize eagerly.
		posteriors: make(map[data.ObjectID]map[data.ValueID]float64, m.ds.NumObjects()),
		allBuilt:   true,
	}
	for o := 0; o < m.ds.NumObjects(); o++ {
		oid := data.ObjectID(o)
		if varOf[o] < 0 {
			if v, ok := known[oid]; ok {
				res.Values[oid] = v
				res.posteriors[oid] = map[data.ValueID]float64{v: 1}
			}
			continue
		}
		dom := domains[o]
		ps := marg[varOf[o]]
		post := make(map[data.ValueID]float64, len(dom))
		best, bestP := dom[0], ps[0]
		for i, v := range dom {
			post[v] = ps[i]
			if ps[i] > bestP {
				best, bestP = v, ps[i]
			}
		}
		if v, ok := known[oid]; ok {
			best = v
		}
		res.Values[oid] = best
		res.posteriors[oid] = post
	}
	return res, nil
}
