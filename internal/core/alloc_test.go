package core

import (
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/optim"
)

// The allocation-regression tier: the compiled hot-path layout exists
// so the per-object inner loops do no allocation in steady state (after
// the scratch buffers have grown to the largest domain). A regression
// here means a map, domain copy, or closure crept back into the loops.

func allocModel(t *testing.T, opts Options) *Model {
	t.Helper()
	inst := goldenInstance(t)
	m, err := Compile(inst.Dataset, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitEM(nil); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestObjectScoresZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"default", DefaultOptions()},
		{"openworld", func() Options {
			o := DefaultOptions()
			o.OpenWorld = true
			o.OpenWorldBias = -1
			return o
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := allocModel(t, tc.opts)
			sg := m.sigmaTable()
			sc := &scratch{}
			nObj := m.ds.NumObjects()
			scoreAll := func() {
				for o := 0; o < nObj; o++ {
					scores, _ := m.objectScores(data.ObjectID(o), sg, sc.scores)
					sc.scores = scores
				}
			}
			scoreAll() // warm the scratch to the largest domain
			if allocs := testing.AllocsPerRun(20, scoreAll); allocs != 0 {
				t.Errorf("objectScores allocates %.1f times per full pass, want 0", allocs)
			}
		})
	}
}

func TestAccumGradientZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	m := allocModel(t, DefaultOptions())
	nObj := m.ds.NumObjects()
	g := optim.NewSparse()
	sc := &scratch{}
	tbl := make([]float64, m.numSources*m.numClasses)
	m.fillSigma(m.w, tbl)
	// q posteriors for the EM-residual variant, precomputed outside the
	// measured loop the way FitEM holds them across the M-step.
	q := make([][]float64, nObj)
	for o := 0; o < nObj; o++ {
		scores, _ := m.objectScores(data.ObjectID(o), tbl, nil)
		q[o] = scores
	}
	for _, tc := range []struct {
		name string
		run  func()
	}{
		// Sequential SGD path: σ recomputed from live weights per step.
		{"erm-per-step", func() {
			for o := 0; o < nObj; o++ {
				dom := m.lay.dom[o]
				if len(dom) == 0 {
					continue
				}
				g.Reset()
				m.accumGradient(m.w, g, data.ObjectID(o), dom[0], nil, nil, sc)
			}
		}},
		// Minibatch path: σ read from the frozen-batch table.
		{"em-sigma-table", func() {
			for o := 0; o < nObj; o++ {
				g.Reset()
				m.accumGradient(m.w, g, data.ObjectID(o), data.None, q[o], tbl, sc)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.run() // warm scratch and the sparse accumulator's index map
			if allocs := testing.AllocsPerRun(20, tc.run); allocs != 0 {
				t.Errorf("accumGradient allocates %.1f times per full pass, want 0", allocs)
			}
		})
	}
}
