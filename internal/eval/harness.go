package eval

import (
	"fmt"
	"sync"
	"time"

	"slimfast/internal/baselines"
	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/parallel"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

// Trial is one (method, instance, training-fraction, seed) run with its
// measured quality and cost.
type Trial struct {
	Method      string
	Dataset     string
	TrainFrac   float64
	Seed        int64
	ObjAccuracy float64
	// SourceError is the paper's weighted absolute accuracy error;
	// NaN-free: -1 when the method has no probabilistic accuracies.
	SourceError float64
	Runtime     time.Duration
	// Decision is "erm"/"em" for the auto variant, "" otherwise.
	Decision string
}

// RunTrial splits the instance's gold labels (trainFrac into training,
// the rest into test), runs the method, and scores it. The split seed
// is derived from the base seed, the method and the fraction so that
// all methods at the same (fraction, seed) see the same split — the
// paper's protocol.
func RunTrial(m baselines.Method, inst *synth.Instance, trainFrac float64, seed int64) (Trial, error) {
	splitSeed := randx.DeriveSeed(seed, fmt.Sprintf("split:%v", trainFrac))
	train, test := data.Split(inst.Gold, trainFrac, randx.New(splitSeed))
	t := Trial{
		Method:      m.Name(),
		Dataset:     inst.Dataset.Name,
		TrainFrac:   trainFrac,
		Seed:        seed,
		SourceError: -1,
	}
	start := time.Now()
	out, err := m.Fuse(inst.Dataset, train)
	t.Runtime = time.Since(start)
	if err != nil {
		return t, fmt.Errorf("eval: %s on %s: %w", m.Name(), inst.Dataset.Name, err)
	}
	t.ObjAccuracy = metrics.ObjectAccuracy(out.Values, test)
	if m.HasProbabilisticAccuracies() && out.SourceAccuracies != nil {
		trueAcc := inst.Dataset.TrueSourceAccuracies(inst.Gold)
		t.SourceError = metrics.SourceAccuracyError(inst.Dataset, out.SourceAccuracies, trueAcc)
	}
	if sf, ok := m.(*SLiMFast); ok && sf.mode == ModeAuto {
		t.Decision = sf.LastDecision.Algorithm.String()
	}
	return t, nil
}

// Cloner is implemented by methods whose Fuse mutates receiver state
// (e.g. the SLiMFast variants record timing and decision diagnostics).
// RunSeeds hands each concurrent trial its own clone; methods without
// a Clone are assumed to have a read-only Fuse (all baselines are
// plain configuration structs) and are shared across trials.
type Cloner interface {
	Clone() baselines.Method
}

// cloneFor returns an independent copy of m for a concurrent trial
// when the method requires one.
func cloneFor(m baselines.Method) baselines.Method {
	if c, ok := m.(Cloner); ok {
		return c.Clone()
	}
	return m
}

// RunSeeds repeats RunTrial once per seed, fanning the independent
// trials over up to workers goroutines (workers <= 0 means
// runtime.GOMAXPROCS(0)), and returns the trials in seed order. The
// trial quality numbers are deterministic: every seed's split and run
// depend only on the seed, never on scheduling. Seed 0 runs on m
// itself so callers can read post-run diagnostics from it; later seeds
// run on clones when m implements Cloner. The first error in seed
// order is returned alongside its trial.
func RunSeeds(m baselines.Method, inst *synth.Instance, trainFrac float64, seeds []int64, workers int) ([]Trial, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("eval: no seeds")
	}
	// Clone up front, before any trial can mutate m: cloning inside the
	// parallel region would read m's diagnostic fields while the seed-0
	// trial writes them.
	methods := make([]baselines.Method, len(seeds))
	for i := range methods {
		if i == 0 {
			methods[i] = m
			continue
		}
		methods[i] = cloneFor(m)
	}
	trials := make([]Trial, len(seeds))
	errs := make([]error, len(seeds))
	parallel.For(len(seeds), workers, func(i int) {
		trials[i], errs[i] = RunTrial(methods[i], inst, trainFrac, seeds[i])
	})
	for i, err := range errs {
		if err != nil {
			return trials, fmt.Errorf("seed %d: %w", seeds[i], err)
		}
	}
	return trials, nil
}

// RunAveraged repeats RunTrial over the seeds — concurrently, up to
// GOMAXPROCS trials at a time — and returns the mean trial (accuracy,
// source error and runtime averaged; the decision of the first seed is
// kept).
func RunAveraged(m baselines.Method, inst *synth.Instance, trainFrac float64, seeds []int64) (Trial, error) {
	if len(seeds) == 0 {
		return Trial{}, fmt.Errorf("eval: no seeds")
	}
	trials, err := RunSeeds(m, inst, trainFrac, seeds, 0)
	if err != nil {
		return trials[0], err
	}
	return averageTrials(trials), nil
}

// averageTrials folds per-seed trials into the mean trial, keeping the
// first seed's identity and decision.
func averageTrials(trials []Trial) Trial {
	var accs, errVals []float64
	var total time.Duration
	first := trials[0]
	for _, tr := range trials {
		accs = append(accs, tr.ObjAccuracy)
		if tr.SourceError >= 0 {
			errVals = append(errVals, tr.SourceError)
		}
		total += tr.Runtime
	}
	first.ObjAccuracy = metrics.Mean(accs)
	if len(errVals) > 0 {
		first.SourceError = metrics.Mean(errVals)
	}
	first.Runtime = total / time.Duration(len(trials))
	return first
}

// Config controls how heavy the experiment runs are. Quick mode shrinks
// the synthetic instances and seed counts so the full suite finishes in
// test/bench time; Full mode matches the paper's scale.
type Config struct {
	// Seeds per configuration (the paper averages 5 random splits).
	Seeds []int64
	// Quick shrinks Example 6's 1000×1000 instances and skips the
	// slowest dataset/TD combinations.
	Quick bool
	// DataSeed seeds dataset generation.
	DataSeed int64
}

// DefaultConfig is used by cmd/experiments (3 seeds keeps the full
// suite minutes-scale while averaging out split noise).
func DefaultConfig() Config {
	return Config{Seeds: []int64{1, 2, 3}, DataSeed: 42}
}

// QuickConfig is used by tests and benchmarks.
func QuickConfig() Config {
	return Config{Seeds: []int64{1}, Quick: true, DataSeed: 42}
}

// TrainFractions are the paper's training-data percentages (of
// objects) for Tables 2–5.
func (c Config) TrainFractions() []float64 {
	if c.Quick {
		return []float64{0.01, 0.10}
	}
	return []float64{0.001, 0.01, 0.05, 0.10, 0.20}
}

// DatasetNames returns the evaluation datasets, honouring Quick mode.
func (c Config) DatasetNames() []string {
	if c.Quick {
		return []string{"stocks", "crowd"}
	}
	return synth.AllNames()
}

// datasetCache memoizes calibrated datasets across experiments within
// one process: instances are immutable after generation, so sharing is
// safe, and regenerating Genomics (16k features) per table is wasteful.
var datasetCache sync.Map // key string -> *synth.Instance

// LoadDataset builds (and caches) a calibrated dataset by name.
func (c Config) LoadDataset(name string) (*synth.Instance, error) {
	key := fmt.Sprintf("%s@%d", name, c.DataSeed)
	if v, ok := datasetCache.Load(key); ok {
		return v.(*synth.Instance), nil
	}
	inst, err := synth.NamedDataset(name, c.DataSeed)
	if err != nil {
		return nil, err
	}
	datasetCache.Store(key, inst)
	return inst, nil
}

// Example6Instance builds the Figure 4 synthetic instance at the given
// accuracy and density, honouring Quick mode's smaller scale.
func (c Config) Example6Instance(avgAcc, density float64, seed int64) (*synth.Instance, error) {
	if !c.Quick {
		return synth.Example6(avgAcc, density, seed)
	}
	// Quick mode: 200×200 with density scaled ×5 to preserve the
	// expected observations per object.
	return synth.Generate(synth.Config{
		Name: "example6-quick", Sources: 200, Objects: 200, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: density * 5,
		MeanAccuracy: avgAcc, AccuracySD: 0.15,
		MinAccuracy: 0.3, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: seed,
	})
}
