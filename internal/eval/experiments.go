package eval

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"slimfast/internal/baselines"
	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/parallel"
	"slimfast/internal/randx"
)

// Experiment regenerates one table or figure from the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: dataset statistics", RunTable1},
		{"fig4a", "Figure 4(a): EM vs ERM, varying training data", RunFigure4a},
		{"fig4b", "Figure 4(b): EM vs ERM, varying density", RunFigure4b},
		{"fig4c", "Figure 4(c): EM vs ERM, varying source accuracy", RunFigure4c},
		{"fig5", "Figure 5: ERM/EM tradeoff space", RunFigure5},
		{"table2", "Table 2: object-value accuracy", RunTable2},
		{"table3", "Table 3: source-accuracy error", RunTable3},
		{"table4", "Table 4: optimizer evaluation", RunTable4},
		{"table5", "Table 5: wall-clock runtimes", RunTable5},
		{"table6", "Table 6: end-to-end vs learning-only runtime", RunTable6},
		{"fig6", "Figure 6: Lasso path (Stocks)", RunFigure6},
		{"fig7", "Figure 7: unseen-source accuracy estimation", RunFigure7},
		{"fig8", "Figure 8: copying sources (Demos)", RunFigure8},
		{"fig9", "Figure 9: Lasso path (Crowd)", RunFigure9},
		{"theory", "Theory checks: Theorems 1-3 scaling shapes", RunTheory},
		{"ablations", "Ablations: design-choice quality impact (DESIGN.md §5)", RunAblations},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// tableCell is one precomputed (dataset, fraction, method) entry of a
// paper table. The heavy tables compute their cells concurrently and
// render them in paper order afterwards, so the output is byte-for-byte
// deterministic while the wall-clock scales with cores.
type tableCell struct {
	dataset string
	frac    float64
	method  baselines.Method
	trial   Trial
	err     error
}

// computeTableCells fans the (dataset × fraction × method) grid out
// over up to workers goroutines (<= 0 means GOMAXPROCS; pass 1 for
// tables that report wall-clock, where concurrent neighbors would
// inflate the timings). Dataset loading happens up front on one
// goroutine (generation is cached and memory-heavy); each cell then
// runs its trials on a fresh method instance, replicating seeds
// serially — the cell grid is the parallel axis, so nesting a second
// fan-out inside each cell would only multiply peak memory. Cells come
// back in grid order: dataset-major, then fraction, then method.
func computeTableCells(cfg Config, names []string, fracs []float64, methods func() []baselines.Method, workers int) ([]tableCell, error) {
	var cells []tableCell
	for _, name := range names {
		if _, err := cfg.LoadDataset(name); err != nil {
			return nil, err
		}
		for _, frac := range fracs {
			for _, m := range methods() {
				cells = append(cells, tableCell{dataset: name, frac: frac, method: m})
			}
		}
	}
	parallel.For(len(cells), workers, func(i int) {
		c := &cells[i]
		inst, err := cfg.LoadDataset(c.dataset) // cache hit
		if err != nil {
			c.err = err
			return
		}
		trials, err := RunSeeds(c.method, inst, c.frac, cfg.Seeds, 1)
		if err != nil {
			c.err = err
			return
		}
		c.trial = averageTrials(trials)
	})
	return cells, nil
}

// RunTable1 prints Table 1: the statistics of the four (simulated)
// datasets.
func RunTable1(w io.Writer, cfg Config) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Parameter\tStocks\tDemos\tCrowd\tGenomics")
	var stats []data.Stats
	names := []string{"stocks", "demos", "crowd", "genomics"}
	if cfg.Quick {
		names = []string{"stocks", "crowd"}
		fmt.Fprintln(w, "(quick mode: stocks and crowd only)")
	}
	for _, n := range names {
		inst, err := cfg.LoadDataset(n)
		if err != nil {
			return err
		}
		stats = append(stats, data.ComputeStats(inst.Dataset, inst.Gold))
	}
	row := func(label string, f func(s data.Stats) string) {
		fmt.Fprintf(tw, "%s", label)
		for _, s := range stats {
			fmt.Fprintf(tw, "\t%s", f(s))
		}
		fmt.Fprintln(tw)
	}
	row("# Sources", func(s data.Stats) string { return fmt.Sprint(s.Sources) })
	row("# Objects", func(s data.Stats) string { return fmt.Sprint(s.Objects) })
	row("Available GrdTruth", func(s data.Stats) string { return fmt.Sprintf("%.0f%%", s.GroundTruthAvail*100) })
	row("# Observations", func(s data.Stats) string { return fmt.Sprint(s.Observations) })
	row("# Feature Values", func(s data.Stats) string { return fmt.Sprint(s.FeatureValues) })
	row("Avg. Src. Acc.", func(s data.Stats) string { return fmt.Sprintf("%.3f", s.AvgSrcAccuracy) })
	row("Avg. Obsrvs per Obj.", func(s data.Stats) string { return fmt.Sprintf("%.2f", s.AvgObsPerObject) })
	row("Avg. Obsrvs per Src.", func(s data.Stats) string { return fmt.Sprintf("%.2f", s.AvgObsPerSource) })
	row("Density", func(s data.Stats) string { return fmt.Sprintf("%.4f", s.Density) })
	return tw.Flush()
}

// RunTable2 prints Table 2 Panel A (object-value accuracy per method,
// dataset and training fraction) and Panel B (average relative
// difference from SLiMFast).
func RunTable2(w io.Writer, cfg Config) error {
	methods := Table2Methods()
	fracs := cfg.TrainFractions()
	cells, err := computeTableCells(cfg, cfg.DatasetNames(), fracs, Table2Methods, 0)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprint(tw, "Panel A\nDataset\tTD(%)")
	for _, m := range methods {
		fmt.Fprintf(tw, "\t%s", m.Name())
	}
	fmt.Fprintln(tw)

	// accByMethod[method][i-th config] for Panel B.
	accByMethod := map[string][]float64{}
	idx := 0
	for _, name := range cfg.DatasetNames() {
		for _, frac := range fracs {
			fmt.Fprintf(tw, "%s\t%.1f", name, frac*100)
			for range methods {
				c := cells[idx]
				idx++
				if c.err != nil {
					// Counts cannot run without ground truth; mark
					// unavailable cells instead of failing the table.
					fmt.Fprint(tw, "\t-")
					continue
				}
				fmt.Fprintf(tw, "\t%.3f", c.trial.ObjAccuracy)
				accByMethod[c.method.Name()] = append(accByMethod[c.method.Name()], c.trial.ObjAccuracy)
			}
			fmt.Fprintln(tw)
		}
	}
	fmt.Fprintln(tw, "\nPanel B: average accuracy and relative difference vs SLiMFast (%)")
	fmt.Fprintln(tw, "Method\tAvgAcc\tRelDiff(%)")
	slim := metrics.Mean(accByMethod["SLiMFast"])
	for _, m := range methods {
		avg := metrics.Mean(accByMethod[m.Name()])
		fmt.Fprintf(tw, "%s\t%.3f\t%+.2f\n", m.Name(), avg, metrics.RelativeDifference(avg, slim))
	}
	return tw.Flush()
}

// RunTable3 prints Table 3: weighted source-accuracy estimation error
// for the probabilistic methods on Stocks, Demos and Crowd (the paper
// excludes Genomics: its sources have too few observations for reliable
// true accuracies).
func RunTable3(w io.Writer, cfg Config) error {
	methods := Table3Methods()
	names := []string{"stocks", "demos", "crowd"}
	if cfg.Quick {
		names = []string{"stocks", "crowd"}
	}
	cells, err := computeTableCells(cfg, names, cfg.TrainFractions(), Table3Methods, 0)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprint(tw, "Dataset\tTD(%)")
	for _, m := range methods {
		fmt.Fprintf(tw, "\t%s", m.Name())
	}
	fmt.Fprintln(tw)
	idx := 0
	for _, name := range names {
		for _, frac := range cfg.TrainFractions() {
			fmt.Fprintf(tw, "%s\t%.1f", name, frac*100)
			for range methods {
				c := cells[idx]
				idx++
				if c.err != nil || c.trial.SourceError < 0 {
					fmt.Fprint(tw, "\t-")
					continue
				}
				fmt.Fprintf(tw, "\t%.3f", c.trial.SourceError)
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}

// RunTable4 prints Table 4: SLiMFast-ERM vs SLiMFast-EM accuracy, the
// optimizer's decision, and whether the decision matched the winner.
func RunTable4(w io.Writer, cfg Config) error {
	type row struct {
		dataset  string
		frac     float64
		erm, em  Trial
		decision core.Decision
		err      error
	}
	var rows []row
	for _, name := range cfg.DatasetNames() {
		if _, err := cfg.LoadDataset(name); err != nil {
			return err
		}
		for _, frac := range cfg.TrainFractions() {
			rows = append(rows, row{dataset: name, frac: frac})
		}
	}
	parallel.For(len(rows), 0, func(i int) {
		r := &rows[i]
		inst, err := cfg.LoadDataset(r.dataset) // cache hit
		if err != nil {
			r.err = err
			return
		}
		// Rows are the parallel axis; replicate seeds serially inside.
		avg := func(m baselines.Method) (Trial, error) {
			trials, err := RunSeeds(m, inst, r.frac, cfg.Seeds, 1)
			if err != nil {
				return Trial{}, err
			}
			return averageTrials(trials), nil
		}
		if r.erm, r.err = avg(NewSLiMFastERM()); r.err != nil {
			return
		}
		if r.em, r.err = avg(NewSLiMFastEM()); r.err != nil {
			return
		}
		// The optimizer's decision on the first seed's split.
		splitSeed := randx.DeriveSeed(cfg.Seeds[0], fmt.Sprintf("split:%v", r.frac))
		train, _ := data.Split(inst.Gold, r.frac, randx.New(splitSeed))
		r.decision = core.Decide(inst.Dataset, train, core.DefaultOptimizerOptions())
	})
	tw := newTab(w)
	fmt.Fprintln(tw, "Dataset\tTD(%)\tDecision\tCorrect\tDiff(%)\tSLiMFast-ERM\tSLiMFast-EM")
	correctCount, total := 0, 0
	for _, r := range rows {
		if r.err != nil {
			return r.err
		}
		winner := core.AlgorithmERM
		if r.em.ObjAccuracy > r.erm.ObjAccuracy {
			winner = core.AlgorithmEM
		}
		diff := 100 * absFloat(r.erm.ObjAccuracy-r.em.ObjAccuracy)
		correct := r.decision.Algorithm == winner || diff < 1.0 // ties count as correct
		if correct {
			correctCount++
		}
		total++
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%v\t%.1f\t%.3f\t%.3f\n",
			r.dataset, r.frac*100, r.decision.Algorithm, correct, diff,
			r.erm.ObjAccuracy, r.em.ObjAccuracy)
	}
	fmt.Fprintf(tw, "Optimizer correct: %d/%d\n", correctCount, total)
	return tw.Flush()
}

// RunTable5 prints Table 5: mean wall-clock runtimes per method,
// dataset and training fraction.
func RunTable5(w io.Writer, cfg Config) error {
	methods := Table2Methods()
	tw := newTab(w)
	fmt.Fprint(tw, "Dataset\tTD(%)")
	for _, m := range methods {
		fmt.Fprintf(tw, "\t%s", m.Name())
	}
	fmt.Fprintln(tw, "\t(seconds)")
	// Table 5 reports wall-clock per method: time the cells one at a
	// time so concurrent neighbors don't inflate the comparison.
	cells, err := computeTableCells(cfg, cfg.DatasetNames(), cfg.TrainFractions(), Table2Methods, 1)
	if err != nil {
		return err
	}
	idx := 0
	for _, name := range cfg.DatasetNames() {
		for _, frac := range cfg.TrainFractions() {
			fmt.Fprintf(tw, "%s\t%.1f", name, frac*100)
			for range methods {
				c := cells[idx]
				idx++
				if c.err != nil {
					fmt.Fprint(tw, "\t-")
					continue
				}
				fmt.Fprintf(tw, "\t%.3f", c.trial.Runtime.Seconds())
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}

// RunTable6 prints Table 6: end-to-end versus learning-and-inference-
// only runtime for the DeepDive-style methods on Genomics (compile
// time is the analogue of DeepDive's factor-graph grounding).
func RunTable6(w io.Writer, cfg Config) error {
	name := "genomics"
	if cfg.Quick {
		name = "crowd"
		fmt.Fprintln(w, "(quick mode: crowd instead of genomics)")
	}
	inst, err := cfg.LoadDataset(name)
	if err != nil {
		return err
	}
	variants := []*SLiMFast{NewSLiMFast(), NewSourcesERM(), NewSourcesEM()}
	tw := newTab(w)
	fmt.Fprintln(tw, "TD(%)\tMethod\tEnd-to-end(s)\tLearn+Infer(s)\tCompile(s)")
	for _, frac := range cfg.TrainFractions() {
		for _, v := range variants {
			tr, err := RunTrial(v, inst, frac, cfg.Seeds[0])
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%.1f\t%s\t%.3f\t%.3f\t%.3f\n",
				frac*100, v.Name(), tr.Runtime.Seconds(),
				v.LastLearnTime.Seconds(), v.LastCompileTime.Seconds())
		}
	}
	return tw.Flush()
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sortedKeys returns map keys in sorted order (helper for deterministic
// rendering).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var _ = sortedKeys[map[string]int] // referenced by figures.go helpers

// runWithMethod is a convenience for experiments needing one method on
// one dataset at one fraction.
func runWithMethod(m baselines.Method, cfg Config, dataset string, frac float64) (Trial, error) {
	inst, err := cfg.LoadDataset(dataset)
	if err != nil {
		return Trial{}, err
	}
	return RunAveraged(m, inst, frac, cfg.Seeds)
}

var _ = runWithMethod // used by tests
