package eval

import (
	"fmt"
	"io"

	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

// RunAblations measures the quality impact of the design choices listed
// in DESIGN.md §5 (their runtime impact lives in bench_test.go):
//
//   - exact closed-form inference vs Gibbs sampling,
//   - the post-EM calibration pass on vs off,
//   - the paper's closed-form average-accuracy estimator vs the
//     overlap-weighted default, per dataset,
//   - L2 vs L1 regularization for the feature-heavy ERM fit.
func RunAblations(w io.Writer, cfg Config) error {
	inst, err := synth.Generate(synth.Config{
		Name: "ablation", Sources: 70, Objects: 700, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.12,
		MeanAccuracy: 0.62, AccuracySD: 0.15, MinAccuracy: 0.35, MaxAccuracy: 0.95,
		WrongBias: 0.5,
		Features: []synth.FeatureGroup{
			{Name: "sig", Cardinality: 8, Informative: true, WeightScale: 2.0},
			{Name: "junk", Cardinality: 8, Informative: false},
		},
		EnsureTruthObserved: true,
		Seed:                cfg.DataSeed,
	})
	if err != nil {
		return err
	}
	train, test := data.Split(inst.Gold, 0.10, randx.New(cfg.Seeds[0]))
	trueAcc := inst.Dataset.TrueSourceAccuracies(inst.Gold)

	fitEval := func(opts core.Options, alg core.Algorithm) (objAcc, srcErr float64, err error) {
		m, err := core.Compile(inst.Dataset, opts)
		if err != nil {
			return 0, 0, err
		}
		res, err := m.Fuse(alg, train)
		if err != nil {
			return 0, 0, err
		}
		return metrics.ObjectAccuracy(res.Values, test),
			metrics.SourceAccuracyError(inst.Dataset, res.SourceAccuracies, trueAcc), nil
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "Ablation\tVariant\tObjAcc\tSrcErr")

	// Inference: exact vs Gibbs.
	exactOpts := core.DefaultOptions()
	a1, e1, err := fitEval(exactOpts, core.AlgorithmERM)
	if err != nil {
		return err
	}
	gibbsOpts := core.DefaultOptions()
	gibbsOpts.Inference = core.Gibbs
	if cfg.Quick {
		gibbsOpts.Gibbs.Samples = 100
	}
	a2, e2, err := fitEval(gibbsOpts, core.AlgorithmERM)
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "inference\texact\t%.3f\t%.3f\n", a1, e1)
	fmt.Fprintf(tw, "inference\tgibbs\t%.3f\t%.3f\n", a2, e2)

	// EM calibration on vs off.
	calOn := core.DefaultOptions()
	a3, e3, err := fitEval(calOn, core.AlgorithmEM)
	if err != nil {
		return err
	}
	calOff := core.DefaultOptions()
	calOff.EMCalibrate = false
	a4, e4, err := fitEval(calOff, core.AlgorithmEM)
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "em-calibration\ton\t%.3f\t%.3f\n", a3, e3)
	fmt.Fprintf(tw, "em-calibration\toff\t%.3f\t%.3f\n", a4, e4)

	// Regularization: L2 vs L1.
	l2 := core.DefaultOptions()
	a5, e5, err := fitEval(l2, core.AlgorithmERM)
	if err != nil {
		return err
	}
	l1 := core.DefaultOptions()
	l1.Optim.L2 = 0
	l1.Optim.L1 = 1e-3
	a6, e6, err := fitEval(l1, core.AlgorithmERM)
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "regularization\tl2\t%.3f\t%.3f\n", a5, e5)
	fmt.Fprintf(tw, "regularization\tl1\t%.3f\t%.3f\n", a6, e6)
	if err := tw.Flush(); err != nil {
		return err
	}

	// Agreement estimator per dataset.
	fmt.Fprintln(w, "\nAverage-accuracy estimator (true mean vs estimates):")
	tw = newTab(w)
	fmt.Fprintln(tw, "Dataset\tTrueMean\tPaperClosedForm\tOverlapWeighted")
	for _, name := range cfg.DatasetNames() {
		di, err := cfg.LoadDataset(name)
		if err != nil {
			return err
		}
		trueMean := di.Dataset.AvgSourceAccuracy(di.Gold)
		paper := core.EstimateAverageAccuracy(di.Dataset, false)
		weighted := core.EstimateAverageAccuracy(di.Dataset, true)
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", name, trueMean, paper, weighted)
	}
	return tw.Flush()
}
