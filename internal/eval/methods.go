// Package eval is the experiment harness that regenerates every table
// and figure in the SLiMFast paper's evaluation (Section 5 and the
// appendices). It wraps the SLiMFast variants and the baselines behind
// one Method interface, runs seeded trials over the calibrated dataset
// simulators, and renders the paper-style tables.
package eval

import (
	"time"

	"slimfast/internal/baselines"
	"slimfast/internal/core"
	"slimfast/internal/data"
)

// Mode selects how a SLiMFast variant learns.
type Mode int

const (
	// ModeAuto uses SLiMFast's optimizer to pick ERM or EM (the
	// "SLiMFast" rows of the paper).
	ModeAuto Mode = iota
	// ModeERM always uses empirical risk minimization.
	ModeERM
	// ModeEM always uses expectation maximization.
	ModeEM
)

// SLiMFast adapts a core.Model configuration to the Method interface.
// The zero value is not usable; use the New* constructors.
type SLiMFast struct {
	label     string
	mode      Mode
	opts      core.Options
	optimizer core.OptimizerOptions

	// Diagnostics from the last Fuse call, used by Tables 4–6.
	LastDecision    core.Decision
	LastCompileTime time.Duration
	LastLearnTime   time.Duration
}

// NewSLiMFast returns the full system: domain features plus the
// EM/ERM optimizer (the paper's "SLiMFast" column, τ = 0.1).
func NewSLiMFast() *SLiMFast {
	return &SLiMFast{
		label:     "SLiMFast",
		mode:      ModeAuto,
		opts:      core.DefaultOptions(),
		optimizer: core.DefaultOptimizerOptions(),
	}
}

// NewSLiMFastERM returns SLiMFast-ERM: features, always ERM.
func NewSLiMFastERM() *SLiMFast {
	m := NewSLiMFast()
	m.label = "SLiMFast-ERM"
	m.mode = ModeERM
	return m
}

// NewSLiMFastEM returns SLiMFast-EM: features, always EM.
func NewSLiMFastEM() *SLiMFast {
	m := NewSLiMFast()
	m.label = "SLiMFast-EM"
	m.mode = ModeEM
	return m
}

// NewSourcesERM returns Sources-ERM: the discriminative model without
// domain features, always ERM.
func NewSourcesERM() *SLiMFast {
	m := NewSLiMFast()
	m.label = "S-ERM"
	m.mode = ModeERM
	m.opts.UseFeatures = false
	return m
}

// NewSourcesEM returns Sources-EM: no features, always EM (the
// discriminative analogue of Zhao et al.).
func NewSourcesEM() *SLiMFast {
	m := NewSLiMFast()
	m.label = "S-EM"
	m.mode = ModeEM
	m.opts.UseFeatures = false
	return m
}

// NewSLiMFastCopying returns SLiMFast with the Appendix D copying
// features enabled and domain features disabled, matching Figure 8's
// configuration. It learns with semi-supervised EM: copy weights are
// driven by agreement-on-mistakes, and with the small training
// fractions of Figure 8 the unlabeled posteriors carry most of that
// signal.
func NewSLiMFastCopying(minOverlap int) *SLiMFast {
	m := NewSLiMFast()
	m.label = "SLiMFast-Copy"
	m.mode = ModeEM
	m.opts.UseFeatures = false
	m.opts.CopyFeatures = true
	m.opts.MinCopyOverlap = minOverlap
	return m
}

// WithOptions replaces the model options (for ablations) and returns
// the method for chaining.
func (s *SLiMFast) WithOptions(opts core.Options) *SLiMFast {
	s.opts = opts
	return s
}

// WithOptimizerOptions replaces the EM/ERM-selection options.
func (s *SLiMFast) WithOptimizerOptions(o core.OptimizerOptions) *SLiMFast {
	s.optimizer = o
	return s
}

// WithLabel overrides the display name.
func (s *SLiMFast) WithLabel(label string) *SLiMFast {
	s.label = label
	return s
}

// Options returns a copy of the current model options.
func (s *SLiMFast) Options() core.Options { return s.opts }

// Clone implements Cloner: concurrent trials each get an independent
// copy so the Last* diagnostic fields never race. The options structs
// are value types (the ObjectClasses slice, when set, is shared but
// read-only).
func (s *SLiMFast) Clone() baselines.Method {
	c := *s
	return &c
}

// Name implements Method.
func (s *SLiMFast) Name() string { return s.label }

// HasProbabilisticAccuracies implements Method: all SLiMFast variants
// estimate A_s = logistic(σ_s).
func (s *SLiMFast) HasProbabilisticAccuracies() bool { return true }

// Fuse implements Method.
func (s *SLiMFast) Fuse(ds *data.Dataset, train data.TruthMap) (*baselines.Output, error) {
	t0 := time.Now()
	m, err := core.Compile(ds, s.opts)
	if err != nil {
		return nil, err
	}
	s.LastCompileTime = time.Since(t0)

	t1 := time.Now()
	var res *core.Result
	switch s.mode {
	case ModeAuto:
		var dec core.Decision
		res, dec, err = m.FuseAuto(train, s.optimizer)
		s.LastDecision = dec
	case ModeERM:
		res, err = m.Fuse(core.AlgorithmERM, train)
	case ModeEM:
		res, err = m.Fuse(core.AlgorithmEM, train)
	}
	s.LastLearnTime = time.Since(t1)
	if err != nil {
		return nil, err
	}
	return &baselines.Output{
		Values:           res.Values,
		Posteriors:       res.Posteriors(),
		SourceAccuracies: res.SourceAccuracies,
	}, nil
}

// Model compiles and fits a model outside the Method interface, for
// experiments that need direct access (Figure 7's accuracy prediction,
// Figure 8's copy weights).
func (s *SLiMFast) Model(ds *data.Dataset, train data.TruthMap) (*core.Model, error) {
	m, err := core.Compile(ds, s.opts)
	if err != nil {
		return nil, err
	}
	switch s.mode {
	case ModeAuto:
		dec := core.Decide(ds, train, s.optimizer)
		s.LastDecision = dec
		alg := dec.Algorithm
		if len(train) == 0 {
			alg = core.AlgorithmEM
		}
		if alg == core.AlgorithmERM {
			_, err = m.FitERM(train)
		} else {
			_, err = m.FitEM(train)
		}
	case ModeERM:
		_, err = m.FitERM(train)
	case ModeEM:
		_, err = m.FitEM(train)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Table2Methods returns the seven methods of Table 2 in column order.
func Table2Methods() []baselines.Method {
	return []baselines.Method{
		NewSLiMFast(),
		NewSourcesERM(),
		NewSourcesEM(),
		baselines.NewCounts(),
		baselines.NewACCU(),
		baselines.NewCATD(),
		baselines.NewSSTF(),
	}
}

// Table3Methods returns the five probabilistic methods of Table 3.
func Table3Methods() []baselines.Method {
	return []baselines.Method{
		NewSLiMFast(),
		NewSourcesERM(),
		NewSourcesEM(),
		baselines.NewCounts(),
		baselines.NewACCU(),
	}
}
