package eval

import (
	"testing"

	"slimfast/internal/baselines"
)

// TestRunSeedsDeterministicAcrossWorkers checks the harness half of
// the determinism contract: concurrent trial replication must produce
// the same quality numbers as serial replication, in the same seed
// order.
func TestRunSeedsRejectsEmptySeeds(t *testing.T) {
	inst := quickInstance(t)
	if _, err := RunSeeds(NewSourcesERM(), inst, 0.1, nil, 4); err == nil {
		t.Error("empty seeds should error, not panic downstream averaging")
	}
}

func TestRunSeedsDeterministicAcrossWorkers(t *testing.T) {
	inst := quickInstance(t)
	seeds := []int64{1, 2, 3, 4}
	serial, err := RunSeeds(NewSLiMFastERM(), inst, 0.1, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := RunSeeds(NewSLiMFastERM(), inst, 0.1, seeds, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seeds {
			if par[i].Seed != serial[i].Seed {
				t.Fatalf("workers=%d: trial %d has seed %d, want %d", workers, i, par[i].Seed, serial[i].Seed)
			}
			if par[i].ObjAccuracy != serial[i].ObjAccuracy {
				t.Fatalf("workers=%d seed=%d: accuracy %v vs %v",
					workers, seeds[i], par[i].ObjAccuracy, serial[i].ObjAccuracy)
			}
			if par[i].SourceError != serial[i].SourceError {
				t.Fatalf("workers=%d seed=%d: source error %v vs %v",
					workers, seeds[i], par[i].SourceError, serial[i].SourceError)
			}
		}
	}
}

// TestRunAveragedMatchesManualAverage pins RunAveraged's parallel path
// to the serial per-seed trials it is averaging.
func TestRunAveragedMatchesManualAverage(t *testing.T) {
	inst := quickInstance(t)
	seeds := []int64{5, 6, 7}
	trials, err := RunSeeds(NewSourcesERM(), inst, 0.1, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wantAcc float64
	for _, tr := range trials {
		wantAcc += tr.ObjAccuracy
	}
	wantAcc /= float64(len(seeds))
	avg, err := RunAveraged(NewSourcesERM(), inst, 0.1, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if avg.ObjAccuracy != wantAcc {
		t.Errorf("averaged accuracy %v, want %v", avg.ObjAccuracy, wantAcc)
	}
	if avg.Seed != seeds[0] {
		t.Errorf("averaged trial should keep the first seed, got %d", avg.Seed)
	}
}

// TestSLiMFastClone checks clones are independent: fusing with a clone
// must not touch the original's diagnostics.
func TestSLiMFastClone(t *testing.T) {
	inst := quickInstance(t)
	orig := NewSLiMFast()
	c, ok := interface{}(orig).(Cloner)
	if !ok {
		t.Fatal("SLiMFast must implement Cloner")
	}
	clone := c.Clone().(*SLiMFast)
	if _, err := RunTrial(clone, inst, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if clone.LastLearnTime <= 0 {
		t.Error("clone should record its own diagnostics")
	}
	if orig.LastLearnTime != 0 || orig.LastCompileTime != 0 {
		t.Error("fusing a clone must not mutate the original")
	}
	if clone.Name() != orig.Name() {
		t.Error("clone should keep the label")
	}
}

// TestBaselinesShareSafely documents the no-Clone contract: baseline
// methods are plain configuration structs, so concurrent RunSeeds may
// share them. Run under -race this proves the assumption.
func TestBaselinesShareSafely(t *testing.T) {
	inst := quickInstance(t)
	for _, m := range []baselines.Method{
		baselines.NewCounts(), baselines.NewACCU(), baselines.NewCATD(),
		baselines.NewSSTF(), baselines.MajorityVote{},
	} {
		if _, ok := m.(Cloner); ok {
			continue // clones are used instead of sharing
		}
		if _, err := RunSeeds(m, inst, 0.2, []int64{1, 2, 3, 4}, 4); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
}
