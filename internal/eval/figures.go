package eval

import (
	"fmt"
	"io"
	"math"

	"slimfast/internal/core"
	"slimfast/internal/data"
	"slimfast/internal/lasso"
	"slimfast/internal/metrics"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

// RunFigure4a reproduces Figure 4(a): Sources-EM vs Sources-ERM on the
// Example 6 synthetic instance (avg accuracy 0.7, density 0.01) as the
// training fraction grows.
func RunFigure4a(w io.Writer, cfg Config) error {
	fracs := []float64{0.01, 0.10, 0.20, 0.40, 0.60}
	if cfg.Quick {
		fracs = []float64{0.01, 0.20, 0.60}
	}
	fmt.Fprintln(w, "Avg. Src. Accuracy = 0.7, Density = 0.01")
	fmt.Fprintln(w, "TD(%)\tEM\tERM")
	inst, err := cfg.Example6Instance(0.7, 0.01, cfg.DataSeed)
	if err != nil {
		return err
	}
	for _, frac := range fracs {
		em, err := RunAveraged(NewSourcesEM(), inst, frac, cfg.Seeds)
		if err != nil {
			return err
		}
		erm, err := RunAveraged(NewSourcesERM(), inst, frac, cfg.Seeds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.0f\t%.3f\t%.3f\n", frac*100, em.ObjAccuracy, erm.ObjAccuracy)
	}
	return nil
}

// RunFigure4b reproduces Figure 4(b): varying density with the amount
// of training information fixed at ~400 labeled source observations
// (so the number of labeled objects shrinks as density grows).
func RunFigure4b(w io.Writer, cfg Config) error {
	densities := []float64{0.005, 0.010, 0.015, 0.020}
	if cfg.Quick {
		densities = []float64{0.005, 0.020}
	}
	fmt.Fprintln(w, "Avg. Acc = 0.6, Training Data = 400 source observations")
	fmt.Fprintln(w, "Density\tEM\tERM")
	for i, density := range densities {
		inst, err := cfg.Example6Instance(0.6, density, cfg.DataSeed+int64(i))
		if err != nil {
			return err
		}
		nObj := inst.Dataset.NumObjects()
		obsPerObj := inst.Dataset.AvgObservationsPerObject()
		frac := 400 / obsPerObj / float64(nObj)
		em, err := RunAveraged(NewSourcesEM(), inst, frac, cfg.Seeds)
		if err != nil {
			return err
		}
		erm, err := RunAveraged(NewSourcesERM(), inst, frac, cfg.Seeds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.3f\t%.3f\t%.3f\n", density, em.ObjAccuracy, erm.ObjAccuracy)
	}
	return nil
}

// RunFigure4c reproduces Figure 4(c): varying average source accuracy
// at density 0.005 with training fixed at ~250 source observations
// (5% of objects in the paper's 1000×1000 setup).
func RunFigure4c(w io.Writer, cfg Config) error {
	accs := []float64{0.5, 0.6, 0.7, 0.8}
	if cfg.Quick {
		accs = []float64{0.5, 0.8}
	}
	fmt.Fprintln(w, "Density = 0.005, Training Data = 250 source observations")
	fmt.Fprintln(w, "AvgAcc\tEM\tERM")
	for i, acc := range accs {
		inst, err := cfg.Example6Instance(acc, 0.005, cfg.DataSeed+int64(i))
		if err != nil {
			return err
		}
		nObj := inst.Dataset.NumObjects()
		obsPerObj := inst.Dataset.AvgObservationsPerObject()
		frac := 250 / obsPerObj / float64(nObj)
		em, err := RunAveraged(NewSourcesEM(), inst, frac, cfg.Seeds)
		if err != nil {
			return err
		}
		erm, err := RunAveraged(NewSourcesERM(), inst, frac, cfg.Seeds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.2f\t%.3f\t%.3f\n", acc, em.ObjAccuracy, erm.ObjAccuracy)
	}
	return nil
}

// RunFigure5 prints the ERM/EM tradeoff grid of Figures 2 and 5: for
// each (training data, accuracy, density) cell, which algorithm wins
// empirically and what the optimizer picks.
func RunFigure5(w io.Writer, cfg Config) error {
	type level struct {
		label string
		v     float64
	}
	trains := []level{{"low", 0.01}, {"high", 0.30}}
	accs := []level{{"low", 0.55}, {"high", 0.80}}
	densities := []level{{"low", 0.005}, {"high", 0.02}}
	tw := newTab(w)
	fmt.Fprintln(tw, "Train\tAccuracy\tDensity\tEM acc\tERM acc\tWinner\tOptimizer")
	i := int64(0)
	for _, tr := range trains {
		for _, ac := range accs {
			for _, de := range densities {
				i++
				inst, err := cfg.Example6Instance(ac.v, de.v, cfg.DataSeed+i)
				if err != nil {
					return err
				}
				em, err := RunAveraged(NewSourcesEM(), inst, tr.v, cfg.Seeds)
				if err != nil {
					return err
				}
				erm, err := RunAveraged(NewSourcesERM(), inst, tr.v, cfg.Seeds)
				if err != nil {
					return err
				}
				winner := "ERM"
				if em.ObjAccuracy > erm.ObjAccuracy {
					winner = "EM"
				}
				splitSeed := randx.DeriveSeed(cfg.Seeds[0], fmt.Sprintf("split:%v", tr.v))
				train, _ := data.Split(inst.Gold, tr.v, randx.New(splitSeed))
				dec := core.Decide(inst.Dataset, train, core.DefaultOptimizerOptions())
				fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\t%.3f\t%s\t%s\n",
					tr.label, ac.label, de.label, em.ObjAccuracy, erm.ObjAccuracy, winner, dec.Algorithm)
			}
		}
	}
	return tw.Flush()
}

// runLassoFigure renders a Lasso path: activation order plus weight
// trajectories of the earliest-activating features.
func runLassoFigure(w io.Writer, cfg Config, dataset string, topN int) error {
	inst, err := cfg.LoadDataset(dataset)
	if err != nil {
		return err
	}
	opts := lasso.DefaultOptions()
	if cfg.Quick {
		opts.Steps = 8
		opts.MaxIter = 150
	}
	p, err := lasso.Compute(inst.Dataset, inst.Gold, opts)
	if err != nil {
		return err
	}
	order := p.ActivationOrder(1e-6)
	if topN > len(order) {
		topN = len(order)
	}
	fmt.Fprintf(w, "Lasso path on %s: first-activating features (most predictive of source accuracy)\n", dataset)
	tw := newTab(w)
	fmt.Fprint(tw, "Feature\tLatentW")
	for _, i := range []int{0, len(p.Mu) / 2, len(p.Mu) - 1} {
		fmt.Fprintf(tw, "\tw@mu=%.2f", p.Mu[i])
	}
	fmt.Fprintln(tw)
	for _, k := range order[:topN] {
		name := p.FeatureNames[k]
		fmt.Fprintf(tw, "%s\t%.2f", name, inst.TrueFeatureWeights[name])
		for _, i := range []int{0, len(p.Mu) / 2, len(p.Mu) - 1} {
			fmt.Fprintf(tw, "\t%.3f", p.Weights[i][k])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RunFigure6 reproduces Figure 6: the Lasso path over the Stocks
// traffic-statistics features.
func RunFigure6(w io.Writer, cfg Config) error {
	return runLassoFigure(w, cfg, "stocks", 14)
}

// RunFigure9 reproduces Figure 9: the Lasso path over the Crowd
// worker features.
func RunFigure9(w io.Writer, cfg Config) error {
	return runLassoFigure(w, cfg, "crowd", 10)
}

// RunFigure7 reproduces Figure 7: predict the accuracy of sources
// never seen in training from their domain features alone, varying the
// fraction of sources available for training.
func RunFigure7(w io.Writer, cfg Config) error {
	names := []string{"stocks", "demos", "crowd"}
	if cfg.Quick {
		names = []string{"stocks", "crowd"}
	}
	pcts := []float64{0.25, 0.40, 0.50, 0.75}
	tw := newTab(w)
	fmt.Fprint(tw, "Dataset")
	for _, p := range pcts {
		fmt.Fprintf(tw, "\t%.0f%% used", p*100)
	}
	fmt.Fprintln(tw, "\t(mean abs error on unseen sources)")
	for _, name := range names {
		inst, err := cfg.LoadDataset(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s", name)
		for pi, pct := range pcts {
			errSum, n := 0.0, 0
			for _, seed := range cfg.Seeds {
				e, err := unseenSourceError(inst, pct, randx.DeriveSeed(seed, fmt.Sprintf("fig7:%d", pi)))
				if err != nil {
					return err
				}
				errSum += e
				n++
			}
			fmt.Fprintf(tw, "\t%.3f", errSum/float64(n))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// unseenSourceError trains on a random pct of sources and measures the
// mean absolute error of feature-only accuracy predictions on the
// held-out sources.
func unseenSourceError(inst *synth.Instance, pct float64, seed int64) (float64, error) {
	rng := randx.New(seed)
	nS := inst.Dataset.NumSources()
	nKeep := int(pct * float64(nS))
	if nKeep < 2 {
		nKeep = 2
	}
	perm := rng.Shuffled(nS)
	keep := make([]data.SourceID, nKeep)
	for i := 0; i < nKeep; i++ {
		keep[i] = data.SourceID(perm[i])
	}
	sub, _, err := data.RestrictSources(inst.Dataset, keep)
	if err != nil {
		return 0, err
	}
	// Gold labels restricted to objects that still have observations.
	train := data.TruthMap{}
	for o, v := range inst.Gold {
		if len(sub.Domain(o)) > 0 {
			train[o] = v
		}
	}
	method := NewSLiMFastERM()
	model, err := method.Model(sub, train)
	if err != nil {
		return 0, err
	}
	trueAcc := inst.Dataset.TrueSourceAccuracies(inst.Gold)
	var errSum float64
	var n int
	for i := nKeep; i < nS; i++ {
		s := data.SourceID(perm[i])
		labels := make([]string, 0, len(inst.Dataset.SourceFeatures[s]))
		for _, k := range inst.Dataset.SourceFeatures[s] {
			labels = append(labels, inst.Dataset.FeatureNames[k])
		}
		pred := model.PredictAccuracy(labels)
		errSum += math.Abs(pred - trueAcc[s])
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return errSum / float64(n), nil
}

// RunFigure8 reproduces Figure 8 (Appendix D): fusing Demos with and
// without the pairwise copying features, plus the highest-weight
// copier pairs found.
func RunFigure8(w io.Writer, cfg Config) error {
	inst, err := cfg.LoadDataset("demos")
	if err != nil {
		return err
	}
	minOverlap := 8
	fracs := []float64{0.01, 0.05, 0.10, 0.20}
	if cfg.Quick {
		fracs = []float64{0.05, 0.20}
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "TD(%)\tw/o Copying\tw. Copying")
	for _, frac := range fracs {
		plain, err := RunAveraged(NewSourcesERM(), inst, frac, cfg.Seeds)
		if err != nil {
			return err
		}
		copying, err := RunAveraged(NewSLiMFastCopying(minOverlap), inst, frac, cfg.Seeds)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%.0f\t%.3f\t%.3f\n", frac*100, plain.ObjAccuracy, copying.ObjAccuracy)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Highest-weight copy pairs vs the planted ones.
	method := NewSLiMFastCopying(minOverlap)
	splitSeed := randx.DeriveSeed(cfg.Seeds[0], "fig8")
	train, _ := data.Split(inst.Gold, 0.20, randx.New(splitSeed))
	model, err := method.Model(inst.Dataset, train)
	if err != nil {
		return err
	}
	planted := inst.CorrelatedPairs()
	type pairW struct {
		a, b    data.SourceID
		weight  float64
		planted bool
	}
	var pairs []pairW
	for p := 0; p < model.NumCopyPairs(); p++ {
		a, b, wt := model.CopyPair(p)
		pairs = append(pairs, pairW{a, b, wt, planted[[2]data.SourceID{a, b}]})
	}
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j].weight > pairs[i].weight {
				pairs[i], pairs[j] = pairs[j], pairs[i]
			}
		}
	}
	fmt.Fprintln(w, "\nTop copying-feature weights (planted copier pairs marked *):")
	tw = newTab(w)
	fmt.Fprintln(tw, "Source1\tSource2\tWeight\tPlanted")
	top := 8
	if top > len(pairs) {
		top = len(pairs)
	}
	for _, pr := range pairs[:top] {
		mark := ""
		if pr.planted {
			mark = "*"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%s\n",
			inst.Dataset.SourceNames[pr.a], inst.Dataset.SourceNames[pr.b], pr.weight, mark)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	var plantedSum, indepSum float64
	var plantedN, indepN int
	for _, pr := range pairs {
		if pr.planted {
			plantedSum += pr.weight
			plantedN++
		} else {
			indepSum += pr.weight
			indepN++
		}
	}
	if plantedN > 0 && indepN > 0 {
		fmt.Fprintf(w, "mean copy weight: planted %.3f vs independent %.3f (%d vs %d pairs)\n",
			plantedSum/float64(plantedN), indepSum/float64(indepN), plantedN, indepN)
	}
	return nil
}

// RunTheory validates the scaling shapes of Theorems 1-3:
//
//   - Theorems 1/2: ERM's source-accuracy loss falls like √(|K|/|G|)
//     — error·√|G| should stay roughly flat as |G| grows.
//   - Theorem 3: EM's mean KL divergence falls with density p and with
//     the accuracy margin δ.
func RunTheory(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Theorem 1/2 shape: ERM source error vs |G| (error·sqrt(G) ~ flat)")
	inst, err := cfg.Example6Instance(0.7, 0.02, cfg.DataSeed)
	if err != nil {
		return err
	}
	trueAcc := inst.Dataset.TrueSourceAccuracies(inst.Gold)
	tw := newTab(w)
	fmt.Fprintln(tw, "|G|\tSourceErr\tErr*sqrt(G)")
	gs := []int{50, 200, 800}
	if cfg.Quick {
		gs = []int{40, 160}
	}
	nObj := inst.Dataset.NumObjects()
	for _, g := range gs {
		frac := float64(g) / float64(nObj)
		method := NewSourcesERM()
		var errs []float64
		for _, seed := range cfg.Seeds {
			tr, err := RunTrial(method, inst, frac, seed)
			if err != nil {
				return err
			}
			errs = append(errs, tr.SourceError)
		}
		e := metrics.Mean(errs)
		fmt.Fprintf(tw, "%d\t%.4f\t%.3f\n", g, e, e*math.Sqrt(float64(g)))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_ = trueAcc

	fmt.Fprintln(w, "\nTheorem 3 shape: unsupervised EM mean KL vs density and accuracy margin")
	tw = newTab(w)
	fmt.Fprintln(tw, "AvgAcc\tDensity\tMeanKL")
	cells := []struct{ acc, den float64 }{
		{0.6, 0.01}, {0.6, 0.04}, {0.8, 0.01}, {0.8, 0.04},
	}
	if cfg.Quick {
		cells = cells[1:3]
	}
	for i, c := range cells {
		inst, err := cfg.Example6Instance(c.acc, c.den, cfg.DataSeed+100+int64(i))
		if err != nil {
			return err
		}
		m, err := core.Compile(inst.Dataset, core.DefaultOptions())
		if err != nil {
			return err
		}
		if _, err := m.FitEM(nil); err != nil {
			return err
		}
		est := m.SourceAccuracies()
		kl := metrics.MeanKL(est, inst.Dataset.TrueSourceAccuracies(inst.Gold))
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.4f\n", c.acc, c.den, kl)
	}
	return tw.Flush()
}
