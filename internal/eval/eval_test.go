package eval

import (
	"bytes"
	"strings"
	"testing"

	"slimfast/internal/synth"
)

func quickInstance(t *testing.T) *synth.Instance {
	t.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "evalq", Sources: 30, Objects: 300, DomainSize: 2,
		Assignment: synth.IIDDensity, Density: 0.2,
		MeanAccuracy: 0.7, AccuracySD: 0.1, MinAccuracy: 0.5, MaxAccuracy: 0.95,
		Features: []synth.FeatureGroup{
			{Name: "f", Cardinality: 5, Informative: true, WeightScale: 1.5},
		},
		EnsureTruthObserved: true,
		Seed:                91,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSLiMFastVariantsFuse(t *testing.T) {
	inst := quickInstance(t)
	variants := []*SLiMFast{
		NewSLiMFast(), NewSLiMFastERM(), NewSLiMFastEM(),
		NewSourcesERM(), NewSourcesEM(),
	}
	for _, v := range variants {
		tr, err := RunTrial(v, inst, 0.1, 1)
		if err != nil {
			t.Fatalf("%s: %v", v.Name(), err)
		}
		if tr.ObjAccuracy < 0.75 {
			t.Errorf("%s accuracy = %v, want >= 0.75", v.Name(), tr.ObjAccuracy)
		}
		if tr.SourceError < 0 {
			t.Errorf("%s should report probabilistic source accuracies", v.Name())
		}
		if tr.Runtime <= 0 {
			t.Errorf("%s runtime not measured", v.Name())
		}
	}
}

func TestAutoVariantRecordsDecision(t *testing.T) {
	inst := quickInstance(t)
	m := NewSLiMFast()
	tr, err := RunTrial(m, inst, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Decision != "em" && tr.Decision != "erm" {
		t.Errorf("auto variant should record a decision, got %q", tr.Decision)
	}
	if m.LastCompileTime <= 0 || m.LastLearnTime <= 0 {
		t.Error("timing diagnostics not recorded")
	}
}

func TestRunTrialSameSplitAcrossMethods(t *testing.T) {
	// Different methods at the same (frac, seed) must see the same
	// split; sanity check via determinism of a single method.
	inst := quickInstance(t)
	m := NewSourcesERM()
	t1, err := RunTrial(m, inst, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunTrial(NewSourcesERM(), inst, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if t1.ObjAccuracy != t2.ObjAccuracy {
		t.Error("same seed should reproduce the trial exactly")
	}
}

func TestRunAveraged(t *testing.T) {
	inst := quickInstance(t)
	tr, err := RunAveraged(NewSourcesERM(), inst, 0.1, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.ObjAccuracy <= 0 || tr.ObjAccuracy > 1 {
		t.Errorf("averaged accuracy out of range: %v", tr.ObjAccuracy)
	}
	if _, err := RunAveraged(NewSourcesERM(), inst, 0.1, nil); err == nil {
		t.Error("no seeds should error")
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	if _, ok := ByID("table2"); !ok {
		t.Error("ByID should find table2")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID should reject unknown ids")
	}
}

// TestAllExperimentsRunQuick smoke-tests every registered experiment in
// quick mode: they must complete and emit non-trivial output. The
// subtests run concurrently — experiments are independent and the
// dataset cache is shared safely — so the suite's wall-clock scales
// with cores.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	cfg := QuickConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(&buf, cfg); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if buf.Len() < 20 {
				t.Errorf("%s produced almost no output: %q", e.ID, buf.String())
			}
		})
	}
}

// TestShortTierEndToEnd keeps one small end-to-end experiment in the
// -short tier: Table 1 renders from the calibrated datasets, and one
// full SLiMFast trial (compile, auto-decide, learn, infer, score) runs
// on the quick instance. Everything heavier lives behind the full
// tier (TestAllExperimentsRunQuick).
func TestShortTierEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable1(&buf, QuickConfig()); err != nil {
		t.Fatalf("table1: %v", err)
	}
	if !strings.Contains(buf.String(), "# Sources") {
		t.Errorf("table1 output incomplete:\n%s", buf.String())
	}
	inst := quickInstance(t)
	tr, err := RunTrial(NewSLiMFast(), inst, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ObjAccuracy < 0.7 {
		t.Errorf("end-to-end trial accuracy %v too low", tr.ObjAccuracy)
	}
}

func TestTable1MentionsDatasets(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable1(&buf, QuickConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Sources", "# Observations", "Density"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestMethodRegistries(t *testing.T) {
	if n := len(Table2Methods()); n != 7 {
		t.Errorf("Table 2 should have 7 methods, got %d", n)
	}
	if n := len(Table3Methods()); n != 5 {
		t.Errorf("Table 3 should have 5 methods, got %d", n)
	}
	names := map[string]bool{}
	for _, m := range Table2Methods() {
		names[m.Name()] = true
	}
	for _, want := range []string{"SLiMFast", "S-ERM", "S-EM", "Counts", "ACCU", "CATD", "SSTF"} {
		if !names[want] {
			t.Errorf("Table 2 missing method %q", want)
		}
	}
}

func TestConfigModes(t *testing.T) {
	full := DefaultConfig()
	quick := QuickConfig()
	if len(full.TrainFractions()) != 5 {
		t.Error("full config should use the paper's 5 fractions")
	}
	if len(quick.TrainFractions()) >= 5 {
		t.Error("quick config should use fewer fractions")
	}
	if len(full.DatasetNames()) != 4 {
		t.Error("full config should use all 4 datasets")
	}
}
