package data

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// The on-disk formats:
//
//   - Observations CSV: header "source,object,value", one row per
//     observation.
//   - Features CSV: header "source,feature", one row per active
//     Boolean feature.
//   - Truth CSV: header "object,value", one row per labeled object.
//   - JSON: a single document with all three plus names, produced by
//     WriteJSON and cmd/datagen.

// WriteObservationsCSV writes Ω in the CSV exchange format.
func WriteObservationsCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"source", "object", "value"}); err != nil {
		return err
	}
	for _, ob := range d.Observations {
		rec := []string{d.SourceNames[ob.Source], d.ObjectNames[ob.Object], d.ValueNames[ob.Value]}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFeaturesCSV writes the active source features.
func WriteFeaturesCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"source", "feature"}); err != nil {
		return err
	}
	for s, fs := range d.SourceFeatures {
		for _, f := range fs {
			if err := cw.Write([]string{d.SourceNames[s], d.FeatureNames[f]}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTruthCSV writes a TruthMap in the CSV exchange format.
func WriteTruthCSV(w io.Writer, d *Dataset, truth TruthMap) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"object", "value"}); err != nil {
		return err
	}
	// Deterministic order.
	for o := 0; o < d.NumObjects(); o++ {
		v, ok := truth[ObjectID(o)]
		if !ok {
			continue
		}
		if err := cw.Write([]string{d.ObjectNames[o], d.ValueNames[v]}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadObservationsCSV parses the observations CSV into a Builder.
func ReadObservationsCSV(r io.Reader, b *Builder) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("data: observations csv: %w", err)
		}
		if header {
			header = false
			if rec[0] == "source" {
				continue
			}
		}
		b.ObserveNames(rec[0], rec[1], rec[2])
	}
}

// StreamObservationsCSV reads the observations CSV and invokes fn for
// every row without materializing a Dataset — the ingest path for
// stream processing, where claims are consumed one at a time and the
// full Ω never needs to exist in memory. The record slice is reused
// between reads, but the field strings are freshly allocated per row
// (encoding/csv backs each record's fields by one new string), so fn
// may retain them. Returning an error from fn stops the scan and
// propagates the error.
//
// Every failure — a malformed row or an fn rejection — is reported
// with its 1-based row number (the header row counts), so a bad line
// deep in a multi-gigabyte stream can actually be found.
func StreamObservationsCSV(r io.Reader, fn func(source, object, value string) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	cr.ReuseRecord = true
	header := true
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		row++
		if err != nil {
			return fmt.Errorf("data: observations csv row %d: %w", row, err)
		}
		if header {
			header = false
			if rec[0] == "source" {
				continue
			}
		}
		if err := fn(rec[0], rec[1], rec[2]); err != nil {
			return fmt.Errorf("data: observations csv row %d: %w", row, err)
		}
	}
}

// ReadFeaturesCSV parses the features CSV into a Builder. Sources named
// here but absent from the observations are created (with no
// observations), which is how Figure 7's "unseen sources" enter the
// system.
func ReadFeaturesCSV(r io.Reader, b *Builder) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("data: features csv: %w", err)
		}
		if header {
			header = false
			if rec[0] == "source" {
				continue
			}
		}
		b.SetFeature(b.Source(rec[0]), rec[1])
	}
}

// ReadSourceFeaturesCSV parses the features CSV ("source,feature",
// one row per active Boolean feature) into a name-keyed table — the
// form the streaming engine's Features option wants, with no Dataset
// in sight. Labels are deduplicated per source, first-seen order
// preserved; malformed rows are reported with their 1-based row
// number.
func ReadSourceFeaturesCSV(r io.Reader) (map[string][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.ReuseRecord = true
	out := map[string][]string{}
	header := true
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		row++
		if err != nil {
			return nil, fmt.Errorf("data: features csv row %d: %w", row, err)
		}
		if header {
			header = false
			if rec[0] == "source" {
				continue
			}
		}
		source, label := rec[0], rec[1]
		if source == "" || label == "" {
			return nil, fmt.Errorf("data: features csv row %d: source and feature must be non-empty", row)
		}
		dup := false
		for _, have := range out[source] {
			if have == label {
				dup = true
				break
			}
		}
		if !dup {
			out[source] = append(out[source], label)
		}
	}
}

// ReadTruthCSV parses a truth CSV against an already-built Builder and
// returns the TruthMap. Objects or values not present in the builder are
// interned (an object can be labeled without being observed).
func ReadTruthCSV(r io.Reader, b *Builder) (map[string]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	out := map[string]string{}
	header := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("data: truth csv: %w", err)
		}
		if header {
			header = false
			if rec[0] == "object" {
				continue
			}
		}
		out[rec[0]] = rec[1]
	}
}

// TruthFromNames converts a name-keyed truth table into a TruthMap
// against a frozen dataset. Unknown object names are skipped; unknown
// value names are an error (they indicate a label for a value no source
// ever asserted, violating the paper's single-truth assumption that at
// least one source provides the correct value).
func TruthFromNames(d *Dataset, names map[string]string) (TruthMap, error) {
	objIdx := make(map[string]ObjectID, d.NumObjects())
	for i, n := range d.ObjectNames {
		objIdx[n] = ObjectID(i)
	}
	valIdx := make(map[string]ValueID, d.NumValues())
	for i, n := range d.ValueNames {
		valIdx[n] = ValueID(i)
	}
	tm := make(TruthMap, len(names))
	for on, vn := range names {
		o, ok := objIdx[on]
		if !ok {
			continue
		}
		v, ok := valIdx[vn]
		if !ok {
			return nil, fmt.Errorf("data: truth value %q for object %q never observed", vn, on)
		}
		tm[o] = v
	}
	return tm, nil
}

// jsonDataset is the JSON exchange schema.
type jsonDataset struct {
	Name         string            `json:"name"`
	Sources      []string          `json:"sources"`
	Objects      []string          `json:"objects"`
	Values       []string          `json:"values"`
	Features     []string          `json:"features"`
	Observations [][3]int          `json:"observations"` // [source, object, value]
	SourceFeats  [][]int           `json:"source_features"`
	Truth        map[string]string `json:"truth,omitempty"`
}

// WriteJSON serializes the dataset (and optional truth) as one JSON
// document.
func WriteJSON(w io.Writer, d *Dataset, truth TruthMap) error {
	jd := jsonDataset{
		Name:     d.Name,
		Sources:  d.SourceNames,
		Objects:  d.ObjectNames,
		Values:   d.ValueNames,
		Features: d.FeatureNames,
	}
	jd.Observations = make([][3]int, len(d.Observations))
	for i, ob := range d.Observations {
		jd.Observations[i] = [3]int{int(ob.Source), int(ob.Object), int(ob.Value)}
	}
	jd.SourceFeats = make([][]int, len(d.SourceFeatures))
	for s, fs := range d.SourceFeatures {
		row := make([]int, len(fs))
		for i, f := range fs {
			row[i] = int(f)
		}
		jd.SourceFeats[s] = row
	}
	if truth != nil {
		jd.Truth = map[string]string{}
		for o, v := range truth {
			jd.Truth[d.ObjectNames[o]] = d.ValueNames[v]
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jd)
}

// ReadJSON deserializes a dataset written by WriteJSON and returns the
// frozen Dataset with its truth map (nil when absent).
func ReadJSON(r io.Reader) (*Dataset, TruthMap, error) {
	var jd jsonDataset
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, nil, fmt.Errorf("data: json decode: %w", err)
	}
	b := NewBuilder(jd.Name)
	for _, n := range jd.Sources {
		b.Source(n)
	}
	for _, n := range jd.Objects {
		b.Object(n)
	}
	for _, n := range jd.Values {
		b.Value(n)
	}
	for _, n := range jd.Features {
		b.Feature(n)
	}
	for i, ob := range jd.Observations {
		if ob[0] < 0 || ob[0] >= len(jd.Sources) || ob[1] < 0 || ob[1] >= len(jd.Objects) || ob[2] < 0 || ob[2] >= len(jd.Values) {
			return nil, nil, fmt.Errorf("data: json observation %d out of range: %v", i, ob)
		}
		b.Observe(SourceID(ob[0]), ObjectID(ob[1]), ValueID(ob[2]))
	}
	for s, fs := range jd.SourceFeats {
		if s >= len(jd.Sources) {
			return nil, nil, fmt.Errorf("data: json source_features longer than sources")
		}
		for _, f := range fs {
			if f < 0 || f >= len(jd.Features) {
				return nil, nil, fmt.Errorf("data: json feature %d out of range for source %d", f, s)
			}
			b.SetFeature(SourceID(s), jd.Features[f])
		}
	}
	d := b.Freeze()
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if jd.Truth == nil {
		return d, nil, nil
	}
	tm, err := TruthFromNames(d, jd.Truth)
	if err != nil {
		return nil, nil, err
	}
	return d, tm, nil
}

// FormatFloat renders a float for table output with trailing-zero
// trimming at the given precision, matching the paper's table style.
func FormatFloat(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}
