package data

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"slimfast/internal/randx"
)

// paperExample builds the Figure 1 running example: three articles
// reporting on two gene-disease objects.
func paperExample() (*Dataset, TruthMap) {
	b := NewBuilder("genomics-example")
	b.ObserveNames("Article1", "GIGYF2,Parkinson", "false")
	b.ObserveNames("Article2", "GIGYF2,Parkinson", "false")
	b.ObserveNames("Article3", "GIGYF2,Parkinson", "true")
	b.ObserveNames("Article1", "GBA,Parkinson", "true")
	b.ObserveNames("Article3", "GBA,Parkinson", "true")
	b.SetFeature(b.Source("Article1"), "PubYear=2009")
	b.SetFeature(b.Source("Article1"), "Citations=34")
	b.SetFeature(b.Source("Article2"), "PubYear=2008")
	b.SetFeature(b.Source("Article2"), "Citations=128")
	b.SetFeature(b.Source("Article3"), "Study=GWAS")
	d := b.Freeze()
	truth := TruthMap{}
	truth[0] = 0 // GIGYF2,Parkinson = false
	truth[1] = 1 // GBA,Parkinson = true
	return d, truth
}

func TestBuilderBasicCounts(t *testing.T) {
	d, _ := paperExample()
	if d.NumSources() != 3 {
		t.Errorf("NumSources = %d, want 3", d.NumSources())
	}
	if d.NumObjects() != 2 {
		t.Errorf("NumObjects = %d, want 2", d.NumObjects())
	}
	if d.NumValues() != 2 {
		t.Errorf("NumValues = %d, want 2", d.NumValues())
	}
	if d.NumObservations() != 5 {
		t.Errorf("NumObservations = %d, want 5", d.NumObservations())
	}
	if d.NumFeatures() != 5 {
		t.Errorf("NumFeatures = %d, want 5", d.NumFeatures())
	}
}

func TestBuilderInterningStable(t *testing.T) {
	b := NewBuilder("t")
	s1 := b.Source("a")
	s2 := b.Source("b")
	if s1 != b.Source("a") || s2 != b.Source("b") || s1 == s2 {
		t.Error("source interning broken")
	}
	o := b.Object("x")
	if o != b.Object("x") {
		t.Error("object interning broken")
	}
	v := b.Value("1")
	if v != b.Value("1") {
		t.Error("value interning broken")
	}
}

func TestObserveOverwritesDuplicatePair(t *testing.T) {
	b := NewBuilder("t")
	s, o := b.Source("s"), b.Object("o")
	v1, v2 := b.Value("1"), b.Value("2")
	b.Observe(s, o, v1)
	b.Observe(s, o, v2)
	d := b.Freeze()
	if d.NumObservations() != 1 {
		t.Fatalf("duplicate (s,o) should overwrite, got %d observations", d.NumObservations())
	}
	if d.Observations[0].Value != v2 {
		t.Errorf("value = %d, want %d", d.Observations[0].Value, v2)
	}
}

func TestDomainAndObjectIndex(t *testing.T) {
	d, _ := paperExample()
	// Object 0 = GIGYF2,Parkinson observed by 3 sources with 2 values.
	obs := d.ObjectObservations(0)
	if len(obs) != 3 {
		t.Fatalf("object 0 has %d observations, want 3", len(obs))
	}
	dom := d.Domain(0)
	if len(dom) != 2 {
		t.Errorf("domain(0) = %v, want 2 values", dom)
	}
	// Object 1 observed by 2 sources agreeing on one value.
	if len(d.Domain(1)) != 1 {
		t.Errorf("domain(1) = %v, want 1 value", d.Domain(1))
	}
	// Sorted by source within object.
	for i := 1; i < len(obs); i++ {
		if obs[i].Source < obs[i-1].Source {
			t.Error("object observations not sorted by source")
		}
	}
}

func TestSourceIndex(t *testing.T) {
	d, _ := paperExample()
	if d.SourceObservationCount(0) != 2 { // Article1
		t.Errorf("Article1 count = %d, want 2", d.SourceObservationCount(0))
	}
	if d.SourceObservationCount(1) != 1 { // Article2
		t.Errorf("Article2 count = %d, want 1", d.SourceObservationCount(1))
	}
	for _, idx := range d.SourceObservationIndices(2) {
		if d.Observations[idx].Source != 2 {
			t.Error("source index points at wrong observation")
		}
	}
}

func TestDensityAndAverages(t *testing.T) {
	d, _ := paperExample()
	if got, want := d.Density(), 5.0/6.0; got != want {
		t.Errorf("Density = %v, want %v", got, want)
	}
	if got := d.AvgObservationsPerObject(); got != 2.5 {
		t.Errorf("AvgObsPerObject = %v, want 2.5", got)
	}
	if got := d.AvgObservationsPerSource(); got != 5.0/3.0 {
		t.Errorf("AvgObsPerSource = %v", got)
	}
}

func TestTrueSourceAccuracies(t *testing.T) {
	d, truth := paperExample()
	acc := d.TrueSourceAccuracies(truth)
	// Article1: both observations correct -> 1.0
	// Article2: its single observation (false for GIGYF2) is correct -> 1.0
	// Article3: says true for GIGYF2 (wrong) and true for GBA (right) -> 0.5
	want := []float64{1, 1, 0.5}
	for s, w := range want {
		if acc[s] != w {
			t.Errorf("acc[%d] = %v, want %v", s, acc[s], w)
		}
	}
}

func TestTrueSourceAccuraciesUnlabeledSourceGetsMean(t *testing.T) {
	b := NewBuilder("t")
	b.ObserveNames("s1", "o1", "a")
	b.ObserveNames("s2", "o2", "a") // o2 unlabeled
	d := b.Freeze()
	truth := TruthMap{0: 0}
	acc := d.TrueSourceAccuracies(truth)
	if acc[0] != 1 {
		t.Errorf("acc[s1] = %v, want 1", acc[0])
	}
	if acc[1] != 1 { // mean of labeled sources = 1
		t.Errorf("acc[s2] = %v, want mean 1", acc[1])
	}
}

func TestAvgSourceAccuracy(t *testing.T) {
	d, truth := paperExample()
	got := d.AvgSourceAccuracy(truth)
	want := (1.0 + 1.0 + 0.5) / 3
	if got != want {
		t.Errorf("AvgSourceAccuracy = %v, want %v", got, want)
	}
	if d.AvgSourceAccuracy(TruthMap{}) != 0.5 {
		t.Error("no labels should give 0.5 default")
	}
}

func TestValidate(t *testing.T) {
	d, _ := paperExample()
	if err := d.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	// Corrupt a copy.
	bad := *d
	bad.Observations = append([]Observation{}, d.Observations...)
	bad.Observations[0].Source = 99
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range source should fail validation")
	}
}

func TestUsingUnfrozenPanics(t *testing.T) {
	b := NewBuilder("t")
	b.ObserveNames("s", "o", "v")
	d := b.ds
	defer func() {
		if recover() == nil {
			t.Error("access before Freeze should panic")
		}
	}()
	d.ObjectObservations(0)
}

func TestComputeStats(t *testing.T) {
	d, truth := paperExample()
	st := ComputeStats(d, truth)
	if st.Sources != 3 || st.Objects != 2 || st.Observations != 5 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.GroundTruthAvail != 1 {
		t.Errorf("GroundTruthAvail = %v, want 1", st.GroundTruthAvail)
	}
	stNoGold := ComputeStats(d, nil)
	if stNoGold.AvgSrcAccuracy != -1 {
		t.Error("AvgSrcAccuracy should be -1 without gold")
	}
}

func TestSplitFractions(t *testing.T) {
	gold := TruthMap{}
	for i := 0; i < 1000; i++ {
		gold[ObjectID(i)] = ValueID(i % 3)
	}
	rng := randx.New(42)
	train, test := Split(gold, 0.2, rng)
	if len(train) != 200 {
		t.Errorf("train size = %d, want 200", len(train))
	}
	if len(test) != 800 {
		t.Errorf("test size = %d, want 800", len(test))
	}
	// Disjoint and label-preserving.
	for o, v := range train {
		if _, ok := test[o]; ok {
			t.Fatal("train and test overlap")
		}
		if gold[o] != v {
			t.Fatal("split changed a label")
		}
	}
}

func TestSplitTinyFractionKeepsOne(t *testing.T) {
	gold := TruthMap{0: 0, 1: 0, 2: 0}
	train, _ := Split(gold, 0.001, randx.New(1))
	if len(train) != 1 {
		t.Errorf("train size = %d, want 1 (minimum)", len(train))
	}
	train, test := Split(gold, 0, randx.New(1))
	if len(train) != 0 || len(test) != 3 {
		t.Error("trainFrac=0 should give empty train")
	}
}

func TestSplitDeterministic(t *testing.T) {
	gold := TruthMap{}
	for i := 0; i < 100; i++ {
		gold[ObjectID(i)] = 0
	}
	t1, _ := Split(gold, 0.3, randx.New(7))
	t2, _ := Split(gold, 0.3, randx.New(7))
	if len(t1) != len(t2) {
		t.Fatal("sizes differ")
	}
	for o := range t1 {
		if _, ok := t2[o]; !ok {
			t.Fatal("same seed should give same split")
		}
	}
}

func TestRestrictSources(t *testing.T) {
	d, _ := paperExample()
	sub, mapping, err := RestrictSources(d, []SourceID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumSources() != 2 {
		t.Fatalf("restricted sources = %d, want 2", sub.NumSources())
	}
	if len(mapping) != 2 || mapping[0] != 0 || mapping[1] != 2 {
		t.Errorf("mapping = %v, want [0 2]", mapping)
	}
	// Object and value id spaces preserved.
	if sub.NumObjects() != d.NumObjects() || sub.NumValues() != d.NumValues() {
		t.Error("object/value spaces must be preserved")
	}
	// Article2's single observation dropped: 5 - 1 = 4.
	if sub.NumObservations() != 4 {
		t.Errorf("observations = %d, want 4", sub.NumObservations())
	}
	// Features carried over.
	if sub.NumFeatures() != d.NumFeatures() {
		t.Errorf("features = %d, want %d", sub.NumFeatures(), d.NumFeatures())
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("restricted dataset invalid: %v", err)
	}
	if _, _, err := RestrictSources(d, []SourceID{99}); err == nil {
		t.Error("out-of-range source should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d, truth := paperExample()
	var obsBuf, featBuf, truthBuf bytes.Buffer
	if err := WriteObservationsCSV(&obsBuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteFeaturesCSV(&featBuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteTruthCSV(&truthBuf, d, truth); err != nil {
		t.Fatal(err)
	}

	b := NewBuilder("roundtrip")
	if err := ReadObservationsCSV(&obsBuf, b); err != nil {
		t.Fatal(err)
	}
	if err := ReadFeaturesCSV(&featBuf, b); err != nil {
		t.Fatal(err)
	}
	names, err := ReadTruthCSV(&truthBuf, b)
	if err != nil {
		t.Fatal(err)
	}
	d2 := b.Freeze()
	if d2.NumObservations() != d.NumObservations() ||
		d2.NumSources() != d.NumSources() ||
		d2.NumFeatures() != d.NumFeatures() {
		t.Errorf("round trip lost data: %d obs, %d src, %d feat",
			d2.NumObservations(), d2.NumSources(), d2.NumFeatures())
	}
	tm, err := TruthFromNames(d2, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(tm) != len(truth) {
		t.Errorf("truth size = %d, want %d", len(tm), len(truth))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d, truth := paperExample()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d, truth); err != nil {
		t.Fatal(err)
	}
	d2, tm, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name {
		t.Errorf("name = %q, want %q", d2.Name, d.Name)
	}
	if d2.NumObservations() != d.NumObservations() {
		t.Errorf("observations = %d, want %d", d2.NumObservations(), d.NumObservations())
	}
	if len(tm) != len(truth) {
		t.Errorf("truth = %d entries, want %d", len(tm), len(truth))
	}
	// Feature assignments survive.
	for s := range d.SourceFeatures {
		if len(d2.SourceFeatures[s]) != len(d.SourceFeatures[s]) {
			t.Errorf("source %d features lost", s)
		}
	}
}

func TestReadJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"x","sources":["s"],"objects":["o"],"values":["v"],"observations":[[5,0,0]]}`,
		`{"name":"x","sources":["s"],"objects":["o"],"values":["v"],"observations":[],"source_features":[[9]],"features":[]}`,
	}
	for i, c := range cases {
		if _, _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt JSON accepted", i)
		}
	}
}

func TestTruthFromNamesUnknownValue(t *testing.T) {
	d, _ := paperExample()
	if _, err := TruthFromNames(d, map[string]string{"GBA,Parkinson": "maybe"}); err == nil {
		t.Error("unknown value name should error")
	}
	// Unknown object names are skipped, not errors.
	tm, err := TruthFromNames(d, map[string]string{"nope": "true"})
	if err != nil || len(tm) != 0 {
		t.Errorf("unknown object should be skipped, got %v %v", tm, err)
	}
}

func TestFormatFloat(t *testing.T) {
	if got := FormatFloat(0.123456, 3); got != "0.123" {
		t.Errorf("FormatFloat = %q", got)
	}
}

func TestStreamObservationsCSV(t *testing.T) {
	in := "source,object,value\ns1,o1,a\ns2,o1,b\ns1,o2,a\n"
	var got [][3]string
	err := StreamObservationsCSV(strings.NewReader(in), func(s, o, v string) error {
		got = append(got, [3]string{s, o, v})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]string{{"s1", "o1", "a"}, {"s2", "o1", "b"}, {"s1", "o2", "a"}}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %v, want %v", i, got[i], want[i])
		}
	}

	// fn errors stop the scan and propagate.
	stop := errors.New("stop")
	n := 0
	err = StreamObservationsCSV(strings.NewReader(in), func(s, o, v string) error {
		n++
		return stop
	})
	if !errors.Is(err, stop) || n != 1 {
		t.Errorf("fn error not propagated: err=%v after %d rows", err, n)
	}

	// Malformed rows error out.
	if err := StreamObservationsCSV(strings.NewReader("source,object,value\nonly,two\n"), func(s, o, v string) error {
		return nil
	}); err == nil {
		t.Error("short row should error")
	}
}

// TestStreamObservationsCSVReportsRowNumbers guards the error-position
// contract: both malformed rows and fn rejections must name the
// 1-based row (header included) where the scan stopped.
func TestStreamObservationsCSVReportsRowNumbers(t *testing.T) {
	// Row 3 is short (row 1 is the header).
	in := "source,object,value\ns1,o1,a\nonly,two\ns2,o2,b\n"
	err := StreamObservationsCSV(strings.NewReader(in), func(s, o, v string) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "row 3") {
		t.Errorf("malformed-row error lost its position: %v", err)
	}

	// fn rejections carry the row too, without losing the cause.
	bad := errors.New("bad claim")
	err = StreamObservationsCSV(strings.NewReader("source,object,value\ns1,o1,a\ns2,o2,b\n"), func(s, o, v string) error {
		if o == "o2" {
			return bad
		}
		return nil
	})
	if !errors.Is(err, bad) || !strings.Contains(err.Error(), "row 3") {
		t.Errorf("fn error lost its position or identity: %v", err)
	}
}

func TestReadSourceFeaturesCSV(t *testing.T) {
	in := "source,feature\ns1,f=a\ns1,f=b\ns1,f=a\ns2,f=b\n"
	got, err := ReadSourceFeaturesCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("sources = %d, want 2", len(got))
	}
	if len(got["s1"]) != 2 || got["s1"][0] != "f=a" || got["s1"][1] != "f=b" {
		t.Errorf("s1 labels = %v, want deduped first-seen order", got["s1"])
	}
	if len(got["s2"]) != 1 {
		t.Errorf("s2 labels = %v", got["s2"])
	}
	// Headerless input works too (no "source" sentinel row).
	got, err = ReadSourceFeaturesCSV(strings.NewReader("a,x\nb,y\n"))
	if err != nil || len(got) != 2 {
		t.Errorf("headerless parse: %v / %v", got, err)
	}
	// Failures carry row numbers.
	if _, err := ReadSourceFeaturesCSV(strings.NewReader("source,feature\ns1,f,extra\n")); err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Errorf("malformed row error = %v, want row number", err)
	}
	if _, err := ReadSourceFeaturesCSV(strings.NewReader("source,feature\n,f\n")); err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Errorf("empty source error = %v, want row number", err)
	}
}
