// Package data defines the data-fusion input/output model from Section 2
// of the SLiMFast paper: sources S, objects O, observations Ω (the value
// v_{o,s} each source assigns to each object it reports on), optional
// ground truth G, and optional domain-specific features F over sources.
//
// The representation is columnar and index-based: sources, objects,
// values, and features are interned to dense integer ids so the learning
// code can use flat slices. The string names are kept for I/O and
// reporting.
package data

import (
	"fmt"
	"sort"
)

// SourceID identifies a data source (an article, web domain, or crowd
// worker in the paper's scenarios).
type SourceID int

// ObjectID identifies a real-world object whose true value is sought.
type ObjectID int

// ValueID identifies one of the distinct values in an object's domain.
// Values are interned globally; an object's candidate set Do is the set
// of distinct values its sources assigned to it.
type ValueID int

// FeatureID identifies a domain-specific Boolean feature over sources
// (e.g. "BounceRate=Low", "PubYear=2009").
type FeatureID int

// None marks an absent value (for example "object has no estimate").
const None ValueID = -1

// Observation is one entry of Ω: source Source claims object Object has
// value Value.
type Observation struct {
	Source SourceID
	Object ObjectID
	Value  ValueID
}

// Dataset is an immutable data-fusion instance. Build one with a
// Builder; after Freeze the adjacency indexes below are populated and
// the struct must not be mutated.
type Dataset struct {
	// Name labels the instance in reports ("stocks", "genomics", ...).
	Name string

	// SourceNames, ObjectNames and ValueNames map dense ids back to
	// the external identifiers.
	SourceNames []string
	ObjectNames []string
	ValueNames  []string
	// FeatureNames maps FeatureID to the feature-value label.
	FeatureNames []string

	// Observations is Ω. The slice is sorted by (Object, Source).
	Observations []Observation

	// SourceFeatures[s] lists the FeatureIDs active for source s
	// (Boolean features; absent means 0). Sorted ascending.
	SourceFeatures [][]FeatureID

	// byObject[o] indexes the observations for object o as a subslice
	// of Observations; bySource[s] holds indices into Observations for
	// source s.
	byObject [][]Observation
	bySource [][]int

	// domain[o] is Do: the distinct values assigned to object o,
	// sorted ascending.
	domain [][]ValueID

	frozen bool
}

// TruthMap assigns true values to a subset of objects; it serves both as
// ground truth G (training) and as the gold labels used for evaluation.
type TruthMap map[ObjectID]ValueID

// NumSources returns |S|.
func (d *Dataset) NumSources() int { return len(d.SourceNames) }

// NumObjects returns |O|.
func (d *Dataset) NumObjects() int { return len(d.ObjectNames) }

// NumValues returns the number of interned distinct values.
func (d *Dataset) NumValues() int { return len(d.ValueNames) }

// NumFeatures returns |K| in terms of distinct feature values.
func (d *Dataset) NumFeatures() int { return len(d.FeatureNames) }

// NumObservations returns |Ω|.
func (d *Dataset) NumObservations() int { return len(d.Observations) }

// ObjectObservations returns the observations for object o (sorted by
// source). The returned slice aliases internal storage; do not modify.
func (d *Dataset) ObjectObservations(o ObjectID) []Observation {
	d.mustBeFrozen()
	return d.byObject[o]
}

// SourceObservationIndices returns indices into Observations for the
// observations made by source s.
func (d *Dataset) SourceObservationIndices(s SourceID) []int {
	d.mustBeFrozen()
	return d.bySource[s]
}

// SourceObservationCount returns |Os|, the number of observations made
// by source s.
func (d *Dataset) SourceObservationCount(s SourceID) int {
	d.mustBeFrozen()
	return len(d.bySource[s])
}

// Domain returns Do, the sorted distinct values sources assigned to o.
func (d *Dataset) Domain(o ObjectID) []ValueID {
	d.mustBeFrozen()
	return d.domain[o]
}

// Density returns the fraction of (source, object) pairs with an
// observation: |Ω| / (|S|·|O|), the quantity the paper calls density p.
func (d *Dataset) Density() float64 {
	n := d.NumSources() * d.NumObjects()
	if n == 0 {
		return 0
	}
	return float64(len(d.Observations)) / float64(n)
}

// AvgObservationsPerObject returns |Ω|/|O|.
func (d *Dataset) AvgObservationsPerObject() float64 {
	if d.NumObjects() == 0 {
		return 0
	}
	return float64(len(d.Observations)) / float64(d.NumObjects())
}

// AvgObservationsPerSource returns |Ω|/|S|.
func (d *Dataset) AvgObservationsPerSource() float64 {
	if d.NumSources() == 0 {
		return 0
	}
	return float64(len(d.Observations)) / float64(d.NumSources())
}

// TrueSourceAccuracies computes each source's empirical accuracy against
// the supplied gold labels: the fraction of its observations on labeled
// objects that match the label. Sources with no labeled observations get
// the overall mean. This is the "true accuracy A*_s" used for the
// source-error metric in Section 5.1.
func (d *Dataset) TrueSourceAccuracies(gold TruthMap) []float64 {
	d.mustBeFrozen()
	correct := make([]int, d.NumSources())
	total := make([]int, d.NumSources())
	for _, ob := range d.Observations {
		truth, ok := gold[ob.Object]
		if !ok {
			continue
		}
		total[ob.Source]++
		if ob.Value == truth {
			correct[ob.Source]++
		}
	}
	acc := make([]float64, d.NumSources())
	var sum float64
	var n int
	for s := range acc {
		if total[s] > 0 {
			acc[s] = float64(correct[s]) / float64(total[s])
			sum += acc[s]
			n++
		} else {
			acc[s] = -1 // fill below
		}
	}
	mean := 0.5
	if n > 0 {
		mean = sum / float64(n)
	}
	for s := range acc {
		if acc[s] < 0 {
			acc[s] = mean
		}
	}
	return acc
}

// AvgSourceAccuracy returns the unweighted mean of TrueSourceAccuracies
// over sources that have at least one labeled observation.
func (d *Dataset) AvgSourceAccuracy(gold TruthMap) float64 {
	d.mustBeFrozen()
	var sum float64
	var n int
	correct := make([]int, d.NumSources())
	total := make([]int, d.NumSources())
	for _, ob := range d.Observations {
		truth, ok := gold[ob.Object]
		if !ok {
			continue
		}
		total[ob.Source]++
		if ob.Value == truth {
			correct[ob.Source]++
		}
	}
	for s := range total {
		if total[s] > 0 {
			sum += float64(correct[s]) / float64(total[s])
			n++
		}
	}
	if n == 0 {
		return 0.5
	}
	return sum / float64(n)
}

func (d *Dataset) mustBeFrozen() {
	if !d.frozen {
		panic("data: Dataset used before Freeze")
	}
}

// Validate checks internal consistency and returns a descriptive error
// for the first violation found. A frozen Builder output always
// validates; this exists for datasets decoded from external files.
func (d *Dataset) Validate() error {
	if !d.frozen {
		return fmt.Errorf("dataset %q not frozen", d.Name)
	}
	for i, ob := range d.Observations {
		if ob.Source < 0 || int(ob.Source) >= d.NumSources() {
			return fmt.Errorf("observation %d: source %d out of range [0,%d)", i, ob.Source, d.NumSources())
		}
		if ob.Object < 0 || int(ob.Object) >= d.NumObjects() {
			return fmt.Errorf("observation %d: object %d out of range [0,%d)", i, ob.Object, d.NumObjects())
		}
		if ob.Value < 0 || int(ob.Value) >= d.NumValues() {
			return fmt.Errorf("observation %d: value %d out of range [0,%d)", i, ob.Value, d.NumValues())
		}
	}
	if len(d.SourceFeatures) != d.NumSources() {
		return fmt.Errorf("SourceFeatures has %d entries, want %d", len(d.SourceFeatures), d.NumSources())
	}
	for s, fs := range d.SourceFeatures {
		for _, f := range fs {
			if f < 0 || int(f) >= d.NumFeatures() {
				return fmt.Errorf("source %d: feature %d out of range [0,%d)", s, f, d.NumFeatures())
			}
		}
	}
	return nil
}

// Builder incrementally constructs a Dataset, interning external string
// identifiers to dense ids.
type Builder struct {
	name     string
	sources  map[string]SourceID
	objects  map[string]ObjectID
	values   map[string]ValueID
	features map[string]FeatureID
	ds       *Dataset
	// seen deduplicates (source, object) pairs: single-truth semantics
	// mean a source asserts one value per object; later assertions for
	// the same pair replace earlier ones.
	seen map[[2]int]int
}

// NewBuilder returns a Builder for a dataset with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		sources:  map[string]SourceID{},
		objects:  map[string]ObjectID{},
		values:   map[string]ValueID{},
		features: map[string]FeatureID{},
		ds:       &Dataset{Name: name},
		seen:     map[[2]int]int{},
	}
}

// Source interns (or looks up) a source by name.
func (b *Builder) Source(name string) SourceID {
	if id, ok := b.sources[name]; ok {
		return id
	}
	id := SourceID(len(b.ds.SourceNames))
	b.sources[name] = id
	b.ds.SourceNames = append(b.ds.SourceNames, name)
	b.ds.SourceFeatures = append(b.ds.SourceFeatures, nil)
	return id
}

// Object interns (or looks up) an object by name.
func (b *Builder) Object(name string) ObjectID {
	if id, ok := b.objects[name]; ok {
		return id
	}
	id := ObjectID(len(b.ds.ObjectNames))
	b.objects[name] = id
	b.ds.ObjectNames = append(b.ds.ObjectNames, name)
	return id
}

// Value interns (or looks up) a value by name.
func (b *Builder) Value(name string) ValueID {
	if id, ok := b.values[name]; ok {
		return id
	}
	id := ValueID(len(b.ds.ValueNames))
	b.values[name] = id
	b.ds.ValueNames = append(b.ds.ValueNames, name)
	return id
}

// Feature interns (or looks up) a Boolean feature value by label.
func (b *Builder) Feature(label string) FeatureID {
	if id, ok := b.features[label]; ok {
		return id
	}
	id := FeatureID(len(b.ds.FeatureNames))
	b.features[label] = id
	b.ds.FeatureNames = append(b.ds.FeatureNames, label)
	return id
}

// Observe records that source s assigns value v to object o. A repeated
// (s, o) pair overwrites the previous value (single-truth semantics).
func (b *Builder) Observe(s SourceID, o ObjectID, v ValueID) {
	key := [2]int{int(s), int(o)}
	if idx, ok := b.seen[key]; ok {
		b.ds.Observations[idx].Value = v
		return
	}
	b.seen[key] = len(b.ds.Observations)
	b.ds.Observations = append(b.ds.Observations, Observation{Source: s, Object: o, Value: v})
}

// ObserveNames is the string-identifier convenience form of Observe.
func (b *Builder) ObserveNames(source, object, value string) {
	b.Observe(b.Source(source), b.Object(object), b.Value(value))
}

// SetFeature marks the Boolean feature with the given label active for
// source s. Setting the same feature twice is a no-op.
func (b *Builder) SetFeature(s SourceID, label string) {
	f := b.Feature(label)
	for _, existing := range b.ds.SourceFeatures[s] {
		if existing == f {
			return
		}
	}
	b.ds.SourceFeatures[s] = append(b.ds.SourceFeatures[s], f)
}

// Freeze finalizes the dataset: sorts observations, builds the
// per-object and per-source indexes and the value domains, and returns
// the immutable Dataset. The Builder must not be used afterwards.
func (b *Builder) Freeze() *Dataset {
	d := b.ds
	sort.Slice(d.Observations, func(i, j int) bool {
		if d.Observations[i].Object != d.Observations[j].Object {
			return d.Observations[i].Object < d.Observations[j].Object
		}
		return d.Observations[i].Source < d.Observations[j].Source
	})
	d.byObject = make([][]Observation, d.NumObjects())
	d.bySource = make([][]int, d.NumSources())
	d.domain = make([][]ValueID, d.NumObjects())
	start := 0
	for i := 1; i <= len(d.Observations); i++ {
		if i == len(d.Observations) || d.Observations[i].Object != d.Observations[start].Object {
			o := d.Observations[start].Object
			d.byObject[o] = d.Observations[start:i]
			start = i
		}
	}
	for i, ob := range d.Observations {
		d.bySource[ob.Source] = append(d.bySource[ob.Source], i)
	}
	for o := range d.domain {
		seen := map[ValueID]bool{}
		for _, ob := range d.byObject[o] {
			seen[ob.Value] = true
		}
		dom := make([]ValueID, 0, len(seen))
		for v := range seen {
			dom = append(dom, v)
		}
		sort.Slice(dom, func(i, j int) bool { return dom[i] < dom[j] })
		d.domain[ObjectID(o)] = dom
	}
	for s := range d.SourceFeatures {
		fs := d.SourceFeatures[s]
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	}
	d.frozen = true
	b.ds = nil
	return d
}

// Stats summarizes a dataset the way Table 1 of the paper does.
type Stats struct {
	Name             string
	Sources          int
	Objects          int
	Observations     int
	FeatureValues    int
	Density          float64
	AvgObsPerObject  float64
	AvgObsPerSource  float64
	AvgSrcAccuracy   float64 // -1 when gold is nil
	GroundTruthAvail float64 // fraction of objects with gold labels
}

// ComputeStats derives Table 1-style statistics; gold may be nil.
func ComputeStats(d *Dataset, gold TruthMap) Stats {
	st := Stats{
		Name:            d.Name,
		Sources:         d.NumSources(),
		Objects:         d.NumObjects(),
		Observations:    d.NumObservations(),
		FeatureValues:   d.NumFeatures(),
		Density:         d.Density(),
		AvgObsPerObject: d.AvgObservationsPerObject(),
		AvgObsPerSource: d.AvgObservationsPerSource(),
		AvgSrcAccuracy:  -1,
	}
	if gold != nil {
		st.AvgSrcAccuracy = d.AvgSourceAccuracy(gold)
		if d.NumObjects() > 0 {
			st.GroundTruthAvail = float64(len(gold)) / float64(d.NumObjects())
		}
	}
	return st
}
