package data

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"slimfast/internal/randx"
)

// buildFromPattern constructs a dataset from an arbitrary byte pattern;
// testing/quick uses this to explore many shapes.
func buildFromPattern(pattern []byte) *Dataset {
	b := NewBuilder("prop")
	if len(pattern) == 0 {
		pattern = []byte{0}
	}
	for i, by := range pattern {
		s := fmt.Sprintf("s%d", int(by)%7)
		o := fmt.Sprintf("o%d", (int(by)/7+i)%11)
		v := fmt.Sprintf("v%d", int(by)%3)
		b.ObserveNames(s, o, v)
		if by%5 == 0 {
			b.SetFeature(b.Source(s), fmt.Sprintf("f%d", by%4))
		}
	}
	return b.Freeze()
}

// TestQuickFreezeInvariants: any built dataset validates, its indexes
// are consistent, and every observation appears in exactly one
// per-object bucket and one per-source bucket.
func TestQuickFreezeInvariants(t *testing.T) {
	f := func(pattern []byte) bool {
		d := buildFromPattern(pattern)
		if err := d.Validate(); err != nil {
			return false
		}
		// Per-object buckets partition the observations.
		count := 0
		for o := 0; o < d.NumObjects(); o++ {
			obs := d.ObjectObservations(ObjectID(o))
			count += len(obs)
			for _, ob := range obs {
				if ob.Object != ObjectID(o) {
					return false
				}
			}
			// Domain is exactly the distinct values observed, sorted.
			seen := map[ValueID]bool{}
			for _, ob := range obs {
				seen[ob.Value] = true
			}
			dom := d.Domain(ObjectID(o))
			if len(dom) != len(seen) {
				return false
			}
			for i := 1; i < len(dom); i++ {
				if dom[i] <= dom[i-1] {
					return false
				}
			}
		}
		if count != d.NumObservations() {
			return false
		}
		// Per-source index covers everything exactly once.
		count = 0
		for s := 0; s < d.NumSources(); s++ {
			for _, i := range d.SourceObservationIndices(SourceID(s)) {
				if d.Observations[i].Source != SourceID(s) {
					return false
				}
				count++
			}
		}
		return count == d.NumObservations()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickNoDuplicateSourceObjectPairs: single-truth semantics — a
// source asserts at most one value per object.
func TestQuickNoDuplicateSourceObjectPairs(t *testing.T) {
	f := func(pattern []byte) bool {
		d := buildFromPattern(pattern)
		seen := map[[2]int]bool{}
		for _, ob := range d.Observations {
			k := [2]int{int(ob.Source), int(ob.Object)}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickJSONRoundTripPreservesEverything: WriteJSON/ReadJSON is the
// identity on observations, features and truth.
func TestQuickJSONRoundTripPreservesEverything(t *testing.T) {
	f := func(pattern []byte, truthByte uint8) bool {
		d := buildFromPattern(pattern)
		truth := TruthMap{}
		if d.NumObjects() > 0 {
			o := ObjectID(int(truthByte) % d.NumObjects())
			if dom := d.Domain(o); len(dom) > 0 {
				truth[o] = dom[0]
			}
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, d, truth); err != nil {
			return false
		}
		d2, truth2, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if d2.NumObservations() != d.NumObservations() ||
			d2.NumSources() != d.NumSources() ||
			d2.NumObjects() != d.NumObjects() ||
			d2.NumFeatures() != d.NumFeatures() {
			return false
		}
		for i := range d.Observations {
			if d.Observations[i] != d2.Observations[i] {
				return false
			}
		}
		if len(truth) != len(truth2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitPartition: Split always partitions the gold labels.
func TestQuickSplitPartition(t *testing.T) {
	f := func(n uint8, fracByte uint8, seed int64) bool {
		gold := TruthMap{}
		for i := 0; i < int(n); i++ {
			gold[ObjectID(i)] = ValueID(i % 3)
		}
		frac := float64(fracByte) / 255
		train, test := Split(gold, frac, randx.New(seed))
		if len(train)+len(test) != len(gold) {
			return false
		}
		for o, v := range train {
			if test[o] == v && func() bool { _, ok := test[o]; return ok }() {
				return false
			}
			if gold[o] != v {
				return false
			}
		}
		for o, v := range test {
			if gold[o] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickRestrictSourcesSubset: restriction never invents
// observations and preserves the object/value id spaces.
func TestQuickRestrictSourcesSubset(t *testing.T) {
	f := func(pattern []byte, keepMask uint8) bool {
		d := buildFromPattern(pattern)
		var keep []SourceID
		for s := 0; s < d.NumSources(); s++ {
			if keepMask&(1<<(s%8)) != 0 {
				keep = append(keep, SourceID(s))
			}
		}
		sub, mapping, err := RestrictSources(d, keep)
		if err != nil {
			return false
		}
		if sub.NumObjects() != d.NumObjects() || sub.NumValues() != d.NumValues() {
			return false
		}
		if sub.NumObservations() > d.NumObservations() {
			return false
		}
		if len(mapping) != sub.NumSources() {
			return false
		}
		return sub.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
