package data

import (
	"fmt"

	"slimfast/internal/randx"
)

// Split partitions gold labels into a training TruthMap covering
// trainFrac of the labeled objects (chosen uniformly at random) and a
// test TruthMap with the rest. This mirrors the paper's evaluation
// protocol: TD% of objects are revealed as ground truth G and accuracy
// is measured on the remaining objects.
//
// trainFrac is clamped to [0, 1]. At least one training example is kept
// when trainFrac > 0 and gold is non-empty, matching the paper's
// smallest setting (TD = 0.1%).
func Split(gold TruthMap, trainFrac float64, rng *randx.RNG) (train, test TruthMap) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	objects := make([]ObjectID, 0, len(gold))
	for o := range gold {
		objects = append(objects, o)
	}
	// Map iteration order is nondeterministic; sort for reproducibility.
	sortObjectIDs(objects)
	rng.Shuffle(len(objects), func(i, j int) { objects[i], objects[j] = objects[j], objects[i] })

	nTrain := int(trainFrac * float64(len(objects)))
	if nTrain == 0 && trainFrac > 0 && len(objects) > 0 {
		nTrain = 1
	}
	train = make(TruthMap, nTrain)
	test = make(TruthMap, len(objects)-nTrain)
	for i, o := range objects {
		if i < nTrain {
			train[o] = gold[o]
		} else {
			test[o] = gold[o]
		}
	}
	return train, test
}

func sortObjectIDs(objects []ObjectID) {
	// Insertion-free sort via simple slice sort; ObjectIDs are ints.
	for i := 1; i < len(objects); i++ {
		for j := i; j > 0 && objects[j] < objects[j-1]; j-- {
			objects[j], objects[j-1] = objects[j-1], objects[j]
		}
	}
}

// RestrictSources returns a new dataset containing only the sources
// whose ids appear in keep (re-interned to dense ids), along with a
// mapping from new SourceID to old SourceID. Objects that lose all
// observations remain in the dataset with an empty domain. This supports
// the source-quality-initialization experiment (Figure 7), which trains
// on a subset of sources and predicts accuracies for the rest.
func RestrictSources(d *Dataset, keep []SourceID) (*Dataset, []SourceID, error) {
	inKeep := make(map[SourceID]bool, len(keep))
	for _, s := range keep {
		if s < 0 || int(s) >= d.NumSources() {
			return nil, nil, fmt.Errorf("data: RestrictSources: source %d out of range", s)
		}
		inKeep[s] = true
	}
	b := NewBuilder(d.Name + "/restricted")
	// Preserve object and value interning order so ObjectIDs and
	// ValueIDs remain comparable across the restriction.
	for _, name := range d.ObjectNames {
		b.Object(name)
	}
	for _, name := range d.ValueNames {
		b.Value(name)
	}
	// Preserve the feature id space too.
	for _, name := range d.FeatureNames {
		b.Feature(name)
	}
	var mapping []SourceID
	for s := 0; s < d.NumSources(); s++ {
		sid := SourceID(s)
		if !inKeep[sid] {
			continue
		}
		ns := b.Source(d.SourceNames[s])
		mapping = append(mapping, sid)
		for _, f := range d.SourceFeatures[s] {
			b.SetFeature(ns, d.FeatureNames[f])
		}
	}
	for _, ob := range d.Observations {
		if !inKeep[ob.Source] {
			continue
		}
		ns := b.Source(d.SourceNames[ob.Source])
		b.Observe(ns, ob.Object, ob.Value)
	}
	return b.Freeze(), mapping, nil
}
