package stream

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"slimfast/internal/core"
	"slimfast/internal/online"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
	"slimfast/internal/wire"
)

// featureStreamInstance builds a synthetic batch instance whose source
// accuracies are driven by informative domain features, shuffles it
// into a stream, and extracts the source → feature-label table the
// engine's Features option wants.
func featureStreamInstance(t testing.TB, seed int64) (*synth.Instance, [][3]string, map[string][]string) {
	t.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "online-stream", Sources: 40, Objects: 400, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.25,
		MeanAccuracy: 0.7, AccuracySD: 0.14, MinAccuracy: 0.45, MaxAccuracy: 0.95,
		Features: []synth.FeatureGroup{
			{Name: "grp", Cardinality: 5, Informative: true, WeightScale: 1.5},
			{Name: "noise", Cardinality: 4, Informative: false},
		},
		EnsureTruthObserved: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := inst.Dataset
	triples := make([][3]string, 0, ds.NumObservations())
	for _, ob := range ds.Observations {
		triples = append(triples, [3]string{
			ds.SourceNames[ob.Source], ds.ObjectNames[ob.Object], ds.ValueNames[ob.Value],
		})
	}
	rng := randx.New(seed + 1)
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })
	features := make(map[string][]string, ds.NumSources())
	for s := 0; s < ds.NumSources(); s++ {
		var labels []string
		for _, f := range ds.SourceFeatures[s] {
			labels = append(labels, ds.FeatureNames[f])
		}
		features[ds.SourceNames[s]] = labels
	}
	return inst, triples, features
}

// onlineOpts is the canonical feature-mode engine configuration the
// golden tests share.
func onlineOpts(features map[string][]string, workers int) EngineOptions {
	opts := DefaultEngineOptions()
	opts.Shards = 4
	opts.Workers = workers
	opts.EpochLength = 512
	opts.Features = features
	return opts
}

// ingestOnline streams the triples through a feature-mode engine with
// the canonical mixed call pattern of ingestEngine.
func ingestOnline(t testing.TB, triples [][3]string, features map[string][]string, workers int) *Engine {
	t.Helper()
	e, err := NewEngine(onlineOpts(features, workers))
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 700
	lo := 0
	for ; lo+chunk <= len(triples); lo += chunk {
		batch := make([]Triple, chunk)
		for i, tr := range triples[lo : lo+chunk] {
			batch[i] = Triple{tr[0], tr[1], tr[2]}
		}
		e.ObserveBatch(batch)
	}
	for _, tr := range triples[lo:] {
		e.Observe(tr[0], tr[1], tr[2])
	}
	return e
}

// TestGoldenOnlineMatchesBatchDiscriminativeFit is the acceptance gate
// for the online subsystem: on a frozen stream with features, the
// feature-aware engine's refined accuracies must land within tolerance
// of the batch core discriminative fit (EM + calibration over the same
// observations and feature table) — the streaming path absorbs the
// paper's feature model, not just agreement counting.
func TestGoldenOnlineMatchesBatchDiscriminativeFit(t *testing.T) {
	inst, triples, features := featureStreamInstance(t, 11)
	ds := inst.Dataset

	m, err := core.Compile(ds, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FitEM(nil); err != nil {
		t.Fatal(err)
	}
	batchAcc := m.SourceAccuracies()

	for _, workers := range []int{1, 4} {
		e := ingestOnline(t, triples, features, workers)
		e.Refine(4)
		var sumErr, maxErr float64
		for s := 0; s < ds.NumSources(); s++ {
			d := math.Abs(e.SourceAccuracy(ds.SourceNames[s]) - batchAcc[s])
			sumErr += d
			if d > maxErr {
				maxErr = d
			}
		}
		meanErr := sumErr / float64(ds.NumSources())
		t.Logf("workers=%d: mean gap %.4f, max gap %.4f", workers, meanErr, maxErr)
		if meanErr > 0.05 {
			t.Errorf("workers=%d: mean |engine - batch| accuracy gap = %.4f, want <= 0.05", workers, meanErr)
		}
		if maxErr > 0.15 {
			t.Errorf("workers=%d: max |engine - batch| accuracy gap = %.4f, want <= 0.15", workers, maxErr)
		}

		// The learner's feature-only predictions must also track the
		// batch model's PredictAccuracy — the unseen-source contract.
		var predErr float64
		for s := 0; s < ds.NumSources(); s++ {
			labels := features[ds.SourceNames[s]]
			predErr += math.Abs(e.PredictAccuracy(labels) - m.PredictAccuracy(labels))
		}
		mean := predErr / float64(ds.NumSources())
		t.Logf("workers=%d: mean feature-prediction gap %.4f", workers, mean)
		if mean > 0.12 {
			t.Errorf("workers=%d: mean |engine - batch| feature-prediction gap = %.4f, want <= 0.12", workers, mean)
		}
	}
}

// TestGoldenOnlineDeterministicAcrossWorkers: with features and the
// learner active, every posterior and accuracy is still bit-identical
// whether one goroutine ingests or eight.
func TestGoldenOnlineDeterministicAcrossWorkers(t *testing.T) {
	_, triples, features := featureStreamInstance(t, 12)
	base := engineFingerprint(ingestOnline(t, triples, features, 1))
	for _, workers := range []int{2, 4, 8} {
		if got := engineFingerprint(ingestOnline(t, triples, features, workers)); got != base {
			t.Errorf("workers=%d fingerprint %x != workers=1 %x", workers, got, base)
		}
	}
	e1 := ingestOnline(t, triples, features, 1)
	e1.Refine(3)
	e4 := ingestOnline(t, triples, features, 4)
	e4.Refine(3)
	if a, b := engineFingerprint(e1), engineFingerprint(e4); a != b {
		t.Errorf("post-Refine fingerprints differ: %x vs %x", a, b)
	}
}

// TestGoldenOnlineCheckpointAtEveryEpochBoundary drives the v2 format
// through the restart proof: ingest epoch-length batches, checkpoint
// and restore at every epoch boundary, keep ingesting on the restored
// engine — the final fingerprint (posteriors, accuracies, and the
// learner's future behavior) must be bit-identical to never stopping,
// for one worker and four.
func TestGoldenOnlineCheckpointAtEveryEpochBoundary(t *testing.T) {
	_, triples, features := featureStreamInstance(t, 13)
	const epoch = 512
	feed := func(e *Engine, lo, hi int) {
		batch := make([]Triple, 0, epoch)
		for _, tr := range triples[lo:hi] {
			batch = append(batch, Triple{tr[0], tr[1], tr[2]})
		}
		e.ObserveBatch(batch)
	}
	for _, workers := range []int{1, 4} {
		uninterrupted, err := NewEngine(onlineOpts(features, workers))
		if err != nil {
			t.Fatal(err)
		}
		restored, err := NewEngine(onlineOpts(features, workers))
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(triples); lo += epoch {
			hi := lo + epoch
			if hi > len(triples) {
				hi = len(triples)
			}
			feed(uninterrupted, lo, hi)
			feed(restored, lo, hi)
			// Bounce the restored engine through the v2 codec at this
			// epoch boundary.
			var buf bytes.Buffer
			if err := restored.WriteCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}
			if restored, err = Restore(&buf); err != nil {
				t.Fatal(err)
			}
		}
		if a, b := engineFingerprint(uninterrupted), engineFingerprint(restored); a != b {
			t.Fatalf("workers=%d: restored-at-every-boundary fingerprint %x != uninterrupted %x", workers, a, b)
		}
		// The exact re-sweep retrains the learner; it must stay in
		// lockstep too.
		uninterrupted.Refine(2)
		restored.Refine(2)
		if a, b := engineFingerprint(uninterrupted), engineFingerprint(restored); a != b {
			t.Errorf("workers=%d: post-Refine fingerprints differ: %x vs %x", workers, a, b)
		}
		for _, src := range uninterrupted.Sources() {
			wa, wl, we, wok := uninterrupted.SourceAccuracyDetail(src)
			ga, gl, ge, gok := restored.SourceAccuracyDetail(src)
			if wok != gok || wa != ga || wl != gl || we != ge {
				t.Fatalf("workers=%d: source %s detail diverged after restore", workers, src)
			}
		}
	}
}

// TestOnlineV1CheckpointStillRestores pins backward compatibility: a
// minimal format-v1 stream (the PR 4 layout, no online section) must
// restore into a working agreement-only engine.
func TestOnlineV1CheckpointStillRestores(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf, checkpointMagic, checkpointVersionV1)
	opts := DefaultEngineOptions()
	opts.Shards = 1
	opts.EpochLength = 8
	// v1 options block: the seven scalar fields only.
	w.Float64(opts.InitAccuracy)
	w.Float64(opts.PriorStrength)
	w.Float64(opts.Decay)
	w.Int(opts.Shards)
	w.Int(opts.Workers)
	w.Int(opts.EpochLength)
	w.Int(opts.MaxObjects)
	w.Int64(0) // nObs
	w.Int64(0) // sinceEp
	w.Strings(nil)
	w.Float64s(nil)
	w.Float64s(nil)
	w.Float64s(nil)
	w.Float64s(nil)
	w.Int64(0)
	w.Strings(nil)
	w.Uint32(1) // one shard record
	w.Uint32(0) // tag
	w.Uint32(0) // no objects
	w.Ints(nil)
	w.Ints(nil)
	w.Int(-1)
	w.Int(-1)
	w.Float64s(nil)
	w.Float64s(nil)
	w.Int64s(nil)
	w.Float64s(nil)
	w.Float64s(nil)
	w.Int64(0)
	w.Int64(0)
	w.Float64(0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	e, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 checkpoint failed to restore: %v", err)
	}
	if e.OnlineLearning() {
		t.Error("v1 checkpoint must restore as an agreement-only engine")
	}
	e.Observe("s1", "o", "a")
	if v, _, ok := e.Value("o"); !ok || v != "a" {
		t.Errorf("restored v1 engine broken: Value = %q (%v)", v, ok)
	}
}

// TestOnlineEngineAdaptsToCohortDrift is the drift story at engine
// level: a cohort of sources sharing a feature degrades mid-stream;
// the feature-aware engine pulls the whole cohort's accuracy down
// within a few epochs, while the agreement-only engine stays anchored
// on the long good history.
func TestOnlineEngineAdaptsToCohortDrift(t *testing.T) {
	const (
		nPer      = 4
		epochLen  = 256
		preEpochs = 8
		postEp    = 4
	)
	features := map[string][]string{}
	var sources []string
	for i := 0; i < nPer; i++ {
		good := fmt.Sprintf("steady%d", i)
		bad := fmt.Sprintf("drifty%d", i)
		features[good] = []string{"feed=alpha"}
		features[bad] = []string{"feed=beta"}
		sources = append(sources, good, bad)
	}
	mkEngine := func(online bool) *Engine {
		opts := DefaultEngineOptions()
		opts.Shards = 2
		opts.EpochLength = epochLen
		if online {
			opts.Features = features
			opts.Learn = onlineTestLearnConfig()
		}
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	featured, plain := mkEngine(true), mkEngine(false)
	rng := randx.New(99)
	obj := 0
	phase := func(epochs int, driftyAcc float64) {
		for n := 0; n < epochs*epochLen/(2*nPer); n++ {
			name := fmt.Sprintf("o%05d", obj)
			obj++
			truth := fmt.Sprintf("v%d", rng.Intn(3))
			wrong := fmt.Sprintf("w%d", rng.Intn(3))
			for i := 0; i < nPer; i++ {
				featured.Observe(sources[2*i], name, truth)
				plain.Observe(sources[2*i], name, truth)
				v := truth
				if !rng.Bernoulli(driftyAcc) {
					v = wrong
				}
				featured.Observe(sources[2*i+1], name, v)
				plain.Observe(sources[2*i+1], name, v)
			}
		}
	}
	phase(preEpochs, 0.95) // long good history for the beta cohort
	phase(postEp, 0.1)     // then the whole cohort goes bad

	var featErr, plainErr float64
	for i := 0; i < nPer; i++ {
		name := sources[2*i+1]
		featErr += math.Abs(featured.SourceAccuracy(name) - 0.1)
		plainErr += math.Abs(plain.SourceAccuracy(name) - 0.1)
	}
	featErr /= nPer
	plainErr /= nPer
	if featErr >= plainErr-0.05 {
		t.Errorf("feature-aware drift tracking error %.3f should beat agreement-only %.3f", featErr, plainErr)
	}
}

// onlineTestLearnConfig is a short-window learner for drift tests.
func onlineTestLearnConfig() online.Config {
	cfg := online.DefaultConfig()
	cfg.WindowEpochs = 4
	return cfg
}

// TestSourceAccuracyDetailAndPredict covers the reporting accessors.
func TestSourceAccuracyDetailAndPredict(t *testing.T) {
	_, triples, features := featureStreamInstance(t, 14)
	e := ingestOnline(t, triples, features, 2)
	if !e.OnlineLearning() {
		t.Fatal("engine should report online learning")
	}
	seen := 0
	for _, src := range e.Sources() {
		acc, learned, empirical, ok := e.SourceAccuracyDetail(src)
		if !ok {
			t.Fatalf("known source %s has no detail", src)
		}
		for _, v := range []float64{acc, learned, empirical} {
			if v <= 0 || v >= 1 {
				t.Fatalf("source %s detail out of range: %v/%v/%v", src, acc, learned, empirical)
			}
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("no sources seen")
	}
	if _, _, _, ok := e.SourceAccuracyDetail("never-seen"); ok {
		t.Error("unknown source should report !ok")
	}
	// A plain engine reports neither detail nor predictions.
	plain, _ := NewEngine(DefaultEngineOptions())
	if _, _, _, ok := plain.SourceAccuracyDetail("x"); ok {
		t.Error("agreement-only engine should have no detail")
	}
	if got := plain.PredictAccuracy([]string{"f"}); got != DefaultEngineOptions().InitAccuracy {
		t.Errorf("plain PredictAccuracy = %v, want the prior", got)
	}
}
