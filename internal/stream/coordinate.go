// Cluster-coordination primitives: the engine-side half of the
// consistent-hash scale-out mode (internal/cluster, `slimfast
// router`). A cluster of N single-shard engines behind a router that
// partitions objects with the engine's own FNV hash is the in-process
// shard pattern lifted one level up — and these methods expose exactly
// the three shard-level moves an epoch needs, without performing the
// global fold locally:
//
//   - DrainDeltas hands the router this engine's settled evidence
//     deltas since the last drain (the shard.drain fold, by name).
//   - RefineMass hands the router one Refine sweep's exact per-source
//     posterior mass (the parts stage of Engine.Refine, by name).
//   - ApplyAccuracies installs the router's globally merged accuracy
//     table as the new frozen σ-table and bumps the epoch — the
//     σ-recompute half of refreshLocked, with the numbers computed
//     elsewhere.
//
// The router performs the cross-engine fold in fixed node order, the
// same way refreshLocked folds shards in shard order, so the float
// accumulation order — and therefore every posterior bit — matches a
// single engine whose shards are the cluster's nodes.
package stream

import (
	"errors"
	"fmt"
	"math"

	"slimfast/internal/mathx"
	"slimfast/internal/parallel"
)

// ExternalEpochLength is the EpochLength sentinel for engines whose
// epochs are driven externally (cluster members): local refresh would
// need this many observations between barriers to fire, and both
// DrainDeltas and RefineMass reset the counter, so it never does. The
// value fits an int32 so checkpoints stay portable.
const ExternalEpochLength = 1<<31 - 1

// ExternalEpochs reports whether this engine defers epoch refreshes to
// an external coordinator (it was built or restored with
// EpochLength >= ExternalEpochLength).
func (e *Engine) ExternalEpochs() bool { return e.epochLen >= ExternalEpochLength }

// ShardIndex routes an object name to a partition in [0, n) — the same
// FNV-1a hash the engine's own shards use, exported so the cluster
// router partitions objects across nodes exactly as one engine with n
// shards would partition them internally.
func ShardIndex(object string, n int) int { return int(fnvHash(object)) % n }

// EstimateAccuracy is the engine's smoothed empirical accuracy
// estimate — clamp((InitAccuracy·PriorStrength + agree) /
// (PriorStrength + total)) — exported so the cluster router computes
// accuracies from globally merged evidence with bit-identical math.
func (o Options) EstimateAccuracy(agree, total float64) float64 {
	return smoothedAccuracy(o, agree, total)
}

// SourceStat is one source's contribution in a coordination exchange,
// keyed by name because interned ids diverge across engines.
type SourceStat struct {
	Source       string  `json:"source"`
	Agree        float64 `json:"agree"`
	Total        float64 `json:"total"`
	Observations int64   `json:"observations,omitempty"`
}

// SourceAccuracy is one entry of a coordinator-pushed accuracy table.
type SourceAccuracy struct {
	Source   string  `json:"source"`
	Accuracy float64 `json:"accuracy"`
}

// ErrOnlineUnsupported gates the coordination API off engines running
// the online learner: its σ-table comes from feature weights, not the
// agreement fold, so a remote coordinator cannot reproduce it.
var ErrOnlineUnsupported = errors.New("stream: cluster coordination is not supported with the online learner")

// DrainDeltas drains every shard in shard order and returns the merged
// settled-evidence deltas since the last drain, without folding them
// into this engine's own cumulative state or touching its σ-table —
// that is the coordinator's job. The per-shard delta vectors are
// zeroed and the epoch observation counter resets, exactly like the
// drain half of an epoch refresh.
func (e *Engine) DrainDeltas() ([]SourceStat, error) {
	if e.learner != nil {
		return nil, ErrOnlineUnsupported
	}
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	e.sinceEp.Store(0)
	agree := e.mergeAgree[:0]
	total := e.mergeTotal[:0]
	obs := e.mergeObs[:0]
	// Shard order fixes the float accumulation order, as in
	// refreshLocked: the coordinator continues the same ordered
	// reduction across engines.
	for s := range e.shards {
		e.shards[s].drain(func(da, dt []float64, oc []int64) {
			for len(agree) < len(da) {
				agree = append(agree, 0)
				total = append(total, 0)
				obs = append(obs, 0)
			}
			for i := range da {
				agree[i] += da[i]
				total[i] += dt[i]
				obs[i] += oc[i]
			}
		})
	}
	e.mergeAgree, e.mergeTotal, e.mergeObs = agree, total, obs
	names := e.sourceNames()
	out := make([]SourceStat, len(agree))
	for i := range agree {
		out[i] = SourceStat{Source: names[i], Agree: agree[i], Total: total[i], Observations: obs[i]}
	}
	return out, nil
}

// RefineMass recomputes, under the current posteriors, the exact
// per-source agreement mass one Refine sweep would pool: evicted mass
// as the irreducible base plus every live claim's posterior, merged
// across shards in shard order. Settled marks move to the summed
// posteriors and the delta vectors are zeroed, exactly as in
// Engine.Refine, so later drains stay consistent with the coordinator
// state rebuilt from this mass. The caller is expected to follow with
// ApplyAccuracies(..., rescore=true) once the cluster-wide merge is
// done.
func (e *Engine) RefineMass() ([]SourceStat, error) {
	if e.learner != nil {
		return nil, ErrOnlineUnsupported
	}
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	type mass struct{ agree, total []float64 }
	parts := parallel.Map(e.nShards, e.opts.Workers, func(s int) mass {
		sh := &e.shards[s]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		m := mass{
			agree: make([]float64, len(sh.evictedAgree)),
			total: make([]float64, len(sh.evictedTotal)),
		}
		copy(m.agree, sh.evictedAgree)
		copy(m.total, sh.evictedTotal)
		grow := func(sid int32) {
			for len(m.agree) <= int(sid) {
				m.agree = append(m.agree, 0)
				m.total = append(m.total, 0)
			}
		}
		for ix := range sh.objs {
			obj := &sh.objs[ix]
			if !obj.live {
				continue
			}
			for i := range obj.claims {
				c := &obj.claims[i]
				p := obj.post[obj.domainIndex(c.val)]
				grow(c.src)
				m.agree[c.src] += p
				m.total[c.src]++
				c.settled = p
			}
			obj.dirty = false
		}
		sh.dirtyIx = sh.dirtyIx[:0]
		for i := range sh.deltaAgree {
			sh.deltaAgree[i] = 0
			sh.deltaTotal[i] = 0
			sh.obsCount[i] = 0
		}
		return m
	})
	n := 0
	for _, m := range parts {
		if len(m.agree) > n {
			n = len(m.agree)
		}
	}
	e.sinceEp.Store(0)
	names := e.sourceNames()
	out := make([]SourceStat, n)
	for s := 0; s < n; s++ {
		var a, t float64
		for _, m := range parts { // shard order: deterministic
			if s < len(m.agree) {
				a += m.agree[s]
				t += m.total[s]
			}
		}
		out[s] = SourceStat{Source: names[s], Agree: a, Total: t}
	}
	return out, nil
}

// ApplyAccuracies installs a coordinator-computed accuracy table: each
// named source's accuracy and σ = logit(accuracy) are set, unknown
// names are interned (a claim for them may arrive here later, and it
// must be scored with the global σ, exactly as it would be in a single
// engine where interning is global), and the epoch is bumped so every
// object lazily rescores on its next touch. With rescore set, every
// live object is rescored eagerly and marked dirty — the re-sweep half
// of Engine.Refine.
func (e *Engine) ApplyAccuracies(accs []SourceAccuracy, rescore bool) error {
	if e.learner != nil {
		return ErrOnlineUnsupported
	}
	for _, a := range accs {
		if a.Source == "" {
			return errors.New("stream: apply accuracies: empty source name")
		}
		if math.IsNaN(a.Accuracy) || a.Accuracy <= 0 || a.Accuracy >= 1 {
			return fmt.Errorf("stream: apply accuracies: source %q accuracy %v outside (0,1)", a.Source, a.Accuracy)
		}
	}
	e.refreshMu.Lock()
	defer e.refreshMu.Unlock()
	e.src.mu.Lock()
	for _, a := range accs {
		id, ok := e.src.ids[a.Source]
		if !ok {
			id = len(e.src.names)
			e.src.ids[a.Source] = id
			e.src.names = append(e.src.names, a.Source)
			e.src.agree = append(e.src.agree, 0)
			e.src.total = append(e.src.total, 0)
			e.src.acc = append(e.src.acc, 0)
			e.src.sigma = append(e.src.sigma, 0)
		}
		e.src.acc[id] = a.Accuracy
		e.src.sigma[id] = mathx.Logit(a.Accuracy)
	}
	e.src.epoch++
	epoch := e.src.epoch
	e.src.mu.Unlock()
	if rescore {
		parallel.For(e.nShards, e.opts.Workers, func(s int) {
			sh := &e.shards[s]
			sh.mu.Lock()
			for ix := range sh.objs {
				obj := &sh.objs[ix]
				if !obj.live {
					continue
				}
				sh.rescore(e, obj, epoch)
				if !obj.dirty {
					obj.dirty = true
					sh.dirtyIx = append(sh.dirtyIx, ix)
				}
			}
			sh.mu.Unlock()
		})
	}
	return nil
}
