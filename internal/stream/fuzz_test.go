package stream

import (
	"bytes"
	"testing"
)

// fuzzCheckpoint builds a small valid checkpoint to seed the corpus.
func fuzzCheckpoint() []byte {
	opts := DefaultEngineOptions()
	opts.Shards = 2
	opts.EpochLength = 16
	opts.DedupWindow = 8
	e, err := NewEngine(opts)
	if err != nil {
		panic(err)
	}
	e.Observe("s1", "o1", "a")
	e.Observe("s2", "o1", "b")
	e.Observe("s1", "o2", "a")
	e.MarkSeq("seed-batch-0")
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzRestore feeds arbitrary bytes to the checkpoint decoder: it
// must never panic or over-allocate, and anything it does accept must
// be a live engine whose re-checkpoint round-trips.
func FuzzRestore(f *testing.F) {
	seed := fuzzCheckpoint()
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped) // checksum breaker
	f.Add([]byte("SFCK"))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Restore(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must function: stats, estimates, and a
		// re-checkpoint that itself restores.
		_ = e.Stats()
		var buf bytes.Buffer
		if err := e.WriteCheckpoint(&buf); err != nil {
			t.Fatalf("restored engine cannot re-checkpoint: %v", err)
		}
		if _, err := Restore(&buf); err != nil {
			t.Fatalf("re-checkpoint does not restore: %v", err)
		}
	})
}
