package stream

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// testEngineOptions pins the knobs that affect float accumulation
// order so tests are reproducible on any host.
func testEngineOptions() EngineOptions {
	opts := DefaultEngineOptions()
	opts.Shards = 4
	opts.Workers = 2
	opts.EpochLength = 256
	return opts
}

func TestEngineOptionsValidate(t *testing.T) {
	bad := testEngineOptions()
	bad.InitAccuracy = 0
	if _, err := NewEngine(bad); err == nil {
		t.Error("invalid embedded Options should be rejected")
	}
	bad = testEngineOptions()
	bad.MaxObjects = -1
	if _, err := NewEngine(bad); err == nil {
		t.Error("negative MaxObjects should be rejected")
	}
	if _, err := NewEngine(DefaultEngineOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineBasicVoting(t *testing.T) {
	e, err := NewEngine(testEngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	e.Observe("s1", "o", "a")
	e.Observe("s2", "o", "a")
	e.Observe("s3", "o", "b")
	v, conf, ok := e.Value("o")
	if !ok || v != "a" {
		t.Fatalf("Value = %q (%v), want a", v, ok)
	}
	if conf <= 0.5 || conf > 1 {
		t.Errorf("confidence = %v", conf)
	}
	if _, _, ok := e.Value("nope"); ok {
		t.Error("unknown object should be !ok")
	}
	st := e.Stats()
	if st.Sources != 3 || st.Objects != 1 || st.Observations != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineZeroObservationState(t *testing.T) {
	e, _ := NewEngine(testEngineOptions())
	if _, _, ok := e.Value("ghost"); ok {
		t.Error("empty engine should know no objects")
	}
	if got := len(e.Estimates()); got != 0 {
		t.Errorf("empty engine Estimates = %d entries", got)
	}
	if acc := e.SourceAccuracy("ghost"); acc != e.opts.InitAccuracy {
		t.Errorf("unknown source accuracy = %v, want prior", acc)
	}
	e.Refine(2) // must not panic on an empty engine
	ds, est := e.Snapshot("empty")
	if ds.NumObservations() != 0 || len(est) != 0 {
		t.Error("empty snapshot should be empty")
	}
}

func TestEngineSingleSourceConflict(t *testing.T) {
	// One source re-claiming conflicting values for the same object:
	// single-truth semantics replace the claim, never stack it.
	e, _ := NewEngine(testEngineOptions())
	e.Observe("s1", "o", "a")
	e.Observe("s1", "o", "b")
	e.Observe("s1", "o", "a")
	v, conf, ok := e.Value("o")
	if !ok || v != "a" {
		t.Fatalf("Value = %q (%v), want a", v, ok)
	}
	if math.Abs(conf-1) > 1e-12 {
		t.Errorf("single-claimant posterior = %v, want 1", conf)
	}
	st := e.Stats()
	if st.Objects != 1 || st.Observations != 3 {
		t.Errorf("stats = %+v", st)
	}
	// The same-value re-assertion path must also hold after an epoch
	// turnover (rescore + delta path).
	e.Refine(1)
	if v, _, _ := e.Value("o"); v != "a" {
		t.Errorf("after Refine: %q", v)
	}
}

func TestEngineRefineZeroSweepsIsNoOp(t *testing.T) {
	_, triples := streamInstance(t, 21)
	e, _ := NewEngine(testEngineOptions())
	for _, tr := range triples {
		e.Observe(tr[0], tr[1], tr[2])
	}
	before := engineFingerprint(e)
	e.Refine(0)
	e.Refine(-3)
	if got := engineFingerprint(e); got != before {
		t.Errorf("Refine(<=0) changed state: %x -> %x", before, got)
	}
}

func TestEngineAccuraciesSeparateGoodFromBad(t *testing.T) {
	opts := testEngineOptions()
	opts.EpochLength = 32 // force several σ refreshes
	e, _ := NewEngine(opts)
	for i := 0; i < 50; i++ {
		o := fmt.Sprintf("o%d", i)
		e.Observe("good", o, "t")
		e.Observe("peer1", o, "t")
		e.Observe("peer2", o, "t")
		e.Observe("bad", o, "w")
	}
	e.Refine(1)
	if g, b := e.SourceAccuracy("good"), e.SourceAccuracy("bad"); g <= b+0.3 {
		t.Errorf("good %.2f should clearly exceed bad %.2f", g, b)
	}
}

// TestEngineAgreementConsistency: after a refresh, the settled global
// agreement mass must equal a from-scratch recomputation over live
// posteriors plus the retained evicted mass.
func TestEngineAgreementConsistency(t *testing.T) {
	_, triples := streamInstance(t, 22)
	opts := testEngineOptions()
	opts.EpochLength = 1 // settle after every observation
	e, _ := NewEngine(opts)
	for _, tr := range triples {
		e.Observe(tr[0], tr[1], tr[2])
	}
	n := len(e.src.names)
	agree := make([]float64, n)
	total := make([]float64, n)
	for s := range e.shards {
		sh := &e.shards[s]
		for i := range agree {
			if i < len(sh.evictedAgree) {
				agree[i] += sh.evictedAgree[i]
				total[i] += sh.evictedTotal[i]
			}
		}
		for ix := range sh.objs {
			obj := &sh.objs[ix]
			if !obj.live {
				continue
			}
			for ci := range obj.claims {
				c := &obj.claims[ci]
				agree[c.src] += obj.post[obj.domainIndex(c.val)]
				total[c.src]++
			}
		}
	}
	for s := 0; s < n; s++ {
		if math.Abs(agree[s]-e.src.agree[s]) > 1e-6 || math.Abs(total[s]-e.src.total[s]) > 1e-6 {
			t.Fatalf("source %s: settled (%.4f,%.1f) vs recomputed (%.4f,%.1f)",
				e.src.names[s], e.src.agree[s], e.src.total[s], agree[s], total[s])
		}
	}
}

func TestEngineEviction(t *testing.T) {
	opts := testEngineOptions()
	opts.MaxObjects = 40
	opts.EpochLength = 64
	e, _ := NewEngine(opts)
	// 400 objects, each corroborated by two good sources and disputed
	// by one bad one.
	for i := 0; i < 400; i++ {
		o := fmt.Sprintf("o%03d", i)
		e.Observe("goodA", o, "t")
		e.Observe("goodB", o, "t")
		e.Observe("bad", o, "w")
	}
	st := e.Stats()
	if st.Objects > opts.MaxObjects+e.nShards {
		t.Errorf("live objects = %d, want <= cap %d (plus shard rounding)", st.Objects, opts.MaxObjects)
	}
	if st.EvictedObjects == 0 || st.EvictedClaims == 0 || st.EvictedMass <= 0 {
		t.Errorf("eviction accounting empty: %+v", st)
	}
	if st.EvictedClaims != 3*st.EvictedObjects {
		t.Errorf("evicted claims = %d, want 3 per object (%d objects)", st.EvictedClaims, st.EvictedObjects)
	}
	// Early objects are gone; late ones remain.
	if _, _, ok := e.Value("o000"); ok {
		t.Error("o000 should have been evicted")
	}
	if v, _, ok := e.Value("o399"); !ok || v != "t" {
		t.Errorf("o399 = %q (%v), want t", v, ok)
	}
	// The evicted mass keeps informing reliability: even after the
	// exact re-sweep, the good sources stay clearly above the bad one.
	e.Refine(2)
	if g, b := e.SourceAccuracy("goodA"), e.SourceAccuracy("bad"); g <= b+0.3 {
		t.Errorf("evicted mass lost: good %.2f vs bad %.2f", g, b)
	}
	if len(e.Estimates()) != e.Stats().Objects {
		t.Error("Estimates should cover exactly the live objects")
	}
}

func TestEngineDecayTracksDriftingSource(t *testing.T) {
	opts := testEngineOptions()
	opts.Decay = 0.95
	opts.EpochLength = 16
	e, _ := NewEngine(opts)
	for i := 0; i < 60; i++ {
		o := fmt.Sprintf("p1-%d", i)
		e.Observe("drift", o, "t")
		e.Observe("peerA", o, "t")
		e.Observe("peerB", o, "t")
	}
	accEarly := e.SourceAccuracy("drift")
	for i := 0; i < 60; i++ {
		o := fmt.Sprintf("p2-%d", i)
		e.Observe("drift", o, "w")
		e.Observe("peerA", o, "t")
		e.Observe("peerB", o, "t")
	}
	if accLate := e.SourceAccuracy("drift"); accLate >= accEarly-0.2 {
		t.Errorf("decayed accuracy should fall after drift: %.2f -> %.2f", accEarly, accLate)
	}
}

func TestEngineSnapshotRoundTrip(t *testing.T) {
	e, _ := NewEngine(testEngineOptions())
	e.Observe("s1", "o1", "a")
	e.Observe("s2", "o1", "a")
	e.Observe("s1", "o2", "b")
	ds, est := e.Snapshot("snap")
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.NumObservations() != 3 || ds.NumSources() != 2 || ds.NumObjects() != 2 {
		t.Errorf("snapshot shape wrong: %d obs, %d src, %d obj",
			ds.NumObservations(), ds.NumSources(), ds.NumObjects())
	}
	if len(est) != 2 {
		t.Errorf("snapshot estimates = %d, want 2", len(est))
	}
}

// TestEngineConcurrentReadsDuringIngest hammers the read API while a
// writer streams batches and refines; run under -race this is the
// concurrency-safety proof for the serving contract.
func TestEngineConcurrentReadsDuringIngest(t *testing.T) {
	_, triples := streamInstance(t, 23)
	opts := testEngineOptions()
	opts.EpochLength = 128
	opts.MaxObjects = 300
	e, _ := NewEngine(opts)
	batch := make([]Triple, 0, len(triples))
	for _, tr := range triples {
		batch = append(batch, Triple{tr[0], tr[1], tr[2]})
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				e.Value(triples[r*7%len(triples)][1])
				e.SourceAccuracy(triples[r*11%len(triples)][0])
				e.Estimates()
				e.Stats()
			}
		}(r)
	}
	const chunk = 512
	for lo := 0; lo < len(batch); lo += chunk {
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		e.ObserveBatch(batch[lo:hi])
	}
	e.Refine(2)
	close(done)
	wg.Wait()
	if len(e.Estimates()) == 0 {
		t.Error("no estimates after concurrent ingest")
	}
}

// TestEngineConcurrentObserveWithFreshSources hammers the crash path
// the epoch refresh and Refine must survive: multiple goroutines
// interning brand-new sources while refreshes fire every few
// observations and a refiner runs concurrently. Any stale
// source-count snapshot inside refresh/Refine panics here.
func TestEngineConcurrentObserveWithFreshSources(t *testing.T) {
	opts := testEngineOptions()
	opts.EpochLength = 8 // refresh constantly
	e, _ := NewEngine(opts)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				// Every observation introduces a new source name.
				src := fmt.Sprintf("s-%d-%d", w, i)
				obj := fmt.Sprintf("o%d", i%40)
				e.Observe(src, obj, fmt.Sprintf("v%d", i%3))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			e.Refine(1)
		}
	}()
	wg.Wait()
	e.Refine(1)
	st := e.Stats()
	if st.Sources != 4*300 || st.Observations != 4*300 {
		t.Errorf("stats = %+v, want 1200 sources and observations", st)
	}
	if len(e.Estimates()) != 40 {
		t.Errorf("objects = %d, want 40", len(e.Estimates()))
	}
}
