package stream

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"testing"
)

// engineFingerprint hashes the exact bit patterns of every live
// posterior (objects sorted by name, domain entries sorted by value
// name) and every source accuracy (sources sorted by name). Two
// engines with the same fingerprint agree bit for bit.
func engineFingerprint(e *Engine) uint64 {
	h := fnv.New64a()
	var b8 [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(b8[:], u)
		h.Write(b8[:])
	}
	type entry struct {
		name string
		post map[string]float64
	}
	var objs []entry
	for s := range e.shards {
		sh := &e.shards[s]
		for ix := range sh.objs {
			obj := &sh.objs[ix]
			if !obj.live {
				continue
			}
			post := make(map[string]float64, len(obj.domain))
			for i, v := range obj.domain {
				post[e.vals.names[v]] = obj.post[i]
			}
			objs = append(objs, entry{obj.name, post})
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].name < objs[j].name })
	for _, o := range objs {
		h.Write([]byte(o.name))
		vals := make([]string, 0, len(o.post))
		for v := range o.post {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			h.Write([]byte(v))
			put(math.Float64bits(o.post[v]))
		}
	}
	srcs := append([]string(nil), e.src.names...)
	sort.Strings(srcs)
	for _, s := range srcs {
		h.Write([]byte(s))
		put(math.Float64bits(e.src.acc[e.src.ids[s]]))
	}
	return h.Sum64()
}

// ingestEngine streams the triples into a fresh engine with the given
// worker count using the canonical mixed call pattern: batches of 700
// via ObserveBatch, the remainder one Observe at a time. The pattern
// is fixed so epoch boundaries are identical across worker counts.
func ingestEngine(t *testing.T, triples [][3]string, workers int) *Engine {
	t.Helper()
	opts := DefaultEngineOptions()
	opts.Shards = 4
	opts.Workers = workers
	opts.EpochLength = 512
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 700
	lo := 0
	for ; lo+chunk <= len(triples); lo += chunk {
		batch := make([]Triple, chunk)
		for i, tr := range triples[lo : lo+chunk] {
			batch[i] = Triple{tr[0], tr[1], tr[2]}
		}
		e.ObserveBatch(batch)
	}
	for _, tr := range triples[lo:] {
		e.Observe(tr[0], tr[1], tr[2])
	}
	return e
}

// TestGoldenEngineMatchesSeedFuser is the acceptance gate for the
// sharded engine: after the exact re-sweep, its estimates must be
// bit-identical to the sequential seed Fuser's — for one worker and
// for four — and its source accuracies must sit at the same fixed
// point.
func TestGoldenEngineMatchesSeedFuser(t *testing.T) {
	const sweeps = 4
	inst, triples := streamInstance(t, 7)
	f, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range triples {
		f.Observe(tr[0], tr[1], tr[2])
	}
	f.Refine(sweeps)
	want := f.Estimates()

	for _, workers := range []int{1, 4} {
		e := ingestEngine(t, triples, workers)
		e.Refine(sweeps)
		got := e.Estimates()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d estimates, seed fuser has %d", workers, len(got), len(want))
		}
		for o, v := range want {
			if got[o] != v {
				t.Errorf("workers=%d: object %s = %q, seed fuser says %q", workers, o, got[o], v)
			}
		}
		for s := 0; s < inst.Dataset.NumSources(); s++ {
			name := inst.Dataset.SourceNames[s]
			if d := math.Abs(e.SourceAccuracy(name) - f.SourceAccuracy(name)); d > 5e-3 {
				t.Errorf("workers=%d: source %s accuracy off by %.2g", workers, name, d)
			}
		}
	}
}

// TestGoldenEngineDeterministicAcrossWorkers proves the stronger
// claim: for a fixed shard count and call pattern, every posterior and
// accuracy is bit-identical whether one goroutine ingests or four.
func TestGoldenEngineDeterministicAcrossWorkers(t *testing.T) {
	_, triples := streamInstance(t, 8)
	base := engineFingerprint(ingestEngine(t, triples, 1))
	for _, workers := range []int{2, 4, 8} {
		if got := engineFingerprint(ingestEngine(t, triples, workers)); got != base {
			t.Errorf("workers=%d fingerprint %x != workers=1 %x", workers, got, base)
		}
	}
	// And the exact re-sweep preserves the property.
	e1 := ingestEngine(t, triples, 1)
	e1.Refine(3)
	e4 := ingestEngine(t, triples, 4)
	e4.Refine(3)
	if a, b := engineFingerprint(e1), engineFingerprint(e4); a != b {
		t.Errorf("post-Refine fingerprints differ: %x vs %x", a, b)
	}
}

// TestGoldenFuserRefineRunToRunDeterministic guards the satellite fix:
// the seed Fuser's Refine must accumulate in sorted object order, so
// two identical runs agree bit for bit despite Go's randomized map
// iteration.
func TestGoldenFuserRefineRunToRunDeterministic(t *testing.T) {
	_, triples := streamInstance(t, 9)
	run := func() uint64 {
		f, _ := New(DefaultOptions())
		for _, tr := range triples {
			f.Observe(tr[0], tr[1], tr[2])
		}
		f.Refine(3)
		h := fnv.New64a()
		var b8 [8]byte
		names := f.sortedObjectNames()
		for _, name := range names {
			obj := f.objects[name]
			vals := make([]string, 0, len(obj.posterior))
			for v := range obj.posterior {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			h.Write([]byte(name))
			for _, v := range vals {
				h.Write([]byte(v))
				binary.LittleEndian.PutUint64(b8[:], math.Float64bits(obj.posterior[v]))
				h.Write(b8[:])
			}
		}
		srcs := make([]string, 0, len(f.sources))
		for s := range f.sources {
			srcs = append(srcs, s)
		}
		sort.Strings(srcs)
		for _, s := range srcs {
			h.Write([]byte(s))
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(f.SourceAccuracy(s)))
			h.Write(b8[:])
		}
		return h.Sum64()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("seed Fuser Refine is run-to-run nondeterministic: %x vs %x", a, b)
	}
}

// TestEngineApproximatesBatchAccuracy mirrors the seed quality test:
// the sharded engine's single-pass estimates must reach the same
// accuracy bar on the synthetic workload.
func TestEngineApproximatesBatchAccuracy(t *testing.T) {
	inst, triples := streamInstance(t, 7)
	e := ingestEngine(t, triples, 4)
	e.Refine(2)
	ds := inst.Dataset
	correct, total := 0, 0
	for o, truth := range inst.Gold {
		v, _, ok := e.Value(ds.ObjectNames[o])
		if !ok {
			continue
		}
		total++
		if v == ds.ValueNames[truth] {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("engine accuracy = %.3f, want >= 0.9", acc)
	}
}
