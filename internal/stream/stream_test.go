package stream

import (
	"fmt"
	"math"
	"testing"

	"slimfast/internal/data"
	"slimfast/internal/randx"
	"slimfast/internal/synth"
)

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{InitAccuracy: 0, PriorStrength: 1, Decay: 1},
		{InitAccuracy: 1, PriorStrength: 1, Decay: 1},
		{InitAccuracy: 0.7, PriorStrength: -1, Decay: 1},
		{InitAccuracy: 0.7, PriorStrength: 1, Decay: 0},
		{InitAccuracy: 0.7, PriorStrength: 1, Decay: 1.5},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("options %d should be rejected", i)
		}
	}
	if _, err := New(DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestBasicVoting(t *testing.T) {
	f, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f.Observe("s1", "o", "a")
	f.Observe("s2", "o", "a")
	f.Observe("s3", "o", "b")
	v, conf, ok := f.Value("o")
	if !ok || v != "a" {
		t.Fatalf("Value = %q (%v), want a", v, ok)
	}
	if conf <= 0.5 || conf > 1 {
		t.Errorf("confidence = %v", conf)
	}
	if _, _, ok := f.Value("nope"); ok {
		t.Error("unknown object should be !ok")
	}
}

func TestReclaimReplaces(t *testing.T) {
	f, _ := New(DefaultOptions())
	f.Observe("s1", "o", "a")
	f.Observe("s1", "o", "b") // source changes its mind
	v, _, _ := f.Value("o")
	if v != "b" {
		t.Errorf("re-claim should replace: got %q", v)
	}
	ns, no, nobs := f.Stats()
	if ns != 1 || no != 1 || nobs != 2 {
		t.Errorf("stats = (%d,%d,%d)", ns, no, nobs)
	}
}

func TestAccuraciesSeparateGoodFromBad(t *testing.T) {
	f, _ := New(DefaultOptions())
	// good agrees with two corroborators on 50 objects; bad always
	// dissents.
	for i := 0; i < 50; i++ {
		o := fmt.Sprintf("o%d", i)
		f.Observe("good", o, "t")
		f.Observe("peer1", o, "t")
		f.Observe("peer2", o, "t")
		f.Observe("bad", o, "w")
	}
	if g, b := f.SourceAccuracy("good"), f.SourceAccuracy("bad"); g <= b+0.3 {
		t.Errorf("good %.2f should clearly exceed bad %.2f", g, b)
	}
	if f.SourceAccuracy("never-seen") != DefaultOptions().InitAccuracy {
		t.Error("unknown source should return the prior")
	}
}

// streamInstance converts a synthetic batch instance into a shuffled
// stream of (source, object, value) triples.
func streamInstance(t *testing.T, seed int64) (*synth.Instance, [][3]string) {
	t.Helper()
	inst, err := synth.Generate(synth.Config{
		Name: "stream", Sources: 50, Objects: 500, DomainSize: 3,
		Assignment: synth.IIDDensity, Density: 0.2,
		MeanAccuracy: 0.7, AccuracySD: 0.12, MinAccuracy: 0.45, MaxAccuracy: 0.95,
		EnsureTruthObserved: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := inst.Dataset
	triples := make([][3]string, 0, ds.NumObservations())
	for _, ob := range ds.Observations {
		triples = append(triples, [3]string{
			ds.SourceNames[ob.Source], ds.ObjectNames[ob.Object], ds.ValueNames[ob.Value],
		})
	}
	rng := randx.New(seed + 1)
	rng.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })
	return inst, triples
}

func TestStreamingApproximatesBatchAccuracy(t *testing.T) {
	inst, triples := streamInstance(t, 7)
	f, _ := New(DefaultOptions())
	for _, tr := range triples {
		f.Observe(tr[0], tr[1], tr[2])
	}
	// Score the streaming estimates against gold by name.
	correct, total := 0, 0
	ds := inst.Dataset
	for o, truth := range inst.Gold {
		v, _, ok := f.Value(ds.ObjectNames[o])
		if !ok {
			continue
		}
		total++
		if v == ds.ValueNames[truth] {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Errorf("streaming accuracy = %.3f, want >= 0.9", acc)
	}
	// Source accuracies should track the latent truth.
	var errSum float64
	n := 0
	for s := 0; s < ds.NumSources(); s++ {
		if ds.SourceObservationCount(data.SourceID(s)) < 20 {
			continue
		}
		errSum += math.Abs(f.SourceAccuracy(ds.SourceNames[s]) - inst.TrueAccuracy[s])
		n++
	}
	if n == 0 {
		t.Fatal("no well-observed sources")
	}
	if meanErr := errSum / float64(n); meanErr > 0.12 {
		t.Errorf("mean source accuracy error = %.3f, want <= 0.12", meanErr)
	}
}

func TestRefineImproves(t *testing.T) {
	inst, triples := streamInstance(t, 8)
	f, _ := New(DefaultOptions())
	for _, tr := range triples {
		f.Observe(tr[0], tr[1], tr[2])
	}
	score := func() float64 {
		correct, total := 0, 0
		for o, truth := range inst.Gold {
			v, _, ok := f.Value(inst.Dataset.ObjectNames[o])
			if !ok {
				continue
			}
			total++
			if v == inst.Dataset.ValueNames[truth] {
				correct++
			}
		}
		return float64(correct) / float64(total)
	}
	before := score()
	f.Refine(3)
	after := score()
	if after+0.02 < before {
		t.Errorf("Refine should not hurt: %.3f -> %.3f", before, after)
	}
}

func TestDecayTracksDriftingSource(t *testing.T) {
	opts := DefaultOptions()
	opts.Decay = 0.95
	f, _ := New(opts)
	// Phase 1: source is perfect for 60 objects.
	for i := 0; i < 60; i++ {
		o := fmt.Sprintf("p1-%d", i)
		f.Observe("drift", o, "t")
		f.Observe("peerA", o, "t")
		f.Observe("peerB", o, "t")
	}
	accEarly := f.SourceAccuracy("drift")
	// Phase 2: source turns bad for 60 objects.
	for i := 0; i < 60; i++ {
		o := fmt.Sprintf("p2-%d", i)
		f.Observe("drift", o, "w")
		f.Observe("peerA", o, "t")
		f.Observe("peerB", o, "t")
	}
	accLate := f.SourceAccuracy("drift")
	if accLate >= accEarly-0.2 {
		t.Errorf("decayed accuracy should fall after drift: %.2f -> %.2f", accEarly, accLate)
	}

	// Without decay the fall is slower.
	f2, _ := New(DefaultOptions())
	for i := 0; i < 60; i++ {
		o := fmt.Sprintf("p1-%d", i)
		f2.Observe("drift", o, "t")
		f2.Observe("peerA", o, "t")
		f2.Observe("peerB", o, "t")
	}
	for i := 0; i < 60; i++ {
		o := fmt.Sprintf("p2-%d", i)
		f2.Observe("drift", o, "w")
		f2.Observe("peerA", o, "t")
		f2.Observe("peerB", o, "t")
	}
	if f2.SourceAccuracy("drift") <= accLate {
		t.Errorf("no-decay estimate (%.2f) should stay above decayed (%.2f)",
			f2.SourceAccuracy("drift"), accLate)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	f, _ := New(DefaultOptions())
	f.Observe("s1", "o1", "a")
	f.Observe("s2", "o1", "a")
	f.Observe("s1", "o2", "b")
	ds, est := f.Snapshot("snap")
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.NumObservations() != 3 || ds.NumSources() != 2 || ds.NumObjects() != 2 {
		t.Errorf("snapshot shape wrong: %d obs, %d src, %d obj",
			ds.NumObservations(), ds.NumSources(), ds.NumObjects())
	}
	if len(est) != 2 {
		t.Errorf("snapshot estimates = %d, want 2", len(est))
	}
}

func TestIncrementalAgreementConsistency(t *testing.T) {
	// The incrementally maintained per-source agreement mass must match
	// a from-scratch recomputation (Refine's first half) at any point.
	_, triples := streamInstance(t, 9)
	f, _ := New(DefaultOptions())
	for i, tr := range triples {
		f.Observe(tr[0], tr[1], tr[2])
		if i == len(triples)/2 || i == len(triples)-1 {
			// Snapshot incremental state.
			incr := map[string][2]float64{}
			for name, st := range f.sources {
				incr[name] = [2]float64{st.agree, st.total}
			}
			// Recompute from scratch (posteriors unchanged).
			for _, st := range f.sources {
				st.agree, st.total = 0, 0
			}
			for _, obj := range f.objects {
				for s, v := range obj.claims {
					st := f.sources[s]
					st.agree += obj.posterior[v]
					st.total++
				}
			}
			for name, st := range f.sources {
				if math.Abs(st.agree-incr[name][0]) > 1e-6 || math.Abs(st.total-incr[name][1]) > 1e-6 {
					t.Fatalf("source %s: incremental (%.4f,%.1f) vs recomputed (%.4f,%.1f)",
						name, incr[name][0], incr[name][1], st.agree, st.total)
				}
			}
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	_, triples := streamInstance(t, 10)
	run := func() map[string]string {
		f, _ := New(DefaultOptions())
		for _, tr := range triples {
			f.Observe(tr[0], tr[1], tr[2])
		}
		return f.Estimates()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different estimate counts")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("nondeterministic estimate for %s", k)
		}
	}
}

func TestFuserSingleSourceConflict(t *testing.T) {
	// A lone source flip-flopping on one object: the claim is replaced
	// each time, so the posterior must stay a point mass on the latest
	// value (no ghost mass on abandoned values).
	f, _ := New(DefaultOptions())
	f.Observe("s1", "o", "a")
	f.Observe("s1", "o", "b")
	f.Observe("s1", "o", "a")
	v, conf, ok := f.Value("o")
	if !ok || v != "a" {
		t.Fatalf("Value = %q (%v), want a", v, ok)
	}
	if math.Abs(conf-1) > 1e-12 {
		t.Errorf("single-claimant posterior = %v, want 1", conf)
	}
}

func TestFuserRefineZeroSweepsIsNoOp(t *testing.T) {
	_, triples := streamInstance(t, 30)
	f, _ := New(DefaultOptions())
	for _, tr := range triples {
		f.Observe(tr[0], tr[1], tr[2])
	}
	before := map[string]float64{}
	for name := range f.sources {
		before[name] = f.SourceAccuracy(name)
	}
	est := f.Estimates()
	f.Refine(0)
	f.Refine(-1)
	for name, acc := range before {
		if f.SourceAccuracy(name) != acc {
			t.Fatalf("Refine(0) changed accuracy of %s", name)
		}
	}
	after := f.Estimates()
	for o, v := range est {
		if after[o] != v {
			t.Fatalf("Refine(0) changed estimate of %s", o)
		}
	}
}

func TestFuserZeroObservationState(t *testing.T) {
	f, _ := New(DefaultOptions())
	if _, _, ok := f.Value("ghost"); ok {
		t.Error("empty fuser should know no objects")
	}
	if len(f.Estimates()) != 0 {
		t.Error("empty fuser Estimates should be empty")
	}
	f.Refine(2) // must not panic with no objects
	ds, est := f.Snapshot("empty")
	if ds.NumObservations() != 0 || len(est) != 0 {
		t.Error("empty snapshot should be empty")
	}
}
