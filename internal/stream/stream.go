// Package stream implements single-pass streaming data fusion, the
// efficiency extension the paper's related-work section points at
// (Zhao, Cheng & Ng: truth discovery in data streams, CIKM 2014).
//
// The Fuser ingests observations one at a time and maintains, at every
// moment, SLiMFast-style estimates: per-object posteriors under the
// log-odds voting model of Equation 4 and per-source accuracies
// anchored on posterior agreement (the same fixed point the batch
// Calibrate pass converges to). Each observation costs O(observers of
// the touched object); nothing is ever re-scanned.
//
// State per source is two scalars (expected-correct mass and total
// mass), optionally decayed so drifting sources are tracked; state per
// object is its claim set and cached posterior.
package stream

import (
	"errors"
	"sort"

	"slimfast/internal/data"
	"slimfast/internal/mathx"
)

// Options tunes the streaming fuser.
type Options struct {
	// InitAccuracy is the prior accuracy of a never-seen source.
	InitAccuracy float64
	// PriorStrength is the pseudo-count mass behind InitAccuracy; the
	// larger it is, the more observations a source needs to move its
	// accuracy estimate.
	PriorStrength float64
	// Decay in (0, 1] exponentially discounts old evidence per
	// observation of a source: 1 means never forget; 0.99 tracks
	// drifting sources with an effective window of ~100 observations.
	Decay float64
}

// DefaultOptions returns settings that work across the test workloads.
func DefaultOptions() Options {
	return Options{InitAccuracy: 0.7, PriorStrength: 4, Decay: 1}
}

// Validate reports the first invalid option.
func (o Options) Validate() error {
	if o.InitAccuracy <= 0 || o.InitAccuracy >= 1 {
		return errors.New("stream: InitAccuracy must be in (0,1)")
	}
	if o.PriorStrength < 0 {
		return errors.New("stream: PriorStrength must be non-negative")
	}
	if o.Decay <= 0 || o.Decay > 1 {
		return errors.New("stream: Decay must be in (0,1]")
	}
	return nil
}

type sourceState struct {
	agree float64 // Σ posterior probability of the source's claims
	total float64 // claim mass (decayed)
}

type objectState struct {
	claims    map[string]string // source -> value
	posterior map[string]float64
}

// Fuser is a streaming data-fusion engine. Not safe for concurrent use;
// wrap with a mutex if needed.
type Fuser struct {
	opts    Options
	sources map[string]*sourceState
	objects map[string]*objectState
	nObs    int
}

// New returns an empty Fuser.
func New(opts Options) (*Fuser, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Fuser{
		opts:    opts,
		sources: map[string]*sourceState{},
		objects: map[string]*objectState{},
	}, nil
}

// smoothedAccuracy is the one place the accuracy estimator lives: the
// prior-smoothed agreement ratio, clamped away from {0,1} so logits
// stay bounded. Both the Fuser and the sharded Engine (epoch refresh
// and Refine alike) must use it, or their fixed points drift apart.
func smoothedAccuracy(opts Options, agree, total float64) float64 {
	num := opts.InitAccuracy*opts.PriorStrength + agree
	den := opts.PriorStrength + total
	return mathx.Clamp(num/den, 0.02, 0.98)
}

// accuracy returns the current smoothed accuracy of a source state.
func (f *Fuser) accuracy(st *sourceState) float64 {
	return smoothedAccuracy(f.opts, st.agree, st.total)
}

// sigma returns the voting weight (log odds) of a source.
func (f *Fuser) sigma(name string) float64 {
	st := f.sources[name]
	if st == nil {
		return mathx.Logit(f.opts.InitAccuracy)
	}
	return mathx.Logit(f.accuracy(st))
}

// recomputePosterior rebuilds an object's posterior from its claims
// under the current source weights and returns it. Claims are folded
// in sorted source order: several sources voting for the same value
// share one float accumulator, so map iteration order would otherwise
// make the sum (and the posterior bits) vary run to run.
func (f *Fuser) recomputePosterior(obj *objectState) map[string]float64 {
	srcs := make([]string, 0, len(obj.claims))
	for src := range obj.claims {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	scores := map[string]float64{}
	for _, src := range srcs {
		scores[obj.claims[src]] += f.sigma(src)
	}
	// Stable ordering for the softmax input.
	vals := make([]string, 0, len(scores))
	for v := range scores {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	xs := make([]float64, len(vals))
	for i, v := range vals {
		xs[i] = scores[v]
	}
	ps := mathx.Softmax(xs, nil)
	post := make(map[string]float64, len(vals))
	for i, v := range vals {
		post[v] = ps[i]
	}
	return post
}

// Observe ingests one claim: source says object has value. Re-claiming
// the same (source, object) replaces the previous value (single-truth
// semantics). The touched object's posterior and its observers'
// accuracies are updated incrementally.
func (f *Fuser) Observe(source, object, value string) {
	f.nObs++
	src := f.sources[source]
	if src == nil {
		src = &sourceState{}
		f.sources[source] = src
	}
	obj := f.objects[object]
	if obj == nil {
		obj = &objectState{claims: map[string]string{}}
		f.objects[object] = obj
	}

	// Remove the old posterior's contribution to every observer of
	// this object (their agreement mass will be re-added under the new
	// posterior below).
	for s, v := range obj.claims {
		if st := f.sources[s]; st != nil && obj.posterior != nil {
			st.agree -= obj.posterior[v]
			st.total--
		}
	}

	// Apply decay to the observing source's own history at claim time.
	if f.opts.Decay < 1 {
		src.agree *= f.opts.Decay
		src.total *= f.opts.Decay
	}
	obj.claims[source] = value

	// Recompute the posterior under current weights and re-add the
	// agreement mass for all observers.
	obj.posterior = f.recomputePosterior(obj)
	for s, v := range obj.claims {
		st := f.sources[s]
		if st == nil {
			st = &sourceState{}
			f.sources[s] = st
		}
		st.agree += obj.posterior[v]
		st.total++
	}
}

// Value returns the current MAP estimate and its posterior probability
// for an object; ok is false when the object is unknown.
func (f *Fuser) Value(object string) (value string, confidence float64, ok bool) {
	obj := f.objects[object]
	if obj == nil || len(obj.posterior) == 0 {
		return "", 0, false
	}
	// Deterministic argmax: highest probability, ties to the smaller
	// string.
	vals := make([]string, 0, len(obj.posterior))
	for v := range obj.posterior {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	best, bestP := vals[0], obj.posterior[vals[0]]
	for _, v := range vals[1:] {
		if obj.posterior[v] > bestP {
			best, bestP = v, obj.posterior[v]
		}
	}
	return best, bestP, true
}

// SourceAccuracy returns the current accuracy estimate for a source
// (the prior for unknown sources).
func (f *Fuser) SourceAccuracy(source string) float64 {
	st := f.sources[source]
	if st == nil {
		return f.opts.InitAccuracy
	}
	return f.accuracy(st)
}

// sortedObjectNames returns the known object names in ascending
// order — the canonical iteration order for everything that sums
// floats or emits output per object, so results are bit-identical
// across runs instead of following Go's randomized map order.
func (f *Fuser) sortedObjectNames() []string {
	names := make([]string, 0, len(f.objects))
	for name := range f.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Estimates returns the MAP value of every known object, computed in
// sorted object order so the underlying Value calls (and any caller
// iterating the result via a sorted key list) are deterministic.
func (f *Fuser) Estimates() map[string]string {
	out := make(map[string]string, len(f.objects))
	for _, name := range f.sortedObjectNames() {
		if v, _, ok := f.Value(name); ok {
			out[name] = v
		}
	}
	return out
}

// Stats reports the stream's size so far.
func (f *Fuser) Stats() (sources, objects, observations int) {
	return len(f.sources), len(f.objects), f.nObs
}

// Refine runs full re-estimation sweeps over all objects (posterior
// under current weights, then accuracies from agreement), tightening
// the single-pass estimates toward the batch fixed point. Call it
// sparingly (e.g. every N thousand observations); each sweep is
// O(total claims).
func (f *Fuser) Refine(sweeps int) {
	if sweeps <= 0 {
		return
	}
	// Sorted object order fixes the float accumulation order, making
	// each sweep bit-identical across runs (map iteration order would
	// perturb the per-source sums in the low bits).
	names := f.sortedObjectNames()
	for i := 0; i < sweeps; i++ {
		// Re-derive accuracies from scratch under current posteriors.
		for _, st := range f.sources {
			st.agree = 0
			st.total = 0
		}
		for _, name := range names {
			obj := f.objects[name]
			for s, v := range obj.claims {
				st := f.sources[s]
				st.agree += obj.posterior[v]
				st.total++
			}
		}
		// Re-derive posteriors under the new accuracies.
		for _, name := range names {
			obj := f.objects[name]
			obj.posterior = f.recomputePosterior(obj)
		}
	}
}

// Snapshot exports the accumulated claims as an immutable Dataset plus
// the current MAP estimates, for handing to the batch SLiMFast pipeline
// (e.g. to fit domain features offline). Objects and sources are
// interned in sorted-name order so the export is deterministic.
func (f *Fuser) Snapshot(name string) (*data.Dataset, data.TruthMap) {
	b := data.NewBuilder(name)
	for _, oname := range f.sortedObjectNames() {
		obj := f.objects[oname]
		srcNames := make([]string, 0, len(obj.claims))
		for s := range obj.claims {
			srcNames = append(srcNames, s)
		}
		sort.Strings(srcNames)
		for _, sname := range srcNames {
			b.ObserveNames(sname, oname, obj.claims[sname])
		}
	}
	ds := b.Freeze()
	estimates := data.TruthMap{}
	if tm, err := data.TruthFromNames(ds, f.Estimates()); err == nil {
		estimates = tm
	}
	return ds, estimates
}
