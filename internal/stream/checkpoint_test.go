package stream

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"slimfast/internal/wire"
)

// checkpointAt replays the canonical ingest pattern of ingestEngine
// (700-claim batches, then singles) but checkpoints after batchCut
// full batches, restores from the bytes, and finishes the stream on
// BOTH the original and the restored engine. It returns the pair so
// tests can compare them to each other and to a never-stopped run.
func checkpointAt(t *testing.T, triples [][3]string, workers, batchCut int) (original, restored *Engine) {
	t.Helper()
	opts := DefaultEngineOptions()
	opts.Shards = 4
	opts.Workers = workers
	opts.EpochLength = 512
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 700
	feed := func(eng *Engine, lo int) {
		for ; lo+chunk <= len(triples); lo += chunk {
			batch := make([]Triple, chunk)
			for i, tr := range triples[lo : lo+chunk] {
				batch[i] = Triple{tr[0], tr[1], tr[2]}
			}
			eng.ObserveBatch(batch)
		}
		for _, tr := range triples[lo:] {
			eng.Observe(tr[0], tr[1], tr[2])
		}
	}
	// First half: batchCut full batches.
	cut := batchCut * chunk
	if cut > len(triples) {
		t.Fatalf("batchCut %d beyond stream of %d", batchCut, len(triples))
	}
	lo := 0
	for ; lo+chunk <= cut; lo += chunk {
		batch := make([]Triple, chunk)
		for i, tr := range triples[lo : lo+chunk] {
			batch[i] = Triple{tr[0], tr[1], tr[2]}
		}
		e.ObserveBatch(batch)
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	feed(e, lo)
	feed(r, lo)
	return e, r
}

// TestGoldenCheckpointRestartDeterminism is the headline property of
// the checkpoint subsystem: checkpoint mid-stream, restore, finish
// ingest — the restored engine's fingerprint (every posterior and
// accuracy, bit for bit) must equal both the original's and that of
// an engine that never stopped, for one ingest worker and for four.
func TestGoldenCheckpointRestartDeterminism(t *testing.T) {
	_, triples := streamInstance(t, 7)
	for _, workers := range []int{1, 4} {
		uninterrupted := ingestEngine(t, triples, workers)
		want := engineFingerprint(uninterrupted)
		original, restored := checkpointAt(t, triples, workers, 3)
		if got := engineFingerprint(original); got != want {
			t.Errorf("workers=%d: original-after-checkpoint fingerprint %x != uninterrupted %x", workers, got, want)
		}
		if got := engineFingerprint(restored); got != want {
			t.Errorf("workers=%d: restored fingerprint %x != uninterrupted %x", workers, got, want)
		}
		// The exact re-sweep must agree too: Refine's accumulation
		// order depends on slab slot order, which the checkpoint must
		// have preserved exactly.
		uninterrupted.Refine(2)
		restored.Refine(2)
		if a, b := engineFingerprint(uninterrupted), engineFingerprint(restored); a != b {
			t.Errorf("workers=%d: post-Refine fingerprints differ: %x vs %x", workers, a, b)
		}
		wantEst := uninterrupted.Estimates()
		gotEst := restored.Estimates()
		if len(wantEst) != len(gotEst) {
			t.Fatalf("workers=%d: %d estimates vs %d", workers, len(gotEst), len(wantEst))
		}
		for o, v := range wantEst {
			if gotEst[o] != v {
				t.Errorf("workers=%d: object %s = %q, uninterrupted says %q", workers, o, gotEst[o], v)
			}
		}
	}
}

// TestCheckpointRestartDeterminismAtEveryBoundary sweeps the cut
// point: wherever the restart happens, the final state is the same.
func TestCheckpointRestartDeterminismAtEveryBoundary(t *testing.T) {
	_, triples := streamInstance(t, 8)
	want := engineFingerprint(ingestEngine(t, triples, 2))
	for _, cut := range []int{0, 1, 2, 4, 6} {
		_, restored := checkpointAt(t, triples, 2, cut)
		if got := engineFingerprint(restored); got != want {
			t.Errorf("cut=%d batches: restored fingerprint %x != uninterrupted %x", cut, got, want)
		}
	}
}

// TestCheckpointRoundTripWithEvictionAndDecay drives the bounded-
// memory and decay paths — LRU links, free lists, evicted-mass
// accounting, per-epoch decay counters — through a checkpoint and
// verifies the restored engine is indistinguishable, both immediately
// and after further ingest and an exact re-sweep.
func TestCheckpointRoundTripWithEvictionAndDecay(t *testing.T) {
	_, triples := streamInstance(t, 9)
	opts := DefaultEngineOptions()
	opts.Shards = 3
	opts.Workers = 2
	opts.EpochLength = 128
	opts.MaxObjects = 60 // far below the ~500 live objects: heavy eviction
	opts.Decay = 0.99
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	half := len(triples) / 2
	for _, tr := range triples[:half] {
		e.Observe(tr[0], tr[1], tr[2])
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := engineFingerprint(e), engineFingerprint(r); a != b {
		t.Fatalf("immediate round-trip fingerprints differ: %x vs %x", a, b)
	}
	if a, b := e.Stats(), r.Stats(); a != b {
		t.Errorf("stats differ after restore: %+v vs %+v", a, b)
	}
	for _, tr := range triples[half:] {
		e.Observe(tr[0], tr[1], tr[2])
		r.Observe(tr[0], tr[1], tr[2])
	}
	if a, b := engineFingerprint(e), engineFingerprint(r); a != b {
		t.Fatalf("continued-ingest fingerprints differ: %x vs %x", a, b)
	}
	e.Refine(2)
	r.Refine(2)
	if a, b := engineFingerprint(e), engineFingerprint(r); a != b {
		t.Errorf("post-Refine fingerprints differ: %x vs %x", a, b)
	}
	if a, b := e.Stats(), r.Stats(); a != b {
		t.Errorf("stats diverged: %+v vs %+v", a, b)
	}
}

// smallCheckpoint builds a compact but non-trivial checkpoint for the
// failure-path tests.
func smallCheckpoint(t *testing.T) []byte {
	t.Helper()
	opts := DefaultEngineOptions()
	opts.Shards = 2
	opts.EpochLength = 8
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	_, triples := streamInstance(t, 5)
	for _, tr := range triples[:64] {
		e.Observe(tr[0], tr[1], tr[2])
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRestoreTruncated: every strict prefix must fail with a
// truncation error and a nil engine — never a panic, never a
// partially-restored engine.
func TestRestoreTruncated(t *testing.T) {
	b := smallCheckpoint(t)
	for _, cut := range []int{0, 3, 7, len(b) / 4, len(b) / 2, len(b) - 5, len(b) - 1} {
		e, err := Restore(bytes.NewReader(b[:cut]))
		if e != nil {
			t.Fatalf("cut=%d: got a non-nil engine from a truncated checkpoint", cut)
		}
		if !errors.Is(err, wire.ErrTruncated) {
			t.Errorf("cut=%d: err = %v, want wire.ErrTruncated", cut, err)
		}
	}
}

// TestRestoreChecksumMismatch flips footer and payload bytes; both
// must be rejected before an engine escapes.
func TestRestoreChecksumMismatch(t *testing.T) {
	b := smallCheckpoint(t)
	foot := append([]byte(nil), b...)
	foot[len(foot)-1] ^= 0x01
	if e, err := Restore(bytes.NewReader(foot)); e != nil || !errors.Is(err, wire.ErrChecksum) {
		t.Errorf("flipped footer: engine=%v err=%v, want nil + ErrChecksum", e != nil, err)
	}
	// A flipped payload byte must also never produce an engine; the
	// exact error depends on what the byte was (a float bit lands in
	// ErrChecksum, a length or id field may fail structurally first).
	for _, off := range []int{len(b) / 3, len(b) / 2, 2 * len(b) / 3} {
		mid := append([]byte(nil), b...)
		mid[off] ^= 0x40
		if e, err := Restore(bytes.NewReader(mid)); e != nil || err == nil {
			t.Errorf("flipped payload byte %d: engine=%v err=%v, want nil + error", off, e != nil, err)
		}
	}
}

// TestRestoreVersionSkew patches the version field: a checkpoint from
// a future format must be refused up front.
func TestRestoreVersionSkew(t *testing.T) {
	b := smallCheckpoint(t)
	b[4] ^= 0x08 // version is the LE uint32 right after the 4-byte magic
	e, err := Restore(bytes.NewReader(b))
	if e != nil || !errors.Is(err, wire.ErrVersion) {
		t.Errorf("engine=%v err=%v, want nil + wire.ErrVersion", e != nil, err)
	}
	b[4] ^= 0x08
	b[0] = 'X' // and a non-checkpoint stream fails on magic
	if e, err := Restore(bytes.NewReader(b)); e != nil || !errors.Is(err, wire.ErrMagic) {
		t.Errorf("engine=%v err=%v, want nil + wire.ErrMagic", e != nil, err)
	}
}

// TestRestoreShardCountMismatch crafts structurally valid wire
// streams whose shard records disagree with their own header.
func TestRestoreShardCountMismatch(t *testing.T) {
	header := func(w *wire.Writer, shards int) {
		opts := DefaultEngineOptions()
		opts.Shards = shards
		opts.EpochLength = 8
		encodeOptions(w, opts)
		w.Int64(0) // nObs
		w.Int64(0) // sinceEp
		w.Strings(nil)
		w.Float64s(nil)
		w.Float64s(nil)
		w.Float64s(nil)
		w.Float64s(nil)
		w.Int64(0) // source epoch
		w.Strings(nil)
	}
	// Header says 2 shards, record section says 3.
	var buf bytes.Buffer
	w := wire.NewWriter(&buf, checkpointMagic, checkpointVersion)
	header(w, 2)
	w.Uint32(3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if e, err := Restore(bytes.NewReader(buf.Bytes())); e != nil || !errors.Is(err, ErrShardCount) {
		t.Errorf("count skew: engine=%v err=%v, want nil + ErrShardCount", e != nil, err)
	}
	// Matching counts but a record tagged with the wrong shard index.
	buf.Reset()
	w = wire.NewWriter(&buf, checkpointMagic, checkpointVersion)
	header(w, 1)
	w.Uint32(1) // one shard record follows...
	w.Uint32(7) // ...tagged as shard 7
	w.Uint32(0) // no objects
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if e, err := Restore(bytes.NewReader(buf.Bytes())); e != nil || !errors.Is(err, ErrShardCount) {
		t.Errorf("tag skew: engine=%v err=%v, want nil + ErrShardCount", e != nil, err)
	}
}

// TestRestoreStructuralCorruption covers ErrCorrupt: bytes that parse
// and checksum... no — these fail before the checksum, on structural
// invariants (ragged tables, dangling ids never reach the engine).
func TestRestoreStructuralCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf, checkpointMagic, checkpointVersion)
	opts := DefaultEngineOptions()
	opts.Shards = 1
	opts.EpochLength = 8
	encodeOptions(w, opts)
	w.Int64(0)
	w.Int64(0)
	w.Strings([]string{"src-a"}) // one source name...
	w.Float64s(nil)              // ...but empty stats vectors
	w.Float64s(nil)
	w.Float64s(nil)
	w.Float64s(nil)
	w.Int64(0)
	w.Strings(nil)
	w.Uint32(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if e, err := Restore(bytes.NewReader(buf.Bytes())); e != nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("ragged source table: engine=%v err=%v, want nil + ErrCorrupt", e != nil, err)
	}

	// A live claim referencing a source the shard's per-source vectors
	// do not cover would panic in the next drain; Restore must refuse.
	buf.Reset()
	w = wire.NewWriter(&buf, checkpointMagic, checkpointVersion)
	encodeOptions(w, opts)
	w.Int64(1)
	w.Int64(1)
	w.Strings([]string{"src-a"})
	w.Float64s([]float64{0})
	w.Float64s([]float64{1})
	w.Float64s([]float64{0.5})
	w.Float64s([]float64{0})
	w.Int64(0)
	w.Strings([]string{"val-a"})
	w.Uint32(1)
	w.Uint32(0) // shard 0 tag
	w.Uint32(1) // one object slot
	w.Bool(true)
	w.String("obj")
	w.Int64(0) // epoch
	w.Int(-1)  // prev
	w.Int(-1)  // next
	w.Bool(true)
	w.Uint32(1) // one claim...
	w.Uint32(0) // ...by source 0
	w.Uint32(0)
	w.Float64(0)
	w.Int32s([]int32{0})
	w.Int32s([]int32{1})
	w.Float64s([]float64{0.5})
	w.Float64s([]float64{1})
	w.Ints(nil)      // free list
	w.Ints([]int{0}) // dirty list
	w.Int(0)         // lruHead
	w.Int(0)         // lruTail
	w.Float64s(nil)  // deltaAgree: empty — does not cover source 0
	w.Float64s(nil)
	w.Int64s(nil)
	w.Float64s(nil)
	w.Float64s(nil)
	w.Int64(0)
	w.Int64(0)
	w.Float64(0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if e, err := Restore(bytes.NewReader(buf.Bytes())); e != nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("uncovered claim source: engine=%v err=%v, want nil + ErrCorrupt", e != nil, err)
	}
}

// TestCheckpointFileRoundTrip exercises the atomic file helpers.
func TestCheckpointFileRoundTrip(t *testing.T) {
	_, triples := streamInstance(t, 6)
	e := ingestEngine(t, triples[:1400], 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "engine.ckpt")
	if err := e.WriteCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "engine.ckpt" {
		t.Errorf("dir has %d entries: %v", len(entries), entries)
	}
	r, err := RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := engineFingerprint(e), engineFingerprint(r); a != b {
		t.Errorf("file round-trip fingerprints differ: %x vs %x", a, b)
	}
	if _, err := RestoreFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("restoring a missing file should fail")
	}
}

// TestWriteCheckpointConcurrentWithIngest proves the copy-on-read
// claim under the race detector: checkpoints taken while another
// goroutine ingests must be internally consistent (they restore
// cleanly), and the ingesting engine must be unaffected.
func TestWriteCheckpointConcurrentWithIngest(t *testing.T) {
	_, triples := streamInstance(t, 4)
	opts := DefaultEngineOptions()
	opts.Shards = 4
	opts.EpochLength = 64
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tr := range triples {
			e.Observe(tr[0], tr[1], tr[2])
		}
	}()
	var last bytes.Buffer
	for i := 0; i < 8; i++ {
		last.Reset()
		if err := e.WriteCheckpoint(&last); err != nil {
			t.Errorf("concurrent checkpoint %d: %v", i, err)
		}
	}
	wg.Wait()
	if _, err := Restore(bytes.NewReader(last.Bytes())); err != nil {
		t.Errorf("checkpoint taken during ingest does not restore: %v", err)
	}
	// And a final quiescent checkpoint round-trips exactly.
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := engineFingerprint(e), engineFingerprint(r); a != b {
		t.Errorf("quiescent round-trip fingerprints differ: %x vs %x", a, b)
	}
}
