package stream

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"slimfast/internal/obs"
)

// TestEngineMetrics wires the full instrumentation seam and drives
// ingest, epoch refresh, eviction, Refine and the online learner,
// requiring every family to move.
func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	opts := testEngineOptions()
	opts.EpochLength = 64
	opts.MaxObjects = 40
	opts.Features = map[string][]string{"s0": {"pipe=a"}, "s1": {"pipe=b"}}
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	e.SetMetrics(m)

	for o := 0; o < 120; o++ {
		for s := 0; s < 4; s++ {
			e.Observe(fmt.Sprintf("s%d", s), fmt.Sprintf("o%03d", o), fmt.Sprintf("v%d", o%7))
		}
	}
	e.Refine(2)

	if got := m.Observations.Value(); got != 480 {
		t.Errorf("observations = %d, want 480", got)
	}
	if m.EpochRefreshes.Value() == 0 {
		t.Error("no epoch refreshes counted")
	}
	if m.EpochRefreshSeconds.Count() != m.EpochRefreshes.Value() {
		t.Errorf("refresh histogram count %d != refresh counter %d",
			m.EpochRefreshSeconds.Count(), m.EpochRefreshes.Value())
	}
	if m.Epoch.Value() <= 0 {
		t.Errorf("epoch gauge = %v, want > 0", m.Epoch.Value())
	}
	if got := m.RefineSweeps.Value(); got != 2 {
		t.Errorf("refine sweeps = %d, want 2", got)
	}
	if m.EvictedObjects.Value() == 0 {
		t.Error("no evictions counted under a 40-object cap with 120 objects")
	}
	if m.LearnerEpochs.Value() == 0 {
		t.Error("no learner epochs counted in online mode")
	}
	if m.FeatureWeightNorm.Value() == 0 {
		t.Error("feature weight norm gauge never set")
	}

	var sb strings.Builder
	if err := reg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"slimfast_engine_observations_total",
		"slimfast_engine_epoch_refreshes_total",
		"slimfast_engine_epoch_refresh_seconds_bucket",
		"slimfast_engine_refine_sweeps_total",
		"slimfast_engine_evicted_objects_total",
	} {
		if !strings.Contains(sb.String(), fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
}

// TestCheckpointStoreMetrics covers the write and restore counters,
// including the bytes gauge matching the file on disk.
func TestCheckpointStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sm := NewStoreMetrics(reg)
	e, err := NewEngine(testEngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	e.Observe("s0", "o0", "v0")

	cs := NewCheckpointStore(filepath.Join(t.TempDir(), "engine.ckpt"), 2)
	cs.Metrics = sm
	if err := cs.Write(e); err != nil {
		t.Fatal(err)
	}
	if err := cs.Write(e); err != nil {
		t.Fatal(err)
	}
	if got := sm.Writes.Value(); got != 2 {
		t.Errorf("writes = %d, want 2", got)
	}
	if sm.WriteSeconds.Count() != 2 {
		t.Errorf("write histogram count = %d, want 2", sm.WriteSeconds.Count())
	}
	if sm.LastBytes.Value() <= 0 {
		t.Errorf("last bytes gauge = %v, want > 0", sm.LastBytes.Value())
	}
	if _, _, err := cs.Restore(); err != nil {
		t.Fatal(err)
	}
	if sm.Restores.Value() != 1 {
		t.Errorf("restores = %d, want 1", sm.Restores.Value())
	}
	if sm.Fallbacks.Value() != 0 {
		t.Errorf("fallbacks = %d, want 0 for a clean restore", sm.Fallbacks.Value())
	}
	if sm.WriteErrors.Value() != 0 {
		t.Errorf("write errors = %d, want 0", sm.WriteErrors.Value())
	}
}

// TestObserveZeroAllocWithMetrics is the instrumented sibling of
// BenchmarkStreamIngest's 0 allocs/op headline: with the full metrics
// seam attached, a steady-state Observe (interned source/value/object,
// no epoch boundary) must not allocate.
func TestObserveZeroAllocWithMetrics(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	reg := obs.NewRegistry()
	opts := testEngineOptions()
	opts.EpochLength = 1 << 30 // no refresh inside the measured window
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	e.SetMetrics(NewMetrics(reg))

	// Warm: intern everything and let the claim slabs reach capacity.
	vals := [2]string{"v0", "v1"}
	for i := 0; i < 64; i++ {
		e.Observe("s0", "o0", vals[i%2])
		e.Observe("s1", "o0", vals[(i+1)%2])
	}
	i := 0
	if n := testing.AllocsPerRun(500, func() {
		e.Observe("s0", "o0", vals[i%2]) // value flip: the O(domain) delta path
		i++
	}); n != 0 {
		t.Errorf("instrumented Observe allocates %v per op, want 0", n)
	}
}
