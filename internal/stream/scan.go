// The relational scan surface: the engine-side half of the query
// layer (internal/query). ScanShard walks one shard's live objects
// under its read lock and hands the caller a borrowed Row per object —
// the full relational view (MAP value, confidence, contestedness,
// flip epoch, claim counts) computed in place from the dense slabs, so
// a selective query never materializes an Estimate slice the way
// EstimateAll does. Predicate pushdown lives one level up: the query
// executor decides which shards to scan (ShardIndex pruning on object
// equality) and which rows to keep; this file only guarantees that a
// shard scan is one RLock, zero allocations, and deterministic slot
// order.
package stream

// Row is the relational view of one live object, the tuple the query
// layer filters, orders and aggregates over. Numeric counters are
// int64 so the query comparators work over exactly two scalar kinds
// (string, number).
type Row struct {
	Object     string  // object name
	Value      string  // current MAP value
	Confidence float64 // posterior probability of the MAP value
	Contested  float64 // 1 - (p1 - p2): complement of the top-two posterior margin
	Changed    int64   // σ-epoch the MAP value last changed (first claim counts)
	Sources    int64   // number of sources claiming this object
	Dissent    int64   // claims whose value differs from the MAP value
	Disagree   bool    // the ScanOptions pair both claim this object and differ
}

// ScanOptions selects the optional per-row work a scan performs.
type ScanOptions struct {
	// PairA/PairB are interned source ids (from SourceIDs) driving
	// Row.Disagree; -1 disables the pair check.
	PairA, PairB int
}

// NoPair is the ScanOptions zero state with the disagree pair off.
var NoPair = ScanOptions{PairA: -1, PairB: -1}

// SourceIDs resolves two source names to their interned ids for
// ScanOptions. ok is false when either source has never been seen —
// no row can have them disagreeing. Safe to call during ingest.
func (e *Engine) SourceIDs(a, b string) (ia, ib int, ok bool) {
	e.src.mu.RLock()
	defer e.src.mu.RUnlock()
	ia, okA := e.src.ids[a]
	ib, okB := e.src.ids[b]
	if !okA || !okB {
		return -1, -1, false
	}
	return ia, ib, true
}

// NumShards reports the engine's resolved shard count, the iteration
// domain for ScanShard.
func (e *Engine) NumShards() int { return e.nShards }

// CurrentEpoch reports the engine's σ-table epoch — the clock
// Row.Changed is stamped against. Safe to call during ingest.
func (e *Engine) CurrentEpoch() int64 {
	e.src.mu.RLock()
	defer e.src.mu.RUnlock()
	return e.src.epoch
}

// ScanShard visits every live object in shard s in slot order
// (deterministic for a fixed shard count), filling and passing one
// reused Row. Returning false from visit stops the scan. The visit
// callback runs under the shard's read lock: it must not retain the
// *Row (copy it), must not block, and must not call back into the
// engine's write paths.
func (e *Engine) ScanShard(s int, opt ScanOptions, visit func(*Row) bool) {
	sh := &e.shards[s]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	valNames := e.valueNames()
	var row Row
	for ix := range sh.objs {
		obj := &sh.objs[ix]
		if !obj.live || obj.mapIx < 0 {
			continue
		}
		fillRow(obj, valNames, opt, &row)
		if !visit(&row) {
			return
		}
	}
}

// fillRow computes the relational view of one object into row. Caller
// holds the shard lock.
func fillRow(obj *object, valNames []string, opt ScanOptions, row *Row) {
	mi := int(obj.mapIx)
	mapVal := obj.domain[mi]
	p1 := obj.post[mi]
	p2 := 0.0
	for i, p := range obj.post {
		if i != mi && p > p2 {
			p2 = p
		}
	}
	dissent := int64(0)
	pairA, pairB := int32(-1), int32(-1)
	for i := range obj.claims {
		c := &obj.claims[i]
		if c.val != mapVal {
			dissent++
		}
		if opt.PairA >= 0 {
			if int(c.src) == opt.PairA {
				pairA = c.val
			} else if int(c.src) == opt.PairB {
				pairB = c.val
			}
		}
	}
	row.Object = obj.name
	row.Value = valNames[mapVal]
	row.Confidence = p1
	row.Contested = 1 - (p1 - p2)
	row.Changed = obj.changed
	row.Sources = int64(len(obj.claims))
	row.Dissent = dissent
	row.Disagree = pairA >= 0 && pairB >= 0 && pairA != pairB
}
