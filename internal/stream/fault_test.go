package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slimfast/internal/resilience"
)

// faultEngine builds a small engine with some ingested state.
func faultEngine(t *testing.T, n int) *Engine {
	t.Helper()
	opts := DefaultEngineOptions()
	opts.Shards = 2
	opts.EpochLength = 64
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	_, triples := streamInstance(t, 11)
	if n > len(triples) {
		n = len(triples)
	}
	for _, tr := range triples[:n] {
		e.Observe(tr[0], tr[1], tr[2])
	}
	return e
}

func TestCheckpointStoreRotation(t *testing.T) {
	dir := t.TempDir()
	cs := NewCheckpointStore(filepath.Join(dir, "eng.ckpt"), 3)
	e := faultEngine(t, 100)

	var gens [][]byte // bytes of each write, newest last
	for i := 0; i < 4; i++ {
		_, triples := streamInstance(t, 12)
		e.Observe(triples[i][0], triples[i][1], triples[i][2])
		if err := cs.Write(e); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		b, err := os.ReadFile(cs.GenPath(0))
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, b)
	}
	// keep=3: generations 0..2 exist, 3 does not; no temp droppings.
	for i := 0; i < 3; i++ {
		want := gens[len(gens)-1-i]
		got, err := os.ReadFile(cs.GenPath(i))
		if err != nil {
			t.Fatalf("generation %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("generation %d does not hold write %d's bytes", i, len(gens)-1-i)
		}
	}
	if _, err := os.Stat(cs.GenPath(3)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("generation 3 should have been pruned: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 3 {
		t.Errorf("dir holds %d entries, want exactly the 3 generations: %v", len(entries), entries)
	}
	// Restore returns the newest generation.
	r, used, err := cs.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if used != cs.GenPath(0) {
		t.Errorf("restored from %s, want generation 0", used)
	}
	if a, b := engineFingerprint(e), engineFingerprint(r); a != b {
		t.Errorf("restored fingerprint %x != live %x", b, a)
	}
}

// TestRestoreFallsBackPastTornWrite injects the classic lying-disk
// fault: the newest generation's write claims success but persists a
// prefix. Restore must recover the previous generation bit-exact.
func TestRestoreFallsBackPastTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := resilience.NewFaultFS(nil)
	cs := NewCheckpointStore(filepath.Join(dir, "eng.ckpt"), 3)
	cs.FS = ffs
	var log strings.Builder
	cs.Log = &log

	e := faultEngine(t, 200)
	if err := cs.Write(e); err != nil {
		t.Fatal(err)
	}
	goodFP := engineFingerprint(e)

	// More ingest, then a torn checkpoint write that "succeeds".
	_, triples := streamInstance(t, 13)
	for _, tr := range triples[:50] {
		e.Observe(tr[0], tr[1], tr[2])
	}
	ffs.Arm(resilience.TearAt, 128)
	if err := cs.Write(e); err != nil {
		t.Fatalf("torn write should have claimed success, got %v", err)
	}

	r, used, err := cs.Restore()
	if err != nil {
		t.Fatalf("restore should fall back past the torn generation: %v", err)
	}
	if used != cs.GenPath(1) {
		t.Errorf("restored from %s, want fallback generation 1", used)
	}
	if got := engineFingerprint(r); got != goodFP {
		t.Errorf("fallback engine fingerprint %x != last good checkpoint %x", got, goodFP)
	}
	if !strings.Contains(log.String(), "WARNING: checkpoint generation") ||
		!strings.Contains(log.String(), "falling back") {
		t.Errorf("fallback was not logged loudly:\n%s", log.String())
	}
}

// TestRestoreFallsBackPastBitFlip corrupts the newest generation at
// rest (silent media corruption) and proves generation-by-generation
// fallback plus bit-exact recovery.
func TestRestoreFallsBackPastBitFlip(t *testing.T) {
	dir := t.TempDir()
	cs := NewCheckpointStore(filepath.Join(dir, "eng.ckpt"), 2)
	cs.Log = io.Discard

	e := faultEngine(t, 150)
	if err := cs.Write(e); err != nil {
		t.Fatal(err)
	}
	goodFP := engineFingerprint(e)
	_, triples := streamInstance(t, 14)
	for _, tr := range triples[:30] {
		e.Observe(tr[0], tr[1], tr[2])
	}
	if err := cs.Write(e); err != nil {
		t.Fatal(err)
	}
	// Flip one byte mid-payload in generation 0.
	b, err := os.ReadFile(cs.GenPath(0))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(cs.GenPath(0), b, 0o644); err != nil {
		t.Fatal(err)
	}

	r, used, err := cs.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if used != cs.GenPath(1) {
		t.Errorf("restored from %s, want generation 1", used)
	}
	if got := engineFingerprint(r); got != goodFP {
		t.Errorf("fallback fingerprint %x != generation-1 state %x", got, goodFP)
	}
}

// TestCheckpointENOSPCLeavesGenerationsIntact: a full disk mid-write
// fails the checkpoint but must not damage any existing generation or
// leak temp files; once space returns, the next write succeeds.
func TestCheckpointENOSPCLeavesGenerationsIntact(t *testing.T) {
	dir := t.TempDir()
	ffs := resilience.NewFaultFS(nil)
	cs := NewCheckpointStore(filepath.Join(dir, "eng.ckpt"), 3)
	cs.FS = ffs

	e := faultEngine(t, 120)
	if err := cs.Write(e); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(cs.GenPath(0))
	if err != nil {
		t.Fatal(err)
	}

	ffs.Arm(resilience.FailAt, 64)
	if err := cs.Write(e); !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("ENOSPC write err = %v, want ErrInjected", err)
	}
	after, err := os.ReadFile(cs.GenPath(0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed checkpoint modified the existing generation")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("failed write leaked files: %v", entries)
	}
	// Disk recovers; the store does too.
	if err := cs.Write(e); err != nil {
		t.Fatalf("post-ENOSPC write: %v", err)
	}
	if _, _, err := cs.Restore(); err != nil {
		t.Fatalf("restore after recovery: %v", err)
	}
}

// TestCheckpointCreateAndRenameFailures: the other write-path faults
// (can't create the temp file, can't rename it into place) fail
// cleanly without touching existing generations.
func TestCheckpointCreateAndRenameFailures(t *testing.T) {
	dir := t.TempDir()
	ffs := resilience.NewFaultFS(nil)
	cs := NewCheckpointStore(filepath.Join(dir, "eng.ckpt"), 2)
	cs.FS = ffs

	e := faultEngine(t, 80)
	if err := cs.Write(e); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(cs.GenPath(0))

	ffs.ArmCreateFailure()
	if err := cs.Write(e); !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("create-failure write err = %v", err)
	}
	ffs.ArmRenameFailure()
	if err := cs.Write(e); !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("rename-failure write err = %v", err)
	}
	after, _ := os.ReadFile(cs.GenPath(0))
	if !bytes.Equal(before, after) {
		t.Error("failed writes modified the live generation")
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Errorf("failed writes leaked files: %v", entries)
	}
	if err := cs.Write(e); err != nil {
		t.Fatalf("recovery write: %v", err)
	}
}

// TestRestoreKillDuringCheckpoint simulates dying mid-checkpoint: a
// temp file exists (never renamed) alongside good generations.
// Restore must ignore it and recover generation 0.
func TestRestoreKillDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cs := NewCheckpointStore(filepath.Join(dir, "eng.ckpt"), 2)
	e := faultEngine(t, 90)
	if err := cs.Write(e); err != nil {
		t.Fatal(err)
	}
	fp := engineFingerprint(e)
	// The "kill": a half-written temp file left on disk.
	if err := os.WriteFile(filepath.Join(dir, "eng.ckpt.tmp12345"), []byte("SFCK\x03garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, used, err := cs.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if used != cs.GenPath(0) {
		t.Errorf("restored from %s, want generation 0", used)
	}
	if got := engineFingerprint(r); got != fp {
		t.Errorf("fingerprint %x != checkpointed %x", got, fp)
	}
}

// TestRestoreAllGenerationsDamaged: when every generation is corrupt
// the store fails with every failure enumerated — it must not
// fabricate an engine.
func TestRestoreAllGenerationsDamaged(t *testing.T) {
	dir := t.TempDir()
	cs := NewCheckpointStore(filepath.Join(dir, "eng.ckpt"), 2)
	cs.Log = io.Discard
	e := faultEngine(t, 60)
	for i := 0; i < 2; i++ {
		if err := cs.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(cs.GenPath(i), []byte("SFCKjunk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if eng, _, err := cs.Restore(); eng != nil || err == nil {
		t.Fatalf("engine=%v err=%v, want nil + error", eng != nil, err)
	} else if !strings.Contains(err.Error(), "all 2 checkpoint generation(s) damaged") {
		t.Errorf("err = %v, want all-generations-damaged", err)
	}

	// And with no generations at all: os.ErrNotExist for the
	// cold-boot-is-fine idiom.
	empty := NewCheckpointStore(filepath.Join(t.TempDir(), "none.ckpt"), 3)
	if _, _, err := empty.Restore(); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("empty store err = %v, want os.ErrNotExist", err)
	}
}

// TestRestoreToleratesRotationGap: a crash between rotation renames
// can leave generation 0 missing while generation 1 holds the last
// good state; Restore walks the gap.
func TestRestoreToleratesRotationGap(t *testing.T) {
	dir := t.TempDir()
	cs := NewCheckpointStore(filepath.Join(dir, "eng.ckpt"), 3)
	e := faultEngine(t, 70)
	if err := cs.Write(e); err != nil {
		t.Fatal(err)
	}
	fp := engineFingerprint(e)
	// Simulate the crash: gen0 was rotated up but the new gen0 never
	// landed.
	if err := os.Rename(cs.GenPath(0), cs.GenPath(1)); err != nil {
		t.Fatal(err)
	}
	r, used, err := cs.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if used != cs.GenPath(1) {
		t.Errorf("restored from %s, want generation 1", used)
	}
	if got := engineFingerprint(r); got != fp {
		t.Errorf("fingerprint %x != last good %x", got, fp)
	}
}

// TestMarkSeqWindow covers the dedup ring: replays inside the window
// dedupe, the window is bounded, and eviction is oldest-first.
func TestMarkSeqWindow(t *testing.T) {
	opts := DefaultEngineOptions()
	opts.Shards = 1
	opts.DedupWindow = 3
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !e.MarkSeq("a") || !e.MarkSeq("b") || !e.MarkSeq("c") {
		t.Fatal("fresh keys must be new")
	}
	if e.MarkSeq("b") {
		t.Error("replayed key inside the window was not deduplicated")
	}
	if !e.SeqSeen("a") || e.SeqSeen("zz") {
		t.Error("SeqSeen misreports window membership")
	}
	// Fourth distinct key evicts "a" (oldest).
	if !e.MarkSeq("d") {
		t.Fatal("new key rejected")
	}
	if e.SeqSeen("a") {
		t.Error("window did not evict the oldest key")
	}
	if !e.MarkSeq("a") {
		t.Error("evicted key must be ingestable again")
	}
	// Empty keys are never deduplicated.
	if !e.MarkSeq("") || !e.MarkSeq("") {
		t.Error("empty keys must always pass")
	}
	if got := e.seqSnapshot(); len(got) != 3 {
		t.Errorf("window holds %d keys, cap is 3: %v", len(got), got)
	}
}

// TestSeqWindowSurvivesCheckpoint proves the exactly-once contract
// across restarts: keys marked before a checkpoint still dedupe after
// restore, in the same eviction order.
func TestSeqWindowSurvivesCheckpoint(t *testing.T) {
	opts := DefaultEngineOptions()
	opts.Shards = 2
	opts.DedupWindow = 4
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	_, triples := streamInstance(t, 15)
	for _, tr := range triples[:40] {
		e.Observe(tr[0], tr[1], tr[2])
	}
	for _, k := range []string{"w", "x", "y", "z"} {
		e.MarkSeq(k)
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"w", "x", "y", "z"} {
		if r.MarkSeq(k) {
			t.Errorf("key %q lost across checkpoint/restore", k)
		}
	}
	// Eviction order survived: one new key pushes out "w" only.
	r.MarkSeq("new1")
	if r.SeqSeen("w") || !r.SeqSeen("x") {
		t.Error("restored window's eviction order differs from the live one")
	}
}

// TestRetryStormEquivalentToSingleDelivery is the engine-level golden
// idempotency proof: delivering every batch once, versus delivering
// each batch 1 + k duplicated times (a retry storm), must produce
// bit-identical engines when ingest is guarded by MarkSeq.
func TestRetryStormEquivalentToSingleDelivery(t *testing.T) {
	_, triples := streamInstance(t, 16)
	const batchLen = 100
	build := func() *Engine {
		opts := DefaultEngineOptions()
		opts.Shards = 4
		opts.EpochLength = 128
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	deliver := func(e *Engine, i int, batch []Triple) {
		key := fmt.Sprintf("batch-%d", i)
		if e.MarkSeq(key) {
			e.ObserveBatch(batch)
		}
	}
	once := build()
	storm := build()
	for i := 0; i*batchLen < len(triples); i++ {
		lo := i * batchLen
		hi := min(lo+batchLen, len(triples))
		batch := make([]Triple, hi-lo)
		for j, tr := range triples[lo:hi] {
			batch[j] = Triple{tr[0], tr[1], tr[2]}
		}
		deliver(once, i, batch)
		// Retry storm: every batch delivered 1 + (i%3 + 1) times.
		for k := 0; k <= i%3+1; k++ {
			deliver(storm, i, batch)
		}
	}
	if a, b := engineFingerprint(once), engineFingerprint(storm); a != b {
		t.Fatalf("retry storm diverged from single delivery: %x vs %x", a, b)
	}
	if a, b := once.Stats(), storm.Stats(); a != b {
		t.Errorf("stats diverged: %+v vs %+v", a, b)
	}
}
