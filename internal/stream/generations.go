// Generation-rotated checkpointing: the durability layer that turns
// "the checkpoint" into "the last K good checkpoints". A
// CheckpointStore writes each checkpoint through a temp file + fsync
// + rename chain (so no crash can clobber an existing generation),
// rotates the previous generations down one slot, and restores by
// walking the generations newest-first past CRC, truncation and
// structural failures — a torn or bit-flipped newest generation costs
// one generation of progress, never the engine.
//
// All file traffic goes through a resilience.FS seam, so the fault
// tests can inject torn writes, ENOSPC and rename failures and prove
// every one of them ends in "recovered to the last good generation".
package stream

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"slimfast/internal/resilience"
)

// DefaultCheckpointKeep is how many checkpoint generations a store
// retains when the caller does not choose: the live one plus two
// fallbacks.
const DefaultCheckpointKeep = 3

// CheckpointStore manages a rotated family of checkpoint files:
// generation 0 lives at Path, generation i at Path.<i>, oldest last.
type CheckpointStore struct {
	path string
	keep int

	// FS is the filesystem seam (resilience.OS unless a test injects
	// faults); Log receives the loud warnings the fallback path emits.
	FS  resilience.FS
	Log io.Writer

	// Metrics is the optional instrumentation seam; the zero value is
	// a no-op.
	Metrics StoreMetrics
}

// countingWriter counts the bytes a checkpoint encode produces.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// NewCheckpointStore returns a store rotating keep generations at
// path (keep < 1 selects DefaultCheckpointKeep; keep == 1 degenerates
// to the single-file behavior of WriteCheckpointFile).
func NewCheckpointStore(path string, keep int) *CheckpointStore {
	if keep < 1 {
		keep = DefaultCheckpointKeep
	}
	return &CheckpointStore{path: path, keep: keep, FS: resilience.OS, Log: io.Discard}
}

// Path returns the newest generation's path.
func (cs *CheckpointStore) Path() string { return cs.path }

// Keep returns how many generations the store retains.
func (cs *CheckpointStore) Keep() int { return cs.keep }

// GenPath returns generation i's path: Path for 0, Path.<i> beyond.
func (cs *CheckpointStore) GenPath(i int) string {
	if i == 0 {
		return cs.path
	}
	return fmt.Sprintf("%s.%d", cs.path, i)
}

// Write checkpoints e as the new generation 0, rotating existing
// generations down and pruning beyond keep. The bytes land in a
// same-directory temp file and are renamed into place only after a
// successful sync; on any failure the temp file is removed and every
// existing generation is left exactly as it was.
func (cs *CheckpointStore) Write(e *Engine) (err error) {
	began := time.Now()
	var written int64
	defer func() {
		if err != nil {
			cs.Metrics.WriteErrors.Inc()
			return
		}
		cs.Metrics.Writes.Inc()
		cs.Metrics.LastBytes.Set(float64(written))
		cs.Metrics.WriteSeconds.Observe(time.Since(began).Seconds())
	}()
	dir := filepath.Dir(cs.path)
	f, err := cs.FS.CreateTemp(dir, filepath.Base(cs.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			cs.FS.Remove(tmp)
		}
	}()
	cw := &countingWriter{w: f}
	if err = e.WriteCheckpoint(cw); err != nil {
		return err
	}
	written = cw.n
	if err = f.Sync(); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	// Rotate oldest-first so every rename moves a file into a slot
	// that has already been vacated (or is being discarded). Each
	// rename is atomic; a crash mid-rotation leaves a gap at worst,
	// which Restore walks past.
	for i := cs.keep - 1; i >= 1; i-- {
		switch rerr := cs.FS.Rename(cs.GenPath(i-1), cs.GenPath(i)); {
		case rerr == nil, errors.Is(rerr, os.ErrNotExist):
		default:
			return fmt.Errorf("stream: checkpoint: rotating generation %d: %w", i-1, rerr)
		}
	}
	if err = cs.FS.Rename(tmp, cs.path); err != nil {
		return fmt.Errorf("stream: checkpoint: %w", err)
	}
	// Sync the directory so the renames survive power loss
	// (best-effort: filesystems that refuse directory fsync still hold
	// valid, fully-synced files).
	cs.FS.SyncDir(dir)
	// Prune generations beyond keep (left over from a larger keep).
	for i := cs.keep; i < cs.keep+16; i++ {
		if rerr := cs.FS.Remove(cs.GenPath(i)); rerr != nil {
			break
		}
	}
	return nil
}

// Restore walks the generations newest-first and returns the first
// engine that decodes cleanly, together with the path it came from. A
// damaged generation — truncated, checksum-mismatched, structurally
// corrupt — is logged loudly and skipped; only when every existing
// generation is damaged does Restore fail. When no generation exists
// at all it returns an error wrapping os.ErrNotExist, so callers can
// keep the one-command cold/warm boot idiom.
func (cs *CheckpointStore) Restore() (*Engine, string, error) {
	var failures []error
	tried := 0
	for i := 0; i < cs.keep; i++ {
		p := cs.GenPath(i)
		rc, err := cs.FS.Open(p)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // gap from an interrupted rotation, or fewer generations than keep
			}
			tried++
			failures = append(failures, fmt.Errorf("%s: %w", p, err))
			continue
		}
		tried++
		e, err := Restore(rc)
		rc.Close()
		if err != nil {
			fmt.Fprintf(cs.Log, "# WARNING: checkpoint generation %s unreadable (%v); falling back to older generation\n", p, err)
			failures = append(failures, fmt.Errorf("%s: %w", p, err))
			continue
		}
		if len(failures) > 0 {
			fmt.Fprintf(cs.Log, "# WARNING: restored from fallback generation %s after %d damaged generation(s)\n", p, len(failures))
			cs.Metrics.Fallbacks.Inc()
		}
		cs.Metrics.Restores.Inc()
		return e, p, nil
	}
	if tried == 0 {
		return nil, "", fmt.Errorf("stream: restore: no checkpoint generations at %s: %w", cs.path, os.ErrNotExist)
	}
	return nil, "", fmt.Errorf("stream: restore: all %d checkpoint generation(s) damaged: %w", tried, errors.Join(failures...))
}
